package tensor

import (
	"sync"
	"testing"
)

// TestPoolReuse checks the size-class round trip: a returned buffer is
// handed out again for any request that fits its class.
func TestPoolReuse(t *testing.T) {
	d := GetDense(10, 10) // class for 100 -> 128
	buf := &d.Data[:1][0]
	PutDense(d)
	e := GetDense(11, 11) // 121 <= 128: same class, should reuse
	if e.Rows != 11 || e.Cols != 11 || len(e.Data) != 121 {
		t.Fatalf("GetDense shape wrong: %d×%d len %d", e.Rows, e.Cols, len(e.Data))
	}
	if &e.Data[:1][0] != buf {
		t.Skip("sync.Pool dropped the buffer (GC); nothing to assert")
	}
	PutDense(e)

	f := GetDense32(5, 5)
	f.Data[0] = 42
	PutDense32(f)
	g := GetDense32(4, 4)
	if len(g.Data) != 16 {
		t.Fatalf("GetDense32 length %d, want 16", len(g.Data))
	}
	PutDense32(g)
}

// TestPoolZeroAndHuge covers the degenerate classes: zero-element
// requests, oversized requests that bypass the pool, and nil puts.
func TestPoolZeroAndHuge(t *testing.T) {
	z := GetDense(0, 5)
	if len(z.Data) != 0 {
		t.Fatal("zero-element GetDense should have empty data")
	}
	PutDense(z) // zero-capacity: ignored
	PutDense(nil)
	PutDense32(nil)
	if sizeClass(1) != 0 || sizeClass(2) != 1 || sizeClass(3) != 2 || sizeClass(1<<20) != 20 {
		t.Fatal("sizeClass wrong")
	}
}

// TestPoolConcurrent hammers the pools from many goroutines under the
// race detector; each goroutine checks it can fully own its buffer.
func TestPoolConcurrent(t *testing.T) {
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				d := GetDense(16, 8)
				for j := range d.Data {
					d.Data[j] = float64(g)
				}
				for _, v := range d.Data {
					if v != float64(g) {
						t.Errorf("buffer shared across goroutines")
						return
					}
				}
				PutDense(d)
				f := GetDense32(8, 8)
				f.Data[0] = float32(g)
				if f.Data[0] != float32(g) {
					t.Errorf("f32 buffer corrupted")
					return
				}
				PutDense32(f)
			}
		}(g)
	}
	wg.Wait()
}

// BenchmarkPooledGetPut measures the steady-state pooled path; with a
// warm pool it must not allocate.
func BenchmarkPooledGetPut(b *testing.B) {
	PutDense(GetDense(256, 64)) // warm
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := GetDense(256, 64)
		PutDense(d)
	}
}
