package refcheck

import (
	"strings"
	"testing"

	"repro/internal/circuitgen"
	"repro/internal/core"
	"repro/internal/netlist"
	"repro/internal/partition"
	"repro/internal/scoap"
)

// TestShardedDifferential is the acceptance gate for the sharded
// executor: 60 seeded random circuits, each scored whole-graph and
// sharded across K∈{2,4,8} × {level-band, fanout-cone} × {exchange,
// one-shot} for both a Model and a MultiStage cascade, with zero
// bit-level disagreements tolerated.
func TestShardedDifferential(t *testing.T) {
	const circuits = 60
	configs := RandomConfigs(1337, circuits)
	for i, cfg := range configs {
		n := circuitgen.Generate("shard", cfg)
		if err := n.Validate(); err != nil {
			t.Fatalf("circuit %d: invalid netlist: %v", i, err)
		}
		if err := CheckShardedNetlist(n, int64(3000+i), []int{2, 4, 8}); err != nil {
			t.Errorf("circuit %d (gates=%d dff=%.2f): %v", i, n.NumGates(), cfg.DFFFrac, err)
		}
	}
}

// TestShardedDegenerateShapes covers the partition shapes most likely
// to break stitching: a single shard (no halo traffic at all), far
// more shards than structural levels (empty interiors, halo-dominated
// shards), and a netlist of two fully disconnected components.
func TestShardedDegenerateShapes(t *testing.T) {
	t.Run("single shard and K beyond levels", func(t *testing.T) {
		n := circuitgen.Generate("degen", circuitgen.Config{
			Seed: 5, NumGates: 70, NumPIs: 8, Layers: 3, MaxFanin: 3})
		if err := CheckShardedNetlist(n, 77, []int{1, 64}); err != nil {
			t.Fatal(err)
		}
	})
	t.Run("disconnected components", func(t *testing.T) {
		// Two independent cones sharing no nets: the undirected halo
		// BFS must stay inside each component and stitching must not
		// leak rows across them.
		src := "INPUT(a1)\nINPUT(a2)\nx1 = AND(a1, a2)\ny1 = NOT(x1)\nOUTPUT(y1)\n" +
			"INPUT(b1)\nINPUT(b2)\nx2 = OR(b1, b2)\ny2 = XOR(x2, b1)\nz2 = NAND(y2, x2)\nOUTPUT(z2)\n"
		n, err := netlist.Read(strings.NewReader(src))
		if err != nil {
			t.Fatal(err)
		}
		if err := CheckShardedNetlist(n, 99, []int{2, 3, 8}); err != nil {
			t.Fatal(err)
		}
	})
	t.Run("graph mutated by insertion", func(t *testing.T) {
		// The compiled partition is cached by (graph, N, edges); an
		// appended observation point must trigger recompilation and
		// stay bit-identical afterwards.
		n := circuitgen.Generate("degen2", circuitgen.Config{
			Seed: 6, NumGates: 90, NumPIs: 8, Layers: 5, MaxFanin: 3})
		g := core.FromNetlist(n, scoap.Compute(n))
		m, err := core.NewModel(core.Config{Dims: []int{6, 8}, FCDims: []int{8}, NumClasses: 2, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		sp, err := partition.NewSharded(m, partition.Options{K: 4, Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		defer sp.Close()
		if err := exactMatch("pre-insert", m.PredictProbs(g), sp.PredictProbs(g)); err != nil {
			t.Fatal(err)
		}
		g.AddObservationPoint(int32(g.N / 3))
		if err := exactMatch("post-insert", m.PredictProbs(g), sp.PredictProbs(g)); err != nil {
			t.Fatal(err)
		}
	})
}
