package netlist

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
)

// This file implements a textual netlist format modeled on the ISCAS-85/89
// ".bench" format, extended with OBS cells for inserted observation
// points. It is line oriented:
//
//	# comment
//	INPUT(a)
//	OUTPUT(z)
//	g1 = NAND(a, b)
//	q  = DFF(g1)
//	z  = BUF(g1)
//	OBS(g1)
//
// OUTPUT(x) and OBS(x) declare sink cells attached to net x; all other
// lines declare a named cell with its driver list. Declarations may appear
// in any order; the reader performs its own topological construction.

// Write serializes the netlist in .bench format.
func Write(w io.Writer, n *Netlist) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# %s : %d gates, %d edges\n", n.Name, n.NumGates(), n.NumEdges())
	name := benchNames(n)
	// Inputs first, then logic in topological (ID) order, then sinks.
	for i := 0; i < n.NumGates(); i++ {
		if n.gates[i].Type == Input {
			fmt.Fprintf(bw, "INPUT(%s)\n", name[i])
		}
	}
	for i := 0; i < n.NumGates(); i++ {
		g := &n.gates[i]
		switch g.Type {
		case Input:
			// already written
		case Output:
			fmt.Fprintf(bw, "OUTPUT(%s)\n", name[g.Fanin[0]])
		case Obs:
			fmt.Fprintf(bw, "OBS(%s)\n", name[g.Fanin[0]])
		default:
			args := make([]string, len(g.Fanin))
			for j, f := range g.Fanin {
				args[j] = name[f]
			}
			fmt.Fprintf(bw, "%s = %s(%s)\n", name[i], g.Type, strings.Join(args, ", "))
		}
	}
	return bw.Flush()
}

// benchNames assigns unique textual names to every cell, preferring the
// cell's own name when present.
func benchNames(n *Netlist) []string {
	names := make([]string, n.NumGates())
	seen := make(map[string]bool, n.NumGates())
	for i := range names {
		nm := n.gates[i].Name
		if nm == "" {
			nm = fmt.Sprintf("n%d", i)
		}
		// The fallback (or a duplicate user name) may itself collide
		// with a literal name already emitted — e.g. a cell named "n5"
		// alongside an unnamed cell with ID 5 — which would serialize
		// two declarations of the same net.
		for seen[nm] {
			nm += "_"
		}
		seen[nm] = true
		names[i] = nm
	}
	return names
}

// WriteFile writes the netlist to path in .bench format.
func WriteFile(path string, n *Netlist) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Write(f, n); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Read parses a .bench format netlist. Cell declarations may appear in
// any order; the reader topologically sorts them during construction and
// reports cycles and undeclared nets as errors.
func Read(r io.Reader) (*Netlist, error) {
	type decl struct {
		typ    GateType
		fanin  []string
		line   int
		isSink bool
	}
	decls := make(map[string]decl)
	var sinkDecls []decl
	var order []string // declaration order of named cells, for stable output

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	lineNo := 0
	name := "netlist"
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if lineNo == 1 {
				fields := strings.Fields(strings.TrimPrefix(line, "#"))
				if len(fields) > 0 {
					name = fields[0]
				}
			}
			continue
		}
		switch {
		case strings.HasPrefix(line, "INPUT(") && strings.HasSuffix(line, ")"):
			net := strings.TrimSpace(line[len("INPUT(") : len(line)-1])
			if _, dup := decls[net]; dup {
				return nil, fmt.Errorf("netlist: line %d: duplicate declaration of %q", lineNo, net)
			}
			decls[net] = decl{typ: Input, line: lineNo}
			order = append(order, net)
		case strings.HasPrefix(line, "OUTPUT(") && strings.HasSuffix(line, ")"):
			net := strings.TrimSpace(line[len("OUTPUT(") : len(line)-1])
			sinkDecls = append(sinkDecls, decl{typ: Output, fanin: []string{net}, line: lineNo, isSink: true})
		case strings.HasPrefix(line, "OBS(") && strings.HasSuffix(line, ")"):
			net := strings.TrimSpace(line[len("OBS(") : len(line)-1])
			sinkDecls = append(sinkDecls, decl{typ: Obs, fanin: []string{net}, line: lineNo, isSink: true})
		default:
			eq := strings.Index(line, "=")
			if eq < 0 {
				return nil, fmt.Errorf("netlist: line %d: cannot parse %q", lineNo, line)
			}
			lhs := strings.TrimSpace(line[:eq])
			rhs := strings.TrimSpace(line[eq+1:])
			open := strings.Index(rhs, "(")
			if open < 0 || !strings.HasSuffix(rhs, ")") {
				return nil, fmt.Errorf("netlist: line %d: cannot parse expression %q", lineNo, rhs)
			}
			t, err := ParseGateType(strings.TrimSpace(rhs[:open]))
			if err != nil {
				return nil, fmt.Errorf("netlist: line %d: %v", lineNo, err)
			}
			var fanin []string
			for _, a := range strings.Split(rhs[open+1:len(rhs)-1], ",") {
				a = strings.TrimSpace(a)
				if a != "" {
					fanin = append(fanin, a)
				}
			}
			if _, dup := decls[lhs]; dup {
				return nil, fmt.Errorf("netlist: line %d: duplicate declaration of %q", lineNo, lhs)
			}
			decls[lhs] = decl{typ: t, fanin: fanin, line: lineNo}
			order = append(order, lhs)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}

	// Topological construction via DFS with cycle detection.
	n := New(name)
	ids := make(map[string]int32, len(decls))
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[string]uint8, len(decls))
	var build func(net string) (int32, error)
	build = func(net string) (int32, error) {
		if id, ok := ids[net]; ok {
			return id, nil
		}
		d, ok := decls[net]
		if !ok {
			return 0, fmt.Errorf("netlist: net %q used but never declared", net)
		}
		if color[net] == gray {
			return 0, fmt.Errorf("netlist: combinational cycle through net %q (line %d)", net, d.line)
		}
		color[net] = gray
		fanin := make([]int32, len(d.fanin))
		for i, f := range d.fanin {
			id, err := build(f)
			if err != nil {
				return 0, err
			}
			fanin[i] = id
		}
		color[net] = black
		id, err := n.AddGate(d.typ, net, fanin...)
		if err != nil {
			return 0, fmt.Errorf("netlist: line %d: %v", d.line, err)
		}
		ids[net] = id
		return id, nil
	}
	for _, net := range order {
		if _, err := build(net); err != nil {
			return nil, err
		}
	}
	// Sinks last, in declaration order for determinism.
	sort.SliceStable(sinkDecls, func(i, j int) bool { return sinkDecls[i].line < sinkDecls[j].line })
	for _, d := range sinkDecls {
		src, err := build(d.fanin[0])
		if err != nil {
			return nil, err
		}
		nm := ""
		if d.typ == Obs {
			nm = fmt.Sprintf("op_%d", src)
		}
		if _, err := n.AddGate(d.typ, nm, src); err != nil {
			return nil, fmt.Errorf("netlist: line %d: %v", d.line, err)
		}
	}
	return n, nil
}

// ReadFile parses the .bench file at path.
func ReadFile(path string) (*Netlist, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}
