package partition

import (
	"bytes"
	"testing"

	"repro/internal/core"
	"repro/internal/netlist"
	"repro/internal/scoap"
)

// FuzzPartition drives the partitioner (and, on small inputs, the full
// sharded executor) over arbitrary parsed .bench DAGs: whatever the
// parser accepts must partition without panicking, satisfy the
// cover/disjointness/closure invariants, and — the strongest check —
// score bit-identically to the whole-graph forward. The two control
// bytes sweep K, strategy, mode and halo depth.
func FuzzPartition(f *testing.F) {
	f.Add(uint8(2), uint8(0),
		"INPUT(a)\nINPUT(b)\ng = AND(a, b)\nq = DFF(g)\nw = OR(q, b)\nOUTPUT(w)\nOBS(q)\n")
	f.Add(uint8(7), uint8(1),
		"INPUT(n2)\nn1 = NOT(n2)\nOUTPUT(n1)\n")
	f.Add(uint8(1), uint8(3),
		"INPUT(a)\nINPUT(b)\nINPUT(c)\nx = XOR(a, b, c)\ny = XNOR(x, a)\nz = NAND(a, b)\nOUTPUT(y)\nOUTPUT(z)\n")
	f.Fuzz(func(t *testing.T, kSel, optSel uint8, src string) {
		n, err := netlist.Read(bytes.NewReader([]byte(src)))
		if err != nil {
			return // parser rejected it; nothing to partition
		}
		if n.NumGates() == 0 || n.NumGates() > 2000 {
			return
		}
		g := core.FromNetlist(n, scoap.Compute(n))
		opt := Options{
			K:        1 + int(kSel%8),
			Halo:     3 + int(optSel/4)%2, // 3 or 4 (>= the depth-3 probe model)
			Strategy: Strategy(optSel % 2),
			Mode:     Mode((optSel / 2) % 2),
		}
		p, err := New(g, opt)
		if err != nil {
			// The only legal rejection of a parsed netlist is a
			// non-topological graph, which FromNetlist cannot produce.
			t.Fatalf("New rejected a parsed netlist: %v", err)
		}
		if err := p.Validate(g); err != nil {
			t.Fatalf("invariants violated: %v", err)
		}
		if g.N > 400 {
			return // equivalence probe only on small graphs
		}
		m, err := core.NewModel(core.Config{Dims: []int{5, 6, 7}, FCDims: []int{6}, NumClasses: 2, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		sp, err := NewSharded(m, opt)
		if err != nil {
			t.Fatal(err)
		}
		defer sp.Close()
		want := m.PredictProbs(g)
		got := sp.PredictProbs(g)
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("node %d: whole-graph %v vs sharded %v (K=%d %v %v)",
					i, want[i], got[i], opt.K, opt.Strategy, opt.Mode)
			}
		}
	})
}
