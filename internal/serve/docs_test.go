package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"os"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/netlist"
	"repro/internal/scoap"
)

// replayCall is one documented request extracted from docs/SERVING.md: a
// fenced JSON block tagged with an HTML comment of the form
// <!-- replay: METHOD /path -->.
type replayCall struct {
	method, path, body string
	line               int
}

// parseReplays extracts the tagged request blocks from markdown source,
// in document order.
func parseReplays(t *testing.T, doc string) []replayCall {
	t.Helper()
	const tag = "<!-- replay: "
	var calls []replayCall
	lines := strings.Split(doc, "\n")
	for i := 0; i < len(lines); i++ {
		trimmed := strings.TrimSpace(lines[i])
		if !strings.HasPrefix(trimmed, tag) {
			continue
		}
		spec := strings.TrimSuffix(strings.TrimPrefix(trimmed, tag), " -->")
		method, path, ok := strings.Cut(spec, " ")
		if !ok {
			t.Fatalf("line %d: malformed replay tag %q", i+1, trimmed)
		}
		// The tag must be immediately followed by a ```json fence (blank
		// lines allowed), whose content is the exact request body.
		j := i + 1
		for j < len(lines) && strings.TrimSpace(lines[j]) == "" {
			j++
		}
		if j >= len(lines) || strings.TrimSpace(lines[j]) != "```json" {
			t.Fatalf("line %d: replay tag %q not followed by a ```json block", i+1, trimmed)
		}
		var body []string
		for j++; j < len(lines); j++ {
			if strings.TrimSpace(lines[j]) == "```" {
				break
			}
			body = append(body, lines[j])
		}
		calls = append(calls, replayCall{
			method: method, path: path,
			body: strings.Join(body, "\n"),
			line: i + 1,
		})
		i = j
	}
	return calls
}

// TestServingDocsReplay is the end-to-end demo from docs/SERVING.md: it
// sends every documented request verbatim against a live server (with a
// real model, not a stub) in document order, substituting $DESIGN with
// the design id returned by the most recent response. Beyond status
// codes, the first score response is checked for exact agreement with
// the predictor run directly — the docs cannot drift from the server
// without this test failing.
func TestServingDocsReplay(t *testing.T) {
	doc, err := os.ReadFile("../../docs/SERVING.md")
	if err != nil {
		t.Fatal(err)
	}
	calls := parseReplays(t, string(doc))
	if len(calls) < 4 {
		t.Fatalf("found %d replayable requests in SERVING.md, want at least 4 (score, delta, opi, healthz)", len(calls))
	}

	pred := core.MustNewModel(core.DefaultConfig())
	_, ts := newTestServer(t, Options{Predictor: pred})
	client := ts.Client()

	lastDesign := ""
	for _, c := range calls {
		body := strings.ReplaceAll(c.body, "$DESIGN", lastDesign)
		var resp *http.Response
		var err error
		switch c.method {
		case "GET":
			resp, err = client.Get(ts.URL + c.path)
		case "POST":
			resp, err = client.Post(ts.URL+c.path, "application/json", strings.NewReader(body))
		default:
			t.Fatalf("SERVING.md line %d: unsupported replay method %q", c.line, c.method)
		}
		if err != nil {
			t.Fatalf("%s %s (SERVING.md line %d): %v", c.method, c.path, c.line, err)
		}
		raw, _ := readAll(t, resp)
		if resp.StatusCode != 200 {
			t.Fatalf("%s %s (SERVING.md line %d): status %d, body %s",
				c.method, c.path, c.line, resp.StatusCode, raw)
		}

		switch c.path {
		case "/v1/score":
			var sr ScoreResponse
			if err := json.Unmarshal(raw, &sr); err != nil {
				t.Fatalf("score response: %v", err)
			}
			checkDocScore(t, body, pred, sr)
			lastDesign = sr.Design
		case "/v1/score/delta":
			var req DeltaRequest
			if err := json.Unmarshal([]byte(body), &req); err != nil {
				t.Fatalf("documented delta request is not valid JSON: %v", err)
			}
			var dr ScoreResponse
			if err := json.Unmarshal(raw, &dr); err != nil {
				t.Fatalf("delta response: %v", err)
			}
			if dr.Design == req.Design || dr.Design == "" {
				t.Fatalf("delta did not re-key the design: %q -> %q", req.Design, dr.Design)
			}
			if want := len(req.Observe) + len(req.ObserveNames); len(dr.Inserted) != want {
				t.Fatalf("delta inserted %d points, want %d", len(dr.Inserted), want)
			}
			if !dr.Cached {
				t.Fatal("delta response not marked cached")
			}
			lastDesign = dr.Design
		case "/v1/opi":
			var or OPIResponse
			if err := json.Unmarshal(raw, &or); err != nil {
				t.Fatalf("opi response: %v", err)
			}
			if or.Iterations < 1 {
				t.Fatalf("opi ran %d iterations, want >= 1", or.Iterations)
			}
		case "/healthz":
			var hr HealthResponse
			if err := json.Unmarshal(raw, &hr); err != nil {
				t.Fatalf("healthz response: %v", err)
			}
			if hr.Status != "ok" {
				t.Fatalf("healthz status %q, want ok", hr.Status)
			}
		default:
			t.Fatalf("SERVING.md line %d: replay tag for undocumented path %q", c.line, c.path)
		}
	}
}

// checkDocScore verifies the documented score request end to end: the
// served scores must equal the predictor applied directly to the same
// netlist, value for value. (JSON round-trips float64 exactly, so exact
// comparison is sound.)
func checkDocScore(t *testing.T, reqBody string, pred core.IncrementalPredictor, got ScoreResponse) {
	t.Helper()
	var req ScoreRequest
	if err := json.Unmarshal([]byte(reqBody), &req); err != nil {
		t.Fatalf("documented score request is not valid JSON: %v", err)
	}
	n, err := netlist.Read(strings.NewReader(req.Netlist))
	if err != nil {
		t.Fatalf("documented netlist does not parse: %v", err)
	}
	meas := scoap.Compute(n)
	g := core.FromNetlist(n, meas)
	want := pred.PredictProbs(g)
	if got.Nodes != len(want) || len(got.Scores) != len(want) {
		t.Fatalf("scored %d/%d nodes, want %d", got.Nodes, len(got.Scores), len(want))
	}
	for v := range want {
		if got.Scores[v] != want[v] {
			t.Fatalf("node %d: served score %g, direct predictor %g", v, got.Scores[v], want[v])
		}
	}
	if got.Design == "" || got.Cached {
		t.Fatalf("first score of a fresh design: design=%q cached=%v", got.Design, got.Cached)
	}
}

func readAll(t *testing.T, resp *http.Response) ([]byte, error) {
	t.Helper()
	defer resp.Body.Close()
	var buf bytes.Buffer
	_, err := buf.ReadFrom(resp.Body)
	return buf.Bytes(), err
}
