package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"testing"
)

func TestCacheLRUEviction(t *testing.T) {
	stub := &stubPredictor{}
	s, ts := newTestServer(t, Options{Predictor: stub, CacheEntries: 2})

	var first, second, third ScoreResponse
	postJSON(t, ts.URL+"/v1/score", ScoreRequest{Netlist: tinyBench}, &first)
	postJSON(t, ts.URL+"/v1/score", ScoreRequest{Netlist: otherBench}, &second)
	postJSON(t, ts.URL+"/v1/score", ScoreRequest{Netlist: thirdBench}, &third)

	if got := s.CachedDesigns(); got != 2 {
		t.Fatalf("cache holds %d designs, want 2", got)
	}

	// The oldest design was evicted: a delta against it is a 404 and
	// rescoring it recompiles (cached=false, one more forward).
	body, _ := json.Marshal(DeltaRequest{Design: first.Design, Observe: []int32{2}})
	resp, err := http.Post(ts.URL+"/v1/score/delta", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 404 || errCategory(t, resp) != ErrNotFound {
		t.Fatalf("evicted design delta: status %d", resp.StatusCode)
	}
	forwards := stub.forwards.Load()
	var re ScoreResponse
	postJSON(t, ts.URL+"/v1/score", ScoreRequest{Netlist: tinyBench}, &re)
	if re.Cached {
		t.Fatal("evicted design served as cached")
	}
	if stub.forwards.Load() != forwards+1 {
		t.Fatal("rescore of evicted design did not recompile")
	}

	// The most recent two stayed warm.
	var again ScoreResponse
	postJSON(t, ts.URL+"/v1/score", ScoreRequest{Netlist: thirdBench}, &again)
	if !again.Cached {
		t.Fatal("recently used design was evicted")
	}
}

// TestCacheLRUTouchOnHit verifies hits refresh recency: after touching
// the oldest of two entries, inserting a third evicts the middle one.
func TestCacheLRUTouchOnHit(t *testing.T) {
	_, ts := newTestServer(t, Options{Predictor: &stubPredictor{}, CacheEntries: 2})
	postJSON(t, ts.URL+"/v1/score", ScoreRequest{Netlist: tinyBench}, nil)
	postJSON(t, ts.URL+"/v1/score", ScoreRequest{Netlist: otherBench}, nil)
	postJSON(t, ts.URL+"/v1/score", ScoreRequest{Netlist: tinyBench}, nil)  // touch oldest
	postJSON(t, ts.URL+"/v1/score", ScoreRequest{Netlist: thirdBench}, nil) // evicts otherBench

	var tiny ScoreResponse
	postJSON(t, ts.URL+"/v1/score", ScoreRequest{Netlist: tinyBench}, &tiny)
	if !tiny.Cached {
		t.Fatal("touched design was evicted")
	}
	var other ScoreResponse
	postJSON(t, ts.URL+"/v1/score", ScoreRequest{Netlist: otherBench}, &other)
	if other.Cached {
		t.Fatal("least recently used design survived past capacity")
	}
}

// TestCacheHashCollisionSafety forces every design onto one cache key
// and proves correctness does not rest on the hash: the stored netlist
// text is compared on lookup, so a colliding request recompiles instead
// of serving another design's scores.
func TestCacheHashCollisionSafety(t *testing.T) {
	s, ts := newTestServer(t, Options{Predictor: &stubPredictor{}})
	s.cache.hasher = func([]byte) string { return "collision" } // test-only hook

	collisionsBefore := mCacheCollisions.Value()
	var a, b ScoreResponse
	postJSON(t, ts.URL+"/v1/score", ScoreRequest{Netlist: tinyBench}, &a)
	postJSON(t, ts.URL+"/v1/score", ScoreRequest{Netlist: otherBench}, &b)

	if b.Cached {
		t.Fatal("colliding design served from another design's cache entry")
	}
	wantB := expectedScores(t, otherBench)
	if len(b.Scores) != len(wantB) {
		t.Fatalf("got %d scores, want %d", len(b.Scores), len(wantB))
	}
	for v := range wantB {
		if b.Scores[v] != wantB[v] {
			t.Fatalf("node %d: colliding request returned %g, want %g", v, b.Scores[v], wantB[v])
		}
	}
	if mCacheCollisions.Value() == collisionsBefore {
		t.Fatal("collision not counted")
	}
}

func TestDeltaIDDeterministicAndDistinct(t *testing.T) {
	a := deltaID("base", []int32{1, 2})
	if a != deltaID("base", []int32{1, 2}) {
		t.Fatal("deltaID not deterministic")
	}
	for _, other := range []string{
		deltaID("base", []int32{2, 1}),
		deltaID("base", []int32{1}),
		deltaID("other", []int32{1, 2}),
		"base",
	} {
		if a == other {
			t.Fatalf("deltaID collision with %q", other)
		}
	}
}

func TestCacheDisabled(t *testing.T) {
	stub := &stubPredictor{}
	s, ts := newTestServer(t, Options{Predictor: stub, CacheEntries: -1})
	var resp ScoreResponse
	postJSON(t, ts.URL+"/v1/score", ScoreRequest{Netlist: tinyBench}, &resp)
	if s.CachedDesigns() != 0 {
		t.Fatal("disabled cache stored a design")
	}
	// Every id is unknown to the delta path.
	body, _ := json.Marshal(DeltaRequest{Design: resp.Design, Observe: []int32{2}})
	hresp, err := http.Post(ts.URL+"/v1/score/delta", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer hresp.Body.Close()
	if hresp.StatusCode != 404 {
		t.Fatalf("delta on uncached design: status %d", hresp.StatusCode)
	}
}
