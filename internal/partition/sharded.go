package partition

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/nn"
	"repro/internal/obs"
	"repro/internal/sparse"
	"repro/internal/tensor"
)

// This file is the sharded execution engine. Each shard carries its
// own sub-CSR adjacency (rows and columns remapped to a local index
// space: interior first, then halo rings outward) and local embedding
// buffers; layers run shard-parallel on the predictor's worker pool
// with a barrier per phase. Bit-identity with the whole-graph Forward
// holds because every kernel in the forward path is row-independent
// and the local matrices preserve the global CSR's per-row entry
// order, so each global row is produced by exactly one shard through
// the exact same sequence of float64 operations.

// ShardedPredictor runs a *core.Model or *core.MultiStage shard-
// parallel over a reused worker pool. It implements
// core.IncrementalPredictor (and therefore opi.Predictor and the
// serving layer's predictor contract): PredictProbs is a sharded full
// pass, and NewIncremental pays the sharded full pass once, stitches
// the per-layer embeddings into whole-graph incremental state, and
// hands the session to core — subsequent Updates are D-hop-local
// already and run unsharded. Like the predictors it wraps, a
// ShardedPredictor is not safe for concurrent use; the serving layer
// gives each slot its own clone via core.ClonePredictor.
type ShardedPredictor struct {
	base  core.IncrementalPredictor // *core.Model or *core.MultiStage
	opt   Options
	depth int // max stage depth D = halo requirement
	pool  *Pool

	cg *compiledGraph // compiled partition of the most recent graph
}

// NewSharded wraps base — a *Model or a *MultiStage — in a sharded
// executor. opt.Halo defaults to the base model's depth (the GCN
// receptive field) and values below it are rejected; larger halos are
// legal but waste memory.
func NewSharded(base core.IncrementalPredictor, opt Options) (*ShardedPredictor, error) {
	depth := 0
	switch p := base.(type) {
	case *core.Model:
		depth = p.Cfg.Depth()
	case *core.MultiStage:
		if len(p.Stages) == 0 {
			return nil, fmt.Errorf("partition: cannot shard an empty cascade")
		}
		for _, s := range p.Stages {
			if d := s.Cfg.Depth(); d > depth {
				depth = d
			}
		}
	default:
		return nil, fmt.Errorf("partition: cannot shard predictor of type %T", base)
	}
	if opt.Halo == 0 {
		opt.Halo = depth
	} else if opt.Halo < depth {
		return nil, fmt.Errorf("partition: halo %d smaller than model receptive field %d", opt.Halo, depth)
	}
	if err := opt.validate(); err != nil {
		return nil, err
	}
	return &ShardedPredictor{base: base, opt: opt, depth: depth, pool: NewPool(opt.Workers)}, nil
}

// Base returns the wrapped predictor.
func (sp *ShardedPredictor) Base() core.IncrementalPredictor { return sp.base }

// NumShards returns the configured shard count K.
func (sp *ShardedPredictor) NumShards() int { return sp.opt.K }

// Workers returns the worker pool size.
func (sp *ShardedPredictor) Workers() int { return sp.pool.Workers() }

// Close releases the worker pool. The predictor remains usable; later
// calls run shards inline on the calling goroutine.
func (sp *ShardedPredictor) Close() { sp.pool.Close() }

// ClonePredictor deep-copies the predictor — cloned base, fresh pool
// and compiled-partition cache — satisfying core.PredictorCloner so
// the serving layer's per-slot cloning isolates sharded predictors
// exactly like plain ones.
func (sp *ShardedPredictor) ClonePredictor() core.IncrementalPredictor {
	return &ShardedPredictor{
		base:  core.ClonePredictor(sp.base),
		opt:   sp.opt,
		depth: sp.depth,
		pool:  NewPool(sp.opt.Workers),
	}
}

// PredictProbs runs sharded inference and returns per-node positive
// probabilities bit-identical to the base predictor's PredictProbs.
//
// When the base predictor has float32 inference enabled, the call
// delegates to the base's whole-graph f32 path instead: the sharded
// kernels are float64-only by design, because their stitching contract
// is bit-identity with the f64 base, and narrowing per shard would
// change summation boundaries between shard layouts.
func (sp *ShardedPredictor) PredictProbs(g *core.Graph) []float64 {
	if fi, ok := sp.base.(core.Float32Inferencer); ok && fi.Float32Inference() {
		return sp.base.PredictProbs(g)
	}
	cg := sp.compile(g)
	switch p := sp.base.(type) {
	case *core.Model:
		probs, _, _ := cg.runModel(p, sp.pool, sp.opt.Mode, false)
		return probs
	case *core.MultiStage:
		stageProbs := make([][]float64, len(p.Stages))
		for i, m := range p.Stages {
			stageProbs[i], _, _ = cg.runModel(m, sp.pool, sp.opt.Mode, false)
		}
		return p.CombineStageProbs(g.N, stageProbs)
	}
	panic("partition: unreachable base type")
}

// SetFloat32Inference forwards the float32 flag to the wrapped base
// predictor, making ShardedPredictor satisfy core.Float32Inferencer so
// the serving layer's Float32Scoring option works behind sharding. With
// the flag on, PredictProbs bypasses the shard kernels (see above).
func (sp *ShardedPredictor) SetFloat32Inference(on bool) {
	if fi, ok := sp.base.(core.Float32Inferencer); ok {
		fi.SetFloat32Inference(on)
	}
}

// Float32Inference reports whether the wrapped base predictor scores in
// float32.
func (sp *ShardedPredictor) Float32Inference() bool {
	fi, ok := sp.base.(core.Float32Inferencer)
	return ok && fi.Float32Inference()
}

// NewIncremental pays one sharded full pass, stitches the per-shard
// embeddings and logits into whole-graph incremental state, and
// returns the base predictor's incremental session over that state.
func (sp *ShardedPredictor) NewIncremental(g *core.Graph) core.IncrementalRun {
	cg := sp.compile(g)
	switch p := sp.base.(type) {
	case *core.Model:
		_, embeds, logits := cg.runModel(p, sp.pool, sp.opt.Mode, true)
		return p.RunFromState(core.NewIncrementalState(embeds, logits))
	case *core.MultiStage:
		states := make([]*core.IncrementalState, len(p.Stages))
		for i, m := range p.Stages {
			_, embeds, logits := cg.runModel(m, sp.pool, sp.opt.Mode, true)
			states[i] = core.NewIncrementalState(embeds, logits)
		}
		return p.RunFromStates(states)
	}
	panic("partition: unreachable base type")
}

// Partition exposes the partition of the most recently compiled graph
// (compiling g if needed) for inspection and tests.
func (sp *ShardedPredictor) Partition(g *core.Graph) *Partition {
	return sp.compile(g).part
}

// haloRef tells the exchange phase where a ring-1 halo row lives in
// its owner shard.
type haloRef struct {
	local      int32 // row in this shard's local index space
	ownerShard int32
	ownerLocal int32 // interior row in the owner's local index space
}

// compiledShard is one shard's execution state: local index space,
// sub-CSR adjacency, and reusable embedding/scratch buffers.
type compiledShard struct {
	locals    []int32 // interior ++ ring1 ++ ... ++ ringH (global ids)
	nInterior int
	cuts      []int // cuts[h] = nInterior + Σ_{i<=h} |ring_i|; cuts[0] = nInterior
	P, S      *sparse.CSR
	halo      []haloRef // ring-1 rows to refresh between layers (Exchange mode)

	embeds      []*tensor.Dense // per-layer local embeddings (full local height)
	pe, se, agg *tensor.Dense
	fcA, fcB    *tensor.Dense
}

// active returns how many local rows (a prefix: interior first, rings
// outward) layer d of a depth-D model computes in the given mode.
func (cs *compiledShard) active(mode Mode, d, D int) int {
	if mode == OneShot {
		return cs.cuts[D-d]
	}
	return cs.nInterior
}

// compiledGraph caches the partition and per-shard execution state for
// one graph, keyed by identity, node count and edge count so OPI-style
// in-place growth recompiles.
type compiledGraph struct {
	g      *core.Graph
	n      int
	edges  int
	part   *Partition
	shards []*compiledShard
}

// compile builds (or reuses) the per-shard execution state for g.
// Option errors were rejected at NewSharded; the only failure left is
// a graph violating the core API's topological-id invariant, which
// panics like any other malformed-input misuse of a predictor.
func (sp *ShardedPredictor) compile(g *core.Graph) *compiledGraph {
	if cg := sp.cg; cg != nil && cg.g == g && cg.n == g.N && cg.edges == g.NumEdges() {
		return cg
	}
	part, err := New(g, sp.opt)
	if err != nil {
		panic(err)
	}
	// interiorPos[v] = index of v in its owner's (sorted) interior;
	// localIdx is the shared global→local scratch, reset after each
	// shard so one allocation serves all K.
	interiorPos := make([]int32, g.N)
	for _, sh := range part.Shards {
		for i, v := range sh.Interior {
			interiorPos[v] = int32(i)
		}
	}
	localIdx := make([]int32, g.N)
	for i := range localIdx {
		localIdx[i] = -1
	}
	cg := &compiledGraph{g: g, n: g.N, edges: g.NumEdges(), part: part}
	for _, sh := range part.Shards {
		locals := make([]int32, 0, len(sh.Interior)+sh.HaloSize())
		locals = append(locals, sh.Interior...)
		cuts := make([]int, len(sh.Rings)+1)
		cuts[0] = len(sh.Interior)
		for h, ring := range sh.Rings {
			locals = append(locals, ring...)
			cuts[h+1] = cuts[h] + len(ring)
		}
		for li, v := range locals {
			localIdx[v] = int32(li)
		}
		// Exchange computes interior rows only; OneShot additionally
		// computes rings 1..D-1 at the early layers. Rows past that
		// never run, so their sub-CSR rows stay empty.
		maxRows := cuts[0]
		if sp.opt.Mode == OneShot {
			maxRows = cuts[sp.depth-1]
		}
		cs := &compiledShard{
			locals:    locals,
			nInterior: len(sh.Interior),
			cuts:      cuts,
			P:         localSubCSR(g.PredEntries, locals, localIdx, maxRows),
			S:         localSubCSR(g.SuccEntries, locals, localIdx, maxRows),
			embeds:    make([]*tensor.Dense, sp.depth+1),
		}
		if sp.opt.Mode == Exchange && sp.depth > 1 && len(sh.Rings) > 0 {
			for _, v := range sh.Rings[0] {
				cs.halo = append(cs.halo, haloRef{
					local:      localIdx[v],
					ownerShard: part.Owner[v],
					ownerLocal: interiorPos[v],
				})
			}
		}
		cg.shards = append(cg.shards, cs)
		for _, v := range locals {
			localIdx[v] = -1
		}
	}
	sp.cg = cg
	return cg
}

// localSubCSR extracts the first maxRows local rows of the global
// adjacency into the shard's local index space, preserving the global
// per-row entry order (the bit-identity requirement). The halo-closure
// invariant guarantees every referenced column is local.
func localSubCSR(rowOf func(int32) ([]int32, []float64), locals []int32, localIdx []int32, maxRows int) *sparse.CSR {
	n := len(locals)
	nnz := 0
	for li := 0; li < maxRows; li++ {
		cols, _ := rowOf(locals[li])
		nnz += len(cols)
	}
	rowPtr := make([]int32, n+1)
	colIdx := make([]int32, 0, nnz)
	vals := make([]float64, 0, nnz)
	for li := 0; li < n; li++ {
		rowPtr[li] = int32(len(colIdx))
		if li >= maxRows {
			continue
		}
		cols, vs := rowOf(locals[li])
		for i, c := range cols {
			lc := localIdx[c]
			if lc < 0 {
				panic("partition: halo closure violated (internal error)")
			}
			colIdx = append(colIdx, lc)
			vals = append(vals, vs[i])
		}
	}
	rowPtr[n] = int32(len(colIdx))
	return &sparse.CSR{NumRows: n, NumCols: n, RowPtr: rowPtr, ColIdx: colIdx, Vals: vals}
}

// scratch resizes *p to rows×cols, reusing the backing array when
// capacity allows (same pattern as core's incremental buffers).
func scratch(p **tensor.Dense, rows, cols int) *tensor.Dense {
	d := *p
	if d == nil || cap(d.Data) < rows*cols {
		d = &tensor.Dense{Data: make([]float64, rows*cols)}
	}
	d.Rows, d.Cols = rows, cols
	d.Data = d.Data[:rows*cols]
	*p = d
	return d
}

// prefixView returns the first rows rows of d as a shared-storage view.
func prefixView(d *tensor.Dense, rows int) *tensor.Dense {
	return &tensor.Dense{Rows: rows, Cols: d.Cols, Data: d.Data[:rows*d.Cols]}
}

// runModel executes one sharded forward pass of m and returns the
// per-node positive probabilities. With wantStates it additionally
// stitches whole-graph per-layer embeddings and logits (the inputs to
// core.NewIncrementalState); both are nil otherwise.
func (cg *compiledGraph) runModel(m *core.Model, pool *Pool, mode Mode, wantStates bool) ([]float64, []*tensor.Dense, *tensor.Dense) {
	span := obs.StartSpan("infer/sharded")
	defer span.End()
	shardedInferences.Inc()
	D := len(m.Enc)
	wpr, wsu := m.Wpr.Data[0], m.Wsu.Data[0]
	probs := make([]float64, cg.n)
	var ge []*tensor.Dense
	var logitsG *tensor.Dense
	if wantStates {
		ge = make([]*tensor.Dense, D+1)
		ge[0] = cg.g.X.Clone()
		for d := 1; d <= D; d++ {
			ge[d] = tensor.NewDense(cg.n, m.Enc[d-1].Out)
		}
		logitsG = tensor.NewDense(cg.n, m.FC.Layers[len(m.FC.Layers)-1].Out)
	}

	// Phase 0: scatter attribute rows into each shard's local E0.
	tasks := make([]func(), 0, len(cg.shards))
	for _, cs := range cg.shards {
		cs := cs
		if len(cs.locals) == 0 {
			continue
		}
		tasks = append(tasks, func() {
			e0 := scratch(&cs.embeds[0], len(cs.locals), cg.g.X.Cols)
			for li, v := range cs.locals {
				copy(e0.Row(li), cg.g.X.Row(int(v)))
			}
		})
	}
	pool.Run(tasks)

	// Layers: compute (barrier), then in Exchange mode refresh ring-1
	// halo rows from their owners (barrier) before the next layer.
	for d := 1; d <= D; d++ {
		d := d
		enc := m.Enc[d-1]
		tasks = tasks[:0]
		for _, cs := range cg.shards {
			cs := cs
			act := cs.active(mode, d, D)
			if act == 0 {
				continue
			}
			tasks = append(tasks, func() {
				prev := cs.embeds[d-1]
				inCols := prev.Cols
				pe := scratch(&cs.pe, act, inCols)
				se := scratch(&cs.se, act, inCols)
				agg := scratch(&cs.agg, act, inCols)
				cs.P.MulDenseRows(pe, prev, 0, act)
				cs.S.MulDenseRows(se, prev, 0, act)
				copy(agg.Data, prev.Data[:act*inCols])
				agg.AxpyInPlace(wpr, pe)
				agg.AxpyInPlace(wsu, se)
				eD := scratch(&cs.embeds[d], len(cs.locals), enc.Out)
				out := prefixView(eD, act)
				enc.ForwardInto(out, agg)
				out.ReLUInPlace()
				if wantStates {
					gd := ge[d]
					for i := 0; i < cs.nInterior; i++ {
						copy(gd.Row(int(cs.locals[i])), eD.Row(i))
					}
				}
			})
		}
		pool.Run(tasks)
		if mode == Exchange && d < D {
			tasks = tasks[:0]
			for _, cs := range cg.shards {
				cs := cs
				if cs.nInterior == 0 || len(cs.halo) == 0 {
					continue
				}
				tasks = append(tasks, func() {
					dst := cs.embeds[d]
					for _, h := range cs.halo {
						src := cg.shards[h.ownerShard].embeds[d]
						copy(dst.Row(int(h.local)), src.Row(int(h.ownerLocal)))
					}
					exchangedRows.Add(int64(len(cs.halo)))
				})
			}
			pool.Run(tasks)
		}
	}

	// FC head + softmax over each shard's interior rows. The MLP
	// layers are driven directly (not via Infer) so shards can share
	// one base model: ForwardInto only reads layer parameters, and
	// every shard owns its scratch.
	tasks = tasks[:0]
	for _, cs := range cg.shards {
		cs := cs
		if cs.nInterior == 0 {
			continue
		}
		tasks = append(tasks, func() {
			cur := prefixView(cs.embeds[D], cs.nInterior)
			bufs := [2]**tensor.Dense{&cs.fcA, &cs.fcB}
			for i, l := range m.FC.Layers {
				dst := scratch(bufs[i%2], cur.Rows, l.Out)
				l.ForwardInto(dst, cur)
				cur = dst
				if i+1 < len(m.FC.Layers) {
					cur.ReLUInPlace()
				}
			}
			pm := nn.Softmax(cur)
			for i := 0; i < cs.nInterior; i++ {
				v := int(cs.locals[i])
				probs[v] = pm.At(i, 1)
				if wantStates {
					copy(logitsG.Row(v), cur.Row(i))
				}
			}
		})
	}
	pool.Run(tasks)
	return probs, ge, logitsG
}
