package obs

import (
	"math"
	"math/rand"
	"testing"
)

// TestQuantileErrorBound is the sketch's accuracy contract: for a known
// distribution, every quantile estimate is within 1/histSub (6.25%)
// relative error of the true order statistic, and the extremes are
// exact.
func TestQuantileErrorBound(t *testing.T) {
	withEnabled(t, func() {
		h := GetHistogram("quantile.uniform")
		const n = 100000
		// 1..n in shuffled order; the true q-quantile is ceil(q*n).
		perm := rand.New(rand.NewSource(1)).Perm(n)
		for _, v := range perm {
			h.Observe(int64(v) + 1)
		}
		s := h.snapshot()
		if s.Count != n || s.Min != 1 || s.Max != n {
			t.Fatalf("count/min/max = %d/%d/%d", s.Count, s.Min, s.Max)
		}
		for _, q := range []float64{0.01, 0.1, 0.25, 0.5, 0.9, 0.95, 0.99, 0.999} {
			truth := math.Ceil(q * n)
			got := float64(s.Quantile(q))
			if relErr := math.Abs(got-truth) / truth; relErr > 1.0/histSub {
				t.Errorf("q=%g: estimate %g vs true %g (rel err %.4f > %.4f)",
					q, got, truth, relErr, 1.0/histSub)
			}
		}
		if s.Quantile(0) != 1 || s.Quantile(1) != n {
			t.Errorf("extremes: p0=%d p100=%d", s.Quantile(0), s.Quantile(1))
		}
		// The snapshot publishes p50/p95/p99 consistently with Quantile.
		if s.P50 != s.Quantile(0.50) || s.P95 != s.Quantile(0.95) || s.P99 != s.Quantile(0.99) {
			t.Errorf("published quantiles %d/%d/%d disagree with Quantile", s.P50, s.P95, s.P99)
		}
	})
}

// TestQuantileExactBelowSixteen pins that small observations (< histSub)
// are bucketed exactly, so e.g. iteration-count histograms have
// zero-error quantiles.
func TestQuantileExactBelowSixteen(t *testing.T) {
	withEnabled(t, func() {
		h := GetHistogram("quantile.small")
		for v := int64(0); v < histSub; v++ {
			h.Observe(v)
		}
		s := h.snapshot()
		for v := int64(0); v < histSub; v++ {
			q := (float64(v) + 1) / histSub
			if got := s.Quantile(q); got != v {
				t.Errorf("q=%g: got %d, want exactly %d", q, got, v)
			}
		}
	})
}

// TestQuantileEmptyAndDegenerate covers the edge shapes.
func TestQuantileEmptyAndDegenerate(t *testing.T) {
	var empty HistogramSnapshot
	if empty.Quantile(0.5) != 0 {
		t.Error("empty snapshot quantile != 0")
	}
	withEnabled(t, func() {
		h := GetHistogram("quantile.one")
		h.Observe(12345)
		s := h.snapshot()
		for _, q := range []float64{0, 0.5, 0.99, 1} {
			if got := s.Quantile(q); got != 12345 {
				t.Errorf("single-observation q=%g: got %d", q, got)
			}
		}
	})
}

// TestBucketIndexUpperRoundTrip checks the log-linear bucket math across
// the whole int64 range: every value's bucket upper bound is >= the
// value, within 1/histSub relative error, and bucket bounds are strictly
// increasing.
func TestBucketIndexUpperRoundTrip(t *testing.T) {
	vals := []int64{0, 1, 15, 16, 17, 31, 32, 33, 100, 1000, 1 << 20, 1<<40 + 12345, math.MaxInt64}
	for _, v := range vals {
		idx := bucketIndex(v)
		if idx < 0 || idx >= histBuckets {
			t.Fatalf("v=%d: index %d out of range", v, idx)
		}
		up := bucketUpper(idx)
		if up < v {
			t.Errorf("v=%d: upper %d below value", v, up)
		}
		if v >= histSub && float64(up-v) > float64(v)/histSub {
			t.Errorf("v=%d: upper %d exceeds error bound", v, up)
		}
	}
	prev := int64(-1)
	for i := 0; i < histBuckets; i++ {
		up := bucketUpper(i)
		if up <= prev {
			t.Fatalf("bucket %d: upper %d not increasing past %d", i, up, prev)
		}
		prev = up
	}
}

// BenchmarkHistogramObserve measures the quantile sketch's hot path: one
// enabled Observe including the log-linear bucket index computation.
func BenchmarkHistogramObserve(b *testing.B) {
	Reset()
	Enable()
	defer func() { Disable(); Reset() }()
	h := GetHistogram("bench.observe")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i)*2654435761 + 17)
	}
}

// BenchmarkHistogramSnapshotQuantiles measures the read side: one
// snapshot with p50/p95/p99 computation over a populated sketch.
func BenchmarkHistogramSnapshotQuantiles(b *testing.B) {
	Reset()
	Enable()
	defer func() { Disable(); Reset() }()
	h := GetHistogram("bench.snapshot")
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100000; i++ {
		h.Observe(rng.Int63n(1 << 30))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := h.snapshot()
		if s.P99 == 0 {
			b.Fatal("p99 = 0")
		}
	}
}
