// Package metrics provides the classification metrics used throughout
// the evaluation: accuracy for the balanced Table 2 comparison and
// precision/recall/F1 for the imbalanced Figure 9 comparison, where the
// paper notes plain accuracy would be misleading.
package metrics

// Confusion is a binary confusion matrix. Entries with label < 0 are
// skipped by NewConfusion.
type Confusion struct {
	TP, TN, FP, FN int
}

// NewConfusion tallies predictions against labels; rows with label < 0
// (unlabeled) are ignored.
func NewConfusion(pred, labels []int) Confusion {
	var c Confusion
	for i, l := range labels {
		if l < 0 {
			continue
		}
		switch {
		case l == 1 && pred[i] == 1:
			c.TP++
		case l == 1 && pred[i] != 1:
			c.FN++
		case l == 0 && pred[i] == 1:
			c.FP++
		default:
			c.TN++
		}
	}
	return c
}

// Total returns the number of counted samples.
func (c Confusion) Total() int { return c.TP + c.TN + c.FP + c.FN }

// Accuracy returns (TP+TN)/total, or 0 on an empty matrix.
func (c Confusion) Accuracy() float64 {
	t := c.Total()
	if t == 0 {
		return 0
	}
	return float64(c.TP+c.TN) / float64(t)
}

// Precision returns TP/(TP+FP), or 0 when nothing was predicted positive.
func (c Confusion) Precision() float64 {
	if c.TP+c.FP == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FP)
}

// Recall returns TP/(TP+FN), or 0 when there are no positives.
func (c Confusion) Recall() float64 {
	if c.TP+c.FN == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FN)
}

// F1 returns the harmonic mean of precision and recall.
func (c Confusion) F1() float64 {
	p, r := c.Precision(), c.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}
