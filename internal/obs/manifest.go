package obs

import (
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strings"
	"sync"
)

// Manifest is the machine-readable record of one run: what was run
// (name + arbitrary config), where (Go version, OS/arch, CPU budget,
// git revision), and what happened (span tree + metrics). Marshaling is
// deterministic given identical contents: map keys are sorted by
// encoding/json and span children are sorted by name at snapshot time,
// so two manifests of the same run differ only in measured quantities.
type Manifest struct {
	// SchemaVersion identifies the manifest layout; bump on breaking
	// changes so downstream tooling can dispatch.
	SchemaVersion int `json:"schema_version"`
	// Name identifies the run (e.g. "experiments" or a subcommand).
	Name string `json:"name"`
	// Config echoes the run's configuration verbatim (flag values,
	// experiment Config struct, ...).
	Config any `json:"config,omitempty"`
	// GoVersion, GOOS and GOARCH identify the toolchain and platform.
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	// NumCPU and GOMAXPROCS record the machine's and the process's
	// parallelism budget.
	NumCPU     int `json:"num_cpu"`
	GOMAXPROCS int `json:"gomaxprocs"`
	// GitDescribe is `git describe --always --dirty` at run time; empty
	// when the binary runs outside a git checkout.
	GitDescribe string `json:"git_describe,omitempty"`
	// Snapshot holds the span tree and metric values.
	Snapshot Snapshot `json:"snapshot"`
}

// NewManifest captures the environment and the current registry
// snapshot into a manifest for the named run.
func NewManifest(name string, config any) *Manifest {
	return &Manifest{
		SchemaVersion: 1,
		Name:          name,
		Config:        config,
		GoVersion:     runtime.Version(),
		GOOS:          runtime.GOOS,
		GOARCH:        runtime.GOARCH,
		NumCPU:        runtime.NumCPU(),
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		GitDescribe:   GitDescribe(),
		Snapshot:      TakeSnapshot(),
	}
}

var (
	gitDescribeOnce sync.Once
	gitDescribeVal  string
)

// GitDescribe returns `git describe --always --dirty` for the current
// working directory, or "" if git or the repository is unavailable.
// The result is computed once per process: the revision cannot change
// under a running binary, and shelling out to git on every manifest
// write is measurable.
func GitDescribe() string {
	gitDescribeOnce.Do(func() {
		out, err := exec.Command("git", "describe", "--always", "--dirty").Output()
		if err != nil {
			return
		}
		gitDescribeVal = strings.TrimSpace(string(out))
	})
	return gitDescribeVal
}

// MarshalIndent renders the manifest as indented JSON with a trailing
// newline.
func (m *Manifest) MarshalIndent() ([]byte, error) {
	b, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// WriteFile serializes the manifest to path.
func (m *Manifest) WriteFile(path string) error {
	b, err := m.MarshalIndent()
	if err != nil {
		return fmt.Errorf("obs: marshal manifest: %w", err)
	}
	if err := os.WriteFile(path, b, 0o644); err != nil {
		return fmt.Errorf("obs: write manifest: %w", err)
	}
	return nil
}

// WriteManifest is the one-call form most binaries use: snapshot the
// registry and write the run manifest to path.
func WriteManifest(path, name string, config any) error {
	return NewManifest(name, config).WriteFile(path)
}
