#!/usr/bin/env bash
# Pre-merge gate: run from anywhere; fails fast on the first problem.
#
#   ./scripts/check.sh
#
# What it checks (referenced from README.md "Measuring performance"):
#   1. go vet over every package
#   2. gofmt cleanliness (no files would be rewritten)
#   3. race-detector tests for the concurrency-heavy packages
#      (internal/obs metrics registry, internal/core parallel trainer,
#      internal/sparse parallel SpMM, internal/fault bit-parallel sim)
#   4. the full test suite
#   5. the bench-regression gate: cmd/benchcmp diffs the two most recent
#      committed BENCH_NNNN.json artifacts and fails on a regression
#      beyond tolerance (generous, because artifacts may come from
#      different machines; see docs/OBSERVABILITY.md)
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== go vet ./..."
go vet ./...

echo "== gofmt -l"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go test -race ./internal/obs ./internal/core ./internal/sparse ./internal/fault"
go test -race ./internal/obs ./internal/core ./internal/sparse ./internal/fault

echo "== go build ./... && go test ./..."
go build ./...
go test ./...

echo "== benchcmp (recorded performance trajectory)"
benches=$(ls BENCH_*.json 2>/dev/null | sort | tail -2)
if [ "$(echo "$benches" | wc -w)" -ge 2 ]; then
    # shellcheck disable=SC2086
    go run ./cmd/benchcmp -tol 0.5 $benches
else
    echo "(fewer than two BENCH_*.json artifacts; skipping)"
fi

echo "check.sh: all gates passed"
