package refcheck

import (
	"fmt"
	"math/rand"

	"repro/internal/netlist"
)

// This file is the serial single-pattern reference for the bit-parallel
// fault simulator: one bool per net, one pattern at a time, faults
// injected by forced re-simulation. Batches are reconstructed lane by
// lane so every word the fast engine produces can be checked bit for
// bit.

// EvalPattern simulates one input assignment and returns the value of
// every cell output. Controllable sources (primary inputs and scan
// flip-flop outputs) read from src; everything else is evaluated
// naively from its fanin.
func EvalPattern(n *netlist.Netlist, src func(id int32) bool) []bool {
	return evalForced(n, src, -1, false)
}

// EvalPatternWithFault is EvalPattern with a stuck-at fault forced at
// the output of node: the node is evaluated normally and then
// overwritten, so only downstream logic sees the faulty value — the
// same injection semantics as Simulator.BatchWithFault.
func EvalPatternWithFault(n *netlist.Netlist, src func(id int32) bool, node int32, stuckAt1 bool) []bool {
	return evalForced(n, src, node, stuckAt1)
}

func evalForced(n *netlist.Netlist, src func(id int32) bool, node int32, stuckAt1 bool) []bool {
	vals := make([]bool, n.NumGates())
	for _, id := range n.TopoOrder() {
		g := n.Gate(id)
		switch g.Type {
		case netlist.Input, netlist.DFF:
			vals[id] = src(id)
		case netlist.Output, netlist.Obs, netlist.Buf:
			vals[id] = vals[g.Fanin[0]]
		case netlist.Not:
			vals[id] = !vals[g.Fanin[0]]
		case netlist.And, netlist.Nand:
			v := true
			for _, f := range g.Fanin {
				v = v && vals[f]
			}
			if g.Type == netlist.Nand {
				v = !v
			}
			vals[id] = v
		case netlist.Or, netlist.Nor:
			v := false
			for _, f := range g.Fanin {
				v = v || vals[f]
			}
			if g.Type == netlist.Nor {
				v = !v
			}
			vals[id] = v
		case netlist.Xor, netlist.Xnor:
			v := false
			for _, f := range g.Fanin {
				v = v != vals[f]
			}
			if g.Type == netlist.Xnor {
				v = !v
			}
			vals[id] = v
		default:
			panic(fmt.Sprintf("refcheck: unhandled gate type %v", g.Type))
		}
		if id == node {
			vals[id] = stuckAt1
		}
	}
	return vals
}

// SinkValues returns the value seen at every observation sink (the
// sink's fanin net), in sink ID order — the serial counterpart of
// Simulator.SinkResponses.
func SinkValues(n *netlist.Netlist, vals []bool) []bool {
	var out []bool
	for id := int32(0); id < int32(n.NumGates()); id++ {
		if n.Type(id).IsObservationSink() {
			out = append(out, vals[n.Fanin(id)[0]])
		}
	}
	return out
}

// BatchSourceWords reproduces the per-source 64-pattern words that
// fault.Simulator.Batch draws for the given (seed, batch) pair: a fresh
// rand.Rand draws one word per controllable source in topological
// order, one batch after another. This mirrors the (documented)
// replay convention of fault.ExactDetectMask, so serial, batch and
// exact engines can all be driven by identical patterns.
func BatchSourceWords(n *netlist.Netlist, seed int64, batch int) map[int32]uint64 {
	rng := rand.New(rand.NewSource(seed))
	var out map[int32]uint64
	for b := 0; b <= batch; b++ {
		out = make(map[int32]uint64)
		for _, id := range n.TopoOrder() {
			if n.Type(id).IsControllableSource() {
				out[id] = rng.Uint64()
			}
		}
	}
	return out
}

// LaneSource adapts one bit lane of a word assignment into a serial
// boolean source function.
func LaneSource(words map[int32]uint64, lane uint) func(id int32) bool {
	return func(id int32) bool { return words[id]>>lane&1 == 1 }
}

// SerialValueWords simulates all 64 lanes of a batch one pattern at a
// time and packs the results into value words, directly comparable to
// Simulator.Values after BatchFrom on the same words.
func SerialValueWords(n *netlist.Netlist, words map[int32]uint64) []uint64 {
	return serialWords(n, words, -1, false)
}

// SerialFaultValueWords is SerialValueWords with a stuck-at fault
// forced at node, comparable to Simulator.BatchWithFault.
func SerialFaultValueWords(n *netlist.Netlist, words map[int32]uint64, node int32, stuckAt1 bool) []uint64 {
	return serialWords(n, words, node, stuckAt1)
}

func serialWords(n *netlist.Netlist, words map[int32]uint64, node int32, stuckAt1 bool) []uint64 {
	out := make([]uint64, n.NumGates())
	for lane := uint(0); lane < 64; lane++ {
		vals := evalForced(n, LaneSource(words, lane), node, stuckAt1)
		for id, v := range vals {
			if v {
				out[id] |= 1 << lane
			}
		}
	}
	return out
}

// SerialDetectMask runs 64 independent fault-free/faulty serial
// simulation pairs and returns, per lane, whether any observation sink
// differs — the ground-truth detection mask that both
// fault.ExactDetectMask and any faster criterion must reproduce.
func SerialDetectMask(n *netlist.Netlist, words map[int32]uint64, node int32, stuckAt1 bool) uint64 {
	var mask uint64
	for lane := uint(0); lane < 64; lane++ {
		src := LaneSource(words, lane)
		good := SinkValues(n, EvalPattern(n, src))
		bad := SinkValues(n, EvalPatternWithFault(n, src, node, stuckAt1))
		for i := range good {
			if good[i] != bad[i] {
				mask |= 1 << lane
				break
			}
		}
	}
	return mask
}

// CPTDetectMask converts the critical-path-tracing observability words
// of a completed batch into the detection mask that criterion implies
// for a stuck-at fault at node: the fault is predicted detected in
// every lane where the node holds the opposite value and the pattern
// observes the node. CPT merges fanout branches with OR, so this mask
// is exact on fanout-free logic but may diverge from SerialDetectMask
// under reconvergent fanout (see the known-divergence regression tests
// in internal/fault).
func CPTDetectMask(vals, obsWords []uint64, node int32, stuckAt1 bool) uint64 {
	excite := vals[node] // lanes where the node is 0 ⇒ stuck-at-1 visible
	if !stuckAt1 {
		excite = ^excite
	}
	return ^excite & obsWords[node]
}
