package core

import (
	"bytes"
	"math"
	"testing"
)

// f32Tol mirrors refcheck.F32Tolerance; the exhaustive 60-circuit
// differential suite lives in internal/refcheck, this file covers the
// in-package contract of the float32 path.
const f32Tol = 1e-4

// TestFloat32PredictMatchesFloat64 pins the basic narrowing contract:
// with the flag on, Predict and PredictProbs answer within f32Tol of the
// float64 path on every node, and turning the flag off restores the
// exact float64 scores.
func TestFloat32PredictMatchesFloat64(t *testing.T) {
	g := testGraph(41, 250)
	m := MustNewModel(tinyConfig(5))
	want := m.PredictProbs(g)

	f := m.Clone()
	f.SetFloat32Inference(true)
	if !f.Float32Inference() {
		t.Fatal("flag did not stick")
	}
	got := f.PredictProbs(g)
	for v := range want {
		if d := math.Abs(got[v] - want[v]); d > f32Tol {
			t.Fatalf("node %d: f32 %g vs f64 %g (off by %g)", v, got[v], want[v], d)
		}
	}

	// Clone propagates the flag; disabling restores exact f64 output.
	c := f.Clone()
	if !c.Float32Inference() {
		t.Fatal("Clone dropped the f32 flag")
	}
	c.SetFloat32Inference(false)
	back := c.PredictProbs(g)
	for v := range want {
		if back[v] != want[v] {
			t.Fatalf("node %d: f64 score not restored after disabling f32", v)
		}
	}
}

// TestFloat32MultiStage covers the cascade plumbing: the setter reaches
// every stage, the getter is the conjunction (and false for an empty
// cascade), and combined probabilities track the f64 cascade.
func TestFloat32MultiStage(t *testing.T) {
	g := testGraph(43, 250)
	ms := &MultiStage{
		Stages:      []*Model{MustNewModel(tinyConfig(6)), MustNewModel(tinyConfig(7))},
		FilterBelow: 0.25,
	}
	want := ms.PredictProbs(g)

	ms.SetFloat32Inference(true)
	if !ms.Float32Inference() {
		t.Fatal("cascade flag did not stick")
	}
	for i, s := range ms.Stages {
		if !s.Float32Inference() {
			t.Fatalf("stage %d missed the flag", i)
		}
	}
	got := ms.PredictProbs(g)
	for v := range want {
		if d := math.Abs(got[v] - want[v]); d > f32Tol {
			t.Fatalf("node %d: cascade f32 %g vs f64 %g", v, got[v], want[v])
		}
	}
	ms.SetFloat32Inference(false)
	if ms.Float32Inference() {
		t.Fatal("cascade flag did not clear")
	}

	empty := &MultiStage{}
	if empty.Float32Inference() {
		t.Fatal("empty cascade must report false")
	}
	empty.SetFloat32Inference(true) // must not panic
}

// TestFloat32WeightCacheInvalidation: Load and CopyParamsFrom must drop
// the narrowed weights so the next f32 prediction reflects the new
// parameters.
func TestFloat32WeightCacheInvalidation(t *testing.T) {
	g := testGraph(47, 200)
	a := MustNewModel(tinyConfig(8))
	b := MustNewModel(tinyConfig(9))

	f := a.Clone()
	f.SetFloat32Inference(true)
	_ = f.PredictProbs(g) // builds the weights32 cache

	f.CopyParamsFrom(b)
	want := b.PredictProbs(g)
	got := f.PredictProbs(g)
	for v := range want {
		if d := math.Abs(got[v] - want[v]); d > f32Tol {
			t.Fatalf("node %d: stale weights32 survived CopyParamsFrom (off by %g)", v, d)
		}
	}

	// Round-trip b through Save/Load into the f32 model: same contract.
	var buf bytes.Buffer
	third := MustNewModel(tinyConfig(10))
	if err := third.Save(&buf); err != nil {
		t.Fatal(err)
	}
	_ = f.PredictProbs(g) // rebuild cache before invalidating again
	if err := f.Load(&buf); err != nil {
		t.Fatal(err)
	}
	want = third.PredictProbs(g)
	got = f.PredictProbs(g)
	for v := range want {
		if d := math.Abs(got[v] - want[v]); d > f32Tol {
			t.Fatalf("node %d: stale weights32 survived Load (off by %g)", v, d)
		}
	}
}
