package fault

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/circuitgen"
	"repro/internal/netlist"
)

// scalarEval computes the fault-free value of every cell for one pattern
// given PI/DFF assignments; the reference for the bit-parallel simulator.
func scalarEval(n *netlist.Netlist, sources map[int32]bool) []bool {
	vals := make([]bool, n.NumGates())
	for _, id := range n.TopoOrder() {
		g := n.Gate(id)
		switch g.Type {
		case netlist.Input, netlist.DFF:
			vals[id] = sources[id]
		case netlist.Output, netlist.Obs, netlist.Buf:
			vals[id] = vals[g.Fanin[0]]
		case netlist.Not:
			vals[id] = !vals[g.Fanin[0]]
		case netlist.And, netlist.Nand:
			v := true
			for _, f := range g.Fanin {
				v = v && vals[f]
			}
			vals[id] = v != (g.Type == netlist.Nand)
		case netlist.Or, netlist.Nor:
			v := false
			for _, f := range g.Fanin {
				v = v || vals[f]
			}
			vals[id] = v != (g.Type == netlist.Nor)
		case netlist.Xor, netlist.Xnor:
			v := false
			for _, f := range g.Fanin {
				v = v != vals[f]
			}
			vals[id] = v != (g.Type == netlist.Xnor)
		}
	}
	return vals
}

func TestBatchMatchesScalarSimulation(t *testing.T) {
	f := func(seed int64) bool {
		n := circuitgen.Generate("q", circuitgen.Config{Seed: seed, NumGates: 300})
		sim := NewSimulator(n)
		rng := rand.New(rand.NewSource(seed))
		// Mirror the simulator's source assignment with a cloned RNG.
		refRng := rand.New(rand.NewSource(seed))
		sim.Batch(rng)
		words := make(map[int32]uint64)
		for _, id := range n.TopoOrder() {
			typ := n.Type(id)
			if typ == netlist.Input || typ == netlist.DFF {
				words[id] = refRng.Uint64()
			}
		}
		// Check three random bit positions.
		bitRng := rand.New(rand.NewSource(seed + 1))
		for trial := 0; trial < 3; trial++ {
			bit := uint(bitRng.Intn(64))
			sources := make(map[int32]bool)
			for id, w := range words {
				sources[id] = (w>>bit)&1 == 1
			}
			ref := scalarEval(n, sources)
			for id := int32(0); id < int32(n.NumGates()); id++ {
				got := (sim.Values()[id]>>bit)&1 == 1
				if got != ref[id] {
					t.Logf("seed %d bit %d: cell %d (%v) got %v want %v",
						seed, bit, id, n.Type(id), got, ref[id])
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

func TestObservabilityHandCase(t *testing.T) {
	// a AND b -> PO. a is observable exactly when b = 1.
	n := netlist.New("h")
	a := n.MustAddGate(netlist.Input, "a")
	b := n.MustAddGate(netlist.Input, "b")
	g := n.MustAddGate(netlist.And, "g", a, b)
	n.MustAddGate(netlist.Output, "po", g)
	sim := NewSimulator(n)
	sim.Batch(rand.New(rand.NewSource(3)))
	vals, obs := sim.Values(), sim.Obs()
	if obs[g] != ^uint64(0) {
		t.Errorf("PO net observability = %x, want all ones", obs[g])
	}
	if obs[a] != vals[b] {
		t.Errorf("obs(a) = %x, want vals(b) = %x", obs[a], vals[b])
	}
	if obs[b] != vals[a] {
		t.Errorf("obs(b) = %x, want vals(a) = %x", obs[b], vals[a])
	}
}

func TestObservabilityOrAndXor(t *testing.T) {
	// OR: side must be 0. XOR: always observable.
	n := netlist.New("h2")
	a := n.MustAddGate(netlist.Input, "a")
	b := n.MustAddGate(netlist.Input, "b")
	c := n.MustAddGate(netlist.Input, "c")
	o := n.MustAddGate(netlist.Or, "o", a, b)
	x := n.MustAddGate(netlist.Xor, "x", o, c)
	n.MustAddGate(netlist.Output, "po", x)
	sim := NewSimulator(n)
	sim.Batch(rand.New(rand.NewSource(5)))
	vals, obs := sim.Values(), sim.Obs()
	if obs[o] != ^uint64(0) || obs[c] != ^uint64(0) {
		t.Errorf("XOR inputs should always be observable")
	}
	if obs[a] != ^vals[b] {
		t.Errorf("obs(a) = %x, want ^vals(b) = %x", obs[a], ^vals[b])
	}
}

func TestDFFScanBoundaryObservability(t *testing.T) {
	n := netlist.New("dff")
	a := n.MustAddGate(netlist.Input, "a")
	b := n.MustAddGate(netlist.Input, "b")
	g := n.MustAddGate(netlist.And, "g", a, b)
	q := n.MustAddGate(netlist.DFF, "q", g)
	n.MustAddGate(netlist.Output, "po", q)
	sim := NewSimulator(n)
	sim.Batch(rand.New(rand.NewSource(7)))
	if sim.Obs()[g] != ^uint64(0) {
		t.Error("scan flop data input should be fully observable")
	}
}

func TestObservationPointMakesNetObservable(t *testing.T) {
	// A net blocked by an AND guard is rarely observable; adding an OP
	// makes it always observable.
	n := netlist.New("op")
	a := n.MustAddGate(netlist.Input, "a")
	guards := make([]int32, 4)
	for i := range guards {
		guards[i] = n.MustAddGate(netlist.Input, "")
	}
	blocked := n.MustAddGate(netlist.Not, "blocked", a)
	cur := blocked
	for _, g := range guards {
		cur = n.MustAddGate(netlist.And, "", cur, g)
	}
	n.MustAddGate(netlist.Output, "po", cur)

	counts := ObservabilityCounts(n, 2048, 1)
	// P(all guards = 1) = 1/16, so roughly 128 of 2048 patterns.
	if counts[blocked] > 400 {
		t.Errorf("blocked net observed %d/2048, want sparse", counts[blocked])
	}
	if _, err := n.InsertObservationPoint(blocked); err != nil {
		t.Fatal(err)
	}
	counts2 := ObservabilityCounts(n, 2048, 1)
	if counts2[blocked] != 2048 {
		t.Errorf("after OP, observed %d/2048, want all", counts2[blocked])
	}
}

func TestLabelDifficult(t *testing.T) {
	n := circuitgen.Generate("lab", circuitgen.Config{Seed: 2, NumGates: 4000, ShadowFunnels: 8})
	counts := ObservabilityCounts(n, 2048, 9)
	labels := LabelDifficult(n, counts, 2048, 0.005)
	pos, neg := 0, 0
	for id, l := range labels {
		switch n.Type(int32(id)) {
		case netlist.Output, netlist.Obs, netlist.Input:
			if l != 0 {
				t.Fatalf("sink/input %d labeled positive", id)
			}
		}
		if l == 1 {
			pos++
		} else {
			neg++
		}
	}
	if pos == 0 {
		t.Fatal("no difficult nodes found; generator or labeling broken")
	}
	frac := float64(pos) / float64(pos+neg)
	if frac > 0.2 {
		t.Errorf("positive fraction = %.3f, want highly imbalanced", frac)
	}
	t.Logf("labels: %d positive / %d negative (%.2f%%)", pos, neg, 100*frac)
}

func TestGenerateTestsDetectsSimpleCircuit(t *testing.T) {
	// Small transparent circuit: everything should be covered quickly.
	n := netlist.New("cov")
	a := n.MustAddGate(netlist.Input, "a")
	b := n.MustAddGate(netlist.Input, "b")
	x := n.MustAddGate(netlist.Xor, "x", a, b)
	y := n.MustAddGate(netlist.Not, "y", x)
	n.MustAddGate(netlist.Output, "po", y)
	res := GenerateTests(n, TPGConfig{MaxPatterns: 1024, Seed: 1})
	if res.Coverage != 1 {
		t.Errorf("coverage = %v, want 1 (undetected: %v)", res.Coverage, res.UndetectedSample)
	}
	if res.PatternsUsed == 0 || res.PatternsUsed > res.PatternsSimulated {
		t.Errorf("patterns used = %d of %d", res.PatternsUsed, res.PatternsSimulated)
	}
}

func TestGenerateTestsOPImprovesCoverage(t *testing.T) {
	n := circuitgen.Generate("c", circuitgen.Config{Seed: 4, NumGates: 3000, ShadowFunnels: 6, ShadowGuard: 4})
	cfg := TPGConfig{MaxPatterns: 4096, Seed: 2}
	before := GenerateTests(n, cfg)

	// Insert OPs at all difficult nodes (brute force).
	counts := ObservabilityCounts(n, 2048, 3)
	labels := LabelDifficult(n, counts, 2048, 0.005)
	inserted := 0
	for id, l := range labels {
		if l == 1 {
			if _, err := n.InsertObservationPoint(int32(id)); err == nil {
				inserted++
			}
		}
	}
	if inserted == 0 {
		t.Skip("no difficult nodes in this configuration")
	}
	after := GenerateTests(n, cfg)
	if after.Coverage <= before.Coverage {
		t.Errorf("OPs did not improve coverage: %.4f -> %.4f (%d OPs)",
			before.Coverage, after.Coverage, inserted)
	}
	t.Logf("coverage %.4f -> %.4f with %d OPs", before.Coverage, after.Coverage, inserted)
}

func TestFaultUniverseExcludesSinks(t *testing.T) {
	n := netlist.New("u")
	a := n.MustAddGate(netlist.Input, "a")
	n.MustAddGate(netlist.Output, "po", a)
	faults := FaultUniverse(n)
	if len(faults) != 2 {
		t.Fatalf("universe = %v, want 2 faults on the PI only", faults)
	}
}

func TestGenerateTestsDeterministic(t *testing.T) {
	n := circuitgen.Generate("d", circuitgen.Config{Seed: 6, NumGates: 1000})
	a := GenerateTests(n, TPGConfig{MaxPatterns: 2048, Seed: 11})
	b := GenerateTests(n, TPGConfig{MaxPatterns: 2048, Seed: 11})
	if a.Detected != b.Detected || a.PatternsUsed != b.PatternsUsed {
		t.Errorf("nondeterministic TPG: %+v vs %+v", a, b)
	}
}

func BenchmarkBatch20k(b *testing.B) {
	n := circuitgen.Generate("b", circuitgen.Config{Seed: 1, NumGates: 20000})
	sim := NewSimulator(n)
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Batch(rng)
	}
}

func BenchmarkGenerateTests(b *testing.B) {
	n := circuitgen.Generate("b", circuitgen.Config{Seed: 1, NumGates: 5000})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		GenerateTests(n, TPGConfig{MaxPatterns: 2048, Seed: int64(i)})
	}
}
