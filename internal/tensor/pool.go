package tensor

import (
	"math/bits"
	"sync"

	"repro/internal/obs"
)

// Pooled scratch buffers. The incremental OPI loop and the serving stack
// run gather→forward→scatter thousands of times per design; allocating
// dense scratch per call keeps the GC hot and the caches cold. The pools
// below hand out size-classed (power-of-two element count) matrices so a
// buffer released at one shape is reusable at any smaller shape, and
// growth pays at most one reallocation per doubling.
//
// Contract: Get* returns a matrix whose contents are UNSPECIFIED — call
// Zero (or fully overwrite) before reading. Put* transfers ownership
// back; the caller must not retain the matrix or views of its Data.
// All functions are safe for concurrent use (sync.Pool-backed).

// Pool metrics (no-ops until obs.Enable; see docs/OBSERVABILITY.md).
var (
	poolGets   = obs.GetCounter("pool.gets")
	poolPuts   = obs.GetCounter("pool.puts")
	poolMisses = obs.GetCounter("pool.misses")
)

// poolClasses bounds the size classes at 2^(poolClasses-1) elements per
// buffer (≈1 GiB of float64), far above any graph this repo handles.
const poolClasses = 28

var (
	densePools   [poolClasses]sync.Pool
	dense32Pools [poolClasses]sync.Pool
)

// sizeClass returns the smallest c with 1<<c >= n.
func sizeClass(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len(uint(n - 1))
}

// GetDense returns a rows×cols float64 matrix backed by pooled storage.
// Contents are unspecified. Release with PutDense.
func GetDense(rows, cols int) *Dense {
	poolGets.Inc()
	n := rows * cols
	c := sizeClass(n)
	if c >= poolClasses {
		poolMisses.Inc()
		return NewDense(rows, cols)
	}
	d, _ := densePools[c].Get().(*Dense)
	if d == nil {
		poolMisses.Inc()
		d = &Dense{Data: make([]float64, 1<<c)}
	}
	d.Rows, d.Cols = rows, cols
	d.Data = d.Data[:n]
	return d
}

// PutDense returns a matrix obtained from GetDense to the pool.
// Matrices allocated elsewhere are accepted too (their capacity decides
// the class). nil and zero-capacity matrices are ignored.
func PutDense(d *Dense) {
	if d == nil || cap(d.Data) == 0 {
		return
	}
	// Floor class: every Get from class c needs at most 1<<c elements,
	// which cap >= 1<<c satisfies.
	c := bits.Len(uint(cap(d.Data))) - 1
	if c >= poolClasses {
		return
	}
	poolPuts.Inc()
	d.Data = d.Data[:cap(d.Data)]
	d.Rows, d.Cols = 0, 0
	densePools[c].Put(d)
}

// GetDense32 returns a rows×cols float32 matrix backed by pooled
// storage. Contents are unspecified. Release with PutDense32.
func GetDense32(rows, cols int) *Dense32 {
	poolGets.Inc()
	n := rows * cols
	c := sizeClass(n)
	if c >= poolClasses {
		poolMisses.Inc()
		return NewDense32(rows, cols)
	}
	d, _ := dense32Pools[c].Get().(*Dense32)
	if d == nil {
		poolMisses.Inc()
		d = &Dense32{Data: make([]float32, 1<<c)}
	}
	d.Rows, d.Cols = rows, cols
	d.Data = d.Data[:n]
	return d
}

// PutDense32 returns a matrix obtained from GetDense32 to the pool. nil
// and zero-capacity matrices are ignored.
func PutDense32(d *Dense32) {
	if d == nil || cap(d.Data) == 0 {
		return
	}
	c := bits.Len(uint(cap(d.Data))) - 1
	if c >= poolClasses {
		return
	}
	poolPuts.Inc()
	d.Data = d.Data[:cap(d.Data)]
	d.Rows, d.Cols = 0, 0
	dense32Pools[c].Put(d)
}
