package scan

import (
	"testing"

	"repro/internal/circuitgen"
	"repro/internal/netlist"
)

func TestStitchBalancesChains(t *testing.T) {
	n := circuitgen.Generate("s", circuitgen.Config{Seed: 1, NumGates: 1500})
	chains, err := Stitch(n, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(chains) != 4 {
		t.Fatalf("chains = %d", len(chains))
	}
	total := 0
	min, max := 1<<30, 0
	for _, c := range chains {
		total += len(c.Cells)
		if len(c.Cells) < min {
			min = len(c.Cells)
		}
		if len(c.Cells) > max {
			max = len(c.Cells)
		}
	}
	if total != n.CountType(netlist.DFF)+n.CountType(netlist.Obs) {
		t.Errorf("stitched %d cells, want all scan cells", total)
	}
	if max-min > 1 {
		t.Errorf("unbalanced chains: min %d max %d", min, max)
	}
}

func TestStitchRejectsZeroChains(t *testing.T) {
	n := circuitgen.Generate("s", circuitgen.Config{Seed: 2, NumGates: 200})
	if _, err := Stitch(n, 0); err == nil {
		t.Error("zero chains should fail")
	}
}

func TestEvaluateCostGrowsWithOPs(t *testing.T) {
	n := circuitgen.Generate("s", circuitgen.Config{Seed: 3, NumGates: 1500})
	before, err := Evaluate(n, 200, 4, CostModel{})
	if err != nil {
		t.Fatal(err)
	}
	for i := int32(100); i < 200; i += 10 {
		if _, err := n.InsertObservationPoint(i); err != nil {
			t.Fatal(err)
		}
	}
	after, err := Evaluate(n, 200, 4, CostModel{})
	if err != nil {
		t.Fatal(err)
	}
	if after.ObsPoints != 10 {
		t.Errorf("ObsPoints = %d", after.ObsPoints)
	}
	if after.AreaTotal <= before.AreaTotal {
		t.Error("observation points must cost area")
	}
	if after.TestCycles <= before.TestCycles {
		t.Error("longer chains must cost test cycles")
	}
	if after.AreaOverhead <= before.AreaOverhead {
		t.Error("scan overhead fraction must grow")
	}
}

func TestEvaluateFewerPatternsSaveTime(t *testing.T) {
	n := circuitgen.Generate("s", circuitgen.Config{Seed: 4, NumGates: 1000})
	many, _ := Evaluate(n, 400, 2, CostModel{})
	few, _ := Evaluate(n, 300, 2, CostModel{})
	if few.TestTimeMicro >= many.TestTimeMicro {
		t.Errorf("fewer patterns should be faster: %v vs %v", few.TestTimeMicro, many.TestTimeMicro)
	}
}

func TestTestCyclesFormula(t *testing.T) {
	// Hand-checkable: 1 chain with 3 cells, 2 patterns.
	n := netlist.New("tiny")
	a := n.MustAddGate(netlist.Input, "a")
	q1 := n.MustAddGate(netlist.DFF, "q1", a)
	q2 := n.MustAddGate(netlist.DFF, "q2", q1)
	q3 := n.MustAddGate(netlist.DFF, "q3", q2)
	n.MustAddGate(netlist.Output, "po", q3)
	r, err := Evaluate(n, 2, 1, CostModel{ShiftPeriodNS: 10})
	if err != nil {
		t.Fatal(err)
	}
	// (2+1)*3 + 2 = 11 cycles, 110 ns = 0.11 µs.
	if r.TestCycles != 11 {
		t.Errorf("TestCycles = %d, want 11", r.TestCycles)
	}
	if r.TestTimeMicro != 0.11 {
		t.Errorf("TestTimeMicro = %v, want 0.11", r.TestTimeMicro)
	}
	if r.MaxChainLen != 3 || r.ScanCells != 3 {
		t.Errorf("chain stats: %+v", r)
	}
}
