package experiments

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/opi"
	"repro/internal/scoap"
)

// Table3Row is one design's testability comparison. The commercial tool
// the paper compares against is bracketed by two stand-ins: ToolSCOAP
// (approximate-measurement TPI, SCOAP-observability-greedy) and ToolSim
// (exact-fault-simulation TPI whose difficulty criterion equals the
// labeling ground truth) — the two TPI schools cited in Section 2.2.
type Table3Row struct {
	Design    string
	ToolSCOAP opi.Evaluation
	ToolSim   opi.Evaluation
	GCNFlow   opi.Evaluation
}

// Table3Result is the full testability comparison plus the ratio rows
// (GCN / tool) the paper reports.
type Table3Result struct {
	Rows []Table3Row
	// OPRatioSCOAP etc. are aggregate GCN/tool ratios.
	OPRatioSCOAP, PatRatioSCOAP float64
	OPRatioSim, PatRatioSim     float64
	CovSCOAP, CovSim, CovGCN    float64
}

// Table3 reproduces the end-to-end testability comparison. For each
// design: a multi-stage GCN is trained on the other three designs and
// drives the iterative insertion flow; the two tool stand-ins process
// identical copies; all three modified netlists are scored by the same
// random-pattern fault simulation (#OPs, #test patterns, coverage).
func Table3(cfg Config) Table3Result {
	span := obs.StartSpan("experiments/table3")
	defer span.End()
	cfg = cfg.withDefaults()
	suite := cfg.suite()

	tpg := fault.TPGConfig{MaxPatterns: 4 * cfg.Patterns, Seed: cfg.Seed + 7, StallWords: 64}

	var res Table3Result
	for test := range suite {
		var graphs []*core.Graph
		for d := range suite {
			if d != test {
				graphs = append(graphs, suite[d].Graph)
			}
		}
		mopt := core.DefaultMultiStageOptions()
		mopt.ModelCfg = cfg.modelConfig(3, cfg.Seed+17)
		mopt.Train = cfg.trainOptions()
		ms, err := core.TrainMultiStage(graphs, mopt)
		if err != nil {
			panic(err)
		}

		// GCN flow on a private copy of the test design.
		flowNet := suite[test].Netlist.Clone()
		flowMeas := scoap.Compute(flowNet)
		flowGraph := core.FromNetlist(flowNet, flowMeas)
		opi.RunFlow(flowNet, flowMeas, flowGraph, ms, opi.FlowConfig{
			PerIteration: 64,
		})
		gcnEval := opi.Evaluate(flowNet, tpg)

		// Approximate-measurement tool: SCOAP-greedy with a threshold
		// calibrated on the training designs' labels.
		var trainMeas []*scoap.Measures
		var trainLabels [][]int
		for d := range suite {
			if d != test {
				trainMeas = append(trainMeas, suite[d].Measures)
				trainLabels = append(trainLabels, suite[d].Graph.Labels)
			}
		}
		cut := calibrateAcross(trainMeas, trainLabels)
		scoapNet := suite[test].Netlist.Clone()
		scoapMeas := scoap.Compute(scoapNet)
		opi.IndustrialBaseline(scoapNet, scoapMeas, opi.BaselineConfig{
			COThreshold: cut, PerIteration: 64,
		})
		scoapEval := opi.Evaluate(scoapNet, tpg)

		// Exact-simulation tool: same criterion as the labels.
		simNet := suite[test].Netlist.Clone()
		opi.SimulationGreedy(simNet, opi.SimGreedyConfig{
			Patterns:     cfg.Patterns,
			Threshold:    dataset.DefaultThreshold,
			PerIteration: 64,
			Seed:         cfg.Seed + int64(test),
		})
		simEval := opi.Evaluate(simNet, tpg)

		res.Rows = append(res.Rows, Table3Row{
			Design: suite[test].Name, ToolSCOAP: scoapEval, ToolSim: simEval, GCNFlow: gcnEval,
		})
	}

	var scoapOPs, simOPs, gcnOPs, scoapPats, simPats, gcnPats float64
	for _, r := range res.Rows {
		scoapOPs += float64(r.ToolSCOAP.OPs)
		simOPs += float64(r.ToolSim.OPs)
		gcnOPs += float64(r.GCNFlow.OPs)
		scoapPats += float64(r.ToolSCOAP.Patterns)
		simPats += float64(r.ToolSim.Patterns)
		gcnPats += float64(r.GCNFlow.Patterns)
		inv := 1 / float64(len(res.Rows))
		res.CovSCOAP += r.ToolSCOAP.Coverage * inv
		res.CovSim += r.ToolSim.Coverage * inv
		res.CovGCN += r.GCNFlow.Coverage * inv
	}
	if scoapOPs > 0 {
		res.OPRatioSCOAP = gcnOPs / scoapOPs
		res.PatRatioSCOAP = gcnPats / scoapPats
	}
	if simOPs > 0 {
		res.OPRatioSim = gcnOPs / simOPs
		res.PatRatioSim = gcnPats / simPats
	}
	return res
}

// calibrateAcross pools positive nodes of several designs for the
// baseline threshold.
func calibrateAcross(meas []*scoap.Measures, labels [][]int) int32 {
	var pooledCO []int32
	for i, m := range meas {
		for v, l := range labels[i] {
			if l == 1 {
				pooledCO = append(pooledCO, m.CO[v])
			}
		}
	}
	fake := &scoap.Measures{CO: pooledCO}
	all := make([]int, len(pooledCO))
	for i := range all {
		all[i] = 1
	}
	return opi.CalibrateCOThreshold(fake, all, 0.1)
}

// Fprint writes the table in the paper's layout, one block per tool.
func (r Table3Result) Fprint(w io.Writer) {
	fmt.Fprintln(w, "Table 3: Testability results comparison")
	fmt.Fprintf(w, "%-8s | %24s | %24s | %24s\n", "",
		"Tool (SCOAP-greedy)", "Tool (exact fault sim)", "GCN-Flow")
	fmt.Fprintf(w, "%-8s | %7s %6s %9s | %7s %6s %9s | %7s %6s %9s\n", "Design",
		"#OPs", "#PAs", "Coverage", "#OPs", "#PAs", "Coverage", "#OPs", "#PAs", "Coverage")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-8s | %7d %6d %8.2f%% | %7d %6d %8.2f%% | %7d %6d %8.2f%%\n",
			row.Design,
			row.ToolSCOAP.OPs, row.ToolSCOAP.Patterns, 100*row.ToolSCOAP.Coverage,
			row.ToolSim.OPs, row.ToolSim.Patterns, 100*row.ToolSim.Coverage,
			row.GCNFlow.OPs, row.GCNFlow.Patterns, 100*row.GCNFlow.Coverage)
	}
	fmt.Fprintf(w, "GCN/tool ratios: vs SCOAP-greedy OPs %.2f, patterns %.2f; vs exact-sim OPs %.2f, patterns %.2f\n",
		r.OPRatioSCOAP, r.PatRatioSCOAP, r.OPRatioSim, r.PatRatioSim)
	fmt.Fprintf(w, "average coverage: SCOAP tool %.2f%%, sim tool %.2f%%, GCN flow %.2f%%\n",
		100*r.CovSCOAP, 100*r.CovSim, 100*r.CovGCN)
}
