package diagnose

import (
	"testing"

	"repro/internal/circuitgen"
	"repro/internal/fault"
	"repro/internal/netlist"
)

func TestPassingDeviceDiagnosesEmpty(t *testing.T) {
	n := circuitgen.Generate("d", circuitgen.Config{Seed: 1, NumGates: 400})
	obs := Observe(n, 7, 4, nil)
	ranked := Diagnose(n, obs, fault.FaultUniverse(n))
	if ranked != nil {
		t.Errorf("fault-free device produced %d candidates", len(ranked))
	}
}

func TestInjectedFaultRanksFirst(t *testing.T) {
	n := circuitgen.Generate("d", circuitgen.Config{Seed: 2, NumGates: 400})
	universe := fault.FaultUniverse(n)
	// Pick a few target faults across the design.
	for _, idx := range []int{11, 101, 301} {
		target := universe[idx%len(universe)]
		obs := Observe(n, 9, 4, &target)
		ranked := Diagnose(n, obs, universe)
		if len(ranked) == 0 {
			t.Fatalf("fault %+v produced no candidates — likely undetected by the patterns", target)
		}
		if ranked[0].Mismatch != 0 {
			// The injected fault must explain its own responses exactly,
			// so the best score is 0 and the target is among the ties.
			t.Fatalf("fault %+v: best mismatch %d", target, ranked[0].Mismatch)
		}
		found := false
		for _, c := range ranked[:Resolution(ranked)] {
			if c.Fault == target {
				found = true
			}
		}
		if !found {
			t.Errorf("fault %+v not among the %d perfect-score candidates",
				target, Resolution(ranked))
		}
	}
}

func TestObservationPointsSharpenDiagnosis(t *testing.T) {
	// Average resolution (ties at the top) should not get worse after
	// adding observation points — usually it improves ([25]'s premise).
	n := circuitgen.Generate("d", circuitgen.Config{Seed: 3, NumGates: 600})
	universe := fault.FaultUniverse(n)
	targets := []fault.SAFault{universe[3], universe[77], universe[205]}

	resBefore := 0
	for _, f := range targets {
		obs := Observe(n, 11, 4, &f)
		resBefore += Resolution(Diagnose(n, obs, universe))
	}

	// Observe a handful of internal nets.
	for i := int32(50); i < 100; i += 10 {
		if _, err := n.InsertObservationPoint(i); err != nil {
			t.Fatal(err)
		}
	}
	resAfter := 0
	for _, f := range targets {
		obs := Observe(n, 11, 4, &f)
		resAfter += Resolution(Diagnose(n, obs, universe))
	}
	if resAfter > resBefore {
		t.Errorf("observation points worsened diagnosis resolution: %d -> %d", resBefore, resAfter)
	}
	t.Logf("diagnosis resolution (sum of ties): %d -> %d", resBefore, resAfter)
}

func TestExactDetectMaskAgreesWithScalar(t *testing.T) {
	// For the AND-gate hand case, s-a-0 at the output is detected exactly
	// when both inputs are 1.
	n := netlist.New("h")
	a := n.MustAddGate(netlist.Input, "a")
	b := n.MustAddGate(netlist.Input, "b")
	g := n.MustAddGate(netlist.And, "g", a, b)
	n.MustAddGate(netlist.Output, "po", g)
	mask := fault.ExactDetectMask(n, 5, 0, g, false)
	// Recompute expected from the same source stream.
	sim := fault.NewSimulator(n)
	src := newSource(n, 0)
	_ = src // the mask helper uses its own stream; just sanity-check bounds
	if mask == 0 {
		t.Error("AND s-a-0 should be detected in some of 64 random patterns")
	}
	sim.BatchFrom(func(int32) uint64 { return 0 })
}

func TestApproximateDetectionMostlyMatchesExact(t *testing.T) {
	// The fast observability criterion is approximate under reconvergent
	// fanout; validate it against exact injection on a sample: patterns
	// the approximation calls detecting should overwhelmingly be real
	// detections.
	n := circuitgen.Generate("v", circuitgen.Config{Seed: 6, NumGates: 800})
	sim := fault.NewSimulator(n)
	src := newSource(n, 42)
	words := src.next()
	get := func(id int32) uint64 { return words[id] }
	sim.BatchFrom(get)
	vals := append([]uint64(nil), sim.Values()...)
	obsWords := append([]uint64(nil), sim.Obs()...)

	agree, disagree := 0, 0
	universe := fault.FaultUniverse(n)
	for i := 0; i < len(universe); i += 37 {
		f := universe[i]
		approx := obsWords[f.Node]
		if f.StuckAt1 {
			approx &= ^vals[f.Node]
		} else {
			approx &= vals[f.Node]
		}
		if approx == 0 {
			continue
		}
		// Exact check with the same patterns.
		sim.BatchWithFault(get, f.Node, f.StuckAt1)
		bad := sim.SinkResponses()
		sim.BatchFrom(get)
		good := sim.SinkResponses()
		var exact uint64
		for s := range good {
			exact |= good[s] ^ bad[s]
		}
		// Every approximately-detecting pattern should really detect.
		if approx&^exact == 0 {
			agree++
		} else {
			disagree++
		}
	}
	if agree == 0 {
		t.Fatal("no samples compared")
	}
	frac := float64(agree) / float64(agree+disagree)
	if frac < 0.9 {
		t.Errorf("approximate detection unsound too often: %.3f agreement", frac)
	}
	t.Logf("approximate-vs-exact agreement on detecting patterns: %.3f (%d faults)", frac, agree+disagree)
}
