package core

import (
	"sort"

	"repro/internal/nn"
	"repro/internal/obs"
	"repro/internal/tensor"
)

// This file implements incremental inference, the natural completion of
// the paper's Section 3.4/4 efficiency story: the iterative insertion
// flow changes the graph only locally (one appended node plus attribute
// refreshes inside a fan-in cone), and a depth-D GCN's output can change
// only within D hops of those modifications. Instead of re-running the
// full matrix inference after every insertion, IncrementalState caches
// all layer embeddings and relaxes just the growing D-hop frontier.
//
// UpdateIncremental produces bit-identical results to a fresh Forward
// (verified by tests) at a cost proportional to the affected
// neighborhood instead of the whole graph.

// IncrementalRun is a cached-embedding inference session over one graph:
// Probs exposes the current per-node positive probabilities and Update
// refreshes them after local mutations (the attribute rows listed in
// dirty, plus any nodes appended since the previous update). The slice
// returned by Probs is owned by the session and is refreshed in place by
// Update; callers must treat it as read-only.
type IncrementalRun interface {
	Probs() []float64
	Update(g *Graph, dirty []int32)
}

// IncrementalPredictor is the capability the insertion flow (opi.RunFlow)
// detects: a predictor that can pay full-graph inference once and then
// track local graph mutations at D-hop-bounded cost. *Model and
// *MultiStage both implement it.
type IncrementalPredictor interface {
	PredictProbs(g *Graph) []float64
	NewIncremental(g *Graph) IncrementalRun
}

// IncrementalState caches per-layer embeddings and output probabilities
// for incremental updates. It is tied to the (model, graph) pair that
// produced it.
//
// The scratch fields below make repeated updates allocation-free in
// steady state: the frontier is tracked with an epoch-stamped mark array
// instead of per-update maps, and the gather/forward buffers keep their
// capacity between calls. Without this, every update of a large flow
// churned tens of megabytes and the GC dominated the timing.
type IncrementalState struct {
	embeds []*tensor.Dense // embeds[0] = X copy, embeds[d] = E_d
	logits *tensor.Dense
	Probs  []float64

	mark          []int32 // mark[v] == epoch ⇔ v is in the current frontier
	epoch         int32
	front, front2 []int32         // frontier node lists (double-buffered)
	gather        []*tensor.Dense // per-layer batched aggregation inputs
	acts          []*tensor.Dense // per-layer encoder outputs + FC activations
}

// scratchDense resizes *p to rows×cols, reusing its backing array when
// the capacity allows. Frontiers grow between updates, so reallocations
// take 2× headroom to amortize; rows are fully overwritten by every
// user, so no zeroing is needed.
func scratchDense(p **tensor.Dense, rows, cols int) *tensor.Dense {
	d := *p
	if d == nil || cap(d.Data) < rows*cols {
		d = &tensor.Dense{Data: make([]float64, rows*cols, rows*cols*2+8)}
	}
	d.Rows, d.Cols = rows, cols
	d.Data = d.Data[:rows*cols]
	*p = d
	return d
}

// NewIncrementalState assembles an incremental-inference state from
// externally computed per-layer embeddings and logits; the sharded
// executor (internal/partition) stitches these from per-shard runs and
// hands the whole-graph view back to core here. embeds[0] must be a
// private copy of the attribute matrix (not an alias of g.X, which
// later attribute edits would corrupt) and embeds[d] the post-ReLU E_d;
// Probs is derived from logits exactly as ForwardFull derives it.
func NewIncrementalState(embeds []*tensor.Dense, logits *tensor.Dense) *IncrementalState {
	if len(embeds) == 0 || logits == nil {
		panic("core: NewIncrementalState needs per-layer embeddings and logits")
	}
	return &IncrementalState{embeds: embeds, logits: logits, Probs: probsFromLogits(logits)}
}

// RunFromState wraps an externally assembled state into the same
// incremental session NewIncremental returns; the state must have been
// produced by (or be bit-identical to) a full forward pass of this
// model over the session's graph.
func (m *Model) RunFromState(st *IncrementalState) IncrementalRun {
	if len(st.embeds) != len(m.Enc)+1 {
		panic("core: RunFromState embedding depth does not match model depth")
	}
	return &modelRun{m: m, st: st}
}

// modelRun adapts a (Model, IncrementalState) pair to IncrementalRun.
type modelRun struct {
	m  *Model
	st *IncrementalState
}

func (r *modelRun) Probs() []float64 { return r.st.Probs }

func (r *modelRun) Update(g *Graph, dirty []int32) { r.m.UpdateIncremental(r.st, g, dirty) }

// NewIncremental runs one full inference pass and returns the cached
// session for incremental updates.
func (m *Model) NewIncremental(g *Graph) IncrementalRun {
	return &modelRun{m: m, st: m.ForwardFull(g)}
}

// ForwardFull runs a complete inference pass and captures the state
// needed for subsequent incremental updates.
func (m *Model) ForwardFull(g *Graph) *IncrementalState {
	span := obs.StartSpan("infer/full")
	defer span.End()
	st := &IncrementalState{}
	_, cache := m.forward(g, true) // keep=true allocates private buffers
	st.embeds = cache.embeds
	// embeds[0] currently aliases g.X; copy so later attribute edits
	// don't silently corrupt the cache.
	st.embeds[0] = g.X.Clone()
	st.logits = cache.logits
	st.Probs = probsFromLogits(st.logits)
	return st
}

func probsFromLogits(logits *tensor.Dense) []float64 {
	p := nn.Softmax(logits)
	out := make([]float64, logits.Rows)
	for i := range out {
		out[i] = p.At(i, 1)
	}
	return out
}

// UpdateIncremental refreshes the state after graph mutations. dirty
// lists every node whose attribute row changed; nodes appended since the
// last update (g.N larger than the cached state) are treated as dirty
// automatically. The update touches only the D-hop neighborhood of the
// dirty set, and returns the nodes whose output probabilities were
// recomputed (the final frontier) so that composite predictors — the
// MultiStage cascade — can refresh their own per-node state for exactly
// the affected region.
func (m *Model) UpdateIncremental(st *IncrementalState, g *Graph, dirty []int32) []int32 {
	span := obs.StartSpan("infer/incremental")
	defer span.End()
	oldN := st.embeds[0].Rows
	if g.N < oldN {
		panic("core: graph shrank; incremental state invalid")
	}
	// Grow cached matrices for appended nodes.
	if g.N > oldN {
		for d := range st.embeds {
			st.embeds[d] = growRows(st.embeds[d], g.N)
		}
		st.logits = growRows(st.logits, g.N)
		st.Probs = append(st.Probs, make([]float64, g.N-oldN)...)
		for v := oldN; v < g.N; v++ {
			dirty = append(dirty, int32(v))
		}
	}

	// Refresh E0 rows (attributes) for the dirty set. The epoch-stamped
	// mark array deduplicates without allocating a map per update.
	for len(st.mark) < g.N {
		st.mark = append(st.mark, 0)
	}
	st.epoch++
	nodes := st.front[:0]
	for _, v := range dirty {
		if st.mark[v] == st.epoch {
			continue
		}
		st.mark[v] = st.epoch
		nodes = append(nodes, v)
		copy(st.embeds[0].Row(int(v)), g.X.Row(int(v)))
	}
	next := st.front2[:0]
	defer func() { st.front, st.front2 = nodes, next }()
	if len(nodes) == 0 {
		return nil
	}
	if len(st.gather) < len(m.Enc) {
		st.gather = make([]*tensor.Dense, len(m.Enc))
		st.acts = make([]*tensor.Dense, len(m.Enc)+len(m.FC.Layers))
	}

	// Each layer's frontier is processed as one batched matrix — gather
	// the aggregated inputs into a k×cols block, run a single encoder
	// forward, scatter the rows back into the cache. Per row the kernel
	// accumulates in the same index order as the 1-row case, so batching
	// is bit-identical; it just replaces k tiny MatMuls with one.
	wpr, wsu := m.Wpr.Data[0], m.Wsu.Data[0]
	for d, enc := range m.Enc {
		// A node's E_{d+1} depends on its own and its neighbors' E_d, so
		// the affected set grows by one hop per layer.
		st.epoch++
		next = next[:0]
		for _, v := range nodes {
			// v may already be in next as a neighbor of an earlier node;
			// the mark check keeps the frontier duplicate-free (the FC
			// head's skip-gather fast path relies on len(affected) == N
			// implying affected is exactly the identity permutation).
			if st.mark[v] != st.epoch {
				st.mark[v] = st.epoch
				next = append(next, v)
			}
			for _, u := range g.SuccList(v) {
				if st.mark[u] != st.epoch {
					st.mark[u] = st.epoch
					next = append(next, u)
				}
			}
			for _, u := range g.PredList(v) {
				if st.mark[u] != st.epoch {
					st.mark[u] = st.epoch
					next = append(next, u)
				}
			}
		}
		nodes, next = next, nodes
		sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })

		prev := st.embeds[d]
		cur := st.embeds[d+1]
		batch := scratchDense(&st.gather[d], len(nodes), prev.Cols)
		for i, v := range nodes {
			agg := batch.Row(i)
			copy(agg, prev.Row(int(v)))
			preds, pvals := g.PredEntries(v)
			for k, u := range preds {
				w := wpr * pvals[k]
				row := prev.Row(int(u))
				for j, x := range row {
					agg[j] += w * x
				}
			}
			succs, svals := g.SuccEntries(v)
			for k, u := range succs {
				w := wsu * svals[k]
				row := prev.Row(int(u))
				for j, x := range row {
					agg[j] += w * x
				}
			}
		}
		out := enc.ForwardInto(scratchDense(&st.acts[d], len(nodes), cur.Cols), batch)
		out.ReLUInPlace()
		for i, v := range nodes {
			copy(cur.Row(int(v)), out.Row(i))
		}
	}

	// Classifier head over the final frontier rows only, again as one
	// batched forward instead of one per node. The MLP layers are driven
	// directly (rather than via Infer) so the activations reuse the
	// state's scratch buffers across updates of varying frontier size.
	affected := nodes
	last := st.embeds[len(st.embeds)-1]
	cur := last
	if len(affected) < last.Rows {
		in := scratchDense(&st.gather[len(m.Enc)-1], len(affected), last.Cols)
		for i, v := range affected {
			copy(in.Row(i), last.Row(int(v)))
		}
		cur = in
	}
	for i, l := range m.FC.Layers {
		dst := l.ForwardInto(scratchDense(&st.acts[len(m.Enc)+i], cur.Rows, l.Out), cur)
		cur = dst
		if i+1 < len(m.FC.Layers) {
			cur.ReLUInPlace()
		}
	}
	logits := cur
	// Pooled softmax scratch: this runs once per insertion in the OPI
	// loop, and nn.Softmax's fresh clone per call was the last per-update
	// allocation left in the steady state.
	p := tensor.GetDense(logits.Rows, logits.Cols)
	p.CopyFrom(logits)
	p.SoftmaxRowsInPlace()
	for i, v := range affected {
		copy(st.logits.Row(int(v)), logits.Row(i))
		st.Probs[v] = p.At(i, 1)
	}
	tensor.PutDense(p)
	return affected
}

// growRows extends a cached matrix to cover appended nodes. The flow
// appends a handful of rows per iteration, so reallocating (and copying)
// the whole matrix every update would turn the cache itself into a
// per-iteration O(N) cost and a GC storm; instead the first grow
// over-allocates 25% headroom and later grows reslice in place (the
// make-time zeroing covers the not-yet-used capacity).
func growRows(d *tensor.Dense, rows int) *tensor.Dense {
	if d.Rows >= rows {
		return d
	}
	need := rows * d.Cols
	if cap(d.Data) >= need {
		d.Data = d.Data[:need]
		d.Rows = rows
		return d
	}
	nd := &tensor.Dense{Rows: rows, Cols: d.Cols,
		Data: make([]float64, need, need+need/4)}
	copy(nd.Data, d.Data)
	return nd
}
