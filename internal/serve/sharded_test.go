package serve

import (
	"bytes"
	"testing"

	"repro/internal/circuitgen"
	"repro/internal/core"
	"repro/internal/netlist"
	"repro/internal/partition"
)

// TestShardedPredictorIntegration runs the full serving path — compile,
// score, delta-update — against a ShardedPredictor and checks the HTTP
// responses are bit-identical to driving the underlying model directly.
// This is the wiring cmd/serve -shards enables.
func TestShardedPredictorIntegration(t *testing.T) {
	n := circuitgen.Generate("serve_shard", circuitgen.Config{
		Seed: 11, NumGates: 140, NumPIs: 10, Layers: 6, MaxFanin: 3})
	var buf bytes.Buffer
	if err := netlist.Write(&buf, n); err != nil {
		t.Fatal(err)
	}
	benchText := buf.String()

	m, err := core.NewModel(core.Config{Dims: []int{6, 8, 10}, FCDims: []int{8}, NumClasses: 2, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	sp, err := partition.NewSharded(m, partition.Options{K: 4, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer sp.Close()

	_, ts := newTestServer(t, Options{Predictor: sp, DisableBatching: true})

	var score ScoreResponse
	if code := postJSON(t, ts.URL+"/v1/score", ScoreRequest{Netlist: benchText}, &score); code != 200 {
		t.Fatalf("score status %d", code)
	}
	_, _, g := compileForTest(t, benchText)
	want := m.PredictProbs(g)
	if len(score.Scores) != len(want) {
		t.Fatalf("scores length %d, want %d", len(score.Scores), len(want))
	}
	for v := range want {
		if score.Scores[v] != want[v] {
			t.Fatalf("node %d: sharded server %v, direct model %v", v, score.Scores[v], want[v])
		}
	}

	// Delta path: insert an observation point through the server and
	// compare against the same incremental recipe driven directly on the
	// bare model. The sharded full pass stitches a state bit-identical
	// to ForwardFull, so the post-update probabilities must also agree
	// bit-for-bit (incremental updates themselves are only 1e-9-close to
	// a full re-forward, which is why the reference is incremental too).
	target := int32(g.N / 2)
	var delta ScoreResponse
	code := postJSON(t, ts.URL+"/v1/score/delta", DeltaRequest{
		Design:  score.Design,
		Observe: []int32{target},
	}, &delta)
	if code != 200 {
		t.Fatalf("delta status %d", code)
	}
	nm, meas, gm := compileForTest(t, benchText)
	run := m.NewIncremental(gm)
	_, dirty, err := insertForTest(nm, meas, gm, target)
	if err != nil {
		t.Fatal(err)
	}
	run.Update(gm, dirty)
	wantDelta := run.Probs()
	if len(delta.Scores) != len(wantDelta) {
		t.Fatalf("delta scores length %d, want %d", len(delta.Scores), len(wantDelta))
	}
	for v := range wantDelta {
		if delta.Scores[v] != wantDelta[v] {
			t.Fatalf("post-delta node %d: sharded server %v, direct model %v", v, delta.Scores[v], wantDelta[v])
		}
	}
}
