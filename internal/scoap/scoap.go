// Package scoap implements the Sandia Controllability/Observability
// Analysis Program (SCOAP) testability measures of Goldstein and Thigpen,
// the source of the C0, C1 and O components of the paper's node attribute
// vector [LL, C0, C1, O].
//
// Combinational controllability CC0/CC1 is the minimum "effort" (number of
// circuit lines that must be set) to drive a net to 0/1; observability CO
// is the effort to propagate a net's value to an observation sink (primary
// output, scan flip-flop data input, or inserted observation point).
// Values saturate at Unobservable rather than overflowing.
//
// Because the paper's iterative insertion flow repeatedly adds observation
// points, the package also provides an incremental update that recomputes
// observability only inside the fan-in cone of a new observation point
// (Section 4 of the paper), which is asymptotically much cheaper than a
// full backward pass.
package scoap

import (
	"math"
	"sort"

	"repro/internal/netlist"
	"repro/internal/obs"
)

// Analysis metrics (no-ops until obs.Enable; see docs/OBSERVABILITY.md).
var (
	scoapComputes    = obs.GetCounter("scoap.full_computes")
	scoapIncremental = obs.GetCounter("scoap.incremental_updates")
)

// Unobservable is the saturated measure value for nets with no path to an
// observation sink.
const Unobservable = int32(math.MaxInt32)

// Measures holds the SCOAP triple for every cell's output net, indexed by
// cell ID.
type Measures struct {
	CC0 []int32 // combinational 0-controllability
	CC1 []int32 // combinational 1-controllability
	CO  []int32 // combinational observability
}

// Compute performs a full SCOAP analysis: controllability forward in
// topological order, observability backward in reverse topological order.
// Full-scan discipline is assumed: flip-flop outputs are fully
// controllable and flip-flop data inputs are fully observable.
func Compute(n *netlist.Netlist) *Measures {
	span := obs.StartSpan("scoap")
	defer span.End()
	scoapComputes.Inc()
	m := &Measures{
		CC0: make([]int32, n.NumGates()),
		CC1: make([]int32, n.NumGates()),
		CO:  make([]int32, n.NumGates()),
	}
	order := n.TopoOrder()
	for _, id := range order {
		m.computeControllability(n, id)
	}
	for i := range m.CO {
		m.CO[i] = Unobservable
	}
	for i := len(order) - 1; i >= 0; i-- {
		m.updateObservability(n, order[i])
	}
	return m
}

func (m *Measures) computeControllability(n *netlist.Netlist, id int32) {
	g := n.Gate(id)
	fi := g.Fanin
	switch g.Type {
	case netlist.Input, netlist.DFF:
		// Primary inputs and scan flip-flop outputs are directly settable.
		m.CC0[id], m.CC1[id] = 1, 1
	case netlist.Output:
		// A primary output sink mirrors the controllability of its net.
		m.CC0[id], m.CC1[id] = m.CC0[fi[0]], m.CC1[fi[0]]
	case netlist.Obs:
		// Inserted observation points carry the paper's fixed attribute
		// convention [0,1,1,0].
		m.CC0[id], m.CC1[id] = 1, 1
	case netlist.Buf:
		m.CC0[id] = satAdd(m.CC0[fi[0]], 1)
		m.CC1[id] = satAdd(m.CC1[fi[0]], 1)
	case netlist.Not:
		m.CC0[id] = satAdd(m.CC1[fi[0]], 1)
		m.CC1[id] = satAdd(m.CC0[fi[0]], 1)
	case netlist.And:
		m.CC1[id] = satAdd(sumCC(m.CC1, fi), 1)
		m.CC0[id] = satAdd(minCC(m.CC0, fi), 1)
	case netlist.Nand:
		m.CC0[id] = satAdd(sumCC(m.CC1, fi), 1)
		m.CC1[id] = satAdd(minCC(m.CC0, fi), 1)
	case netlist.Or:
		m.CC0[id] = satAdd(sumCC(m.CC0, fi), 1)
		m.CC1[id] = satAdd(minCC(m.CC1, fi), 1)
	case netlist.Nor:
		m.CC1[id] = satAdd(sumCC(m.CC0, fi), 1)
		m.CC0[id] = satAdd(minCC(m.CC1, fi), 1)
	case netlist.Xor, netlist.Xnor:
		c0, c1 := m.CC0[fi[0]], m.CC1[fi[0]]
		for _, f := range fi[1:] {
			a0, a1 := m.CC0[f], m.CC1[f]
			n0 := min32(satAdd(c0, a0), satAdd(c1, a1))
			n1 := min32(satAdd(c0, a1), satAdd(c1, a0))
			c0, c1 = n0, n1
		}
		if g.Type == netlist.Xnor {
			c0, c1 = c1, c0
		}
		m.CC0[id] = satAdd(c0, 1)
		m.CC1[id] = satAdd(c1, 1)
	}
}

// updateObservability sets CO of cell id's fanin nets from id's own CO
// (and sink status), taking the min with whatever other fanout branches
// already contributed. It must be invoked in reverse topological order
// with CO pre-initialized to Unobservable.
func (m *Measures) updateObservability(n *netlist.Netlist, id int32) {
	g := n.Gate(id)
	switch g.Type {
	case netlist.Output, netlist.Obs:
		// The sink itself is the observation: its input net is observable
		// for free, and the sink's own CO is 0 by convention.
		m.CO[id] = 0
		m.lowerCO(g.Fanin[0], 0)
		return
	case netlist.DFF:
		// Scan flip-flop: data input captured into the scan chain.
		m.lowerCO(g.Fanin[0], 0)
		return
	case netlist.Input:
		return
	}
	co := m.CO[id]
	if co == Unobservable {
		return
	}
	fi := g.Fanin
	switch g.Type {
	case netlist.Buf, netlist.Not:
		m.lowerCO(fi[0], satAdd(co, 1))
	case netlist.And, netlist.Nand:
		// Propagating input i requires every other input at 1.
		total := sumCC(m.CC1, fi)
		for _, f := range fi {
			others := satSub(total, m.CC1[f])
			m.lowerCO(f, satAdd(satAdd(co, others), 1))
		}
	case netlist.Or, netlist.Nor:
		total := sumCC(m.CC0, fi)
		for _, f := range fi {
			others := satSub(total, m.CC0[f])
			m.lowerCO(f, satAdd(satAdd(co, others), 1))
		}
	case netlist.Xor, netlist.Xnor:
		// Other inputs may hold either value, whichever is cheaper.
		var total int32
		for _, f := range fi {
			total = satAdd(total, min32(m.CC0[f], m.CC1[f]))
		}
		for _, f := range fi {
			others := satSub(total, min32(m.CC0[f], m.CC1[f]))
			m.lowerCO(f, satAdd(satAdd(co, others), 1))
		}
	}
}

func (m *Measures) lowerCO(id, v int32) {
	if v < m.CO[id] {
		m.CO[id] = v
	}
}

// UpdateAfterObservationPoint incrementally refreshes the measures after
// op (an Obs cell already inserted into n) was added. Controllability is
// unaffected by an observation point; observability can only decrease,
// and only for cells in the fan-in cone of the observed net. The cone is
// re-relaxed in reverse topological order.
//
// It returns the cells whose observability actually changed, in
// relaxation (reverse topological) order. The relaxation typically
// improves only the cells whose best observation path runs through the
// new point — a small fraction of the cone — so callers propagating the
// update further (attribute rows, cached GCN embeddings) need to touch
// only those.
func (m *Measures) UpdateAfterObservationPoint(n *netlist.Netlist, op int32) []int32 {
	scoapIncremental.Inc()
	// Grow the measure slices to cover the new cell(s).
	for int32(len(m.CO)) < int32(n.NumGates()) {
		m.CC0 = append(m.CC0, 0)
		m.CC1 = append(m.CC1, 0)
		m.CO = append(m.CO, Unobservable)
	}
	m.computeControllability(n, op)
	m.CO[op] = 0

	target := n.Gate(op).Fanin[0]

	// Relax the fan-in cone. IDs are topological, so processing cone
	// members in decreasing ID order is reverse topological order.
	cone := n.FaninCone(target, 0)
	ids := append([]int32{target}, cone...)
	sortDesc(ids)
	before := make([]int32, len(ids))
	for i, id := range ids {
		before[i] = m.CO[id]
	}
	m.lowerCO(target, 0)
	for _, id := range ids {
		m.updateObservability(n, id)
	}
	changed := make([]int32, 0, len(ids)/4+1)
	for i, id := range ids {
		if m.CO[id] != before[i] {
			changed = append(changed, id)
		}
	}
	return changed
}

// Clone returns a deep copy of the measures.
func (m *Measures) Clone() *Measures {
	return &Measures{
		CC0: append([]int32(nil), m.CC0...),
		CC1: append([]int32(nil), m.CC1...),
		CO:  append([]int32(nil), m.CO...),
	}
}

// Levels convenience: assembles the paper's 4-dimensional attribute rows
// [LL, C0, C1, O] for every cell. Unobservable observability is clamped
// to clamp before being returned, keeping downstream feature scales sane.
func (m *Measures) Attributes(n *netlist.Netlist, clamp int32) [][4]float64 {
	lv := n.Levels()
	rows := make([][4]float64, n.NumGates())
	for id := range rows {
		co := m.CO[id]
		if co > clamp {
			co = clamp
		}
		cc0, cc1 := m.CC0[id], m.CC1[id]
		if cc0 > clamp {
			cc0 = clamp
		}
		if cc1 > clamp {
			cc1 = clamp
		}
		rows[id] = [4]float64{float64(lv[id]), float64(cc0), float64(cc1), float64(co)}
	}
	return rows
}

func sumCC(cc []int32, fi []int32) int32 {
	var s int32
	for _, f := range fi {
		s = satAdd(s, cc[f])
	}
	return s
}

func minCC(cc []int32, fi []int32) int32 {
	best := Unobservable
	for _, f := range fi {
		if cc[f] < best {
			best = cc[f]
		}
	}
	return best
}

func satAdd(a, b int32) int32 {
	s := int64(a) + int64(b)
	if s >= int64(Unobservable) {
		return Unobservable
	}
	return int32(s)
}

// satSub subtracts b from a saturated total; if the total saturated, the
// result stays saturated.
func satSub(a, b int32) int32 {
	if a == Unobservable {
		return Unobservable
	}
	return a - b
}

func min32(a, b int32) int32 {
	if a < b {
		return a
	}
	return b
}

func sortDesc(ids []int32) {
	sort.Slice(ids, func(i, j int) bool { return ids[i] > ids[j] })
}
