// Command experiments regenerates the paper's tables and figures on the
// synthetic benchmark suite.
//
// Usage:
//
//	experiments [-size N] [-patterns N] [-epochs N] [-seed N] [-quick]
//	            [-run LIST] [-manifest out.json] [-trace out.json] [-pprof addr]
//
// -run selects a comma-separated subset of
// table1,fig8,table2,fig9,fig10,table3 (default: all). Three heavier
// studies are opt-in only: ablation (cascade depth), coarsen (the
// internal/coarsen speed/accuracy grid) and coarserefine (the 50k-gate
// exact-vs-coarse-refine OPI head-to-head; size via -coarserefine-gates).
//
// -manifest enables the observability layer (internal/obs) and writes a
// run manifest — span tree, counters, environment — to the given path
// when all selected experiments finish; see docs/OBSERVABILITY.md.
//
// -trace additionally records every span occurrence and event and
// writes a Chrome Trace Event Format JSON loadable in chrome://tracing
// or Perfetto (one timeline row per training worker).
//
// -pprof serves net/http/pprof plus the live /metrics (Prometheus text)
// and /snapshot (JSON) endpoints on the given address (e.g.
// "localhost:6060") for profiling and scraping long runs.
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	_ "net/http/pprof"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/obs"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

// run executes the experiment driver; split from main so the manifest
// smoke test can exercise the full flag-to-file path in-process.
func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	size := fs.Int("size", 0, "approximate gates per benchmark design (0 = default)")
	patterns := fs.Int("patterns", 0, "labeling pattern budget (0 = default)")
	epochs := fs.Int("epochs", 0, "GCN training epochs (0 = default)")
	seed := fs.Int64("seed", 42, "global seed")
	quick := fs.Bool("quick", false, "shrink everything for a fast smoke run")
	runSel := fs.String("run", "all", "comma-separated experiments: table1,fig8,table2,fig9,fig10,table3,ablation,coarsen,coarserefine (ablation, coarsen and coarserefine are opt-in, not part of all)")
	crGates := fs.Int("coarserefine-gates", 0, "design size for the coarserefine head-to-head (0 = 50k benchmark preset)")
	manifest := fs.String("manifest", "", "enable instrumentation and write a run manifest JSON to this path")
	trace := fs.String("trace", "", "enable span tracing and write a Chrome Trace Event JSON to this path")
	pprofAddr := fs.String("pprof", "", "serve net/http/pprof, /metrics and /snapshot on this address (e.g. localhost:6060)")
	version := fs.Bool("version", false, "print the build's git revision and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		fmt.Fprintln(stdout, "experiments", revision())
		return nil
	}

	if *pprofAddr != "" {
		obs.RegisterHTTP(nil)
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "experiments: pprof server:", err)
			}
		}()
	}
	if *manifest != "" || *trace != "" {
		obs.Enable()
	}
	if *trace != "" {
		obs.EnableTracing()
	}

	cfg := experiments.Config{
		Size: *size, Patterns: *patterns, Epochs: *epochs, Seed: *seed, Quick: *quick,
	}

	want := map[string]bool{}
	if *runSel == "all" {
		for _, k := range []string{"table1", "fig8", "table2", "fig9", "fig10", "table3"} {
			want[k] = true
		}
	} else {
		for _, k := range strings.Split(*runSel, ",") {
			want[strings.TrimSpace(strings.ToLower(k))] = true
		}
	}

	step := func(name string, f func()) {
		if !want[name] {
			return
		}
		start := time.Now()
		fmt.Fprintf(stdout, "=== %s ===\n", name)
		f()
		fmt.Fprintf(stdout, "(%s took %.1fs)\n\n", name, time.Since(start).Seconds())
	}

	step("table1", func() { r := experiments.Table1(cfg); r.Fprint(stdout) })
	step("fig8", func() { r := experiments.Fig8(cfg); r.Fprint(stdout) })
	step("table2", func() { r := experiments.Table2(cfg); r.Fprint(stdout) })
	step("fig9", func() { r := experiments.Fig9(cfg); r.Fprint(stdout) })
	step("fig10", func() { r := experiments.Fig10(cfg); r.Fprint(stdout) })
	step("table3", func() { r := experiments.Table3(cfg); r.Fprint(stdout) })
	step("ablation", func() { r := experiments.StageAblation(cfg, 4); r.Fprint(stdout) })
	step("coarsen", func() { r := experiments.CoarsenGrid(cfg); r.Fprint(stdout) })
	step("coarserefine", func() { r := experiments.CompareCoarseRefine(*crGates); r.Fprint(stdout) })

	if *manifest != "" {
		if err := obs.WriteManifest(*manifest, "experiments", map[string]any{
			"size": *size, "patterns": *patterns, "epochs": *epochs,
			"seed": *seed, "quick": *quick, "run": *runSel,
		}); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "wrote run manifest to %s\n", *manifest)
	}
	if *trace != "" {
		if err := obs.WriteTrace(*trace); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "wrote Chrome trace to %s\n", *trace)
	}
	return nil
}

// revision is the -version payload: `git describe --always --dirty`
// when the binary runs inside the repository, "unknown" otherwise.
func revision() string {
	if r := obs.GitDescribe(); r != "" {
		return r
	}
	return "unknown"
}
