package circuitgen

import (
	"testing"

	"repro/internal/netlist"
)

func TestGenerateValidates(t *testing.T) {
	n := Generate("t1", Config{Seed: 7, NumGates: 3000})
	if err := n.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	s := n.ComputeStats()
	if s.Gates < 3000 {
		t.Errorf("gates = %d, want >= 3000", s.Gates)
	}
	if s.PIs < 32 {
		t.Errorf("PIs = %d, want >= 32", s.PIs)
	}
	if s.POs == 0 {
		t.Error("no primary outputs")
	}
	if s.Depth < 20 {
		t.Errorf("depth = %d, want >= 20 (layered construction)", s.Depth)
	}
}

func TestGenerateNoDanglingNets(t *testing.T) {
	n := Generate("t2", Config{Seed: 3, NumGates: 2000})
	for id := int32(0); id < int32(n.NumGates()); id++ {
		typ := n.Type(id)
		if typ == netlist.Output || typ == netlist.Obs {
			continue
		}
		if len(n.Fanout(id)) == 0 {
			t.Fatalf("cell %d (%v) is dangling", id, typ)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate("d", Config{Seed: 42, NumGates: 1500})
	b := Generate("d", Config{Seed: 42, NumGates: 1500})
	if a.NumGates() != b.NumGates() || a.NumEdges() != b.NumEdges() {
		t.Fatalf("same seed produced different sizes: %d/%d vs %d/%d",
			a.NumGates(), a.NumEdges(), b.NumGates(), b.NumEdges())
	}
	for id := int32(0); id < int32(a.NumGates()); id++ {
		if a.Type(id) != b.Type(id) {
			t.Fatalf("cell %d type differs", id)
		}
		fa, fb := a.Fanin(id), b.Fanin(id)
		if len(fa) != len(fb) {
			t.Fatalf("cell %d fanin count differs", id)
		}
		for j := range fa {
			if fa[j] != fb[j] {
				t.Fatalf("cell %d fanin %d differs", id, j)
			}
		}
	}
}

func TestGenerateSeedsDiffer(t *testing.T) {
	a := Generate("s", Config{Seed: 1, NumGates: 1000})
	b := Generate("s", Config{Seed: 2, NumGates: 1000})
	if a.NumGates() == b.NumGates() && a.NumEdges() == b.NumEdges() {
		// Sizes could coincide; compare structure of a few cells.
		same := true
		for id := int32(100); id < 200 && same; id++ {
			if a.Type(id) != b.Type(id) {
				same = false
			}
		}
		if same {
			t.Error("different seeds produced identical structure")
		}
	}
}

func TestGenerateShadowFunnelsPresent(t *testing.T) {
	with := Generate("w", Config{Seed: 5, NumGates: 2000, ShadowFunnels: 10})
	without := Generate("w", Config{Seed: 5, NumGates: 2000, ShadowFunnels: -1})
	if with.NumGates() <= without.NumGates() {
		t.Errorf("funnels did not add gates: %d vs %d", with.NumGates(), without.NumGates())
	}
}

func TestGenerateTinyConfig(t *testing.T) {
	n := Generate("tiny", Config{Seed: 9, NumGates: 50, Layers: 5, NumPIs: 4, ShadowFunnels: -1})
	if err := n.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if len(n.PrimaryOutputs()) == 0 {
		t.Error("tiny circuit has no POs")
	}
}

func BenchmarkGenerate20k(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Generate("bench", Config{Seed: int64(i), NumGates: 20000})
	}
}

func TestGenerateWithArithBlocks(t *testing.T) {
	plain := Generate("ar", Config{Seed: 8, NumGates: 1500, ArithBlocks: -1})
	rich := Generate("ar", Config{Seed: 8, NumGates: 1500, ArithBlocks: 6})
	if rich.NumGates() <= plain.NumGates() {
		t.Errorf("arith blocks added no gates: %d vs %d", rich.NumGates(), plain.NumGates())
	}
	if err := rich.Validate(); err != nil {
		t.Fatal(err)
	}
	// Default config embeds none, keeping suite determinism.
	def := Generate("ar", Config{Seed: 8, NumGates: 1500})
	if def.NumGates() != plain.NumGates() {
		t.Errorf("default should embed no arithmetic blocks: %d vs %d", def.NumGates(), plain.NumGates())
	}
}

func TestPaperScalePreset(t *testing.T) {
	cfg := PaperScale(7)
	if cfg.NumGates < 1_000_000 {
		t.Fatalf("PaperScale gates = %d, want >= 1M", cfg.NumGates)
	}
	if cfg.Seed != 7 {
		t.Fatalf("PaperScale seed = %d, want 7", cfg.Seed)
	}
	// Generating a full million-gate instance takes tens of seconds, so
	// the structural check runs the same preset scaled down: only the
	// size field changes, every calibrated knob stays at its default.
	small := cfg
	small.NumGates = 4000
	n := Generate("ps", small)
	if err := n.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if s := n.ComputeStats(); s.Gates < 4000 {
		t.Errorf("gates = %d, want >= 4000", s.Gates)
	}
}
