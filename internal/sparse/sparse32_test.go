package sparse

import (
	"math"
	"math/rand"
	"runtime"
	"strings"
	"testing"

	"repro/internal/tensor"
)

// TestClampWorkers pins the cgroup-aware clamp: the effective worker
// count must never exceed min(NumCPU, GOMAXPROCS). The old code clamped
// to NumCPU only, which oversubscribes the Go scheduler when GOMAXPROCS
// is lowered (cgroup-limited containers).
func TestClampWorkers(t *testing.T) {
	limit := func() int {
		n := runtime.NumCPU()
		if p := runtime.GOMAXPROCS(0); p < n {
			n = p
		}
		return n
	}
	if got := clampWorkers(0); got != limit() {
		t.Fatalf("clampWorkers(0) = %d, want GOMAXPROCS-derived %d", got, limit())
	}
	if got := clampWorkers(1); got != 1 {
		t.Fatalf("clampWorkers(1) = %d, want 1", got)
	}
	if got := clampWorkers(1 << 20); got != limit() {
		t.Fatalf("clampWorkers(huge) = %d, want %d", got, limit())
	}
	// The regression case: GOMAXPROCS below NumCPU (single-CPU hosts
	// can't lower it further, so raise the request instead and check the
	// GOMAXPROCS bound is what engages).
	old := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(old)
	if got := clampWorkers(runtime.NumCPU() + 8); got != 1 {
		t.Fatalf("with GOMAXPROCS=1, clampWorkers(NumCPU+8) = %d, want 1", got)
	}
	if got := clampWorkers(0); got != 1 {
		t.Fatalf("with GOMAXPROCS=1, clampWorkers(0) = %d, want 1", got)
	}
}

// TestNNZBands checks the band boundaries: monotone, row-aligned
// coverage of [0, rows], and nonzero counts within a row of each other
// when rows are uniform.
func TestNNZBands(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		rows := 1 + rng.Intn(200)
		rowPtr := make([]int32, rows+1)
		for r := 0; r < rows; r++ {
			rowPtr[r+1] = rowPtr[r] + int32(rng.Intn(9)) // skewed, some empty
		}
		n := 1 + rng.Intn(16)
		bands := nnzBands(rowPtr, n)
		if bands[0] != 0 || bands[len(bands)-1] != int32(rows) {
			t.Fatalf("bands %v do not cover [0,%d]", bands, rows)
		}
		if len(bands)-1 > n {
			t.Fatalf("got %d bands, want <= %d", len(bands)-1, n)
		}
		for i := 1; i < len(bands); i++ {
			if bands[i] <= bands[i-1] {
				t.Fatalf("bands not strictly increasing: %v", bands)
			}
		}
	}
	// Degenerate: all-zero matrix still covers every row (zeroing dst
	// rows is part of the kernel contract).
	bands := nnzBands([]int32{0, 0, 0, 0}, 4)
	if bands[0] != 0 || bands[len(bands)-1] != 3 {
		t.Fatalf("zero-nnz bands %v must still cover all rows", bands)
	}
}

// TestMulDenseParallelBandsMatchSerial drives the band scheduler with
// enough rows to bypass the serial fallback and checks bit-identity
// with the serial kernel on a skewed matrix.
func TestMulDenseParallelBandsMatchSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	coo := NewCOO(500, 300)
	for r := 0; r < 500; r++ {
		// Skew: row density grows quadratically with the row index.
		for k := 0; k < 1+(r*r)/20000; k++ {
			coo.Append(int32(r), int32(rng.Intn(300)), rng.NormFloat64())
		}
	}
	csr := coo.ToCSR()
	x := randDense(rng, 300, 8)
	want := tensor.NewDense(500, 8)
	csr.MulDense(want, x)
	for _, workers := range []int{2, 3, 8} {
		got := tensor.NewDense(500, 8)
		// Raise GOMAXPROCS so the clamp doesn't force the serial path on
		// single-CPU hosts; band decomposition itself is what's under test.
		old := runtime.GOMAXPROCS(workers)
		csr.MulDenseParallel(got, x, workers)
		runtime.GOMAXPROCS(old)
		if d := tensor.MaxAbsDiff(got, want); d != 0 {
			t.Fatalf("workers=%d: parallel differs from serial by %g", workers, d)
		}
	}
}

// TestSumDuplicatesScratchReuse checks the epoch-stamp dedup across
// repeated conversions of matrices with different shapes through the
// shared pool, against the dense reference.
func TestSumDuplicatesScratchReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100; trial++ {
		r, c := 1+rng.Intn(40), 1+rng.Intn(40)
		m := randCOO(rng, r, c, 1+rng.Intn(80), true)
		csr := m.ToCSR()
		if d := tensor.MaxAbsDiff(csr.ToDense(), denseOf(m)); d > 1e-12 {
			t.Fatalf("trial %d: dedup wrong by %g", trial, d)
		}
	}
}

// TestToCSRIntoReuse converts twice into the same destination and checks
// the second conversion reuses the backing arrays and matches a fresh
// conversion exactly.
func TestToCSRIntoReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	dst := &CSR{}
	var prevCap int
	for trial := 0; trial < 20; trial++ {
		m := randCOO(rng, 30, 30, 60, true)
		dst = m.ToCSRInto(dst)
		fresh := m.ToCSR()
		if d := tensor.MaxAbsDiff(dst.ToDense(), fresh.ToDense()); d != 0 {
			t.Fatalf("trial %d: ToCSRInto differs from ToCSR by %g", trial, d)
		}
		if trial > 0 && cap(dst.Vals) < prevCap {
			t.Fatalf("trial %d: capacity shrank %d -> %d", trial, prevCap, cap(dst.Vals))
		}
		prevCap = cap(dst.Vals)
	}
}

// TestTransposeInto checks dst reuse, equality with Transpose, and the
// self-aliasing panic.
func TestTransposeInto(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	m := randCOO(rng, 25, 40, 120, true).ToCSR()
	dst := m.TransposeInto(nil)
	if d := tensor.MaxAbsDiff(dst.ToDense(), m.Transpose().ToDense()); d != 0 {
		t.Fatalf("TransposeInto differs from Transpose by %g", d)
	}
	// Round trip through the same buffers.
	back := dst.TransposeInto(&CSR{})
	if d := tensor.MaxAbsDiff(back.ToDense(), m.ToDense()); d != 0 {
		t.Fatalf("double transpose differs from original by %g", d)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("TransposeInto(self) should panic")
		}
	}()
	m.TransposeInto(m)
}

// TestGrowNegativePanics pins the new Grow validation and that Grow
// still never shrinks.
func TestGrowNegativePanics(t *testing.T) {
	m := NewCOO(4, 4)
	for _, bad := range [][2]int{{-1, 5}, {5, -1}, {-2, -2}} {
		func() {
			defer func() {
				if r := recover(); r == nil {
					t.Fatalf("Grow(%d,%d) should panic", bad[0], bad[1])
				} else if !strings.Contains(r.(string), "negative") {
					t.Fatalf("Grow panic message %q should mention negative", r)
				}
			}()
			m.Grow(bad[0], bad[1])
		}()
	}
	m.Grow(2, 2) // smaller-than-current: legal no-op
	if m.NumRows != 4 || m.NumCols != 4 {
		t.Fatalf("Grow shrank to %d×%d", m.NumRows, m.NumCols)
	}
	m.Grow(6, 5)
	if m.NumRows != 6 || m.NumCols != 5 {
		t.Fatalf("Grow(6,5) gave %d×%d", m.NumRows, m.NumCols)
	}
}

// TestAppendPanicMessage pins the out-of-bounds Append diagnostics,
// including the Grow-never-shrinks hint.
func TestAppendPanicMessage(t *testing.T) {
	m := NewCOO(3, 3)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Append outside bounds should panic")
		}
		msg := r.(string)
		for _, want := range []string{"Append(5,1)", "3×3", "Grow never shrinks"} {
			if !strings.Contains(msg, want) {
				t.Fatalf("panic message %q missing %q", msg, want)
			}
		}
	}()
	m.Append(5, 1, 1.0)
}

// TestMulDense32MatchesFloat64 checks the f32 kernels (serial and
// parallel) against the float64 path within float32 tolerance, and
// their bit-identity with each other.
func TestMulDense32MatchesFloat64(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 30; trial++ {
		r, c, k := 4+rng.Intn(120), 4+rng.Intn(80), 2+rng.Intn(12)
		m := randCOO(rng, r, c, 2*r, true).ToCSR()
		x := randDense(rng, c, k)
		x32 := tensor.FromDense(x)

		want := tensor.NewDense(r, k)
		m.MulDense(want, x)

		got := tensor.NewDense32(r, k)
		m.MulDense32(got, x32)
		if d := tensor.MaxAbsDiff32(got, want); d > 1e-4 {
			t.Fatalf("trial %d: f32 SpMM off by %g", trial, d)
		}

		gotPar := tensor.NewDense32(r, k)
		old := runtime.GOMAXPROCS(4)
		m.MulDense32Parallel(gotPar, x32, 4)
		runtime.GOMAXPROCS(old)
		for i, v := range gotPar.Data {
			if v != got.Data[i] {
				t.Fatalf("trial %d: parallel f32 not bit-identical at %d: %g vs %g",
					trial, i, v, got.Data[i])
			}
		}
	}
}

// TestToDense32 checks the f32 materialization against the f64 one.
func TestToDense32(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	m := randCOO(rng, 10, 12, 40, true).ToCSR()
	d64 := m.ToDense()
	d32 := m.ToDense32()
	for i, v := range d32.Data {
		if math.Abs(float64(v)-d64.Data[i]) > 1e-5 {
			t.Fatalf("ToDense32 off at %d: %g vs %g", i, v, d64.Data[i])
		}
	}
}

// TestToCSRIntoAllocFree asserts the steady-state conversion is
// allocation-free: after a warm-up conversion sized the destination and
// the pooled dedup scratch, repeated rebuilds must not allocate.
func TestToCSRIntoAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	m := randCOO(rng, 200, 200, 2000, true)
	dst := m.ToCSRInto(nil) // warm: sizes dst and the dedup pool
	avg := testing.AllocsPerRun(50, func() {
		dst = m.ToCSRInto(dst)
	})
	// sync.Pool can miss occasionally (GC between runs); allow a small
	// average but fail on per-call allocation.
	if avg > 0.5 {
		t.Fatalf("ToCSRInto allocates %.2f objects/op in steady state, want ~0", avg)
	}
}

// BenchmarkToCSRInto measures the steady-state CSR rebuild (the
// incremental OPI loop's hot conversion); allocs/op is the headline —
// the pooled epoch-stamp dedup and reused destination should hold it
// at zero.
func BenchmarkToCSRInto(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	m := randCOO(rng, 5000, 5000, 25000, true)
	dst := m.ToCSRInto(nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = m.ToCSRInto(dst)
	}
}
