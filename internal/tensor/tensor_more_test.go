package tensor

import (
	"math/rand"
	"testing"
)

// TestMatMulOverwritesDirtyDst pins the first-touch semantics: MatMul
// must fully overwrite a reused destination, including rows whose
// left-operand row is entirely zero.
func TestMatMulOverwritesDirtyDst(t *testing.T) {
	a := FromRows([][]float64{{0, 0}, {1, 2}})
	b := FromRows([][]float64{{3, 4}, {5, 6}})
	dst := FromRows([][]float64{{99, 99}, {99, 99}})
	MatMul(dst, a, b)
	want := FromRows([][]float64{{0, 0}, {13, 16}})
	if MaxAbsDiff(dst, want) != 0 {
		t.Errorf("dst = %v, want %v", dst.Data, want.Data)
	}
}

func TestMatMulZeroDimensions(t *testing.T) {
	// 0×k · k×n and m×0 · 0×n must not panic.
	dst := NewDense(0, 3)
	MatMul(dst, NewDense(0, 2), NewDense(2, 3))
	dst2 := NewDense(2, 3)
	MatMul(dst2, NewDense(2, 0), NewDense(0, 3))
	for _, v := range dst2.Data {
		if v != 0 {
			t.Fatal("empty inner dimension must produce zeros")
		}
	}
}

func TestFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("ragged FromRows should panic")
		}
	}()
	FromRows([][]float64{{1, 2}, {3}})
}

func TestCopyFromShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("CopyFrom with mismatched shapes should panic")
		}
	}()
	NewDense(2, 2).CopyFrom(NewDense(2, 3))
}

func TestNegativeShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative shape should panic")
		}
	}()
	NewDense(-1, 2)
}

func TestRowIsMutableView(t *testing.T) {
	d := NewDense(3, 2)
	d.Row(1)[1] = 7
	if d.At(1, 1) != 7 {
		t.Error("Row must alias the underlying storage")
	}
}

func TestSoftmaxSingleColumn(t *testing.T) {
	d := FromRows([][]float64{{42}, {-42}})
	d.SoftmaxRowsInPlace()
	if d.At(0, 0) != 1 || d.At(1, 0) != 1 {
		t.Errorf("single-class softmax must be 1: %v", d.Data)
	}
}

func TestArgmaxTieBreaksLow(t *testing.T) {
	d := FromRows([][]float64{{5, 5, 5}})
	if got := d.ArgmaxRows()[0]; got != 0 {
		t.Errorf("tie should resolve to the first index, got %d", got)
	}
}

func TestDotAgainstManual(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a, b := randDense(rng, 4, 5), randDense(rng, 4, 5)
	var want float64
	for i := range a.Data {
		want += a.Data[i] * b.Data[i]
	}
	if got := a.Dot(b); got != want {
		t.Errorf("Dot = %v, want %v", got, want)
	}
}

func TestMaxAbsDiffZeroForClones(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := randDense(rng, 6, 6)
	if MaxAbsDiff(a, a.Clone()) != 0 {
		t.Error("clone differs from source")
	}
}
