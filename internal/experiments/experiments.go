// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 5) on the synthetic benchmark suite:
//
//	Table 1  — benchmark statistics (#Nodes, #Edges, #POS, #NEG)
//	Figure 8 — training/testing accuracy vs. epoch for depth D ∈ {1,2,3}
//	Table 2  — balanced-set accuracy of LR/RF/SVM/MLP vs. the GCN
//	Figure 9 — F1 of single GCN vs. multi-stage GCN on imbalanced data
//	Figure 10 — inference runtime: matrix formulation vs. recursion [12]
//	Table 3  — OPI flow vs. industrial-tool baseline (#OPs/#patterns/coverage)
//
// Each experiment is a pure function from a Config to a typed result with
// a printable report; cmd/experiments and the repository-level benchmarks
// are thin wrappers over this package.
package experiments

import (
	"repro/internal/core"
	"repro/internal/dataset"
)

// Config scales every experiment. The zero value selects defaults that
// complete in minutes on a single core; raise Size/Epochs toward
// paper-scale as budget allows.
type Config struct {
	// Size is the approximate logic size of each benchmark design;
	// default 4000 (Quick: 1200).
	Size int
	// Patterns is the labeling pattern budget; default 2048 (Quick: 1024).
	Patterns int
	// Epochs is the GCN training budget; default 200 (Quick: 30).
	Epochs int
	// Seed offsets all generation and initialization.
	Seed int64
	// Quick shrinks everything for smoke tests and benchmarks.
	Quick bool
}

func (c Config) withDefaults() Config {
	if c.Quick {
		if c.Size <= 0 {
			c.Size = 1200
		}
		if c.Patterns <= 0 {
			c.Patterns = 1024
		}
		if c.Epochs <= 0 {
			c.Epochs = 30
		}
		return c
	}
	if c.Size <= 0 {
		c.Size = 4000
	}
	if c.Patterns <= 0 {
		c.Patterns = dataset.DefaultPatterns
	}
	if c.Epochs <= 0 {
		c.Epochs = 200
	}
	return c
}

// suite builds the benchmark suite for the config (deterministic in
// cfg.Seed).
func (c Config) suite() []*dataset.Benchmark {
	return dataset.GenerateSuite(dataset.SuiteConfig{
		NumGates:  c.Size,
		Patterns:  c.Patterns,
		Threshold: dataset.DefaultThreshold,
		Seed:      c.Seed,
		Designs:   4,
	})
}

// modelConfig returns the GCN architecture used throughout the
// evaluation; Quick mode shrinks the embedding widths.
func (c Config) modelConfig(depth int, seed int64) core.Config {
	dims := []int{32, 64, 128}
	fc := []int{64, 64, 128}
	if c.Quick {
		dims = []int{8, 16, 32}
		fc = []int{16, 16}
	}
	if depth < len(dims) {
		dims = dims[:depth]
	}
	return core.Config{Dims: dims, FCDims: fc, NumClasses: 2, Seed: seed}
}

// trainOptions returns the shared training recipe.
func (c Config) trainOptions() core.TrainOptions {
	return core.TrainOptions{
		Epochs:   c.Epochs,
		LR:       0.02,
		Momentum: 0.9,
		LRDecay:  0.995,
		ClipNorm: 5,
	}
}
