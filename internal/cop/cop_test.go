package cop

import (
	"math"
	"math/bits"
	"math/rand"
	"testing"

	"repro/internal/circuitgen"
	"repro/internal/fault"
	"repro/internal/netlist"
)

func TestSignalProbabilitiesHandValues(t *testing.T) {
	n := netlist.New("p")
	a := n.MustAddGate(netlist.Input, "a")
	b := n.MustAddGate(netlist.Input, "b")
	and := n.MustAddGate(netlist.And, "and", a, b)
	or := n.MustAddGate(netlist.Or, "or", a, b)
	xr := n.MustAddGate(netlist.Xor, "xr", a, b)
	inv := n.MustAddGate(netlist.Not, "inv", and)
	for _, g := range []int32{and, or, xr, inv} {
		n.MustAddGate(netlist.Output, "", g)
	}
	m := Compute(n)
	cases := map[int32]float64{a: 0.5, and: 0.25, or: 0.75, xr: 0.5, inv: 0.75}
	for id, want := range cases {
		if math.Abs(m.P1[id]-want) > 1e-12 {
			t.Errorf("P1[%d] = %v, want %v", id, m.P1[id], want)
		}
	}
}

func TestObservabilityHandValues(t *testing.T) {
	// a AND b -> PO: obs(a) = P(b=1) = 0.5; obs(and) = 1.
	n := netlist.New("o")
	a := n.MustAddGate(netlist.Input, "a")
	b := n.MustAddGate(netlist.Input, "b")
	and := n.MustAddGate(netlist.And, "and", a, b)
	n.MustAddGate(netlist.Output, "po", and)
	m := Compute(n)
	if m.Obs[and] != 1 {
		t.Errorf("Obs(and) = %v", m.Obs[and])
	}
	if math.Abs(m.Obs[a]-0.5) > 1e-12 {
		t.Errorf("Obs(a) = %v, want 0.5", m.Obs[a])
	}
}

// TestMatchesSimulationOnFanoutFreeLogic: COP is exact on trees, so the
// analytic observability must match empirical counts within sampling
// error.
func TestMatchesSimulationOnFanoutFreeLogic(t *testing.T) {
	n := netlist.New("tree")
	var leaves []int32
	for i := 0; i < 8; i++ {
		leaves = append(leaves, n.MustAddGate(netlist.Input, ""))
	}
	l1a := n.MustAddGate(netlist.And, "", leaves[0], leaves[1])
	l1b := n.MustAddGate(netlist.Or, "", leaves[2], leaves[3])
	l1c := n.MustAddGate(netlist.Xor, "", leaves[4], leaves[5])
	l1d := n.MustAddGate(netlist.Nand, "", leaves[6], leaves[7])
	l2a := n.MustAddGate(netlist.Or, "", l1a, l1b)
	l2b := n.MustAddGate(netlist.And, "", l1c, l1d)
	root := n.MustAddGate(netlist.Xor, "", l2a, l2b)
	n.MustAddGate(netlist.Output, "po", root)

	m := Compute(n)
	const patterns = 1 << 16
	counts := fault.ObservabilityCounts(n, patterns, 7)
	for id := int32(0); id < int32(n.NumGates()); id++ {
		if n.Type(id) == netlist.Output {
			continue
		}
		got := m.Obs[id]
		emp := float64(counts[id]) / patterns
		if math.Abs(got-emp) > 0.02 {
			t.Errorf("node %d (%v): COP obs %v, empirical %v", id, n.Type(id), got, emp)
		}
	}
}

func TestSignalProbabilityMatchesExhaustiveEnumeration(t *testing.T) {
	// Small random circuit with ≤6 inputs: enumerate all input patterns
	// and compare exact P1 against COP (they can diverge only through
	// reconvergence; build fanout-free by hand to stay exact).
	n := netlist.New("ex")
	in := make([]int32, 6)
	for i := range in {
		in[i] = n.MustAddGate(netlist.Input, "")
	}
	g1 := n.MustAddGate(netlist.Nor, "", in[0], in[1])
	g2 := n.MustAddGate(netlist.Xnor, "", in[2], in[3])
	g3 := n.MustAddGate(netlist.Nand, "", in[4], in[5])
	g4 := n.MustAddGate(netlist.And, "", g1, g2)
	g5 := n.MustAddGate(netlist.Or, "", g4, g3)
	n.MustAddGate(netlist.Output, "", g5)
	m := Compute(n)

	sim := fault.NewSimulator(n)
	words := make(map[int32]uint64)
	for lane := 0; lane < 64; lane++ {
		for i, id := range in {
			if lane>>uint(i)&1 == 1 {
				words[id] |= 1 << uint(lane)
			}
		}
	}
	sim.BatchFrom(func(id int32) uint64 { return words[id] })
	for _, id := range []int32{g1, g2, g3, g4, g5} {
		exact := float64(bits.OnesCount64(sim.Values()[id])) / 64
		if math.Abs(m.P1[id]-exact) > 1e-12 {
			t.Errorf("node %d: COP P1 %v, exact %v", id, m.P1[id], exact)
		}
	}
}

func TestDetectionProbability(t *testing.T) {
	n := netlist.New("d")
	a := n.MustAddGate(netlist.Input, "a")
	b := n.MustAddGate(netlist.Input, "b")
	and := n.MustAddGate(netlist.And, "and", a, b)
	n.MustAddGate(netlist.Output, "po", and)
	m := Compute(n)
	// s-a-0 at and: excite with P(and=1)=0.25, obs 1 → 0.25.
	if got := m.DetectionProbability(and, false); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("detection prob s-a-0 = %v", got)
	}
	// s-a-1: excite 0.75.
	if got := m.DetectionProbability(and, true); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("detection prob s-a-1 = %v", got)
	}
}

func TestCOPCorrelatesWithEmpiricalOnRealCircuits(t *testing.T) {
	// Under reconvergent fanout COP's independence assumption makes it
	// systematically pessimistic (correlated side conditions raise the
	// true propagation probability), so absolute agreement is not
	// expected — that inaccuracy is precisely why approximate-measurement
	// TPI tools over-insert and why the learned model has headroom. What
	// must hold is rank-level signal: empirically difficult nodes are
	// far more common among COP-unobservable nodes than overall.
	n := circuitgen.Generate("c", circuitgen.Config{Seed: 3, NumGates: 1500, ShadowFunnels: 6, ShadowGuard: 4})
	m := Compute(n)
	const patterns = 4096
	counts := fault.ObservabilityCounts(n, patterns, 11)
	difficult := func(id int32) bool { return float64(counts[id])/patterns < 0.005 }

	// Pessimism means COP should very rarely call a truly difficult node
	// easy: demand high recall of the difficult class at a generous
	// threshold, even though precision is poor.
	diffTotal, covered := 0, 0
	for id := int32(0); id < int32(n.NumGates()); id++ {
		switch n.Type(id) {
		case netlist.Output, netlist.Obs, netlist.Input:
			continue
		}
		if !difficult(id) {
			continue
		}
		diffTotal++
		if m.Obs[id] < 1e-3 {
			covered++
		}
	}
	if diffTotal == 0 {
		t.Skip("degenerate circuit for this seed")
	}
	recall := float64(covered) / float64(diffTotal)
	if recall < 0.7 {
		t.Errorf("COP missed too many difficult nodes: recall %.3f", recall)
	}
	t.Logf("COP recall of empirically difficult nodes: %.3f (%d/%d)", recall, covered, diffTotal)
}

func TestRandomCircuitProbabilitiesInRange(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 5; trial++ {
		n := circuitgen.Generate("r", circuitgen.Config{Seed: rng.Int63(), NumGates: 400})
		m := Compute(n)
		for id := 0; id < n.NumGates(); id++ {
			if m.P1[id] < 0 || m.P1[id] > 1 || m.Obs[id] < 0 || m.Obs[id] > 1 {
				t.Fatalf("out-of-range probability at %d: P1=%v Obs=%v", id, m.P1[id], m.Obs[id])
			}
		}
	}
}
