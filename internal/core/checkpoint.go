package core

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"os"
)

// This file is the exported weights-checkpoint format: a self-describing
// gob envelope that records what kind of predictor was saved (a single
// Model or a MultiStage cascade) together with its architecture and
// parameter values, so that a serving process (cmd/serve) can restore a
// trained predictor without knowing anything about how it was trained.
// The legacy cascade stream written by (*MultiStage).Save — what
// `gcntest train` has produced since PR 2 — remains loadable through
// LoadCheckpointFile's fallback path.

const (
	// checkpointMagic identifies the self-describing checkpoint envelope;
	// streams without it are either corrupt or in the legacy cascade
	// format.
	checkpointMagic = "repro/gcn-checkpoint"
	// checkpointVersion is the current envelope version; readers reject
	// versions they do not know.
	checkpointVersion = 1
)

// checkpointWire is the gob envelope shared by both predictor kinds. A
// single Model is stored as a one-stage cascade with Kind "model".
type checkpointWire struct {
	Magic       string
	Version     int
	Kind        string // "model" | "multistage"
	Cfg         Config
	FilterBelow float64
	ParamNames  []string
	StageParams [][][]float64 // [stage][param][values]
}

// SaveCheckpoint writes pred — a *Model or a *MultiStage — to w in the
// self-describing checkpoint format understood by LoadCheckpoint.
// Predictors of any other dynamic type are rejected.
func SaveCheckpoint(w io.Writer, pred IncrementalPredictor) error {
	wire := checkpointWire{Magic: checkpointMagic, Version: checkpointVersion}
	switch p := pred.(type) {
	case *Model:
		wire.Kind = "model"
		wire.Cfg = p.Cfg
		wire.ParamNames, wire.StageParams = paramValues([]*Model{p})
	case *MultiStage:
		if len(p.Stages) == 0 {
			return fmt.Errorf("core: cannot checkpoint empty cascade")
		}
		wire.Kind = "multistage"
		wire.Cfg = p.Stages[0].Cfg
		wire.FilterBelow = p.FilterBelow
		wire.ParamNames, wire.StageParams = paramValues(p.Stages)
	default:
		return fmt.Errorf("core: cannot checkpoint predictor of type %T", pred)
	}
	return gob.NewEncoder(w).Encode(wire)
}

// SaveCheckpointFile writes pred to path via SaveCheckpoint, creating or
// truncating the file.
func SaveCheckpointFile(path string, pred IncrementalPredictor) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := SaveCheckpoint(f, pred); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadCheckpoint restores a predictor saved with SaveCheckpoint. The
// returned value is a *Model or a *MultiStage depending on what was
// saved; both satisfy IncrementalPredictor (and opi.Predictor).
func LoadCheckpoint(r io.Reader) (IncrementalPredictor, error) {
	var wire checkpointWire
	if err := gob.NewDecoder(r).Decode(&wire); err != nil {
		return nil, fmt.Errorf("core: checkpoint decode: %w", err)
	}
	if wire.Magic != checkpointMagic {
		return nil, fmt.Errorf("core: not a checkpoint (magic %q)", wire.Magic)
	}
	if wire.Version > checkpointVersion {
		return nil, fmt.Errorf("core: checkpoint version %d newer than supported %d",
			wire.Version, checkpointVersion)
	}
	switch wire.Kind {
	case "model":
		if len(wire.StageParams) != 1 {
			return nil, fmt.Errorf("core: model checkpoint with %d stages", len(wire.StageParams))
		}
		return modelFromParams(wire.Cfg, wire.StageParams[0], 0)
	case "multistage":
		ms := &MultiStage{FilterBelow: wire.FilterBelow}
		for si, ps := range wire.StageParams {
			m, err := modelFromParams(wire.Cfg, ps, si)
			if err != nil {
				return nil, err
			}
			ms.Stages = append(ms.Stages, m)
		}
		if len(ms.Stages) == 0 {
			return nil, fmt.Errorf("core: multistage checkpoint with no stages")
		}
		return ms, nil
	default:
		return nil, fmt.Errorf("core: unknown checkpoint kind %q", wire.Kind)
	}
}

// LoadCheckpointFile restores a predictor from path. It accepts both the
// self-describing checkpoint format and the legacy cascade stream
// written by (*MultiStage).Save (the model.gob that `gcntest train`
// emits), so older trained artifacts keep working as serving
// checkpoints.
func LoadCheckpointFile(path string) (IncrementalPredictor, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	pred, err := LoadCheckpoint(bytes.NewReader(data))
	if err == nil {
		return pred, nil
	}
	ms, legacyErr := LoadMultiStage(bytes.NewReader(data))
	if legacyErr != nil {
		return nil, fmt.Errorf("core: %s is neither a checkpoint (%v) nor a legacy cascade (%v)",
			path, err, legacyErr)
	}
	return ms, nil
}

// PredictorCloner is the hook composite predictors implement so that
// ClonePredictor can deep-copy them without core knowing their concrete
// type (partition.ShardedPredictor wraps a Model or MultiStage and
// clones its base plus private execution state through this).
type PredictorCloner interface {
	ClonePredictor() IncrementalPredictor
}

// ClonePredictor returns a deep copy of a known predictor type (*Model
// or *MultiStage) with its own parameter and scratch storage, safe to
// use concurrently with the original. Other types are asked to clone
// themselves via PredictorCloner when they implement it, and are
// returned unchanged otherwise — callers needing isolation for such
// predictors must provide it themselves.
func ClonePredictor(pred IncrementalPredictor) IncrementalPredictor {
	switch p := pred.(type) {
	case *Model:
		return p.Clone()
	case *MultiStage:
		return p.Clone()
	case PredictorCloner:
		return p.ClonePredictor()
	default:
		return pred
	}
}

// paramValues flattens the trainable parameters of a stage list into the
// wire layout, recording the parameter names of the first stage for
// diagnostics.
func paramValues(stages []*Model) (names []string, values [][][]float64) {
	for _, p := range stages[0].Params() {
		names = append(names, p.Name)
	}
	for _, s := range stages {
		var ps [][]float64
		for _, p := range s.Params() {
			ps = append(ps, p.Data)
		}
		values = append(values, ps)
	}
	return names, values
}

// modelFromParams builds a model with cfg's architecture and fills its
// parameters from the stored flat values, validating shapes.
func modelFromParams(cfg Config, ps [][]float64, stage int) (*Model, error) {
	m, err := NewModel(cfg)
	if err != nil {
		return nil, err
	}
	params := m.Params()
	if len(params) != len(ps) {
		return nil, fmt.Errorf("core: stage %d has %d params, stored %d", stage, len(params), len(ps))
	}
	for i, p := range params {
		if len(p.Data) != len(ps[i]) {
			return nil, fmt.Errorf("core: stage %d param %q size %d != stored %d",
				stage, p.Name, len(p.Data), len(ps[i]))
		}
		copy(p.Data, ps[i])
	}
	return m, nil
}
