#!/usr/bin/env bash
# Pre-merge gate: run from anywhere; fails fast on the first problem.
#
#   ./scripts/check.sh
#
# What it checks (referenced from README.md "Measuring performance"):
#   1. go vet over every package
#   2. gofmt cleanliness (no files would be rewritten)
#   3. race-detector tests for the concurrency-heavy packages
#      (internal/obs metrics registry, internal/core parallel trainer)
#   4. the full test suite
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== go vet ./..."
go vet ./...

echo "== gofmt -l"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go test -race ./internal/obs ./internal/core"
go test -race ./internal/obs ./internal/core

echo "== go build ./... && go test ./..."
go build ./...
go test ./...

echo "check.sh: all gates passed"
