package netlist

import (
	"bytes"
	"testing"
)

// FuzzNetlistParse feeds arbitrary text through the .bench reader and,
// whenever a netlist comes out, demands the full contract: the result
// validates, serializes, re-parses, and reaches a serialization fixed
// point (write∘read is idempotent after one normalization pass). Seed
// corpus lives in testdata/fuzz/FuzzNetlistParse.
func FuzzNetlistParse(f *testing.F) {
	f.Add("INPUT(a)\nb = NOT(a)\nOUTPUT(b)\n")
	f.Add("# c17 tiny\nINPUT(a)\nINPUT(b)\ng = NAND(a, b)\nq = DFF(g)\nz = XOR(q, a)\nOUTPUT(z)\nOBS(g)\n")
	f.Add("INPUT(n1)\nn0 = BUF(n1)\nOUTPUT(n0)\n")
	f.Add("a = AND(b, c)\n")                     // undeclared nets: must error, not panic
	f.Add("x = BUF(y)\ny = NOT(x)\nOUTPUT(x)\n") // cycle: must error
	f.Fuzz(func(t *testing.T, text string) {
		n, err := Read(bytes.NewReader([]byte(text)))
		if err != nil {
			return // rejecting malformed input is fine; crashing is not
		}
		if verr := n.Validate(); verr != nil {
			t.Fatalf("Read accepted an invalid netlist: %v", verr)
		}
		var w1 bytes.Buffer
		if err := Write(&w1, n); err != nil {
			t.Fatalf("Write failed on parsed netlist: %v", err)
		}
		n2, err := Read(bytes.NewReader(w1.Bytes()))
		if err != nil {
			t.Fatalf("re-parse of own output failed: %v\noutput:\n%s", err, w1.String())
		}
		if n2.NumGates() != n.NumGates() || n2.NumEdges() != n.NumEdges() {
			t.Fatalf("round trip changed shape: %d gates/%d edges -> %d gates/%d edges",
				n.NumGates(), n.NumEdges(), n2.NumGates(), n2.NumEdges())
		}
		for _, typ := range []GateType{Input, Output, Obs, DFF, And, Nand, Or, Nor, Xor, Xnor, Buf, Not} {
			if n.CountType(typ) != n2.CountType(typ) {
				t.Fatalf("round trip changed %s count: %d -> %d", typ, n.CountType(typ), n2.CountType(typ))
			}
		}
		var w2 bytes.Buffer
		if err := Write(&w2, n2); err != nil {
			t.Fatalf("second Write failed: %v", err)
		}
		if !bytes.Equal(w1.Bytes(), w2.Bytes()) {
			t.Fatalf("serialization not a fixed point:\nfirst:\n%s\nsecond:\n%s", w1.String(), w2.String())
		}
	})
}
