package refcheck

import (
	"math"
	"math/rand"

	"repro/internal/core"
	"repro/internal/nn"
)

// This file checks the GCN's hand-derived backpropagation against
// central finite differences, parameter tensor by parameter tensor (the
// scalar aggregation weights wpr/wsu, every encoder, every classifier
// layer). It is the trust layer under every future change to the
// forward or backward pass.

// GradReport is the finite-difference verdict for one parameter tensor.
type GradReport struct {
	// Name is the parameter's registered name (e.g. "gcn.enc1.W").
	Name string
	// Checked is the number of sampled entries.
	Checked int
	// MaxRel is the worst relative error |analytic-numeric| /
	// max(1, |analytic|, |numeric|) over the sampled entries.
	MaxRel float64
}

// GradCheckOptions tunes the finite-difference sweep.
type GradCheckOptions struct {
	// SamplePerParam bounds how many entries of each parameter tensor
	// are perturbed (0 means 24). Entries are sampled without
	// replacement from a seeded source, so runs are reproducible.
	SamplePerParam int
	// Step is the central-difference step h (0 means 1e-5).
	Step float64
	// Seed drives entry sampling.
	Seed int64
}

// GradCheck compares the analytic gradients of m.LossAndGrad on graph g
// against central finite differences of the loss, returning one report
// per parameter tensor. The model's parameters are restored exactly;
// gradients are left zeroed.
func GradCheck(m *core.Model, g *core.Graph, labels []int, classWeights []float64, opt GradCheckOptions) []GradReport {
	if opt.SamplePerParam <= 0 {
		opt.SamplePerParam = 24
	}
	if opt.Step <= 0 {
		opt.Step = 1e-5
	}
	params := m.Params()
	nn.ZeroGrads(params)
	m.LossAndGrad(g, labels, classWeights)
	analytic := make([][]float64, len(params))
	for i, p := range params {
		analytic[i] = append([]float64(nil), p.Grad...)
	}
	nn.ZeroGrads(params)

	lossOnly := func() float64 {
		logits := m.Forward(g)
		loss, _ := nn.WeightedCrossEntropy(logits, labels, classWeights)
		return loss
	}

	rng := rand.New(rand.NewSource(opt.Seed))
	reports := make([]GradReport, 0, len(params))
	for pi, p := range params {
		idxs := sampleIndices(rng, len(p.Data), opt.SamplePerParam)
		rep := GradReport{Name: p.Name, Checked: len(idxs)}
		for _, idx := range idxs {
			orig := p.Data[idx]
			p.Data[idx] = orig + opt.Step
			lp := lossOnly()
			p.Data[idx] = orig - opt.Step
			lm := lossOnly()
			p.Data[idx] = orig
			numeric := (lp - lm) / (2 * opt.Step)
			ana := analytic[pi][idx]
			diff := math.Abs(numeric - ana)
			if diff < 1e-9 {
				continue // both gradients vanish; nothing to compare
			}
			den := 1.0
			if m := math.Abs(numeric); m > den {
				den = m
			}
			if m := math.Abs(ana); m > den {
				den = m
			}
			if rel := diff / den; rel > rep.MaxRel {
				rep.MaxRel = rel
			}
		}
		reports = append(reports, rep)
	}
	return reports
}

// sampleIndices draws up to k distinct indices from [0,n) in sorted
// order (all of them when n <= k).
func sampleIndices(rng *rand.Rand, n, k int) []int {
	if n <= k {
		out := make([]int, n)
		for i := range out {
			out[i] = i
		}
		return out
	}
	seen := make(map[int]bool, k)
	out := make([]int, 0, k)
	for len(out) < k {
		i := rng.Intn(n)
		if !seen[i] {
			seen[i] = true
			out = append(out, i)
		}
	}
	return out
}
