package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/obs"
)

// TestManifestSmoke runs the experiment driver end to end in Quick mode
// (at reduced scale so the test stays fast) with -manifest and asserts
// the emitted file is valid JSON containing the span tree and counters
// the acceptance criteria name: train, faultsim and opi spans.
func TestManifestSmoke(t *testing.T) {
	defer func() {
		obs.Disable()
		obs.Reset()
	}()
	obs.Reset()
	path := filepath.Join(t.TempDir(), "manifest.json")
	var out bytes.Buffer
	args := []string{
		"-quick", "-size", "400", "-patterns", "256", "-epochs", "4",
		"-run", "table3", "-manifest", path,
	}
	if err := run(args, &out); err != nil {
		t.Fatalf("run(%v): %v\noutput:\n%s", args, err, out.String())
	}

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("manifest not written: %v", err)
	}
	var m obs.Manifest
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatalf("manifest is not valid JSON: %v", err)
	}
	if m.Name != "experiments" || m.SchemaVersion != 1 {
		t.Errorf("manifest identity: %+v", m)
	}
	if m.GOMAXPROCS <= 0 || m.GoVersion == "" {
		t.Errorf("environment not captured: %+v", m)
	}

	roots := map[string]*obs.SpanNode{}
	for _, s := range m.Snapshot.Spans {
		roots[s.Name] = s
	}
	for _, want := range []string{"train", "faultsim", "opi", "scoap", "experiments/table3"} {
		n, ok := roots[want]
		if !ok {
			t.Errorf("manifest span tree missing root %q (have %v)", want, spanNames(m.Snapshot.Spans))
			continue
		}
		if n.Count <= 0 || n.WallNS <= 0 {
			t.Errorf("span %q has no recorded executions: %+v", want, n)
		}
	}
	if train := roots["train"]; train != nil {
		if train.Find("epoch") == nil || train.Find("epoch/worker") == nil {
			t.Errorf("train span lacks epoch/worker nesting: %+v", train)
		}
	}
	if opiRoot := roots["opi"]; opiRoot != nil && opiRoot.Find("iteration") == nil {
		t.Errorf("opi span lacks iteration children: %+v", opiRoot)
	}

	for _, want := range []string{"spmm.rows", "train.epochs", "faultsim.batches", "opi.iterations", "scoap.full_computes"} {
		if m.Snapshot.Counters[want] <= 0 {
			t.Errorf("counter %q missing or zero (have %v)", want, m.Snapshot.Counters)
		}
	}
}

// TestFig10TraceSmoke runs the acceptance-criteria invocation —
// -run fig10 with both -trace and -manifest — at reduced scale and
// asserts the trace is valid Chrome Trace Event Format with one tid per
// training worker and the manifest carries per-epoch loss/timing
// events.
func TestFig10TraceSmoke(t *testing.T) {
	defer func() {
		obs.DisableTracing()
		obs.Disable()
		obs.Reset()
	}()
	obs.Reset()
	dir := t.TempDir()
	manifestPath := filepath.Join(dir, "m.json")
	tracePath := filepath.Join(dir, "out.json")
	var out bytes.Buffer
	args := []string{
		"-quick", "-size", "400", "-patterns", "128", "-epochs", "3",
		"-run", "fig10", "-trace", tracePath, "-manifest", manifestPath,
	}
	if err := run(args, &out); err != nil {
		t.Fatalf("run(%v): %v\noutput:\n%s", args, err, out.String())
	}

	rawM, err := os.ReadFile(manifestPath)
	if err != nil {
		t.Fatalf("manifest not written: %v", err)
	}
	var m obs.Manifest
	if err := json.Unmarshal(rawM, &m); err != nil {
		t.Fatalf("manifest is not valid JSON: %v", err)
	}
	epochs := 0
	for _, ev := range m.Snapshot.Events {
		if ev.Name != "train.epoch" {
			continue
		}
		epochs++
		if _, ok := ev.Attrs["loss"].(float64); !ok {
			t.Errorf("epoch event lacks numeric loss: %v", ev.Attrs)
		}
		if _, ok := ev.Attrs["wall_ms"].(float64); !ok {
			t.Errorf("epoch event lacks wall_ms: %v", ev.Attrs)
		}
	}
	if epochs != 3 {
		t.Errorf("manifest has %d train.epoch events, want 3", epochs)
	}

	rawT, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatalf("trace not written: %v", err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			TS   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			TID  int64   `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(rawT, &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	workerTIDs := map[int64]bool{}
	sawEpochInstant := false
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "X" && ev.Name == "train/epoch/worker" {
			workerTIDs[ev.TID] = true
		}
		if ev.Ph == "i" && ev.Name == "train.epoch" {
			sawEpochInstant = true
		}
	}
	// Fig10 trains on a single graph, so one worker timeline (tid 1).
	if len(workerTIDs) != 1 || !workerTIDs[1] {
		t.Errorf("worker span tids = %v, want exactly {1}", workerTIDs)
	}
	if !sawEpochInstant {
		t.Error("trace lacks train.epoch instant events")
	}
}

func spanNames(spans []*obs.SpanNode) []string {
	var out []string
	for _, s := range spans {
		out = append(out, s.Name)
	}
	return out
}
