package serve

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestScoreHappyPathAndCacheHit(t *testing.T) {
	_, ts := newTestServer(t, Options{Predictor: &stubPredictor{}})

	var resp ScoreResponse
	if code := postJSON(t, ts.URL+"/v1/score", ScoreRequest{Netlist: tinyBench}, &resp); code != 200 {
		t.Fatalf("status %d", code)
	}
	sum := sha256.Sum256([]byte(tinyBench))
	if want := hex.EncodeToString(sum[:]); resp.Design != want {
		t.Fatalf("design id %q, want content hash %q", resp.Design, want)
	}
	if resp.Nodes != 5 || len(resp.Scores) != 5 || resp.Cached {
		t.Fatalf("nodes=%d scores=%d cached=%v", resp.Nodes, len(resp.Scores), resp.Cached)
	}
	want := expectedScores(t, tinyBench)
	for v := range want {
		if resp.Scores[v] != want[v] {
			t.Fatalf("node %d: score %g, want %g", v, resp.Scores[v], want[v])
		}
	}
	// The difficult list must be exactly the nodes at/above threshold,
	// sorted by descending score.
	var above int
	for _, p := range want {
		if p >= 0.5 {
			above++
		}
	}
	if len(resp.Difficult) != above {
		t.Fatalf("difficult=%d, want %d", len(resp.Difficult), above)
	}
	for i := 1; i < len(resp.Difficult); i++ {
		if resp.Difficult[i].Score > resp.Difficult[i-1].Score {
			t.Fatal("difficult list not sorted by descending score")
		}
	}

	// Identical request again: warm-cache hit, no recompile.
	var again ScoreResponse
	if code := postJSON(t, ts.URL+"/v1/score", ScoreRequest{Netlist: tinyBench}, &again); code != 200 {
		t.Fatalf("status %d", code)
	}
	if !again.Cached || again.Design != resp.Design {
		t.Fatalf("cached=%v design=%q", again.Cached, again.Design)
	}
}

func TestScoreMalformedNetlist400(t *testing.T) {
	_, ts := newTestServer(t, Options{Predictor: &stubPredictor{}})
	body, _ := json.Marshal(ScoreRequest{Netlist: "g1 = FROB(a,\n"})
	resp, err := http.Post(ts.URL+"/v1/score", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 400 {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
	if cat := errCategory(t, resp); cat != ErrInvalidRequest {
		t.Fatalf("category %q", cat)
	}
}

func TestScoreBadJSONAndMissingField400(t *testing.T) {
	_, ts := newTestServer(t, Options{Predictor: &stubPredictor{}})
	resp, err := http.Post(ts.URL+"/v1/score", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 400 || errCategory(t, resp) != ErrInvalidRequest {
		t.Fatalf("bad JSON: status %d", resp.StatusCode)
	}
	resp, err = http.Post(ts.URL+"/v1/score", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 400 || errCategory(t, resp) != ErrInvalidRequest {
		t.Fatalf("missing netlist: status %d", resp.StatusCode)
	}
}

func TestScoreBodyTooLarge413(t *testing.T) {
	_, ts := newTestServer(t, Options{Predictor: &stubPredictor{}, MaxBodyBytes: 64})
	body, _ := json.Marshal(ScoreRequest{Netlist: tinyBench})
	resp, err := http.Post(ts.URL+"/v1/score", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 413 || errCategory(t, resp) != ErrTooLarge {
		t.Fatalf("status %d", resp.StatusCode)
	}
}

func TestDeltaFlow(t *testing.T) {
	_, ts := newTestServer(t, Options{Predictor: &stubPredictor{}})

	var base ScoreResponse
	postJSON(t, ts.URL+"/v1/score", ScoreRequest{Netlist: tinyBench}, &base)

	// Observe g1 (id 2): one OP node appended, scores refreshed
	// incrementally.
	var delta ScoreResponse
	if code := postJSON(t, ts.URL+"/v1/score/delta",
		DeltaRequest{Design: base.Design, Observe: []int32{2}}, &delta); code != 200 {
		t.Fatalf("status %d", code)
	}
	if delta.Design == base.Design {
		t.Fatal("delta did not re-key the design")
	}
	if delta.Nodes != 6 || len(delta.Scores) != 6 {
		t.Fatalf("nodes=%d scores=%d, want 6", delta.Nodes, len(delta.Scores))
	}
	if len(delta.Inserted) != 1 || delta.Inserted[0].ID != 2 {
		t.Fatalf("inserted=%v", delta.Inserted)
	}
	if !delta.Cached {
		t.Fatal("delta response not marked cached")
	}

	// Same edit computed offline must agree exactly.
	wantAfter := func() []float64 {
		n, meas, g := compileForTest(t, tinyBench)
		if _, _, err := insertForTest(n, meas, g, 2); err != nil {
			t.Fatal(err)
		}
		return (&stubPredictor{}).PredictProbs(g)
	}()
	for v := range wantAfter {
		if delta.Scores[v] != wantAfter[v] {
			t.Fatalf("node %d: delta score %g, want %g", v, delta.Scores[v], wantAfter[v])
		}
	}

	// The superseded id no longer resolves; the new one takes deltas by
	// name too.
	body, _ := json.Marshal(DeltaRequest{Design: base.Design, Observe: []int32{3}})
	resp, err := http.Post(ts.URL+"/v1/score/delta", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 404 || errCategory(t, resp) != ErrNotFound {
		t.Fatalf("superseded id: status %d", resp.StatusCode)
	}
	var second ScoreResponse
	if code := postJSON(t, ts.URL+"/v1/score/delta",
		DeltaRequest{Design: delta.Design, ObserveNames: []string{"g2"}}, &second); code != 200 {
		t.Fatalf("named delta status %d", code)
	}
	if second.Nodes != 7 {
		t.Fatalf("nodes=%d after second delta", second.Nodes)
	}
}

func TestDeltaUnknownDesign404(t *testing.T) {
	_, ts := newTestServer(t, Options{Predictor: &stubPredictor{}})
	body, _ := json.Marshal(DeltaRequest{Design: "deadbeef", Observe: []int32{0}})
	resp, err := http.Post(ts.URL+"/v1/score/delta", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 404 || errCategory(t, resp) != ErrNotFound {
		t.Fatalf("status %d", resp.StatusCode)
	}
}

func TestDeltaInvalidTargets400(t *testing.T) {
	_, ts := newTestServer(t, Options{Predictor: &stubPredictor{}})
	var base ScoreResponse
	postJSON(t, ts.URL+"/v1/score", ScoreRequest{Netlist: tinyBench}, &base)

	for _, req := range []DeltaRequest{
		{Design: base.Design, Observe: []int32{99}},           // out of range
		{Design: base.Design, Observe: []int32{0}},            // Input cell
		{Design: base.Design, ObserveNames: []string{"nope"}}, // unknown name
		{Design: base.Design},                                 // empty delta
	} {
		body, _ := json.Marshal(req)
		resp, err := http.Post(ts.URL+"/v1/score/delta", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != 400 || errCategory(t, resp) != ErrInvalidRequest {
			t.Fatalf("req %+v: status %d", req, resp.StatusCode)
		}
	}
}

func TestShed429WithRetryAfter(t *testing.T) {
	stub := &stubPredictor{started: make(chan struct{}, 1), release: make(chan struct{})}
	_, ts := newTestServer(t, Options{Predictor: stub, MaxConcurrent: 1, MaxQueue: 1})

	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // occupies the only slot, blocked in the forward pass
		defer wg.Done()
		postJSON(t, ts.URL+"/v1/score", ScoreRequest{Netlist: tinyBench}, nil)
	}()
	<-stub.started
	go func() { // fills the one queue slot
		defer wg.Done()
		postJSON(t, ts.URL+"/v1/score", ScoreRequest{Netlist: otherBench}, nil)
	}()

	// Once the second request occupies the queue, the next one must be
	// shed immediately; the queue-depth gauge reports when it is in.
	waitUntil(t, 5*time.Second, func() bool { return mQueueDepth.Value() == 1 })

	body, _ := json.Marshal(ScoreRequest{Netlist: thirdBench})
	shed, err := http.Post(ts.URL+"/v1/score", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if shed.StatusCode != 429 {
		t.Fatalf("status %d, want 429", shed.StatusCode)
	}
	if shed.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	if cat := errCategory(t, shed); cat != ErrOverloaded {
		t.Fatalf("category %q", cat)
	}
	close(stub.release)
	wg.Wait()
}

func TestDeadlineExceeded504(t *testing.T) {
	stub := &stubPredictor{started: make(chan struct{}, 1), release: make(chan struct{})}
	_, ts := newTestServer(t, Options{Predictor: stub, MaxConcurrent: 1, MaxQueue: 4})

	done := make(chan struct{})
	go func() { // occupies the only slot
		defer close(done)
		postJSON(t, ts.URL+"/v1/score", ScoreRequest{Netlist: tinyBench}, nil)
	}()
	<-stub.started

	// This request can only wait in the queue; its 50 ms deadline expires
	// there deterministically.
	body, _ := json.Marshal(ScoreRequest{Netlist: otherBench, TimeoutMs: 50})
	resp, err := http.Post(ts.URL+"/v1/score", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 504 {
		t.Fatalf("status %d, want 504", resp.StatusCode)
	}
	if cat := errCategory(t, resp); cat != ErrDeadlineExceeded {
		t.Fatalf("category %q", cat)
	}
	close(stub.release)
	<-done
}

func TestHealthzAndDraining(t *testing.T) {
	s, ts := newTestServer(t, Options{Predictor: &stubPredictor{}, ModelInfo: "stub model"})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 || h.Status != "ok" || h.Model != "stub model" {
		t.Fatalf("status=%d health=%+v", resp.StatusCode, h)
	}

	s.StartDraining()
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 503 || h.Status != "draining" {
		t.Fatalf("draining: status=%d health=%+v", resp.StatusCode, h)
	}
}

func TestMetricsExposedOnSameMux(t *testing.T) {
	_, ts := newTestServer(t, Options{Predictor: &stubPredictor{}})
	postJSON(t, ts.URL+"/v1/score", ScoreRequest{Netlist: tinyBench}, nil)
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	if !strings.Contains(buf.String(), "repro_serve_score_requests_total") {
		t.Fatal("/metrics does not expose serve.* keys")
	}
}

func TestOPIOnSubmittedNetlist(t *testing.T) {
	_, ts := newTestServer(t, Options{Predictor: &stubPredictor{}})
	var resp OPIResponse
	if code := postJSON(t, ts.URL+"/v1/opi",
		OPIRequest{Netlist: tinyBench, MaxPoints: 2}, &resp); code != 200 {
		t.Fatalf("status %d", code)
	}
	if resp.Iterations < 1 {
		t.Fatalf("iterations=%d", resp.Iterations)
	}
	if len(resp.Points) > 2 {
		t.Fatalf("points=%d exceeds max_points", len(resp.Points))
	}
	for _, p := range resp.Points {
		if p.ID < 0 || p.ID >= 5 {
			t.Fatalf("suggested point %d outside the design", p.ID)
		}
	}
}

func TestOPIOnCachedDesignDoesNotMutateIt(t *testing.T) {
	_, ts := newTestServer(t, Options{Predictor: &stubPredictor{}})
	var base ScoreResponse
	postJSON(t, ts.URL+"/v1/score", ScoreRequest{Netlist: tinyBench}, &base)

	var resp OPIResponse
	if code := postJSON(t, ts.URL+"/v1/opi",
		OPIRequest{Design: base.Design, MaxPoints: 1}, &resp); code != 200 {
		t.Fatalf("status %d", code)
	}
	if resp.Design != base.Design {
		t.Fatalf("opi echoed design %q, want %q", resp.Design, base.Design)
	}

	// The cached design is untouched: rescoring returns the same state.
	var again ScoreResponse
	postJSON(t, ts.URL+"/v1/score", ScoreRequest{Netlist: tinyBench}, &again)
	if !again.Cached || again.Nodes != 5 {
		t.Fatalf("cached=%v nodes=%d after opi", again.Cached, again.Nodes)
	}
}

func TestOPIArgumentValidation(t *testing.T) {
	_, ts := newTestServer(t, Options{Predictor: &stubPredictor{}})
	for _, tc := range []struct {
		req  OPIRequest
		code int
	}{
		{OPIRequest{}, 400}, // neither
		{OPIRequest{Netlist: tinyBench, Design: "x"}, 400}, // both
		{OPIRequest{Design: "unknown"}, 404},               // missing design
	} {
		body, _ := json.Marshal(tc.req)
		resp, err := http.Post(ts.URL+"/v1/opi", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.code {
			t.Fatalf("req %+v: status %d, want %d", tc.req, resp.StatusCode, tc.code)
		}
	}
}

// waitUntil polls cond until it returns true or the deadline passes.
func waitUntil(t *testing.T, d time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached before deadline")
		}
		time.Sleep(5 * time.Millisecond)
	}
}
