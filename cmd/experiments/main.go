// Command experiments regenerates the paper's tables and figures on the
// synthetic benchmark suite.
//
// Usage:
//
//	experiments [-size N] [-patterns N] [-epochs N] [-seed N] [-quick] [-run LIST]
//
// -run selects a comma-separated subset of
// table1,fig8,table2,fig9,fig10,table3 (default: all).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	size := flag.Int("size", 0, "approximate gates per benchmark design (0 = default)")
	patterns := flag.Int("patterns", 0, "labeling pattern budget (0 = default)")
	epochs := flag.Int("epochs", 0, "GCN training epochs (0 = default)")
	seed := flag.Int64("seed", 42, "global seed")
	quick := flag.Bool("quick", false, "shrink everything for a fast smoke run")
	run := flag.String("run", "all", "comma-separated experiments: table1,fig8,table2,fig9,fig10,table3,ablation (ablation is opt-in, not part of all)")
	flag.Parse()

	cfg := experiments.Config{
		Size: *size, Patterns: *patterns, Epochs: *epochs, Seed: *seed, Quick: *quick,
	}

	want := map[string]bool{}
	if *run == "all" {
		for _, k := range []string{"table1", "fig8", "table2", "fig9", "fig10", "table3"} {
			want[k] = true
		}
	} else {
		for _, k := range strings.Split(*run, ",") {
			want[strings.TrimSpace(strings.ToLower(k))] = true
		}
	}

	step := func(name string, f func()) {
		if !want[name] {
			return
		}
		start := time.Now()
		fmt.Printf("=== %s ===\n", name)
		f()
		fmt.Printf("(%s took %.1fs)\n\n", name, time.Since(start).Seconds())
	}

	step("table1", func() { r := experiments.Table1(cfg); r.Fprint(os.Stdout) })
	step("fig8", func() { r := experiments.Fig8(cfg); r.Fprint(os.Stdout) })
	step("table2", func() { r := experiments.Table2(cfg); r.Fprint(os.Stdout) })
	step("fig9", func() { r := experiments.Fig9(cfg); r.Fprint(os.Stdout) })
	step("fig10", func() { r := experiments.Fig10(cfg); r.Fprint(os.Stdout) })
	step("table3", func() { r := experiments.Table3(cfg); r.Fprint(os.Stdout) })
	step("ablation", func() { r := experiments.StageAblation(cfg, 4); r.Fprint(os.Stdout) })
}
