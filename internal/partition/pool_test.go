package partition

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestPoolRunsEveryTask(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	var n atomic.Int64
	tasks := make([]func(), 100)
	for i := range tasks {
		tasks[i] = func() { n.Add(1) }
	}
	p.Run(tasks)
	p.Run(tasks) // pool is reusable across barriers
	if got := n.Load(); got != 200 {
		t.Fatalf("ran %d tasks, want 200", got)
	}
}

func TestPoolPanicPropagates(t *testing.T) {
	for _, workers := range []int{1, 4} {
		p := NewPool(workers)
		var after atomic.Bool
		func() {
			defer func() {
				if r := recover(); r != "boom" {
					t.Fatalf("workers=%d: recovered %v, want boom", workers, r)
				}
			}()
			p.Run([]func(){
				func() { panic("boom") },
				func() { after.Store(true) },
			})
			t.Fatalf("workers=%d: Run returned without panicking", workers)
		}()
		// The parallel pool finishes remaining tasks before re-raising;
		// the serial path stops at the panic like a plain loop would.
		if workers > 1 && !after.Load() {
			t.Fatal("parallel pool dropped a task after a sibling panic")
		}
		p.Close()
	}
}

func TestPoolCloseSemantics(t *testing.T) {
	p := NewPool(3)
	var n atomic.Int64
	p.Run([]func(){func() { n.Add(1) }, func() { n.Add(1) }})
	p.Close()
	p.Close() // idempotent
	p.Run([]func(){func() { n.Add(1) }, func() { n.Add(1) }})
	if n.Load() != 4 {
		t.Fatalf("counted %d, want 4 (post-Close Run must execute inline)", n.Load())
	}
}

func TestPoolDefaults(t *testing.T) {
	if w := NewPool(0).Workers(); w != runtime.GOMAXPROCS(0) {
		t.Fatalf("default workers %d, want GOMAXPROCS %d", w, runtime.GOMAXPROCS(0))
	}
	if w := NewPool(7).Workers(); w != 7 {
		t.Fatalf("workers %d, want 7 (no NumCPU clamp)", w)
	}
	p := NewPool(2)
	p.Run(nil) // empty task list is a no-op
	p.Close()
}
