package serve

import (
	"context"
	"errors"
	"sync/atomic"
)

// errShed is returned by admission.acquire when the waiting queue is
// already at capacity; handlers translate it to 429 + Retry-After.
var errShed = errors.New("serve: admission queue full")

// admission is the bounded two-level admission controller: up to
// maxConcurrent requests hold execution slots, up to maxQueue more wait
// for one, and everything beyond that is shed immediately. Shedding
// instead of queueing without bound keeps tail latency flat under
// overload — a request that would wait behind an unbounded queue is
// better rejected at once with Retry-After.
type admission struct {
	slots    chan struct{}
	queued   atomic.Int64
	inflight atomic.Int64
	maxQueue int64
}

func newAdmission(maxConcurrent, maxQueue int) *admission {
	return &admission{
		slots:    make(chan struct{}, maxConcurrent),
		maxQueue: int64(maxQueue),
	}
}

// acquire obtains an execution slot, waiting in the bounded queue if
// necessary. It returns errShed when the queue is full and ctx.Err()
// when the request deadline expires while waiting.
func (a *admission) acquire(ctx context.Context) error {
	select {
	case a.slots <- struct{}{}:
		a.inflight.Add(1)
		mInflight.Add(1)
		return nil
	default:
	}
	if a.queued.Add(1) > a.maxQueue {
		a.queued.Add(-1)
		mShed.Inc()
		return errShed
	}
	mQueueDepth.Add(1)
	defer func() {
		a.queued.Add(-1)
		mQueueDepth.Add(-1)
	}()
	select {
	case a.slots <- struct{}{}:
		a.inflight.Add(1)
		mInflight.Add(1)
		return nil
	case <-ctx.Done():
		mDeadline.Inc()
		return ctx.Err()
	}
}

// release returns an execution slot obtained by acquire.
func (a *admission) release() {
	a.inflight.Add(-1)
	mInflight.Add(-1)
	<-a.slots
}
