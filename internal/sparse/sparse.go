// Package sparse implements the sparse matrix machinery at the heart of
// the paper's "high performance" inference scheme (Section 3.4.1): the
// netlist adjacency is stored in coordinate (COO) format — a list of
// (value, row, col) tuples that supports the O(1) incremental appends the
// iterative insertion flow needs — and converted to compressed sparse row
// (CSR) for fast sparse×dense products (SpMM).
//
// Both formats multiply against dense matrices; CSR additionally offers a
// transpose product (used by backpropagation) and a goroutine-parallel
// SpMM standing in for the paper's GPU kernels.
package sparse

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/obs"
	"repro/internal/tensor"
)

// Hot-path metrics (no-ops until obs.Enable; see docs/OBSERVABILITY.md).
var (
	spmmRows          = obs.GetCounter("spmm.rows")
	spmmCalls         = obs.GetCounter("spmm.calls")
	spmmParallelCalls = obs.GetCounter("spmm.parallel_calls")
)

// COO is a sparse matrix in coordinate format. Duplicate (row,col)
// entries are allowed and are summed by multiplication and by CSR
// conversion, matching the usual COO semantics.
type COO struct {
	// NumRows and NumCols are the logical matrix dimensions.
	NumRows, NumCols int
	// Rows and Cols hold the coordinate of each stored tuple.
	Rows, Cols []int32
	// Vals holds each tuple's value, parallel to Rows/Cols.
	Vals []float64
}

// NewCOO returns an empty r×c COO matrix.
func NewCOO(r, c int) *COO {
	return &COO{NumRows: r, NumCols: c}
}

// Append adds one (value, row, col) tuple. This is the incremental
// construction primitive the paper's flow relies on when observation
// points modify the graph.
func (m *COO) Append(row, col int32, v float64) {
	if row < 0 || int(row) >= m.NumRows || col < 0 || int(col) >= m.NumCols {
		panic(fmt.Sprintf("sparse: append (%d,%d) outside %d×%d", row, col, m.NumRows, m.NumCols))
	}
	m.Rows = append(m.Rows, row)
	m.Cols = append(m.Cols, col)
	m.Vals = append(m.Vals, v)
}

// Grow enlarges the logical dimensions (never shrinks); used when new
// graph nodes are appended by observation point insertion.
func (m *COO) Grow(rows, cols int) {
	if rows > m.NumRows {
		m.NumRows = rows
	}
	if cols > m.NumCols {
		m.NumCols = cols
	}
}

// NNZ returns the number of stored tuples.
func (m *COO) NNZ() int { return len(m.Vals) }

// Clone deep-copies the matrix.
func (m *COO) Clone() *COO {
	return &COO{
		NumRows: m.NumRows, NumCols: m.NumCols,
		Rows: append([]int32(nil), m.Rows...),
		Cols: append([]int32(nil), m.Cols...),
		Vals: append([]float64(nil), m.Vals...),
	}
}

// MulDense computes dst = m·x by scattering tuples; dst must be
// NumRows×x.Cols. COO multiplication requires no conversion, which is
// what makes the incremental flow cheap between insertions.
func (m *COO) MulDense(dst, x *tensor.Dense) {
	if x.Rows != m.NumCols || dst.Rows != m.NumRows || dst.Cols != x.Cols {
		panic("sparse: COO MulDense shape mismatch")
	}
	dst.Zero()
	for i, v := range m.Vals {
		r, c := m.Rows[i], m.Cols[i]
		drow := dst.Row(int(r))
		xrow := x.Row(int(c))
		for j, xv := range xrow {
			drow[j] += v * xv
		}
	}
}

// ToCSR converts to CSR, summing duplicates.
func (m *COO) ToCSR() *CSR {
	counts := make([]int32, m.NumRows+1)
	for _, r := range m.Rows {
		counts[r+1]++
	}
	for i := 1; i <= m.NumRows; i++ {
		counts[i] += counts[i-1]
	}
	rowPtr := counts
	colIdx := make([]int32, len(m.Vals))
	vals := make([]float64, len(m.Vals))
	next := append([]int32(nil), rowPtr[:m.NumRows]...)
	for i, v := range m.Vals {
		r := m.Rows[i]
		p := next[r]
		colIdx[p] = m.Cols[i]
		vals[p] = v
		next[r] = p + 1
	}
	csr := &CSR{NumRows: m.NumRows, NumCols: m.NumCols, RowPtr: rowPtr, ColIdx: colIdx, Vals: vals}
	csr.sumDuplicatesInPlace()
	return csr
}

// CSR is a sparse matrix in compressed sparse row format. Row i's entries
// occupy ColIdx/Vals[RowPtr[i]:RowPtr[i+1]].
type CSR struct {
	// NumRows and NumCols are the logical matrix dimensions.
	NumRows, NumCols int
	// RowPtr has length NumRows+1; row i's entries span
	// [RowPtr[i], RowPtr[i+1]).
	RowPtr []int32
	// ColIdx holds the column index of each stored entry.
	ColIdx []int32
	// Vals holds each entry's value, parallel to ColIdx.
	Vals []float64
}

// NNZ returns the number of stored entries.
func (m *CSR) NNZ() int { return len(m.Vals) }

// sumDuplicatesInPlace merges duplicate column entries within each row
// (rows keep their relative order; columns need not be sorted).
func (m *CSR) sumDuplicatesInPlace() {
	seen := make(map[int32]int32)
	outPtr := make([]int32, len(m.RowPtr))
	var w int32
	for r := 0; r < m.NumRows; r++ {
		outPtr[r] = w
		start := w
		for p := m.RowPtr[r]; p < m.RowPtr[r+1]; p++ {
			c := m.ColIdx[p]
			if q, ok := seen[c]; ok && q >= start {
				m.Vals[q] += m.Vals[p]
				continue
			}
			m.ColIdx[w] = c
			m.Vals[w] = m.Vals[p]
			seen[c] = w
			w++
		}
	}
	outPtr[m.NumRows] = w
	m.RowPtr = outPtr
	m.ColIdx = m.ColIdx[:w]
	m.Vals = m.Vals[:w]
}

// MulDense computes dst = m·x; dst must be NumRows×x.Cols.
func (m *CSR) MulDense(dst, x *tensor.Dense) {
	if x.Rows != m.NumCols || dst.Rows != m.NumRows || dst.Cols != x.Cols {
		panic("sparse: CSR MulDense shape mismatch")
	}
	m.mulRows(dst, x, 0, m.NumRows)
}

func (m *CSR) mulRows(dst, x *tensor.Dense, lo, hi int) {
	for r := lo; r < hi; r++ {
		drow := dst.Row(r)
		for j := range drow {
			drow[j] = 0
		}
		for p := m.RowPtr[r]; p < m.RowPtr[r+1]; p++ {
			v := m.Vals[p]
			xrow := x.Row(int(m.ColIdx[p]))
			for j, xv := range xrow {
				drow[j] += v * xv
			}
		}
	}
}

// MulDenseRows computes rows [lo,hi) of dst = m·x, leaving every other
// row of dst untouched. The per-row accumulation order is identical to
// MulDense, so computing a row here is bit-identical to computing it as
// part of a whole-matrix product — the property the sharded executor in
// internal/partition relies on. dst may be taller than hi (scratch
// buffers are reused across layers of different active heights); x must
// cover all NumCols columns.
func (m *CSR) MulDenseRows(dst, x *tensor.Dense, lo, hi int) {
	if x.Rows != m.NumCols || dst.Cols != x.Cols || lo < 0 || hi < lo || hi > m.NumRows || dst.Rows < hi {
		panic("sparse: CSR MulDenseRows shape mismatch")
	}
	spmmCalls.Inc()
	spmmRows.Add(int64(hi - lo))
	m.mulRows(dst, x, lo, hi)
}

// MulDenseParallel is MulDense with rows partitioned across workers
// goroutines (workers <= 0 selects GOMAXPROCS; values above
// runtime.NumCPU() are clamped — more workers than cores only adds
// scheduling overhead). This is the CPU analogue of the paper's GPU
// SpMM.
func (m *CSR) MulDenseParallel(dst, x *tensor.Dense, workers int) {
	if x.Rows != m.NumCols || dst.Rows != m.NumRows || dst.Cols != x.Cols {
		panic("sparse: CSR MulDenseParallel shape mismatch")
	}
	spmmCalls.Inc()
	spmmRows.Add(int64(m.NumRows))
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > runtime.NumCPU() {
		workers = runtime.NumCPU()
	}
	// Serial fallback: with fewer than two rows per worker the goroutine
	// fan-out costs more than it saves (and rows < workers would leave
	// some workers with an empty range).
	if workers == 1 || m.NumRows < 2*workers {
		m.mulRows(dst, x, 0, m.NumRows)
		return
	}
	spmmParallelCalls.Inc()
	var wg sync.WaitGroup
	chunk := (m.NumRows + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > m.NumRows {
			hi = m.NumRows
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			m.mulRows(dst, x, lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// MulDenseTrans computes dst = mᵀ·x; dst must be NumCols×x.Cols. Used by
// backpropagation (∂L/∂E_{d-1} includes Aᵀ·δ).
func (m *CSR) MulDenseTrans(dst, x *tensor.Dense) {
	if x.Rows != m.NumRows || dst.Rows != m.NumCols || dst.Cols != x.Cols {
		panic("sparse: CSR MulDenseTrans shape mismatch")
	}
	dst.Zero()
	for r := 0; r < m.NumRows; r++ {
		xrow := x.Row(r)
		for p := m.RowPtr[r]; p < m.RowPtr[r+1]; p++ {
			v := m.Vals[p]
			drow := dst.Row(int(m.ColIdx[p]))
			for j, xv := range xrow {
				drow[j] += v * xv
			}
		}
	}
}

// Transpose returns mᵀ as a new CSR.
func (m *CSR) Transpose() *CSR {
	counts := make([]int32, m.NumCols+1)
	for _, c := range m.ColIdx {
		counts[c+1]++
	}
	for i := 1; i <= m.NumCols; i++ {
		counts[i] += counts[i-1]
	}
	rowPtr := counts
	colIdx := make([]int32, len(m.Vals))
	vals := make([]float64, len(m.Vals))
	next := append([]int32(nil), rowPtr[:m.NumCols]...)
	for r := 0; r < m.NumRows; r++ {
		for p := m.RowPtr[r]; p < m.RowPtr[r+1]; p++ {
			c := m.ColIdx[p]
			q := next[c]
			colIdx[q] = int32(r)
			vals[q] = m.Vals[p]
			next[c] = q + 1
		}
	}
	return &CSR{NumRows: m.NumCols, NumCols: m.NumRows, RowPtr: rowPtr, ColIdx: colIdx, Vals: vals}
}

// ToDense materializes the matrix; intended for tests and tiny examples.
func (m *CSR) ToDense() *tensor.Dense {
	d := tensor.NewDense(m.NumRows, m.NumCols)
	for r := 0; r < m.NumRows; r++ {
		for p := m.RowPtr[r]; p < m.RowPtr[r+1]; p++ {
			d.Set(r, int(m.ColIdx[p]), d.At(r, int(m.ColIdx[p]))+m.Vals[p])
		}
	}
	return d
}

// Sparsity returns the fraction of zero entries, the statistic the paper
// reports as "higher than 99.95%" on its benchmarks.
func (m *CSR) Sparsity() float64 {
	total := float64(m.NumRows) * float64(m.NumCols)
	if total == 0 {
		return 1
	}
	return 1 - float64(m.NNZ())/total
}
