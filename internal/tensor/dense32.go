package tensor

import "fmt"

// Dense32 is a row-major float32 matrix — the storage for the float32
// inference mode. Inference-only: training and gradient checking stay in
// float64 (Dense), and trained weights are converted once via
// FromDense. Halving the element size halves the memory traffic of the
// SpMM and encoder matmuls that dominate a forward pass, which is where
// the paper's GPU kernels get much of their throughput too.
type Dense32 struct {
	// Rows and Cols are the matrix dimensions.
	Rows, Cols int
	// Data is the row-major backing array of length Rows*Cols.
	Data []float32
}

// NewDense32 allocates a zeroed Rows×Cols float32 matrix.
func NewDense32(rows, cols int) *Dense32 {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: invalid shape %d×%d", rows, cols))
	}
	return &Dense32{Rows: rows, Cols: cols, Data: make([]float32, rows*cols)}
}

// FromDense converts a float64 matrix to float32, rounding every
// element once. This is the weights-conversion entry point for the f32
// inference mode.
func FromDense(d *Dense) *Dense32 {
	c := NewDense32(d.Rows, d.Cols)
	for i, v := range d.Data {
		c.Data[i] = float32(v)
	}
	return c
}

// ToDense widens back to float64 (exact: every float32 is representable).
func (d *Dense32) ToDense() *Dense {
	c := NewDense(d.Rows, d.Cols)
	for i, v := range d.Data {
		c.Data[i] = float64(v)
	}
	return c
}

// At returns element (i,j).
func (d *Dense32) At(i, j int) float32 { return d.Data[i*d.Cols+j] }

// Set assigns element (i,j).
func (d *Dense32) Set(i, j int, v float32) { d.Data[i*d.Cols+j] = v }

// Row returns a mutable view of row i.
func (d *Dense32) Row(i int) []float32 { return d.Data[i*d.Cols : (i+1)*d.Cols] }

// Zero sets every element to 0.
func (d *Dense32) Zero() {
	for i := range d.Data {
		d.Data[i] = 0
	}
}

// CopyFrom copies src into d; shapes must match.
func (d *Dense32) CopyFrom(src *Dense32) {
	if d.Rows != src.Rows || d.Cols != src.Cols {
		panic("tensor: Dense32 CopyFrom shape mismatch")
	}
	copy(d.Data, src.Data)
}

// CopyFromDense narrows a float64 matrix into d; shapes must match.
func (d *Dense32) CopyFromDense(src *Dense) {
	if d.Rows != src.Rows || d.Cols != src.Cols {
		panic("tensor: Dense32 CopyFromDense shape mismatch")
	}
	for i, v := range src.Data {
		d.Data[i] = float32(v)
	}
}

// AxpyInPlace adds alpha*o elementwise into d.
func (d *Dense32) AxpyInPlace(alpha float32, o *Dense32) {
	if d.Rows != o.Rows || d.Cols != o.Cols {
		panic("tensor: Dense32 AxpyInPlace shape mismatch")
	}
	for i, v := range o.Data {
		d.Data[i] += alpha * v
	}
}

// AddRowVector adds vector v to every row of d (bias addition).
func (d *Dense32) AddRowVector(v []float32) {
	if len(v) != d.Cols {
		panic("tensor: Dense32 AddRowVector length mismatch")
	}
	for i := 0; i < d.Rows; i++ {
		row := d.Row(i)
		for j, b := range v {
			row[j] += b
		}
	}
}

// ReLUInPlace applies max(x,0) elementwise.
func (d *Dense32) ReLUInPlace() {
	for i, v := range d.Data {
		if v < 0 {
			d.Data[i] = 0
		}
	}
}

// MatMul32 computes dst = a·b in float32. dst must be a.Rows×b.Cols and
// distinct from both operands. Same cache-friendly ikj ordering and
// zero-skip as the float64 MatMul — post-ReLU activations are sparse,
// and skipping their zero rows is a large fraction of the win in both
// precisions.
func MatMul32(dst, a, b *Dense32) {
	if a.Cols != b.Rows || dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMul32 shape mismatch (%d×%d)·(%d×%d)->(%d×%d)",
			a.Rows, a.Cols, b.Rows, b.Cols, dst.Rows, dst.Cols))
	}
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		crow := dst.Row(i)
		first := true
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Row(k)
			if first {
				for j, bv := range brow {
					crow[j] = av * bv
				}
				first = false
				continue
			}
			for j, bv := range brow {
				crow[j] += av * bv
			}
		}
		if first {
			for j := range crow {
				crow[j] = 0
			}
		}
	}
}

// MaxAbsDiff32 returns the largest absolute elementwise difference
// between a float32 matrix and a float64 reference of the same shape.
func MaxAbsDiff32(a *Dense32, b *Dense) float64 {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic("tensor: MaxAbsDiff32 shape mismatch")
	}
	var m float64
	for i, v := range a.Data {
		d := float64(v) - b.Data[i]
		if d < 0 {
			d = -d
		}
		if d > m {
			m = d
		}
	}
	return m
}
