// Package features builds the fixed-dimension handcrafted feature
// vectors the paper feeds to classical machine learning baselines
// (Section 5): starting from a target node, breadth-first search collects
// up to 500 nodes from the fan-in cone and 500 from the fan-out cone, and
// the 4-dimensional attribute vectors of target + cone nodes are
// concatenated into a (500+500+1)×4 = 4004-dimensional vector, zero
// padded when a cone is smaller.
//
// This is precisely the manual feature engineering the GCN renders
// unnecessary — the baselines consume it, the GCN consumes only the raw
// graph.
package features

import (
	"repro/internal/core"
	"repro/internal/netlist"
	"repro/internal/scoap"
	"repro/internal/tensor"
)

// DefaultConeSize is the paper's 500-node cone budget.
const DefaultConeSize = 500

// Dim returns the feature dimensionality for a given cone size.
func Dim(coneSize int) int { return (2*coneSize + 1) * core.InputDim }

// Extractor caches the per-netlist state needed to build cone features.
type Extractor struct {
	n        *netlist.Netlist
	attrs    [][4]float64
	ConeSize int
}

// NewExtractor prepares an extractor; attributes use the same log1p
// transform as the GCN input so both model families see identically
// scaled values.
func NewExtractor(n *netlist.Netlist, m *scoap.Measures) *Extractor {
	raw := m.Attributes(n, core.COClamp)
	attrs := make([][4]float64, len(raw))
	for i, a := range raw {
		attrs[i] = core.AttributeVector(a[0], a[1], a[2], a[3])
	}
	return &Extractor{n: n, attrs: attrs, ConeSize: DefaultConeSize}
}

// Feature fills dst (length Dim(ConeSize)) with the cone feature vector
// of node id: self attributes, then fan-in cone in BFS order, then
// fan-out cone in BFS order, zero padded.
func (e *Extractor) Feature(id int32, dst []float64) {
	want := Dim(e.ConeSize)
	if len(dst) != want {
		panic("features: destination length mismatch")
	}
	for i := range dst {
		dst[i] = 0
	}
	copy(dst[0:4], e.attrs[id][:])
	off := core.InputDim
	for _, v := range e.n.FaninCone(id, e.ConeSize) {
		copy(dst[off:off+4], e.attrs[v][:])
		off += core.InputDim
	}
	off = (1 + e.ConeSize) * core.InputDim
	for _, v := range e.n.FanoutCone(id, e.ConeSize) {
		copy(dst[off:off+4], e.attrs[v][:])
		off += core.InputDim
	}
}

// Matrix extracts features for a list of nodes into a dense matrix, one
// row per node.
func (e *Extractor) Matrix(nodes []int32) *tensor.Dense {
	d := tensor.NewDense(len(nodes), Dim(e.ConeSize))
	for i, id := range nodes {
		e.Feature(id, d.Row(i))
	}
	return d
}
