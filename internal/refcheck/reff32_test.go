package refcheck

import (
	"testing"

	"repro/internal/circuitgen"
	"repro/internal/core"
	"repro/internal/scoap"
)

// TestDifferentialFloat32Inference is the acceptance gate for the f32
// scoring path: 60 seeded circuits, each scored by a single Model and by
// a 3-stage MultiStage cascade in both precisions, with per-node
// divergence bounded by F32Tolerance and cascade decisions re-checked
// against their thresholds.
func TestDifferentialFloat32Inference(t *testing.T) {
	const circuits = 60
	configs := RandomConfigs(33, circuits)

	// Xavier-initialized weights at varied seeds stand in for trained
	// ones: the differential property (f32 tracks f64) is
	// weight-agnostic, and skipping training keeps the suite fast.
	cfg := core.DefaultConfig()
	model := core.MustNewModel(cfg)

	msCfg := cfg
	ms := &core.MultiStage{FilterBelow: 0.25}
	for s := 0; s < 3; s++ {
		msCfg.Seed = int64(100 + s)
		ms.Stages = append(ms.Stages, core.MustNewModel(msCfg))
	}

	for i, c := range configs {
		n := circuitgen.Generate("f32", c)
		if err := CheckModelF32(model, n); err != nil {
			t.Errorf("circuit %d (gates=%d): %v", i, n.NumGates(), err)
		}
		if err := CheckMultiStageF32(ms, n); err != nil {
			t.Errorf("circuit %d (gates=%d): cascade: %v", i, n.NumGates(), err)
		}
	}
}

// TestFloat32WeightInvalidation pins the weights32 cache contract:
// parameter updates via CopyParamsFrom must invalidate the narrowed
// weights, so predictions follow the new parameters.
func TestFloat32WeightInvalidation(t *testing.T) {
	n := circuitgen.Generate("inval", circuitgen.Config{Seed: 4, NumGates: 80, NumPIs: 10})
	cfg := core.DefaultConfig()
	a := core.MustNewModel(cfg)
	cfg.Seed = 99
	b := core.MustNewModel(cfg)

	f32 := a.Clone()
	f32.SetFloat32Inference(true)
	if !f32.Float32Inference() {
		t.Fatal("flag did not stick")
	}
	if err := CheckModelF32(a, n); err != nil {
		t.Fatalf("before param swap: %v", err)
	}
	// Score once (builds the cached weights32), swap parameters, score
	// again: the f32 prediction must now track model b, not model a.
	g := core.FromNetlist(n, scoap.Compute(n))
	_ = f32.Predict(g)
	f32.CopyParamsFrom(b)
	got := f32.Predict(g)
	want := b.Predict(g)
	for v := range want {
		if d := abs(got[v] - want[v]); d > F32Tolerance {
			t.Fatalf("node %d: stale weights32 survived CopyParamsFrom (off by %g)", v, d)
		}
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
