package core

import (
	"repro/internal/nn"
	"repro/internal/tensor"
)

// This file implements incremental inference, the natural completion of
// the paper's Section 3.4/4 efficiency story: the iterative insertion
// flow changes the graph only locally (one appended node plus attribute
// refreshes inside a fan-in cone), and a depth-D GCN's output can change
// only within D hops of those modifications. Instead of re-running the
// full matrix inference after every insertion, IncrementalState caches
// all layer embeddings and relaxes just the growing D-hop frontier.
//
// UpdateIncremental produces bit-identical results to a fresh Forward
// (verified by tests) at a cost proportional to the affected
// neighborhood instead of the whole graph.

// IncrementalState caches per-layer embeddings and output probabilities
// for incremental updates. It is tied to the (model, graph) pair that
// produced it.
type IncrementalState struct {
	embeds []*tensor.Dense // embeds[0] = X copy, embeds[d] = E_d
	logits *tensor.Dense
	Probs  []float64
}

// ForwardFull runs a complete inference pass and captures the state
// needed for subsequent incremental updates.
func (m *Model) ForwardFull(g *Graph) *IncrementalState {
	st := &IncrementalState{}
	_, cache := m.forward(g, true) // keep=true allocates private buffers
	st.embeds = cache.embeds
	// embeds[0] currently aliases g.X; copy so later attribute edits
	// don't silently corrupt the cache.
	st.embeds[0] = g.X.Clone()
	st.logits = cache.logits
	st.Probs = probsFromLogits(st.logits)
	return st
}

func probsFromLogits(logits *tensor.Dense) []float64 {
	p := nn.Softmax(logits)
	out := make([]float64, logits.Rows)
	for i := range out {
		out[i] = p.At(i, 1)
	}
	return out
}

// UpdateIncremental refreshes the state after graph mutations. dirty
// lists every node whose attribute row changed; nodes appended since the
// last update (g.N larger than the cached state) are treated as dirty
// automatically. The update touches only the D-hop neighborhood of the
// dirty set.
func (m *Model) UpdateIncremental(st *IncrementalState, g *Graph, dirty []int32) {
	oldN := st.embeds[0].Rows
	if g.N < oldN {
		panic("core: graph shrank; incremental state invalid")
	}
	// Grow cached matrices for appended nodes.
	if g.N > oldN {
		for d := range st.embeds {
			st.embeds[d] = growRows(st.embeds[d], g.N)
		}
		st.logits = growRows(st.logits, g.N)
		st.Probs = append(st.Probs, make([]float64, g.N-oldN)...)
		for v := oldN; v < g.N; v++ {
			dirty = append(dirty, int32(v))
		}
	}

	// Refresh E0 rows (attributes) for the dirty set.
	frontier := make(map[int32]bool, len(dirty))
	for _, v := range dirty {
		frontier[v] = true
		copy(st.embeds[0].Row(int(v)), g.X.Row(int(v)))
	}
	if len(frontier) == 0 {
		return
	}

	wpr, wsu := m.Wpr.Data[0], m.Wsu.Data[0]
	for d, enc := range m.Enc {
		// A node's E_{d+1} depends on its own and its neighbors' E_d, so
		// the affected set grows by one hop per layer.
		next := make(map[int32]bool, 2*len(frontier))
		for v := range frontier {
			next[v] = true
			for _, u := range g.SuccList(v) {
				next[u] = true
			}
			for _, u := range g.PredList(v) {
				next[u] = true
			}
		}
		frontier = next

		prev := st.embeds[d]
		cur := st.embeds[d+1]
		agg := make([]float64, prev.Cols)
		for v := range frontier {
			copy(agg, prev.Row(int(v)))
			preds, pvals := g.PredEntries(v)
			for i, u := range preds {
				w := wpr * pvals[i]
				row := prev.Row(int(u))
				for j, x := range row {
					agg[j] += w * x
				}
			}
			succs, svals := g.SuccEntries(v)
			for i, u := range succs {
				w := wsu * svals[i]
				row := prev.Row(int(u))
				for j, x := range row {
					agg[j] += w * x
				}
			}
			out := enc.ForwardInto(nil, &tensor.Dense{Rows: 1, Cols: len(agg), Data: agg})
			out.ReLUInPlace()
			copy(cur.Row(int(v)), out.Data)
		}
	}

	// Classifier head over the final frontier rows only.
	for v := range frontier {
		row := st.embeds[len(st.embeds)-1].Row(int(v))
		logits := m.FC.Infer(&tensor.Dense{Rows: 1, Cols: len(row), Data: row})
		copy(st.logits.Row(int(v)), logits.Data)
		p := nn.Softmax(logits)
		st.Probs[v] = p.At(0, 1)
	}
}

func growRows(d *tensor.Dense, rows int) *tensor.Dense {
	if d.Rows >= rows {
		return d
	}
	nd := tensor.NewDense(rows, d.Cols)
	copy(nd.Data, d.Data)
	return nd
}
