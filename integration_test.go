package repro_test

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/circuitgen"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/fault"
	"repro/internal/netlist"
	"repro/internal/opi"
	"repro/internal/scoap"
)

// TestEndToEndPipeline drives the complete paper pipeline across module
// boundaries: generate → write/read .bench → SCOAP → behavioural labels →
// cascade training → model save/load → iterative OP insertion →
// fault-simulation evaluation. Every handoff between subsystems is
// checked.
func TestEndToEndPipeline(t *testing.T) {
	dir := t.TempDir()

	// 1. Generate training designs and one target design; round-trip
	//    them through the on-disk format as the CLI would.
	var paths []string
	for seed := int64(1); seed <= 3; seed++ {
		n := circuitgen.Generate("e2e", circuitgen.Config{Seed: seed, NumGates: 1200})
		p := filepath.Join(dir, "d"+string(rune('0'+seed))+".bench")
		if err := netlist.WriteFile(p, n); err != nil {
			t.Fatal(err)
		}
		paths = append(paths, p)
	}

	// 2. Load and label.
	var benches []*dataset.Benchmark
	for i, p := range paths {
		n, err := netlist.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		if err := n.Validate(); err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		benches = append(benches, dataset.Label("d", n, 512, dataset.DefaultThreshold, int64(i)))
	}

	// 3. Train a small cascade on the first two designs.
	mopt := core.DefaultMultiStageOptions()
	mopt.ModelCfg = core.Config{Dims: []int{8, 16}, FCDims: []int{16}, NumClasses: 2, Seed: 3}
	mopt.Train = core.TrainOptions{Epochs: 25, LR: 0.02, Momentum: 0.9, ClipNorm: 5}
	mopt.NumStages = 2
	ms, err := core.TrainMultiStage([]*core.Graph{benches[0].Graph, benches[1].Graph}, mopt)
	if err != nil {
		t.Fatal(err)
	}

	// 4. Serialize and reload the cascade (the CLI handoff).
	var buf bytes.Buffer
	if err := ms.Save(&buf); err != nil {
		t.Fatal(err)
	}
	ms2, err := core.LoadMultiStage(&buf)
	if err != nil {
		t.Fatal(err)
	}

	// 5. Run the insertion flow on the target design.
	target := benches[2]
	meas := target.Measures
	before := opi.Evaluate(target.Netlist.Clone(), fault.TPGConfig{MaxPatterns: 2048, Seed: 9})
	res := opi.RunFlow(target.Netlist, meas, target.Graph, ms2, opi.FlowConfig{
		PerIteration: 16, MaxInsertions: 200,
	})
	if err := target.Netlist.Validate(); err != nil {
		t.Fatalf("netlist invalid after flow: %v", err)
	}

	// 6. Evaluate with the shared fault simulator; write the modified
	//    netlist back out and re-read it.
	after := opi.Evaluate(target.Netlist, fault.TPGConfig{MaxPatterns: 2048, Seed: 9})
	if after.OPs != len(res.Targets) {
		t.Errorf("evaluation sees %d OPs, flow inserted %d", after.OPs, len(res.Targets))
	}
	if len(res.Targets) > 0 && after.Coverage < before.Coverage-0.02 {
		t.Errorf("coverage regressed badly: %.4f -> %.4f", before.Coverage, after.Coverage)
	}
	outPath := filepath.Join(dir, "modified.bench")
	if err := netlist.WriteFile(outPath, target.Netlist); err != nil {
		t.Fatal(err)
	}
	back, err := netlist.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if back.CountType(netlist.Obs) != after.OPs {
		t.Errorf("round-tripped netlist has %d OPs, want %d", back.CountType(netlist.Obs), after.OPs)
	}

	// Scratch file check: ensure the temp dir contents exist (sanity of
	// the file paths used above).
	if _, err := os.Stat(outPath); err != nil {
		t.Fatal(err)
	}
	_ = scoap.Unobservable // document the linkage; scoap is exercised via dataset.Label
}
