package opi

// Coarse-then-refine observation point insertion: the ROADMAP's
// pre-filter idea built on internal/coarsen. The GCN never sees the fine
// graph — every prediction runs on the coarse supergraph (a fraction of
// the nodes, so both the one-time full inference and the per-iteration
// incremental updates shrink proportionally), and the exact machinery is
// spent only where the coarse model points: candidate cells inside
// positive regions are ranked by the same fan-in-cone impact heuristic
// as RunFlow, and every insertion updates the fine netlist, SCOAP
// measures and fine graph exactly (InsertAndRefresh). The coarsening is
// kept live across insertions — each new observation point becomes a
// singleton supernode and the touched regions' projected rows are
// recomputed — so the coarse graph stays exactly equal to the projection
// of the evolving fine graph.
//
// At ratio 1.0 with Regions = 0 the supergraph is the fine graph and
// every step degenerates to RunFlow's: the flow is then bit-identical to
// the exact incremental flow, the anchor the differential tests enforce.

import (
	"sort"

	"repro/internal/coarsen"
	"repro/internal/core"
	"repro/internal/netlist"
	"repro/internal/obs"
	"repro/internal/scoap"
)

// CoarseRefineConfig controls RunCoarseRefine.
type CoarseRefineConfig struct {
	// Coarsen selects the clustering strategy and ratio.
	Coarsen coarsen.Options
	// Regions caps how many positive regions are refined per iteration,
	// ranked by coarse probability (ties by supernode id). 0 refines
	// every positive region — at ratio 1.0 that reproduces RunFlow
	// exactly.
	Regions int
	// PerRegion caps the candidate cells taken from each winning
	// region: the members with the worst SCOAP observability (the
	// region's genuinely hard cells — region scores cannot separate
	// members, but the exact fine-grained measures can). 0 takes every
	// member. Singleton regions are unaffected, so any value preserves
	// the ratio-1.0 equivalence.
	PerRegion int
	// Flow carries the shared insertion-flow knobs (threshold,
	// per-iteration cap, cone limit, iteration/insertion bounds,
	// progress hook). ExactImpact and the incremental switches are
	// ignored: prediction always runs incrementally on the coarse graph.
	Flow FlowConfig
}

// CoarseRefineResult extends FlowResult with the coarsening geometry the
// speed/accuracy trade-off is measured against.
type CoarseRefineResult struct {
	FlowResult
	// CoarseNodes is the supernode count of the initial coarsening
	// (before per-insertion growth).
	CoarseNodes int
	// AchievedRatio is supernodes/cells actually realized.
	AchievedRatio float64
}

// RunCoarseRefine executes the coarse-then-refine insertion flow,
// mutating the netlist, measures and fine graph in place exactly like
// RunFlow. pred must support incremental updates (*core.Model and
// *core.MultiStage both do); it is only ever invoked on the coarse
// graph. The error is non-nil only for invalid coarsening options.
func RunCoarseRefine(n *netlist.Netlist, meas *scoap.Measures, g *core.Graph, pred core.IncrementalPredictor, cfg CoarseRefineConfig) (CoarseRefineResult, error) {
	span := obs.StartSpan("opi.coarse")
	defer span.End()
	fc := cfg.Flow.withDefaults()

	c, err := coarsen.New(n, cfg.Coarsen)
	if err != nil {
		return CoarseRefineResult{}, err
	}
	res := CoarseRefineResult{
		CoarseNodes:   c.NumSuper(),
		AchievedRatio: c.AchievedRatio(),
	}
	cg := c.ProjectGraph(g)
	observed := observedSet(n)

	opiFullInfer.Inc()
	run := pred.NewIncremental(cg)
	var dirty []int32 // coarse rows whose projection changed since last update

	for iter := 0; iter < fc.MaxIterations; iter++ {
		iterSpan := span.Child("iteration")
		opiIterations.Inc()
		var probs []float64
		if iter == 0 {
			probs = run.Probs()
		} else {
			opiIncremental.Inc()
			run.Update(cg, dirty)
			dirty = dirty[:0]
			probs = run.Probs()
		}

		// Positive regions and their refinable member cells. A region
		// with no insertable, unobserved member has nothing left to
		// refine regardless of its score.
		type region struct {
			super int32
			prob  float64
		}
		var positive []region
		candidates := make(map[int32][]int32) // super -> refinable members
		total := 0
		for s := 0; s < c.NumSuper() && s < len(probs); s++ {
			if probs[s] < fc.Threshold {
				continue
			}
			var cells []int32
			for _, v := range c.Members[s] {
				if insertable(n, v) && !observed[v] {
					cells = append(cells, v)
				}
			}
			if len(cells) == 0 {
				continue
			}
			if cfg.PerRegion > 0 && len(cells) > cfg.PerRegion {
				// Keep the members hardest to observe (ties by id, so
				// the cut is deterministic).
				sort.Slice(cells, func(i, j int) bool {
					if meas.CO[cells[i]] != meas.CO[cells[j]] {
						return meas.CO[cells[i]] > meas.CO[cells[j]]
					}
					return cells[i] < cells[j]
				})
				cells = cells[:cfg.PerRegion]
			}
			positive = append(positive, region{int32(s), probs[s]})
			candidates[int32(s)] = cells
			total += len(cells)
		}
		res.Iterations = iter + 1
		res.FinalPositives = total
		opiPositives.Observe(int64(total))
		if fc.Progress != nil {
			fc.Progress(iter, total, len(res.Targets))
		}
		if total == 0 {
			iterSpan.End()
			return res, nil
		}
		if cfg.Regions > 0 && len(positive) > cfg.Regions {
			sort.Slice(positive, func(i, j int) bool {
				if positive[i].prob != positive[j].prob {
					return positive[i].prob > positive[j].prob
				}
				return positive[i].super < positive[j].super
			})
			positive = positive[:cfg.Regions]
		}

		// Exact refinement inside the winning regions: same fan-in-cone
		// impact ranking as RunFlow, restricted to their member cells.
		positives := make(map[int32]bool)
		for _, r := range positive {
			for _, v := range candidates[r.super] {
				positives[v] = true
			}
		}
		rankSpan := iterSpan.Child("rank")
		selected := selectByImpact(n, positives, fc)
		rankSpan.End()
		if fc.MaxInsertions > 0 && len(res.Targets)+len(selected) > fc.MaxInsertions {
			selected = selected[:fc.MaxInsertions-len(res.Targets)]
		}
		if len(selected) == 0 {
			iterSpan.End()
			return res, nil
		}

		lv := append([]int32(nil), n.Levels()...)
		dirtySeen := make(map[int32]bool, len(dirty))
		for _, v := range selected {
			_, touched, err := InsertAndRefresh(n, meas, g, v, lv)
			if err != nil {
				// selected only contains insertable cells, so this is a
				// programming error, not an input error.
				panic(err)
			}
			lv = append(lv, lv[v]+1)
			if _, err := c.AddObservationPoint(cg, v); err != nil {
				panic(err) // the fine insertion succeeded; the mirror must too
			}
			// Fine attribute refreshes shrink to the touched regions:
			// a region row changes only if some member's row changed the
			// region maximum.
			for _, u := range touched {
				s := c.Owner[u]
				if c.ReprojectRow(cg, g, s) && !dirtySeen[s] {
					dirtySeen[s] = true
					dirty = append(dirty, s)
				}
			}
			observed[v] = true
			res.Targets = append(res.Targets, v)
		}
		opiInsertions.Add(int64(len(selected)))
		iterSpan.End()
		if fc.MaxInsertions > 0 && len(res.Targets) >= fc.MaxInsertions {
			return res, nil
		}
	}
	return res, nil
}
