package fault

import (
	"math/bits"
	"math/rand"
	"testing"

	"repro/internal/circuitgen"
	"repro/internal/netlist"
)

func TestObservabilityNorXnorNand(t *testing.T) {
	// NOR and NAND propagate like OR and AND; XNOR like XOR.
	n := netlist.New("h3")
	a := n.MustAddGate(netlist.Input, "a")
	b := n.MustAddGate(netlist.Input, "b")
	c := n.MustAddGate(netlist.Input, "c")
	nor := n.MustAddGate(netlist.Nor, "nor", a, b)
	xn := n.MustAddGate(netlist.Xnor, "xn", nor, c)
	n.MustAddGate(netlist.Output, "po", xn)
	sim := NewSimulator(n)
	sim.Batch(rand.New(rand.NewSource(9)))
	vals, obs := sim.Values(), sim.Obs()
	if obs[nor] != ^uint64(0) || obs[c] != ^uint64(0) {
		t.Error("XNOR inputs must always be observable")
	}
	// NOR input a observable when b = 0.
	if obs[a] != ^vals[b] {
		t.Errorf("obs(a) = %x, want %x", obs[a], ^vals[b])
	}

	n2 := netlist.New("h4")
	a2 := n2.MustAddGate(netlist.Input, "a")
	b2 := n2.MustAddGate(netlist.Input, "b")
	nand := n2.MustAddGate(netlist.Nand, "nand", a2, b2)
	n2.MustAddGate(netlist.Output, "po", nand)
	sim2 := NewSimulator(n2)
	sim2.Batch(rand.New(rand.NewSource(10)))
	if sim2.Obs()[a2] != sim2.Values()[b2] {
		t.Error("NAND input observable iff sibling is 1")
	}
}

func TestControlPointForcesValueBehaviourally(t *testing.T) {
	// CP0 on a net: when the control input happens to be 0, the net after
	// the CP gate must be 0 in simulation.
	n := netlist.New("cp")
	a := n.MustAddGate(netlist.Input, "a")
	x := n.MustAddGate(netlist.Not, "x", a)
	n.MustAddGate(netlist.Output, "po", x)
	out, results, _, err := n.InsertControlPoints([]netlist.ControlPoint{{Target: x, Kind: netlist.CP0}})
	if err != nil {
		t.Fatal(err)
	}
	sim := NewSimulator(out)
	sim.Batch(rand.New(rand.NewSource(11)))
	vals := sim.Values()
	ctl, gate := results[0].Control, results[0].Gate
	// AND(net, ctl): wherever ctl is 0, gate output is 0.
	if vals[gate]&^vals[ctl] != 0 {
		t.Errorf("CP0 failed to force 0: gate=%x ctl=%x", vals[gate], vals[ctl])
	}
	// Wherever ctl is 1 (normal mode), gate output equals the net.
	if (vals[gate]^vals[results[0].Target])&vals[ctl] != 0 {
		t.Error("CP0 disturbed normal-mode value")
	}
}

func TestControlPointCP1Behaviour(t *testing.T) {
	n := netlist.New("cp1")
	a := n.MustAddGate(netlist.Input, "a")
	x := n.MustAddGate(netlist.Buf, "x", a)
	n.MustAddGate(netlist.Output, "po", x)
	out, results, _, err := n.InsertControlPoints([]netlist.ControlPoint{{Target: x, Kind: netlist.CP1}})
	if err != nil {
		t.Fatal(err)
	}
	sim := NewSimulator(out)
	sim.Batch(rand.New(rand.NewSource(12)))
	vals := sim.Values()
	ctl, gate := results[0].Control, results[0].Gate
	// OR(net, ctl): wherever ctl is 1, gate output is 1.
	if ^vals[gate]&vals[ctl] != 0 {
		t.Error("CP1 failed to force 1")
	}
}

func TestFaultUniverseGrowsWithOPs(t *testing.T) {
	n := circuitgen.Generate("u2", circuitgen.Config{Seed: 13, NumGates: 300})
	before := len(FaultUniverse(n))
	if _, err := n.InsertObservationPoint(int32(n.NumGates() / 2)); err != nil {
		t.Fatal(err)
	}
	after := len(FaultUniverse(n))
	// An OP is a sink: it adds no faults of its own.
	if after != before {
		t.Errorf("universe %d -> %d; OPs must not add faults", before, after)
	}
}

func TestGenerateTestsStallStops(t *testing.T) {
	// A circuit with an undetectable region: x AND 0-ish guard of
	// extremely low probability; generation must stop by stall, not run
	// the full budget.
	n := netlist.New("stall")
	a := n.MustAddGate(netlist.Input, "a")
	guard := a
	for i := 0; i < 40; i++ {
		g := n.MustAddGate(netlist.Input, "")
		guard = n.MustAddGate(netlist.And, "", guard, g)
	}
	n.MustAddGate(netlist.Output, "po", guard)
	res := GenerateTests(n, TPGConfig{MaxPatterns: 1 << 20, StallWords: 4, Seed: 1})
	if res.PatternsSimulated >= 1<<20 {
		t.Errorf("stall did not stop generation: simulated %d", res.PatternsSimulated)
	}
	if res.Coverage >= 1 {
		t.Errorf("deep AND chain should leave faults undetected")
	}
	if len(res.UndetectedSample) == 0 {
		t.Error("undetected sample should be populated")
	}
}

func TestGenerateTestsTargetCoverageStops(t *testing.T) {
	n := circuitgen.Generate("tc", circuitgen.Config{Seed: 14, NumGates: 1500})
	full := GenerateTests(n, TPGConfig{MaxPatterns: 8192, Seed: 2})
	if full.Coverage < 0.9 {
		t.Skip("design unexpectedly hard")
	}
	half := GenerateTests(n, TPGConfig{MaxPatterns: 8192, Seed: 2, TargetCoverage: 0.5})
	if half.PatternsSimulated >= full.PatternsSimulated {
		t.Errorf("target coverage did not stop early: %d vs %d",
			half.PatternsSimulated, full.PatternsSimulated)
	}
	if half.Coverage < 0.5 {
		t.Errorf("stopped below target: %v", half.Coverage)
	}
}

func TestObservabilityCountsRoundsUpPatterns(t *testing.T) {
	n := netlist.New("r")
	a := n.MustAddGate(netlist.Input, "a")
	n.MustAddGate(netlist.Output, "po", a)
	counts := ObservabilityCounts(n, 70, 1) // rounds to 128
	if counts[a] != 128 {
		t.Errorf("counts = %d, want 128 (two words)", counts[a])
	}
}

func TestWideGatePropagationPrefixSuffix(t *testing.T) {
	// 5-input AND: input i observable iff all other inputs are 1. Verify
	// the prefix/suffix computation against the naive product.
	n := netlist.New("wide")
	ins := make([]int32, 5)
	for i := range ins {
		ins[i] = n.MustAddGate(netlist.Input, "")
	}
	g := n.MustAddGate(netlist.And, "g", ins...)
	n.MustAddGate(netlist.Output, "po", g)
	sim := NewSimulator(n)
	sim.Batch(rand.New(rand.NewSource(15)))
	vals, obs := sim.Values(), sim.Obs()
	for i, in := range ins {
		want := ^uint64(0)
		for j, other := range ins {
			if j != i {
				want &= vals[other]
			}
		}
		if obs[in] != want {
			t.Errorf("input %d obs = %x, want %x", i, obs[in], want)
		}
	}
}

func TestDetectionProbabilityMatchesTheory(t *testing.T) {
	// A 3-input AND of PIs: s-a-0 at the output needs all inputs 1
	// (P = 1/8). Over many patterns the observed rate should be close.
	n := netlist.New("p")
	a := n.MustAddGate(netlist.Input, "a")
	b := n.MustAddGate(netlist.Input, "b")
	c := n.MustAddGate(netlist.Input, "c")
	g := n.MustAddGate(netlist.And, "g", a, b, c)
	n.MustAddGate(netlist.Output, "po", g)
	sim := NewSimulator(n)
	rng := rand.New(rand.NewSource(16))
	hits, total := 0, 0
	for w := 0; w < 512; w++ {
		sim.Batch(rng)
		hits += bits.OnesCount64(sim.Values()[g] & sim.Obs()[g])
		total += 64
	}
	rate := float64(hits) / float64(total)
	if rate < 0.10 || rate > 0.15 {
		t.Errorf("excitation rate %.4f, want ≈ 0.125", rate)
	}
}
