package core

import (
	"bytes"
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/circuitgen"
	"repro/internal/netlist"
	"repro/internal/nn"
	"repro/internal/scoap"
)

// testGraph generates a small labeled graph. Labels here are synthetic
// (derived from a hidden structural rule) — good enough to verify that
// training machinery learns; behavioural labels are exercised by the
// dataset package tests.
func testGraph(seed int64, gates int) *Graph {
	n := circuitgen.Generate("t", circuitgen.Config{Seed: seed, NumGates: gates})
	m := scoap.Compute(n)
	g := FromNetlist(n, m)
	// Hidden rule: positive iff observability is in the worst few percent.
	vals := make([]float64, g.N)
	for id := 0; id < g.N; id++ {
		vals[id] = g.X.At(id, 3)
	}
	threshold := percentile(vals, 0.95)
	for id := 0; id < g.N; id++ {
		if g.X.At(id, 3) >= threshold {
			g.Labels[id] = 1
		} else {
			g.Labels[id] = 0
		}
	}
	return g
}

func percentile(src []float64, q float64) float64 {
	vals := append([]float64(nil), src...)
	sort.Float64s(vals)
	idx := int(q * float64(len(vals)-1))
	return vals[idx]
}

func tinyConfig(seed int64) Config {
	return Config{Dims: []int{6, 8}, FCDims: []int{8}, NumClasses: 2, Seed: seed}
}

func TestGraphFromNetlist(t *testing.T) {
	n := netlist.New("g")
	a := n.MustAddGate(netlist.Input, "a")
	b := n.MustAddGate(netlist.Input, "b")
	x := n.MustAddGate(netlist.And, "x", a, b)
	n.MustAddGate(netlist.Output, "po", x)
	m := scoap.Compute(n)
	g := FromNetlist(n, m)
	if g.N != 4 || g.NumEdges() != 3 {
		t.Fatalf("N=%d edges=%d", g.N, g.NumEdges())
	}
	// Predecessors of x are a and b; successors of a is x.
	pl := g.PredList(x)
	if len(pl) != 2 {
		t.Errorf("PredList(x) = %v", pl)
	}
	sl := g.SuccList(a)
	if len(sl) != 1 || sl[0] != x {
		t.Errorf("SuccList(a) = %v", sl)
	}
	// Attributes are log1p compressed: PI has LL=0 → 0, CC0=1 → log1p(1).
	if g.X.At(int(a), 0) != 0 || math.Abs(g.X.At(int(a), 1)-math.Log1p(1)) > 1e-15 {
		t.Errorf("PI attributes = %v", g.X.Row(int(a)))
	}
}

func TestAddObservationPointIncrementalGraph(t *testing.T) {
	g := testGraph(1, 300)
	n0, e0 := g.N, g.NumEdges()
	target := int32(n0 / 2)
	p := g.AddObservationPoint(target)
	if g.N != n0+1 || g.NumEdges() != e0+1 {
		t.Fatalf("after insertion N=%d edges=%d", g.N, g.NumEdges())
	}
	if int(p) != n0 {
		t.Errorf("new node id = %d, want %d", p, n0)
	}
	pl := g.PredList(p)
	if len(pl) != 1 || pl[0] != target {
		t.Errorf("PredList(op) = %v", pl)
	}
	found := false
	for _, s := range g.SuccList(target) {
		if s == p {
			found = true
		}
	}
	if !found {
		t.Error("target does not list op as successor")
	}
	// New node attributes follow the [0,1,1,0] convention (transformed).
	want := AttributeVector(0, 1, 1, 0)
	for j := 0; j < InputDim; j++ {
		if g.X.At(int(p), j) != want[j] {
			t.Errorf("op attr[%d] = %v, want %v", j, g.X.At(int(p), j), want[j])
		}
	}
}

// TestGradientCheck verifies the full manual backpropagation (wpr, wsu,
// encoders, FC head) against central-difference numerical gradients.
func TestGradientCheck(t *testing.T) {
	g := testGraph(3, 120)
	m := MustNewModel(tinyConfig(5))
	weights := []float64{1, 4}

	lossFn := func() float64 {
		logits := m.Forward(g)
		loss, _ := nn.WeightedCrossEntropy(logits, g.Labels, weights)
		return loss
	}

	for _, p := range m.Params() {
		p.ZeroGrad()
	}
	loss := m.LossAndGrad(g, g.Labels, weights)
	if loss <= 0 {
		t.Fatalf("loss = %v", loss)
	}

	for _, p := range m.Params() {
		step := len(p.Data)/4 + 1
		for i := 0; i < len(p.Data); i += step {
			want := numGrad(lossFn, &p.Data[i])
			got := p.Grad[i]
			if math.Abs(got-want) > 2e-4*(1+math.Abs(want)) {
				t.Errorf("%s[%d]: analytic %g numeric %g", p.Name, i, got, want)
			}
		}
	}
}

func numGrad(loss func() float64, theta *float64) float64 {
	const h = 1e-5
	orig := *theta
	*theta = orig + h
	lp := loss()
	*theta = orig - h
	lm := loss()
	*theta = orig
	return (lp - lm) / (2 * h)
}

// TestRecursiveMatchesMatrix is the correctness half of Figure 10: the
// naive per-node recursion and the sparse matrix formulation must agree.
func TestRecursiveMatchesMatrix(t *testing.T) {
	g := testGraph(7, 200)
	m := MustNewModel(tinyConfig(11))
	matrix := m.Predict(g)
	// Check a sample of nodes recursively (all would be slow by design).
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 25; trial++ {
		v := int32(rng.Intn(g.N))
		rec := m.InferNodeRecursive(g, v)
		if math.Abs(rec-matrix[v]) > 1e-9 {
			t.Errorf("node %d: recursive %g matrix %g", v, rec, matrix[v])
		}
	}
}

func TestTrainingLearnsStructuralRule(t *testing.T) {
	train := []*Graph{testGraph(21, 800), testGraph(22, 800)}
	test := testGraph(23, 800)
	m := MustNewModel(Config{Dims: []int{8, 16}, FCDims: []int{16}, NumClasses: 2, Seed: 1})
	opt := TrainOptions{Epochs: 180, LR: 0.05, Momentum: 0.9, LRDecay: 0.997, PosWeight: 4, ClipNorm: 5}
	hist, err := Train(m, train, nil, opt)
	if err != nil {
		t.Fatal(err)
	}
	if hist[len(hist)-1] >= hist[0] {
		t.Errorf("loss did not decrease: %v -> %v", hist[0], hist[len(hist)-1])
	}
	acc := Accuracy(m, test, test.Labels)
	if acc < 0.9 {
		t.Errorf("unseen-graph accuracy = %v, want >= 0.9", acc)
	}
}

func TestParallelTrainingMatchesSerial(t *testing.T) {
	graphs := []*Graph{testGraph(31, 300), testGraph(32, 300), testGraph(33, 300)}
	opt := TrainOptions{Epochs: 1, LR: 0.05}

	m1 := MustNewModel(tinyConfig(77))
	opt.Workers = 1
	if _, err := Train(m1, graphs, nil, opt); err != nil {
		t.Fatal(err)
	}
	m2 := MustNewModel(tinyConfig(77))
	opt.Workers = 3
	if _, err := Train(m2, graphs, nil, opt); err != nil {
		t.Fatal(err)
	}
	p1, p2 := m1.Params(), m2.Params()
	for i := range p1 {
		for j := range p1[i].Data {
			if math.Abs(p1[i].Data[j]-p2[i].Data[j]) > 1e-9 {
				t.Fatalf("param %s[%d] differs: %g vs %g", p1[i].Name, j, p1[i].Data[j], p2[i].Data[j])
			}
		}
	}
}

func TestSaveLoadModel(t *testing.T) {
	g := testGraph(41, 150)
	m := MustNewModel(tinyConfig(3))
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	m2 := MustNewModel(tinyConfig(999)) // different init
	if err := m2.Load(&buf); err != nil {
		t.Fatal(err)
	}
	a, b := m.Predict(g), m2.Predict(g)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("prediction %d differs after load", i)
		}
	}
}

func TestMultiStageImprovesF1OnImbalanced(t *testing.T) {
	// The Figure 9 comparison in miniature: a single GCN trained directly
	// on the imbalanced data (no class weighting) versus the multi-stage
	// cascade, scored by F1.
	graphs := []*Graph{testGraph(51, 900), testGraph(52, 900)}
	test := testGraph(53, 900)
	trainOpt := TrainOptions{Epochs: 120, LR: 0.02, Momentum: 0.9, LRDecay: 0.99, ClipNorm: 5}

	single := MustNewModel(Config{Dims: []int{8, 16}, FCDims: []int{16}, NumClasses: 2, Seed: 5})
	if _, err := Train(single, graphs, nil, trainOpt); err != nil {
		t.Fatal(err)
	}
	singleF1 := f1Of(single.PredictLabels(test), test.Labels)

	mopt := DefaultMultiStageOptions()
	mopt.ModelCfg = Config{Dims: []int{8, 16}, FCDims: []int{16}, NumClasses: 2, Seed: 5}
	mopt.Train = trainOpt
	mopt.NumStages = 3
	ms, err := TrainMultiStage(graphs, mopt)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms.Stages) != 3 {
		t.Fatalf("trained %d stages, want 3", len(ms.Stages))
	}
	pred := ms.Predict(test)
	if len(pred) != test.N {
		t.Fatalf("prediction length %d", len(pred))
	}
	msF1 := f1Of(pred, test.Labels)
	t.Logf("single F1 = %.3f, multi-stage F1 = %.3f", singleF1, msF1)
	if msF1 <= singleF1 {
		t.Errorf("multi-stage F1 %.3f did not beat single GCN F1 %.3f", msF1, singleF1)
	}
	probs := ms.PredictProbs(test)
	if len(probs) != test.N {
		t.Fatalf("probs length %d", len(probs))
	}
}

func f1Of(pred, labels []int) float64 {
	tp, fp, fn := 0, 0, 0
	for i, l := range labels {
		switch {
		case l == 1 && pred[i] == 1:
			tp++
		case l == 1:
			fn++
		case l == 0 && pred[i] == 1:
			fp++
		}
	}
	if 2*tp+fp+fn == 0 {
		return 0
	}
	return 2 * float64(tp) / float64(2*tp+fp+fn)
}

func TestConfigValidation(t *testing.T) {
	if _, err := NewModel(Config{NumClasses: 2}); err == nil {
		t.Error("empty Dims should fail")
	}
	if _, err := NewModel(Config{Dims: []int{4}, NumClasses: 1}); err == nil {
		t.Error("single class should fail")
	}
	if _, err := NewModel(Config{Dims: []int{0}, NumClasses: 2}); err == nil {
		t.Error("zero dim should fail")
	}
}

func TestNumParamsAndClone(t *testing.T) {
	m := MustNewModel(DefaultConfig())
	if m.NumParams() < 4*32+32*64+64*128 {
		t.Errorf("NumParams = %d, suspiciously small", m.NumParams())
	}
	c := m.Clone()
	c.Wpr.Data[0] = 123
	if m.Wpr.Data[0] == 123 {
		t.Error("clone shares parameter storage")
	}
}

func BenchmarkMatrixForward(b *testing.B) {
	g := testGraph(61, 5000)
	m := MustNewModel(DefaultConfig())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Forward(g)
	}
}

func BenchmarkLossAndGrad(b *testing.B) {
	g := testGraph(62, 2000)
	m := MustNewModel(DefaultConfig())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.LossAndGrad(g, g.Labels, nil)
	}
}

func BenchmarkRecursiveInferencePerNode(b *testing.B) {
	g := testGraph(63, 5000)
	m := MustNewModel(DefaultConfig())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.InferNodeRecursive(g, int32(i%g.N))
	}
}
