package fault

import (
	"math/bits"
	"math/rand"

	"repro/internal/netlist"
	// Aliased: this file's hot loops bind `obs` to the simulator's
	// observability words.
	obspkg "repro/internal/obs"
)

// SAFault is a single stuck-at fault on a cell's output net.
type SAFault struct {
	Node     int32
	StuckAt1 bool
}

// FaultUniverse enumerates the stuck-at fault list: both polarities on
// every cell output except pure sinks (whose input net faults are already
// represented by their drivers).
func FaultUniverse(n *netlist.Netlist) []SAFault {
	var faults []SAFault
	for id := int32(0); id < int32(n.NumGates()); id++ {
		switch n.Type(id) {
		case netlist.Output, netlist.Obs:
			continue
		}
		faults = append(faults, SAFault{Node: id, StuckAt1: false}, SAFault{Node: id, StuckAt1: true})
	}
	return faults
}

// TPGConfig controls random-pattern test generation with fault dropping.
type TPGConfig struct {
	// MaxPatterns is the simulation budget (rounded up to 64-pattern
	// words); default 16384.
	MaxPatterns int
	// TargetCoverage stops generation early once reached (fraction of the
	// fault universe); 0 disables.
	TargetCoverage float64
	// StallWords aborts after this many consecutive 64-pattern words with
	// no new detection; default 32.
	StallWords int
	// Seed drives the pattern source.
	Seed int64
}

func (c TPGConfig) withDefaults() TPGConfig {
	if c.MaxPatterns <= 0 {
		c.MaxPatterns = 16384
	}
	if c.StallWords <= 0 {
		c.StallWords = 32
	}
	return c
}

// TPGResult reports test generation outcomes: the metrics compared in
// Table 3.
type TPGResult struct {
	TotalFaults       int
	Detected          int
	Coverage          float64 // Detected / TotalFaults
	PatternsUsed      int     // patterns that first-detected ≥1 fault (#PAs)
	PatternsSimulated int
	UndetectedSample  []SAFault // up to 16 survivors, for diagnostics
}

// GenerateTests runs bit-parallel random-pattern fault simulation with
// fault dropping: each 64-pattern word is simulated once (values +
// observabilities), every live fault is checked against the word, and a
// fault is dropped at its first detection. A pattern is counted as "used"
// — the paper's test pattern count — when it is the earliest pattern
// detecting some previously undetected fault.
//
// Detection uses the sensitized-path criterion: pattern p detects s-a-0
// at node v when v's fault-free value is 1 under p and v is observable
// under p; symmetrically for s-a-1.
func GenerateTests(n *netlist.Netlist, cfg TPGConfig) TPGResult {
	span := obspkg.StartSpan("tpg")
	defer span.End()
	cfg = cfg.withDefaults()
	sim := NewSimulator(n)
	rng := rand.New(rand.NewSource(cfg.Seed))

	faults := FaultUniverse(n)
	live := make([]SAFault, len(faults))
	copy(live, faults)

	res := TPGResult{TotalFaults: len(faults)}
	usedPatterns := make(map[int]struct{})
	words := (cfg.MaxPatterns + WordSize - 1) / WordSize
	stall := 0
	for w := 0; w < words && len(live) > 0; w++ {
		sim.Batch(rng)
		res.PatternsSimulated += WordSize
		vals, obs := sim.Values(), sim.Obs()

		detectedThisWord := 0
		kept := live[:0]
		for _, f := range live {
			mask := obs[f.Node]
			if f.StuckAt1 {
				mask &= ^vals[f.Node]
			} else {
				mask &= vals[f.Node]
			}
			if mask == 0 {
				kept = append(kept, f)
				continue
			}
			detectedThisWord++
			first := bits.TrailingZeros64(mask)
			usedPatterns[w*WordSize+first] = struct{}{}
		}
		live = kept
		res.Detected = res.TotalFaults - len(live)

		if detectedThisWord == 0 {
			stall++
			if stall >= cfg.StallWords {
				break
			}
		} else {
			stall = 0
		}
		if cfg.TargetCoverage > 0 &&
			float64(res.Detected) >= cfg.TargetCoverage*float64(res.TotalFaults) {
			break
		}
	}
	res.Coverage = float64(res.Detected) / float64(max(1, res.TotalFaults))
	res.PatternsUsed = len(usedPatterns)
	for i := 0; i < len(live) && i < 16; i++ {
		res.UndetectedSample = append(res.UndetectedSample, live[i])
	}
	return res
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
