package core

// This file gives the multi-stage cascade (Section 3.3) the same
// incremental-inference capability as the single model: the iterative
// insertion flow mutates the graph only locally, every stage is an
// ordinary GCN whose output can change only within its D-hop
// neighborhood of the mutation, and the cascade's per-node verdict is a
// pure function of that node's per-stage probabilities. So a cascade
// session caches one IncrementalState per stage, propagates the dirty
// frontier through each of them, and refreshes the cascade decision
// (the activeList walk of PredictProbs) for exactly the union of the
// stages' affected frontiers instead of all N nodes.

// MultiStageState caches one incremental-inference state per cascade
// stage plus the combined cascade output probabilities.
type MultiStageState struct {
	stages []*IncrementalState
	// Probs holds the cascade's current per-node positive probabilities
	// (identical to PredictProbs on the same graph).
	Probs []float64
}

// ForwardFull runs every stage's full inference pass and assembles the
// cascade output, capturing the per-stage states for incremental
// updates.
func (ms *MultiStage) ForwardFull(g *Graph) *MultiStageState {
	st := &MultiStageState{Probs: make([]float64, g.N)}
	for _, m := range ms.Stages {
		st.stages = append(st.stages, m.ForwardFull(g))
	}
	for v := 0; v < g.N; v++ {
		st.Probs[v] = ms.cascadeProb(st, int32(v))
	}
	return st
}

// cascadeProb evaluates the cascade decision for one node from the
// cached per-stage probabilities: the first non-final stage confident
// enough to filter the node assigns its (squashed) probability, and
// survivors get the final stage's probability — exactly the per-node
// logic of PredictProbs.
func (ms *MultiStage) cascadeProb(st *MultiStageState, v int32) float64 {
	last := len(ms.Stages) - 1
	for s := range ms.Stages {
		p := st.stages[s].Probs[v]
		if s < last && p < ms.FilterBelow {
			return p * ms.FilterBelow // squash below any survivor
		}
		if s == last {
			return p
		}
	}
	return 0 // empty cascade
}

// UpdateIncremental refreshes the cascade state after graph mutations:
// the dirty set (plus appended nodes) is propagated through every
// stage's cached state, and the cascade verdict is recomputed for the
// union of the stages' affected frontiers. Returns that union.
func (ms *MultiStage) UpdateIncremental(st *MultiStageState, g *Graph, dirty []int32) []int32 {
	affected := make(map[int32]bool)
	for i, m := range ms.Stages {
		for _, v := range m.UpdateIncremental(st.stages[i], g, dirty) {
			affected[v] = true
		}
	}
	if g.N > len(st.Probs) {
		st.Probs = append(st.Probs, make([]float64, g.N-len(st.Probs))...)
	}
	out := make([]int32, 0, len(affected))
	for v := range affected {
		st.Probs[v] = ms.cascadeProb(st, v)
		out = append(out, v)
	}
	return out
}

// multiStageRun adapts a (MultiStage, MultiStageState) pair to
// IncrementalRun.
type multiStageRun struct {
	ms *MultiStage
	st *MultiStageState
}

func (r *multiStageRun) Probs() []float64 { return r.st.Probs }

func (r *multiStageRun) Update(g *Graph, dirty []int32) { r.ms.UpdateIncremental(r.st, g, dirty) }

// NewIncremental runs one full cascade pass and returns the cached
// session for incremental updates.
func (ms *MultiStage) NewIncremental(g *Graph) IncrementalRun {
	return &multiStageRun{ms: ms, st: ms.ForwardFull(g)}
}

// RunFromStates wraps externally assembled per-stage incremental states
// (one per cascade stage, each equivalent to that stage's ForwardFull
// over the same graph) into the session NewIncremental returns. The
// sharded executor (internal/partition) uses this to hand its stitched
// whole-graph states back to the cascade.
func (ms *MultiStage) RunFromStates(states []*IncrementalState) IncrementalRun {
	if len(states) != len(ms.Stages) {
		panic("core: RunFromStates needs exactly one state per cascade stage")
	}
	st := &MultiStageState{stages: states}
	n := 0
	if len(states) > 0 {
		n = states[0].logits.Rows
	}
	st.Probs = make([]float64, n)
	for v := range st.Probs {
		st.Probs[v] = ms.cascadeProb(st, int32(v))
	}
	return &multiStageRun{ms: ms, st: st}
}
