package core

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/tensor"
)

// TestForwardDeterministicAcrossCalls pins that inference buffer reuse
// does not leak state between calls.
func TestForwardDeterministicAcrossCalls(t *testing.T) {
	g := testGraph(71, 250)
	m := MustNewModel(tinyConfig(2))
	a := m.Forward(g).Clone()
	for i := 0; i < 3; i++ {
		b := m.Forward(g)
		if diff := tensor.MaxAbsDiff(a, b); diff != 0 {
			t.Fatalf("call %d differs by %g", i, diff)
		}
	}
}

// TestForwardAcrossDifferentGraphSizes exercises scratch reallocation
// when the same model serves graphs of different sizes (the insertion
// flow grows the graph every iteration).
func TestForwardAcrossDifferentGraphSizes(t *testing.T) {
	m := MustNewModel(tinyConfig(3))
	g1 := testGraph(72, 150)
	g2 := testGraph(73, 300)
	a1 := m.Forward(g1).Clone()
	_ = m.Forward(g2)
	b1 := m.Forward(g1)
	if diff := tensor.MaxAbsDiff(a1, b1); diff != 0 {
		t.Fatalf("re-forward after size change differs by %g", diff)
	}
}

func TestForwardAfterObservationPoint(t *testing.T) {
	g := testGraph(74, 200)
	m := MustNewModel(tinyConfig(4))
	before := m.Predict(g)
	target := int32(g.N / 2)
	g.AddObservationPoint(target)
	after := m.Predict(g)
	if len(after) != len(before)+1 {
		t.Fatalf("prediction length %d, want %d", len(after), len(before)+1)
	}
	// Nodes far from the insertion (outside its D-hop neighborhood)
	// should be unaffected; check node 0 which is a PI.
	if math.Abs(after[0]-before[0]) > 1e-9 {
		// Node 0 may legitimately be within D hops via successors; only
		// fail when the value changed wildly.
		if math.Abs(after[0]-before[0]) > 0.5 {
			t.Errorf("distant node prediction jumped: %v -> %v", before[0], after[0])
		}
	}
}

func TestGraphCloneIndependence(t *testing.T) {
	g := testGraph(75, 120)
	c := g.Clone()
	c.AddObservationPoint(5)
	c.X.Set(0, 0, 123)
	c.Labels[1] = 1 - c.Labels[1]
	if g.N == c.N {
		t.Error("clone insertion affected source size")
	}
	if g.X.At(0, 0) == 123 {
		t.Error("clone attribute write affected source")
	}
}

func TestEmbeddingsShape(t *testing.T) {
	g := testGraph(76, 100)
	cfg := tinyConfig(5)
	m := MustNewModel(cfg)
	e := m.Embeddings(g)
	if e.Rows != g.N || e.Cols != cfg.Dims[len(cfg.Dims)-1] {
		t.Fatalf("embeddings %d×%d", e.Rows, e.Cols)
	}
}

func TestMultiStageSaveLoadRoundTrip(t *testing.T) {
	graphs := []*Graph{testGraph(77, 250)}
	opt := DefaultMultiStageOptions()
	opt.ModelCfg = tinyConfig(6)
	opt.Train = TrainOptions{Epochs: 5, LR: 0.02, ClipNorm: 5}
	opt.NumStages = 2
	ms, err := TrainMultiStage(graphs, opt)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ms.Save(&buf); err != nil {
		t.Fatal(err)
	}
	ms2, err := LoadMultiStage(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms2.Stages) != len(ms.Stages) || ms2.FilterBelow != ms.FilterBelow {
		t.Fatalf("cascade metadata lost: %d stages, filter %v", len(ms2.Stages), ms2.FilterBelow)
	}
	g := testGraph(78, 250)
	a, b := ms.Predict(g), ms2.Predict(g)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("prediction %d differs after reload", i)
		}
	}
}

func TestSaveEmptyCascadeFails(t *testing.T) {
	var buf bytes.Buffer
	if err := (&MultiStage{}).Save(&buf); err == nil {
		t.Error("saving an empty cascade should fail")
	}
}

func TestTrainErrors(t *testing.T) {
	m := MustNewModel(tinyConfig(7))
	if _, err := Train(m, nil, nil, TrainOptions{}); err == nil {
		t.Error("no graphs should fail")
	}
	g := testGraph(79, 50)
	if _, err := Train(m, []*Graph{g}, [][]int{{0, 1}}, TrainOptions{}); err == nil {
		t.Error("label length mismatch should fail")
	}
	if _, err := Train(m, []*Graph{g}, [][]int{nil, nil}, TrainOptions{}); err == nil {
		t.Error("label set count mismatch should fail")
	}
}

func TestAttributeVectorMonotone(t *testing.T) {
	a := AttributeVector(1, 2, 3, 4)
	b := AttributeVector(2, 4, 6, 8)
	for j := 0; j < InputDim; j++ {
		if b[j] <= a[j] {
			t.Errorf("attribute %d not monotone: %v vs %v", j, a[j], b[j])
		}
	}
	zero := AttributeVector(0, 0, 0, 0)
	for j, v := range zero {
		if v != 0 {
			t.Errorf("zero attribute %d = %v", j, v)
		}
	}
}

func TestPredictProbsInUnitRange(t *testing.T) {
	g := testGraph(80, 150)
	m := MustNewModel(tinyConfig(8))
	for _, p := range m.PredictProbs(g) {
		if p < 0 || p > 1 || math.IsNaN(p) {
			t.Fatalf("probability %v out of range", p)
		}
	}
}

func TestAddObservationPointOutOfRangePanics(t *testing.T) {
	g := testGraph(81, 50)
	defer func() {
		if recover() == nil {
			t.Error("out-of-range target should panic")
		}
	}()
	g.AddObservationPoint(int32(g.N + 5))
}
