package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// quickConfig pins the generator so the 200-case sweeps are
// reproducible run to run; bump the seed, not MaxCount, to explore.
func quickConfig(seed int64) *quick.Config {
	return &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(seed))}
}

// TestQuickPredictionsAreProbabilities: for random graphs and random
// model seeds, every prediction is a finite probability.
func TestQuickPredictionsAreProbabilities(t *testing.T) {
	f := func(gseed, mseed int64) bool {
		g := testGraph(gseed%1000, 120)
		m := MustNewModel(tinyConfig(mseed))
		for _, p := range m.Predict(g) {
			if p < 0 || p > 1 || math.IsNaN(p) || math.IsInf(p, 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, quickConfig(101)); err != nil {
		t.Error(err)
	}
}

// TestQuickGraphMutationInvariants: observation point insertion always
// grows N and edge count by exactly one and never disturbs other rows.
func TestQuickGraphMutationInvariants(t *testing.T) {
	f := func(seed int64, rawTarget uint16) bool {
		g := testGraph(seed%1000, 100)
		target := int32(int(rawTarget) % g.N)
		n0, e0 := g.N, g.NumEdges()
		before := g.X.Clone()
		p := g.AddObservationPoint(target)
		if g.N != n0+1 || g.NumEdges() != e0+1 || int(p) != n0 {
			return false
		}
		for v := 0; v < n0; v++ {
			for j := 0; j < InputDim; j++ {
				if g.X.At(v, j) != before.At(v, j) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, quickConfig(202)); err != nil {
		t.Error(err)
	}
}

// TestQuickCloneRoundTrip: a clone predicts identically under any model.
func TestQuickCloneRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		g := testGraph(seed%1000, 80)
		m := MustNewModel(tinyConfig(seed))
		a := m.Predict(g)
		b := m.Predict(g.Clone())
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, quickConfig(303)); err != nil {
		t.Error(err)
	}
}
