package refcheck

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/cop"
	"repro/internal/netlist"
	"repro/internal/scoap"
)

// randomTree builds a fanout-free circuit (every cell drives at most
// one load): binary gates, inverter/buffer links, scan flip-flops, one
// primary output at the root. On this class critical path tracing and
// COP are provably exact, so the test can demand equality.
func randomTree(rng *rand.Rand, maxDepth int) *netlist.Netlist {
	n := netlist.New("tree")
	var build func(depth int) int32
	build = func(depth int) int32 {
		if depth == 0 || rng.Intn(8) == 0 {
			return n.MustAddGate(netlist.Input, "")
		}
		switch rng.Intn(10) {
		case 0:
			return n.MustAddGate(netlist.Buf, "", build(depth-1))
		case 1:
			return n.MustAddGate(netlist.Not, "", build(depth-1))
		case 2:
			return n.MustAddGate(netlist.DFF, "", build(depth-1))
		default:
			types := []netlist.GateType{netlist.And, netlist.Nand, netlist.Or, netlist.Nor, netlist.Xor, netlist.Xnor}
			t := types[rng.Intn(len(types))]
			return n.MustAddGate(t, "", build(depth-1), build(depth-1))
		}
	}
	n.MustAddGate(netlist.Output, "", build(maxDepth))
	return n
}

// randomDAG builds a small general circuit with reconvergent fanout,
// scan flops, and deliberately dangling (unobservable) regions: a
// handful of cells are routed to primary outputs, the rest are left
// floating so the structural-unobservability invariants get exercised.
func randomDAG(rng *rand.Rand, gates, inputs int) *netlist.Netlist {
	n := netlist.New("dag")
	ids := make([]int32, 0, gates+inputs)
	for i := 0; i < inputs; i++ {
		ids = append(ids, n.MustAddGate(netlist.Input, ""))
	}
	sources := inputs
	pick := func() int32 { return ids[rng.Intn(len(ids))] }
	for i := 0; i < gates; i++ {
		var id int32
		switch r := rng.Intn(12); {
		case r == 0:
			id = n.MustAddGate(netlist.Buf, "", pick())
		case r == 1:
			id = n.MustAddGate(netlist.Not, "", pick())
		case r == 2 && sources < MaxExhaustiveSources-4:
			id = n.MustAddGate(netlist.DFF, "", pick())
			sources++
		default:
			types := []netlist.GateType{netlist.And, netlist.Nand, netlist.Or, netlist.Nor, netlist.Xor, netlist.Xnor}
			t := types[rng.Intn(len(types))]
			id = n.MustAddGate(t, "", pick(), pick())
		}
		ids = append(ids, id)
	}
	// Observe roughly a third of the most recent cells; everything not
	// reaching them stays structurally unobservable.
	for i := 0; i < 1+gates/12; i++ {
		n.MustAddGate(netlist.Output, "", ids[len(ids)-1-rng.Intn(len(ids)/3+1)])
	}
	return n
}

// feedsSinkDirectly reports whether some load of id is an observation
// sink (primary output, scan flop, or observation point).
func feedsSinkDirectly(n *netlist.Netlist, id int32) bool {
	for _, l := range n.Fanout(id) {
		if n.Type(l).IsObservationSink() {
			return true
		}
	}
	return false
}

// TestExhaustiveObsOnTrees: on fanout-free circuits, exhaustive
// observability, the bit-parallel CPT criterion and the analytic COP
// probability must agree exactly, and SCOAP must mark exactly the
// observable nets as finite.
func TestExhaustiveObsOnTrees(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	checked := 0
	for i := 0; i < 40 && checked < 25; i++ {
		n := randomTree(rng, 3+i%2)
		if len(Sources(n)) > 10 {
			continue // keep the exhaustive budget tiny
		}
		if !IsFanoutFree(n) {
			t.Fatalf("tree %d: generator produced fanout", i)
		}
		exact, total, err := ExactObsCounts(n)
		if err != nil {
			t.Fatal(err)
		}
		cpt, cptTotal, err := CPTObsCounts(n)
		if err != nil {
			t.Fatal(err)
		}
		if cptTotal != total {
			t.Fatalf("tree %d: pattern totals differ: %d vs %d", i, cptTotal, total)
		}
		sm := scoap.Compute(n)
		cm := cop.Compute(n)
		for id := int32(0); id < int32(n.NumGates()); id++ {
			switch n.Type(id) {
			case netlist.Output, netlist.Obs:
				continue
			}
			if cpt[id] != exact[id] {
				t.Errorf("tree %d cell %d (%s): CPT count %d != exhaustive %d",
					i, id, n.Type(id), cpt[id], exact[id])
			}
			want := float64(exact[id]) / float64(total)
			if math.Abs(cm.Obs[id]-want) > 1e-9 {
				t.Errorf("tree %d cell %d (%s): COP obs %.12f != exhaustive %.12f",
					i, id, n.Type(id), cm.Obs[id], want)
			}
			if (sm.CO[id] == scoap.Unobservable) != (exact[id] == 0) {
				t.Errorf("tree %d cell %d: SCOAP CO=%d vs exhaustive count %d",
					i, id, sm.CO[id], exact[id])
			}
		}
		checked++
	}
	if checked < 25 {
		t.Fatalf("only %d trees within exhaustive budget", checked)
	}
}

// TestExhaustiveObsInvariantsOnDAGs: on general reconvergent circuits
// the heuristics are approximations, but the structural invariants must
// hold: SCOAP and COP agree on which nets have no sink path at all,
// such nets are exhaustively unobservable, and a net feeding a sink
// directly is observed under every pattern.
func TestExhaustiveObsInvariantsOnDAGs(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	sawUnobservable := false
	for i := 0; i < 20; i++ {
		n := randomDAG(rng, 30+rng.Intn(25), 6)
		if err := n.Validate(); err != nil {
			t.Fatalf("dag %d: %v", i, err)
		}
		if len(Sources(n)) > 12 {
			continue
		}
		exact, total, err := ExactObsCounts(n)
		if err != nil {
			t.Fatal(err)
		}
		sm := scoap.Compute(n)
		cm := cop.Compute(n)
		for id := int32(0); id < int32(n.NumGates()); id++ {
			switch n.Type(id) {
			case netlist.Output, netlist.Obs:
				continue
			}
			scoapDead := sm.CO[id] == scoap.Unobservable
			copDead := cm.Obs[id] == 0
			if scoapDead != copDead {
				t.Errorf("dag %d cell %d (%s): SCOAP CO=%d but COP obs=%v — structural reachability disagreement",
					i, id, n.Type(id), sm.CO[id], cm.Obs[id])
			}
			if scoapDead {
				sawUnobservable = true
				if exact[id] != 0 {
					t.Errorf("dag %d cell %d: SCOAP says unobservable but exhaustive count %d > 0", i, id, exact[id])
				}
			}
			if feedsSinkDirectly(n, id) && exact[id] != total {
				t.Errorf("dag %d cell %d (%s): feeds a sink but observed %d/%d patterns",
					i, id, n.Type(id), exact[id], total)
			}
		}
	}
	if !sawUnobservable {
		t.Error("no structurally unobservable net generated — invariant untested")
	}
}

// TestScanBoundaryObservabilityAgreement is the minimized regression
// for the disagreement the differential harness surfaced between COP
// and every other engine: a scan flip-flop output driving observable
// logic must not be reported unobservable (cop previously left every
// DFF output at Obs = 0).
func TestScanBoundaryObservabilityAgreement(t *testing.T) {
	n := netlist.New("scan")
	a := n.MustAddGate(netlist.Input, "a")
	d := n.MustAddGate(netlist.DFF, "d", a)
	b := n.MustAddGate(netlist.Buf, "b", d)
	n.MustAddGate(netlist.Output, "z", b)

	exact, total, err := ExactObsCounts(n)
	if err != nil {
		t.Fatal(err)
	}
	if exact[d] != total {
		t.Fatalf("exhaustive: DFF output observed %d/%d patterns", exact[d], total)
	}
	if co := scoap.Compute(n).CO[d]; co == scoap.Unobservable {
		t.Fatal("SCOAP: DFF output unobservable")
	}
	if obs := cop.Compute(n).Obs[d]; obs != 1 {
		t.Fatalf("COP: DFF output obs = %v, want 1 (scan-boundary regression)", obs)
	}
}
