// Package atpg implements a PODEM-style deterministic test pattern
// generator for stuck-at faults on full-scan netlists. It extends the
// random-pattern flow of package fault the way a commercial ATPG does:
// random patterns detect the easy faults cheaply, and PODEM targets the
// residue one fault at a time, which is how the paper's "#PAs" test
// pattern counts arise in practice.
//
// The implementation is the classic algorithm: five-valued D-algebra
// (represented as separate three-valued good/faulty circuit values),
// objective selection from the D-frontier, backtrace through X-paths to a
// primary input assignment, forward implication, and chronological
// backtracking with a configurable backtrack limit.
package atpg

import (
	"repro/internal/netlist"
)

// Value is three-valued logic.
type Value uint8

// The three logic values. X is unassigned/unknown.
const (
	X Value = iota
	Zero
	One
)

// Not returns the complement (X stays X).
func (v Value) Not() Value {
	switch v {
	case Zero:
		return One
	case One:
		return Zero
	}
	return X
}

// String renders the value as "0", "1" or "x".
func (v Value) String() string {
	switch v {
	case Zero:
		return "0"
	case One:
		return "1"
	}
	return "x"
}

// Fault is a single stuck-at fault on a cell's output, mirroring
// fault.SAFault without importing it (the packages stay independent).
type Fault struct {
	Node     int32
	StuckAt1 bool
}

// Result describes one PODEM run.
type Result struct {
	// Success means a test was found; Pattern maps source cells (primary
	// inputs and scan flip-flops) to assigned values; unassigned sources
	// may take any value.
	Success bool
	// Aborted means the backtrack limit was hit before the search space
	// was exhausted; the fault may still be testable.
	Aborted bool
	// Pattern is only valid when Success.
	Pattern map[int32]Value
	// Backtracks is the number of backtracks consumed.
	Backtracks int
}

// Generator holds per-netlist state reused across faults.
type Generator struct {
	n     *netlist.Netlist
	order []int32
	good  []Value
	bad   []Value
	// sources are the assignable cells (PIs and scan flops).
	sources map[int32]bool
	// BacktrackLimit bounds the search per fault; default 200.
	BacktrackLimit int
}

// NewGenerator prepares a PODEM engine for the netlist.
func NewGenerator(n *netlist.Netlist) *Generator {
	g := &Generator{
		n:              n,
		order:          n.TopoOrder(),
		good:           make([]Value, n.NumGates()),
		bad:            make([]Value, n.NumGates()),
		sources:        make(map[int32]bool),
		BacktrackLimit: 200,
	}
	for id := int32(0); id < int32(n.NumGates()); id++ {
		if n.Type(id).IsControllableSource() {
			g.sources[id] = true
		}
	}
	return g
}

// assignment is one decision on a source cell.
type assignment struct {
	node    int32
	value   Value
	flipped bool // both branches tried
}

// Generate runs PODEM for one fault.
func (g *Generator) Generate(f Fault) Result {
	res := Result{}
	var stack []assignment
	values := make(map[int32]Value) // current source assignments

	for {
		g.imply(values, f)
		status := g.status(f)
		switch status {
		case statusDetected:
			res.Success = true
			res.Pattern = make(map[int32]Value, len(values))
			for k, v := range values {
				res.Pattern[k] = v
			}
			return res
		case statusPossible:
			obj, objVal, ok := g.objective(f)
			if ok {
				src, srcVal, ok2 := g.backtrace(obj, objVal)
				if ok2 {
					stack = append(stack, assignment{node: src, value: srcVal})
					values[src] = srcVal
					continue
				}
			}
			// No viable objective/backtrace: treat as a dead end.
			fallthrough
		case statusImpossible:
			// Backtrack.
			for {
				if len(stack) == 0 {
					return res // exhausted: untestable under this search
				}
				top := &stack[len(stack)-1]
				if !top.flipped {
					top.flipped = true
					top.value = top.value.Not()
					values[top.node] = top.value
					res.Backtracks++
					if res.Backtracks > g.BacktrackLimit {
						res.Aborted = true
						return res
					}
					break
				}
				delete(values, top.node)
				stack = stack[:len(stack)-1]
			}
		}
	}
}

type status uint8

const (
	statusDetected status = iota
	statusPossible
	statusImpossible
)

// imply performs three-valued forward simulation of the good and faulty
// circuits under the current source assignments.
func (g *Generator) imply(values map[int32]Value, f Fault) {
	n := g.n
	for _, id := range g.order {
		gate := n.Gate(id)
		var gv, bv Value
		switch gate.Type {
		case netlist.Input, netlist.DFF:
			gv = values[id]
			bv = gv
		case netlist.Output, netlist.Obs, netlist.Buf:
			gv = g.good[gate.Fanin[0]]
			bv = g.bad[gate.Fanin[0]]
		case netlist.Not:
			gv = g.good[gate.Fanin[0]].Not()
			bv = g.bad[gate.Fanin[0]].Not()
		case netlist.And:
			gv = g.evalAndOr(gate.Fanin, true, false, false)
			bv = g.evalAndOr(gate.Fanin, true, false, true)
		case netlist.Nand:
			gv = g.evalAndOr(gate.Fanin, true, true, false)
			bv = g.evalAndOr(gate.Fanin, true, true, true)
		case netlist.Or:
			gv = g.evalAndOr(gate.Fanin, false, false, false)
			bv = g.evalAndOr(gate.Fanin, false, false, true)
		case netlist.Nor:
			gv = g.evalAndOr(gate.Fanin, false, true, false)
			bv = g.evalAndOr(gate.Fanin, false, true, true)
		case netlist.Xor, netlist.Xnor:
			gv = g.evalXor(gate.Fanin, gate.Type == netlist.Xnor, false)
			bv = g.evalXor(gate.Fanin, gate.Type == netlist.Xnor, true)
		}
		if id == f.Node {
			// The faulty circuit holds the stuck value.
			if f.StuckAt1 {
				bv = One
			} else {
				bv = Zero
			}
		}
		g.good[id] = gv
		g.bad[id] = bv
	}
}

func (g *Generator) evalAndOr(fanin []int32, andLike, invert, faulty bool) Value {
	vals := g.good
	if faulty {
		vals = g.bad
	}
	controlling := Zero
	if !andLike {
		controlling = One
	}
	sawX := false
	for _, f := range fanin {
		switch vals[f] {
		case controlling:
			if invert {
				return controlling.Not()
			}
			return controlling
		case X:
			sawX = true
		}
	}
	if sawX {
		return X
	}
	out := controlling.Not()
	if invert {
		return out.Not()
	}
	return out
}

func (g *Generator) evalXor(fanin []int32, invert, faulty bool) Value {
	vals := g.good
	if faulty {
		vals = g.bad
	}
	parity := Zero
	for _, f := range fanin {
		v := vals[f]
		if v == X {
			return X
		}
		if v == One {
			parity = parity.Not()
		}
	}
	if invert {
		return parity.Not()
	}
	return parity
}

// hasD reports whether node carries a D or D' (good and faulty differ,
// both binary).
func (g *Generator) hasD(id int32) bool {
	return g.good[id] != X && g.bad[id] != X && g.good[id] != g.bad[id]
}

// status classifies the current search state.
func (g *Generator) status(f Fault) status {
	// Detected: a D reaches an observation sink's input net.
	for id := int32(0); id < int32(g.n.NumGates()); id++ {
		t := g.n.Type(id)
		if t.IsObservationSink() && g.hasD(g.n.Fanin(id)[0]) {
			return statusDetected
		}
	}
	// Fault not excited yet?
	if !g.hasD(f.Node) {
		// Excitation still possible only if the good value at the site is
		// X (could become the opposite of the stuck value).
		if g.good[f.Node] == X {
			return statusPossible
		}
		// Good value equals the stuck value: fault never manifests under
		// this assignment.
		want := One
		if f.StuckAt1 {
			want = Zero
		}
		if g.good[f.Node] != want {
			return statusImpossible
		}
		return statusPossible
	}
	// Excited: need a nonempty D-frontier and an X-path from some fault
	// effect to an observation sink to keep going.
	if len(g.dFrontier()) == 0 {
		return statusImpossible
	}
	if !g.xPathExists() {
		return statusImpossible
	}
	return statusPossible
}

// xPathExists checks whether any net carrying a fault effect (D) can
// still reach an observation sink through nets whose value is not yet
// fully determined — the classic PODEM pruning rule. Without it the
// search only discovers a blocked propagation path after exhaustively
// flipping unrelated inputs.
func (g *Generator) xPathExists() bool {
	n := g.n
	visited := make(map[int32]bool)
	var stack []int32
	for id := int32(0); id < int32(n.NumGates()); id++ {
		if g.hasD(id) {
			stack = append(stack, id)
			visited[id] = true
		}
	}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, u := range n.Fanout(v) {
			if visited[u] {
				continue
			}
			if n.Type(u).IsObservationSink() {
				return true
			}
			// The effect can pass through u only if u's output is not
			// already fixed to identical binary values.
			if g.good[u] == X || g.bad[u] == X || g.hasD(u) {
				visited[u] = true
				stack = append(stack, u)
			}
		}
	}
	return false
}

// dFrontier lists gates with a D on some input and X on the output (in
// the faulty composite).
func (g *Generator) dFrontier() []int32 {
	var out []int32
	for id := int32(0); id < int32(g.n.NumGates()); id++ {
		if g.good[id] != X && g.bad[id] != X {
			continue
		}
		for _, f := range g.n.Fanin(id) {
			if g.hasD(f) {
				out = append(out, id)
				break
			}
		}
	}
	return out
}

// objective returns the next (node, value) goal: excite the fault, or
// propagate through the lowest-ID D-frontier gate.
func (g *Generator) objective(f Fault) (int32, Value, bool) {
	if !g.hasD(f.Node) {
		want := One
		if f.StuckAt1 {
			want = Zero
		}
		if g.good[f.Node] == X {
			return f.Node, want, true
		}
		return 0, X, false
	}
	frontier := g.dFrontier()
	if len(frontier) == 0 {
		return 0, X, false
	}
	gate := g.n.Gate(frontier[0])
	// Set an X input to the gate's non-controlling value.
	var noncontrolling Value
	switch gate.Type {
	case netlist.And, netlist.Nand:
		noncontrolling = One
	case netlist.Or, netlist.Nor:
		noncontrolling = Zero
	default:
		// XOR/XNOR/BUF/NOT propagate unconditionally; any X input set to
		// either value works — choose 0.
		noncontrolling = Zero
	}
	for _, fin := range gate.Fanin {
		if g.good[fin] == X || g.bad[fin] == X {
			return fin, noncontrolling, true
		}
	}
	return 0, X, false
}

// backtrace walks the objective back to an unassigned source through
// X-valued nets, tracking inversion parity.
func (g *Generator) backtrace(node int32, val Value) (int32, Value, bool) {
	for {
		if g.sources[node] {
			if g.good[node] != X {
				return 0, X, false // already assigned; dead end
			}
			return node, val, true
		}
		gate := g.n.Gate(node)
		if len(gate.Fanin) == 0 {
			return 0, X, false
		}
		// Choose an X input to chase.
		var pick int32 = -1
		for _, fin := range gate.Fanin {
			if g.good[fin] == X {
				pick = fin
				break
			}
		}
		if pick < 0 {
			return 0, X, false
		}
		switch gate.Type {
		case netlist.Not, netlist.Nand, netlist.Nor, netlist.Xnor:
			val = val.Not()
		}
		// For multi-input gates the simple heuristic: to set an AND
		// output to 1 every input must be 1; to 0 one input 0 suffices —
		// either way chasing one X input with the (parity-adjusted)
		// value is the classic easiest-path backtrace.
		node = pick
	}
}
