package experiments

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/obs"
)

// Fig8Curve is one search depth's accuracy trajectory.
type Fig8Curve struct {
	Depth     int
	Epochs    []int
	TrainAcc  []float64
	TestAcc   []float64
	FinalTest float64
}

// Fig8Result holds the accuracy-vs-epoch curves for D = 1, 2, 3.
type Fig8Result struct {
	Curves []Fig8Curve
}

// Fig8 reproduces the search-depth study: train on three designs, test on
// the fourth, and record training/testing accuracy over the epochs for
// search depths 1, 2 and 3. The paper's conclusion — accuracy improves
// with depth, D = 3 best — should re-emerge.
func Fig8(cfg Config) Fig8Result {
	span := obs.StartSpan("experiments/fig8")
	defer span.End()
	cfg = cfg.withDefaults()
	suite := cfg.suite()
	test := len(suite) - 1

	balanced := make([][]int, len(suite))
	for i, b := range suite {
		balanced[i] = dataset.BalancedLabels(b.Graph, cfg.Seed+int64(i)*31)
	}
	var graphs []*core.Graph
	var labelSets [][]int
	for d := range suite {
		if d == test {
			continue
		}
		graphs = append(graphs, suite[d].Graph)
		labelSets = append(labelSets, balanced[d])
	}

	every := cfg.Epochs / 20
	if every < 1 {
		every = 1
	}

	var res Fig8Result
	for depth := 1; depth <= 3; depth++ {
		model := core.MustNewModel(cfg.modelConfig(depth, cfg.Seed+808))
		curve := Fig8Curve{Depth: depth}
		opt := cfg.trainOptions()
		opt.OnEpoch = func(epoch int, m *core.Model) {
			if epoch%every != 0 && epoch != opt.Epochs-1 {
				return
			}
			var trainAcc float64
			for i, g := range graphs {
				trainAcc += core.Accuracy(m, g, labelSets[i])
			}
			trainAcc /= float64(len(graphs))
			testAcc := core.Accuracy(m, suite[test].Graph, balanced[test])
			curve.Epochs = append(curve.Epochs, epoch)
			curve.TrainAcc = append(curve.TrainAcc, trainAcc)
			curve.TestAcc = append(curve.TestAcc, testAcc)
		}
		if _, err := core.Train(model, graphs, labelSets, opt); err != nil {
			panic(err)
		}
		if n := len(curve.TestAcc); n > 0 {
			curve.FinalTest = curve.TestAcc[n-1]
		}
		res.Curves = append(res.Curves, curve)
	}
	return res
}

// Fprint writes the curves as aligned series (the figure's data).
func (r Fig8Result) Fprint(w io.Writer) {
	fmt.Fprintln(w, "Figure 8: Performance with different search depth D")
	for _, c := range r.Curves {
		fmt.Fprintf(w, "D=%d (final test accuracy %.3f)\n", c.Depth, c.FinalTest)
		fmt.Fprintf(w, "  %-8s %-10s %-10s\n", "epoch", "train_acc", "test_acc")
		for i, e := range c.Epochs {
			fmt.Fprintf(w, "  %-8d %-10.3f %-10.3f\n", e, c.TrainAcc[i], c.TestAcc[i])
		}
	}
}
