package netlist

import "testing"

func TestInsertControlPointsStructure(t *testing.T) {
	n, ids := buildC17(t)
	gates0 := n.NumGates()
	cps := []ControlPoint{
		{Target: ids["11"], Kind: CP1},
		{Target: ids["10"], Kind: CP0},
	}
	out, results, remap, err := n.InsertControlPoints(cps)
	if err != nil {
		t.Fatal(err)
	}
	if err := out.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// Two new PIs and two new gates.
	if out.NumGates() != gates0+4 {
		t.Errorf("gates = %d, want %d", out.NumGates(), gates0+4)
	}
	if got := len(out.PrimaryInputs()); got != 7 {
		t.Errorf("PIs = %d, want 7", got)
	}
	// CP1 on 11 inserted an OR, CP0 on 10 an AND.
	if out.Type(results[0].Gate) != Or {
		t.Errorf("CP1 gate type = %v", out.Type(results[0].Gate))
	}
	if out.Type(results[1].Gate) != And {
		t.Errorf("CP0 gate type = %v", out.Type(results[1].Gate))
	}
	// The old loads of 11 (gates 16, 19) must now reference the CP gate.
	for _, load := range []string{"16", "19"} {
		newLoad := remap[ids[load]]
		found := false
		for _, f := range out.Fanin(newLoad) {
			if f == results[0].Gate {
				found = true
			}
		}
		if !found {
			t.Errorf("load %s not redirected to control point gate", load)
		}
	}
	// The CP gate's first fanin is the remapped target.
	if out.Fanin(results[0].Gate)[0] != remap[ids["11"]] {
		t.Error("CP gate does not consume the original net")
	}
	// The original netlist is untouched.
	if n.NumGates() != gates0 {
		t.Error("source netlist mutated")
	}
}

func TestInsertControlPointsErrors(t *testing.T) {
	n, ids := buildC17(t)
	if _, _, _, err := n.InsertControlPoints([]ControlPoint{{Target: 999}}); err == nil {
		t.Error("out-of-range target should fail")
	}
	po := n.PrimaryOutputs()[0]
	if _, _, _, err := n.InsertControlPoints([]ControlPoint{{Target: po}}); err == nil {
		t.Error("controlling a sink should fail")
	}
	if _, _, _, err := n.InsertControlPoints([]ControlPoint{
		{Target: ids["11"]}, {Target: ids["11"]},
	}); err == nil {
		t.Error("duplicate targets should fail")
	}
}

func TestControlPointKindString(t *testing.T) {
	if CP0.String() != "CP0" || CP1.String() != "CP1" {
		t.Error("CPKind strings wrong")
	}
}

func TestControlPointPreservesLogicWhenInactive(t *testing.T) {
	// With cp inputs at their normal-mode values the circuit computes the
	// same function; verified structurally here (CP gates are
	// identity-with-constant), behaviourally in the fault package tests.
	n, ids := buildC17(t)
	out, results, remap, err := n.InsertControlPoints([]ControlPoint{{Target: ids["11"], Kind: CP1}})
	if err != nil {
		t.Fatal(err)
	}
	// OR(x, 0) = x: normal-mode value of CP1 control is 0.
	g := out.Gate(results[0].Gate)
	if g.Type != Or || len(g.Fanin) != 2 {
		t.Fatalf("unexpected CP gate %v", g)
	}
	if g.Fanin[0] != remap[ids["11"]] || g.Fanin[1] != results[0].Control {
		t.Errorf("CP gate fanin = %v", g.Fanin)
	}
}
