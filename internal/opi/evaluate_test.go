package opi

import (
	"testing"

	"repro/internal/fault"
)

func TestEvaluateATPGBeatsRandomCoverage(t *testing.T) {
	n, m, g := buildBench(t, 21, 1200)
	RunFlow(n, m, g, scoapOracle{cut: oracleCut(g, 0.02)}, FlowConfig{PerIteration: 8})

	random := Evaluate(n.Clone(), fault.TPGConfig{MaxPatterns: 1024, Seed: 4})
	combined := EvaluateATPG(n.Clone(), fault.ATPGConfig{
		Random: fault.TPGConfig{MaxPatterns: 1024, Seed: 4},
	})
	if combined.OPs != random.OPs {
		t.Errorf("OP counts differ: %d vs %d", combined.OPs, random.OPs)
	}
	if combined.Coverage < random.Coverage {
		t.Errorf("ATPG test coverage %.4f below random coverage %.4f",
			combined.Coverage, random.Coverage)
	}
	if combined.Patterns < random.Patterns {
		t.Errorf("combined patterns %d below random %d", combined.Patterns, random.Patterns)
	}
}
