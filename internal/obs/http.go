package obs

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
)

// Live exposition: /metrics serves the counter/gauge/histogram registry
// in Prometheus text format and /snapshot serves the full Snapshot
// (span tree, metrics, events) as JSON, so a multi-hour run can be
// watched while it executes. Both cmd binaries register these on the
// same mux as their -pprof server.

// metricPrefix namespaces every exposed metric; dots in registry keys
// become underscores ("spmm.rows" → "repro_spmm_rows").
const metricPrefix = "repro_"

// promName converts a registry key to a Prometheus-legal metric name.
func promName(key string) string {
	var b strings.Builder
	b.WriteString(metricPrefix)
	for _, r := range key {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// sortedKeys returns m's keys in ascending order.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// writeMetrics renders the whole registry — including still-zero
// metrics, per Prometheus convention — in exposition text format.
func writeMetrics(w *strings.Builder) {
	reg.mu.Lock()
	counters := make(map[string]int64, len(reg.counters))
	for k, c := range reg.counters {
		counters[k] = c.Value()
	}
	gauges := make(map[string]int64, len(reg.gauges))
	for k, g := range reg.gauges {
		gauges[k] = g.Value()
	}
	hists := make(map[string]HistogramSnapshot, len(reg.hists))
	for k, h := range reg.hists {
		hists[k] = h.snapshot()
	}
	reg.mu.Unlock()

	for _, k := range sortedKeys(counters) {
		name := promName(k)
		fmt.Fprintf(w, "# TYPE %s_total counter\n%s_total %d\n", name, name, counters[k])
	}
	for _, k := range sortedKeys(gauges) {
		name := promName(k)
		fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", name, name, gauges[k])
	}
	for _, k := range sortedKeys(hists) {
		name := promName(k)
		snap := hists[k]
		fmt.Fprintf(w, "# TYPE %s histogram\n", name)
		// Registry buckets hold per-bucket counts; Prometheus buckets are
		// cumulative.
		var cum int64
		for _, b := range snap.Buckets {
			cum += b.Count
			fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", name, b.UpperBound, cum)
		}
		fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, snap.Count)
		fmt.Fprintf(w, "%s_sum %d\n%s_count %d\n", name, snap.Sum, name, snap.Count)
	}
}

// MetricsHandler serves the metric registry in Prometheus text
// exposition format.
func MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		var b strings.Builder
		writeMetrics(&b)
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		fmt.Fprint(w, b.String())
	})
}

// SnapshotHandler serves the full registry snapshot — span tree,
// metrics, event timeline — as indented JSON.
func SnapshotHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		b, err := json.MarshalIndent(TakeSnapshot(), "", "  ")
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(append(b, '\n'))
	})
}

// defaultMuxOnce guards registration on http.DefaultServeMux, which
// panics on duplicate patterns (RegisterHTTP may be reached repeatedly
// by in-process tests of the cmd binaries).
var defaultMuxOnce sync.Once

// RegisterHTTP registers /metrics, /snapshot and /debug/requests on mux;
// nil selects http.DefaultServeMux (where net/http/pprof also registers,
// so one -pprof listener serves profiles, metrics, snapshots and the
// request inspector together).
func RegisterHTTP(mux *http.ServeMux) {
	if mux == nil {
		defaultMuxOnce.Do(func() {
			http.Handle("/metrics", MetricsHandler())
			http.Handle("/snapshot", SnapshotHandler())
			http.Handle("/debug/requests", RequestsHandler())
		})
		return
	}
	mux.Handle("/metrics", MetricsHandler())
	mux.Handle("/snapshot", SnapshotHandler())
	mux.Handle("/debug/requests", RequestsHandler())
}
