package fault

import (
	"testing"

	"repro/internal/circuitgen"
	"repro/internal/netlist"
)

func TestATPGTopUpImprovesCoverage(t *testing.T) {
	// A design with guarded funnels: random patterns plateau below full
	// coverage; PODEM must close most of the gap.
	n := circuitgen.Generate("atpg", circuitgen.Config{
		Seed: 17, NumGates: 2000, ShadowFunnels: 8, ShadowGuard: 4,
	})
	random := GenerateTests(n, TPGConfig{MaxPatterns: 1024, Seed: 3})
	combined := GenerateTestsWithATPG(n, ATPGConfig{
		Random:         TPGConfig{MaxPatterns: 1024, Seed: 3},
		BacktrackLimit: 2000,
	})
	if combined.Coverage <= random.Coverage {
		t.Errorf("deterministic top-up did not improve coverage: %.4f -> %.4f",
			random.Coverage, combined.Coverage)
	}
	if combined.TestCoverage < combined.Coverage {
		t.Errorf("test coverage %.4f below raw coverage %.4f",
			combined.TestCoverage, combined.Coverage)
	}
	if combined.TestCoverage < 0.995 {
		t.Errorf("testable coverage after ATPG = %.4f, want ≈ 1 (aborted=%d)",
			combined.TestCoverage, combined.Aborted)
	}
	if combined.PatternsUsed < random.PatternsUsed {
		t.Errorf("combined pattern count %d below random-only %d",
			combined.PatternsUsed, random.PatternsUsed)
	}
	t.Logf("random %.4f -> combined %.4f (det patterns %d, untestable %d, aborted %d)",
		random.Coverage, combined.Coverage, combined.DeterministicPatterns,
		combined.ProvedUntestable, combined.Aborted)
}

func TestATPGFindsRedundancy(t *testing.T) {
	// OR(a, NOT(a)) is constant-1: its s-a-1 is redundant and must be
	// proved untestable rather than dragging coverage down.
	n := netlist.New("red")
	a := n.MustAddGate(netlist.Input, "a")
	inv := n.MustAddGate(netlist.Not, "inv", a)
	z := n.MustAddGate(netlist.Or, "z", a, inv)
	n.MustAddGate(netlist.Output, "po", z)
	res := GenerateTestsWithATPG(n, ATPGConfig{
		Random: TPGConfig{MaxPatterns: 256, Seed: 1, StallWords: 2},
	})
	if res.ProvedUntestable == 0 {
		t.Errorf("redundant fault not proved: %+v", res)
	}
	if res.TestCoverage != 1 {
		t.Errorf("test coverage = %v, want 1 once redundancy is excluded", res.TestCoverage)
	}
}

func TestATPGDeterministic(t *testing.T) {
	n := circuitgen.Generate("det", circuitgen.Config{Seed: 18, NumGates: 800, ShadowFunnels: 4})
	a := GenerateTestsWithATPG(n, ATPGConfig{Random: TPGConfig{MaxPatterns: 512, Seed: 5}})
	b := GenerateTestsWithATPG(n, ATPGConfig{Random: TPGConfig{MaxPatterns: 512, Seed: 5}})
	if a.Detected != b.Detected || a.PatternsUsed != b.PatternsUsed ||
		a.ProvedUntestable != b.ProvedUntestable {
		t.Errorf("nondeterministic ATPG: %+v vs %+v", a, b)
	}
}

func TestATPGMaxTargets(t *testing.T) {
	n := circuitgen.Generate("cap", circuitgen.Config{
		Seed: 19, NumGates: 1500, ShadowFunnels: 10, ShadowGuard: 5,
	})
	capped := GenerateTestsWithATPG(n, ATPGConfig{
		Random:     TPGConfig{MaxPatterns: 256, Seed: 7, StallWords: 2},
		MaxTargets: 3,
	})
	uncapped := GenerateTestsWithATPG(n, ATPGConfig{
		Random: TPGConfig{MaxPatterns: 256, Seed: 7, StallWords: 2},
	})
	if capped.Detected > uncapped.Detected {
		t.Errorf("capped run detected more (%d) than uncapped (%d)",
			capped.Detected, uncapped.Detected)
	}
}
