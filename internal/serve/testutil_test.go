package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/netlist"
	"repro/internal/obs"
	"repro/internal/opi"
	"repro/internal/scoap"
)

func TestMain(m *testing.M) {
	// Serve metrics are part of the behavior under test (coalescing and
	// collision counters); they are no-ops unless instrumentation is on.
	obs.Enable()
	os.Exit(m.Run())
}

// tinyBench is a 5-cell design used across the handler tests:
// ids a=0, b=1, g1=2, g2=3, output sink=4.
const tinyBench = `# tiny
INPUT(a)
INPUT(b)
g1 = NAND(a, b)
g2 = AND(g1, b)
OUTPUT(g2)
`

// otherBench differs from tinyBench in structure, for cache-collision
// and eviction tests.
const otherBench = `# other
INPUT(p)
INPUT(q)
h1 = OR(p, q)
h2 = XOR(h1, p)
OUTPUT(h2)
`

const thirdBench = `# third
INPUT(x)
h = NOT(x)
OUTPUT(h)
`

// stubScore is the deterministic per-node score of the stub predictor:
// a hash-like function of the node's attribute row, so scores move when
// attributes change (observation points lower observability) and new
// nodes get scores of their own.
func stubScore(g *core.Graph, v int) float64 {
	row := g.X.Row(v)
	s := float64(v) * 0.0137
	for j, x := range row {
		s += x * (0.11*float64(j) + 0.07)
	}
	return math.Mod(s, 1)
}

// stubPredictor is a fast, deterministic IncrementalPredictor for
// handler tests. It is safe for concurrent use (ClonePredictor passes it
// through unchanged). forwards counts NewIncremental calls — the
// "expensive full forward" the batcher and cache exist to avoid.
type stubPredictor struct {
	forwards atomic.Int64
	started  chan struct{} // if non-nil, receives one value per forward entry
	release  chan struct{} // if non-nil, forwards block until closed
}

func (p *stubPredictor) PredictProbs(g *core.Graph) []float64 {
	out := make([]float64, g.N)
	for v := range out {
		out[v] = stubScore(g, v)
	}
	return out
}

func (p *stubPredictor) NewIncremental(g *core.Graph) core.IncrementalRun {
	p.forwards.Add(1)
	if p.started != nil {
		p.started <- struct{}{}
	}
	if p.release != nil {
		<-p.release
	}
	return &stubRun{p: p, probs: p.PredictProbs(g)}
}

type stubRun struct {
	p     *stubPredictor
	probs []float64
}

func (r *stubRun) Probs() []float64 { return r.probs }

func (r *stubRun) Update(g *core.Graph, dirty []int32) {
	r.probs = r.p.PredictProbs(g)
}

// newTestServer builds a Server plus an httptest front end.
func newTestServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// postJSON posts a JSON body and returns status plus decoded response.
func postJSON(t *testing.T, url string, body any, out any) int {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			t.Fatalf("decode %q: %v", strings.TrimSpace(string(data)), err)
		}
	}
	return resp.StatusCode
}

// expectedScores computes what the stub predictor should return for a
// netlist by running the same compile pipeline directly.
func expectedScores(t *testing.T, benchText string) []float64 {
	t.Helper()
	n, err := netlist.Read(strings.NewReader(benchText))
	if err != nil {
		t.Fatal(err)
	}
	g := core.FromNetlist(n, scoap.Compute(n))
	return (&stubPredictor{}).PredictProbs(g)
}

// compileForTest runs the compile pipeline on netlist text.
func compileForTest(t *testing.T, benchText string) (*netlist.Netlist, *scoap.Measures, *core.Graph) {
	t.Helper()
	n, err := netlist.Read(strings.NewReader(benchText))
	if err != nil {
		t.Fatal(err)
	}
	meas := scoap.Compute(n)
	return n, meas, core.FromNetlist(n, meas)
}

// insertForTest applies one observation point with the same incremental
// recipe the delta handler uses.
func insertForTest(n *netlist.Netlist, meas *scoap.Measures, g *core.Graph, target int32) (int32, []int32, error) {
	lv := append([]int32(nil), n.Levels()...)
	return opi.InsertAndRefresh(n, meas, g, target, lv)
}

// errCategory extracts the error envelope category from a raw response.
func errCategory(t *testing.T, resp *http.Response) string {
	t.Helper()
	defer resp.Body.Close()
	var e ErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatalf("decode error envelope: %v", err)
	}
	return e.Error.Category
}
