package opi

import (
	"testing"

	"repro/internal/circuitgen"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/netlist"
	"repro/internal/scoap"
)

// scoapOracle is a perfect SCOAP-threshold predictor: positive iff the
// node's transformed observability attribute exceeds a cut. It lets the
// flow tests exercise the full predict→impact→insert→update loop without
// training a model: insertions lower cone observability, so positive
// predictions shrink and the flow terminates.
type scoapOracle struct {
	cut float64
}

func (o scoapOracle) PredictProbs(g *core.Graph) []float64 {
	out := make([]float64, g.N)
	for v := 0; v < g.N; v++ {
		if g.X.At(v, 3) > o.cut {
			out[v] = 1
		}
	}
	return out
}

func buildBench(t testing.TB, seed int64, gates int) (*netlist.Netlist, *scoap.Measures, *core.Graph) {
	t.Helper()
	n := circuitgen.Generate("opi", circuitgen.Config{Seed: seed, NumGates: gates, ShadowFunnels: 8, ShadowGuard: 4})
	m := scoap.Compute(n)
	g := core.FromNetlist(n, m)
	return n, m, g
}

// oracleCut picks a cut such that a small fraction of nodes are positive.
func oracleCut(g *core.Graph, frac float64) float64 {
	vals := append([]float64(nil), make([]float64, 0, g.N)...)
	for v := 0; v < g.N; v++ {
		vals = append(vals, g.X.At(v, 3))
	}
	// selection by sorting
	for i := 1; i < len(vals); i++ {
		for j := i; j > 0 && vals[j] < vals[j-1]; j-- {
			vals[j], vals[j-1] = vals[j-1], vals[j]
		}
	}
	idx := int((1 - frac) * float64(len(vals)-1))
	return vals[idx]
}

func TestRunFlowTerminatesAndClearsPositives(t *testing.T) {
	n, m, g := buildBench(t, 1, 1200)
	oracle := scoapOracle{cut: oracleCut(g, 0.03)}
	res := RunFlow(n, m, g, oracle, FlowConfig{PerIteration: 16})
	if res.FinalPositives != 0 {
		t.Errorf("flow left %d positives after %d iterations", res.FinalPositives, res.Iterations)
	}
	if len(res.Targets) == 0 {
		t.Fatal("flow inserted nothing")
	}
	if got := n.CountType(netlist.Obs); got != len(res.Targets) {
		t.Errorf("netlist has %d OPs, result lists %d", got, len(res.Targets))
	}
	if err := n.Validate(); err != nil {
		t.Fatalf("netlist invalid after flow: %v", err)
	}
	// Graph and netlist stayed in sync.
	if g.N != n.NumGates() {
		t.Errorf("graph N=%d, netlist=%d", g.N, n.NumGates())
	}
	// Incremental measures must match a full recompute.
	full := scoap.Compute(n)
	for v := int32(0); v < int32(n.NumGates()); v++ {
		if m.CO[v] != full.CO[v] {
			t.Fatalf("node %d: incremental CO %d != full %d", v, m.CO[v], full.CO[v])
		}
	}
}

func TestRunFlowRespectsMaxInsertions(t *testing.T) {
	n, m, g := buildBench(t, 2, 1200)
	oracle := scoapOracle{cut: oracleCut(g, 0.05)}
	res := RunFlow(n, m, g, oracle, FlowConfig{PerIteration: 8, MaxInsertions: 10})
	if len(res.Targets) > 10 {
		t.Errorf("inserted %d OPs, cap was 10", len(res.Targets))
	}
}

func TestImpactSelectionPrefersConeRoots(t *testing.T) {
	// Chain a->b->c (all "positive"): the impact of c (cone covers a, b)
	// must outrank a, so the first insertion lands at c.
	n := netlist.New("chain")
	pi := n.MustAddGate(netlist.Input, "pi")
	a := n.MustAddGate(netlist.Buf, "a", pi)
	b := n.MustAddGate(netlist.Buf, "b", a)
	c := n.MustAddGate(netlist.Buf, "c", b)
	n.MustAddGate(netlist.Output, "po", c)
	positives := map[int32]bool{a: true, b: true, c: true}
	sel := selectByImpact(n, positives, FlowConfig{}.withDefaults())
	if len(sel) != 1 || sel[0] != c {
		t.Errorf("selected %v, want [%d] (cone root only)", sel, c)
	}
}

func TestIndustrialBaselineClearsThreshold(t *testing.T) {
	n, m, _ := buildBench(t, 3, 1200)
	// Pick a threshold that leaves some difficult nodes.
	cut := CalibrateCOThreshold(m, syntheticLabels(n, m), 0.1)
	targets := IndustrialBaseline(n, m, BaselineConfig{COThreshold: cut, PerIteration: 16})
	if len(targets) == 0 {
		t.Skip("no nodes above threshold on this seed")
	}
	for v := int32(0); v < int32(n.NumGates()); v++ {
		if !insertable(n, v) {
			continue
		}
		if m.CO[v] > cut && !observedSet(n)[v] {
			t.Fatalf("node %d still difficult (CO %d > %d)", v, m.CO[v], cut)
		}
	}
	full := scoap.Compute(n)
	for v := int32(0); v < int32(n.NumGates()); v++ {
		if m.CO[v] != full.CO[v] {
			t.Fatalf("node %d: incremental CO %d != full %d", v, m.CO[v], full.CO[v])
		}
	}
}

// syntheticLabels labels the worst 2% of nodes by CO as positive; enough
// for calibration tests.
func syntheticLabels(n *netlist.Netlist, m *scoap.Measures) []int {
	labels := make([]int, n.NumGates())
	cut := CalibrateCOThreshold(m, allOnes(n.NumGates()), 0.98)
	for v := range labels {
		if m.CO[v] > cut && insertable(n, int32(v)) {
			labels[v] = 1
		}
	}
	return labels
}

func allOnes(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = 1
	}
	return out
}

func TestFlowBeatsBaselineOnOPCount(t *testing.T) {
	// Same difficulty criterion for both flows; the impact-ranked flow
	// must reach "no difficult nodes" with no more observation points
	// than worst-first insertion — the Table 3 #OPs story.
	nA, mA, gA := buildBench(t, 5, 2500)
	cut := oracleCut(gA, 0.03)
	flowRes := RunFlow(nA, mA, gA, scoapOracle{cut: cut}, FlowConfig{PerIteration: 16})

	nB, mB, gB := buildBench(t, 5, 2500)
	// Same cut expressed on raw CO for the baseline: the oracle compares
	// log1p(CO) > cut  ⇔  CO > expm1(cut).
	rawCut := int32(expm1(cut))
	_ = gB
	baseRes := IndustrialBaseline(nB, mB, BaselineConfig{COThreshold: rawCut, PerIteration: 16})

	if len(flowRes.Targets) == 0 || len(baseRes) == 0 {
		t.Skip("no difficult nodes on this seed")
	}
	t.Logf("flow OPs = %d, baseline OPs = %d", len(flowRes.Targets), len(baseRes))
	if len(flowRes.Targets) > len(baseRes) {
		t.Errorf("impact flow used more OPs (%d) than the baseline (%d)",
			len(flowRes.Targets), len(baseRes))
	}
}

func expm1(x float64) float64 {
	// local helper to avoid importing math for one call
	e := 1.0
	term := 1.0
	for i := 1; i < 20; i++ {
		term *= x / float64(i)
		e += term
	}
	return e - 1
}

func TestEvaluateCountsOPs(t *testing.T) {
	n, m, g := buildBench(t, 7, 800)
	oracle := scoapOracle{cut: oracleCut(g, 0.02)}
	RunFlow(n, m, g, oracle, FlowConfig{PerIteration: 8})
	ev := Evaluate(n, fault.TPGConfig{MaxPatterns: 2048, Seed: 1})
	if ev.OPs != n.CountType(netlist.Obs) {
		t.Errorf("evaluation OPs = %d, netlist has %d", ev.OPs, n.CountType(netlist.Obs))
	}
	if ev.Coverage <= 0 || ev.Coverage > 1 {
		t.Errorf("coverage = %v", ev.Coverage)
	}
	if ev.Patterns <= 0 {
		t.Errorf("patterns = %d", ev.Patterns)
	}
}

func TestCalibrateCOThreshold(t *testing.T) {
	n, m, _ := buildBench(t, 9, 600)
	labels := syntheticLabels(n, m)
	cut := CalibrateCOThreshold(m, labels, 0.1)
	// At q=0.1, ~90% of positives must lie above the threshold.
	above, total := 0, 0
	for v, l := range labels {
		if l == 1 {
			total++
			if m.CO[v] > cut {
				above++
			}
		}
	}
	if total == 0 {
		t.Skip("no positives")
	}
	// Ties at the quantile value can push extra positives to the cut itself,
	// so allow slack below the nominal 90%.
	if frac := float64(above) / float64(total); frac < 0.6 {
		t.Errorf("only %.2f of positives above calibrated threshold", frac)
	}
	// Empty labels fall back to a huge threshold.
	if CalibrateCOThreshold(m, make([]int, n.NumGates()), 0.1) != 1<<20 {
		t.Error("empty calibration should return sentinel")
	}
}

func TestCalibrateCOThresholdClampsQuantile(t *testing.T) {
	// q outside [0,1] used to index out of range (q>1 panics, q<0
	// indexes negatively); both must clamp to the boundary quantiles.
	n, m, _ := buildBench(t, 9, 600)
	labels := syntheticLabels(n, m)
	lo := CalibrateCOThreshold(m, labels, 0)
	hi := CalibrateCOThreshold(m, labels, 1)
	if got := CalibrateCOThreshold(m, labels, -0.5); got != lo {
		t.Errorf("q=-0.5 -> %d, want the q=0 threshold %d", got, lo)
	}
	if got := CalibrateCOThreshold(m, labels, 1.5); got != hi {
		t.Errorf("q=1.5 -> %d, want the q=1 threshold %d", got, hi)
	}
}

func TestObservedSetSkipsFaninlessObs(t *testing.T) {
	// A malformed netlist can carry an Obs cell with no fanin; observedSet
	// used to panic on Fanin(op)[0].
	n := netlist.New("malformed")
	pi := n.MustAddGate(netlist.Input, "pi")
	b := n.MustAddGate(netlist.Buf, "b", pi)
	n.MustAddGate(netlist.Output, "po", b)
	op, err := n.InsertObservationPoint(b)
	if err != nil {
		t.Fatal(err)
	}
	n.Gate(op).Fanin = nil // simulate the malformed input
	got := observedSet(n)
	if len(got) != 0 {
		t.Errorf("fanin-less Obs cell observed %v, want nothing", got)
	}
}
