package netlist

import (
	"strings"
	"testing"
)

func TestIDByName(t *testing.T) {
	n, ids := buildC17(t)
	id, ok := n.IDByName("16")
	if !ok || id != ids["16"] {
		t.Errorf("IDByName(16) = %d, %v", id, ok)
	}
	if _, ok := n.IDByName("nope"); ok {
		t.Error("IDByName should miss unknown names")
	}
	// The index refreshes after mutation.
	op, err := n.InsertObservationPoint(ids["11"])
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := n.IDByName("op_" + itoa(ids["11"])); !ok || got != op {
		t.Errorf("IDByName(op) = %d, %v", got, ok)
	}
}

func itoa(v int32) string {
	if v == 0 {
		return "0"
	}
	var b [12]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}

func TestFlipFlopsAccessor(t *testing.T) {
	n := New("ff")
	a := n.MustAddGate(Input, "a")
	q1 := n.MustAddGate(DFF, "q1", a)
	q2 := n.MustAddGate(DFF, "q2", q1)
	n.MustAddGate(Output, "po", q2)
	ffs := n.FlipFlops()
	if len(ffs) != 2 || ffs[0] != q1 || ffs[1] != q2 {
		t.Errorf("FlipFlops = %v", ffs)
	}
}

func TestDeepChainParse(t *testing.T) {
	// A 5000-deep inverter chain exercises the reader's recursive
	// construction depth.
	var sb strings.Builder
	sb.WriteString("INPUT(n0)\n")
	for i := 1; i <= 5000; i++ {
		sb.WriteString("n")
		sb.WriteString(itoa(int32(i)))
		sb.WriteString(" = NOT(n")
		sb.WriteString(itoa(int32(i - 1)))
		sb.WriteString(")\n")
	}
	sb.WriteString("OUTPUT(n5000)\n")
	n, err := Read(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if n.NumGates() != 5002 {
		t.Fatalf("gates = %d", n.NumGates())
	}
	if n.MaxLevel() != 5001 { // 5000 inverters + the PO sink
		t.Errorf("depth = %d", n.MaxLevel())
	}
}

func TestWriteNamesCollide(t *testing.T) {
	// Two gates sharing a name must still round-trip (the writer
	// deduplicates).
	n := New("dup")
	a := n.MustAddGate(Input, "x")
	b := n.MustAddGate(Buf, "x", a) // duplicate name on purpose
	n.MustAddGate(Output, "po", b)
	var sb strings.Builder
	if err := Write(&sb, n); err != nil {
		t.Fatal(err)
	}
	m, err := Read(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if m.NumGates() != n.NumGates() {
		t.Errorf("round trip lost gates: %d vs %d", m.NumGates(), n.NumGates())
	}
}

func TestStatsObsCount(t *testing.T) {
	n, ids := buildC17(t)
	n.MustAddGate(Obs, "", ids["10"])
	s := n.ComputeStats()
	if s.Obs != 1 {
		t.Errorf("stats Obs = %d", s.Obs)
	}
}

func TestFanoutConeLimit(t *testing.T) {
	n, ids := buildC17(t)
	fc := n.FanoutCone(ids["3"], 2)
	if len(fc) != 2 {
		t.Errorf("limited fanout cone = %v", fc)
	}
}
