// Package partition shards a GCN-ready netlist graph for parallel
// inference, the scale story of the paper's Section 4 experiments: the
// industrial designs it reports on (~1.4M nodes) do not fit a
// single-shot forward pass comfortably, so the graph is split into K
// shards, each extended with a halo sized to the model's receptive
// field (D undirected hops for a depth-D GCN), and the shards run on a
// reused worker pool. Because every kernel in the forward path is
// row-independent, the stitched result is bit-identical (float64) to
// the whole-graph Forward — verified exhaustively by the refcheck
// differential suite.
//
// Two partitioning strategies are provided behind a typed option:
// LevelBand (the default: cut the structural-level-sorted node order
// into K equal bands, which keeps most edges shard-internal because
// netlist edges connect adjacent levels) and FanoutCone (cluster nodes
// by the output cone they feed, GROOT-style). Two execution modes
// trade communication for redundant compute: Exchange refreshes 1-hop
// halo embeddings between layers, OneShot ships the full D-hop halo
// once and recomputes shrinking halo rings locally with no inter-layer
// communication.
package partition

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/obs"
)

// Hot-path metrics (no-ops until obs.Enable; see docs/OBSERVABILITY.md).
var (
	partitionBuilds    = obs.GetCounter("partition.builds")
	partitionHaloNodes = obs.GetCounter("partition.halo_nodes")
	shardedInferences  = obs.GetCounter("partition.sharded_inferences")
	exchangedRows      = obs.GetCounter("partition.exchanged_rows")
)

// Strategy selects how nodes are assigned to shard interiors.
type Strategy int

const (
	// LevelBand sorts nodes by (structural level, id) and cuts the
	// order into K equal-count contiguous bands. Netlist edges connect
	// nearby levels, so bands keep most edges internal and the halo
	// stays thin.
	LevelBand Strategy = iota
	// FanoutCone assigns each sink (no-successor node) to a shard
	// round-robin and every other node to the shard of its lowest-id
	// successor, clustering logic cones that feed the same outputs.
	FanoutCone
)

// String names the strategy for errors and logs.
func (s Strategy) String() string {
	switch s {
	case LevelBand:
		return "level-band"
	case FanoutCone:
		return "fanout-cone"
	default:
		return fmt.Sprintf("strategy(%d)", int(s))
	}
}

// Mode selects how the sharded executor covers the receptive field.
type Mode int

const (
	// Exchange computes only interior rows each layer and copies the
	// 1-hop halo embeddings from their owner shards between layers
	// (one barrier per layer).
	Exchange Mode = iota
	// OneShot computes the shrinking halo rings redundantly — layer d
	// evaluates interior plus rings 1..D-d — so shards never
	// communicate after the initial attribute scatter.
	OneShot
)

// String names the mode for errors and logs.
func (m Mode) String() string {
	switch m {
	case Exchange:
		return "exchange"
	case OneShot:
		return "one-shot"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// Options configures both the partitioner (New) and the sharded
// executor (NewSharded).
type Options struct {
	// K is the shard count; shards with empty interiors are legal
	// (K may exceed the node or level count).
	K int
	// Halo is the halo depth in undirected hops. NewSharded defaults
	// it to the base model's depth D and rejects smaller values; New
	// accepts any Halo >= 0.
	Halo int
	// Strategy selects interior assignment (default LevelBand).
	Strategy Strategy
	// Mode selects the executor's halo scheme (default Exchange).
	// The partitioner itself ignores it.
	Mode Mode
	// Workers sizes the executor's goroutine pool; <= 0 selects
	// GOMAXPROCS. Deliberately not clamped to NumCPU: the bench
	// matrix measures worker scaling by varying GOMAXPROCS, and a
	// clamp would silently flatten the matrix. The partitioner
	// itself ignores it.
	Workers int
}

func (o Options) validate() error {
	if o.K <= 0 {
		return fmt.Errorf("partition: K must be positive, got %d", o.K)
	}
	if o.Halo < 0 {
		return fmt.Errorf("partition: negative halo depth %d", o.Halo)
	}
	if o.Strategy != LevelBand && o.Strategy != FanoutCone {
		return fmt.Errorf("partition: unknown strategy %v", o.Strategy)
	}
	if o.Mode != Exchange && o.Mode != OneShot {
		return fmt.Errorf("partition: unknown mode %v", o.Mode)
	}
	return nil
}

// Shard is one piece of a Partition: the interior nodes it owns plus
// halo rings at exact undirected distances 1..Halo from the interior.
// All slices are sorted ascending by node id.
type Shard struct {
	// Interior holds the nodes this shard owns; every node belongs to
	// exactly one shard's interior.
	Interior []int32
	// Rings[h-1] holds the nodes at exact undirected distance h from
	// the interior (the halo). Rings of one shard are pairwise
	// disjoint and disjoint from its interior; different shards'
	// rings may overlap.
	Rings [][]int32
}

// HaloSize returns the total node count across all rings.
func (s *Shard) HaloSize() int {
	total := 0
	for _, r := range s.Rings {
		total += len(r)
	}
	return total
}

// Partition is a K-way split of a graph with per-shard halos.
type Partition struct {
	// K is the shard count; len(Shards) == K.
	K int
	// Halo is the ring depth each shard carries.
	Halo int
	// Strategy records how interiors were assigned.
	Strategy Strategy
	// Owner maps node id -> owning shard index.
	Owner []int32
	// Shards holds the per-shard interiors and halo rings.
	Shards []*Shard
}

// New partitions g into opt.K shards with opt.Halo halo rings using
// opt.Strategy. The result is deterministic: the same graph and
// options always produce the same partition. Graphs built through the
// core API have topologically ordered ids (every edge u→v has u < v);
// New reports an error if that invariant is broken.
func New(g *core.Graph, opt Options) (*Partition, error) {
	if g == nil {
		return nil, fmt.Errorf("partition: nil graph")
	}
	if err := opt.validate(); err != nil {
		return nil, err
	}
	var owner []int32
	var err error
	switch opt.Strategy {
	case LevelBand:
		owner, err = levelBandOwners(g, opt.K)
	case FanoutCone:
		owner, err = fanoutConeOwners(g, opt.K)
	}
	if err != nil {
		return nil, err
	}

	p := &Partition{K: opt.K, Halo: opt.Halo, Strategy: opt.Strategy, Owner: owner}
	interiors := make([][]int32, opt.K)
	for v := int32(0); v < int32(g.N); v++ {
		interiors[owner[v]] = append(interiors[owner[v]], v)
	}
	// Undirected BFS from each interior, one exact-distance ring per
	// hop. The epoch-stamped mark array is shared across shards so a
	// K-way partition of a large graph allocates one scratch slice.
	mark := make([]int32, g.N)
	epoch := int32(0)
	haloTotal := 0
	for k := 0; k < opt.K; k++ {
		sh := &Shard{Interior: interiors[k]}
		epoch++
		for _, v := range sh.Interior {
			mark[v] = epoch
		}
		frontier := sh.Interior
		for h := 0; h < opt.Halo; h++ {
			var ring []int32
			for _, v := range frontier {
				for _, u := range g.PredList(v) {
					if mark[u] != epoch {
						mark[u] = epoch
						ring = append(ring, u)
					}
				}
				for _, u := range g.SuccList(v) {
					if mark[u] != epoch {
						mark[u] = epoch
						ring = append(ring, u)
					}
				}
			}
			sort.Slice(ring, func(i, j int) bool { return ring[i] < ring[j] })
			sh.Rings = append(sh.Rings, ring)
			frontier = ring
		}
		haloTotal += sh.HaloSize()
		p.Shards = append(p.Shards, sh)
	}
	partitionBuilds.Inc()
	partitionHaloNodes.Add(int64(haloTotal))
	return p, nil
}

// topoLevels computes each node's structural level (longest path from
// any source), validating that ids are topologically ordered.
func topoLevels(g *core.Graph) ([]int32, error) {
	lv := make([]int32, g.N)
	for v := int32(0); v < int32(g.N); v++ {
		best := int32(-1)
		for _, u := range g.PredList(v) {
			if u >= v {
				return nil, fmt.Errorf("partition: edge %d→%d violates topological id order", u, v)
			}
			if lv[u] > best {
				best = lv[u]
			}
		}
		lv[v] = best + 1
	}
	return lv, nil
}

// levelBandOwners cuts the (level, id)-sorted node order into K
// equal-count contiguous bands.
func levelBandOwners(g *core.Graph, k int) ([]int32, error) {
	lv, err := topoLevels(g)
	if err != nil {
		return nil, err
	}
	maxLv := int32(0)
	for _, l := range lv {
		if l > maxLv {
			maxLv = l
		}
	}
	// Counting sort by level; ids ascend within a level because nodes
	// are visited in id order, making the order (level, id).
	counts := make([]int32, maxLv+2)
	for _, l := range lv {
		counts[l+1]++
	}
	for i := int32(1); i <= maxLv+1; i++ {
		counts[i] += counts[i-1]
	}
	order := make([]int32, g.N)
	for v := int32(0); v < int32(g.N); v++ {
		order[counts[lv[v]]] = v
		counts[lv[v]]++
	}
	owner := make([]int32, g.N)
	base, rem := g.N/k, g.N%k
	pos := 0
	for s := 0; s < k; s++ {
		size := base
		if s < rem {
			size++
		}
		for i := 0; i < size; i++ {
			owner[order[pos]] = int32(s)
			pos++
		}
	}
	return owner, nil
}

// fanoutConeOwners assigns sinks round-robin and every other node to
// its lowest-id successor's shard. Edges always point from lower to
// higher ids, so a reverse-id sweep sees every node's successors
// already assigned.
func fanoutConeOwners(g *core.Graph, k int) ([]int32, error) {
	if _, err := topoLevels(g); err != nil {
		return nil, err
	}
	owner := make([]int32, g.N)
	for i := range owner {
		owner[i] = -1
	}
	sinks := 0
	for v := int32(0); v < int32(g.N); v++ {
		if len(g.SuccList(v)) == 0 {
			owner[v] = int32(sinks % k)
			sinks++
		}
	}
	for v := int32(g.N) - 1; v >= 0; v-- {
		if owner[v] >= 0 {
			continue
		}
		succ := g.SuccList(v)
		owner[v] = owner[succ[0]]
	}
	return owner, nil
}

// Validate checks the partition invariants against the graph it was
// built from: interiors sorted, pairwise disjoint, and covering every
// node consistently with Owner; rings sorted, disjoint from the
// interior and each other, with every ring-h node adjacent to ring
// h-1 (undirected) and the halo closed under adjacency up to depth
// Halo — which by induction puts every interior node's Halo-hop
// fan-in/fan-out inside interior∪rings. Intended for tests and
// fuzzing; cost is O(Halo·E).
func (p *Partition) Validate(g *core.Graph) error {
	if len(p.Owner) != g.N {
		return fmt.Errorf("partition: Owner covers %d of %d nodes", len(p.Owner), g.N)
	}
	if len(p.Shards) != p.K {
		return fmt.Errorf("partition: %d shards for K=%d", len(p.Shards), p.K)
	}
	seen := make([]bool, g.N)
	for k, sh := range p.Shards {
		for i, v := range sh.Interior {
			if i > 0 && sh.Interior[i-1] >= v {
				return fmt.Errorf("partition: shard %d interior not sorted at %d", k, v)
			}
			if v < 0 || int(v) >= g.N {
				return fmt.Errorf("partition: shard %d interior node %d out of range", k, v)
			}
			if seen[v] {
				return fmt.Errorf("partition: node %d in two interiors", v)
			}
			seen[v] = true
			if p.Owner[v] != int32(k) {
				return fmt.Errorf("partition: node %d in shard %d interior but Owner says %d", v, k, p.Owner[v])
			}
		}
	}
	for v, ok := range seen {
		if !ok {
			return fmt.Errorf("partition: node %d not covered by any interior", v)
		}
	}
	// dist[v] = hop distance from the interior under validation:
	// 0 for interior, h for ring h, -1 for absent.
	dist := make([]int32, g.N)
	for k, sh := range p.Shards {
		if len(sh.Rings) != p.Halo {
			return fmt.Errorf("partition: shard %d has %d rings, want %d", k, len(sh.Rings), p.Halo)
		}
		for i := range dist {
			dist[i] = -1
		}
		for _, v := range sh.Interior {
			dist[v] = 0
		}
		for h, ring := range sh.Rings {
			for i, v := range ring {
				if i > 0 && ring[i-1] >= v {
					return fmt.Errorf("partition: shard %d ring %d not sorted at %d", k, h+1, v)
				}
				if v < 0 || int(v) >= g.N {
					return fmt.Errorf("partition: shard %d ring %d node %d out of range", k, h+1, v)
				}
				if dist[v] >= 0 {
					return fmt.Errorf("partition: shard %d node %d at distance %d reappears in ring %d",
						k, v, dist[v], h+1)
				}
				dist[v] = int32(h + 1)
			}
		}
		// Adjacency closure: a neighbor of a node at distance d must be
		// at distance <= d+1; for d < Halo it must be present at all.
		// Ring exactness: every ring-(h+1) node needs a distance-h
		// neighbor (otherwise it is farther than its ring claims).
		check := func(v, u int32) error {
			if dist[u] < 0 {
				if int(dist[v]) < p.Halo {
					return fmt.Errorf("partition: shard %d misses node %d, neighbor of %d at distance %d",
						k, u, v, dist[v])
				}
				return nil
			}
			if dist[u] > dist[v]+1 {
				return fmt.Errorf("partition: shard %d nodes %d,%d adjacent but distances %d,%d",
					k, v, u, dist[v], dist[u])
			}
			return nil
		}
		members := [][]int32{sh.Interior}
		members = append(members, sh.Rings...)
		for _, set := range members {
			for _, v := range set {
				for _, u := range g.PredList(v) {
					if err := check(v, u); err != nil {
						return err
					}
				}
				for _, u := range g.SuccList(v) {
					if err := check(v, u); err != nil {
						return err
					}
				}
			}
		}
		for h, ring := range sh.Rings {
			for _, v := range ring {
				near := false
				for _, u := range g.PredList(v) {
					if dist[u] == int32(h) {
						near = true
						break
					}
				}
				if !near {
					for _, u := range g.SuccList(v) {
						if dist[u] == int32(h) {
							near = true
							break
						}
					}
				}
				if !near {
					return fmt.Errorf("partition: shard %d ring %d node %d has no distance-%d neighbor",
						k, h+1, v, h)
				}
			}
		}
	}
	return nil
}
