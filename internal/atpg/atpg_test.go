package atpg

import (
	"testing"

	"repro/internal/circuitgen"
	"repro/internal/netlist"
)

// simulateWithFault evaluates the netlist under a full binary pattern,
// optionally injecting a stuck-at fault, and returns the values observed
// at all observation sinks (POs, OPs, scan flop inputs).
func simulateWithFault(n *netlist.Netlist, pattern map[int32]Value, f *Fault) []bool {
	vals := make([]bool, n.NumGates())
	for _, id := range n.TopoOrder() {
		g := n.Gate(id)
		switch g.Type {
		case netlist.Input, netlist.DFF:
			vals[id] = pattern[id] == One
		case netlist.Output, netlist.Obs, netlist.Buf:
			vals[id] = vals[g.Fanin[0]]
		case netlist.Not:
			vals[id] = !vals[g.Fanin[0]]
		case netlist.And, netlist.Nand:
			v := true
			for _, fin := range g.Fanin {
				v = v && vals[fin]
			}
			vals[id] = v != (g.Type == netlist.Nand)
		case netlist.Or, netlist.Nor:
			v := false
			for _, fin := range g.Fanin {
				v = v || vals[fin]
			}
			vals[id] = v != (g.Type == netlist.Nor)
		case netlist.Xor, netlist.Xnor:
			v := false
			for _, fin := range g.Fanin {
				v = v != vals[fin]
			}
			vals[id] = v != (g.Type == netlist.Xnor)
		}
		if f != nil && id == f.Node {
			vals[id] = f.StuckAt1
		}
	}
	var outs []bool
	for id := int32(0); id < int32(n.NumGates()); id++ {
		if n.Type(id).IsObservationSink() {
			outs = append(outs, vals[n.Fanin(id)[0]])
		}
	}
	return outs
}

// verifyDetects checks that the PODEM pattern actually detects the fault
// (some sink differs between good and faulty machines).
func verifyDetects(t *testing.T, n *netlist.Netlist, pattern map[int32]Value, f Fault) {
	t.Helper()
	// Complete the pattern: unassigned sources get 0.
	full := make(map[int32]Value)
	for id := int32(0); id < int32(n.NumGates()); id++ {
		if n.Type(id).IsControllableSource() {
			v, ok := pattern[id]
			if !ok || v == X {
				v = Zero
			}
			full[id] = v
		}
	}
	good := simulateWithFault(n, full, nil)
	bad := simulateWithFault(n, full, &f)
	for i := range good {
		if good[i] != bad[i] {
			return
		}
	}
	t.Fatalf("pattern %v does not detect fault %+v", full, f)
}

func TestAndGateStuckAt(t *testing.T) {
	n := netlist.New("and")
	a := n.MustAddGate(netlist.Input, "a")
	b := n.MustAddGate(netlist.Input, "b")
	g := n.MustAddGate(netlist.And, "g", a, b)
	n.MustAddGate(netlist.Output, "po", g)
	gen := NewGenerator(n)

	// s-a-0 at g: needs a=b=1.
	res := gen.Generate(Fault{Node: g, StuckAt1: false})
	if !res.Success {
		t.Fatalf("s-a-0 not detected: %+v", res)
	}
	if res.Pattern[a] != One || res.Pattern[b] != One {
		t.Errorf("pattern %v, want a=b=1", res.Pattern)
	}
	verifyDetects(t, n, res.Pattern, Fault{Node: g, StuckAt1: false})

	// s-a-1 at g: needs output 0, any input 0.
	res = gen.Generate(Fault{Node: g, StuckAt1: true})
	if !res.Success {
		t.Fatalf("s-a-1 not detected: %+v", res)
	}
	verifyDetects(t, n, res.Pattern, Fault{Node: g, StuckAt1: true})
}

func TestPropagationThroughGateChain(t *testing.T) {
	// Fault deep behind an AND gate needs side inputs at non-controlling
	// values.
	n := netlist.New("chain")
	a := n.MustAddGate(netlist.Input, "a")
	e1 := n.MustAddGate(netlist.Input, "e1")
	e2 := n.MustAddGate(netlist.Input, "e2")
	inv := n.MustAddGate(netlist.Not, "inv", a)
	s1 := n.MustAddGate(netlist.And, "s1", inv, e1)
	s2 := n.MustAddGate(netlist.Or, "s2", s1, e2)
	n.MustAddGate(netlist.Output, "po", s2)
	gen := NewGenerator(n)
	for _, f := range []Fault{{Node: inv}, {Node: inv, StuckAt1: true}, {Node: a}, {Node: s1, StuckAt1: true}} {
		res := gen.Generate(f)
		if !res.Success {
			t.Fatalf("fault %+v undetected: %+v", f, res)
		}
		verifyDetects(t, n, res.Pattern, f)
		// Every fault must propagate through the OR, which needs e2=0.
		if res.Pattern[e2] != Zero {
			t.Errorf("fault %+v: e2 = %v, want 0", f, res.Pattern[e2])
		}
		// Faults upstream of the AND additionally need e1=1.
		if f.Node != s1 && res.Pattern[e1] != One {
			t.Errorf("fault %+v: e1 = %v, want 1", f, res.Pattern[e1])
		}
	}
}

func TestRedundantFaultProvedUntestable(t *testing.T) {
	// z = OR(a, NOT(a)) is constant 1, so z s-a-1 is redundant.
	n := netlist.New("red")
	a := n.MustAddGate(netlist.Input, "a")
	inv := n.MustAddGate(netlist.Not, "inv", a)
	z := n.MustAddGate(netlist.Or, "z", a, inv)
	n.MustAddGate(netlist.Output, "po", z)
	gen := NewGenerator(n)
	res := gen.Generate(Fault{Node: z, StuckAt1: true})
	if res.Success {
		t.Fatalf("redundant fault reported testable: %+v", res)
	}
	if res.Aborted {
		t.Fatalf("tiny redundant fault should be proved, not aborted")
	}
}

func TestXorPropagation(t *testing.T) {
	n := netlist.New("xor")
	a := n.MustAddGate(netlist.Input, "a")
	b := n.MustAddGate(netlist.Input, "b")
	x := n.MustAddGate(netlist.Xor, "x", a, b)
	n.MustAddGate(netlist.Output, "po", x)
	gen := NewGenerator(n)
	for _, f := range []Fault{{Node: a}, {Node: a, StuckAt1: true}, {Node: x}, {Node: x, StuckAt1: true}} {
		res := gen.Generate(f)
		if !res.Success {
			t.Fatalf("fault %+v undetected", f)
		}
		verifyDetects(t, n, res.Pattern, f)
	}
}

func TestScanFlopBoundary(t *testing.T) {
	// Fault behind a DFF data input is observed at the scan capture; a
	// fault after the DFF is controlled from the scan chain.
	n := netlist.New("scan")
	a := n.MustAddGate(netlist.Input, "a")
	b := n.MustAddGate(netlist.Input, "b")
	g := n.MustAddGate(netlist.And, "g", a, b)
	q := n.MustAddGate(netlist.DFF, "q", g)
	h := n.MustAddGate(netlist.Not, "h", q)
	n.MustAddGate(netlist.Output, "po", h)
	gen := NewGenerator(n)
	for _, f := range []Fault{{Node: g}, {Node: g, StuckAt1: true}, {Node: h}, {Node: q, StuckAt1: true}} {
		res := gen.Generate(f)
		if !res.Success {
			t.Fatalf("fault %+v undetected", f)
		}
		verifyDetects(t, n, res.Pattern, f)
	}
}

func TestC17AllFaultsTestable(t *testing.T) {
	// Every stuck-at fault in c17 is testable; generate and verify all.
	n := netlist.New("c17")
	g1 := n.MustAddGate(netlist.Input, "1")
	g2 := n.MustAddGate(netlist.Input, "2")
	g3 := n.MustAddGate(netlist.Input, "3")
	g6 := n.MustAddGate(netlist.Input, "6")
	g7 := n.MustAddGate(netlist.Input, "7")
	g10 := n.MustAddGate(netlist.Nand, "10", g1, g3)
	g11 := n.MustAddGate(netlist.Nand, "11", g3, g6)
	g16 := n.MustAddGate(netlist.Nand, "16", g2, g11)
	g19 := n.MustAddGate(netlist.Nand, "19", g11, g7)
	g22 := n.MustAddGate(netlist.Nand, "22", g10, g16)
	g23 := n.MustAddGate(netlist.Nand, "23", g16, g19)
	n.MustAddGate(netlist.Output, "po22", g22)
	n.MustAddGate(netlist.Output, "po23", g23)

	gen := NewGenerator(n)
	for node := int32(0); node <= g23; node++ {
		for _, sa1 := range []bool{false, true} {
			f := Fault{Node: node, StuckAt1: sa1}
			res := gen.Generate(f)
			if !res.Success {
				t.Errorf("c17 fault %+v undetected (aborted=%v)", f, res.Aborted)
				continue
			}
			verifyDetects(t, n, res.Pattern, f)
		}
	}
}

func TestGeneratedCircuitFaultsVerify(t *testing.T) {
	// On a random circuit, every PODEM success must verify against the
	// reference fault simulation.
	n := circuitgen.Generate("g", circuitgen.Config{Seed: 9, NumGates: 400})
	gen := NewGenerator(n)
	gen.BacktrackLimit = 100
	success, aborted, untestable := 0, 0, 0
	for node := int32(0); node < int32(n.NumGates()); node += 7 {
		switch n.Type(node) {
		case netlist.Output, netlist.Obs:
			continue
		}
		f := Fault{Node: node, StuckAt1: node%2 == 0}
		res := gen.Generate(f)
		switch {
		case res.Success:
			success++
			verifyDetects(t, n, res.Pattern, f)
		case res.Aborted:
			aborted++
		default:
			untestable++
		}
	}
	if success == 0 {
		t.Fatal("PODEM found no tests at all")
	}
	t.Logf("success=%d aborted=%d untestable=%d", success, aborted, untestable)
}
