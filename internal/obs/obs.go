// Package obs is the repository's zero-dependency observability layer:
// hierarchical timing spans, atomic counters/gauges/histograms, and a
// run-manifest emitter that serializes a whole run (configuration,
// environment, span tree, metrics) to deterministic JSON.
//
// The paper's headline claim is performance — sparse-matrix inference and
// data-parallel training scaling to million-node netlists — so every hot
// path in this reproduction (SpMM, training epochs, bit-parallel fault
// simulation, SCOAP, the OPI loop) reports into this package, and
// cmd/experiments, cmd/gcntest and cmd/benchjson can dump what happened
// as a machine-readable artifact (see docs/OBSERVABILITY.md).
//
// # Gating
//
// Instrumentation is disabled by default and enabled explicitly
// (typically by a -manifest flag) via Enable. While disabled, every
// entry point is engineered to cost almost nothing: StartSpan returns a
// nil *Span whose methods are no-ops, and Counter.Add is a single atomic
// load plus branch. Disabled paths allocate zero bytes.
//
// # Naming conventions
//
// Metric keys are lowercase, dot-separated "subsystem.metric" (e.g.
// "spmm.rows", "faultsim.batches", "opi.iterations"). Span names are
// lowercase path segments; nesting is expressed through Child spans, and
// a segment may use "/" to mark a logical phase within one subsystem
// (e.g. the root span "experiments/table3"). Spans with the same name
// under the same parent are merged: the node records how many times the
// span ran, total wall time, and total allocation delta.
package obs

import (
	"sync"
	"sync/atomic"
)

// enabled gates all instrumentation; manipulated via Enable/Disable.
var enabled atomic.Bool

// Enable turns instrumentation on process-wide.
func Enable() { enabled.Store(true) }

// Disable turns instrumentation off process-wide. Already-recorded spans
// and metric values are kept until Reset.
func Disable() { enabled.Store(false) }

// Enabled reports whether instrumentation is currently on.
func Enabled() bool { return enabled.Load() }

// registry is the process-wide store behind the package-level API.
type registry struct {
	mu       sync.Mutex
	root     *node
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

var reg = newRegistry()

func newRegistry() *registry {
	return &registry{
		root:     &node{name: ""},
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Reset clears the span tree and zeroes every registered metric. Metric
// handles returned by GetCounter etc. remain valid. Intended for tests
// and for tools that emit several manifests from one process.
func Reset() {
	reg.mu.Lock()
	reg.root = &node{name: ""}
	for _, c := range reg.counters {
		c.v.Store(0)
	}
	for _, g := range reg.gauges {
		g.v.Store(0)
	}
	for _, h := range reg.hists {
		h.reset()
	}
	reg.mu.Unlock()
	events.reset()
	tr.reset()
	reqs.reset()
}

// Snapshot is a point-in-time copy of everything the registry holds, in
// the deterministic order used by manifests: span children and metric
// keys sorted by name.
type Snapshot struct {
	// Spans holds the root-level span nodes (sorted by name).
	Spans []*SpanNode `json:"spans"`
	// Counters maps counter name to accumulated value.
	Counters map[string]int64 `json:"counters"`
	// Gauges maps gauge name to last set value.
	Gauges map[string]int64 `json:"gauges"`
	// Histograms maps histogram name to its distribution summary.
	Histograms map[string]HistogramSnapshot `json:"histograms"`
	// Events is the buffered event timeline in chronological order
	// (per-epoch training telemetry, stage transitions, ...).
	Events []EventRecord `json:"events,omitempty"`
	// EventsOverwritten counts older events the bounded ring discarded.
	EventsOverwritten int64 `json:"events_overwritten,omitempty"`
}

// TakeSnapshot captures the current span tree and metric values.
// Counters/gauges/histograms that are still zero are omitted so
// manifests only report subsystems that actually ran.
func TakeSnapshot() Snapshot {
	reg.mu.Lock()
	defer reg.mu.Unlock()
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	s.Spans = reg.root.snapshotChildren()
	for name, c := range reg.counters {
		if v := c.v.Load(); v != 0 {
			s.Counters[name] = v
		}
	}
	for name, g := range reg.gauges {
		if v := g.v.Load(); v != 0 {
			s.Gauges[name] = v
		}
	}
	for name, h := range reg.hists {
		if snap := h.snapshot(); snap.Count != 0 {
			s.Histograms[name] = snap
		}
	}
	s.Events, s.EventsOverwritten = events.snapshot()
	return s
}
