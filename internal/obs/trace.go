package obs

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Tracing records every individual span completion (not just the merged
// aggregates of the span tree) so a run can be replayed as a timeline in
// chrome://tracing or Perfetto. It is gated separately from the rest of
// the instrumentation because per-occurrence recording costs one buffer
// append per span; enable it with EnableTracing (the -trace flag on
// cmd/experiments and cmd/gcntest does both Enable and EnableTracing).
var tracing atomic.Bool

// EnableTracing turns per-occurrence span recording on. Spans only
// exist while the instrumentation master switch is on, so callers
// normally pair this with Enable.
func EnableTracing() { tracing.Store(true) }

// DisableTracing turns per-occurrence span recording off; already
// buffered trace events are kept until Reset.
func DisableTracing() { tracing.Store(false) }

// TracingEnabled reports whether per-occurrence span recording is on.
func TracingEnabled() bool { return tracing.Load() }

// traceEvent is one entry of the Chrome Trace Event Format
// (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU):
// ph "X" for complete spans, "i" for instants, "M" for metadata.
// Timestamps and durations are microseconds.
type traceEvent struct {
	Name  string         `json:"name"`
	Ph    string         `json:"ph"`
	TS    float64        `json:"ts"`
	Dur   float64        `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int64          `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// tracePID is the constant process id used in exported traces (the
// format requires one; a single-process run has nothing to distinguish).
const tracePID = 1

// defaultTraceCapacity bounds the span-event buffer (~100 B/event →
// tens of MB worst case). Unlike the event ring, the trace keeps the
// *first* N spans and counts the rest as dropped: a truncated timeline
// with an intact beginning is more useful than one whose spans have no
// surviving parents.
const defaultTraceCapacity = 1 << 18

// tracer buffers span completions and the tid→name registrations used
// to label training workers in the exported timeline.
type tracer struct {
	mu       sync.Mutex
	spans    []traceEvent
	dropped  int64
	capacity int
	threads  map[int64]string
}

var tr = &tracer{capacity: defaultTraceCapacity}

// recordSpanTrace appends one completed span occurrence.
func recordSpanTrace(path string, tid int64, start time.Time, dur time.Duration) {
	ev := traceEvent{
		Name: path,
		Ph:   "X",
		TS:   float64(start.Sub(processEpoch).Nanoseconds()) / 1e3,
		Dur:  float64(dur.Nanoseconds()) / 1e3,
		PID:  tracePID,
		TID:  tid,
	}
	tr.mu.Lock()
	if len(tr.spans) < tr.capacity {
		tr.spans = append(tr.spans, ev)
	} else {
		tr.dropped++
	}
	tr.mu.Unlock()
}

// TraceThreadName labels a tid in the exported timeline (e.g. training
// workers). No-op while tracing is off.
func TraceThreadName(tid int64, name string) {
	if !tracing.Load() {
		return
	}
	tr.mu.Lock()
	if tr.threads == nil {
		tr.threads = map[int64]string{}
	}
	tr.threads[tid] = name
	tr.mu.Unlock()
}

// SetTraceCapacity resizes the span-event buffer (and clears it).
func SetTraceCapacity(n int) {
	if n < 1 {
		n = 1
	}
	tr.mu.Lock()
	tr.capacity = n
	tr.spans = nil
	tr.dropped = 0
	tr.mu.Unlock()
}

func (t *tracer) reset() {
	t.mu.Lock()
	t.spans = nil
	t.dropped = 0
	t.threads = nil
	t.mu.Unlock()
}

// traceFile is the exported JSON document. The object form (rather than
// the bare array form) is used so viewers get the display unit and the
// drop count.
type traceFile struct {
	TraceEvents     []traceEvent   `json:"traceEvents"`
	DisplayTimeUnit string         `json:"displayTimeUnit"`
	OtherData       map[string]any `json:"otherData,omitempty"`
}

// marshalTrace assembles and serializes a trace document from explicit
// inputs: metadata first (process name, then thread names sorted by
// tid), then span and instant events merged in timestamp order. Split
// from the live-buffer plumbing so the golden test can pin the exact
// output bytes.
func marshalTrace(spans []traceEvent, events []EventRecord, threads map[int64]string, dropped int64) ([]byte, error) {
	out := make([]traceEvent, 0, len(spans)+len(events)+len(threads)+2)
	out = append(out, traceEvent{
		Name: "process_name", Ph: "M", PID: tracePID, TID: 0,
		Args: map[string]any{"name": "repro"},
	})
	tids := make([]int64, 0, len(threads))
	hasMain := false
	for tid := range threads {
		tids = append(tids, tid)
		if tid == 0 {
			hasMain = true
		}
	}
	if !hasMain {
		tids = append(tids, 0)
	}
	sort.Slice(tids, func(i, j int) bool { return tids[i] < tids[j] })
	for _, tid := range tids {
		name := threads[tid]
		if name == "" {
			name = "main"
		}
		out = append(out, traceEvent{
			Name: "thread_name", Ph: "M", PID: tracePID, TID: tid,
			Args: map[string]any{"name": name},
		})
	}

	timed := make([]traceEvent, 0, len(spans)+len(events))
	timed = append(timed, spans...)
	for _, ev := range events {
		timed = append(timed, traceEvent{
			Name: ev.Name, Ph: "i", TS: float64(ev.TS) / 1e3,
			PID: tracePID, TID: 0, Scope: "t", Args: ev.Attrs,
		})
	}
	sort.SliceStable(timed, func(i, j int) bool { return timed[i].TS < timed[j].TS })
	out = append(out, timed...)

	doc := traceFile{TraceEvents: out, DisplayTimeUnit: "ms"}
	if dropped > 0 {
		doc.OtherData = map[string]any{"dropped_span_events": dropped}
	}
	b, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// TraceJSON serializes everything recorded so far — span occurrences,
// the event timeline as instant events, and thread names — as a Chrome
// Trace Event Format document loadable in chrome://tracing or Perfetto.
func TraceJSON() ([]byte, error) {
	tr.mu.Lock()
	spans := make([]traceEvent, len(tr.spans))
	copy(spans, tr.spans)
	threads := make(map[int64]string, len(tr.threads))
	for tid, name := range tr.threads {
		threads[tid] = name
	}
	dropped := tr.dropped
	tr.mu.Unlock()
	evs, _ := events.snapshot()
	return marshalTrace(spans, evs, threads, dropped)
}

// WriteTrace serializes the recorded timeline to path.
func WriteTrace(path string) error {
	b, err := TraceJSON()
	if err != nil {
		return fmt.Errorf("obs: marshal trace: %w", err)
	}
	if err := os.WriteFile(path, b, 0o644); err != nil {
		return fmt.Errorf("obs: write trace: %w", err)
	}
	return nil
}
