// Package nn provides the neural network building blocks used by the GCN
// and the MLP baseline: fully connected layers, activation and loss
// kernels with exact analytic gradients, and an SGD optimizer with
// momentum. It replaces the PyTorch autograd stack the paper trains with;
// every gradient here is hand-derived and verified against numerical
// differentiation in the tests.
package nn

import (
	"encoding/gob"
	"fmt"
	"io"
	"math"
	"math/rand"

	"repro/internal/tensor"
)

// Param is a flat trainable parameter tensor together with its gradient
// accumulator and momentum state. Layers expose their parameters as
// []*Param so a single optimizer can drive heterogeneous models (weight
// matrices, bias vectors and the GCN's scalar aggregation weights alike).
type Param struct {
	Name string
	Data []float64
	Grad []float64
	vel  []float64
}

// NewParam allocates a named parameter of the given size.
func NewParam(name string, size int) *Param {
	return &Param{Name: name, Data: make([]float64, size), Grad: make([]float64, size)}
}

// ZeroGrad clears the gradient accumulator.
func (p *Param) ZeroGrad() {
	for i := range p.Grad {
		p.Grad[i] = 0
	}
}

// SGD is stochastic gradient descent with classical momentum, optional
// L2 weight decay, and optional global gradient-norm clipping. Clipping
// matters for the GCN: the paper's unnormalized weighted-sum aggregation
// (Equation 1) lets activations scale with node degree, and early
// training steps on hub-heavy netlists can otherwise diverge.
type SGD struct {
	LR          float64
	Momentum    float64
	WeightDecay float64
	ClipNorm    float64 // > 0 enables global-norm gradient clipping
}

// Step applies one update to every parameter using its accumulated
// gradient, then leaves the gradient untouched (call ZeroGrad before the
// next accumulation).
func (s *SGD) Step(params []*Param) {
	if s.ClipNorm > 0 {
		var sq float64
		for _, p := range params {
			for _, g := range p.Grad {
				sq += g * g
			}
		}
		if norm := math.Sqrt(sq); norm > s.ClipNorm {
			scale := s.ClipNorm / norm
			for _, p := range params {
				for i := range p.Grad {
					p.Grad[i] *= scale
				}
			}
		}
	}
	for _, p := range params {
		if p.vel == nil && s.Momentum != 0 {
			p.vel = make([]float64, len(p.Data))
		}
		for i := range p.Data {
			g := p.Grad[i] + s.WeightDecay*p.Data[i]
			if s.Momentum != 0 {
				p.vel[i] = s.Momentum*p.vel[i] + g
				g = p.vel[i]
			}
			p.Data[i] -= s.LR * g
		}
	}
}

// ZeroGrads clears the gradients of all params.
func ZeroGrads(params []*Param) {
	for _, p := range params {
		p.ZeroGrad()
	}
}

// Linear is a fully connected layer Y = X·W + b with In inputs and Out
// outputs.
type Linear struct {
	In, Out int
	W       *Param // In×Out, row-major
	B       *Param // Out
}

// NewLinear constructs a layer with Xavier-initialized weights and zero
// bias, drawing from rng.
func NewLinear(name string, in, out int, rng *rand.Rand) *Linear {
	l := &Linear{In: in, Out: out,
		W: NewParam(name+".W", in*out),
		B: NewParam(name+".B", out),
	}
	limit := math.Sqrt(6.0 / float64(in+out))
	for i := range l.W.Data {
		l.W.Data[i] = (rng.Float64()*2 - 1) * limit
	}
	return l
}

// Params returns the layer's trainable parameters.
func (l *Linear) Params() []*Param { return []*Param{l.W, l.B} }

func (l *Linear) wMat() *tensor.Dense {
	return &tensor.Dense{Rows: l.In, Cols: l.Out, Data: l.W.Data}
}

func (l *Linear) wGradMat() *tensor.Dense {
	return &tensor.Dense{Rows: l.In, Cols: l.Out, Data: l.W.Grad}
}

// Forward computes Y = X·W + b into a new matrix.
func (l *Linear) Forward(x *tensor.Dense) *tensor.Dense {
	return l.ForwardInto(nil, x)
}

// ForwardInto computes Y = X·W + b into dst (allocated when nil or of the
// wrong shape) and returns it; lets inference paths reuse buffers.
func (l *Linear) ForwardInto(dst, x *tensor.Dense) *tensor.Dense {
	if x.Cols != l.In {
		panic(fmt.Sprintf("nn: Linear forward got %d features, want %d", x.Cols, l.In))
	}
	if dst == nil || dst.Rows != x.Rows || dst.Cols != l.Out {
		dst = tensor.NewDense(x.Rows, l.Out)
	}
	tensor.MatMul(dst, x, l.wMat())
	dst.AddRowVector(l.B.Data)
	return dst
}

// Backward accumulates dW and dB from the layer input x and the upstream
// gradient dY, and returns dX.
func (l *Linear) Backward(x, dy *tensor.Dense) *tensor.Dense {
	// dW += xᵀ·dY
	dw := tensor.NewDense(l.In, l.Out)
	tensor.MatMulTransA(dw, x, dy)
	wg := l.wGradMat()
	wg.AddInPlace(dw)
	// dB += column sums of dY
	for i := 0; i < dy.Rows; i++ {
		row := dy.Row(i)
		for j, v := range row {
			l.B.Grad[j] += v
		}
	}
	// dX = dY·Wᵀ
	dx := tensor.NewDense(x.Rows, l.In)
	tensor.MatMulTransB(dx, dy, l.wMat())
	return dx
}

// WeightedCrossEntropy computes the mean class-weighted softmax
// cross-entropy loss over logits (N×C) with integer labels, returning the
// loss and the gradient with respect to the logits. Class weights are the
// paper's mechanism for biasing each multi-stage GCN toward the positive
// class; pass nil for uniform weights. Rows with label < 0 are ignored
// (masked out), which supports training on subsets of a graph's nodes.
func WeightedCrossEntropy(logits *tensor.Dense, labels []int, classWeights []float64) (float64, *tensor.Dense) {
	if len(labels) != logits.Rows {
		panic("nn: label count mismatch")
	}
	probs := logits.Clone()
	probs.SoftmaxRowsInPlace()
	grad := tensor.NewDense(logits.Rows, logits.Cols)
	var loss, totalWeight float64
	for i, lab := range labels {
		if lab < 0 {
			continue
		}
		w := 1.0
		if classWeights != nil {
			w = classWeights[lab]
		}
		p := probs.At(i, lab)
		if p < 1e-300 {
			p = 1e-300
		}
		loss += -w * math.Log(p)
		totalWeight += w
		prow := probs.Row(i)
		grow := grad.Row(i)
		for j, pj := range prow {
			grow[j] = w * pj
		}
		grow[lab] -= w
	}
	if totalWeight == 0 {
		return 0, grad
	}
	inv := 1 / totalWeight
	loss *= inv
	grad.Scale(inv)
	return loss, grad
}

// Softmax returns the row-wise softmax of logits as a new matrix.
func Softmax(logits *tensor.Dense) *tensor.Dense {
	p := logits.Clone()
	p.SoftmaxRowsInPlace()
	return p
}

// MLP is a plain multi-layer perceptron with ReLU between layers, used
// both as the GCN's FC classifier head and as the standalone MLP baseline
// of Table 2.
type MLP struct {
	Layers []*Linear
	// acts[i] is the (post-ReLU) output of layer i from the last Forward;
	// retained for Backward.
	acts  []*tensor.Dense
	input *tensor.Dense
	// inferBufs are reusable per-layer outputs for Infer (inference-only
	// forward passes that never feed Backward).
	inferBufs []*tensor.Dense
}

// NewMLP builds an MLP with the given layer dimensions, e.g.
// dims = [128, 64, 64, 128, 2] yields the paper's four FC layers.
func NewMLP(name string, dims []int, rng *rand.Rand) *MLP {
	if len(dims) < 2 {
		panic("nn: MLP needs at least input and output dims")
	}
	m := &MLP{}
	for i := 0; i+1 < len(dims); i++ {
		m.Layers = append(m.Layers, NewLinear(fmt.Sprintf("%s.fc%d", name, i), dims[i], dims[i+1], rng))
	}
	return m
}

// Params returns all trainable parameters.
func (m *MLP) Params() []*Param {
	var ps []*Param
	for _, l := range m.Layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// Forward runs the network; ReLU is applied after every layer except the
// last (which produces logits).
func (m *MLP) Forward(x *tensor.Dense) *tensor.Dense {
	m.input = x
	m.acts = m.acts[:0]
	cur := x
	for i, l := range m.Layers {
		cur = l.Forward(cur)
		if i+1 < len(m.Layers) {
			cur.ReLUInPlace()
		}
		m.acts = append(m.acts, cur)
	}
	return cur
}

// Infer is Forward without retaining state for Backward; per-layer
// output buffers are reused across calls, so the returned logits are
// only valid until the next Infer. Not safe for concurrent use.
func (m *MLP) Infer(x *tensor.Dense) *tensor.Dense {
	if m.inferBufs == nil {
		m.inferBufs = make([]*tensor.Dense, len(m.Layers))
	}
	cur := x
	for i, l := range m.Layers {
		m.inferBufs[i] = l.ForwardInto(m.inferBufs[i], cur)
		cur = m.inferBufs[i]
		if i+1 < len(m.Layers) {
			cur.ReLUInPlace()
		}
	}
	return cur
}

// Backward propagates dLogits through the network, accumulating parameter
// gradients, and returns the gradient with respect to the input.
func (m *MLP) Backward(dlogits *tensor.Dense) *tensor.Dense {
	grad := dlogits
	for i := len(m.Layers) - 1; i >= 0; i-- {
		if i+1 < len(m.Layers) {
			// Undo the ReLU applied to this layer's output.
			tensor.ReLUBackwardInPlace(grad, m.acts[i])
		}
		in := m.input
		if i > 0 {
			in = m.acts[i-1]
		}
		grad = m.Layers[i].Backward(in, grad)
	}
	return grad
}

// snapshot is the gob wire format for parameter sets.
type snapshot struct {
	Names  []string
	Values [][]float64
}

// SaveParams serializes parameters (by name) to w.
func SaveParams(w io.Writer, params []*Param) error {
	var s snapshot
	for _, p := range params {
		s.Names = append(s.Names, p.Name)
		s.Values = append(s.Values, p.Data)
	}
	return gob.NewEncoder(w).Encode(s)
}

// LoadParams restores parameter values by name; every stored name must
// match a parameter of identical size.
func LoadParams(r io.Reader, params []*Param) error {
	var s snapshot
	if err := gob.NewDecoder(r).Decode(&s); err != nil {
		return err
	}
	byName := make(map[string]*Param, len(params))
	for _, p := range params {
		byName[p.Name] = p
	}
	for i, name := range s.Names {
		p, ok := byName[name]
		if !ok {
			return fmt.Errorf("nn: stored parameter %q not present in model", name)
		}
		if len(p.Data) != len(s.Values[i]) {
			return fmt.Errorf("nn: parameter %q size %d != stored %d", name, len(p.Data), len(s.Values[i]))
		}
		copy(p.Data, s.Values[i])
	}
	return nil
}
