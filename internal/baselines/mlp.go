package baselines

import (
	"math/rand"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// MLP is the multi-layer perceptron baseline. Per the paper, its
// configuration matches the GCN's classifier module (hidden layers
// 64, 64, 128), but it consumes the handcrafted 4004-dimensional cone
// features instead of learned embeddings.
type MLP struct {
	Hidden   []int   // default [64, 64, 128]
	Epochs   int     // default 120
	LR       float64 // default 0.05
	Momentum float64 // default 0.9
	Seed     int64
	net      *nn.MLP
}

// Name implements Classifier.
func (m *MLP) Name() string { return "MLP" }

// Fit implements Classifier.
func (m *MLP) Fit(x *tensor.Dense, y []int) {
	hidden := m.Hidden
	if hidden == nil {
		hidden = []int{64, 64, 128}
	}
	epochs := m.Epochs
	if epochs <= 0 {
		epochs = 120
	}
	lr := m.LR
	if lr <= 0 {
		lr = 0.05
	}
	mom := m.Momentum
	if mom <= 0 {
		mom = 0.9
	}
	dims := append([]int{x.Cols}, hidden...)
	dims = append(dims, 2)
	rng := rand.New(rand.NewSource(m.Seed))
	m.net = nn.NewMLP("mlp", dims, rng)
	opt := &nn.SGD{LR: lr, Momentum: mom, ClipNorm: 5}
	for e := 0; e < epochs; e++ {
		nn.ZeroGrads(m.net.Params())
		logits := m.net.Forward(x)
		_, dlogits := nn.WeightedCrossEntropy(logits, y, nil)
		m.net.Backward(dlogits)
		opt.Step(m.net.Params())
	}
}

// Predict implements Classifier.
func (m *MLP) Predict(x *tensor.Dense) []int {
	return m.net.Forward(x).ArgmaxRows()
}
