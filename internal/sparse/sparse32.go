package sparse

import (
	"sync"
	"sync/atomic"

	"repro/internal/tensor"
)

// Float32 SpMM kernels for the f32 inference mode (see DESIGN.md
// decision 10). The adjacency values stay stored in float64 — the CSR
// is shared with the exact float64 path — and are narrowed on the fly;
// the dense operand and destination are float32, which is where the
// memory-traffic win lives (the dense activations dwarf the adjacency
// values in bytes moved per multiply).

// MulDense32 computes dst = m·x in float32; dst must be NumRows×x.Cols.
func (m *CSR) MulDense32(dst, x *tensor.Dense32) {
	if x.Rows != m.NumCols || dst.Rows != m.NumRows || dst.Cols != x.Cols {
		panic("sparse: CSR MulDense32 shape mismatch")
	}
	spmmF32Calls.Inc()
	spmmCalls.Inc()
	spmmRows.Add(int64(m.NumRows))
	m.mulRows32(dst, x, 0, m.NumRows)
}

func (m *CSR) mulRows32(dst, x *tensor.Dense32, lo, hi int) {
	for r := lo; r < hi; r++ {
		drow := dst.Row(r)
		for j := range drow {
			drow[j] = 0
		}
		for p := m.RowPtr[r]; p < m.RowPtr[r+1]; p++ {
			v := float32(m.Vals[p])
			xrow := x.Row(int(m.ColIdx[p]))
			for j, xv := range xrow {
				drow[j] += v * xv
			}
		}
	}
}

// MulDense32Parallel is MulDense32 with the same clamped-worker,
// nnz-balanced band scheduler as MulDenseParallel.
func (m *CSR) MulDense32Parallel(dst, x *tensor.Dense32, workers int) {
	if x.Rows != m.NumCols || dst.Rows != m.NumRows || dst.Cols != x.Cols {
		panic("sparse: CSR MulDense32Parallel shape mismatch")
	}
	spmmF32Calls.Inc()
	spmmCalls.Inc()
	spmmRows.Add(int64(m.NumRows))
	workers = clampWorkers(workers)
	if workers == 1 || m.NumRows < 2*workers {
		m.mulRows32(dst, x, 0, m.NumRows)
		return
	}
	spmmParallelCalls.Inc()
	bands := nnzBands(m.RowPtr, workers*bandsPerWorker)
	var cursor atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(cursor.Add(1)) - 1
				if i >= len(bands)-1 {
					return
				}
				m.mulRows32(dst, x, int(bands[i]), int(bands[i+1]))
			}
		}()
	}
	wg.Wait()
}

// ToDense32 materializes the matrix in float32; for tests.
func (m *CSR) ToDense32() *tensor.Dense32 {
	d := tensor.NewDense32(m.NumRows, m.NumCols)
	for r := 0; r < m.NumRows; r++ {
		for p := m.RowPtr[r]; p < m.RowPtr[r+1]; p++ {
			c := int(m.ColIdx[p])
			d.Set(r, c, d.At(r, c)+float32(m.Vals[p]))
		}
	}
	return d
}
