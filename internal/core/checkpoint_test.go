package core

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// trainTiny fits a tiny model so checkpoints carry non-initial weights.
func trainTiny(t *testing.T) (*Model, *Graph) {
	t.Helper()
	g := testGraph(3, 300)
	m := MustNewModel(tinyConfig(7))
	opt := DefaultTrainOptions()
	opt.Epochs = 3
	if _, err := Train(m, []*Graph{g}, [][]int{g.Labels}, opt); err != nil {
		t.Fatal(err)
	}
	return m, g
}

func TestCheckpointModelRoundTrip(t *testing.T) {
	m, g := trainTiny(t)
	var buf bytes.Buffer
	if err := SaveCheckpoint(&buf, m); err != nil {
		t.Fatal(err)
	}
	pred, err := LoadCheckpoint(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	m2, ok := pred.(*Model)
	if !ok {
		t.Fatalf("loaded %T, want *Model", pred)
	}
	want, got := m.PredictProbs(g), m2.PredictProbs(g)
	for v := range want {
		if want[v] != got[v] {
			t.Fatalf("node %d: prob %g != %g after round trip", v, got[v], want[v])
		}
	}
}

func TestCheckpointMultiStageRoundTripFile(t *testing.T) {
	m, g := trainTiny(t)
	ms := &MultiStage{Stages: []*Model{m, m.Clone()}, FilterBelow: 0.25}
	path := filepath.Join(t.TempDir(), "ckpt.gob")
	if err := SaveCheckpointFile(path, ms); err != nil {
		t.Fatal(err)
	}
	pred, err := LoadCheckpointFile(path)
	if err != nil {
		t.Fatal(err)
	}
	ms2, ok := pred.(*MultiStage)
	if !ok {
		t.Fatalf("loaded %T, want *MultiStage", pred)
	}
	if len(ms2.Stages) != 2 || ms2.FilterBelow != 0.25 {
		t.Fatalf("stages=%d filter=%g", len(ms2.Stages), ms2.FilterBelow)
	}
	want, got := ms.PredictProbs(g), ms2.PredictProbs(g)
	for v := range want {
		if want[v] != got[v] {
			t.Fatalf("node %d: prob %g != %g after round trip", v, got[v], want[v])
		}
	}
}

func TestLoadCheckpointFileLegacyFallback(t *testing.T) {
	m, g := trainTiny(t)
	ms := &MultiStage{Stages: []*Model{m}, FilterBelow: 0.3}
	path := filepath.Join(t.TempDir(), "model.gob")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := ms.Save(f); err != nil { // the legacy gcntest-train format
		t.Fatal(err)
	}
	f.Close()
	pred, err := LoadCheckpointFile(path)
	if err != nil {
		t.Fatal(err)
	}
	ms2, ok := pred.(*MultiStage)
	if !ok {
		t.Fatalf("loaded %T, want *MultiStage", pred)
	}
	want, got := ms.PredictProbs(g), ms2.PredictProbs(g)
	for v := range want {
		if want[v] != got[v] {
			t.Fatalf("node %d: prob %g != %g via legacy fallback", v, got[v], want[v])
		}
	}
}

func TestLoadCheckpointRejectsGarbage(t *testing.T) {
	if _, err := LoadCheckpoint(bytes.NewReader([]byte("not a gob stream"))); err == nil {
		t.Fatal("garbage stream loaded without error")
	}
	path := filepath.Join(t.TempDir(), "junk")
	if err := os.WriteFile(path, []byte("junk bytes"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCheckpointFile(path); err == nil {
		t.Fatal("garbage file loaded without error")
	}
}

func TestSaveCheckpointRejectsUnknownPredictor(t *testing.T) {
	var buf bytes.Buffer
	if err := SaveCheckpoint(&buf, nil); err == nil {
		t.Fatal("nil predictor saved without error")
	}
	if err := SaveCheckpoint(&buf, &MultiStage{}); err == nil {
		t.Fatal("empty cascade saved without error")
	}
}

func TestClonePredictorIsolation(t *testing.T) {
	m, g := trainTiny(t)
	clone := ClonePredictor(m).(*Model)
	if clone == m {
		t.Fatal("ClonePredictor returned the original model")
	}
	want := m.PredictProbs(g)
	got := clone.PredictProbs(g)
	for v := range want {
		if want[v] != got[v] {
			t.Fatalf("node %d: clone prob %g != %g", v, got[v], want[v])
		}
	}
	// Perturbing the clone must not affect the original.
	clone.Params()[0].Data[0] += 1
	again := m.PredictProbs(g)
	for v := range want {
		if want[v] != again[v] {
			t.Fatalf("node %d: original changed after clone perturbation", v)
		}
	}

	ms := &MultiStage{Stages: []*Model{m}, FilterBelow: 0.25}
	if ClonePredictor(ms).(*MultiStage) == ms {
		t.Fatal("ClonePredictor returned the original cascade")
	}
}
