package serve

import "repro/internal/obs"

// Serving-layer metrics (no-ops until obs.Enable; cmd/serve enables
// instrumentation unconditionally). Keys are documented in
// docs/OBSERVABILITY.md and exposed on the same /metrics + /snapshot mux
// as every other subsystem.
var (
	// Per-endpoint request counts and wall-latency distributions.
	mScoreRequests = obs.GetCounter("serve.score.requests")
	mScoreLatency  = obs.GetHistogram("serve.score.latency_ns")
	mDeltaRequests = obs.GetCounter("serve.delta.requests")
	mDeltaLatency  = obs.GetHistogram("serve.delta.latency_ns")
	mOPIRequests   = obs.GetCounter("serve.opi.requests")
	mOPILatency    = obs.GetHistogram("serve.opi.latency_ns")

	// Admission control: requests currently holding a slot, requests
	// waiting for one, and the two ways a request fails to get one.
	mInflight   = obs.GetGauge("serve.inflight")
	mQueueDepth = obs.GetGauge("serve.queue_depth")
	mShed       = obs.GetCounter("serve.shed")
	mDeadline   = obs.GetCounter("serve.deadline_exceeded")

	// Design cache: content-hash hits/misses, LRU evictions, and lookups
	// whose stored netlist text did not match the request despite an
	// equal hash (collision guard; see designCache).
	mCacheHits       = obs.GetCounter("serve.cache.hits")
	mCacheMisses     = obs.GetCounter("serve.cache.misses")
	mCacheEvictions  = obs.GetCounter("serve.cache.evictions")
	mCacheCollisions = obs.GetCounter("serve.cache.collisions")

	// Batcher: compiles actually executed (leaders) vs requests that
	// rode an in-flight identical compile (coalesced).
	mBatchLeaders   = obs.GetCounter("serve.batch.leaders")
	mBatchCoalesced = obs.GetCounter("serve.batch.coalesced")

	// Error responses by coarse class.
	mErrors = obs.GetCounter("serve.errors")

	// Request-scoped observability: requests at or above the
	// Options.SlowRequest threshold, and /v1/designs listing calls.
	mSlowRequests    = obs.GetCounter("serve.slow_requests")
	mDesignsRequests = obs.GetCounter("serve.designs.requests")
)
