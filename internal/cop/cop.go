// Package cop implements COP (controllability/observability program)
// probabilistic testability measures: the signal probability of every
// net and the probability that a net's value propagates to an
// observable point under uniform random patterns. COP is the analytic
// counterpart of the empirical observability counts measured by package
// fault, and represents the "approximate measurement" school of test
// point insertion the paper cites; the two agree exactly on fanout-free
// circuits and diverge under reconvergent fanout, which is why tools
// based on it over- or under-estimate difficulty — and part of why a
// learned model has room to win.
package cop

import (
	"repro/internal/netlist"
)

// Measures holds COP probabilities per cell output.
type Measures struct {
	// P1 is the probability the net is 1 under uniform random inputs.
	P1 []float64
	// Obs is the probability the net's value is observed at some
	// primary output, scan flop or observation point.
	Obs []float64
}

// Compute runs the COP analysis: signal probabilities forward assuming
// input independence, observabilities backward with OR-combination at
// fanout (1 - Π(1-o_branch)).
func Compute(n *netlist.Netlist) *Measures {
	m := &Measures{
		P1:  make([]float64, n.NumGates()),
		Obs: make([]float64, n.NumGates()),
	}
	order := n.TopoOrder()
	for _, id := range order {
		g := n.Gate(id)
		switch g.Type {
		case netlist.Input, netlist.DFF:
			m.P1[id] = 0.5
		case netlist.Output, netlist.Obs, netlist.Buf:
			m.P1[id] = m.P1[g.Fanin[0]]
		case netlist.Not:
			m.P1[id] = 1 - m.P1[g.Fanin[0]]
		case netlist.And, netlist.Nand:
			p := 1.0
			for _, f := range g.Fanin {
				p *= m.P1[f]
			}
			if g.Type == netlist.Nand {
				p = 1 - p
			}
			m.P1[id] = p
		case netlist.Or, netlist.Nor:
			q := 1.0
			for _, f := range g.Fanin {
				q *= 1 - m.P1[f]
			}
			p := 1 - q
			if g.Type == netlist.Nor {
				p = 1 - p
			}
			m.P1[id] = p
		case netlist.Xor, netlist.Xnor:
			// P(odd parity) folds pairwise.
			p := m.P1[g.Fanin[0]]
			for _, f := range g.Fanin[1:] {
				q := m.P1[f]
				p = p*(1-q) + (1-p)*q
			}
			if g.Type == netlist.Xnor {
				p = 1 - p
			}
			m.P1[id] = p
		}
	}

	// Backward observabilities. notObs accumulates Π(1-o) per net.
	notObs := make([]float64, n.NumGates())
	for i := range notObs {
		notObs[i] = 1
	}
	absorb := func(id int32, o float64) {
		notObs[id] *= 1 - o
	}
	for i := len(order) - 1; i >= 0; i-- {
		id := order[i]
		g := n.Gate(id)
		switch g.Type {
		case netlist.Output, netlist.Obs:
			m.Obs[id] = 1
			absorb(g.Fanin[0], 1)
			continue
		case netlist.DFF:
			// The flop's data input is captured by the scan chain; the
			// flop's *output* is a pseudo primary input whose
			// observability comes from its own loads, already
			// accumulated in notObs (reverse topological order).
			// Skipping this assignment left every DFF output at
			// Obs = 0, disagreeing with SCOAP, critical path tracing
			// and exhaustive simulation on scan-boundary circuits; the
			// differential harness (internal/refcheck) pins the
			// agreement now.
			m.Obs[id] = 1 - notObs[id]
			absorb(g.Fanin[0], 1)
			continue
		case netlist.Input:
			m.Obs[id] = 1 - notObs[id]
			continue
		}
		o := 1 - notObs[id]
		m.Obs[id] = o
		if o == 0 {
			continue
		}
		switch g.Type {
		case netlist.Buf, netlist.Not:
			absorb(g.Fanin[0], o)
		case netlist.And, netlist.Nand:
			m.propagate(g, o, absorb, true)
		case netlist.Or, netlist.Nor:
			m.propagate(g, o, absorb, false)
		case netlist.Xor, netlist.Xnor:
			for _, f := range g.Fanin {
				absorb(f, o)
			}
		}
	}
	return m
}

// propagate pushes observability into AND/OR-style fanins: input i is
// observed with probability o × Π_{j≠i} P(non-controlling_j).
func (m *Measures) propagate(g *netlist.Gate, o float64, absorb func(int32, float64), andLike bool) {
	fi := g.Fanin
	prob := func(f int32) float64 {
		if andLike {
			return m.P1[f]
		}
		return 1 - m.P1[f]
	}
	// Prefix/suffix products of the sides.
	suffix := make([]float64, len(fi))
	acc := 1.0
	for i := len(fi) - 1; i >= 0; i-- {
		suffix[i] = acc
		acc *= prob(fi[i])
	}
	prefix := 1.0
	for i, f := range fi {
		absorb(f, o*prefix*suffix[i])
		prefix *= prob(f)
	}
}

// DetectionProbability returns the COP estimate of the per-pattern
// detection probability of a stuck-at fault at the node's output: the
// probability the node holds the opposite value times its observability.
func (m *Measures) DetectionProbability(node int32, stuckAt1 bool) float64 {
	excite := m.P1[node]
	if stuckAt1 {
		excite = 1 - m.P1[node]
	}
	return excite * m.Obs[node]
}
