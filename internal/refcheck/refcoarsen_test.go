package refcheck

import (
	"strings"
	"testing"

	"repro/internal/circuitgen"
	"repro/internal/coarsen"
	"repro/internal/core"
	"repro/internal/netlist"
	"repro/internal/scoap"
)

// TestCoarsenDifferential is the acceptance gate for the coarsening
// subsystem: 60 seeded random circuits, each checked for build
// determinism, structural invariants, ratio-1.0 projection
// bit-identity, and lift ranking-order preservation across both
// strategies and three ratios.
func TestCoarsenDifferential(t *testing.T) {
	const circuits = 60
	configs := RandomConfigs(2025, circuits)
	for i, cfg := range configs {
		n := circuitgen.Generate("coarsen", cfg)
		if err := n.Validate(); err != nil {
			t.Fatalf("circuit %d: invalid netlist: %v", i, err)
		}
		if err := CheckCoarsenNetlist(n, int64(4000+i)); err != nil {
			t.Errorf("circuit %d (gates=%d dff=%.2f): %v", i, n.NumGates(), cfg.DFFFrac, err)
		}
	}
}

// TestCoarsenDegenerateShapes covers the shapes most likely to break
// the clustering sweeps: a design that is almost all boundary cells
// (nothing to merge), a single straight-line cone, and disconnected
// components.
func TestCoarsenDegenerateShapes(t *testing.T) {
	t.Run("register dominated", func(t *testing.T) {
		n := circuitgen.Generate("regs", circuitgen.Config{
			Seed: 11, NumGates: 120, NumPIs: 8, Layers: 4, DFFFrac: 0.9})
		if err := CheckCoarsenNetlist(n, 501); err != nil {
			t.Fatal(err)
		}
	})
	t.Run("single chain", func(t *testing.T) {
		src := "INPUT(a)\nx1 = NOT(a)\nx2 = BUF(x1)\nx3 = NOT(x2)\nx4 = BUF(x3)\nOUTPUT(x4)\n"
		n, err := netlist.Read(strings.NewReader(src))
		if err != nil {
			t.Fatal(err)
		}
		if err := CheckCoarsenNetlist(n, 502); err != nil {
			t.Fatal(err)
		}
	})
	t.Run("disconnected components", func(t *testing.T) {
		src := "INPUT(a1)\nINPUT(a2)\nx1 = AND(a1, a2)\ny1 = NOT(x1)\nOUTPUT(y1)\n" +
			"INPUT(b1)\nINPUT(b2)\nx2 = OR(b1, b2)\ny2 = XOR(x2, b1)\nz2 = NAND(y2, x2)\nOUTPUT(z2)\n"
		n, err := netlist.Read(strings.NewReader(src))
		if err != nil {
			t.Fatal(err)
		}
		if err := CheckCoarsenNetlist(n, 503); err != nil {
			t.Fatal(err)
		}
	})
}

// TestCoarsenLiftAfterInsertions pins the live-mirror contract end to
// end at the refcheck layer: after mirrored observation-point
// insertions the coarsening must still validate against the mutated
// netlist and its lift must still broadcast region scores exactly.
func TestCoarsenLiftAfterInsertions(t *testing.T) {
	n := circuitgen.Generate("mirror", circuitgen.Config{
		Seed: 17, NumGates: 150, NumPIs: 10, Layers: 6})
	g := core.FromNetlist(n, scoap.Compute(n))
	c, err := coarsen.New(n, coarsen.Options{Strategy: coarsen.FFR, Ratio: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	cg := c.ProjectGraph(g)

	inserted := 0
	for v := int32(0); v < int32(n.NumGates()) && inserted < 3; v++ {
		switch n.Type(v) {
		case netlist.Input, netlist.Output, netlist.Obs:
			continue
		}
		n.MustAddGate(netlist.Obs, "", v)
		g.AddObservationPoint(v)
		if _, err := c.AddObservationPoint(cg, v); err != nil {
			t.Fatal(err)
		}
		inserted++
	}
	if inserted == 0 {
		t.Fatal("no insertable cell found")
	}
	if err := c.Validate(n); err != nil {
		t.Fatalf("coarsening invalid after mirrored insertions: %v", err)
	}
	probs := make([]float64, c.NumSuper())
	for s := range probs {
		probs[s] = float64(s%7) / 7
	}
	lifted := c.Lift(probs)
	for v := range lifted {
		if lifted[v] != probs[c.Owner[v]] {
			t.Fatalf("cell %d: lifted %v, region %d scored %v", v, lifted[v], c.Owner[v], probs[c.Owner[v]])
		}
	}
}
