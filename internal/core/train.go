package core

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/nn"
	"repro/internal/obs"
)

// Training metrics (no-ops until obs.Enable; see docs/OBSERVABILITY.md).
var (
	trainEpochs  = obs.GetCounter("train.epochs")
	trainGraphs  = obs.GetCounter("train.graphs")
	trainWorkers = obs.GetGauge("train.workers")
	trainEpochNS = obs.GetHistogram("train.epoch_ns")
)

// TrainOptions controls end-to-end GCN training.
type TrainOptions struct {
	Epochs      int
	LR          float64
	Momentum    float64
	WeightDecay float64
	LRDecay     float64 // multiplicative per-epoch decay; 0 or 1 disables
	ClipNorm    float64 // global gradient-norm clip; <= 0 disables
	PosWeight   float64 // class weight of the positive class; <= 0 means 1
	Workers     int     // parallel gradient workers; <= 0 means one per graph
	// Progress, when non-nil, is invoked after every epoch with the mean
	// training loss.
	Progress func(epoch int, loss float64)
	// OnEpoch, when non-nil, is invoked after every optimizer step with
	// the up-to-date model; used to record accuracy curves (Figure 8).
	OnEpoch func(epoch int, m *Model)
}

// DefaultTrainOptions returns settings that train the default
// architecture reliably on balanced netlist datasets.
func DefaultTrainOptions() TrainOptions {
	return TrainOptions{
		Epochs:   150,
		LR:       0.05,
		Momentum: 0.9,
		LRDecay:  0.995,
		ClipNorm: 5,
	}
}

func (o TrainOptions) classWeights(numClasses int) []float64 {
	w := make([]float64, numClasses)
	for i := range w {
		w[i] = 1
	}
	if o.PosWeight > 0 && numClasses >= 2 {
		w[1] = o.PosWeight
	}
	return w
}

// Train fits the model on one or more graphs end-to-end. labelSets[i]
// provides per-node labels for graphs[i] (-1 masks a node out of the
// loss); a nil labelSets uses each graph's own Labels.
//
// Gradients are computed one-graph-per-worker, mirroring the paper's
// multi-GPU data parallelism (Figure 5): each worker holds a parameter
// replica, processes whole graphs (an adjacency matrix cannot be split
// the way an image batch can), and the merged gradient drives a single
// shared update per epoch. Returns the per-epoch mean loss history.
func Train(m *Model, graphs []*Graph, labelSets [][]int, opt TrainOptions) ([]float64, error) {
	if len(graphs) == 0 {
		return nil, fmt.Errorf("core: no training graphs")
	}
	if labelSets == nil {
		labelSets = make([][]int, len(graphs))
		for i, g := range graphs {
			labelSets[i] = g.Labels
		}
	}
	if len(labelSets) != len(graphs) {
		return nil, fmt.Errorf("core: %d label sets for %d graphs", len(labelSets), len(graphs))
	}
	for i, g := range graphs {
		if len(labelSets[i]) != g.N {
			return nil, fmt.Errorf("core: graph %d has %d nodes but %d labels", i, g.N, len(labelSets[i]))
		}
	}
	if opt.Epochs <= 0 {
		opt.Epochs = 1
	}
	workers := opt.Workers
	if workers <= 0 || workers > len(graphs) {
		workers = len(graphs)
	}
	span := obs.StartSpan("train")
	defer span.End()
	trainGraphs.Add(int64(len(graphs)))
	trainWorkers.Set(int64(workers))
	for w := 0; w < workers; w++ {
		obs.TraceThreadName(int64(w+1), fmt.Sprintf("train worker %d", w))
	}

	replicas := make([]*Model, workers)
	for w := range replicas {
		if w == 0 {
			replicas[0] = m // worker 0 reuses the master parameters
		} else {
			replicas[w] = m.Clone()
		}
	}

	weights := opt.classWeights(m.Cfg.NumClasses)
	opt2 := &nn.SGD{LR: opt.LR, Momentum: opt.Momentum, WeightDecay: opt.WeightDecay, ClipNorm: opt.ClipNorm}
	history := make([]float64, 0, opt.Epochs)

	losses := make([]float64, len(graphs))
	workerWallNS := make([]int64, workers)
	for epoch := 0; epoch < opt.Epochs; epoch++ {
		epochStart := time.Now()
		epochSpan := span.Child("epoch")
		for w := 1; w < workers; w++ {
			replicas[w].CopyParamsFrom(m)
		}
		for _, r := range replicas {
			nn.ZeroGrads(r.Params())
		}
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				wstart := time.Now()
				workerSpan := epochSpan.ChildTID("worker", int64(w+1))
				for gi := w; gi < len(graphs); gi += workers {
					losses[gi] = replicas[w].LossAndGrad(graphs[gi], labelSets[gi], weights)
				}
				workerSpan.End()
				workerWallNS[w] = time.Since(wstart).Nanoseconds()
			}(w)
		}
		wg.Wait()

		// Merge replica gradients into the master and average over graphs.
		master := m.Params()
		for w := 1; w < workers; w++ {
			for pi, p := range replicas[w].Params() {
				dst := master[pi].Grad
				for i, gv := range p.Grad {
					dst[i] += gv
				}
			}
		}
		inv := 1 / float64(len(graphs))
		var mean float64
		for _, l := range losses {
			mean += l * inv
		}
		for _, p := range master {
			for i := range p.Grad {
				p.Grad[i] *= inv
			}
		}
		opt2.Step(master)
		if opt.LRDecay > 0 && opt.LRDecay != 1 {
			opt2.LR *= opt.LRDecay
		}
		history = append(history, mean)
		trainEpochs.Inc()
		epochSpan.End()
		if obs.Enabled() {
			wallNS := time.Since(epochStart).Nanoseconds()
			trainEpochNS.Observe(wallNS)
			obs.Event("train.epoch",
				obs.I("epoch", int64(epoch)),
				obs.F("loss", mean),
				obs.F("wall_ms", float64(wallNS)/1e6),
				obs.I("workers", int64(workers)),
				obs.F("worker_imbalance", workerImbalance(workerWallNS)))
		}
		if opt.Progress != nil {
			opt.Progress(epoch, mean)
		}
		if opt.OnEpoch != nil {
			opt.OnEpoch(epoch, m)
		}
	}
	return history, nil
}

// workerImbalance quantifies data-parallel load skew for one epoch as
// (slowest - fastest) / slowest over the workers' wall times: 0 means
// perfectly balanced, values near 1 mean the epoch barrier is dominated
// by a straggler (the merged-gradient update cannot proceed until every
// replica finishes its graphs).
func workerImbalance(wallNS []int64) float64 {
	if len(wallNS) == 0 {
		return 0
	}
	min, max := wallNS[0], wallNS[0]
	for _, w := range wallNS[1:] {
		if w < min {
			min = w
		}
		if w > max {
			max = w
		}
	}
	if max <= 0 {
		return 0
	}
	return float64(max-min) / float64(max)
}

// Accuracy computes classification accuracy of the model on g restricted
// to nodes whose entry in labels is 0 or 1.
func Accuracy(m *Model, g *Graph, labels []int) float64 {
	pred := m.PredictLabels(g)
	correct, total := 0, 0
	for i, l := range labels {
		if l < 0 {
			continue
		}
		total++
		if pred[i] == l {
			correct++
		}
	}
	if total == 0 {
		return 0
	}
	return float64(correct) / float64(total)
}
