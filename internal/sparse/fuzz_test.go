package sparse_test

import (
	"math/rand"
	"testing"

	"repro/internal/refcheck"
	"repro/internal/sparse"
)

// FuzzSparseMul decodes arbitrary bytes into a small COO matrix
// (including duplicate coordinates, which every kernel must sum) and
// runs the full differential battery from internal/refcheck against the
// dense triple-loop reference: COO MulDense, CSR conversion, serial and
// parallel CSR products, the transpose product and the explicit
// transpose. Seed corpus lives in testdata/fuzz/FuzzSparseMul.
func FuzzSparseMul(f *testing.F) {
	f.Add([]byte{3, 4, 0, 0, 10, 1, 2, 250, 1, 2, 6, 2, 3, 128})
	f.Add([]byte{1, 1, 0, 0, 1})
	f.Add([]byte{8, 8})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 {
			return
		}
		rows := 1 + int(data[0]%16)
		cols := 1 + int(data[1]%16)
		coo := sparse.NewCOO(rows, cols)
		seed := int64(len(data))
		for i := 2; i+2 < len(data) && coo.NNZ() < 96; i += 3 {
			r := int32(data[i]) % int32(rows)
			c := int32(data[i+1]) % int32(cols)
			v := float64(int8(data[i+2])) / 8
			coo.Append(r, c, v)
			seed = seed*131 + int64(data[i+2])
		}
		rng := rand.New(rand.NewSource(seed))
		if err := refcheck.CheckSparseOps(coo, 1+int(data[1]%3), rng); err != nil {
			t.Fatalf("%dx%d nnz=%d: %v", rows, cols, coo.NNZ(), err)
		}
	})
}
