package nn

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

// TestQuickCrossEntropyNonNegative: loss is non-negative and finite for
// arbitrary logits.
func TestQuickCrossEntropyNonNegative(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows := 1 + rng.Intn(8)
		cols := 2 + rng.Intn(4)
		logits := tensor.NewDense(rows, cols)
		for i := range logits.Data {
			logits.Data[i] = rng.NormFloat64() * 10
		}
		labels := make([]int, rows)
		for i := range labels {
			labels[i] = rng.Intn(cols)
		}
		loss, grad := WeightedCrossEntropy(logits, labels, nil)
		if loss < 0 || math.IsNaN(loss) || math.IsInf(loss, 0) {
			return false
		}
		// Gradient rows sum to zero (softmax simplex property).
		for i := 0; i < rows; i++ {
			var s float64
			for _, v := range grad.Row(i) {
				s += v
			}
			if math.Abs(s) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestQuickLinearIsAffine: Forward(αx) - Forward(0) = α(Forward(x) -
// Forward(0)) for any layer — linearity up to the bias.
func TestQuickLinearIsAffine(t *testing.T) {
	f := func(seed int64, rawAlpha uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		alpha := float64(rawAlpha%7) + 0.5
		l := NewLinear("l", 4, 3, rng)
		x := tensor.NewDense(2, 4)
		for i := range x.Data {
			x.Data[i] = rng.NormFloat64()
		}
		zero := tensor.NewDense(2, 4)
		fx := l.Forward(x)
		f0 := l.Forward(zero)
		ax := x.Clone()
		ax.Scale(alpha)
		fax := l.Forward(ax)
		for i := range fx.Data {
			want := f0.Data[i] + alpha*(fx.Data[i]-f0.Data[i])
			if math.Abs(fax.Data[i]-want) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestQuickSGDStepMovesAgainstGradient: after one step without momentum,
// every parameter moves opposite to its gradient sign.
func TestQuickSGDStepMovesAgainstGradient(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := NewParam("w", 6)
		for i := range p.Data {
			p.Data[i] = rng.NormFloat64()
			p.Grad[i] = rng.NormFloat64()
		}
		before := append([]float64(nil), p.Data...)
		(&SGD{LR: 0.01}).Step([]*Param{p})
		for i := range p.Data {
			delta := p.Data[i] - before[i]
			if p.Grad[i] > 0 && delta > 0 {
				return false
			}
			if p.Grad[i] < 0 && delta < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
