// Command benchcmp diffs two BENCH_NNNN.json artifacts (written by
// cmd/benchjson) and exits non-zero when the newer one regresses the
// recorded performance trajectory: ns/op beyond -tol, or allocs/op
// beyond -alloc-tol plus a small absolute grace. It is the automated
// gate scripts/check.sh runs against the committed baselines, so a PR
// cannot silently slow a tier-1 hot path.
//
// Usage:
//
//	benchcmp [-tol F] [-alloc-tol F] [-min-ns N] [-tol-for RE=F ...]
//	         old.json new.json
//
// -tol is the fractional ns/op slowdown allowed (default 0.50 — bench
// noise between recording machines is real; tighten it when comparing
// two runs from the same machine). -alloc-tol bounds allocs/op growth
// (allocation counts are deterministic, so the default is tight).
// -min-ns skips the ns/op comparison for benchmarks faster than N ns/op
// in the baseline, where timer noise dominates. -tol-for overrides the
// ns/op tolerance for benchmarks whose name matches a regexp
// (first match wins; repeatable) — e.g. -tol-for 'F32=0.75' gives the
// float32 kernels extra headroom, since their throughput swings with
// the recording host's SIMD width more than the float64 paths do.
//
// Benchmarks present in only one file are reported but never fail the
// gate (the suite is allowed to grow); differing num_cpu between the
// two artifacts produces a loud warning since timings are then not
// comparable.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"
	"strings"

	"repro/internal/obs"
)

// BenchFile mirrors the subset of cmd/benchjson's artifact schema the
// comparison needs.
type BenchFile struct {
	SchemaVersion int           `json:"schema_version"`
	Name          string        `json:"name"`
	GitDescribe   string        `json:"git_describe"`
	NumCPU        int           `json:"num_cpu"`
	GOMAXPROCS    int           `json:"gomaxprocs"`
	Benchmarks    []BenchResult `json:"benchmarks"`
}

// BenchResult is one benchmark's measurement.
type BenchResult struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// allocGrace is the absolute allocs/op headroom added on top of
// -alloc-tol, so a zero-alloc baseline does not fail on a single
// incidental allocation.
const allocGrace = 2

// tolOverride is one -tol-for entry: benchmarks matching re use frac as
// their ns/op tolerance instead of -tol.
type tolOverride struct {
	re   *regexp.Regexp
	frac float64
}

// tolOverrides implements flag.Value for the repeatable -tol-for flag.
type tolOverrides []tolOverride

func (t *tolOverrides) String() string {
	parts := make([]string, len(*t))
	for i, o := range *t {
		parts[i] = fmt.Sprintf("%s=%g", o.re, o.frac)
	}
	return strings.Join(parts, ",")
}

func (t *tolOverrides) Set(s string) error {
	eq := strings.LastIndex(s, "=")
	if eq < 1 {
		return fmt.Errorf("-tol-for wants REGEXP=FRACTION, got %q", s)
	}
	re, err := regexp.Compile(s[:eq])
	if err != nil {
		return fmt.Errorf("-tol-for regexp: %w", err)
	}
	frac, err := strconv.ParseFloat(s[eq+1:], 64)
	if err != nil || frac < 0 {
		return fmt.Errorf("-tol-for fraction %q is not a non-negative number", s[eq+1:])
	}
	*t = append(*t, tolOverride{re: re, frac: frac})
	return nil
}

// tolFor resolves a benchmark's ns/op tolerance: the first matching
// override, otherwise the default.
func (t tolOverrides) tolFor(name string, def float64) float64 {
	for _, o := range t {
		if o.re.MatchString(name) {
			return o.frac
		}
	}
	return def
}

func main() {
	regressions, err := run(os.Args[1:], os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcmp:", err)
		os.Exit(2)
	}
	if regressions > 0 {
		os.Exit(1)
	}
}

// run executes the comparison and returns the regression count; split
// from main so the unit test can drive the full flag-to-verdict path.
func run(args []string, stdout io.Writer) (int, error) {
	fs := flag.NewFlagSet("benchcmp", flag.ContinueOnError)
	tol := fs.Float64("tol", 0.50, "allowed fractional ns/op slowdown")
	allocTol := fs.Float64("alloc-tol", 0.10, "allowed fractional allocs/op growth")
	minNS := fs.Float64("min-ns", 1000, "skip ns/op comparison below this baseline ns/op")
	var overrides tolOverrides
	fs.Var(&overrides, "tol-for", "per-benchmark ns/op tolerance REGEXP=FRACTION (first match wins; repeatable)")
	version := fs.Bool("version", false, "print the build's git revision and exit")
	if err := fs.Parse(args); err != nil {
		return 0, err
	}
	if *version {
		fmt.Fprintln(stdout, "benchcmp", revision())
		return 0, nil
	}
	if fs.NArg() != 2 {
		return 0, fmt.Errorf("need exactly two artifacts: benchcmp old.json new.json")
	}
	oldF, err := readBenchFile(fs.Arg(0))
	if err != nil {
		return 0, err
	}
	newF, err := readBenchFile(fs.Arg(1))
	if err != nil {
		return 0, err
	}
	return compare(oldF, newF, fs.Arg(0), fs.Arg(1), *tol, *allocTol, *minNS, overrides, stdout), nil
}

func readBenchFile(path string) (*BenchFile, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f BenchFile
	if err := json.Unmarshal(raw, &f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(f.Benchmarks) == 0 {
		return nil, fmt.Errorf("%s: no benchmarks recorded", path)
	}
	return &f, nil
}

// compare prints a per-benchmark verdict table and returns how many
// benchmarks regressed.
func compare(oldF, newF *BenchFile, oldPath, newPath string, tol, allocTol, minNS float64, overrides tolOverrides, w io.Writer) int {
	fmt.Fprintf(w, "benchcmp %s (%s) -> %s (%s)\n", oldPath, oldF.GitDescribe, newPath, newF.GitDescribe)
	if oldF.NumCPU != newF.NumCPU || oldF.GOMAXPROCS != newF.GOMAXPROCS {
		fmt.Fprintf(w, "WARNING: artifacts recorded on different machines (num_cpu %d vs %d, gomaxprocs %d vs %d); ns/op is not strictly comparable\n",
			oldF.NumCPU, newF.NumCPU, oldF.GOMAXPROCS, newF.GOMAXPROCS)
	}

	oldBy := make(map[string]BenchResult, len(oldF.Benchmarks))
	for _, b := range oldF.Benchmarks {
		oldBy[b.Name] = b
	}
	newNames := make(map[string]bool, len(newF.Benchmarks))

	regressions := 0
	fmt.Fprintf(w, "%-28s %14s %14s %8s %12s  %s\n", "benchmark", "old ns/op", "new ns/op", "delta", "allocs/op", "verdict")
	for _, nb := range newF.Benchmarks {
		newNames[nb.Name] = true
		ob, ok := oldBy[nb.Name]
		if !ok {
			fmt.Fprintf(w, "%-28s %14s %14.0f %8s %12d  new (no baseline)\n", nb.Name, "-", nb.NsPerOp, "-", nb.AllocsPerOp)
			continue
		}
		delta := 0.0
		if ob.NsPerOp > 0 {
			delta = nb.NsPerOp/ob.NsPerOp - 1
		}
		var verdicts []string
		benchTol := overrides.tolFor(nb.Name, tol)
		if ob.NsPerOp >= minNS && delta > benchTol {
			verdicts = append(verdicts, fmt.Sprintf("REGRESSION ns/op +%.0f%% > %.0f%%", 100*delta, 100*benchTol))
		}
		allocLimit := float64(ob.AllocsPerOp)*(1+allocTol) + allocGrace
		if float64(nb.AllocsPerOp) > allocLimit {
			verdicts = append(verdicts, fmt.Sprintf("REGRESSION allocs/op %d > limit %.0f", nb.AllocsPerOp, allocLimit))
		}
		verdict := "ok"
		switch {
		case len(verdicts) > 0:
			regressions++
			verdict = verdicts[0]
			for _, v := range verdicts[1:] {
				verdict += "; " + v
			}
		case delta < -tol/2:
			verdict = fmt.Sprintf("faster (%.0f%%)", 100*delta)
		}
		fmt.Fprintf(w, "%-28s %14.0f %14.0f %+7.1f%% %6d->%-5d  %s\n",
			nb.Name, ob.NsPerOp, nb.NsPerOp, 100*delta, ob.AllocsPerOp, nb.AllocsPerOp, verdict)
	}
	for _, ob := range oldF.Benchmarks {
		if !newNames[ob.Name] {
			fmt.Fprintf(w, "%-28s %14.0f %14s %8s %12d  removed from suite\n", ob.Name, ob.NsPerOp, "-", "-", ob.AllocsPerOp)
		}
	}
	if regressions > 0 {
		fmt.Fprintf(w, "benchcmp: %d regression(s) beyond tolerance\n", regressions)
	} else {
		fmt.Fprintln(w, "benchcmp: within tolerance")
	}
	return regressions
}

// revision is the -version payload: `git describe --always --dirty`
// when the binary runs inside the repository, "unknown" otherwise.
func revision() string {
	if r := obs.GitDescribe(); r != "" {
		return r
	}
	return "unknown"
}
