package features

import (
	"testing"

	"repro/internal/netlist"
	"repro/internal/scoap"
)

func TestConeLargerThanDesignPadsWithZeros(t *testing.T) {
	n := netlist.New("tiny")
	a := n.MustAddGate(netlist.Input, "a")
	g := n.MustAddGate(netlist.Not, "g", a)
	n.MustAddGate(netlist.Output, "po", g)
	m := scoap.Compute(n)
	e := NewExtractor(n, m)
	e.ConeSize = 100 // far larger than the design
	dst := make([]float64, Dim(100))
	e.Feature(g, dst)
	// Only a handful of slots are populated; the tail must be zeros.
	nonzero := 0
	for _, v := range dst {
		if v != 0 {
			nonzero++
		}
	}
	if nonzero > 3*4 {
		t.Errorf("too many populated values (%d) for a 3-cell design", nonzero)
	}
}

func TestFeatureReflectsObservationPoint(t *testing.T) {
	// Inserting an OP changes the fan-out cone contents of the target.
	n := netlist.New("op")
	a := n.MustAddGate(netlist.Input, "a")
	g := n.MustAddGate(netlist.Not, "g", a)
	n.MustAddGate(netlist.Output, "po", g)
	m := scoap.Compute(n)
	e := NewExtractor(n, m)
	e.ConeSize = 4
	before := make([]float64, Dim(4))
	e.Feature(a, before)

	if _, err := n.InsertObservationPoint(a); err != nil {
		t.Fatal(err)
	}
	m2 := scoap.Compute(n)
	e2 := NewExtractor(n, m2)
	e2.ConeSize = 4
	after := make([]float64, Dim(4))
	e2.Feature(a, after)

	same := true
	for i := range before {
		if before[i] != after[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("feature vector unchanged by observation point")
	}
}

func TestFeatureWrongLengthPanics(t *testing.T) {
	n := netlist.New("p")
	a := n.MustAddGate(netlist.Input, "a")
	n.MustAddGate(netlist.Output, "po", a)
	e := NewExtractor(n, scoap.Compute(n))
	defer func() {
		if recover() == nil {
			t.Error("wrong destination length should panic")
		}
	}()
	e.Feature(a, make([]float64, 3))
}
