// OP insertion: the paper's end-to-end flow on one design. A multi-stage
// GCN trained on two sibling designs drives iterative observation point
// insertion; a SCOAP-greedy industrial-tool stand-in processes an
// identical copy; both results are scored by the same fault simulator
// (the Table 3 comparison in miniature).
package main

import (
	"fmt"
	"log"

	"repro/internal/circuitgen"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/fault"
	"repro/internal/opi"
	"repro/internal/scoap"
)

func main() {
	const gates = 2500
	train1 := dataset.Build("T1", circuitgen.Config{Seed: 21, NumGates: gates}, 1024, dataset.DefaultThreshold, 21)
	train2 := dataset.Build("T2", circuitgen.Config{Seed: 22, NumGates: gates}, 1024, dataset.DefaultThreshold, 22)
	target := dataset.Build("DUT", circuitgen.Config{Seed: 23, NumGates: gates}, 1024, dataset.DefaultThreshold, 23)

	// Train the cascade on the sibling designs (imbalanced labels).
	mopt := core.DefaultMultiStageOptions()
	mopt.ModelCfg = core.Config{Dims: []int{16, 32, 64}, FCDims: []int{32, 32}, NumClasses: 2, Seed: 5}
	mopt.Train = core.DefaultTrainOptions()
	mopt.Train.Epochs = 60
	mopt.Train.LR = 0.02
	ms, err := core.TrainMultiStage([]*core.Graph{train1.Graph, train2.Graph}, mopt)
	if err != nil {
		log.Fatal(err)
	}

	tpg := fault.TPGConfig{MaxPatterns: 8192, Seed: 99}
	before := opi.Evaluate(target.Netlist.Clone(), tpg)
	fmt.Printf("before insertion : OPs %4d  patterns %4d  coverage %.2f%%\n",
		before.OPs, before.Patterns, 100*before.Coverage)

	// GCN flow on a private copy.
	flowNet := target.Netlist.Clone()
	flowMeas := scoap.Compute(flowNet)
	flowGraph := core.FromNetlist(flowNet, flowMeas)
	res := opi.RunFlow(flowNet, flowMeas, flowGraph, ms, opi.FlowConfig{
		PerIteration: 32,
		Progress: func(iter, positives, inserted int) {
			fmt.Printf("  flow iteration %d: %d positive predictions, %d OPs placed\n",
				iter, positives, inserted)
		},
	})
	gcnEval := opi.Evaluate(flowNet, tpg)
	fmt.Printf("GCN flow         : OPs %4d  patterns %4d  coverage %.2f%%  (%d iterations)\n",
		gcnEval.OPs, gcnEval.Patterns, 100*gcnEval.Coverage, res.Iterations)

	// Industrial-tool stand-in on another copy, threshold calibrated on
	// the training designs.
	cut := opi.CalibrateCOThreshold(train1.Measures, train1.Graph.Labels, 0.1)
	toolNet := target.Netlist.Clone()
	toolMeas := scoap.Compute(toolNet)
	opi.IndustrialBaseline(toolNet, toolMeas, opi.BaselineConfig{COThreshold: cut, PerIteration: 32})
	toolEval := opi.Evaluate(toolNet, tpg)
	fmt.Printf("industrial tool  : OPs %4d  patterns %4d  coverage %.2f%%\n",
		toolEval.OPs, toolEval.Patterns, 100*toolEval.Coverage)

	if toolEval.OPs > 0 {
		fmt.Printf("\nGCN/tool OP ratio: %.2f (the paper reports 0.89)\n",
			float64(gcnEval.OPs)/float64(toolEval.OPs))
	}
}
