package experiments

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/obs"
)

// Fig9Row compares single-GCN and multi-stage F1 on one held-out design.
type Fig9Row struct {
	Design            string
	SingleF1, MultiF1 float64
}

// Fig9Result is the F1 comparison across designs.
type Fig9Result struct {
	Rows []Fig9Row
}

// Fig9 reproduces the imbalanced-classification comparison: for each
// design, train on the other three *imbalanced* graphs (all labels, no
// balancing) a single unweighted GCN (GCN-S) and the 3-stage cascade
// (GCN-M), then score F1 on the held-out design. Accuracy would be
// misleading at <1% positive rate, as the paper notes.
func Fig9(cfg Config) Fig9Result {
	span := obs.StartSpan("experiments/fig9")
	defer span.End()
	cfg = cfg.withDefaults()
	suite := cfg.suite()
	var res Fig9Result
	for test := range suite {
		var graphs []*core.Graph
		for d := range suite {
			if d != test {
				graphs = append(graphs, suite[d].Graph)
			}
		}

		// GCN-S: one model trained directly on the imbalanced data with
		// the standard class-weighting recipe (weight = imbalance ratio).
		// Without any weighting a single model degenerates to
		// all-negative (F1 = 0), which would make the comparison trivial.
		single := core.MustNewModel(cfg.modelConfig(3, cfg.Seed+11))
		sopt := cfg.trainOptions()
		sopt.PosWeight = imbalanceRatio(graphs)
		if _, err := core.Train(single, graphs, nil, sopt); err != nil {
			panic(err)
		}
		singleC := metrics.NewConfusion(single.PredictLabels(suite[test].Graph), suite[test].Graph.Labels)

		mopt := core.DefaultMultiStageOptions()
		mopt.ModelCfg = cfg.modelConfig(3, cfg.Seed+13)
		mopt.Train = cfg.trainOptions()
		ms, err := core.TrainMultiStage(graphs, mopt)
		if err != nil {
			panic(err)
		}
		multiC := metrics.NewConfusion(ms.Predict(suite[test].Graph), suite[test].Graph.Labels)

		res.Rows = append(res.Rows, Fig9Row{
			Design:   suite[test].Name,
			SingleF1: singleC.F1(),
			MultiF1:  multiC.F1(),
		})
	}
	return res
}

// imbalanceRatio returns neg/pos over the labeled nodes, clamped to a
// sane training range.
func imbalanceRatio(graphs []*core.Graph) float64 {
	pos, neg := 0, 0
	for _, g := range graphs {
		p, n := g.CountLabels()
		pos += p
		neg += n
	}
	if pos == 0 {
		return 1
	}
	r := float64(neg) / float64(pos)
	if r < 1.5 {
		r = 1.5
	}
	if r > 64 {
		r = 64
	}
	return r
}

// Fprint writes the comparison (the figure's bar values).
func (r Fig9Result) Fprint(w io.Writer) {
	fmt.Fprintln(w, "Figure 9: F1-score comparison (imbalanced dataset)")
	fmt.Fprintf(w, "%-8s %10s %10s\n", "Design", "GCN-S", "GCN-M")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-8s %10.3f %10.3f\n", row.Design, row.SingleF1, row.MultiF1)
	}
}
