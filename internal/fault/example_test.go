package fault_test

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/netlist"
)

// Random-pattern test generation with fault dropping on a tiny circuit:
// the XOR makes everything observable, so coverage is complete within a
// few patterns.
func ExampleGenerateTests() {
	n := netlist.New("demo")
	a := n.MustAddGate(netlist.Input, "a")
	b := n.MustAddGate(netlist.Input, "b")
	x := n.MustAddGate(netlist.Xor, "x", a, b)
	n.MustAddGate(netlist.Output, "po", x)

	res := fault.GenerateTests(n, fault.TPGConfig{MaxPatterns: 512, Seed: 1})
	fmt.Printf("coverage %.0f%% of %d faults\n", 100*res.Coverage, res.TotalFaults)
	// Output: coverage 100% of 6 faults
}

// Labeling difficult-to-observe nodes, the commercial-tool substitute
// used throughout the reproduction: a net blocked behind a wide AND
// guard is observed in almost no random patterns.
func ExampleLabelDifficult() {
	n := netlist.New("guarded")
	payload := n.MustAddGate(netlist.Input, "p")
	blocked := n.MustAddGate(netlist.Not, "blocked", payload)
	cur := blocked
	for i := 0; i < 12; i++ {
		g := n.MustAddGate(netlist.Input, "")
		cur = n.MustAddGate(netlist.And, "", cur, g)
	}
	n.MustAddGate(netlist.Output, "po", cur)

	const patterns = 2048
	counts := fault.ObservabilityCounts(n, patterns, 1)
	labels := fault.LabelDifficult(n, counts, patterns, 0.005)
	fmt.Printf("blocked net difficult: %v\n", labels[blocked] == 1)
	// Output: blocked net difficult: true
}
