package fault

import (
	"math/bits"
	"math/rand"
	"sort"

	"repro/internal/atpg"
	"repro/internal/netlist"
)

// This file combines the random-pattern generator with deterministic
// PODEM top-up, mirroring commercial ATPG practice: random patterns with
// fault dropping knock out the easy faults, then each surviving fault is
// targeted individually. Generated deterministic patterns are packed 64
// per word, their unassigned inputs filled randomly, and replayed through
// the bit-parallel simulator so that one targeted pattern can drop many
// other faults for free.

// ATPGResult extends TPGResult with the deterministic phase's outcome.
type ATPGResult struct {
	TPGResult
	// DeterministicPatterns counts the PODEM patterns that detected at
	// least one new fault when replayed.
	DeterministicPatterns int
	// ProvedUntestable counts faults PODEM exhausted without a test.
	ProvedUntestable int
	// Aborted counts faults abandoned at the backtrack limit.
	Aborted int
	// TestCoverage is Detected / (TotalFaults - ProvedUntestable), the
	// number commercial tools quote as coverage of testable faults.
	TestCoverage float64
}

// ATPGConfig controls the combined flow.
type ATPGConfig struct {
	Random TPGConfig
	// BacktrackLimit bounds each PODEM search; default 200.
	BacktrackLimit int
	// MaxTargets bounds how many residual faults are targeted; 0 means
	// all of them.
	MaxTargets int
}

// GenerateTestsWithATPG runs random-pattern generation followed by
// deterministic top-up and returns the combined metrics.
func GenerateTestsWithATPG(n *netlist.Netlist, cfg ATPGConfig) ATPGResult {
	base := GenerateTests(n, cfg.Random)
	res := ATPGResult{TPGResult: base}

	// Re-derive the surviving fault list: GenerateTests only samples the
	// survivors, so replay the random phase's bookkeeping.
	order := survivors(n, cfg.Random)
	liveSet := make(map[SAFault]bool, len(order))
	for _, f := range order {
		liveSet[f] = true
	}

	gen := atpg.NewGenerator(n)
	if cfg.BacktrackLimit > 0 {
		gen.BacktrackLimit = cfg.BacktrackLimit
	}
	rng := rand.New(rand.NewSource(cfg.Random.Seed + 0x5eed))
	sim := NewSimulator(n)

	// Pattern packing: one word per source cell, lanes are patterns.
	words := make(map[int32]uint64)
	lane := 0

	flush := func() {
		if lane == 0 {
			return
		}
		sim.BatchFrom(func(id int32) uint64 {
			if w, ok := words[id]; ok {
				return w
			}
			return rng.Uint64() // source untouched by any packed pattern
		})
		vals, obs := sim.Values(), sim.Obs()
		mask := ^uint64(0)
		if lane < WordSize {
			mask = (1 << uint(lane)) - 1
		}
		var detectedLanes uint64
		for f := range liveSet {
			m := obs[f.Node] & mask
			if f.StuckAt1 {
				m &= ^vals[f.Node]
			} else {
				m &= vals[f.Node]
			}
			if m != 0 {
				delete(liveSet, f)
				detectedLanes |= 1 << uint(bits.TrailingZeros64(m))
			}
		}
		res.DeterministicPatterns += bits.OnesCount64(detectedLanes)
		words = make(map[int32]uint64)
		lane = 0
	}

	targeted := 0
	for _, f := range order {
		if !liveSet[f] {
			continue // dropped by an earlier deterministic pattern
		}
		if cfg.MaxTargets > 0 && targeted >= cfg.MaxTargets {
			break
		}
		targeted++
		r := gen.Generate(atpg.Fault{Node: f.Node, StuckAt1: f.StuckAt1})
		switch {
		case r.Success:
			// Iterate the pattern in sorted key order: the RNG fills in
			// X bits along the way, and map order would make the run
			// nondeterministic.
			keys := make([]int32, 0, len(r.Pattern))
			for id := range r.Pattern {
				keys = append(keys, id)
			}
			sort.Slice(keys, func(a, b int) bool { return keys[a] < keys[b] })
			for _, id := range keys {
				v := r.Pattern[id]
				bit := uint64(0)
				switch v {
				case atpg.One:
					bit = 1
				case atpg.X:
					bit = rng.Uint64() & 1
				}
				w, ok := words[id]
				if !ok {
					// Earlier lanes of this word were implicit random
					// filler; materialize them so they stay fixed.
					w = rng.Uint64() & ((1 << uint(lane)) - 1)
				}
				w = (w &^ (1 << uint(lane))) | (bit << uint(lane))
				words[id] = w
			}
			lane++
			if lane == WordSize {
				flush()
			}
		case r.Aborted:
			res.Aborted++
		default:
			res.ProvedUntestable++
			delete(liveSet, f)
		}
	}
	flush()

	res.Detected = res.TotalFaults - len(liveSet) - res.ProvedUntestable
	res.Coverage = float64(res.Detected) / float64(max(1, res.TotalFaults))
	testable := res.TotalFaults - res.ProvedUntestable
	res.TestCoverage = float64(res.Detected) / float64(max(1, testable))
	res.PatternsUsed = base.PatternsUsed + res.DeterministicPatterns
	res.UndetectedSample = res.UndetectedSample[:0]
	for f := range liveSet {
		if len(res.UndetectedSample) >= 16 {
			break
		}
		res.UndetectedSample = append(res.UndetectedSample, f)
	}
	return res
}

// survivors re-runs the random phase's detection bookkeeping to recover
// the undetected fault list (GenerateTests reports only counts).
func survivors(n *netlist.Netlist, cfg TPGConfig) []SAFault {
	cfg = cfg.withDefaults()
	sim := NewSimulator(n)
	rng := rand.New(rand.NewSource(cfg.Seed))
	live := FaultUniverse(n)
	words := (cfg.MaxPatterns + WordSize - 1) / WordSize
	stall := 0
	total := len(live)
	for w := 0; w < words && len(live) > 0; w++ {
		sim.Batch(rng)
		vals, obs := sim.Values(), sim.Obs()
		kept := live[:0]
		detected := 0
		for _, f := range live {
			mask := obs[f.Node]
			if f.StuckAt1 {
				mask &= ^vals[f.Node]
			} else {
				mask &= vals[f.Node]
			}
			if mask == 0 {
				kept = append(kept, f)
			} else {
				detected++
			}
		}
		live = kept
		if detected == 0 {
			stall++
			if stall >= cfg.StallWords {
				break
			}
		} else {
			stall = 0
		}
		if cfg.TargetCoverage > 0 &&
			float64(total-len(live)) >= cfg.TargetCoverage*float64(total) {
			break
		}
	}
	return live
}
