package obs

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// withTracing runs f with instrumentation + tracing on and a clean
// registry, restoring the disabled defaults afterwards.
func withTracing(t *testing.T, f func()) {
	t.Helper()
	Reset()
	Enable()
	EnableTracing()
	defer func() {
		DisableTracing()
		Disable()
		Reset()
	}()
	f()
}

// TestTraceGolden pins the exported Chrome Trace Event Format bytes
// against a committed golden file so drift in the serialized layout is
// a conscious decision (regenerate with
// go test ./internal/obs -run TraceGolden -update).
func TestTraceGolden(t *testing.T) {
	spans := []traceEvent{
		{Name: "train/epoch/worker", Ph: "X", TS: 120, Dur: 400, PID: tracePID, TID: 2},
		{Name: "train/epoch/worker", Ph: "X", TS: 100, Dur: 450, PID: tracePID, TID: 1},
		{Name: "train/epoch", Ph: "X", TS: 90, Dur: 500, PID: tracePID, TID: 0},
	}
	events := []EventRecord{
		{Name: "train.epoch", TS: 600_000, Attrs: map[string]any{
			"epoch": int64(0), "loss": 0.6931, "workers": int64(2),
		}},
	}
	threads := map[int64]string{1: "train worker 0", 2: "train worker 1"}

	got, err := marshalTrace(spans, events, threads, 3)
	if err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "trace_golden.json")
	if *update {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Errorf("trace JSON drifted from golden file.\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestTraceEndToEnd exercises the live path: spans with worker tids and
// events recorded under tracing must export as a valid Trace Event
// Format document with one timeline per worker.
func TestTraceEndToEnd(t *testing.T) {
	withTracing(t, func() {
		TraceThreadName(1, "train worker 0")
		TraceThreadName(2, "train worker 1")
		root := StartSpan("train")
		ep := root.Child("epoch")
		for w := int64(1); w <= 2; w++ {
			ws := ep.ChildTID("worker", w)
			time.Sleep(time.Millisecond)
			ws.End()
		}
		ep.End()
		root.End()
		Event("train.epoch", I("epoch", 0), F("loss", 0.5))

		path := filepath.Join(t.TempDir(), "trace.json")
		if err := WriteTrace(path); err != nil {
			t.Fatal(err)
		}
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		var doc struct {
			TraceEvents []struct {
				Name string         `json:"name"`
				Ph   string         `json:"ph"`
				TS   float64        `json:"ts"`
				Dur  float64        `json:"dur"`
				PID  int            `json:"pid"`
				TID  int64          `json:"tid"`
				Args map[string]any `json:"args"`
			} `json:"traceEvents"`
			DisplayTimeUnit string `json:"displayTimeUnit"`
		}
		if err := json.Unmarshal(raw, &doc); err != nil {
			t.Fatalf("trace is not valid JSON: %v", err)
		}
		if doc.DisplayTimeUnit != "ms" {
			t.Errorf("displayTimeUnit = %q", doc.DisplayTimeUnit)
		}

		workerTIDs := map[int64]bool{}
		var sawEpochSpan, sawInstant bool
		threadNames := map[int64]string{}
		for _, ev := range doc.TraceEvents {
			switch ev.Ph {
			case "X":
				if ev.Dur <= 0 {
					t.Errorf("complete event %q has dur %v", ev.Name, ev.Dur)
				}
				if ev.Name == "train/epoch/worker" {
					workerTIDs[ev.TID] = true
				}
				if ev.Name == "train/epoch" {
					sawEpochSpan = true
				}
			case "i":
				if ev.Name == "train.epoch" {
					sawInstant = true
					if ev.Args["loss"] != 0.5 {
						t.Errorf("instant args = %v", ev.Args)
					}
				}
			case "M":
				if ev.Name == "thread_name" {
					threadNames[ev.TID], _ = ev.Args["name"].(string)
				}
			default:
				t.Errorf("unexpected phase %q", ev.Ph)
			}
		}
		if !workerTIDs[1] || !workerTIDs[2] {
			t.Errorf("worker spans not split one tid per worker: %v", workerTIDs)
		}
		if !sawEpochSpan || !sawInstant {
			t.Errorf("missing span/instant events (epoch=%v instant=%v)", sawEpochSpan, sawInstant)
		}
		if threadNames[1] != "train worker 0" || threadNames[2] != "train worker 1" || threadNames[0] != "main" {
			t.Errorf("thread names = %v", threadNames)
		}
	})
}

func TestTracingOffRecordsNothing(t *testing.T) {
	Reset()
	Enable()
	defer func() {
		Disable()
		Reset()
	}()
	s := StartSpan("quiet")
	s.Child("inner").End()
	s.End()
	tr.mu.Lock()
	n := len(tr.spans)
	tr.mu.Unlock()
	if n != 0 {
		t.Fatalf("tracing disabled but %d span events buffered", n)
	}
}

func TestTraceCapacityDropsNotGrows(t *testing.T) {
	withTracing(t, func() {
		SetTraceCapacity(4)
		defer SetTraceCapacity(defaultTraceCapacity)
		for i := 0; i < 10; i++ {
			StartSpan("s").End()
		}
		tr.mu.Lock()
		n, dropped := len(tr.spans), tr.dropped
		tr.mu.Unlock()
		if n != 4 || dropped != 6 {
			t.Fatalf("buffered %d dropped %d, want 4/6", n, dropped)
		}
	})
}

func TestEventRingKeepsNewest(t *testing.T) {
	Reset()
	Enable()
	SetEventCapacity(3)
	defer func() {
		Disable()
		SetEventCapacity(defaultEventCapacity)
	}()
	for i := int64(0); i < 5; i++ {
		Event("tick", I("i", i))
	}
	evs, overwrote := events.snapshot()
	if len(evs) != 3 || overwrote != 2 {
		t.Fatalf("ring has %d events, overwrote %d; want 3/2", len(evs), overwrote)
	}
	for idx, want := range []int64{2, 3, 4} {
		if got := evs[idx].Attrs["i"]; got != want {
			t.Errorf("event %d = %v, want i=%d", idx, evs[idx], want)
		}
	}
	snap := TakeSnapshot()
	if len(snap.Events) != 3 || snap.EventsOverwritten != 2 {
		t.Errorf("snapshot events = %d overwritten = %d", len(snap.Events), snap.EventsOverwritten)
	}
}

func TestEventDisabledIsFreeAndSilent(t *testing.T) {
	Reset()
	Disable()
	allocs := testing.AllocsPerRun(100, func() {
		Event("nope")
	})
	if allocs != 0 {
		t.Fatalf("disabled attr-less Event allocates %.1f bytes/op, want 0", allocs)
	}
	Event("nope", I("x", 1))
	if evs := Events(); len(evs) != 0 {
		t.Fatalf("disabled Event recorded %d entries", len(evs))
	}
}
