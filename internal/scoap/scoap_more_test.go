package scoap

import (
	"testing"

	"repro/internal/circuitgen"
	"repro/internal/netlist"
)

func TestThreeInputXorControllability(t *testing.T) {
	// XOR3 of PIs: parity folding. CC1(xor of two PIs) = 3, then folding
	// with the third PI: CC1 = min(3+1, 3+1)+1 = 5 (using intermediate
	// pair costs without the +1 until the end: the fold keeps running
	// costs, so expect CC = min-combination + 1 at the gate).
	n := netlist.New("x3")
	a := n.MustAddGate(netlist.Input, "a")
	b := n.MustAddGate(netlist.Input, "b")
	c := n.MustAddGate(netlist.Input, "c")
	x := n.MustAddGate(netlist.Xor, "x", a, b, c)
	n.MustAddGate(netlist.Output, "po", x)
	m := Compute(n)
	// Fold: (a,b) → c0=min(1+1,1+1)=2, c1=2; with c → c0=min(2+1,2+1)=3,
	// c1=3; +1 → 4.
	if m.CC0[x] != 4 || m.CC1[x] != 4 {
		t.Errorf("XOR3 CC = (%d,%d), want (4,4)", m.CC0[x], m.CC1[x])
	}
}

func TestObsCellConvention(t *testing.T) {
	n := netlist.New("obs")
	a := n.MustAddGate(netlist.Input, "a")
	g := n.MustAddGate(netlist.Not, "g", a)
	n.MustAddGate(netlist.Output, "po", g)
	op, err := n.InsertObservationPoint(g)
	if err != nil {
		t.Fatal(err)
	}
	m := Compute(n)
	// The paper's [0,1,1,0] convention: CC0=CC1=1, CO=0 for the new node.
	if m.CC0[op] != 1 || m.CC1[op] != 1 || m.CO[op] != 0 {
		t.Errorf("Obs cell measures = (%d,%d,%d), want (1,1,0)", m.CC0[op], m.CC1[op], m.CO[op])
	}
}

func TestMultipleFanoutTakesMinObservability(t *testing.T) {
	// g fans out to a cheap path (direct PO) and an expensive one; CO(g)
	// must be the cheap branch.
	n := netlist.New("fo")
	a := n.MustAddGate(netlist.Input, "a")
	b := n.MustAddGate(netlist.Input, "b")
	g := n.MustAddGate(netlist.Buf, "g", a)
	exp := n.MustAddGate(netlist.And, "exp", g, b)
	n.MustAddGate(netlist.Output, "po1", exp)
	n.MustAddGate(netlist.Output, "po2", g)
	m := Compute(n)
	if m.CO[g] != 0 {
		t.Errorf("CO(g) = %d, want 0 via the direct PO", m.CO[g])
	}
}

func TestIncrementalMultipleInsertions(t *testing.T) {
	n := circuitgen.Generate("multi", circuitgen.Config{Seed: 31, NumGates: 800})
	m := Compute(n)
	for i := 0; i < 5; i++ {
		target := int32(100 + i*123)
		if n.Type(target) == netlist.Output || n.Type(target) == netlist.Obs {
			continue
		}
		op, err := n.InsertObservationPoint(target)
		if err != nil {
			t.Fatal(err)
		}
		m.UpdateAfterObservationPoint(n, op)
	}
	full := Compute(n)
	for id := int32(0); id < int32(n.NumGates()); id++ {
		if m.CO[id] != full.CO[id] || m.CC0[id] != full.CC0[id] || m.CC1[id] != full.CC1[id] {
			t.Fatalf("node %d diverged after repeated incremental updates", id)
		}
	}
}

func TestCloneMeasures(t *testing.T) {
	n := circuitgen.Generate("cl", circuitgen.Config{Seed: 32, NumGates: 200})
	m := Compute(n)
	c := m.Clone()
	c.CO[0] = 12345
	if m.CO[0] == 12345 {
		t.Error("clone shares storage")
	}
}

func TestSaturationArithmetic(t *testing.T) {
	if satAdd(Unobservable, 5) != Unobservable {
		t.Error("satAdd must saturate")
	}
	if satAdd(Unobservable-1, 10) != Unobservable {
		t.Error("satAdd overflow must clamp")
	}
	if satSub(Unobservable, 5) != Unobservable {
		t.Error("satSub of saturated total stays saturated")
	}
	if satSub(10, 4) != 6 {
		t.Error("satSub basic arithmetic")
	}
}

func TestAttributesClampControllability(t *testing.T) {
	// Build a chain long enough that CC explodes past the clamp.
	n := netlist.New("deep")
	cur := n.MustAddGate(netlist.Input, "a")
	b := n.MustAddGate(netlist.Input, "b")
	for i := 0; i < 40; i++ {
		cur = n.MustAddGate(netlist.And, "", cur, b)
	}
	n.MustAddGate(netlist.Output, "po", cur)
	m := Compute(n)
	attrs := m.Attributes(n, 10)
	for id := range attrs {
		if attrs[id][1] > 10 || attrs[id][2] > 10 || attrs[id][3] > 10 {
			t.Fatalf("node %d attributes not clamped: %v", id, attrs[id])
		}
	}
}
