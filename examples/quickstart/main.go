// Quickstart: build a netlist, compute SCOAP testability attributes,
// label difficult-to-observe nodes with the fault simulator, train a
// small GCN on two designs, and classify the nodes of a third, unseen
// design — the paper's core loop in miniature.
package main

import (
	"fmt"
	"log"

	"repro/internal/circuitgen"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/metrics"
)

func main() {
	// 1. Generate three small designs and label them behaviourally: a
	//    node is difficult-to-observe when almost no random pattern
	//    propagates its value to an observable point.
	var benches []*dataset.Benchmark
	for seed := int64(1); seed <= 3; seed++ {
		b := dataset.Build(fmt.Sprintf("demo%d", seed),
			circuitgen.Config{Seed: seed, NumGates: 2000},
			1024, dataset.DefaultThreshold, seed)
		nodes, edges, pos, _ := b.Stats()
		fmt.Printf("%s: %d nodes, %d edges, %d difficult-to-observe\n",
			b.Name, nodes, edges, pos)
		benches = append(benches, b)
	}

	// 2. Train a GCN on balanced samples of the first two designs. The
	//    model sees only the graph and the [LL, C0, C1, O] attributes.
	train := []*core.Graph{benches[0].Graph, benches[1].Graph}
	labels := [][]int{
		dataset.BalancedLabels(benches[0].Graph, 11),
		dataset.BalancedLabels(benches[1].Graph, 12),
	}
	model := core.MustNewModel(core.Config{
		Dims: []int{16, 32, 64}, FCDims: []int{32, 32}, NumClasses: 2, Seed: 7,
	})
	opt := core.DefaultTrainOptions()
	opt.Epochs = 60
	opt.LR = 0.02
	opt.Progress = func(epoch int, loss float64) {
		if epoch%20 == 0 {
			fmt.Printf("epoch %3d: loss %.4f\n", epoch, loss)
		}
	}
	if _, err := core.Train(model, train, labels, opt); err != nil {
		log.Fatal(err)
	}

	// 3. Classify the held-out design. The model is inductive: it has
	//    never seen this graph.
	test := benches[2]
	testLabels := dataset.BalancedLabels(test.Graph, 13)
	pred := model.PredictLabels(test.Graph)
	c := metrics.NewConfusion(pred, testLabels)
	fmt.Printf("\nunseen design %s (balanced set): accuracy %.3f, F1 %.3f\n",
		test.Name, c.Accuracy(), c.F1())
}
