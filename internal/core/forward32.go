package core

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// This file implements the float32 inference mode (DESIGN.md decision
// 10): trained float64 parameters are narrowed once into a cached
// weights32 bundle, and Predict/PredictProbs score with float32 SpMM and
// matmul kernels — roughly halving the memory traffic of a forward
// pass. Training, gradient checking, and the incremental-update session
// stay float64; the refcheck differential suite pins the f32/f64
// divergence at ≤1e-4 relative error over seeded circuits.

// Float32Inferencer is the capability the serving/CLI layers probe to
// flip a loaded predictor into float32 scoring. *Model and *MultiStage
// implement it.
type Float32Inferencer interface {
	SetFloat32Inference(on bool)
	Float32Inference() bool
}

// weights32 is the one-time float32 conversion of a model's trained
// parameters.
type weights32 struct {
	wpr, wsu float32
	encW     []*tensor.Dense32 // per depth, In×Out
	encB     [][]float32
	fcW      []*tensor.Dense32
	fcB      [][]float32
}

// SetFloat32Inference toggles the float32 scoring path for Predict and
// PredictProbs. Enabling (or re-enabling) drops any cached weights32 so
// the next prediction re-converts from the current float64 parameters —
// call it again after mutating parameters by hand. Load and
// CopyParamsFrom invalidate the cache automatically. ForwardFull /
// NewIncremental (the incremental session) and training always run
// float64 regardless of this flag.
func (m *Model) SetFloat32Inference(on bool) {
	m.f32 = on
	m.w32 = nil
}

// Float32Inference reports whether float32 scoring is enabled.
func (m *Model) Float32Inference() bool { return m.f32 }

// ensureWeights32 narrows the trained parameters, once.
func (m *Model) ensureWeights32() *weights32 {
	if m.w32 != nil {
		return m.w32
	}
	w := &weights32{wpr: float32(m.Wpr.Data[0]), wsu: float32(m.Wsu.Data[0])}
	for _, enc := range m.Enc {
		w.encW = append(w.encW, tensor.FromDense(&tensor.Dense{Rows: enc.In, Cols: enc.Out, Data: enc.W.Data}))
		w.encB = append(w.encB, narrow(enc.B.Data))
	}
	for _, l := range m.FC.Layers {
		w.fcW = append(w.fcW, tensor.FromDense(&tensor.Dense{Rows: l.In, Cols: l.Out, Data: l.W.Data}))
		w.fcB = append(w.fcB, narrow(l.B.Data))
	}
	m.w32 = w
	return w
}

func narrow(xs []float64) []float32 {
	out := make([]float32, len(xs))
	for i, v := range xs {
		out[i] = float32(v)
	}
	return out
}

// buf32 is buf for the float32 scratch set.
func (m *Model) buf32(key string, rows, cols int) *tensor.Dense32 {
	if m.scratch32 == nil {
		m.scratch32 = make(map[string]*tensor.Dense32)
	}
	if d, ok := m.scratch32[key]; ok && d.Rows == rows && d.Cols == cols {
		return d
	}
	d := tensor.NewDense32(rows, cols)
	m.scratch32[key] = d
	return d
}

// predict32 is the float32 mirror of forward(g, false) + softmax: the
// same aggregate→encode→ReLU pipeline per depth and the same FC head,
// all in float32, with the final softmax evaluated in float64 from the
// f32 logits (the exp/normalize is O(N·C) and cheap; doing it wide
// avoids compounding rounding in the probabilities the OPI flow
// thresholds against).
func (m *Model) predict32(g *Graph) []float64 {
	w := m.ensureWeights32()
	P, S := g.Pred(), g.Succ()
	cur := m.buf32("x", g.N, g.X.Cols)
	cur.CopyFromDense(g.X)
	for d := range m.Enc {
		pe := m.buf32(fmt.Sprintf("pe%d", d), g.N, cur.Cols)
		se := m.buf32(fmt.Sprintf("se%d", d), g.N, cur.Cols)
		agg := m.buf32(fmt.Sprintf("agg%d", d), g.N, cur.Cols)
		next := m.buf32(fmt.Sprintf("e%d", d), g.N, w.encW[d].Cols)
		P.MulDense32Parallel(pe, cur, 0)
		S.MulDense32Parallel(se, cur, 0)
		agg.CopyFrom(cur)
		agg.AxpyInPlace(w.wpr, pe)
		agg.AxpyInPlace(w.wsu, se)
		tensor.MatMul32(next, agg, w.encW[d])
		next.AddRowVector(w.encB[d])
		next.ReLUInPlace()
		cur = next
	}
	for i := range w.fcW {
		out := m.buf32(fmt.Sprintf("fc%d", i), g.N, w.fcW[i].Cols)
		tensor.MatMul32(out, cur, w.fcW[i])
		out.AddRowVector(w.fcB[i])
		if i+1 < len(w.fcW) {
			out.ReLUInPlace()
		}
		cur = out
	}
	// Positive-class probability via a float64 stable softmax per row.
	probs := make([]float64, g.N)
	for i := 0; i < g.N; i++ {
		row := cur.Row(i)
		max := math.Inf(-1)
		for _, v := range row {
			if float64(v) > max {
				max = float64(v)
			}
		}
		var sum, pos float64
		for j, v := range row {
			e := math.Exp(float64(v) - max)
			sum += e
			if j == 1 {
				pos = e
			}
		}
		probs[i] = pos / sum
	}
	return probs
}

// SetFloat32Inference flips every stage of the cascade; the combining
// logic (CombineStageProbs) is precision-agnostic.
func (ms *MultiStage) SetFloat32Inference(on bool) {
	for _, s := range ms.Stages {
		s.SetFloat32Inference(on)
	}
}

// Float32Inference reports whether the cascade's stages score in
// float32 (true only when every stage does).
func (ms *MultiStage) Float32Inference() bool {
	if len(ms.Stages) == 0 {
		return false
	}
	for _, s := range ms.Stages {
		if !s.Float32Inference() {
			return false
		}
	}
	return true
}
