// Scalability: the Figure 10 comparison in miniature. The same trained
// GCN classifies whole netlists under (a) the paper's sparse matrix
// formulation and (b) naive per-node recursive aggregation as in prior
// inductive GCNs [12]. The matrix path wins by orders of magnitude and
// the gap is why the paper's approach deploys on million-gate designs.
package main

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/circuitgen"
	"repro/internal/core"
	"repro/internal/scoap"
)

func main() {
	model := core.MustNewModel(core.DefaultConfig())
	fmt.Printf("%10s %14s %18s %10s\n", "#nodes", "matrix (s)", "recursive est (s)", "speedup")
	for _, size := range []int{1000, 5000, 20000, 50000} {
		n := circuitgen.Generate("s", circuitgen.Config{Seed: int64(size), NumGates: size})
		g := core.FromNetlist(n, scoap.Compute(n))

		start := time.Now()
		model.Forward(g)
		matrix := time.Since(start).Seconds()

		// Recursion is embarrassingly per-node: time a random sample and
		// scale. Per-node cost varies a lot (hub neighborhoods explode),
		// so sample widely.
		rng := rand.New(rand.NewSource(1))
		const sample = 128
		nodes := make([]int32, sample)
		for i := range nodes {
			nodes[i] = int32(rng.Intn(g.N))
		}
		start = time.Now()
		model.InferRecursive(g, nodes)
		recursive := time.Since(start).Seconds() / sample * float64(g.N)

		fmt.Printf("%10d %14.4f %18.2f %9.0fx\n", g.N, matrix, recursive, recursive/matrix)
	}
	fmt.Println("\n(recursive time extrapolated from a node sample; running every node")
	fmt.Println(" is exactly the pathology the matrix formulation removes)")
}
