package core

import (
	"fmt"
	"io"
	"math/rand"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// Config describes the GCN architecture. The defaults reproduce the
// paper's final network: search depth D = 3 with embedding dimensions
// K = [32, 64, 128], followed by four fully connected layers of
// dimensions 64, 64, 128 and 2.
type Config struct {
	// Dims holds the embedding dimension after each aggregate+encode
	// step; len(Dims) is the search depth D.
	Dims []int
	// FCDims holds the hidden widths of the classifier head; the final
	// NumClasses output layer is appended automatically.
	FCDims []int
	// NumClasses is the output arity (2: easy / difficult to observe).
	NumClasses int
	// Seed drives parameter initialization.
	Seed int64
	// NoPredecessors / NoSuccessors ablate one aggregation direction of
	// Equation 1 (the corresponding weight is frozen at zero). The full
	// bidirectional aggregator is the paper's design choice; the
	// ablation benchmarks quantify what each direction buys.
	NoPredecessors bool
	NoSuccessors   bool
}

// DefaultConfig returns the paper's architecture.
func DefaultConfig() Config {
	return Config{
		Dims:       []int{32, 64, 128},
		FCDims:     []int{64, 64, 128},
		NumClasses: 2,
	}
}

// Depth returns the search depth D.
func (c Config) Depth() int { return len(c.Dims) }

func (c Config) validate() error {
	if len(c.Dims) == 0 {
		return fmt.Errorf("core: config needs at least one embedding layer")
	}
	for _, d := range c.Dims {
		if d <= 0 {
			return fmt.Errorf("core: non-positive embedding dim %d", d)
		}
	}
	if c.NumClasses < 2 {
		return fmt.Errorf("core: need at least 2 classes, got %d", c.NumClasses)
	}
	return nil
}

// Model is the GCN: D aggregator/encoder pairs followed by an FC
// classifier. The aggregator is the paper's weighted sum (Equation 1)
//
//	g_d(v) = e_{d-1}(v) + wpr·Σ_{u∈PR(v)} e_{d-1}(u) + wsu·Σ_{u∈SU(v)} e_{d-1}(u)
//
// with the scalar weights wpr and wsu shared across depths and learned
// end-to-end together with the encoder matrices W_d and the classifier.
type Model struct {
	Cfg Config

	Wpr *nn.Param // predecessor aggregation weight (scalar)
	Wsu *nn.Param // successor aggregation weight (scalar)
	Enc []*nn.Linear
	FC  *nn.MLP

	// scratch holds reusable inference buffers keyed by role+layer; only
	// the keep=false (inference) path uses them, so training caches stay
	// intact. A Model is therefore not safe for concurrent use; the
	// trainer gives each worker its own replica.
	scratch map[string]*tensor.Dense

	// f32 enables the float32 scoring path (see forward32.go); w32 caches
	// the narrowed parameters and scratch32 the f32 inference buffers.
	f32       bool
	w32       *weights32
	scratch32 map[string]*tensor.Dense32
}

// buf returns a reusable scratch matrix for the given role, reallocating
// when the requested shape changes.
func (m *Model) buf(key string, rows, cols int) *tensor.Dense {
	if m.scratch == nil {
		m.scratch = make(map[string]*tensor.Dense)
	}
	if d, ok := m.scratch[key]; ok && d.Rows == rows && d.Cols == cols {
		return d
	}
	d := tensor.NewDense(rows, cols)
	m.scratch[key] = d
	return d
}

// NewModel initializes a model from cfg using cfg.Seed.
func NewModel(cfg Config) (*Model, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	m := &Model{Cfg: cfg, Wpr: nn.NewParam("gcn.wpr", 1), Wsu: nn.NewParam("gcn.wsu", 1)}
	// Small asymmetric starts break the pred/succ symmetry while keeping
	// hub-node activations bounded at initialization (the weighted-sum
	// aggregator scales with degree). Ablated directions stay at zero.
	if !cfg.NoPredecessors {
		m.Wpr.Data[0] = 0.1
	}
	if !cfg.NoSuccessors {
		m.Wsu.Data[0] = 0.08
	}
	in := InputDim
	for d, k := range cfg.Dims {
		m.Enc = append(m.Enc, nn.NewLinear(fmt.Sprintf("gcn.enc%d", d+1), in, k, rng))
		in = k
	}
	fcDims := append([]int{in}, cfg.FCDims...)
	fcDims = append(fcDims, cfg.NumClasses)
	m.FC = nn.NewMLP("gcn", fcDims, rng)
	return m, nil
}

// MustNewModel is NewModel that panics on configuration errors.
func MustNewModel(cfg Config) *Model {
	m, err := NewModel(cfg)
	if err != nil {
		panic(err)
	}
	return m
}

// Params returns every trainable parameter: wpr, wsu, all encoders and
// the classifier head.
func (m *Model) Params() []*nn.Param {
	ps := []*nn.Param{m.Wpr, m.Wsu}
	for _, e := range m.Enc {
		ps = append(ps, e.Params()...)
	}
	ps = append(ps, m.FC.Params()...)
	return ps
}

// NumParams returns the total scalar parameter count.
func (m *Model) NumParams() int {
	total := 0
	for _, p := range m.Params() {
		total += len(p.Data)
	}
	return total
}

// Save writes the parameters to w.
func (m *Model) Save(w io.Writer) error { return nn.SaveParams(w, m.Params()) }

// Load restores parameters saved by Save into a model of identical
// architecture.
func (m *Model) Load(r io.Reader) error {
	m.w32 = nil // cached f32 weights no longer match
	return nn.LoadParams(r, m.Params())
}

// Clone returns a model with the same architecture and copied parameter
// values (fresh gradient/momentum state). Used by the data-parallel
// trainer's worker replicas.
func (m *Model) Clone() *Model {
	c := MustNewModel(m.Cfg)
	c.CopyParamsFrom(m)
	c.f32 = m.f32
	return c
}

// CopyParamsFrom copies parameter values (not gradients) from src;
// architectures must match.
func (m *Model) CopyParamsFrom(src *Model) {
	m.w32 = nil // cached f32 weights no longer match
	dst, s := m.Params(), src.Params()
	if len(dst) != len(s) {
		panic("core: CopyParamsFrom architecture mismatch")
	}
	for i := range dst {
		if len(dst[i].Data) != len(s[i].Data) {
			panic("core: CopyParamsFrom parameter shape mismatch")
		}
		copy(dst[i].Data, s[i].Data)
	}
}

// forwardCache retains every intermediate needed by Backward.
type forwardCache struct {
	embeds []*tensor.Dense // embeds[0] = X, embeds[d] = E_d (post-ReLU)
	pe     []*tensor.Dense // pe[d] = P·E_{d-1}
	se     []*tensor.Dense // se[d] = S·E_{d-1}
	agg    []*tensor.Dense // agg[d] = G_d (aggregated, pre-encoder)
	logits *tensor.Dense
}

// Forward runs matrix-formulated inference over the whole graph and
// returns the logits (N×NumClasses). The per-step computation is
// Equation 3: E_d = σ((A·E_{d-1})·W_d) with A = I + wpr·P + wsu·S, which
// this implementation evaluates as three SpMM-free terms so that wpr and
// wsu stay differentiable scalars.
func (m *Model) Forward(g *Graph) *tensor.Dense {
	logits, _ := m.forward(g, false)
	return logits
}

func (m *Model) forward(g *Graph, keep bool) (*tensor.Dense, *forwardCache) {
	P, S := g.Pred(), g.Succ()
	wpr, wsu := m.Wpr.Data[0], m.Wsu.Data[0]
	cache := &forwardCache{}
	cur := g.X
	cache.embeds = append(cache.embeds, cur)
	for d, enc := range m.Enc {
		var pe, se, agg, next *tensor.Dense
		if keep {
			pe = tensor.NewDense(g.N, cur.Cols)
			se = tensor.NewDense(g.N, cur.Cols)
			agg = tensor.NewDense(g.N, cur.Cols)
			next = nil // allocated by the encoder
		} else {
			pe = m.buf(fmt.Sprintf("pe%d", d), g.N, cur.Cols)
			se = m.buf(fmt.Sprintf("se%d", d), g.N, cur.Cols)
			agg = m.buf(fmt.Sprintf("agg%d", d), g.N, cur.Cols)
			next = m.buf(fmt.Sprintf("e%d", d), g.N, enc.Out)
		}
		P.MulDenseParallel(pe, cur, 0)
		S.MulDenseParallel(se, cur, 0)
		agg.CopyFrom(cur)
		agg.AxpyInPlace(wpr, pe)
		agg.AxpyInPlace(wsu, se)
		next = enc.ForwardInto(next, agg)
		next.ReLUInPlace()
		if keep {
			cache.pe = append(cache.pe, pe)
			cache.se = append(cache.se, se)
			cache.agg = append(cache.agg, agg)
		}
		cur = next
		cache.embeds = append(cache.embeds, cur)
	}
	var logits *tensor.Dense
	if keep {
		logits = m.FC.Forward(cur)
	} else {
		logits = m.FC.Infer(cur)
	}
	cache.logits = logits
	return logits, cache
}

// Embeddings returns the final node embeddings E_D (before the FC head).
func (m *Model) Embeddings(g *Graph) *tensor.Dense {
	_, cache := m.forward(g, false)
	return cache.embeds[len(cache.embeds)-1]
}

// LossAndGrad runs one full forward/backward pass over the graph,
// accumulating parameter gradients. Nodes with label -1 are masked out of
// the loss. classWeights (len NumClasses) applies the paper's imbalance
// weighting; nil means uniform. It returns the scalar loss.
func (m *Model) LossAndGrad(g *Graph, labels []int, classWeights []float64) float64 {
	logits, cache := m.forward(g, true)
	loss, dlogits := nn.WeightedCrossEntropy(logits, labels, classWeights)
	m.backward(g, cache, dlogits)
	return loss
}

func (m *Model) backward(g *Graph, cache *forwardCache, dlogits *tensor.Dense) {
	P, S := g.Pred(), g.Succ()
	wpr, wsu := m.Wpr.Data[0], m.Wsu.Data[0]

	grad := m.FC.Backward(dlogits) // dE_D
	for d := len(m.Enc) - 1; d >= 0; d-- {
		// Undo ReLU on E_{d+1}.
		tensor.ReLUBackwardInPlace(grad, cache.embeds[d+1])
		// Encoder backward: H = G·W + b.
		dagg := m.Enc[d].Backward(cache.agg[d], grad)
		// Aggregator backward.
		m.Wpr.Grad[0] += cache.pe[d].Dot(dagg)
		m.Wsu.Grad[0] += cache.se[d].Dot(dagg)
		if d == 0 {
			break // no gradient needed past the input attributes
		}
		// dE_{d-1} = dG + wpr·Pᵀ·dG + wsu·Sᵀ·dG, and Pᵀ = S, Sᵀ = P.
		// tmp is pure scratch for the two transpose products — pooled,
		// unlike dprev which escapes as the next iteration's grad.
		tmp := tensor.GetDense(g.N, dagg.Cols)
		S.MulDenseParallel(tmp, dagg, 0)
		dprev := dagg.Clone()
		dprev.AxpyInPlace(wpr, tmp)
		P.MulDenseParallel(tmp, dagg, 0)
		dprev.AxpyInPlace(wsu, tmp)
		tensor.PutDense(tmp)
		grad = dprev
	}
	// Ablated aggregation directions stay frozen at zero.
	if m.Cfg.NoPredecessors {
		m.Wpr.Grad[0] = 0
	}
	if m.Cfg.NoSuccessors {
		m.Wsu.Grad[0] = 0
	}
}

// Predict returns the positive-class probability for every node. With
// SetFloat32Inference(true) the pass runs in float32 (forward32.go);
// otherwise exact float64.
func (m *Model) Predict(g *Graph) []float64 {
	if m.f32 {
		return m.predict32(g)
	}
	logits := m.Forward(g)
	probs := nn.Softmax(logits)
	out := make([]float64, g.N)
	for i := 0; i < g.N; i++ {
		out[i] = probs.At(i, 1)
	}
	return out
}

// PredictProbs is an alias of Predict satisfying the insertion flow's
// Predictor interface (MultiStage exposes the same method).
func (m *Model) PredictProbs(g *Graph) []float64 { return m.Predict(g) }

// PredictLabels thresholds Predict at 0.5.
func (m *Model) PredictLabels(g *Graph) []int {
	probs := m.Predict(g)
	out := make([]int, len(probs))
	for i, p := range probs {
		if p >= 0.5 {
			out[i] = 1
		}
	}
	return out
}
