package circuitgen

import (
	"fmt"

	"repro/internal/netlist"
)

// This file provides structured datapath module builders. Industrial
// netlists are not uniform random gate soup: they contain arithmetic
// carry chains, comparators, multiplexers and parity trees, whose
// characteristic reconvergence and depth shape both SCOAP profiles and
// random-pattern testability. The builders append a module to an
// existing netlist, consuming arbitrary existing nets as operands, and
// are also used standalone by tests that verify them exhaustively
// against integer arithmetic.

// AppendFullAdder appends a 1-bit full adder and returns (sum, carry).
func AppendFullAdder(n *netlist.Netlist, a, b, cin int32) (sum, cout int32) {
	axb := n.MustAddGate(netlist.Xor, "", a, b)
	sum = n.MustAddGate(netlist.Xor, "", axb, cin)
	ab := n.MustAddGate(netlist.And, "", a, b)
	cx := n.MustAddGate(netlist.And, "", axb, cin)
	cout = n.MustAddGate(netlist.Or, "", ab, cx)
	return sum, cout
}

// AppendRippleCarryAdder appends a width-matched ripple-carry adder over
// operand nets a and b with carry-in cin, returning the sum bits (LSB
// first) and the carry-out.
func AppendRippleCarryAdder(n *netlist.Netlist, a, b []int32, cin int32) (sum []int32, cout int32) {
	if len(a) != len(b) || len(a) == 0 {
		panic(fmt.Sprintf("circuitgen: adder operands %d/%d bits", len(a), len(b)))
	}
	carry := cin
	sum = make([]int32, len(a))
	for i := range a {
		sum[i], carry = AppendFullAdder(n, a[i], b[i], carry)
	}
	return sum, carry
}

// AppendArrayMultiplier appends an unsigned array multiplier and returns
// the 2·width product bits (LSB first).
func AppendArrayMultiplier(n *netlist.Netlist, a, b []int32) []int32 {
	if len(a) == 0 || len(b) == 0 {
		panic("circuitgen: multiplier needs operands")
	}
	// Partial products pp[i][j] = a[j] AND b[i].
	rows := make([][]int32, len(b))
	for i := range b {
		rows[i] = make([]int32, len(a))
		for j := range a {
			rows[i][j] = n.MustAddGate(netlist.And, "", a[j], b[i])
		}
	}
	// Accumulate row by row with ripple adders, shifting left each row.
	product := make([]int32, 0, len(a)+len(b))
	acc := rows[0]
	for i := 1; i < len(rows); i++ {
		product = append(product, acc[0])
		// Add rows[i] to acc>>1 (i.e., acc without its LSB, zero-extended).
		hi := acc[1:]
		zero := constantZero(n, a[0])
		aligned := make([]int32, len(rows[i]))
		for k := range aligned {
			if k < len(hi) {
				aligned[k] = hi[k]
			} else {
				aligned[k] = zero
			}
		}
		var carry int32 = zero
		next := make([]int32, len(rows[i]))
		for k := range rows[i] {
			next[k], carry = AppendFullAdder(n, aligned[k], rows[i][k], carry)
		}
		acc = append(next, carry)
	}
	product = append(product, acc...)
	return product
}

// constantZero synthesizes a constant-0 net from any existing net
// (x AND NOT x).
func constantZero(n *netlist.Netlist, x int32) int32 {
	inv := n.MustAddGate(netlist.Not, "", x)
	return n.MustAddGate(netlist.And, "", x, inv)
}

// AppendEqualityComparator appends a == comparator over two equal-width
// operands and returns the single match net.
func AppendEqualityComparator(n *netlist.Netlist, a, b []int32) int32 {
	if len(a) != len(b) || len(a) == 0 {
		panic("circuitgen: comparator operands mismatch")
	}
	var acc int32 = -1
	for i := range a {
		eq := n.MustAddGate(netlist.Xnor, "", a[i], b[i])
		if acc < 0 {
			acc = eq
		} else {
			acc = n.MustAddGate(netlist.And, "", acc, eq)
		}
	}
	return acc
}

// AppendMux2 appends a 2:1 multiplexer per bit (sel ? b : a).
func AppendMux2(n *netlist.Netlist, sel int32, a, b []int32) []int32 {
	if len(a) != len(b) {
		panic("circuitgen: mux operands mismatch")
	}
	inv := n.MustAddGate(netlist.Not, "", sel)
	out := make([]int32, len(a))
	for i := range a {
		pa := n.MustAddGate(netlist.And, "", a[i], inv)
		pb := n.MustAddGate(netlist.And, "", b[i], sel)
		out[i] = n.MustAddGate(netlist.Or, "", pa, pb)
	}
	return out
}

// AppendParityTree appends a balanced XOR reduction and returns the
// parity net.
func AppendParityTree(n *netlist.Netlist, in []int32) int32 {
	if len(in) == 0 {
		panic("circuitgen: parity of nothing")
	}
	level := append([]int32(nil), in...)
	for len(level) > 1 {
		var next []int32
		for i := 0; i+1 < len(level); i += 2 {
			next = append(next, n.MustAddGate(netlist.Xor, "", level[i], level[i+1]))
		}
		if len(level)%2 == 1 {
			next = append(next, level[len(level)-1])
		}
		level = next
	}
	return level[0]
}
