package serve

import (
	"net/http"
	"strconv"
	"time"

	"repro/internal/obs"
)

// statusWriter records the response status code so the middleware can
// report it in the request trace and the access log. A handler that
// never calls WriteHeader implies 200.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

// instrument wraps a handler with the request-scoped observability
// plumbing: it assigns the request an id (echoing a sane client
// X-Request-ID, generating one otherwise), opens an obs request trace
// carried through the request context so downstream phases (queue,
// parse, forward, ...) attribute to this request, and on completion
// finishes the trace, counts slow requests, and emits the access-log
// line. The id is echoed back in the X-Request-ID response header.
func (s *Server) instrument(name string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		id := obs.SanitizeRequestID(r.Header.Get("X-Request-ID"))
		if id == "" {
			id = obs.NewRequestID()
		}
		w.Header().Set("X-Request-ID", id)

		tr := obs.StartRequest(name, id)
		if tr != nil {
			r = r.WithContext(obs.ContextWithRequest(r.Context(), tr))
		}
		sw := &statusWriter{ResponseWriter: w}
		h(sw, r)

		status := sw.status
		if status == 0 {
			status = http.StatusOK
		}
		wall := time.Since(start)
		snap := tr.Finish(strconv.Itoa(status))
		if snap.ID == "" {
			// Tracing disabled: the access log still carries the id.
			snap.ID = id
		}
		if s.opts.SlowRequest > 0 && wall >= s.opts.SlowRequest {
			mSlowRequests.Inc()
		}
		s.accessLog.Log(r.Method, r.URL.Path, status, wall, snap)
	}
}
