package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"sort"
	"strconv"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/netlist"
	"repro/internal/obs"
	"repro/internal/opi"
	"repro/internal/scoap"
)

// errNoPredictor is returned by New when Options.Predictor is nil.
var errNoPredictor = errors.New("serve: Options.Predictor is required")

// requestError carries a client-facing category through the compile and
// delta paths so one error value can select both status code and
// envelope.
type requestError struct {
	category string
	msg      string
}

func (e *requestError) Error() string { return e.msg }

func badRequest(msg string) error { return &requestError{ErrInvalidRequest, msg} }

// defaultThreshold is the difficult-to-observe cutoff when a request
// leaves threshold unset, matching the paper's 0.5 decision boundary.
const defaultThreshold = 0.5

// requestContext derives the request deadline: the server default,
// shortened (never lengthened) by the request's timeout_ms.
func (s *Server) requestContext(r *http.Request, timeoutMs int64) (context.Context, context.CancelFunc) {
	d := s.opts.DefaultTimeout
	if timeoutMs > 0 {
		if t := time.Duration(timeoutMs) * time.Millisecond; t < d {
			d = t
		}
	}
	return context.WithTimeout(r.Context(), d)
}

// decodeJSON parses the request body into v under the body-size cap,
// writing the error response itself when it fails.
func (s *Server) decodeJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeError(w, ErrTooLarge, "request body exceeds limit")
		} else {
			writeError(w, ErrInvalidRequest, "invalid JSON body: "+err.Error())
		}
		return false
	}
	return true
}

// writeFailure maps an error from the admission/compile/delta paths to
// its envelope.
func writeFailure(w http.ResponseWriter, err error) {
	var re *requestError
	switch {
	case errors.As(err, &re):
		writeError(w, re.category, re.msg)
	case errors.Is(err, errShed):
		writeError(w, ErrOverloaded, "server at capacity; retry later")
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		writeError(w, ErrDeadlineExceeded, "request deadline exceeded")
	default:
		writeError(w, ErrInternal, err.Error())
	}
}

// compile parses, analyzes and scores a netlist, producing a cached
// design whose incremental session holds warm embeddings. This is the
// expensive path — one SCOAP analysis plus one full SpMM forward — that
// the cache and the batcher both exist to avoid repeating.
func (s *Server) compile(ctx context.Context, id string, body []byte) (*design, error) {
	if err := ctx.Err(); err != nil {
		mDeadline.Inc()
		return nil, err
	}
	// Phases land in the originating request's trace; under the batcher
	// that is the leader's trace (riders record batch_wait instead).
	tr := obs.RequestFromContext(ctx)
	ph := tr.StartPhase("parse")
	n, err := netlist.Read(bytes.NewReader(body))
	if err != nil {
		ph.End()
		return nil, badRequest("netlist parse: " + err.Error())
	}
	if err := n.Validate(); err != nil {
		ph.End()
		return nil, badRequest("netlist validate: " + err.Error())
	}
	ph.End()
	ph = tr.StartPhase("scoap")
	meas := scoap.Compute(n)
	g := core.FromNetlist(n, meas)
	ph.End()
	if err := ctx.Err(); err != nil {
		mDeadline.Inc()
		return nil, err
	}
	ph = tr.StartPhase("forward")
	pred := core.ClonePredictor(s.opts.Predictor)
	now := time.Now()
	d := &design{
		id:         id,
		source:     append([]byte(nil), body...),
		net:        n,
		meas:       meas,
		g:          g,
		pred:       pred,
		created:    now,
		lastAccess: now,
	}
	if fi, ok := pred.(core.Float32Inferencer); ok && s.opts.Float32Scoring {
		// f32 compile path: score now, defer the float64 incremental
		// session to the first delta (see design.ensureRun).
		fi.SetFloat32Inference(true)
		d.scores = pred.PredictProbs(g)
	} else {
		d.run = pred.NewIncremental(g) // the one full forward pass
	}
	d.nodes.Store(int64(n.NumGates()))
	ph.End()
	s.cache.insert(d)
	return d, nil
}

// scoreResponse snapshots a design's current scores into the wire shape
// under the design lock.
func (s *Server) scoreResponse(d *design, threshold float64, cached bool) ScoreResponse {
	d.mu.Lock()
	defer d.mu.Unlock()
	return ScoreResponse{
		Design:    s.cache.idOf(d),
		Nodes:     d.net.NumGates(),
		Scores:    d.snapshotScores(),
		Difficult: difficultList(d.net, d.probs(), threshold),
		Cached:    cached,
	}
}

// difficultList collects the nodes at or above threshold, sorted by
// descending score (ties by ascending id). Callers must hold the design
// lock.
func difficultList(n *netlist.Netlist, probs []float64, threshold float64) []NodeScore {
	if threshold <= 0 {
		threshold = defaultThreshold
	}
	out := []NodeScore{}
	for v, p := range probs {
		if p >= threshold {
			out = append(out, NodeScore{ID: int32(v), Name: n.Gate(int32(v)).Name, Score: p})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// handleScore implements POST /v1/score: full-netlist scoring through
// the cache and the single-flight batcher.
func (s *Server) handleScore(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	mScoreRequests.Inc()
	defer func() { mScoreLatency.Observe(time.Since(start).Nanoseconds()) }()
	tr := obs.RequestFromContext(r.Context())

	var req ScoreRequest
	ph := tr.StartPhase("decode")
	ok := s.decodeJSON(w, r, &req)
	ph.End()
	if !ok {
		return
	}
	if req.Netlist == "" {
		writeError(w, ErrInvalidRequest, "netlist field is required")
		return
	}
	ctx, cancel := s.requestContext(r, req.TimeoutMs)
	defer cancel()
	ph = tr.StartPhase("queue")
	err := s.admit.acquire(ctx)
	ph.End()
	if err != nil {
		writeFailure(w, err)
		return
	}
	defer s.admit.release()

	body := []byte(req.Netlist)
	key := s.cache.hash(body)
	if d, ok := s.cache.lookupSource(key, body); ok {
		tr.Annotate("cache", "hit")
		ph = tr.StartPhase("rank")
		resp := s.scoreResponse(d, req.Threshold, true)
		ph.End()
		writeJSON(w, http.StatusOK, resp)
		return
	}
	tr.Annotate("cache", "miss")
	var d *design
	if s.opts.DisableBatching {
		d, err = s.compile(ctx, key, body)
	} else {
		d, _, err = s.flight.do(ctx, key, func() (*design, error) {
			return s.compile(ctx, key, body)
		})
	}
	if err != nil {
		writeFailure(w, err)
		return
	}
	ph = tr.StartPhase("rank")
	resp := s.scoreResponse(d, req.Threshold, false)
	ph.End()
	writeJSON(w, http.StatusOK, resp)
}

// handleDelta implements POST /v1/score/delta: observation-point edits
// applied to a cached design, rescored through the incremental session
// at D-hop-bounded cost. The design is re-keyed to a new id; the old id
// stops resolving (each id names one immutable design state).
func (s *Server) handleDelta(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	mDeltaRequests.Inc()
	defer func() { mDeltaLatency.Observe(time.Since(start).Nanoseconds()) }()
	tr := obs.RequestFromContext(r.Context())

	var req DeltaRequest
	ph := tr.StartPhase("decode")
	ok := s.decodeJSON(w, r, &req)
	ph.End()
	if !ok {
		return
	}
	if req.Design == "" {
		writeError(w, ErrNotFound, "design field is required")
		return
	}
	if len(req.Observe) == 0 && len(req.ObserveNames) == 0 {
		writeError(w, ErrInvalidRequest, "delta contains no edits (observe / observe_names)")
		return
	}
	ctx, cancel := s.requestContext(r, req.TimeoutMs)
	defer cancel()
	ph = tr.StartPhase("queue")
	err := s.admit.acquire(ctx)
	ph.End()
	if err != nil {
		writeFailure(w, err)
		return
	}
	defer s.admit.release()

	d, ok := s.cache.lookupID(req.Design)
	if !ok {
		writeError(w, ErrNotFound, "unknown design id "+req.Design)
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if s.cache.idOf(d) != req.Design {
		// A concurrent delta advanced this design between lookup and
		// lock; the state the caller referenced no longer exists.
		writeError(w, ErrNotFound, "design id "+req.Design+" superseded by a newer delta")
		return
	}

	targets, err := resolveTargets(d.net, req.Observe, req.ObserveNames)
	if err != nil {
		writeFailure(w, err)
		return
	}
	if err := ctx.Err(); err != nil {
		mDeadline.Inc()
		writeFailure(w, err)
		return
	}

	// The exact insertion recipe of the opi flow: netlist node + edge,
	// SCOAP cone relaxation, COO appends, attribute refresh — then one
	// incremental update over the combined dirty set. Levels are hoisted
	// (an OP never changes an existing node's level) and extended per
	// insertion to stay index-aligned.
	lv := append([]int32(nil), d.net.Levels()...)
	var dirty []int32
	ph = tr.StartPhase("apply")
	for _, t := range targets {
		_, touched, err := opi.InsertAndRefresh(d.net, d.meas, d.g, t, lv)
		if err != nil {
			// resolveTargets vetted every target, so nothing was mutated
			// for this one; report it without applying the rest.
			ph.End()
			writeFailure(w, badRequest("observe "+itoa32(t)+": "+err.Error()))
			return
		}
		lv = append(lv, lv[t]+1)
		dirty = append(dirty, touched...)
	}
	ph.End()
	ph = tr.StartPhase("forward")
	d.ensureRun()            // f32-compiled designs build the f64 session here
	d.run.Update(d.g, dirty) // appended OP nodes are implicitly dirty
	ph.End()

	newID := deltaID(req.Design, targets)
	s.cache.rekey(req.Design, newID, d)
	d.nodes.Store(int64(d.net.NumGates()))

	ph = tr.StartPhase("rank")
	probs := d.run.Probs()
	inserted := make([]NodeScore, len(targets))
	for i, t := range targets {
		inserted[i] = NodeScore{ID: t, Name: d.net.Gate(t).Name, Score: probs[t]}
	}
	resp := ScoreResponse{
		Design:    newID,
		Nodes:     d.net.NumGates(),
		Scores:    d.snapshotScores(),
		Difficult: difficultList(d.net, probs, req.Threshold),
		Cached:    true,
		Updated:   len(dirty),
		Inserted:  inserted,
	}
	ph.End()
	writeJSON(w, http.StatusOK, resp)
}

// resolveTargets validates and merges a delta's id- and name-addressed
// targets. Every target must exist and be insertable (not an Input,
// Output or Obs cell).
func resolveTargets(n *netlist.Netlist, ids []int32, names []string) ([]int32, error) {
	targets := make([]int32, 0, len(ids)+len(names))
	for _, t := range ids {
		if t < 0 || int(t) >= n.NumGates() {
			return nil, badRequest("observe target " + itoa32(t) + " out of range")
		}
		targets = append(targets, t)
	}
	for _, name := range names {
		t, ok := n.IDByName(name)
		if !ok {
			return nil, badRequest("observe target " + name + " not found")
		}
		targets = append(targets, t)
	}
	for _, t := range targets {
		switch n.Type(t) {
		case netlist.Input, netlist.Output, netlist.Obs:
			return nil, badRequest("observe target " + itoa32(t) + " is a " +
				n.Type(t).String() + " cell and cannot take an observation point")
		}
	}
	return targets, nil
}

// handleOPI implements POST /v1/opi: run the GCN-guided insertion flow
// on a private copy of a submitted or cached design and return the
// suggested observation points. The cached design itself is never
// mutated; apply the suggestions with /v1/score/delta to make them
// stick.
func (s *Server) handleOPI(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	mOPIRequests.Inc()
	defer func() { mOPILatency.Observe(time.Since(start).Nanoseconds()) }()
	tr := obs.RequestFromContext(r.Context())

	var req OPIRequest
	ph := tr.StartPhase("decode")
	ok := s.decodeJSON(w, r, &req)
	ph.End()
	if !ok {
		return
	}
	if (req.Netlist == "") == (req.Design == "") {
		writeError(w, ErrInvalidRequest, "exactly one of netlist and design must be set")
		return
	}
	ctx, cancel := s.requestContext(r, req.TimeoutMs)
	defer cancel()
	ph = tr.StartPhase("queue")
	err := s.admit.acquire(ctx)
	ph.End()
	if err != nil {
		writeFailure(w, err)
		return
	}
	defer s.admit.release()

	// Obtain a private (netlist, measures, graph) copy to mutate.
	var d *design
	if req.Netlist != "" {
		body := []byte(req.Netlist)
		key := s.cache.hash(body)
		var ok bool
		if d, ok = s.cache.lookupSource(key, body); !ok {
			var err error
			d, _, err = s.flight.do(ctx, key, func() (*design, error) {
				return s.compile(ctx, key, body)
			})
			if err != nil {
				writeFailure(w, err)
				return
			}
		}
	} else {
		var ok bool
		if d, ok = s.cache.lookupID(req.Design); !ok {
			writeError(w, ErrNotFound, "unknown design id "+req.Design)
			return
		}
	}
	ph = tr.StartPhase("clone")
	d.mu.Lock()
	baseID := s.cache.idOf(d)
	n := d.net.Clone()
	meas := d.meas.Clone()
	g := d.g.Clone()
	d.mu.Unlock()
	ph.End()

	// Check out a predictor replica; admission bounds concurrent holders
	// to the pool size, so this only blocks on deadline expiry.
	var pred core.IncrementalPredictor
	select {
	case pred = <-s.pool:
	case <-ctx.Done():
		mDeadline.Inc()
		writeFailure(w, ctx.Err())
		return
	}
	defer func() { s.pool <- pred }()

	maxPoints := req.MaxPoints
	if maxPoints <= 0 {
		maxPoints = 64
	}
	var before *float64
	if req.Evaluate {
		ph = tr.StartPhase("evaluate")
		v := evaluateCoverage(n, req.Patterns)
		ph.End()
		before = &v
	}
	ph = tr.StartPhase("flow")
	probs0 := pred.PredictProbs(g) // pre-flow scores for the suggestions
	res := opi.RunFlow(n, meas, g, pred, opi.FlowConfig{
		Threshold:     req.Threshold,
		PerIteration:  req.PerIteration,
		MaxInsertions: maxPoints,
	})
	ph.End()
	if err := ctx.Err(); err != nil {
		mDeadline.Inc()
		writeFailure(w, err)
		return
	}
	var after *float64
	if req.Evaluate {
		ph = tr.StartPhase("evaluate")
		v := evaluateCoverage(n, req.Patterns)
		ph.End()
		after = &v
	}

	ph = tr.StartPhase("rank")
	points := make([]NodeScore, len(res.Targets))
	for i, t := range res.Targets {
		score := 0.0
		if int(t) < len(probs0) {
			score = probs0[t]
		}
		points[i] = NodeScore{ID: t, Name: n.Gate(t).Name, Score: score}
	}
	ph.End()
	resp := OPIResponse{
		Points:         points,
		Iterations:     res.Iterations,
		FinalPositives: res.FinalPositives,
		CoverageBefore: before,
		CoverageAfter:  after,
	}
	if req.Design != "" {
		resp.Design = baseID
	}
	writeJSON(w, http.StatusOK, resp)
}

// evaluateCoverage fault-simulates the netlist with a bounded random
// pattern budget and returns stuck-at coverage.
func evaluateCoverage(n *netlist.Netlist, patterns int) float64 {
	if patterns <= 0 {
		patterns = 2048
	}
	return opi.Evaluate(n, fault.TPGConfig{MaxPatterns: patterns}).Coverage
}

// handleDesigns implements GET /v1/designs: list the cached designs —
// id, size, hit count, age and idle time — most recently used first.
func (s *Server) handleDesigns(w http.ResponseWriter, _ *http.Request) {
	mDesignsRequests.Inc()
	stats := s.cache.stats()
	now := time.Now()
	resp := DesignsResponse{Designs: make([]DesignInfo, 0, len(stats))}
	if s.opts.CacheEntries > 0 {
		resp.Capacity = s.opts.CacheEntries
	}
	for _, st := range stats {
		resp.Designs = append(resp.Designs, DesignInfo{
			Design:      st.id,
			Nodes:       st.nodes,
			SourceBytes: st.sourceBytes,
			Hits:        st.hits,
			AgeMs:       now.Sub(st.created).Milliseconds(),
			IdleMs:      now.Sub(st.lastAccess).Milliseconds(),
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleHealth implements GET /healthz.
func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	resp := HealthResponse{
		Status:        "ok",
		Model:         s.opts.ModelInfo,
		Version:       obs.GitDescribe(),
		UptimeMs:      time.Since(s.start).Milliseconds(),
		CachedDesigns: s.cache.len(),
		Inflight:      s.admit.inflight.Load(),
	}
	status := http.StatusOK
	if s.Draining() {
		resp.Status = "draining"
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, resp)
}

// itoa32 formats an int32 target id for error messages.
func itoa32(v int32) string {
	return strconv.Itoa(int(v))
}
