package fault_test

import (
	"math/bits"
	"testing"

	"repro/internal/fault"
	"repro/internal/netlist"
	"repro/internal/refcheck"
)

// This file pins the minimized netlists the differential harness
// (internal/refcheck) surfaced while cross-checking the bit-parallel
// critical-path-tracing observability against exact fault detection.
// On fanout-free logic the two agree bit for bit; at reconvergent
// fanout stems CPT's OR-merge is a documented approximation that can
// err in BOTH directions. These circuits are the smallest witnesses of
// each behavior, kept as regressions so any change to the backward
// observability pass that shifts the approximation is caught.

// cptMask computes the CPT detection estimate for a stuck-at fault from
// one good-circuit batch: excitation lanes AND observability lanes.
func cptMask(sim *fault.Simulator, node int32, stuckAt1 bool) uint64 {
	excite := sim.Values()[node] // stuck-at-1 is visible where the lane holds 0
	if !stuckAt1 {
		excite = ^excite
	}
	return ^excite & sim.Obs()[node]
}

// runBoth simulates one seeded batch and returns (cpt, exact) detect
// masks for the given fault.
func runBoth(t *testing.T, n *netlist.Netlist, node int32, stuckAt1 bool) (uint64, uint64) {
	t.Helper()
	const seed = 99
	words := refcheck.BatchSourceWords(n, seed, 0)
	sim := fault.NewSimulator(n)
	sim.BatchFrom(func(id int32) uint64 { return words[id] })
	exact := fault.ExactDetectMask(n, seed, 0, node, stuckAt1)
	if serial := refcheck.SerialDetectMask(n, words, node, stuckAt1); serial != exact {
		t.Fatalf("exact engines disagree: ExactDetectMask %016x serial %016x", exact, serial)
	}
	return cptMask(sim, node, stuckAt1), exact
}

// TestCPTOptimisticAtXorReconvergence: s fans out to both XOR inputs,
// so the fault on s cancels itself (x = s^s = 0 always, fault-free and
// faulty alike). Exact detection is zero; CPT traces each XOR branch
// independently and claims full observability.
func TestCPTOptimisticAtXorReconvergence(t *testing.T) {
	n := netlist.New("xor-stem")
	a := n.MustAddGate(netlist.Input, "a")
	s := n.MustAddGate(netlist.Buf, "s", a)
	x := n.MustAddGate(netlist.Xor, "x", s, s)
	n.MustAddGate(netlist.Output, "z", x)

	for _, sa1 := range []bool{false, true} {
		cpt, exact := runBoth(t, n, s, sa1)
		if exact != 0 {
			t.Fatalf("sa%v: self-masking fault detected exactly: %016x", sa1, exact)
		}
		if cpt == 0 {
			t.Fatalf("sa%v: CPT no longer optimistic here — approximation changed, update the docs", sa1)
		}
	}
}

// TestCPTPessimisticAtAndReconvergence: s drives both AND inputs, so
// y = s and a stuck-at-1 on s IS visible wherever s = 0. CPT's
// backward pass multiplies in the side-input non-controlling condition
// (the same s), wrongly concluding the 0-lanes are unobservable.
func TestCPTPessimisticAtAndReconvergence(t *testing.T) {
	n := netlist.New("and-stem")
	a := n.MustAddGate(netlist.Input, "a")
	s := n.MustAddGate(netlist.Buf, "s", a)
	y := n.MustAddGate(netlist.And, "y", s, s)
	n.MustAddGate(netlist.Output, "z", y)

	cpt, exact := runBoth(t, n, s, true)
	if exact == 0 {
		t.Fatal("sa1 on s should be exactly detectable on the s=0 lanes")
	}
	if missed := exact &^ cpt; missed == 0 {
		t.Fatal("CPT no longer pessimistic here — approximation changed, update the docs")
	}
	if bogus := cpt &^ exact; bogus != 0 {
		t.Fatalf("CPT claims lanes exact denies: %016x", bogus)
	}
}

// TestScanStemExactAgreement: the DFF-boundary variant of the stem
// cases — a scan flop output fanning out into reconvergent XOR. The
// two exact engines (ExactDetectMask and the serial reference) must
// agree on every fault site of this circuit, both polarities; CPT's
// deviation stays confined to the stem cell d.
func TestScanStemExactAgreement(t *testing.T) {
	n := netlist.New("scan-stem")
	a := n.MustAddGate(netlist.Input, "a")
	d := n.MustAddGate(netlist.DFF, "d", a)
	x := n.MustAddGate(netlist.Xor, "x", d, d)
	o := n.MustAddGate(netlist.Or, "o", x, a)
	n.MustAddGate(netlist.Output, "z", o)

	for node := int32(0); node < int32(n.NumGates()); node++ {
		if n.Type(node) == netlist.Output {
			continue
		}
		for _, sa1 := range []bool{false, true} {
			cpt, exact := runBoth(t, n, node, sa1) // runBoth fails on any exact-engine split
			if node != d && node != x && cpt != exact {
				// Off the reconvergent stem the circuit is tree-like:
				// CPT must remain exact there.
				t.Errorf("node %d (%s) sa%v: CPT %016x exact %016x", node, n.Type(node), sa1, cpt, exact)
			}
		}
	}

	// The stem fault itself self-masks through XOR; OR(0, a) still
	// passes a, so exact detection of d is empty while CPT is not.
	cpt, exact := runBoth(t, n, d, true)
	if exact != 0 {
		t.Fatalf("scan stem fault detected exactly: %016x", exact)
	}
	if bits.OnesCount64(cpt) == 0 {
		t.Fatal("CPT no longer optimistic at the scan stem — approximation changed, update the docs")
	}
}
