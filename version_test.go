package repro_test

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestVersionFlag builds every binary and checks -version prints the
// binary's name plus a non-empty revision and exits zero — the
// operational contract for correlating deployed artifacts with
// recorded benchmark and experiment runs.
func TestVersionFlag(t *testing.T) {
	if testing.Short() {
		t.Skip("builds all binaries")
	}
	bins := []string{"serve", "experiments", "gcntest", "benchjson", "benchcmp"}
	dir := t.TempDir()
	for _, name := range bins {
		name := name
		t.Run(name, func(t *testing.T) {
			exe := filepath.Join(dir, name)
			build := exec.Command("go", "build", "-o", exe, "./cmd/"+name)
			if out, err := build.CombinedOutput(); err != nil {
				t.Fatalf("build: %v\n%s", err, out)
			}
			out, err := exec.Command(exe, "-version").CombinedOutput()
			if err != nil {
				t.Fatalf("-version exited non-zero: %v\n%s", err, out)
			}
			line := strings.TrimSpace(string(out))
			fields := strings.Fields(line)
			if len(fields) != 2 || fields[0] != name || fields[1] == "" {
				t.Fatalf("-version printed %q, want %q plus a revision", line, name)
			}
		})
	}
}
