package sparse

import (
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

func TestGrowNeverShrinks(t *testing.T) {
	m := NewCOO(5, 5)
	m.Grow(3, 3)
	if m.NumRows != 5 || m.NumCols != 5 {
		t.Errorf("Grow shrank the matrix: %d×%d", m.NumRows, m.NumCols)
	}
	m.Grow(7, 6)
	if m.NumRows != 7 || m.NumCols != 6 {
		t.Errorf("Grow failed: %d×%d", m.NumRows, m.NumCols)
	}
}

func TestCloneIndependence(t *testing.T) {
	m := NewCOO(3, 3)
	m.Append(0, 1, 2)
	c := m.Clone()
	c.Append(1, 2, 3)
	c.Vals[0] = 99
	if m.NNZ() != 1 || m.Vals[0] != 2 {
		t.Error("clone mutation affected source")
	}
}

func TestTransposeEmpty(t *testing.T) {
	m := NewCOO(4, 2).ToCSR()
	tr := m.Transpose()
	if tr.NumRows != 2 || tr.NumCols != 4 || tr.NNZ() != 0 {
		t.Errorf("transpose of empty = %d×%d nnz %d", tr.NumRows, tr.NumCols, tr.NNZ())
	}
}

func TestCSRRowsAreCompleteAndOrdered(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := randCOO(rng, 30, 30, 100, true)
	csr := m.ToCSR()
	if csr.RowPtr[0] != 0 || int(csr.RowPtr[csr.NumRows]) != csr.NNZ() {
		t.Fatalf("row pointer endpoints wrong: %d..%d nnz %d",
			csr.RowPtr[0], csr.RowPtr[csr.NumRows], csr.NNZ())
	}
	for r := 0; r < csr.NumRows; r++ {
		if csr.RowPtr[r] > csr.RowPtr[r+1] {
			t.Fatalf("row %d pointers decrease", r)
		}
		seen := map[int32]bool{}
		for p := csr.RowPtr[r]; p < csr.RowPtr[r+1]; p++ {
			c := csr.ColIdx[p]
			if seen[c] {
				t.Fatalf("row %d has duplicate column %d after merge", r, c)
			}
			seen[c] = true
		}
	}
}

func TestMulDenseTransMatchesDenseReference(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 10; trial++ {
		r, c, k := 2+rng.Intn(8), 2+rng.Intn(8), 1+rng.Intn(4)
		coo := randCOO(rng, r, c, 1+rng.Intn(25), true)
		csr := coo.ToCSR()
		x := randDense(rng, r, k)
		got := tensor.NewDense(c, k)
		csr.MulDenseTrans(got, x)

		dense := denseOf(coo)
		want := tensor.NewDense(c, k)
		tensor.MatMulTransA(want, dense, x)
		if diff := tensor.MaxAbsDiff(got, want); diff > 1e-12 {
			t.Fatalf("trial %d: differs by %g", trial, diff)
		}
	}
}

func TestParallelOnTinyMatrixFallsBackToSerial(t *testing.T) {
	m := NewCOO(3, 3)
	m.Append(0, 0, 1)
	csr := m.ToCSR()
	x := tensor.FromRows([][]float64{{1}, {2}, {3}})
	dst := tensor.NewDense(3, 1)
	csr.MulDenseParallel(dst, x, 8) // workers ≫ rows
	if dst.At(0, 0) != 1 || dst.At(1, 0) != 0 {
		t.Errorf("tiny parallel product wrong: %v", dst.Data)
	}
}

func TestSparsityBounds(t *testing.T) {
	m := NewCOO(2, 2)
	m.Append(0, 0, 1)
	m.Append(0, 1, 1)
	m.Append(1, 0, 1)
	m.Append(1, 1, 1)
	if s := m.ToCSR().Sparsity(); s != 0 {
		t.Errorf("full matrix sparsity = %v", s)
	}
}
