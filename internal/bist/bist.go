// Package bist implements the logic built-in self-test substrate that
// motivates the paper's test point insertion in the first place: in
// scan-based BIST, pseudo-random patterns from an LFSR drive the scan
// chains and a MISR compacts the responses, so fault coverage is limited
// precisely by the random-pattern-resistant (difficult-to-observe /
// difficult-to-control) nodes that test points fix.
//
// The package provides a Fibonacci LFSR pattern source, a MISR signature
// compactor, and a BIST session runner that drives the bit-parallel
// fault simulator with LFSR patterns and reports coverage plus the
// golden signature.
package bist

import (
	"fmt"
	"math/bits"

	"repro/internal/fault"
	"repro/internal/netlist"
)

// LFSR is a Fibonacci linear feedback shift register over Width bits.
// Taps is the feedback polynomial mask (bit i set means stage i feeds
// the XOR). A zero state is illegal (the all-zero state is a fixed
// point) and is rejected by New.
type LFSR struct {
	Width int
	Taps  uint64
	state uint64
}

// Poly16 is a maximal-length 16-bit polynomial (x^16+x^15+x^13+x^4+1).
const Poly16 = uint64(0xB400)

// Poly32 is a maximal-length 32-bit polynomial.
const Poly32 = uint64(0x80200003)

// NewLFSR constructs an LFSR with the given width, taps and nonzero
// seed (the seed is masked to the width).
func NewLFSR(width int, taps, seed uint64) (*LFSR, error) {
	if width <= 0 || width > 64 {
		return nil, fmt.Errorf("bist: illegal LFSR width %d", width)
	}
	mask := widthMask(width)
	seed &= mask
	if seed == 0 {
		return nil, fmt.Errorf("bist: LFSR seed must be nonzero")
	}
	if taps&mask == 0 {
		return nil, fmt.Errorf("bist: LFSR taps empty")
	}
	return &LFSR{Width: width, Taps: taps & mask, state: seed}, nil
}

func widthMask(width int) uint64 {
	if width == 64 {
		return ^uint64(0)
	}
	return (1 << uint(width)) - 1
}

// State returns the current register contents.
func (l *LFSR) State() uint64 { return l.state }

// Step advances the register one cycle and returns the new state.
func (l *LFSR) Step() uint64 {
	fb := uint64(bits.OnesCount64(l.state&l.Taps) & 1)
	l.state = ((l.state << 1) | fb) & widthMask(l.Width)
	return l.state
}

// MISR is a multiple-input signature register: responses are XORed into
// the state before each LFSR-style shift, compacting an arbitrarily long
// response stream into one word.
type MISR struct {
	Width int
	Taps  uint64
	state uint64
}

// NewMISR constructs a MISR with the given feedback polynomial.
func NewMISR(width int, taps uint64) (*MISR, error) {
	if width <= 0 || width > 64 {
		return nil, fmt.Errorf("bist: illegal MISR width %d", width)
	}
	if taps&widthMask(width) == 0 {
		return nil, fmt.Errorf("bist: MISR taps empty")
	}
	return &MISR{Width: width, Taps: taps & widthMask(width)}, nil
}

// Shift absorbs one response word.
func (m *MISR) Shift(response uint64) {
	s := m.state ^ (response & widthMask(m.Width))
	fb := uint64(bits.OnesCount64(s&m.Taps) & 1)
	m.state = ((s << 1) | fb) & widthMask(m.Width)
}

// Signature returns the compacted signature.
func (m *MISR) Signature() uint64 { return m.state }

// SessionConfig configures a BIST run.
type SessionConfig struct {
	// Patterns is the pseudo-random pattern budget; default 4096.
	Patterns int
	// Seed seeds the LFSR (nonzero); default 0xACE1.
	Seed uint64
}

// SessionResult reports a BIST run.
type SessionResult struct {
	Coverage  float64 // stuck-at coverage achieved by the LFSR patterns
	Detected  int
	Total     int
	Signature uint64 // golden MISR signature of the fault-free responses
	Patterns  int
}

// RunSession drives the netlist with LFSR-generated patterns (64 per
// simulation batch, one LFSR state per source cell per pattern),
// measures stuck-at coverage with fault dropping, and compacts the
// fault-free primary output responses into a MISR signature.
func RunSession(n *netlist.Netlist, cfg SessionConfig) (SessionResult, error) {
	if cfg.Patterns <= 0 {
		cfg.Patterns = 4096
	}
	if cfg.Seed == 0 {
		cfg.Seed = 0xACE1
	}
	lfsr, err := NewLFSR(32, Poly32, cfg.Seed)
	if err != nil {
		return SessionResult{}, err
	}
	misr, err := NewMISR(64, Poly32|1)
	if err != nil {
		return SessionResult{}, err
	}

	sim := fault.NewSimulator(n)
	live := fault.FaultUniverse(n)
	res := SessionResult{Total: len(live)}
	pos := n.PrimaryOutputs()

	words := (cfg.Patterns + fault.WordSize - 1) / fault.WordSize
	sourceWord := make(map[int32]uint64)
	for w := 0; w < words; w++ {
		// Build 64 patterns: each source takes one bit per LFSR step,
		// different sources sample different bit positions of the state
		// (a cheap stand-in for a phase shifter network).
		for k := range sourceWord {
			delete(sourceWord, k)
		}
		for lane := 0; lane < fault.WordSize; lane++ {
			state := lfsr.Step()
			idx := 0
			for id := int32(0); id < int32(n.NumGates()); id++ {
				if !n.Type(id).IsControllableSource() {
					continue
				}
				if state>>(uint(idx)%32)&1 == 1 {
					sourceWord[id] |= 1 << uint(lane)
				}
				idx++
				if idx%32 == 0 {
					state = lfsr.Step()
				}
			}
		}
		sim.BatchFrom(func(id int32) uint64 { return sourceWord[id] })
		res.Patterns += fault.WordSize

		// Compact fault-free PO responses.
		vals, obs := sim.Values(), sim.Obs()
		for _, po := range pos {
			misr.Shift(vals[po])
		}
		// Fault dropping.
		kept := live[:0]
		for _, f := range live {
			mask := obs[f.Node]
			if f.StuckAt1 {
				mask &= ^vals[f.Node]
			} else {
				mask &= vals[f.Node]
			}
			if mask == 0 {
				kept = append(kept, f)
			}
		}
		live = kept
	}
	res.Detected = res.Total - len(live)
	if res.Total > 0 {
		res.Coverage = float64(res.Detected) / float64(res.Total)
	}
	res.Signature = misr.Signature()
	return res, nil
}
