package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRequestTraceLifecycle(t *testing.T) {
	withEnabled(t, func() {
		tr := StartRequest("score", "abc123")
		if tr == nil || tr.ID() != "abc123" {
			t.Fatalf("trace = %+v", tr)
		}
		page := SnapshotRequests()
		if len(page.Inflight) != 1 || page.Inflight[0].ID != "abc123" || page.Inflight[0].Status != "" {
			t.Fatalf("inflight = %+v", page.Inflight)
		}

		ph := tr.StartPhase("parse")
		time.Sleep(time.Millisecond)
		ph.End()
		tr.Annotate("cache", "miss")
		snap := tr.Finish("200")

		if snap.Status != "200" || snap.Attrs["cache"] != "miss" {
			t.Fatalf("snap = %+v", snap)
		}
		if len(snap.Phases) != 1 || snap.Phases[0].Name != "parse" || snap.Phases[0].DurNS <= 0 {
			t.Fatalf("phases = %+v", snap.Phases)
		}
		if snap.WallNS < snap.Phases[0].DurNS {
			t.Fatalf("wall %d < phase %d", snap.WallNS, snap.Phases[0].DurNS)
		}

		page = SnapshotRequests()
		if len(page.Inflight) != 0 {
			t.Fatalf("still inflight: %+v", page.Inflight)
		}
		if len(page.Recent) != 1 || page.Recent[0].ID != "abc123" || page.Recent[0].Status != "200" {
			t.Fatalf("recent = %+v", page.Recent)
		}
	})
}

func TestRequestTraceNilSafeWhenDisabled(t *testing.T) {
	Disable()
	tr := StartRequest("score", "x")
	if tr != nil {
		t.Fatal("disabled StartRequest returned a live trace")
	}
	// Every method must be a no-op on nil.
	tr.Annotate("k", "v")
	tr.StartPhase("p").End()
	if snap := tr.Finish("200"); snap.ID != "" {
		t.Fatalf("nil finish = %+v", snap)
	}
	if tr.ID() != "" {
		t.Fatal("nil ID not empty")
	}
	ctx := ContextWithRequest(context.Background(), nil)
	if RequestFromContext(ctx) != nil {
		t.Fatal("nil trace stored in context")
	}
}

func TestContextCarriesRequestTrace(t *testing.T) {
	withEnabled(t, func() {
		tr := StartRequest("op", "ctx-1")
		ctx := ContextWithRequest(context.Background(), tr)
		if got := RequestFromContext(ctx); got != tr {
			t.Fatalf("got %+v", got)
		}
		tr.Finish("200")
	})
}

// TestRecentRingWraparound pins the wraparound contract under concurrent
// finishes (run with -race): the ring holds exactly its capacity of the
// newest completions, the overwrite counter accounts for every older
// one, and no snapshot is torn — each retained record's attrs and phase
// list are internally consistent with its id.
func TestRecentRingWraparound(t *testing.T) {
	withEnabled(t, func() {
		const capacity, workers, perWorker = 32, 8, 100
		SetRecentRequestCapacity(capacity)
		defer SetRecentRequestCapacity(defaultRecentRequests)

		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < perWorker; i++ {
					id := fmt.Sprintf("w%d-%d", w, i)
					tr := StartRequest("stress", id)
					tr.Annotate("echo", id)
					ph := tr.StartPhase("phase-" + id)
					ph.End()
					tr.Finish("200")
				}
			}(w)
		}
		wg.Wait()

		page := SnapshotRequests()
		if len(page.Inflight) != 0 {
			t.Fatalf("%d traces stuck inflight", len(page.Inflight))
		}
		if len(page.Recent) != capacity {
			t.Fatalf("ring holds %d, want %d", len(page.Recent), capacity)
		}
		const total = workers * perWorker
		if page.Overwritten != total-capacity {
			t.Fatalf("overwritten = %d, want %d", page.Overwritten, total-capacity)
		}
		for _, r := range page.Recent {
			if r.Attrs["echo"] != r.ID {
				t.Fatalf("torn record: id=%q attrs=%v", r.ID, r.Attrs)
			}
			if len(r.Phases) != 1 || r.Phases[0].Name != "phase-"+r.ID {
				t.Fatalf("torn phases for %q: %+v", r.ID, r.Phases)
			}
			if r.Status != "200" {
				t.Fatalf("record %q status %q", r.ID, r.Status)
			}
		}
	})
}

// TestEventRingWraparoundConcurrent is the matching stress for the event
// ring: concurrent appends past capacity lose only the oldest events,
// count every overwrite, and never tear a record (name and attrs written
// together stay together).
func TestEventRingWraparoundConcurrent(t *testing.T) {
	withEnabled(t, func() {
		const capacity, workers, perWorker = 64, 8, 200
		SetEventCapacity(capacity)
		defer SetEventCapacity(defaultEventCapacity)

		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < perWorker; i++ {
					tag := fmt.Sprintf("w%d-%d", w, i)
					Event("stress."+tag, S("tag", tag), I("i", int64(i)))
				}
			}(w)
		}
		wg.Wait()

		evs, overwritten := events.snapshot()
		if len(evs) != capacity {
			t.Fatalf("ring holds %d events, want %d", len(evs), capacity)
		}
		const total = workers * perWorker
		if overwritten != total-capacity {
			t.Fatalf("overwritten = %d, want %d", overwritten, total-capacity)
		}
		for _, ev := range evs {
			tag := strings.TrimPrefix(ev.Name, "stress.")
			if ev.Attrs["tag"] != tag {
				t.Fatalf("torn event: name=%q attrs=%v", ev.Name, ev.Attrs)
			}
			var w, i int
			if _, err := fmt.Sscanf(tag, "w%d-%d", &w, &i); err != nil {
				t.Fatalf("bad tag %q: %v", tag, err)
			}
			if ev.Attrs["i"] != int64(i) {
				t.Fatalf("torn event: tag=%q i=%v", tag, ev.Attrs["i"])
			}
		}
	})
}

func TestRequestsHandlerJSONAndHTML(t *testing.T) {
	withEnabled(t, func() {
		tr := StartRequest("score", "handler-1")
		tr.StartPhase("forward").End()
		tr.Finish("200")
		live := StartRequest("opi", "handler-2")
		defer live.Finish("200")

		rec := httptest.NewRecorder()
		RequestsHandler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/requests", nil))
		if rec.Code != http.StatusOK || rec.Header().Get("Content-Type") != "application/json" {
			t.Fatalf("status=%d ct=%q", rec.Code, rec.Header().Get("Content-Type"))
		}
		var page RequestsPage
		if err := json.Unmarshal(rec.Body.Bytes(), &page); err != nil {
			t.Fatalf("bad JSON: %v", err)
		}
		if len(page.Recent) != 1 || page.Recent[0].ID != "handler-1" {
			t.Fatalf("recent = %+v", page.Recent)
		}
		if len(page.Inflight) != 1 || page.Inflight[0].ID != "handler-2" || page.Inflight[0].WallNS <= 0 {
			t.Fatalf("inflight = %+v", page.Inflight)
		}

		rec = httptest.NewRecorder()
		RequestsHandler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/requests?format=html", nil))
		body := rec.Body.String()
		if rec.Code != http.StatusOK || !strings.Contains(body, "handler-1") || !strings.Contains(body, "<table>") {
			t.Fatalf("html render: status=%d body=%q", rec.Code, body)
		}
	})
}

func TestRequestIDHelpers(t *testing.T) {
	a, b := NewRequestID(), NewRequestID()
	if len(a) != 16 || a == b {
		t.Fatalf("ids %q %q", a, b)
	}
	if got := SanitizeRequestID("ok-id_1.2"); got != "ok-id_1.2" {
		t.Errorf("sanitize clean: %q", got)
	}
	if got := SanitizeRequestID("a b\nc\x00d"); got != "abcd" {
		t.Errorf("sanitize dirty: %q", got)
	}
	if got := SanitizeRequestID(strings.Repeat("x", 100)); len(got) != 64 {
		t.Errorf("sanitize long: %d chars", len(got))
	}
	if got := SanitizeRequestID("\x01\x02"); got != "" {
		t.Errorf("sanitize hostile: %q", got)
	}
}

func TestAccessLoggerSamplingAndSlowBypass(t *testing.T) {
	var buf bytes.Buffer
	l := NewAccessLogger(&buf, 10, 50*time.Millisecond)

	// 20 fast requests at 1-in-10 sampling: exactly 2 lines.
	for i := 0; i < 20; i++ {
		l.Log("POST", "/v1/score", 200, time.Millisecond, RequestSnapshot{ID: "fast"})
	}
	if lines := countLines(buf.String()); lines != 2 {
		t.Fatalf("sampled %d lines, want 2\n%s", lines, buf.String())
	}

	// A slow request always logs, with phases and attrs.
	buf.Reset()
	snap := RequestSnapshot{
		ID:     "slow-1",
		Attrs:  map[string]string{"cache": "miss"},
		Phases: []PhaseSnapshot{{Name: "forward", DurNS: int64(60 * time.Millisecond)}},
	}
	if !l.Log("POST", "/v1/score", 200, 60*time.Millisecond, snap) {
		t.Fatal("slow request not logged")
	}
	var rec AccessRecord
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("line not JSON: %v\n%s", err, buf.String())
	}
	if !rec.Slow || rec.ID != "slow-1" || len(rec.Phases) != 1 || rec.Phases[0].Name != "forward" {
		t.Fatalf("slow record = %+v", rec)
	}
	if rec.Attrs["cache"] != "miss" || rec.WallMS < 59 {
		t.Fatalf("slow record = %+v", rec)
	}

	// Nil logger and nil writer: everything discards quietly.
	var nilLogger *AccessLogger
	if nilLogger.Log("GET", "/", 200, time.Second, RequestSnapshot{}) {
		t.Fatal("nil logger logged")
	}
	if NewAccessLogger(nil, 1, 0) != nil {
		t.Fatal("nil writer did not yield nil logger")
	}
	if nilLogger.SlowThreshold() != 0 {
		t.Fatal("nil SlowThreshold")
	}
}

func TestAccessLoggerConcurrentLinesStayWhole(t *testing.T) {
	var buf syncBuffer
	l := NewAccessLogger(&buf, 1, 0)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				l.Log("POST", "/v1/score", 200, time.Millisecond,
					RequestSnapshot{ID: "c" + strconv.Itoa(w*50+i)})
			}
		}(w)
	}
	wg.Wait()
	out := buf.String()
	if lines := countLines(out); lines != 400 {
		t.Fatalf("%d lines, want 400", lines)
	}
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		var rec AccessRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("torn line %q: %v", line, err)
		}
	}
}

// syncBuffer is a mutex-guarded bytes.Buffer (the logger serializes
// writes itself, but the test's final read must also be safe).
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func countLines(s string) int {
	if s == "" {
		return 0
	}
	return strings.Count(s, "\n")
}
