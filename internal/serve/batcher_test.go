package serve

import (
	"context"
	"sync"
	"testing"
	"time"
)

// TestBatcherCoalescesConcurrentScores is the batching contract: N
// concurrent score requests for the same netlist cost one forward pass
// and return scores identical to the serial (batching-disabled) path.
func TestBatcherCoalescesConcurrentScores(t *testing.T) {
	const n = 8
	stub := &stubPredictor{started: make(chan struct{}, 1), release: make(chan struct{})}
	_, ts := newTestServer(t, Options{Predictor: stub, MaxConcurrent: n, MaxQueue: n})

	coalescedBefore := mBatchCoalesced.Value()
	responses := make([]ScoreResponse, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if code := postJSON(t, ts.URL+"/v1/score", ScoreRequest{Netlist: tinyBench}, &responses[i]); code != 200 {
				t.Errorf("request %d: status %d", i, code)
			}
		}(i)
	}
	// The leader is parked inside the forward pass; wait until the other
	// n-1 requests have provably joined its flight, then let it finish.
	<-stub.started
	waitUntil(t, 10*time.Second, func() bool {
		return mBatchCoalesced.Value()-coalescedBefore >= n-1
	})
	close(stub.release)
	wg.Wait()

	if f := stub.forwards.Load(); f != 1 {
		t.Fatalf("%d concurrent requests ran %d forward passes, want 1", n, f)
	}

	// Identical scores to the serial path: a batching-free, cache-free
	// server answering the same request.
	serialStub := &stubPredictor{}
	_, serialTS := newTestServer(t, Options{
		Predictor: serialStub, DisableBatching: true, CacheEntries: -1,
	})
	var serial ScoreResponse
	if code := postJSON(t, serialTS.URL+"/v1/score", ScoreRequest{Netlist: tinyBench}, &serial); code != 200 {
		t.Fatalf("serial status %d", code)
	}
	for i := range responses {
		if responses[i].Design != serial.Design {
			t.Fatalf("request %d: design %q != serial %q", i, responses[i].Design, serial.Design)
		}
		if len(responses[i].Scores) != len(serial.Scores) {
			t.Fatalf("request %d: %d scores != serial %d", i, len(responses[i].Scores), len(serial.Scores))
		}
		for v := range serial.Scores {
			if responses[i].Scores[v] != serial.Scores[v] {
				t.Fatalf("request %d node %d: %g != serial %g",
					i, v, responses[i].Scores[v], serial.Scores[v])
			}
		}
	}
}

// TestSerialPathRunsOneForwardPerRequest pins down what DisableBatching
// + disabled cache mean: every request pays its own compile.
func TestSerialPathRunsOneForwardPerRequest(t *testing.T) {
	stub := &stubPredictor{}
	_, ts := newTestServer(t, Options{Predictor: stub, DisableBatching: true, CacheEntries: -1})
	for i := 0; i < 3; i++ {
		if code := postJSON(t, ts.URL+"/v1/score", ScoreRequest{Netlist: tinyBench}, nil); code != 200 {
			t.Fatalf("status %d", code)
		}
	}
	if f := stub.forwards.Load(); f != 3 {
		t.Fatalf("3 serial requests ran %d forwards, want 3", f)
	}
}

// TestFlightGroupLeaderPanicDoesNotWedge ensures a panicking compile
// releases riders with an error instead of deadlocking the key.
func TestFlightGroupLeaderPanicDoesNotWedge(t *testing.T) {
	g := newFlightGroup()
	_, _, err := g.do(context.Background(), "k", func() (*design, error) { panic("boom") })
	if err == nil {
		t.Fatal("panic swallowed")
	}
	// The key must be reusable afterwards.
	d, leader, err := g.do(context.Background(), "k", func() (*design, error) { return &design{id: "k"}, nil })
	if err != nil || !leader || d.id != "k" {
		t.Fatalf("d=%v leader=%v err=%v", d, leader, err)
	}
}
