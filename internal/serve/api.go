package serve

import (
	"encoding/json"
	"net/http"
)

// This file defines the /v1 wire format. docs/API.md is the normative
// reference; the types here are its implementation and must stay in
// sync.

// Error categories used in the error envelope. Each maps to exactly one
// HTTP status code (see docs/API.md).
const (
	// ErrInvalidRequest (400): malformed JSON, unparseable netlist, or
	// an argument that fails validation.
	ErrInvalidRequest = "invalid_request"
	// ErrNotFound (404): unknown endpoint, or a design id not present in
	// the cache.
	ErrNotFound = "not_found"
	// ErrTooLarge (413): request body exceeds Options.MaxBodyBytes.
	ErrTooLarge = "too_large"
	// ErrOverloaded (429): the admission queue is full; retry after the
	// Retry-After interval.
	ErrOverloaded = "overloaded"
	// ErrInternal (500): unexpected server-side failure.
	ErrInternal = "internal"
	// ErrDeadlineExceeded (504): the request deadline expired before the
	// work completed.
	ErrDeadlineExceeded = "deadline_exceeded"
)

// ErrorBody is the error payload: a machine-readable category plus a
// human-readable message, mirroring the one-line "subsystem: what went
// wrong" idiom used across the repository.
type ErrorBody struct {
	// Category is one of the Err* constants.
	Category string `json:"category"`
	// Message is a human-readable description of this occurrence.
	Message string `json:"message"`
}

// ErrorResponse is the envelope wrapping every non-2xx JSON response.
type ErrorResponse struct {
	Error ErrorBody `json:"error"`
}

// ScoreRequest is the body of POST /v1/score: a complete netlist in
// .bench text to compile and score.
type ScoreRequest struct {
	// Netlist is the .bench-format netlist text (see internal/netlist).
	Netlist string `json:"netlist"`
	// Threshold is the difficult-to-observe cutoff used to populate the
	// response's Difficult list; 0 means the default 0.5.
	Threshold float64 `json:"threshold,omitempty"`
	// TimeoutMs optionally shortens the server's default deadline for
	// this request. It can never lengthen it.
	TimeoutMs int64 `json:"timeout_ms,omitempty"`
}

// NodeScore is one node's identity and positive (difficult-to-observe)
// probability.
type NodeScore struct {
	// ID is the node's cell ID — the index into Scores, and the value
	// /v1/score/delta and /v1/opi accept as a target.
	ID int32 `json:"id"`
	// Name is the cell's textual name when the netlist provided one.
	Name string `json:"name,omitempty"`
	// Score is the predicted probability that the node is difficult to
	// observe.
	Score float64 `json:"score"`
}

// ScoreResponse is the body of a successful /v1/score or /v1/score/delta
// call.
type ScoreResponse struct {
	// Design identifies the server-side cached design state; pass it to
	// /v1/score/delta and /v1/opi. For a fresh /v1/score it is the
	// SHA-256 hex digest of the submitted netlist text.
	Design string `json:"design"`
	// Nodes is the cell count of the (possibly delta-extended) design.
	Nodes int `json:"nodes"`
	// Scores holds one probability per cell, indexed by cell ID.
	Scores []float64 `json:"scores"`
	// Difficult lists the cells at or above the request threshold,
	// sorted by descending score.
	Difficult []NodeScore `json:"difficult"`
	// Cached reports whether the design was served from the warm cache
	// without recompilation.
	Cached bool `json:"cached"`
	// Updated is the number of attribute rows the incremental update
	// refreshed (delta responses only).
	Updated int `json:"updated,omitempty"`
	// Inserted lists the observation-point nodes a delta added, with
	// their post-update scores (delta responses only).
	Inserted []NodeScore `json:"inserted,omitempty"`
}

// DeltaRequest is the body of POST /v1/score/delta: an edit delta —
// observation-point insertions — applied to a cached design.
type DeltaRequest struct {
	// Design is the design id returned by a previous /v1/score or
	// /v1/score/delta call.
	Design string `json:"design"`
	// Observe lists target cell IDs to receive observation points, in
	// order.
	Observe []int32 `json:"observe,omitempty"`
	// ObserveNames lists targets by cell name instead; applied after
	// Observe.
	ObserveNames []string `json:"observe_names,omitempty"`
	// Threshold is the Difficult-list cutoff; 0 means the default 0.5.
	Threshold float64 `json:"threshold,omitempty"`
	// TimeoutMs optionally shortens the default deadline.
	TimeoutMs int64 `json:"timeout_ms,omitempty"`
}

// OPIRequest is the body of POST /v1/opi: run the GCN-guided
// observation-point-insertion flow and return suggested locations.
// Exactly one of Netlist and Design must be set.
type OPIRequest struct {
	// Netlist is a .bench netlist to run the flow on.
	Netlist string `json:"netlist,omitempty"`
	// Design runs the flow on a cached design instead (the cached state
	// itself is not mutated).
	Design string `json:"design,omitempty"`
	// MaxPoints bounds the total suggested observation points; 0 means
	// the server default (64).
	MaxPoints int `json:"max_points,omitempty"`
	// PerIteration caps insertions per flow iteration; 0 means the flow
	// default (64).
	PerIteration int `json:"per_iteration,omitempty"`
	// Threshold is the positive-prediction cutoff; 0 means 0.5.
	Threshold float64 `json:"threshold,omitempty"`
	// Evaluate additionally fault-simulates the design before and after
	// insertion and reports coverage.
	Evaluate bool `json:"evaluate,omitempty"`
	// Patterns is the random-pattern budget for Evaluate; 0 means 2048.
	Patterns int `json:"patterns,omitempty"`
	// TimeoutMs optionally shortens the default deadline.
	TimeoutMs int64 `json:"timeout_ms,omitempty"`
}

// OPIResponse is the body of a successful /v1/opi call.
type OPIResponse struct {
	// Design echoes the cached design id the flow ran against, if any.
	Design string `json:"design,omitempty"`
	// Points lists the suggested observation-point targets in insertion
	// order, with their pre-insertion scores.
	Points []NodeScore `json:"points"`
	// Iterations is the number of predict/insert rounds the flow ran.
	Iterations int `json:"iterations"`
	// FinalPositives is the number of difficult predictions remaining
	// when the flow stopped.
	FinalPositives int `json:"final_positives"`
	// CoverageBefore/CoverageAfter are stuck-at fault coverages from the
	// Evaluate option (absent otherwise).
	CoverageBefore *float64 `json:"coverage_before,omitempty"`
	CoverageAfter  *float64 `json:"coverage_after,omitempty"`
}

// DesignInfo is one cached design's bookkeeping in GET /v1/designs.
type DesignInfo struct {
	// Design is the cache id (pass it to /v1/score/delta and /v1/opi).
	Design string `json:"design"`
	// Nodes is the design's current cell count (grows with deltas).
	Nodes int64 `json:"nodes"`
	// SourceBytes is the stored netlist text size; 0 once the design has
	// diverged from any submittable text through deltas.
	SourceBytes int `json:"source_bytes"`
	// Hits counts cache lookups that returned this design.
	Hits int64 `json:"hits"`
	// AgeMs is milliseconds since the design was compiled.
	AgeMs int64 `json:"age_ms"`
	// IdleMs is milliseconds since the design was last looked up.
	IdleMs int64 `json:"idle_ms"`
}

// DesignsResponse is the body of GET /v1/designs: the cached designs in
// most-recently-used-first order.
type DesignsResponse struct {
	// Designs lists the cache contents, most recently used first.
	Designs []DesignInfo `json:"designs"`
	// Capacity is the configured cache size (0 when caching is off).
	Capacity int `json:"capacity"`
}

// HealthResponse is the body of GET /healthz.
type HealthResponse struct {
	// Status is "ok", or "draining" once shutdown has begun (reported
	// with HTTP 503 so load balancers stop routing here).
	Status string `json:"status"`
	// Model describes the loaded predictor.
	Model string `json:"model"`
	// Version is the serving tree's git version (obs.GitDescribe);
	// absent when git or the repository is unavailable.
	Version string `json:"version,omitempty"`
	// UptimeMs is milliseconds since the server was constructed.
	UptimeMs int64 `json:"uptime_ms"`
	// CachedDesigns is the current design-cache occupancy.
	CachedDesigns int `json:"cached_designs"`
	// Inflight is the number of requests currently holding an admission
	// slot.
	Inflight int64 `json:"inflight"`
}

// writeJSON writes v as a JSON response with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// writeError writes the error envelope for the given category, deriving
// the status code from the category table in docs/API.md.
func writeError(w http.ResponseWriter, category, message string) {
	status := http.StatusInternalServerError
	switch category {
	case ErrInvalidRequest:
		status = http.StatusBadRequest
	case ErrNotFound:
		status = http.StatusNotFound
	case ErrTooLarge:
		status = http.StatusRequestEntityTooLarge
	case ErrOverloaded:
		status = http.StatusTooManyRequests
		w.Header().Set("Retry-After", "1")
	case ErrDeadlineExceeded:
		status = http.StatusGatewayTimeout
	}
	mErrors.Inc()
	writeJSON(w, status, ErrorResponse{Error: ErrorBody{Category: category, Message: message}})
}
