package experiments

import (
	"fmt"
	"io"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/features"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/tensor"
)

// Table2Row holds one design's balanced-set accuracy per model
// (leave-one-design-out: the row's design is the test set).
type Table2Row struct {
	Design string
	Acc    map[string]float64 // model name → accuracy
}

// Table2Result is the full classifier comparison.
type Table2Result struct {
	Rows    []Table2Row
	Models  []string
	Average map[string]float64
}

// Table2 reproduces the accuracy comparison on balanced datasets:
// classical models (LR, RF, SVM, MLP) on 4004-dimensional cone features
// versus the GCN on the raw graph, with three designs for training and
// the fourth for testing, rotating through all four designs.
func Table2(cfg Config) Table2Result {
	span := obs.StartSpan("experiments/table2")
	defer span.End()
	cfg = cfg.withDefaults()
	suite := cfg.suite()
	coneSize := features.DefaultConeSize
	if cfg.Quick {
		coneSize = 50
	}

	res := Table2Result{
		Models:  []string{"LR", "RF", "SVM", "MLP", "GCN"},
		Average: make(map[string]float64),
	}

	// Balanced label sets and cone features per design (built once).
	balanced := make([][]int, len(suite))
	nodeLists := make([][]int32, len(suite))
	featMats := make([]*tensor.Dense, len(suite))
	for i, b := range suite {
		balanced[i] = dataset.BalancedLabels(b.Graph, cfg.Seed+int64(i)*31)
		nodeLists[i] = dataset.LabeledNodes(balanced[i])
		ex := features.NewExtractor(b.Netlist, b.Measures)
		ex.ConeSize = coneSize
		featMats[i] = ex.Matrix(nodeLists[i])
	}

	for test := range suite {
		row := Table2Row{Design: suite[test].Name, Acc: make(map[string]float64)}

		// Assemble classical train/test matrices.
		var trainRows [][]float64
		var trainY []int
		for d := range suite {
			if d == test {
				continue
			}
			for k, v := range nodeLists[d] {
				trainRows = append(trainRows, featMats[d].Row(k))
				trainY = append(trainY, balanced[d][v])
			}
		}
		trainX := tensor.FromRows(trainRows)
		testX := featMats[test]
		testY := make([]int, len(nodeLists[test]))
		for k, v := range nodeLists[test] {
			testY[k] = balanced[test][v]
		}

		mlpEpochs := 120
		if cfg.Quick {
			mlpEpochs = 40
		}
		models := []baselines.Classifier{
			&baselines.LogisticRegression{},
			&baselines.RandomForest{Seed: cfg.Seed + 101, NumTrees: 40},
			&baselines.LinearSVM{Seed: cfg.Seed + 202},
			&baselines.MLP{Seed: cfg.Seed + 303, Epochs: mlpEpochs},
		}
		for _, m := range models {
			m.Fit(trainX, trainY)
			c := metrics.NewConfusion(m.Predict(testX), testY)
			row.Acc[m.Name()] = c.Accuracy()
		}

		// GCN: train on the three graphs with balanced masked labels.
		var graphs []*core.Graph
		var labelSets [][]int
		for d := range suite {
			if d == test {
				continue
			}
			graphs = append(graphs, suite[d].Graph)
			labelSets = append(labelSets, balanced[d])
		}
		gcn := core.MustNewModel(cfg.modelConfig(3, cfg.Seed+404))
		if _, err := core.Train(gcn, graphs, labelSets, cfg.trainOptions()); err != nil {
			panic(err)
		}
		row.Acc["GCN"] = core.Accuracy(gcn, suite[test].Graph, balanced[test])

		res.Rows = append(res.Rows, row)
	}

	for _, m := range res.Models {
		var sum float64
		for _, row := range res.Rows {
			sum += row.Acc[m]
		}
		res.Average[m] = sum / float64(len(res.Rows))
	}
	return res
}

// Fprint writes the table in the paper's layout.
func (r Table2Result) Fprint(w io.Writer) {
	fmt.Fprintln(w, "Table 2: Accuracy comparison on balanced dataset")
	fmt.Fprintf(w, "%-8s", "Design")
	for _, m := range r.Models {
		fmt.Fprintf(w, " %8s", m)
	}
	fmt.Fprintln(w)
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-8s", row.Design)
		for _, m := range r.Models {
			fmt.Fprintf(w, " %8.3f", row.Acc[m])
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "%-8s", "Average")
	for _, m := range r.Models {
		fmt.Fprintf(w, " %8.3f", r.Average[m])
	}
	fmt.Fprintln(w)
}
