package partition

import (
	"testing"

	"repro/internal/circuitgen"
	"repro/internal/core"
)

func smallModel(tb testing.TB, seed int64) *core.Model {
	tb.Helper()
	cfg := core.Config{Dims: []int{6, 8, 10}, FCDims: []int{8}, NumClasses: 2, Seed: seed}
	m, err := core.NewModel(cfg)
	if err != nil {
		tb.Fatal(err)
	}
	return m
}

func smallCascade(tb testing.TB, seed int64) *core.MultiStage {
	tb.Helper()
	return &core.MultiStage{
		Stages:      []*core.Model{smallModel(tb, seed), smallModel(tb, seed+101)},
		FilterBelow: 0.25,
	}
}

func exactEqual(tb testing.TB, label string, want, got []float64) {
	tb.Helper()
	if len(want) != len(got) {
		tb.Fatalf("%s: length %d vs %d", label, len(want), len(got))
	}
	for i := range want {
		if want[i] != got[i] {
			tb.Fatalf("%s: node %d: whole-graph %v vs sharded %v (bit-exact mismatch)",
				label, i, want[i], got[i])
		}
	}
}

// TestShardedBitIdentical: sharded PredictProbs must equal whole-graph
// PredictProbs with float64 == across strategies, modes and shard
// counts. The exhaustive 60-seed suite lives in internal/refcheck;
// this is the in-package smoke over the full option matrix.
func TestShardedBitIdentical(t *testing.T) {
	for _, cfg := range testConfigs() {
		g := genGraph(t, cfg)
		m := smallModel(t, 42)
		want := m.PredictProbs(g)
		for _, strat := range []Strategy{LevelBand, FanoutCone} {
			for _, mode := range []Mode{Exchange, OneShot} {
				for _, k := range []int{1, 3, 8} {
					sp, err := NewSharded(m, Options{K: k, Strategy: strat, Mode: mode, Workers: 2})
					if err != nil {
						t.Fatal(err)
					}
					got := sp.PredictProbs(g)
					sp.Close()
					exactEqual(t, strat.String()+"/"+mode.String(), want, got)
				}
			}
		}
	}
}

func TestShardedMultiStageBitIdentical(t *testing.T) {
	g := genGraph(t, testConfigs()[1])
	ms := smallCascade(t, 7)
	want := ms.PredictProbs(g)
	for _, mode := range []Mode{Exchange, OneShot} {
		sp, err := NewSharded(ms, Options{K: 4, Mode: mode})
		if err != nil {
			t.Fatal(err)
		}
		exactEqual(t, "multistage/"+mode.String(), want, sp.PredictProbs(g))
		sp.Close()
	}
}

// TestShardedIncremental: the stitched incremental state must be
// bit-identical to the one a whole-graph ForwardFull builds, and must
// keep tracking updates (here: an appended observation point) exactly
// like a session started unsharded.
func TestShardedIncremental(t *testing.T) {
	for _, base := range []core.IncrementalPredictor{smallModel(t, 5), smallCascade(t, 5)} {
		g := genGraph(t, testConfigs()[0])
		ref := core.ClonePredictor(base).NewIncremental(g)
		sp, err := NewSharded(base, Options{K: 4, Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		run := sp.NewIncremental(g)
		exactEqual(t, "initial probs", ref.Probs(), run.Probs())

		g.AddObservationPoint(int32(g.N / 2))
		ref.Update(g, nil)
		run.Update(g, nil)
		exactEqual(t, "post-insert probs", ref.Probs(), run.Probs())
		sp.Close()
	}
}

func TestShardedCompileCache(t *testing.T) {
	g := genGraph(t, testConfigs()[2])
	sp, err := NewSharded(smallModel(t, 3), Options{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer sp.Close()
	sp.PredictProbs(g)
	first := sp.cg
	sp.PredictProbs(g)
	if sp.cg != first {
		t.Fatal("unchanged graph recompiled")
	}
	g.AddObservationPoint(0)
	sp.PredictProbs(g)
	if sp.cg == first {
		t.Fatal("grown graph not recompiled")
	}
	if sp.cg.n != g.N {
		t.Fatalf("recompiled for %d nodes, graph has %d", sp.cg.n, g.N)
	}
}

func TestShardedCloneAndClose(t *testing.T) {
	g := genGraph(t, testConfigs()[0])
	sp, err := NewSharded(smallModel(t, 11), Options{K: 3, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	want := sp.PredictProbs(g)

	clone := core.ClonePredictor(sp)
	cp, ok := clone.(*ShardedPredictor)
	if !ok {
		t.Fatalf("ClonePredictor returned %T", clone)
	}
	if cp == sp || cp.Base() == sp.Base() {
		t.Fatal("clone shares state with the original")
	}
	exactEqual(t, "clone probs", want, cp.PredictProbs(g))
	cp.Close()

	// After Close the predictor still answers (inline execution).
	sp.Close()
	sp.Close() // idempotent
	exactEqual(t, "post-close probs", want, sp.PredictProbs(g))

	if sp.NumShards() != 3 || sp.Workers() != 2 {
		t.Fatalf("NumShards/Workers = %d/%d", sp.NumShards(), sp.Workers())
	}
}

func TestShardedPartitionAccessor(t *testing.T) {
	g := genGraph(t, testConfigs()[0])
	sp, err := NewSharded(smallModel(t, 1), Options{K: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer sp.Close()
	p := sp.Partition(g)
	if p.K != 5 || p.Halo != 3 {
		t.Fatalf("partition K=%d halo=%d, want 5/3 (model depth 3)", p.K, p.Halo)
	}
	if err := p.Validate(g); err != nil {
		t.Fatal(err)
	}
}

type fakePredictor struct{}

func (fakePredictor) PredictProbs(*core.Graph) []float64             { return nil }
func (fakePredictor) NewIncremental(*core.Graph) core.IncrementalRun { return nil }

func TestNewShardedErrors(t *testing.T) {
	m := smallModel(t, 2)
	if _, err := NewSharded(fakePredictor{}, Options{K: 2}); err == nil {
		t.Fatal("unsupported base accepted")
	}
	if _, err := NewSharded(&core.MultiStage{}, Options{K: 2}); err == nil {
		t.Fatal("empty cascade accepted")
	}
	if _, err := NewSharded(m, Options{K: 2, Halo: 1}); err == nil {
		t.Fatal("halo below receptive field accepted")
	}
	if _, err := NewSharded(m, Options{K: 0}); err == nil {
		t.Fatal("K=0 accepted")
	}
	if _, err := NewSharded(m, Options{K: 2, Halo: 5}); err != nil {
		t.Fatalf("halo above receptive field rejected: %v", err)
	}
}

// TestShardedTinyGraphs: graphs smaller than K, single-node graphs and
// an edgeless graph all stitch correctly.
func TestShardedTinyGraphs(t *testing.T) {
	m := smallModel(t, 9)
	tiny := genGraph(t, circuitgen.Config{Seed: 4, NumGates: 9, NumPIs: 3, Layers: 2, MaxFanin: 2})
	iso := core.NewGraph(4) // disconnected, attribute rows all zero
	for _, g := range []*core.Graph{tiny, iso} {
		want := m.PredictProbs(g)
		for _, mode := range []Mode{Exchange, OneShot} {
			sp, err := NewSharded(m, Options{K: 16, Mode: mode})
			if err != nil {
				t.Fatal(err)
			}
			exactEqual(t, "tiny/"+mode.String(), want, sp.PredictProbs(g))
			sp.Close()
		}
	}
}

// TestShardedFloat32Delegation pins the f32 interplay: ShardedPredictor
// forwards core.Float32Inferencer to its base, and with the flag on,
// PredictProbs bypasses the float64-only shard kernels and answers from
// the base's whole-graph f32 path (within the f32 tolerance of the f64
// scores). Turning the flag back off restores sharded bit-identity.
func TestShardedFloat32Delegation(t *testing.T) {
	g := genGraph(t, circuitgen.Config{Seed: 7, NumGates: 150, NumPIs: 10, Layers: 6, MaxFanin: 3})
	m := smallModel(t, 11)
	want64 := m.Clone().PredictProbs(g)

	sp, err := NewSharded(m, Options{K: 3, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer sp.Close()

	if sp.Float32Inference() {
		t.Fatal("f32 flag on by default")
	}
	sp.SetFloat32Inference(true)
	if !sp.Float32Inference() || !m.Float32Inference() {
		t.Fatal("SetFloat32Inference did not reach the base predictor")
	}
	got := sp.PredictProbs(g)
	for v := range want64 {
		d := got[v] - want64[v]
		if d < 0 {
			d = -d
		}
		if d > 1e-4 {
			t.Fatalf("node %d: f32 sharded score %g vs f64 %g", v, got[v], want64[v])
		}
	}

	sp.SetFloat32Inference(false)
	exactEqual(t, "post-f32", want64, sp.PredictProbs(g))
}
