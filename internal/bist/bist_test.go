package bist

import (
	"testing"

	"repro/internal/circuitgen"
	"repro/internal/netlist"
)

func TestLFSRMaximalPeriod16(t *testing.T) {
	l, err := NewLFSR(16, Poly16, 0xACE1)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[uint64]bool)
	start := l.State()
	period := 0
	for {
		s := l.Step()
		period++
		if s == start {
			break
		}
		if seen[s] {
			t.Fatalf("state %x repeated before returning to the seed", s)
		}
		seen[s] = true
		if period > 1<<16 {
			t.Fatal("period exceeds state space; broken feedback")
		}
	}
	if period != (1<<16)-1 {
		t.Errorf("period = %d, want 65535 (maximal length)", period)
	}
}

func TestLFSRNeverReachesZero(t *testing.T) {
	l, err := NewLFSR(16, Poly16, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100000; i++ {
		if l.Step() == 0 {
			t.Fatal("LFSR reached the all-zero lockup state")
		}
	}
}

func TestLFSRValidation(t *testing.T) {
	if _, err := NewLFSR(16, Poly16, 0); err == nil {
		t.Error("zero seed should fail")
	}
	if _, err := NewLFSR(0, Poly16, 1); err == nil {
		t.Error("zero width should fail")
	}
	if _, err := NewLFSR(16, 0, 1); err == nil {
		t.Error("empty taps should fail")
	}
	if _, err := NewLFSR(8, 0xB4, 0x100); err == nil {
		t.Error("seed outside width should mask to zero and fail")
	}
}

func TestMISRDistinguishesResponses(t *testing.T) {
	m1, err := NewMISR(64, Poly32|1)
	if err != nil {
		t.Fatal(err)
	}
	m2, _ := NewMISR(64, Poly32|1)
	stream := []uint64{0xDEAD, 0xBEEF, 0x1234, 0x5678}
	for _, w := range stream {
		m1.Shift(w)
	}
	// One flipped bit mid-stream must change the signature.
	for i, w := range stream {
		if i == 2 {
			w ^= 1 << 7
		}
		m2.Shift(w)
	}
	if m1.Signature() == m2.Signature() {
		t.Error("single-bit response error aliased to the same signature")
	}
}

func TestMISRDeterministic(t *testing.T) {
	a, _ := NewMISR(32, Poly32)
	b, _ := NewMISR(32, Poly32)
	for i := uint64(0); i < 100; i++ {
		a.Shift(i * 0x9E3779B97F4A7C15)
		b.Shift(i * 0x9E3779B97F4A7C15)
	}
	if a.Signature() != b.Signature() {
		t.Error("identical streams produced different signatures")
	}
}

func TestRunSessionCoverageAndSignature(t *testing.T) {
	n := circuitgen.Generate("bist", circuitgen.Config{Seed: 5, NumGates: 1500})
	res, err := RunSession(n, SessionConfig{Patterns: 2048})
	if err != nil {
		t.Fatal(err)
	}
	if res.Coverage < 0.85 {
		t.Errorf("BIST coverage = %.4f, want reasonable pseudo-random coverage", res.Coverage)
	}
	if res.Signature == 0 {
		t.Error("golden signature is zero; MISR likely not fed")
	}
	// Deterministic.
	res2, err := RunSession(n, SessionConfig{Patterns: 2048})
	if err != nil {
		t.Fatal(err)
	}
	if res.Signature != res2.Signature || res.Detected != res2.Detected {
		t.Error("BIST session not reproducible")
	}
	// A different seed yields a different signature (almost surely).
	res3, err := RunSession(n, SessionConfig{Patterns: 2048, Seed: 0xBEEF})
	if err != nil {
		t.Fatal(err)
	}
	if res3.Signature == res.Signature {
		t.Error("different LFSR seeds produced identical signatures")
	}
}

func TestRunSessionObservationPointsHelp(t *testing.T) {
	n := circuitgen.Generate("bisto", circuitgen.Config{
		Seed: 6, NumGates: 2000, ShadowFunnels: 8, ShadowGuard: 4,
	})
	before, err := RunSession(n, SessionConfig{Patterns: 2048})
	if err != nil {
		t.Fatal(err)
	}
	// Observe a few blocked nets (simulate what the paper's flow does).
	inserted := 0
	for id := int32(0); id < int32(n.NumGates()) && inserted < 40; id++ {
		if n.Type(id) == netlist.And && len(n.Fanout(id)) == 1 {
			if _, err := n.InsertObservationPoint(id); err == nil {
				inserted++
			}
		}
	}
	after, err := RunSession(n, SessionConfig{Patterns: 2048})
	if err != nil {
		t.Fatal(err)
	}
	if after.Coverage < before.Coverage {
		t.Errorf("observation points reduced BIST coverage: %.4f -> %.4f",
			before.Coverage, after.Coverage)
	}
}
