// Package netlist provides a compact, index-based representation of
// gate-level logic netlists, the fundamental substrate of this
// reproduction. A netlist is a directed graph in which every node is a
// cell (gate, primary input, primary output, flip-flop, or inserted
// observation point) and every edge is a wire, exactly as in Section 3.1
// of the paper.
//
// The representation is designed to scale to millions of cells: gates are
// stored in a flat slice addressed by dense int32 IDs, and fanin/fanout
// lists are int32 slices. All structural queries (topological order, logic
// levels, fan-in/fan-out cones) are provided here so that higher layers
// (SCOAP, fault simulation, the GCN graph construction) never need their
// own traversal code.
package netlist

import (
	"fmt"
	"sort"
)

// GateType enumerates the cell types supported by the netlist substrate.
type GateType uint8

// Supported cell types. Input denotes a primary input, Output a primary
// output sink, DFF a scan flip-flop (treated as a pseudo PI/PO boundary by
// the testability layers), and Obs an inserted observation point (a pseudo
// primary output, i.e. a scan cell attached to an internal net).
const (
	Input GateType = iota
	Output
	Buf
	Not
	And
	Nand
	Or
	Nor
	Xor
	Xnor
	DFF
	Obs
	numGateTypes
)

var gateTypeNames = [...]string{
	Input:  "INPUT",
	Output: "OUTPUT",
	Buf:    "BUF",
	Not:    "NOT",
	And:    "AND",
	Nand:   "NAND",
	Or:     "OR",
	Nor:    "NOR",
	Xor:    "XOR",
	Xnor:   "XNOR",
	DFF:    "DFF",
	Obs:    "OBS",
}

// String returns the canonical upper-case mnemonic of the gate type.
func (t GateType) String() string {
	if int(t) < len(gateTypeNames) {
		return gateTypeNames[t]
	}
	return fmt.Sprintf("GateType(%d)", uint8(t))
}

// ParseGateType converts a mnemonic such as "NAND" to its GateType.
func ParseGateType(s string) (GateType, error) {
	for t, name := range gateTypeNames {
		if name == s {
			return GateType(t), nil
		}
	}
	return 0, fmt.Errorf("netlist: unknown gate type %q", s)
}

// MinFanin returns the minimum number of fanin nets a cell of this type
// must have; MaxFanin returns the maximum (or -1 for unbounded).
func (t GateType) MinFanin() int {
	switch t {
	case Input:
		return 0
	case Output, Buf, Not, DFF, Obs:
		return 1
	default:
		return 2
	}
}

// MaxFanin reports the maximum legal fanin count for the type, with -1
// meaning unbounded.
func (t GateType) MaxFanin() int {
	switch t {
	case Input:
		return 0
	case Output, Buf, Not, DFF, Obs:
		return 1
	default:
		return -1
	}
}

// IsObservationSink reports whether the cell type makes its (single) fanin
// net directly observable: primary outputs, scan flip-flop data inputs and
// inserted observation points.
func (t GateType) IsObservationSink() bool {
	return t == Output || t == DFF || t == Obs
}

// IsControllableSource reports whether the cell drives a fully
// controllable net: primary inputs and scan flip-flop outputs.
func (t GateType) IsControllableSource() bool {
	return t == Input || t == DFF
}

// Gate is a single cell. Fanin holds the IDs of driver cells in pin
// order. Name is optional and used only by the text formats.
type Gate struct {
	Type  GateType
	Name  string
	Fanin []int32
}

// Netlist is a mutable gate-level netlist. The zero value is an empty
// netlist ready for use. Gates are identified by dense int32 IDs in
// insertion order. Derived structure (fanout lists, levels, topological
// order) is computed lazily and invalidated on mutation.
type Netlist struct {
	Name  string
	gates []Gate

	// Lazily computed caches, invalidated by any mutation.
	fanout  [][]int32
	topo    []int32
	levels  []int32
	nameIdx map[string]int32
}

// New returns an empty netlist with the given design name.
func New(name string) *Netlist {
	return &Netlist{Name: name}
}

// NumGates returns the number of cells in the netlist.
func (n *Netlist) NumGates() int { return len(n.gates) }

// NumEdges returns the total number of wires (sum of fanin counts).
func (n *Netlist) NumEdges() int {
	total := 0
	for i := range n.gates {
		total += len(n.gates[i].Fanin)
	}
	return total
}

// Gate returns the cell with the given ID. The returned pointer is valid
// until the next mutation; callers must not modify Fanin through it.
func (n *Netlist) Gate(id int32) *Gate { return &n.gates[id] }

// Type returns the cell type of id.
func (n *Netlist) Type(id int32) GateType { return n.gates[id].Type }

// Fanin returns the fanin (driver) IDs of id. The slice is owned by the
// netlist and must not be modified.
func (n *Netlist) Fanin(id int32) []int32 { return n.gates[id].Fanin }

// AddGate appends a cell and returns its ID. Fanin IDs must refer to
// already-added cells, which guarantees the gates slice is already in a
// valid topological order for acyclic designs built front to back.
func (n *Netlist) AddGate(t GateType, name string, fanin ...int32) (int32, error) {
	if min := t.MinFanin(); len(fanin) < min {
		return 0, fmt.Errorf("netlist: %s gate %q needs at least %d fanin, got %d", t, name, min, len(fanin))
	}
	if max := t.MaxFanin(); max >= 0 && len(fanin) > max {
		return 0, fmt.Errorf("netlist: %s gate %q allows at most %d fanin, got %d", t, name, max, len(fanin))
	}
	id := int32(len(n.gates))
	for _, f := range fanin {
		if f < 0 || f >= id {
			return 0, fmt.Errorf("netlist: gate %q fanin %d out of range [0,%d)", name, f, id)
		}
	}
	n.gates = append(n.gates, Gate{Type: t, Name: name, Fanin: append([]int32(nil), fanin...)})
	n.invalidate()
	return id, nil
}

// MustAddGate is AddGate that panics on error; intended for generators and
// tests where the construction is known valid.
func (n *Netlist) MustAddGate(t GateType, name string, fanin ...int32) int32 {
	id, err := n.AddGate(t, name, fanin...)
	if err != nil {
		panic(err)
	}
	return id
}

// InsertObservationPoint attaches an observation point (pseudo primary
// output scan cell) to the output net of target and returns the new
// cell's ID. This is the netlist-level half of the paper's OP insertion:
// a new node p is added together with the edge target→p.
func (n *Netlist) InsertObservationPoint(target int32) (int32, error) {
	if target < 0 || int(target) >= len(n.gates) {
		return 0, fmt.Errorf("netlist: observation point target %d out of range", target)
	}
	t := n.gates[target].Type
	if t == Output || t == Obs {
		return 0, fmt.Errorf("netlist: cannot observe %s cell %d", t, target)
	}
	return n.AddGate(Obs, fmt.Sprintf("op_%d", target), target)
}

// IDByName returns the ID of the cell with the given name.
func (n *Netlist) IDByName(name string) (int32, bool) {
	if n.nameIdx == nil {
		n.nameIdx = make(map[string]int32, len(n.gates))
		for i := range n.gates {
			if n.gates[i].Name != "" {
				n.nameIdx[n.gates[i].Name] = int32(i)
			}
		}
	}
	id, ok := n.nameIdx[name]
	return id, ok
}

// PrimaryInputs returns the IDs of all Input cells in ID order.
func (n *Netlist) PrimaryInputs() []int32 { return n.idsOfType(Input) }

// PrimaryOutputs returns the IDs of all Output cells in ID order.
func (n *Netlist) PrimaryOutputs() []int32 { return n.idsOfType(Output) }

// ObservationPoints returns the IDs of all inserted Obs cells in ID order.
func (n *Netlist) ObservationPoints() []int32 { return n.idsOfType(Obs) }

// FlipFlops returns the IDs of all DFF cells in ID order.
func (n *Netlist) FlipFlops() []int32 { return n.idsOfType(DFF) }

func (n *Netlist) idsOfType(t GateType) []int32 {
	var ids []int32
	for i := range n.gates {
		if n.gates[i].Type == t {
			ids = append(ids, int32(i))
		}
	}
	return ids
}

// CountType returns the number of cells of the given type.
func (n *Netlist) CountType(t GateType) int {
	c := 0
	for i := range n.gates {
		if n.gates[i].Type == t {
			c++
		}
	}
	return c
}

// Fanout returns the fanout (load) IDs of id. The slice is owned by the
// netlist and must not be modified.
func (n *Netlist) Fanout(id int32) []int32 {
	if n.fanout == nil {
		n.buildFanout()
	}
	return n.fanout[id]
}

func (n *Netlist) buildFanout() {
	counts := make([]int32, len(n.gates))
	for i := range n.gates {
		for _, f := range n.gates[i].Fanin {
			counts[f]++
		}
	}
	n.fanout = make([][]int32, len(n.gates))
	backing := make([]int32, 0, n.NumEdges())
	for i := range n.gates {
		c := counts[i]
		n.fanout[i] = backing[len(backing) : len(backing) : len(backing)+int(c)]
		backing = backing[:len(backing)+int(c)]
	}
	for i := range n.gates {
		for _, f := range n.gates[i].Fanin {
			n.fanout[f] = append(n.fanout[f], int32(i))
		}
	}
}

func (n *Netlist) invalidate() {
	n.fanout = nil
	n.topo = nil
	n.levels = nil
	n.nameIdx = nil
}

// TopoOrder returns the cell IDs in a topological order (drivers before
// loads). Because AddGate only accepts already-present fanin, insertion
// order is always topological; the method exists so that callers do not
// depend on that invariant and to support future formats that relax it.
func (n *Netlist) TopoOrder() []int32 {
	if n.topo != nil {
		return n.topo
	}
	order := make([]int32, len(n.gates))
	for i := range order {
		order[i] = int32(i)
	}
	n.topo = order
	return order
}

// Levels returns the logic level LL of every cell: primary inputs and
// flip-flop outputs are level 0, and every other cell is one more than
// the maximum level of its fanin. This is the LL component of the node
// attribute vector [LL, C0, C1, O].
func (n *Netlist) Levels() []int32 {
	if n.levels != nil {
		return n.levels
	}
	lv := make([]int32, len(n.gates))
	for _, id := range n.TopoOrder() {
		g := &n.gates[id]
		if g.Type.IsControllableSource() {
			lv[id] = 0
			continue
		}
		best := int32(-1)
		for _, f := range g.Fanin {
			if lv[f] > best {
				best = lv[f]
			}
		}
		lv[id] = best + 1
	}
	n.levels = lv
	return lv
}

// MaxLevel returns the maximum logic level in the design (the depth).
func (n *Netlist) MaxLevel() int32 {
	var max int32
	for _, l := range n.Levels() {
		if l > max {
			max = l
		}
	}
	return max
}

// FaninCone returns up to limit cell IDs reachable backwards from id
// (excluding id itself), discovered in breadth-first order — the
// traversal order the paper prescribes for handcrafted cone features. A
// limit of 0 means unbounded.
func (n *Netlist) FaninCone(id int32, limit int) []int32 {
	return n.cone(id, limit, func(v int32) []int32 { return n.gates[v].Fanin })
}

// FanoutCone returns up to limit cell IDs reachable forwards from id
// (excluding id itself) in breadth-first order. A limit of 0 means
// unbounded.
func (n *Netlist) FanoutCone(id int32, limit int) []int32 {
	if n.fanout == nil {
		n.buildFanout()
	}
	return n.cone(id, limit, func(v int32) []int32 { return n.fanout[v] })
}

func (n *Netlist) cone(id int32, limit int, next func(int32) []int32) []int32 {
	visited := make(map[int32]bool, 64)
	visited[id] = true
	queue := []int32{id}
	var out []int32
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, u := range next(v) {
			if visited[u] {
				continue
			}
			visited[u] = true
			out = append(out, u)
			queue = append(queue, u)
			if limit > 0 && len(out) >= limit {
				return out
			}
		}
	}
	return out
}

// Validate checks structural invariants: fanin IDs in range and strictly
// smaller than the gate ID (acyclicity by construction), fanin arity
// legal for the type, Input cells have no fanin, and Output/Obs cells
// drive nothing.
func (n *Netlist) Validate() error {
	if n.fanout == nil {
		n.buildFanout()
	}
	for i := range n.gates {
		g := &n.gates[i]
		if min := g.Type.MinFanin(); len(g.Fanin) < min {
			return fmt.Errorf("netlist: cell %d (%s) has %d fanin, needs >= %d", i, g.Type, len(g.Fanin), min)
		}
		if max := g.Type.MaxFanin(); max >= 0 && len(g.Fanin) > max {
			return fmt.Errorf("netlist: cell %d (%s) has %d fanin, allows <= %d", i, g.Type, len(g.Fanin), max)
		}
		for _, f := range g.Fanin {
			if f < 0 || f >= int32(i) {
				return fmt.Errorf("netlist: cell %d fanin %d violates topological IDs", i, f)
			}
		}
		if (g.Type == Output || g.Type == Obs) && len(n.fanout[i]) != 0 {
			return fmt.Errorf("netlist: sink cell %d (%s) has fanout", i, g.Type)
		}
	}
	return nil
}

// Clone returns a deep copy of the netlist (caches are not copied).
func (n *Netlist) Clone() *Netlist {
	c := &Netlist{Name: n.Name, gates: make([]Gate, len(n.gates))}
	for i := range n.gates {
		g := n.gates[i]
		g.Fanin = append([]int32(nil), g.Fanin...)
		c.gates[i] = g
	}
	return c
}

// Stats summarizes a netlist for reporting.
type Stats struct {
	Gates    int
	Edges    int
	PIs      int
	POs      int
	DFFs     int
	Obs      int
	Depth    int32
	ByType   map[GateType]int
	AvgFan   float64
	MaxFan   int
	Sparsity float64 // fraction of zero entries in the N×N adjacency
}

// ComputeStats gathers summary statistics (Table 1 style) for the design.
func (n *Netlist) ComputeStats() Stats {
	s := Stats{ByType: make(map[GateType]int)}
	s.Gates = n.NumGates()
	s.Edges = n.NumEdges()
	for i := range n.gates {
		s.ByType[n.gates[i].Type]++
	}
	s.PIs = s.ByType[Input]
	s.POs = s.ByType[Output]
	s.DFFs = s.ByType[DFF]
	s.Obs = s.ByType[Obs]
	s.Depth = n.MaxLevel()
	if n.fanout == nil {
		n.buildFanout()
	}
	for i := range n.gates {
		if l := len(n.fanout[i]); l > s.MaxFan {
			s.MaxFan = l
		}
	}
	if s.Gates > 0 {
		s.AvgFan = float64(s.Edges) / float64(s.Gates)
		nn := float64(s.Gates) * float64(s.Gates)
		s.Sparsity = 1 - float64(s.Edges)/nn
	}
	return s
}

// SortedTypes returns the gate types present in the stats in a stable
// order, for deterministic printing.
func (s Stats) SortedTypes() []GateType {
	types := make([]GateType, 0, len(s.ByType))
	for t := range s.ByType {
		types = append(types, t)
	}
	sort.Slice(types, func(i, j int) bool { return types[i] < types[j] })
	return types
}
