package serve

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/obs"
)

// flightGroup coalesces concurrent identical work: while a compile for
// one design hash is in flight, every other request for the same hash
// waits for the leader's result instead of compiling (and running the
// forward pass) again. This is the request batcher of the serving
// layer — N concurrent /v1/score calls for the same netlist cost one
// netlist parse, one SCOAP analysis and one SpMM forward call, not N.
//
// It is a hand-rolled single-flight (the repository is stdlib-only);
// unlike typical implementations the wait is deadline-aware: a rider
// whose context expires stops waiting and reports the deadline error
// while the leader's work continues for the benefit of the others.
type flightGroup struct {
	mu    sync.Mutex
	calls map[string]*flightCall
}

// flightCall is one in-flight execution and its eventual result.
// leaderID is the leader's request id, set before the call is published
// in the calls map (so immutable once riders can see it); riders record
// it as their batch.leader annotation — the phase breakdown of the work
// a rider waited on lives in the leader's trace under that id.
type flightCall struct {
	done     chan struct{}
	leaderID string
	val      *design
	err      error
}

func newFlightGroup() *flightGroup {
	return &flightGroup{calls: map[string]*flightCall{}}
}

// do executes fn once per key among concurrent callers. The first caller
// (the leader) runs fn synchronously; concurrent callers with the same
// key (riders) block until the leader finishes or their context expires.
// The boolean result reports whether this caller was the leader.
func (g *flightGroup) do(ctx context.Context, key string, fn func() (*design, error)) (*design, bool, error) {
	g.mu.Lock()
	if c, ok := g.calls[key]; ok {
		g.mu.Unlock()
		mBatchCoalesced.Inc()
		tr := obs.RequestFromContext(ctx)
		tr.Annotate("batch.role", "rider")
		if c.leaderID != "" {
			tr.Annotate("batch.leader", c.leaderID)
		}
		ph := tr.StartPhase("batch_wait")
		select {
		case <-c.done:
			ph.End()
			return c.val, false, c.err
		case <-ctx.Done():
			ph.End()
			mDeadline.Inc()
			return nil, false, ctx.Err()
		}
	}
	tr := obs.RequestFromContext(ctx)
	c := &flightCall{done: make(chan struct{}), leaderID: tr.ID()}
	g.calls[key] = c
	g.mu.Unlock()

	tr.Annotate("batch.role", "leader")
	mBatchLeaders.Inc()
	func() {
		defer func() {
			if r := recover(); r != nil {
				c.err = fmt.Errorf("serve: compile panic: %v", r)
			}
			g.mu.Lock()
			delete(g.calls, key)
			g.mu.Unlock()
			close(c.done)
		}()
		c.val, c.err = fn()
	}()
	return c.val, true, c.err
}
