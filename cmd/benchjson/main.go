// Command benchjson runs the repository's tier-1 benchmarks in-process
// (via testing.Benchmark) and writes the results as a BENCH_NNNN.json
// artifact — the machine-readable performance trajectory this repository
// tracks PR over PR. Committing one file per recorded run lets any
// future change tell a measured before/after story; see
// docs/OBSERVABILITY.md for the schema and workflow.
//
// Usage:
//
//	benchjson [-out FILE] [-dir DIR] [-bench REGEXP] [-counters]
//
// With no -out, the next free BENCH_NNNN.json number in -dir (default
// ".") is chosen. -bench filters benchmarks by name. -count (default 3)
// samples each benchmark several times and records the fastest run, so
// scheduler-steal spikes on shared machines don't land in the artifact.
// -counters enables the internal/obs instrumentation during the run and
// embeds the counter snapshot (e.g. spmm.rows, faultsim.batches) in the
// artifact.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http/httptest"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/circuitgen"
	"repro/internal/coarsen"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/fault"
	"repro/internal/netlist"
	"repro/internal/obs"
	"repro/internal/opi"
	"repro/internal/partition"
	"repro/internal/scoap"
	"repro/internal/serve"
	"repro/internal/sparse"
	"repro/internal/tensor"
)

// BenchResult is one benchmark's measurement in the artifact.
type BenchResult struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	Seconds     float64 `json:"seconds_total"`
	// GOMAXPROCS at measurement time. The parallel kernels and the
	// latency-histogram-affecting serving benchmarks scale with it, so
	// each result records the value it actually ran under (the header
	// value only describes process start).
	GOMAXPROCS int `json:"gomaxprocs"`
	// Workers is the worker-pool size the benchmark ran under. Entries
	// in the multi-core matrix (the /workers=… variants) record the
	// sharded-executor pool size, with the "numcpu" variant resolving
	// runtime.NumCPU(); every other benchmark records GOMAXPROCS at
	// measurement time — the effective parallelism of its kernels — so
	// artifacts from different machines stay self-describing for all
	// results, not just the matrix.
	Workers int `json:"workers"`
}

// BenchFile is the serialized artifact: environment identification plus
// one entry per benchmark, and optionally the obs counter snapshot.
type BenchFile struct {
	SchemaVersion int              `json:"schema_version"`
	Name          string           `json:"name"`
	CreatedAt     string           `json:"created_at"`
	GoVersion     string           `json:"go_version"`
	GOOS          string           `json:"goos"`
	GOARCH        string           `json:"goarch"`
	NumCPU        int              `json:"num_cpu"`
	GOMAXPROCS    int              `json:"gomaxprocs"`
	GitDescribe   string           `json:"git_describe,omitempty"`
	Benchmarks    []BenchResult    `json:"benchmarks"`
	Counters      map[string]int64 `json:"counters,omitempty"`
}

// tier1 lists the benchmark bodies mirroring the repository-level
// bench_test.go tier-1 targets, at the same quick scales. Training-heavy
// table/figure regenerations (fig8, table2, table3) are deliberately
// excluded from the default artifact: their runtime is dominated by the
// same SpMM/fault-sim kernels measured here and would make each recorded
// run minutes long.
//
// Entries with parallel=true are the multi-core matrix: they run once
// per -workers token as Name/workers=T, with the pool size recorded in
// the result's workers field. samples, when non-zero, overrides -count —
// the paper-scale benchmarks take tens of seconds per iteration, so one
// sample keeps a recording session under ten minutes.
var tier1 = []struct {
	name     string
	fn       func(b *testing.B, workers int)
	parallel bool
	samples  int
}{
	{name: "Table1DatasetGeneration", fn: ignoreWorkers(benchTable1)},
	{name: "Fig10MatrixInference", fn: ignoreWorkers(benchMatrixInference)},
	{name: "Fig10MatrixInferenceF32", fn: ignoreWorkers(benchMatrixInferenceF32)},
	{name: "Fig10RecursiveInference", fn: ignoreWorkers(benchRecursiveInference)},
	{name: "Fig10ShardedForward", fn: benchShardedForward, parallel: true},
	{name: "PaperScaleForward", fn: ignoreWorkers(benchPaperScaleForward), samples: 1},
	{name: "PaperScaleShardedForward", fn: benchPaperScaleSharded, parallel: true, samples: 1},
	{name: "AblationCSRMul", fn: ignoreWorkers(benchCSRMul)},
	{name: "AblationCSRMul32", fn: ignoreWorkers(benchCSRMul32)},
	{name: "AblationSpMMParallel", fn: ignoreWorkers(benchSpMMParallel)},
	{name: "AblationSpMM50k", fn: benchSpMM50k, parallel: true},
	{name: "AblationIncrementalSCOAP", fn: ignoreWorkers(benchIncrementalSCOAP)},
	{name: "AblationFaultSimulation", fn: ignoreWorkers(benchFaultSimulation)},
	{name: "OPIFlowFull", fn: ignoreWorkers(benchOPIFlowFull)},
	{name: "OPIFlowIncremental", fn: ignoreWorkers(benchOPIFlowIncremental)},
	{name: "OPIFlowCoarseRefine", fn: ignoreWorkers(benchOPIFlowCoarseRefine)},
	{name: "CoarsenBuild", fn: ignoreWorkers(benchCoarsenBuild)},
	{name: "CoarsenFineForward", fn: ignoreWorkers(benchCoarsenFineForward)},
	{name: "CoarsenCoarseForward", fn: ignoreWorkers(benchCoarsenCoarseForward)},
	{name: "ServeScoreBatched", fn: ignoreWorkers(benchServeScoreBatched)},
	{name: "ServeScoreSerial", fn: ignoreWorkers(benchServeScoreSerial)},
	{name: "ObsHistogramObserve", fn: ignoreWorkers(benchObsHistogramObserve)},
}

// ignoreWorkers adapts a workers-independent benchmark body to the table
// signature.
func ignoreWorkers(fn func(*testing.B)) func(*testing.B, int) {
	return func(b *testing.B, _ int) { fn(b) }
}

// workerVariant is one point of the multi-core matrix: the label used in
// the benchmark name and the pool size passed to the sharded executor
// (0 = let the pool pick GOMAXPROCS).
type workerVariant struct {
	label string
	n     int
}

// parseWorkers turns the -workers flag ("1,4,0") into matrix points.
// Token 0 means "all cores" and is labeled numcpu so artifact names stay
// stable across machines while the workers field records the resolved
// count.
func parseWorkers(spec string) ([]workerVariant, error) {
	var out []workerVariant
	for _, tok := range strings.Split(spec, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		n, err := strconv.Atoi(tok)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("bad -workers token %q", tok)
		}
		label := tok
		if n == 0 {
			label = "numcpu"
		}
		out = append(out, workerVariant{label: label, n: n})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-workers is empty")
	}
	return out, nil
}

func main() {
	out := flag.String("out", "", "output path (default: next free BENCH_NNNN.json in -dir)")
	dir := flag.String("dir", ".", "directory scanned for existing BENCH_NNNN.json files")
	pattern := flag.String("bench", "", "regexp filtering benchmark names (default: all)")
	count := flag.Int("count", 3, "samples per benchmark; the fastest is recorded")
	counters := flag.Bool("counters", true, "enable internal/obs and embed the counter snapshot")
	workersSpec := flag.String("workers", "1,4,0", "comma-separated worker-pool sizes for the sharded matrix (0 = all cores)")
	version := flag.Bool("version", false, "print the build's git revision and exit")
	flag.Parse()
	if *version {
		fmt.Println("benchjson", revision())
		return
	}

	var filter *regexp.Regexp
	if *pattern != "" {
		var err error
		if filter, err = regexp.Compile(*pattern); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson: bad -bench regexp:", err)
			os.Exit(2)
		}
	}
	matrix, err := parseWorkers(*workersSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(2)
	}

	if *counters {
		obs.Reset()
		obs.Enable()
		// Spans would add ReadMemStats pauses inside timed regions; the
		// artifact wants counters only.
		obs.SetAllocSampling(false)
	}

	file := &BenchFile{
		SchemaVersion: 1,
		Name:          "tier1-bench",
		CreatedAt:     time.Now().UTC().Format(time.RFC3339),
		GoVersion:     runtime.Version(),
		GOOS:          runtime.GOOS,
		GOARCH:        runtime.GOARCH,
		NumCPU:        runtime.NumCPU(),
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		GitDescribe:   obs.GitDescribe(),
	}

	for _, bm := range tier1 {
		// Non-matrix benchmarks run once; matrix benchmarks run once per
		// -workers token under a /workers=T name.
		variants := []workerVariant{{}}
		if bm.parallel {
			variants = matrix
		}
		for _, wv := range variants {
			name := bm.name
			recordedWorkers := runtime.GOMAXPROCS(0)
			if bm.parallel {
				name = fmt.Sprintf("%s/workers=%s", bm.name, wv.label)
				recordedWorkers = wv.n
				if recordedWorkers == 0 {
					recordedWorkers = runtime.NumCPU()
				}
			}
			if filter != nil && !filter.MatchString(name) {
				continue
			}
			samples := *count
			if bm.samples > 0 {
				samples = bm.samples
			}
			// Matrix variants with an explicit pool size raise GOMAXPROCS to
			// that size for the duration of the measurement (restored after).
			// Without this, a cgroup-limited recording host would run every
			// matrix point under GOMAXPROCS=1 — the worker goroutines would
			// exist but never run simultaneously — and the artifact's
			// per-result gomaxprocs field could not distinguish a genuine
			// single-core recording from a mislabeled multi-core one.
			restoreProcs := -1
			if bm.parallel && wv.n > 1 {
				restoreProcs = runtime.GOMAXPROCS(wv.n)
			}
			fmt.Fprintf(os.Stderr, "running %-40s ", name)
			// Sample several times and keep the fastest run. On a shared
			// container, scheduler steal inflates individual samples by tens
			// of percent; the minimum is the robust estimator of the code's
			// actual cost (a real regression slows every sample, a steal
			// spike only some), so recorded artifacts stay comparable across
			// noisy recording sessions.
			var res BenchResult
			for k := 0; k < samples; k++ {
				r := testing.Benchmark(func(b *testing.B) { bm.fn(b, wv.n) })
				sample := BenchResult{
					Name:        name,
					Iterations:  r.N,
					NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
					AllocsPerOp: r.AllocsPerOp(),
					BytesPerOp:  r.AllocedBytesPerOp(),
					Seconds:     r.T.Seconds(),
					GOMAXPROCS:  runtime.GOMAXPROCS(0),
					Workers:     recordedWorkers,
				}
				if k == 0 || sample.NsPerOp < res.NsPerOp {
					res = sample
				}
			}
			if restoreProcs > 0 {
				runtime.GOMAXPROCS(restoreProcs)
			}
			fmt.Fprintf(os.Stderr, "%12.0f ns/op  %d iters  (best of %d)\n", res.NsPerOp, res.Iterations, samples)
			file.Benchmarks = append(file.Benchmarks, res)
		}
	}
	if len(file.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmarks matched")
		os.Exit(1)
	}

	if *counters {
		file.Counters = obs.TakeSnapshot().Counters
	}

	path := *out
	if path == "" {
		var err error
		if path, err = nextBenchPath(*dir); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
	}
	b, err := json.MarshalIndent(file, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(path, append(b, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%d benchmarks)\n", path, len(file.Benchmarks))
}

// nextBenchPath returns dir/BENCH_NNNN.json for the smallest NNNN not
// yet taken (starting at 0001).
func nextBenchPath(dir string) (string, error) {
	existing, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return "", err
	}
	max := 0
	for _, p := range existing {
		var n int
		if _, err := fmt.Sscanf(filepath.Base(p), "BENCH_%d.json", &n); err == nil && n > max {
			max = n
		}
	}
	return filepath.Join(dir, fmt.Sprintf("BENCH_%04d.json", max+1)), nil
}

// --- benchmark bodies (quick scales matching bench_test.go) -----------

func benchTable1(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		experiments.Table1(experiments.Config{Quick: true, Seed: int64(100 + i)})
	}
}

// fig10Setup builds the Figure 10 mid-size point shared by the two
// inference benchmarks.
func fig10Setup(seed int64) (*core.Graph, *core.Model) {
	n := circuitgen.Generate("f10", circuitgen.Config{Seed: seed, NumGates: 20000})
	g := core.FromNetlist(n, scoap.Compute(n))
	m := core.MustNewModel(core.DefaultConfig())
	return g, m
}

func benchMatrixInference(b *testing.B) {
	g, m := fig10Setup(1)
	m.Forward(g) // build CSR once
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Forward(g)
	}
}

// benchMatrixInferenceF32 is the float32 twin of Fig10MatrixInference:
// the same 20k-gate design scored through the narrowed-weights forward
// path (core.Float32Inferencer). The delta between the pair is the
// artifact's record of what precision narrowing buys on this host.
func benchMatrixInferenceF32(b *testing.B) {
	g, m := fig10Setup(1)
	m.SetFloat32Inference(true)
	m.PredictProbs(g) // build CSR + narrowed weights once
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.PredictProbs(g)
	}
}

func benchRecursiveInference(b *testing.B) {
	g, m := fig10Setup(1)
	rng := rand.New(rand.NewSource(2))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.InferNodeRecursive(g, int32(rng.Intn(g.N)))
	}
}

// benchShardedForward is the mid-size sharded-executor point of the
// multi-core matrix: the Figure 10 design scored through 8 level-band
// shards with the given worker-pool size. Output is bit-identical to
// Fig10MatrixInference, so the delta between them is pure partitioning
// cost/benefit at each pool size.
func benchShardedForward(b *testing.B, workers int) {
	g, m := fig10Setup(1)
	sp, err := partition.NewSharded(m, partition.Options{K: 8, Workers: workers})
	if err != nil {
		b.Fatal(err)
	}
	defer sp.Close()
	sp.PredictProbs(g) // compile the partition once
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp.PredictProbs(g)
	}
}

// paperScale lazily builds the ≥1M-cell instance shared by the
// paper-scale pair: generation plus SCOAP takes tens of seconds and must
// be paid once per recording session, not per matrix point.
var paperScale struct {
	once sync.Once
	g    *core.Graph
	m    *core.Model
}

func paperScaleSetup() (*core.Graph, *core.Model) {
	paperScale.once.Do(func() {
		fmt.Fprintf(os.Stderr, "(building paper-scale instance) ")
		n := circuitgen.Generate("m1", circuitgen.PaperScale(1))
		paperScale.g = core.FromNetlist(n, scoap.Compute(n))
		paperScale.m = core.MustNewModel(core.DefaultConfig())
	})
	return paperScale.g, paperScale.m
}

// benchPaperScaleForward: whole-graph matrix inference at the paper's
// largest reported scale (Table 1 / the right edge of Figure 10).
func benchPaperScaleForward(b *testing.B) {
	g, m := paperScaleSetup()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Forward(g)
	}
}

// benchPaperScaleSharded: the same ≥1M-cell forward through the sharded
// executor at each matrix pool size.
func benchPaperScaleSharded(b *testing.B, workers int) {
	g, m := paperScaleSetup()
	sp, err := partition.NewSharded(m, partition.Options{K: 8, Workers: workers})
	if err != nil {
		b.Fatal(err)
	}
	defer sp.Close()
	sp.PredictProbs(g)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp.PredictProbs(g)
	}
}

func benchCSRMul(b *testing.B) {
	n := circuitgen.Generate("ab1", circuitgen.Config{Seed: 3, NumGates: 20000})
	g := core.FromNetlist(n, scoap.Compute(n))
	x := tensor.NewDense(g.N, 32)
	rng := rand.New(rand.NewSource(1))
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	dst := tensor.NewDense(g.N, 32)
	csr := g.Pred()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		csr.MulDense(dst, x)
	}
}

func benchSpMMParallel(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	coo := sparse.NewCOO(100000, 100000)
	for i := 0; i < 300000; i++ {
		coo.Append(int32(rng.Intn(100000)), int32(rng.Intn(100000)), 1)
	}
	csr := coo.ToCSR()
	x := tensor.NewDense(100000, 16)
	dst := tensor.NewDense(100000, 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		csr.MulDenseParallel(dst, x, 0)
	}
}

// benchCSRMul32 is the float32 twin of AblationCSRMul: the same
// 20k-gate adjacency times a dense block, through the f32 SpMM kernel.
func benchCSRMul32(b *testing.B) {
	n := circuitgen.Generate("ab1", circuitgen.Config{Seed: 3, NumGates: 20000})
	g := core.FromNetlist(n, scoap.Compute(n))
	x := tensor.NewDense32(g.N, 32)
	rng := rand.New(rand.NewSource(1))
	for i := range x.Data {
		x.Data[i] = float32(rng.NormFloat64())
	}
	dst := tensor.NewDense32(g.N, 32)
	csr := g.Pred()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		csr.MulDense32(dst, x)
	}
}

// benchSpMM50k is the nnz-balanced parallel SpMM matrix point: the
// 50k-gate OPI fixture's adjacency times a 32-column block at each
// worker-pool size. Note MulDenseParallel clamps its workers to
// min(GOMAXPROCS, NumCPU), so on hosts with fewer cores than the matrix
// asks for, higher-worker rows measure the (honest) clamped execution.
func benchSpMM50k(b *testing.B, workers int) {
	opiBenchSetup()
	csr := opiBench.g.Pred()
	x := tensor.NewDense(opiBench.g.N, 32)
	rng := rand.New(rand.NewSource(7))
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	dst := tensor.NewDense(opiBench.g.N, 32)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		csr.MulDenseParallel(dst, x, workers)
	}
}

func benchIncrementalSCOAP(b *testing.B) {
	n := circuitgen.Generate("ab2", circuitgen.Config{Seed: 4, NumGates: 20000})
	m := scoap.Compute(n)
	op, err := n.InsertObservationPoint(int32(n.NumGates() / 3))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.UpdateAfterObservationPoint(n, op)
	}
}

// opiBench lazily builds the circuitgen.OPIBench workload shared by
// the insertion-flow and coarsening benchmarks, mirroring
// bench_test.go's cached setup.
var opiBench struct {
	once  sync.Once
	n     *netlist.Netlist
	meas  *scoap.Measures
	g     *core.Graph
	model *core.Model
	thr   float64
}

func opiBenchSetup() {
	opiBench.once.Do(func() {
		n := circuitgen.Generate("opif", circuitgen.OPIBench(0))
		meas := scoap.Compute(n)
		g := core.FromNetlist(n, meas)
		model := core.MustNewModel(core.DefaultConfig())
		probs := append([]float64(nil), model.PredictProbs(g)...)
		sort.Float64s(probs)
		opiBench.n, opiBench.meas, opiBench.g, opiBench.model = n, meas, g, model
		opiBench.thr = probs[int(0.995*float64(len(probs)-1))]
	})
}

// opiFlowBench mirrors the bench_test.go full-vs-incremental insertion
// flow pair: identical predict→rank→insert work on the same design, with
// only the inference strategy differing.
func opiFlowBench(b *testing.B, disableIncremental bool) {
	opiBenchSetup()
	cfg := opi.FlowConfig{
		Threshold:          opiBench.thr,
		PerIteration:       2,
		MaxIterations:      16,
		DisableIncremental: disableIncremental,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		fn, fm, fg := opiBench.n.Clone(), opiBench.meas.Clone(), opiBench.g.Clone()
		b.StartTimer()
		opi.RunFlow(fn, fm, fg, opiBench.model, cfg)
	}
}

func benchOPIFlowFull(b *testing.B) { opiFlowBench(b, true) }

func benchOPIFlowIncremental(b *testing.B) { opiFlowBench(b, false) }

// benchOPIFlowCoarseRefine mirrors BenchmarkOPIFlowCoarseRefine: the
// coarse-then-refine flow on the identical workload and schedule, with
// the threshold percentile taken over the coarse score distribution.
func benchOPIFlowCoarseRefine(b *testing.B) {
	opiBenchSetup()
	copt := coarsen.Options{Strategy: coarsen.FFR, Ratio: 0.25}
	c, err := coarsen.New(opiBench.n, copt)
	if err != nil {
		b.Fatal(err)
	}
	probs := append([]float64(nil), opiBench.model.PredictProbs(c.ProjectGraph(opiBench.g))...)
	sort.Float64s(probs)
	cfg := opi.CoarseRefineConfig{
		Coarsen: copt,
		Flow: opi.FlowConfig{
			Threshold:     probs[int(0.995*float64(len(probs)-1))],
			PerIteration:  2,
			MaxIterations: 16,
		},
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		fn, fm, fg := opiBench.n.Clone(), opiBench.meas.Clone(), opiBench.g.Clone()
		b.StartTimer()
		if _, err := opi.RunCoarseRefine(fn, fm, fg, opiBench.model, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// benchCoarsenBuild is the one-time clustering cost on the 50k design.
func benchCoarsenBuild(b *testing.B) {
	opiBenchSetup()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := coarsen.New(opiBench.n, coarsen.Options{Strategy: coarsen.FFR, Ratio: 0.25}); err != nil {
			b.Fatal(err)
		}
	}
}

// benchCoarsenCoarseForward is one forward pass on the FFR-0.25
// projection of the 50k design; compare with CoarsenFineForward for
// the per-inference saving.
func benchCoarsenCoarseForward(b *testing.B) {
	opiBenchSetup()
	c, err := coarsen.New(opiBench.n, coarsen.Options{Strategy: coarsen.FFR, Ratio: 0.25})
	if err != nil {
		b.Fatal(err)
	}
	cg := c.ProjectGraph(opiBench.g)
	opiBench.model.Forward(cg)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opiBench.model.Forward(cg)
	}
}

func benchCoarsenFineForward(b *testing.B) {
	opiBenchSetup()
	opiBench.model.Forward(opiBench.g)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opiBench.model.Forward(opiBench.g)
	}
}

func benchFaultSimulation(b *testing.B) {
	n := circuitgen.Generate("ab3", circuitgen.Config{Seed: 5, NumGates: 50000})
	sim := fault.NewSimulator(n)
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Batch(rng)
	}
}

// serveScoreBench mirrors the repository-level serving benchmark pair:
// one burst of 6 concurrent /v1/score requests per iteration for a
// previously-unseen 30k-gate design (a unique leading comment defeats
// the cache across iterations). Batched coalesces the burst into one
// compile; serial pays one per request.
func serveScoreBench(b *testing.B, batched bool) {
	const fanout = 6
	n := circuitgen.Generate("srv", circuitgen.Config{Seed: 11, NumGates: 30000})
	var buf bytes.Buffer
	if err := netlist.Write(&buf, n); err != nil {
		b.Fatal(err)
	}
	base := buf.String()

	opts := serve.Options{
		Predictor:     core.MustNewModel(core.DefaultConfig()),
		MaxConcurrent: fanout,
		MaxQueue:      fanout,
		CacheEntries:  2,
	}
	if !batched {
		opts.DisableBatching = true
		opts.CacheEntries = -1
	}
	srv, err := serve.New(opts)
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := ts.Client()

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		body, err := json.Marshal(serve.ScoreRequest{Netlist: fmt.Sprintf("# iter%d\n%s", i, base)})
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		var wg sync.WaitGroup
		errs := make(chan error, fanout)
		for r := 0; r < fanout; r++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				resp, err := client.Post(ts.URL+"/v1/score", "application/json", bytes.NewReader(body))
				if err != nil {
					errs <- err
					return
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != 200 {
					errs <- fmt.Errorf("status %d", resp.StatusCode)
				}
			}()
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			b.Fatal(err)
		}
	}
}

func benchServeScoreBatched(b *testing.B) { serveScoreBench(b, true) }

func benchServeScoreSerial(b *testing.B) { serveScoreBench(b, false) }

// benchObsHistogramObserve measures the quantile sketch's hot path: one
// enabled Observe including the log-linear bucket-index computation that
// /snapshot p50/p95/p99 and the /metrics buckets are derived from. Every
// serving latency sample pays this cost.
func benchObsHistogramObserve(b *testing.B) {
	wasEnabled := obs.Enabled()
	obs.Enable()
	h := obs.GetHistogram("bench.quantile_sketch")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe((int64(i) * 2654435761) & (1<<30 - 1))
	}
	b.StopTimer()
	if !wasEnabled {
		obs.Disable()
	}
}

// revision is the -version payload: `git describe --always --dirty`
// when the binary runs inside the repository, "unknown" otherwise.
func revision() string {
	if r := obs.GitDescribe(); r != "" {
		return r
	}
	return "unknown"
}
