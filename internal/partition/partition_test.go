package partition

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/circuitgen"
	"repro/internal/core"
	"repro/internal/scoap"
)

func genGraph(tb testing.TB, cfg circuitgen.Config) *core.Graph {
	tb.Helper()
	n := circuitgen.Generate("part_test", cfg)
	return core.FromNetlist(n, scoap.Compute(n))
}

func testConfigs() []circuitgen.Config {
	return []circuitgen.Config{
		{Seed: 1, NumGates: 120, NumPIs: 8, Layers: 6, MaxFanin: 3, XorFrac: 0.2},
		{Seed: 2, NumGates: 300, NumPIs: 12, Layers: 10, MaxFanin: 4, DFFFrac: 0.2, LongRangeProb: 0.15},
		{Seed: 3, NumGates: 60, NumPIs: 6, Layers: 3, MaxFanin: 2, ShadowFunnels: 2, ShadowDepth: 2},
	}
}

// TestPartitionInvariants checks the partitioner's contract over both
// strategies and a spread of K and halo depths: Validate's invariants
// hold, and — independently of Validate's closure logic — every
// interior node's full halo-hop undirected neighborhood (which
// contains its D-hop fan-in) lies inside interior∪rings.
func TestPartitionInvariants(t *testing.T) {
	for _, cfg := range testConfigs() {
		g := genGraph(t, cfg)
		for _, strat := range []Strategy{LevelBand, FanoutCone} {
			for _, k := range []int{1, 2, 4, 8, 64} {
				for _, halo := range []int{0, 1, 3} {
					p, err := New(g, Options{K: k, Halo: halo, Strategy: strat})
					if err != nil {
						t.Fatalf("New(%v, K=%d, halo=%d): %v", strat, k, halo, err)
					}
					if err := p.Validate(g); err != nil {
						t.Fatalf("Validate(%v, K=%d, halo=%d): %v", strat, k, halo, err)
					}
					checkReceptiveField(t, g, p)
				}
			}
		}
	}
}

// checkReceptiveField runs an independent bounded BFS (plain map-based,
// sharing no code with the package's ring construction) from a sample
// of interior nodes and asserts everything within halo hops is a shard
// member.
func checkReceptiveField(t *testing.T, g *core.Graph, p *Partition) {
	t.Helper()
	for k, sh := range p.Shards {
		member := make(map[int32]bool, len(sh.Interior)+sh.HaloSize())
		for _, v := range sh.Interior {
			member[v] = true
		}
		for _, ring := range sh.Rings {
			for _, v := range ring {
				member[v] = true
			}
		}
		step := 1 + len(sh.Interior)/16 // sample ~16 seeds per shard
		for i := 0; i < len(sh.Interior); i += step {
			seen := map[int32]bool{sh.Interior[i]: true}
			frontier := []int32{sh.Interior[i]}
			for hop := 0; hop < p.Halo; hop++ {
				var next []int32
				for _, v := range frontier {
					for _, u := range append(append([]int32{}, g.PredList(v)...), g.SuccList(v)...) {
						if !seen[u] {
							seen[u] = true
							next = append(next, u)
						}
					}
				}
				frontier = next
			}
			for v := range seen {
				if !member[v] {
					t.Fatalf("shard %d: node %d within %d hops of interior %d not in interior∪rings",
						k, v, p.Halo, sh.Interior[i])
				}
			}
		}
	}
}

func TestPartitionDeterministic(t *testing.T) {
	g := genGraph(t, testConfigs()[1])
	for _, strat := range []Strategy{LevelBand, FanoutCone} {
		a, err := New(g, Options{K: 4, Halo: 3, Strategy: strat})
		if err != nil {
			t.Fatal(err)
		}
		b, err := New(g, Options{K: 4, Halo: 3, Strategy: strat})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("%v: two builds over the same graph differ", strat)
		}
	}
}

// TestLevelBandBalance: LevelBand promises equal-count bands (sizes
// differing by at most one).
func TestLevelBandBalance(t *testing.T) {
	g := genGraph(t, testConfigs()[0])
	p, err := New(g, Options{K: 7, Halo: 1})
	if err != nil {
		t.Fatal(err)
	}
	min, max := g.N, 0
	for _, sh := range p.Shards {
		if len(sh.Interior) < min {
			min = len(sh.Interior)
		}
		if len(sh.Interior) > max {
			max = len(sh.Interior)
		}
	}
	if max-min > 1 {
		t.Fatalf("level-band interiors unbalanced: min %d max %d", min, max)
	}
}

func TestPartitionDegenerateShapes(t *testing.T) {
	// K greater than the node count: empty interiors must be legal and
	// carry empty rings.
	g := genGraph(t, circuitgen.Config{Seed: 9, NumGates: 12, NumPIs: 4, Layers: 2, MaxFanin: 2})
	p, err := New(g, Options{K: 40, Halo: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(g); err != nil {
		t.Fatal(err)
	}
	empties := 0
	for _, sh := range p.Shards {
		if len(sh.Interior) == 0 {
			empties++
			if sh.HaloSize() != 0 {
				t.Fatalf("empty interior with %d halo nodes", sh.HaloSize())
			}
		}
	}
	if empties == 0 {
		t.Fatalf("expected empty shards with K=40 over %d nodes", g.N)
	}

	// A graph with no edges at all (disconnected single-node
	// components): rings are empty everywhere, cover still holds.
	iso := core.NewGraph(5)
	p, err = New(iso, Options{K: 3, Halo: 2, Strategy: FanoutCone})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(iso); err != nil {
		t.Fatal(err)
	}
	for _, sh := range p.Shards {
		if sh.HaloSize() != 0 {
			t.Fatalf("edgeless graph grew a halo")
		}
	}
}

func TestPartitionOptionErrors(t *testing.T) {
	g := genGraph(t, testConfigs()[2])
	cases := []Options{
		{K: 0},
		{K: -2},
		{K: 2, Halo: -1},
		{K: 2, Strategy: Strategy(99)},
		{K: 2, Mode: Mode(99)},
	}
	for _, opt := range cases {
		if _, err := New(g, opt); err == nil {
			t.Fatalf("New(%+v) accepted invalid options", opt)
		}
	}
	if _, err := New(nil, Options{K: 2}); err == nil {
		t.Fatal("New(nil graph) succeeded")
	}
}

// TestPartitionRejectsNonTopological: graphs whose edges do not point
// from lower to higher ids (impossible through FromNetlist, possible
// through direct COO manipulation) are rejected, not mis-partitioned.
func TestPartitionRejectsNonTopological(t *testing.T) {
	g := core.NewGraph(3)
	g.PredCOO().Append(0, 2, 1) // node 0 "preceded by" node 2
	for _, strat := range []Strategy{LevelBand, FanoutCone} {
		if _, err := New(g, Options{K: 2, Strategy: strat}); err == nil {
			t.Fatalf("%v accepted a non-topological graph", strat)
		}
	}
}

// TestValidateDetectsCorruption drives Validate's failure branches:
// each corruption of a healthy partition must be reported.
func TestValidateDetectsCorruption(t *testing.T) {
	g := genGraph(t, testConfigs()[0])
	fresh := func() *Partition {
		p, err := New(g, Options{K: 3, Halo: 2})
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	corrupt := []struct {
		name string
		mut  func(p *Partition)
	}{
		{"owner mismatch", func(p *Partition) { p.Owner[p.Shards[0].Interior[0]] = 1 }},
		{"duplicate interior", func(p *Partition) {
			p.Shards[1].Interior = append([]int32{p.Shards[0].Interior[0]}, p.Shards[1].Interior...)
		}},
		{"unsorted interior", func(p *Partition) {
			in := p.Shards[0].Interior
			in[0], in[1] = in[1], in[0]
		}},
		{"dropped node", func(p *Partition) {
			sh := p.Shards[2]
			sh.Interior = sh.Interior[:len(sh.Interior)-1]
		}},
		{"ring count", func(p *Partition) { p.Shards[0].Rings = p.Shards[0].Rings[:1] }},
		{"ring reuses interior node", func(p *Partition) {
			p.Shards[0].Rings[0] = append([]int32(nil), p.Shards[0].Interior[0])
		}},
		{"missing ring node", func(p *Partition) {
			for _, sh := range p.Shards {
				if len(sh.Rings[0]) > 0 {
					sh.Rings[0] = sh.Rings[0][1:]
					return
				}
			}
			t.Fatal("no shard with a non-empty ring to corrupt")
		}},
		{"far node in near ring", func(p *Partition) {
			// Claim the entire node set is at distance 1: nodes beyond
			// distance 1 then lack a distance-0 neighbor.
			sh := p.Shards[0]
			have := map[int32]bool{}
			for _, v := range sh.Interior {
				have[v] = true
			}
			var all []int32
			for v := int32(0); int(v) < g.N; v++ {
				if !have[v] {
					all = append(all, v)
				}
			}
			sh.Rings = [][]int32{all, nil}
		}},
	}
	for _, c := range corrupt {
		p := fresh()
		c.mut(p)
		err := p.Validate(g)
		if err == nil {
			t.Fatalf("%s: Validate accepted the corrupted partition", c.name)
		}
		if !strings.Contains(err.Error(), "partition:") {
			t.Fatalf("%s: unexpected error text %q", c.name, err)
		}
	}
}

func TestStrategyModeStrings(t *testing.T) {
	for want, s := range map[string]interface{ String() string }{
		"level-band":  LevelBand,
		"fanout-cone": FanoutCone,
		"exchange":    Exchange,
		"one-shot":    OneShot,
		"strategy(7)": Strategy(7),
		"mode(9)":     Mode(9),
	} {
		if got := s.String(); got != want {
			t.Fatalf("String() = %q, want %q", got, want)
		}
	}
}
