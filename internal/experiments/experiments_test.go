package experiments

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

// quickCfg keeps the smoke tests fast; the statistical shape claims are
// validated by the full-size runs recorded in EXPERIMENTS.md, while these
// tests pin structure, determinism and sane ranges.
func quickCfg() Config { return Config{Quick: true, Seed: 42} }

func TestTable1Shape(t *testing.T) {
	res := Table1(quickCfg())
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, r := range res.Rows {
		if r.Nodes == 0 || r.Edges == 0 || r.POS == 0 {
			t.Errorf("%s: degenerate row %+v", r.Design, r)
		}
		if r.POS+r.NEG != r.Nodes {
			t.Errorf("%s: POS+NEG != Nodes", r.Design)
		}
		if float64(r.POS)/float64(r.Nodes) > 0.05 {
			t.Errorf("%s: positive rate too high: %+v", r.Design, r)
		}
	}
	var buf bytes.Buffer
	res.Fprint(&buf)
	if !strings.Contains(buf.String(), "B1") {
		t.Error("printout missing design names")
	}
}

func TestTable2Shape(t *testing.T) {
	res := Table2(quickCfg())
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, r := range res.Rows {
		for _, m := range res.Models {
			acc := r.Acc[m]
			if acc < 0 || acc > 1 {
				t.Errorf("%s/%s: accuracy %v out of range", r.Design, m, acc)
			}
		}
	}
	if res.Average["GCN"] < 0.55 {
		t.Errorf("GCN average accuracy %.3f — should beat chance comfortably", res.Average["GCN"])
	}
	var buf bytes.Buffer
	res.Fprint(&buf)
	if !strings.Contains(buf.String(), "Average") {
		t.Error("printout missing average row")
	}
}

func TestFig8Shape(t *testing.T) {
	res := Fig8(quickCfg())
	if len(res.Curves) != 3 {
		t.Fatalf("curves = %d", len(res.Curves))
	}
	for _, c := range res.Curves {
		if len(c.Epochs) == 0 || len(c.Epochs) != len(c.TrainAcc) || len(c.Epochs) != len(c.TestAcc) {
			t.Fatalf("D=%d: inconsistent series lengths", c.Depth)
		}
		for i := range c.TrainAcc {
			if c.TrainAcc[i] < 0 || c.TrainAcc[i] > 1 || c.TestAcc[i] < 0 || c.TestAcc[i] > 1 {
				t.Fatalf("D=%d: accuracy out of range", c.Depth)
			}
		}
	}
	var buf bytes.Buffer
	res.Fprint(&buf)
	if !strings.Contains(buf.String(), "D=3") {
		t.Error("printout missing depth curves")
	}
}

func TestFig9Shape(t *testing.T) {
	res := Fig9(quickCfg())
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	better := 0
	for _, r := range res.Rows {
		if r.SingleF1 < 0 || r.SingleF1 > 1 || r.MultiF1 < 0 || r.MultiF1 > 1 {
			t.Errorf("%s: F1 out of range: %+v", r.Design, r)
		}
		if r.MultiF1 >= r.SingleF1 {
			better++
		}
	}
	// The cascade should win on most designs even at smoke-test scale.
	if better < 2 {
		t.Errorf("multi-stage won only %d/4 designs", better)
	}
}

func TestFig10Shape(t *testing.T) {
	res := Fig10(quickCfg())
	if len(res.Points) != 3 {
		t.Fatalf("points = %d", len(res.Points))
	}
	for i, p := range res.Points {
		if p.MatrixSeconds <= 0 || p.RecursiveSeconds <= 0 {
			t.Fatalf("point %d: non-positive times %+v", i, p)
		}
		if p.Speedup < 1 {
			t.Errorf("matrix inference slower than recursion at %d nodes: %+v", p.Nodes, p)
		}
	}
	// Both schemes are linear in N; the figure's point is the large
	// constant factor between them, which must persist at every size.
	for _, p := range res.Points {
		if p.Speedup < 3 {
			t.Errorf("speedup at %d nodes only %.1fx", p.Nodes, p.Speedup)
		}
	}
}

func TestTable3Shape(t *testing.T) {
	res := Table3(quickCfg())
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, r := range res.Rows {
		for _, ev := range []float64{r.ToolSCOAP.Coverage, r.ToolSim.Coverage, r.GCNFlow.Coverage} {
			if ev <= 0 || ev > 1 {
				t.Errorf("%s: coverage out of range: %+v", r.Design, r)
			}
		}
	}
	if res.OPRatioSCOAP <= 0 || res.OPRatioSim <= 0 {
		t.Errorf("OP ratios %v / %v", res.OPRatioSCOAP, res.OPRatioSim)
	}
	var buf bytes.Buffer
	res.Fprint(&buf)
	if !strings.Contains(buf.String(), "ratios") {
		t.Error("printout missing ratio row")
	}
	t.Logf("quick Table 3: OP ratio vs SCOAP %.2f, vs sim %.2f; coverage %.4f / %.4f / %.4f",
		res.OPRatioSCOAP, res.OPRatioSim, res.CovSCOAP, res.CovSim, res.CovGCN)
}

func TestStageAblationShape(t *testing.T) {
	res := StageAblation(quickCfg(), 2)
	if len(res.Stages) != 2 || len(res.F1) != 2 {
		t.Fatalf("sweep shape: %+v", res)
	}
	for _, f1 := range res.F1 {
		if f1 < 0 || f1 > 1 {
			t.Fatalf("F1 out of range: %v", f1)
		}
	}
	var buf bytes.Buffer
	res.Fprint(&buf)
	if !strings.Contains(buf.String(), "stages") {
		t.Error("printout missing header")
	}
}

// printer is the common surface of every result type: all seven runners
// must produce a non-empty, schema-stable printable report.
type printer interface{ Fprint(w io.Writer) }

// tinyCfg is even smaller than Quick: just enough signal for structure
// and schema checks, so the table-driven sweep over every runner stays
// cheap next to the per-runner shape tests above.
func tinyCfg() Config {
	return Config{Quick: true, Size: 600, Patterns: 256, Epochs: 6, Seed: 7}
}

// TestAllRunnersSchema drives every experiment entry point through one
// tiny dataset and pins the output schema: each report is non-empty,
// multi-line, and carries its table/figure's header tokens. A renamed
// column or dropped row in any Fprint breaks this test, not a PDF diff.
func TestAllRunnersSchema(t *testing.T) {
	cfg := tinyCfg()
	cases := []struct {
		name   string
		run    func() printer
		tokens []string
	}{
		{"Table1", func() printer { return Table1(cfg) }, []string{"Design", "#Nodes", "#Edges", "#POS", "#NEG", "B1"}},
		{"Table2", func() printer { return Table2(cfg) }, []string{"Design", "GCN", "Average"}},
		{"Table3", func() printer { return Table3(cfg) }, []string{"Design", "ratios", "coverage"}},
		{"Fig8", func() printer { return Fig8(cfg) }, []string{"D=1", "D=2", "D=3", "epoch", "train_acc", "test_acc"}},
		{"Fig9", func() printer { return Fig9(cfg) }, []string{"Design", "GCN-S", "GCN-M"}},
		{"Fig10", func() printer { return Fig10(cfg) }, []string{"#nodes", "recursion (s)", "matrix (s)", "speedup"}},
		{"StageAblation", func() printer { return StageAblation(cfg, 2) }, []string{"stages", "F1"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var buf bytes.Buffer
			tc.run().Fprint(&buf)
			out := buf.String()
			if strings.TrimSpace(out) == "" {
				t.Fatal("empty report")
			}
			if lines := strings.Count(out, "\n"); lines < 2 {
				t.Fatalf("report has only %d lines:\n%s", lines, out)
			}
			for _, tok := range tc.tokens {
				if !strings.Contains(out, tok) {
					t.Errorf("report missing %q:\n%s", tok, out)
				}
			}
		})
	}
}

// TestRunnersDeterministic: the data-bearing runners must be pure
// functions of their Config — two runs, byte-identical reports. Fig10
// is excluded (it reports wall-clock timings).
func TestRunnersDeterministic(t *testing.T) {
	cfg := tinyCfg()
	runs := map[string]func() printer{
		"Table1": func() printer { return Table1(cfg) },
		"Fig9":   func() printer { return Fig9(cfg) },
	}
	for name, run := range runs {
		t.Run(name, func(t *testing.T) {
			var a, b bytes.Buffer
			run().Fprint(&a)
			run().Fprint(&b)
			if a.String() != b.String() {
				t.Fatalf("two runs differ:\n--- first\n%s\n--- second\n%s", a.String(), b.String())
			}
		})
	}
}
