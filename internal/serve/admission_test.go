package serve

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestAdmissionShedsBeyondQueue(t *testing.T) {
	a := newAdmission(1, 1)
	if err := a.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	// One waiter fits in the queue...
	waiting := make(chan error, 1)
	go func() { waiting <- a.acquire(context.Background()) }()
	waitUntil(t, 5*time.Second, func() bool { return a.queued.Load() == 1 })
	// ...and the next is shed immediately.
	if err := a.acquire(context.Background()); !errors.Is(err, errShed) {
		t.Fatalf("err=%v, want errShed", err)
	}
	a.release()
	if err := <-waiting; err != nil {
		t.Fatalf("queued acquire: %v", err)
	}
	a.release()
}

func TestAdmissionHonorsDeadlineInQueue(t *testing.T) {
	a := newAdmission(1, 4)
	if err := a.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := a.acquire(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err=%v, want deadline exceeded", err)
	}
	a.release()
}

func TestAdmissionInflightAccounting(t *testing.T) {
	a := newAdmission(2, 2)
	ctx := context.Background()
	a.acquire(ctx)
	a.acquire(ctx)
	if got := a.inflight.Load(); got != 2 {
		t.Fatalf("inflight=%d, want 2", got)
	}
	a.release()
	a.release()
	if got := a.inflight.Load(); got != 0 {
		t.Fatalf("inflight=%d, want 0", got)
	}
}
