package refcheck

import (
	"sort"
	"testing"

	"repro/internal/circuitgen"
	"repro/internal/core"
	"repro/internal/nn"
	"repro/internal/scoap"
)

// gradGraph builds a small labeled graph with a few masked nodes, so
// the gradient check exercises the loss-masking path too.
func gradGraph(seed int64, gates int) *core.Graph {
	n := circuitgen.Generate("g", circuitgen.Config{Seed: seed, NumGates: gates, NumPIs: 8})
	g := core.FromNetlist(n, scoap.Compute(n))
	vals := make([]float64, g.N)
	for id := 0; id < g.N; id++ {
		vals[id] = g.X.At(id, 3)
	}
	sorted := append([]float64(nil), vals...)
	sort.Float64s(sorted)
	threshold := sorted[int(0.9*float64(len(sorted)-1))]
	for id := 0; id < g.N; id++ {
		switch {
		case id%13 == 0:
			g.Labels[id] = -1 // masked out of the loss
		case vals[id] >= threshold:
			g.Labels[id] = 1
		default:
			g.Labels[id] = 0
		}
	}
	return g
}

// TestGradCheckAllLayers is the acceptance gate for backpropagation:
// every parameter tensor of the full-depth model — scalar aggregation
// weights, each encoder, each classifier layer — must match central
// finite differences within 1e-4 relative error.
func TestGradCheckAllLayers(t *testing.T) {
	g := gradGraph(3, 60)
	m := core.MustNewModel(core.Config{
		Dims: []int{6, 8, 8}, FCDims: []int{8, 6}, NumClasses: 2, Seed: 9,
	})
	reports := GradCheck(m, g, g.Labels, []float64{1, 3}, GradCheckOptions{Seed: 17})
	if len(reports) != len(m.Params()) {
		t.Fatalf("got %d reports for %d params", len(reports), len(m.Params()))
	}
	for _, r := range reports {
		if r.Checked == 0 {
			t.Errorf("%s: no entries checked", r.Name)
		}
		if r.MaxRel > 1e-4 {
			t.Errorf("%s: max relative gradient error %.3g > 1e-4", r.Name, r.MaxRel)
		}
		t.Logf("%-14s checked=%2d maxRel=%.3g", r.Name, r.Checked, r.MaxRel)
	}
}

// TestGradCheckDepthSweep repeats the check at every search depth the
// experiments sweep uses, with uniform class weights.
func TestGradCheckDepthSweep(t *testing.T) {
	for depth := 1; depth <= 3; depth++ {
		g := gradGraph(int64(20+depth), 50)
		dims := []int{5, 7, 9}[:depth]
		m := core.MustNewModel(core.Config{Dims: dims, FCDims: []int{6}, NumClasses: 2, Seed: int64(depth)})
		for _, r := range GradCheck(m, g, g.Labels, nil, GradCheckOptions{Seed: int64(depth), SamplePerParam: 12}) {
			if r.MaxRel > 1e-4 {
				t.Errorf("depth %d, %s: max relative gradient error %.3g > 1e-4", depth, r.Name, r.MaxRel)
			}
		}
	}
}

// TestGradCheckRestoresModel: the sweep must leave parameters bitwise
// intact and gradients zeroed.
func TestGradCheckRestoresModel(t *testing.T) {
	g := gradGraph(5, 40)
	m := core.MustNewModel(core.Config{Dims: []int{5}, FCDims: []int{5}, NumClasses: 2, Seed: 4})
	before := make([][]float64, 0)
	for _, p := range m.Params() {
		before = append(before, append([]float64(nil), p.Data...))
	}
	GradCheck(m, g, g.Labels, nil, GradCheckOptions{Seed: 2, SamplePerParam: 4})
	for i, p := range m.Params() {
		for j := range p.Data {
			if p.Data[j] != before[i][j] {
				t.Fatalf("%s[%d] perturbed: %v != %v", p.Name, j, p.Data[j], before[i][j])
			}
		}
		for j, gv := range p.Grad {
			if gv != 0 {
				t.Fatalf("%s.Grad[%d] = %v, want 0", p.Name, j, gv)
			}
		}
	}
}

// TestGradCheckAblatedDirectionsStayFrozen: the ablation contract is
// that the frozen scalar's analytic gradient is exactly zero, so the
// optimizer never moves it (the loss itself is NOT flat in that
// direction, which is why the numeric check does not apply to it).
func TestGradCheckAblatedDirectionsStayFrozen(t *testing.T) {
	g := gradGraph(6, 40)
	m := core.MustNewModel(core.Config{
		Dims: []int{5}, FCDims: []int{5}, NumClasses: 2, Seed: 4, NoPredecessors: true,
	})
	nn.ZeroGrads(m.Params())
	m.LossAndGrad(g, g.Labels, nil)
	if m.Wpr.Grad[0] != 0 {
		t.Fatalf("ablated Wpr gradient = %v, want 0", m.Wpr.Grad[0])
	}
	if m.Wsu.Grad[0] == 0 {
		t.Fatal("live Wsu gradient is exactly zero — suspicious")
	}
}
