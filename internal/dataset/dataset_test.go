package dataset

import (
	"testing"

	"repro/internal/netlist"
)

func TestGenerateSuiteShape(t *testing.T) {
	suite := GenerateSuite(SuiteConfig{NumGates: 2500, Patterns: 1024, Designs: 4, Seed: 1})
	if len(suite) != 4 {
		t.Fatalf("suite size = %d", len(suite))
	}
	seen := map[string]bool{}
	for _, b := range suite {
		if seen[b.Name] {
			t.Errorf("duplicate name %s", b.Name)
		}
		seen[b.Name] = true
		nodes, edges, pos, neg := b.Stats()
		if nodes == 0 || edges == 0 {
			t.Fatalf("%s: empty design", b.Name)
		}
		if pos == 0 {
			t.Errorf("%s: no positive labels", b.Name)
		}
		if pos+neg != nodes {
			t.Errorf("%s: pos+neg = %d != nodes %d", b.Name, pos+neg, nodes)
		}
		frac := float64(pos) / float64(nodes)
		if frac > 0.05 {
			t.Errorf("%s: positive fraction %.3f too high for the paper's regime", b.Name, frac)
		}
		if err := b.Netlist.Validate(); err != nil {
			t.Errorf("%s: %v", b.Name, err)
		}
		if b.Graph.N != nodes {
			t.Errorf("%s: graph/netlist size mismatch", b.Name)
		}
	}
}

func TestSuiteDesignsDiffer(t *testing.T) {
	suite := GenerateSuite(SuiteConfig{NumGates: 1500, Patterns: 512, Designs: 2, Seed: 5})
	if suite[0].Netlist.NumGates() == suite[1].Netlist.NumGates() &&
		suite[0].Netlist.NumEdges() == suite[1].Netlist.NumEdges() {
		t.Error("designs suspiciously identical in size")
	}
}

func TestBalancedLabels(t *testing.T) {
	suite := GenerateSuite(SuiteConfig{NumGates: 2500, Patterns: 1024, Designs: 1, Seed: 9})
	g := suite[0].Graph
	bal := BalancedLabels(g, 3)
	pos, neg := 0, 0
	for v, l := range bal {
		switch l {
		case 1:
			pos++
			if g.Labels[v] != 1 {
				t.Fatal("balanced set flipped a label")
			}
		case 0:
			neg++
			if g.Labels[v] != 0 {
				t.Fatal("balanced set flipped a label")
			}
		}
	}
	if pos == 0 || pos != neg {
		t.Errorf("balanced set pos=%d neg=%d, want equal and nonzero", pos, neg)
	}
	// Deterministic given seed.
	bal2 := BalancedLabels(g, 3)
	for i := range bal {
		if bal[i] != bal2[i] {
			t.Fatal("BalancedLabels not deterministic")
		}
	}
	// Different seed samples different negatives.
	bal3 := BalancedLabels(g, 4)
	same := true
	for i := range bal {
		if bal[i] != bal3[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical balanced sets")
	}
	nodes := LabeledNodes(bal)
	if len(nodes) != pos+neg {
		t.Errorf("LabeledNodes = %d, want %d", len(nodes), pos+neg)
	}
}

func TestLabelOnExistingNetlist(t *testing.T) {
	n := netlist.New("tiny")
	a := n.MustAddGate(netlist.Input, "a")
	b := n.MustAddGate(netlist.Input, "b")
	x := n.MustAddGate(netlist.And, "x", a, b)
	n.MustAddGate(netlist.Output, "po", x)
	bm := Label("tiny", n, 256, 0.01, 1)
	if bm.Graph.N != 4 {
		t.Fatalf("graph size %d", bm.Graph.N)
	}
	for _, l := range bm.Graph.Labels {
		if l != 0 {
			t.Error("fully observable circuit should have no positives")
		}
	}
}
