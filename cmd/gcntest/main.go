// Command gcntest is the end-user CLI of the reproduction: it generates
// benchmark netlists, analyzes testability, trains the multi-stage GCN,
// classifies difficult-to-observe nodes, runs the iterative observation
// point insertion flow, and evaluates fault coverage — the full paper
// pipeline over .bench files.
//
// Subcommands:
//
//	gcntest gen    -out design.bench [-gates N] [-seed N] [-funnels N]
//	gcntest stats  design.bench
//	gcntest label  design.bench [-patterns N] [-threshold F] [-seed N]
//	gcntest train  -out model.gob design1.bench design2.bench ...
//	gcntest infer  -model model.gob design.bench
//	gcntest insert -model model.gob -out modified.bench design.bench
//	gcntest eval   design.bench [-patterns N] [-atpg]
//	gcntest bist   design.bench [-patterns N] [-seed N]
//	gcntest cpinsert -out modified.bench design.bench [-epsilon F]
//
// Global flags (before the subcommand):
//
//	gcntest [-manifest out.json] [-trace out.json] [-pprof addr] <subcommand> ...
//
// -manifest enables the observability layer (internal/obs) and writes a
// run manifest when the subcommand finishes; -trace additionally
// records a Chrome Trace Event Format timeline (chrome://tracing /
// Perfetto); -pprof serves net/http/pprof plus the live /metrics
// (Prometheus text) and /snapshot (JSON) endpoints on the given
// address. See docs/OBSERVABILITY.md.
package main

import (
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"

	"repro/internal/bist"
	"repro/internal/circuitgen"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/fault"
	"repro/internal/netlist"
	"repro/internal/obs"
	"repro/internal/opi"
	"repro/internal/scoap"
)

func main() {
	manifest := flag.String("manifest", "", "enable instrumentation and write a run manifest JSON to this path")
	trace := flag.String("trace", "", "enable span tracing and write a Chrome Trace Event JSON to this path")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof, /metrics and /snapshot on this address (e.g. localhost:6060)")
	version := flag.Bool("version", false, "print the build's git revision and exit")
	flag.Usage = usage
	flag.Parse()
	if *version {
		fmt.Println("gcntest", revision())
		return
	}
	args := flag.Args()
	if len(args) < 1 {
		usage()
	}
	if *pprofAddr != "" {
		obs.RegisterHTTP(nil)
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "gcntest: pprof server:", err)
			}
		}()
	}
	if *manifest != "" || *trace != "" {
		obs.Enable()
	}
	if *trace != "" {
		obs.EnableTracing()
	}
	var err error
	switch args[0] {
	case "gen":
		err = cmdGen(args[1:])
	case "stats":
		err = cmdStats(args[1:])
	case "label":
		err = cmdLabel(args[1:])
	case "train":
		err = cmdTrain(args[1:])
	case "infer":
		err = cmdInfer(args[1:])
	case "insert":
		err = cmdInsert(args[1:])
	case "eval":
		err = cmdEval(args[1:])
	case "bist":
		err = cmdBist(args[1:])
	case "cpinsert":
		err = cmdCPInsert(args[1:])
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "gcntest:", err)
		os.Exit(1)
	}
	if *manifest != "" {
		if werr := obs.WriteManifest(*manifest, "gcntest/"+args[0], map[string]any{
			"subcommand": args[0], "args": args[1:],
		}); werr != nil {
			fmt.Fprintln(os.Stderr, "gcntest:", werr)
			os.Exit(1)
		}
		fmt.Printf("wrote run manifest to %s\n", *manifest)
	}
	if *trace != "" {
		if werr := obs.WriteTrace(*trace); werr != nil {
			fmt.Fprintln(os.Stderr, "gcntest:", werr)
			os.Exit(1)
		}
		fmt.Printf("wrote Chrome trace to %s\n", *trace)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: gcntest [-manifest out.json] [-trace out.json] [-pprof addr] <gen|stats|label|train|infer|insert|eval|bist|cpinsert> [flags] [files]`)
	os.Exit(2)
}

func cmdGen(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	out := fs.String("out", "design.bench", "output netlist path")
	gates := fs.Int("gates", 10000, "approximate logic size")
	seed := fs.Int64("seed", 1, "generator seed")
	funnels := fs.Int("funnels", 0, "shadow funnel count (0 = default)")
	fs.Parse(args)
	n := circuitgen.Generate("generated", circuitgen.Config{
		Seed: *seed, NumGates: *gates, ShadowFunnels: *funnels,
	})
	if err := netlist.WriteFile(*out, n); err != nil {
		return err
	}
	s := n.ComputeStats()
	fmt.Printf("wrote %s: %d gates, %d edges, %d PIs, %d POs, depth %d\n",
		*out, s.Gates, s.Edges, s.PIs, s.POs, s.Depth)
	return nil
}

func cmdStats(args []string) error {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("stats needs one netlist file")
	}
	n, err := netlist.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	s := n.ComputeStats()
	fmt.Printf("design  : %s\ngates   : %d\nedges   : %d\nPIs/POs : %d/%d\nDFFs    : %d\nOPs     : %d\ndepth   : %d\nsparsity: %.4f%%\n",
		n.Name, s.Gates, s.Edges, s.PIs, s.POs, s.DFFs, s.Obs, s.Depth, 100*s.Sparsity)
	m := scoap.Compute(n)
	var worst int32
	var worstCO int32 = -1
	for id := int32(0); id < int32(n.NumGates()); id++ {
		if co := m.CO[id]; co != scoap.Unobservable && co > worstCO {
			worst, worstCO = id, co
		}
	}
	fmt.Printf("worst observability: node %d (CO=%d)\n", worst, worstCO)
	return nil
}

func cmdLabel(args []string) error {
	fs := flag.NewFlagSet("label", flag.ExitOnError)
	patterns := fs.Int("patterns", dataset.DefaultPatterns, "labeling pattern budget")
	threshold := fs.Float64("threshold", dataset.DefaultThreshold, "difficult-to-observe cutoff")
	seed := fs.Int64("seed", 1, "pattern seed")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("label needs one netlist file")
	}
	n, err := netlist.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	counts := fault.ObservabilityCounts(n, *patterns, *seed)
	labels := fault.LabelDifficult(n, counts, *patterns, *threshold)
	pos := 0
	for id, l := range labels {
		if l == 1 {
			pos++
			fmt.Printf("%d\tdifficult\tobserved %d/%d\n", id, counts[id], *patterns)
		}
	}
	fmt.Printf("# %d difficult-to-observe of %d nodes (%.3f%%)\n",
		pos, n.NumGates(), 100*float64(pos)/float64(n.NumGates()))
	return nil
}

func cmdTrain(args []string) error {
	fs := flag.NewFlagSet("train", flag.ExitOnError)
	out := fs.String("out", "model.gob", "output model path")
	patterns := fs.Int("patterns", dataset.DefaultPatterns, "labeling pattern budget")
	threshold := fs.Float64("threshold", dataset.DefaultThreshold, "difficult-to-observe cutoff")
	epochs := fs.Int("epochs", 80, "training epochs per stage")
	stages := fs.Int("stages", 3, "cascade stages")
	seed := fs.Int64("seed", 1, "training seed")
	fs.Parse(args)
	if fs.NArg() == 0 {
		return fmt.Errorf("train needs at least one netlist file")
	}
	var graphs []*core.Graph
	for _, path := range fs.Args() {
		n, err := netlist.ReadFile(path)
		if err != nil {
			return err
		}
		b := dataset.Label(n.Name, n, *patterns, *threshold, *seed)
		pos, neg := b.Graph.CountLabels()
		fmt.Printf("loaded %s: %d nodes, %d positive, %d negative\n", path, b.Graph.N, pos, neg)
		graphs = append(graphs, b.Graph)
	}
	mopt := core.DefaultMultiStageOptions()
	mopt.NumStages = *stages
	mopt.ModelCfg = core.DefaultConfig()
	mopt.ModelCfg.Seed = *seed
	mopt.Train = core.DefaultTrainOptions()
	mopt.Train.Epochs = *epochs
	mopt.Train.LR = 0.02
	mopt.Progress = func(s, rem, pos int) {
		fmt.Printf("stage %d: %d nodes remain (%d positive)\n", s, rem, pos)
	}
	ms, err := core.TrainMultiStage(graphs, mopt)
	if err != nil {
		return err
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := ms.Save(f); err != nil {
		return err
	}
	fmt.Printf("saved %d-stage cascade to %s\n", len(ms.Stages), *out)
	return nil
}

func loadModel(path string) (*core.MultiStage, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return core.LoadMultiStage(f)
}

func cmdInfer(args []string) error {
	fs := flag.NewFlagSet("infer", flag.ExitOnError)
	model := fs.String("model", "model.gob", "trained cascade path")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("infer needs one netlist file")
	}
	ms, err := loadModel(*model)
	if err != nil {
		return err
	}
	n, err := netlist.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	g := core.FromNetlist(n, scoap.Compute(n))
	pred := ms.Predict(g)
	pos := 0
	for id, p := range pred {
		if p == 1 {
			fmt.Printf("%d\tdifficult\n", id)
			pos++
		}
	}
	fmt.Printf("# %d predicted difficult-to-observe of %d nodes\n", pos, g.N)
	return nil
}

func cmdInsert(args []string) error {
	fs := flag.NewFlagSet("insert", flag.ExitOnError)
	model := fs.String("model", "model.gob", "trained cascade path")
	out := fs.String("out", "modified.bench", "output netlist path")
	perIter := fs.Int("periter", 64, "insertions per iteration")
	maxOPs := fs.Int("maxops", 0, "cap on total observation points (0 = none)")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("insert needs one netlist file")
	}
	ms, err := loadModel(*model)
	if err != nil {
		return err
	}
	n, err := netlist.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	meas := scoap.Compute(n)
	g := core.FromNetlist(n, meas)
	res := opi.RunFlow(n, meas, g, ms, opi.FlowConfig{
		PerIteration:  *perIter,
		MaxInsertions: *maxOPs,
		Progress: func(iter, positives, inserted int) {
			fmt.Printf("iteration %d: %d positives, %d OPs so far\n", iter, positives, inserted)
		},
	})
	if err := netlist.WriteFile(*out, n); err != nil {
		return err
	}
	fmt.Printf("inserted %d observation points in %d iterations; wrote %s\n",
		len(res.Targets), res.Iterations, *out)
	return nil
}

func cmdEval(args []string) error {
	fs := flag.NewFlagSet("eval", flag.ExitOnError)
	patterns := fs.Int("patterns", 16384, "test pattern budget")
	seed := fs.Int64("seed", 1, "pattern seed")
	atpg := fs.Bool("atpg", false, "top up with deterministic PODEM patterns")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("eval needs one netlist file")
	}
	n, err := netlist.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	tpg := fault.TPGConfig{MaxPatterns: *patterns, Seed: *seed}
	if *atpg {
		res := fault.GenerateTestsWithATPG(n, fault.ATPGConfig{Random: tpg})
		fmt.Printf("observation points : %d\ntest patterns      : %d (deterministic %d)\nfault coverage     : %.2f%%\ntest coverage      : %.2f%% (untestable %d, aborted %d)\n",
			n.CountType(netlist.Obs), res.PatternsUsed, res.DeterministicPatterns,
			100*res.Coverage, 100*res.TestCoverage, res.ProvedUntestable, res.Aborted)
		return nil
	}
	ev := opi.Evaluate(n, tpg)
	fmt.Printf("observation points: %d\ntest patterns     : %d\nfault coverage    : %.2f%%\n",
		ev.OPs, ev.Patterns, 100*ev.Coverage)
	return nil
}

func cmdBist(args []string) error {
	fs := flag.NewFlagSet("bist", flag.ExitOnError)
	patterns := fs.Int("patterns", 4096, "LFSR pattern budget")
	seed := fs.Uint64("seed", 0xACE1, "LFSR seed (nonzero)")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("bist needs one netlist file")
	}
	n, err := netlist.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	res, err := bist.RunSession(n, bist.SessionConfig{Patterns: *patterns, Seed: *seed})
	if err != nil {
		return err
	}
	fmt.Printf("LFSR patterns   : %d\nstuck-at coverage: %.2f%% (%d/%d)\ngolden signature : %016x\n",
		res.Patterns, 100*res.Coverage, res.Detected, res.Total, res.Signature)
	return nil
}

func cmdCPInsert(args []string) error {
	fs := flag.NewFlagSet("cpinsert", flag.ExitOnError)
	out := fs.String("out", "modified.bench", "output netlist path")
	epsilon := fs.Float64("epsilon", 0.01, "signal probability band")
	perRound := fs.Int("perround", 32, "insertions per round")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("cpinsert needs one netlist file")
	}
	n, err := netlist.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	res := opi.ControllabilityGreedy(n, opi.CPFlowConfig{Epsilon: *epsilon, PerRound: *perRound})
	if err := netlist.WriteFile(*out, res.Netlist); err != nil {
		return err
	}
	fmt.Printf("inserted %d CP0 and %d CP1 control points in %d rounds; wrote %s\n",
		res.CP0s, res.CP1s, res.Rounds, *out)
	return nil
}

// revision is the -version payload: `git describe --always --dirty`
// when the binary runs inside the repository, "unknown" otherwise.
func revision() string {
	if r := obs.GitDescribe(); r != "" {
		return r
	}
	return "unknown"
}
