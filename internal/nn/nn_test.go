package nn

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

func randInput(rng *rand.Rand, r, c int) *tensor.Dense {
	d := tensor.NewDense(r, c)
	for i := range d.Data {
		d.Data[i] = rng.NormFloat64()
	}
	return d
}

// numericalGrad estimates dLoss/dθ for a single scalar parameter entry by
// central differences.
func numericalGrad(loss func() float64, theta *float64) float64 {
	const h = 1e-6
	orig := *theta
	*theta = orig + h
	lp := loss()
	*theta = orig - h
	lm := loss()
	*theta = orig
	return (lp - lm) / (2 * h)
}

func TestLinearForwardShapesAndBias(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	l := NewLinear("l", 3, 2, rng)
	copy(l.B.Data, []float64{10, 20})
	x := tensor.NewDense(4, 3) // zeros
	y := l.Forward(x)
	if y.Rows != 4 || y.Cols != 2 {
		t.Fatalf("shape %d×%d", y.Rows, y.Cols)
	}
	if y.At(0, 0) != 10 || y.At(3, 1) != 20 {
		t.Errorf("bias not applied: %v", y.Data)
	}
}

func TestMLPGradientCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := NewMLP("m", []int{5, 8, 6, 3}, rng)
	x := randInput(rng, 9, 5)
	labels := []int{0, 1, 2, 0, 1, 2, 0, 1, 2}
	weights := []float64{1, 2.5, 0.7}

	lossFn := func() float64 {
		logits := m.Forward(x)
		loss, _ := WeightedCrossEntropy(logits, labels, weights)
		return loss
	}

	// Analytic gradients.
	ZeroGrads(m.Params())
	logits := m.Forward(x)
	_, dlogits := WeightedCrossEntropy(logits, labels, weights)
	dx := m.Backward(dlogits)

	// Check a sample of parameter entries in every parameter tensor.
	for _, p := range m.Params() {
		step := len(p.Data)/5 + 1
		for i := 0; i < len(p.Data); i += step {
			want := numericalGrad(lossFn, &p.Data[i])
			got := p.Grad[i]
			if math.Abs(got-want) > 1e-5*(1+math.Abs(want)) {
				t.Errorf("%s[%d]: analytic %g, numeric %g", p.Name, i, got, want)
			}
		}
	}

	// Check input gradients too.
	for _, i := range []int{0, 7, 22, 44} {
		want := numericalGrad(lossFn, &x.Data[i])
		if math.Abs(dx.Data[i]-want) > 1e-5*(1+math.Abs(want)) {
			t.Errorf("dX[%d]: analytic %g, numeric %g", i, dx.Data[i], want)
		}
	}
}

func TestWeightedCrossEntropyMasking(t *testing.T) {
	logits := tensor.FromRows([][]float64{{2, 0}, {0, 2}, {5, 5}})
	// Row 2 masked out.
	loss, grad := WeightedCrossEntropy(logits, []int{0, 1, -1}, nil)
	if loss <= 0 {
		t.Errorf("loss = %v, want > 0", loss)
	}
	for j := 0; j < 2; j++ {
		if grad.At(2, j) != 0 {
			t.Errorf("masked row has gradient %v", grad.Row(2))
		}
	}
	// All masked: zero loss, zero grad.
	l2, g2 := WeightedCrossEntropy(logits, []int{-1, -1, -1}, nil)
	if l2 != 0 {
		t.Errorf("all-masked loss = %v", l2)
	}
	for _, v := range g2.Data {
		if v != 0 {
			t.Fatal("all-masked grad nonzero")
		}
	}
}

func TestWeightedCrossEntropyClassWeights(t *testing.T) {
	logits := tensor.FromRows([][]float64{{0, 0}})
	lossUnit, _ := WeightedCrossEntropy(logits, []int{1}, []float64{1, 1})
	lossHeavy, gradHeavy := WeightedCrossEntropy(logits, []int{1}, []float64{1, 50})
	// Normalized by total weight, the mean loss per unit weight is equal...
	if math.Abs(lossUnit-lossHeavy) > 1e-12 {
		t.Errorf("normalized weighted loss should match: %v vs %v", lossUnit, lossHeavy)
	}
	// ...but with mixed rows the heavy class dominates the gradient.
	logits2 := tensor.FromRows([][]float64{{0, 0}, {0, 0}})
	_, g := WeightedCrossEntropy(logits2, []int{0, 1}, []float64{1, 9})
	// Row 1 (weight 9) must have 9× the gradient magnitude of row 0.
	r0 := math.Abs(g.At(0, 0))
	r1 := math.Abs(g.At(1, 0))
	if math.Abs(r1/r0-9) > 1e-9 {
		t.Errorf("gradient ratio = %v, want 9", r1/r0)
	}
	_ = gradHeavy
}

func TestSGDMomentumConvergesOnQuadratic(t *testing.T) {
	// Minimize f(w) = ||w - target||² with SGD+momentum.
	p := NewParam("w", 3)
	target := []float64{1, -2, 3}
	opt := &SGD{LR: 0.1, Momentum: 0.9}
	for step := 0; step < 500; step++ {
		p.ZeroGrad()
		for i := range p.Data {
			p.Grad[i] = 2 * (p.Data[i] - target[i])
		}
		opt.Step([]*Param{p})
	}
	for i, want := range target {
		if math.Abs(p.Data[i]-want) > 1e-5 {
			t.Errorf("w[%d] = %v, want %v", i, p.Data[i], want)
		}
	}
}

func TestSGDWeightDecayShrinks(t *testing.T) {
	p := NewParam("w", 1)
	p.Data[0] = 1
	opt := &SGD{LR: 0.1, WeightDecay: 0.5}
	opt.Step([]*Param{p}) // grad 0, decay pulls toward 0
	if p.Data[0] >= 1 {
		t.Errorf("weight decay did not shrink: %v", p.Data[0])
	}
}

func TestMLPTrainingReducesLoss(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := NewMLP("m", []int{2, 16, 2}, rng)
	// XOR-ish synthetic task.
	x := tensor.FromRows([][]float64{{0, 0}, {0, 1}, {1, 0}, {1, 1}})
	labels := []int{0, 1, 1, 0}
	opt := &SGD{LR: 0.3, Momentum: 0.9}
	var first, last float64
	for epoch := 0; epoch < 400; epoch++ {
		ZeroGrads(m.Params())
		logits := m.Forward(x)
		loss, dlogits := WeightedCrossEntropy(logits, labels, nil)
		if epoch == 0 {
			first = loss
		}
		last = loss
		m.Backward(dlogits)
		opt.Step(m.Params())
	}
	if last >= first/4 {
		t.Errorf("training did not reduce loss: first %v last %v", first, last)
	}
	pred := m.Forward(x).ArgmaxRows()
	for i, want := range labels {
		if pred[i] != want {
			t.Errorf("XOR sample %d predicted %d, want %d", i, pred[i], want)
		}
	}
}

func TestSaveLoadParams(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	m := NewMLP("m", []int{4, 6, 2}, rng)
	var buf bytes.Buffer
	if err := SaveParams(&buf, m.Params()); err != nil {
		t.Fatalf("SaveParams: %v", err)
	}
	m2 := NewMLP("m", []int{4, 6, 2}, rand.New(rand.NewSource(1234)))
	if err := LoadParams(&buf, m2.Params()); err != nil {
		t.Fatalf("LoadParams: %v", err)
	}
	x := randInput(rng, 5, 4)
	a, b := m.Forward(x), m2.Forward(x)
	if diff := tensor.MaxAbsDiff(a, b); diff != 0 {
		t.Errorf("restored model differs by %g", diff)
	}

	// Mismatched shape errors.
	var buf2 bytes.Buffer
	if err := SaveParams(&buf2, m.Params()); err != nil {
		t.Fatal(err)
	}
	m3 := NewMLP("m", []int{4, 7, 2}, rng)
	if err := LoadParams(&buf2, m3.Params()); err == nil {
		t.Error("LoadParams with mismatched shapes should fail")
	}
}

func BenchmarkMLPForward(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	m := NewMLP("m", []int{128, 64, 64, 128, 2}, rng)
	x := randInput(rng, 1024, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Forward(x)
	}
}
