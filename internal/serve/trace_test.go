package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
)

// slowPredictor wraps stubPredictor with a fixed forward-pass delay, so
// trace tests have a dominant, known-duration "forward" phase.
type slowPredictor struct {
	stubPredictor
	delay time.Duration
}

func (p *slowPredictor) NewIncremental(g *core.Graph) core.IncrementalRun {
	time.Sleep(p.delay)
	return p.stubPredictor.NewIncremental(g)
}

// postJSONWithID posts a JSON body with an X-Request-ID header and
// returns the response (caller closes the body).
func postJSONWithID(t *testing.T, url, id string, body any) *http.Response {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Request-ID", id)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// findRecent pulls a completed request trace out of /debug/requests by
// id, polling because the middleware finishes the trace after the
// response body is written.
func findRecent(t *testing.T, baseURL, id string) obs.RequestSnapshot {
	t.Helper()
	var found obs.RequestSnapshot
	waitUntil(t, 5*time.Second, func() bool {
		resp, err := http.Get(baseURL + "/debug/requests")
		if err != nil {
			return false
		}
		var page obs.RequestsPage
		err = json.NewDecoder(resp.Body).Decode(&page)
		resp.Body.Close()
		if err != nil {
			return false
		}
		for _, r := range page.Recent {
			if r.ID == id {
				found = r
				return true
			}
		}
		return false
	})
	return found
}

// TestRequestIDEchoAndTracePhaseSum is the tentpole acceptance test: a
// scored request echoes its X-Request-ID, and its completed trace on
// /debug/requests carries a phase breakdown whose durations sum to the
// measured wall time within 5%.
func TestRequestIDEchoAndTracePhaseSum(t *testing.T) {
	stub := &slowPredictor{delay: 80 * time.Millisecond}
	_, ts := newTestServer(t, Options{Predictor: stub})

	const id = "trace-sum-1"
	resp := postJSONWithID(t, ts.URL+"/v1/score", id, ScoreRequest{Netlist: tinyBench})
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Request-ID"); got != id {
		t.Fatalf("X-Request-ID echoed %q, want %q", got, id)
	}

	rec := findRecent(t, ts.URL, id)
	if rec.Name != "score" || rec.Status != "200" {
		t.Fatalf("trace = %+v", rec)
	}
	if rec.Attrs["cache"] != "miss" {
		t.Fatalf("attrs = %v", rec.Attrs)
	}
	var sum int64
	byName := map[string]int64{}
	for _, ph := range rec.Phases {
		sum += ph.DurNS
		byName[ph.Name] += ph.DurNS
	}
	for _, want := range []string{"decode", "queue", "parse", "scoap", "forward", "rank"} {
		if _, ok := byName[want]; !ok {
			t.Errorf("phase %q missing from %v", want, byName)
		}
	}
	if byName["forward"] < (60 * time.Millisecond).Nanoseconds() {
		t.Errorf("forward phase %dns does not cover the slow forward pass", byName["forward"])
	}
	if rec.WallNS <= 0 || sum > rec.WallNS || float64(sum) < 0.95*float64(rec.WallNS) {
		t.Errorf("phases sum %dns vs wall %dns: outside ±5%%", sum, rec.WallNS)
	}
}

// TestGeneratedRequestID pins the no-header and hostile-header paths:
// the server generates (or regenerates) an id and echoes it.
func TestGeneratedRequestID(t *testing.T) {
	stub := &stubPredictor{}
	_, ts := newTestServer(t, Options{Predictor: stub})

	resp, err := http.Post(ts.URL+"/v1/score", "application/json",
		strings.NewReader(`{"netlist":"INPUT(a)\nOUTPUT(a)"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if id := resp.Header.Get("X-Request-ID"); len(id) != 16 {
		t.Fatalf("generated id %q, want 16 hex chars", id)
	}

	// Header-legal but entirely unsanitizable: every char is rejected, so
	// the server regenerates.
	hostile := postJSONWithID(t, ts.URL+"/v1/score", "@@@ %%%", ScoreRequest{Netlist: tinyBench})
	hostile.Body.Close()
	if id := hostile.Header.Get("X-Request-ID"); len(id) != 16 {
		t.Fatalf("hostile header echoed as %q, want a regenerated 16-hex id", id)
	}
}

// syncBuf is a mutex-guarded buffer for reading the access log while the
// server may still be writing it.
type syncBuf struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuf) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuf) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestSlowRequestLoggedUnsampled proves the slow path: with sampling
// effectively off (1 in 10^6), a request over the slow threshold still
// produces exactly one structured log line carrying its request id and
// per-phase durations, and increments serve.slow_requests.
func TestSlowRequestLoggedUnsampled(t *testing.T) {
	var log syncBuf
	stub := &slowPredictor{delay: 30 * time.Millisecond}
	_, ts := newTestServer(t, Options{
		Predictor:       stub,
		AccessLog:       &log,
		AccessLogSample: 1000000,
		SlowRequest:     10 * time.Millisecond,
	})
	slowBefore := mSlowRequests.Value()

	const id = "slow-req-1"
	resp := postJSONWithID(t, ts.URL+"/v1/score", id, ScoreRequest{Netlist: tinyBench})
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}

	// The log line lands after the response; poll for it.
	waitUntil(t, 5*time.Second, func() bool { return strings.Contains(log.String(), "\n") })
	var rec obs.AccessRecord
	line := strings.SplitN(log.String(), "\n", 2)[0]
	if err := json.Unmarshal([]byte(line), &rec); err != nil {
		t.Fatalf("access line not JSON: %v\n%s", err, line)
	}
	if !rec.Slow || rec.ID != id || rec.Method != "POST" || rec.Path != "/v1/score" || rec.Status != 200 {
		t.Fatalf("slow record = %+v", rec)
	}
	if rec.WallMS < 30 {
		t.Fatalf("wall %.1fms, want >= the 30ms forward delay", rec.WallMS)
	}
	hasForward := false
	for _, ph := range rec.Phases {
		if ph.Name == "forward" && ph.DurNS >= (30*time.Millisecond).Nanoseconds() {
			hasForward = true
		}
	}
	if !hasForward {
		t.Fatalf("slow line lacks the forward phase: %+v", rec.Phases)
	}
	if got := mSlowRequests.Value() - slowBefore; got != 1 {
		t.Fatalf("serve.slow_requests advanced by %d, want 1", got)
	}

	// A fast request under the huge sampling rate logs nothing new.
	fast := postJSONWithID(t, ts.URL+"/v1/designs", "fast-1", nil)
	fast.Body.Close()
	if n := strings.Count(log.String(), "\n"); n != 1 {
		t.Fatalf("%d log lines after a sampled-out fast request, want 1", n)
	}
}

// TestBatcherRiderNamesLeader extends the deterministic coalescing test
// with attribution: every rider's trace names the leader's request id,
// so a "why was this call slow" investigation can jump from a rider to
// the trace that actually did the work.
func TestBatcherRiderNamesLeader(t *testing.T) {
	const n = 4
	ids := []string{"batch-0", "batch-1", "batch-2", "batch-3"}
	stub := &stubPredictor{started: make(chan struct{}, 1), release: make(chan struct{})}
	_, ts := newTestServer(t, Options{Predictor: stub, MaxConcurrent: n, MaxQueue: n})

	coalescedBefore := mBatchCoalesced.Value()
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp := postJSONWithID(t, ts.URL+"/v1/score", ids[i], ScoreRequest{Netlist: thirdBench})
			resp.Body.Close()
			if resp.StatusCode != 200 {
				t.Errorf("request %d: status %d", i, resp.StatusCode)
			}
		}(i)
	}
	// Park the leader inside the forward pass until all riders joined.
	<-stub.started
	waitUntil(t, 10*time.Second, func() bool {
		return mBatchCoalesced.Value()-coalescedBefore >= n-1
	})
	close(stub.release)
	wg.Wait()

	// All four traces are finished; collect them by id.
	mine := map[string]obs.RequestSnapshot{}
	waitUntil(t, 5*time.Second, func() bool {
		for _, r := range obs.SnapshotRequests().Recent {
			for _, id := range ids {
				if r.ID == id {
					mine[id] = r
				}
			}
		}
		return len(mine) == n
	})

	var leaderID string
	var riders []obs.RequestSnapshot
	for _, r := range mine {
		switch r.Attrs["batch.role"] {
		case "leader":
			if leaderID != "" {
				t.Fatalf("two leaders: %q and %q", leaderID, r.ID)
			}
			leaderID = r.ID
		case "rider":
			riders = append(riders, r)
		default:
			t.Fatalf("trace %q has no batch role: %v", r.ID, r.Attrs)
		}
	}
	if leaderID == "" || len(riders) != n-1 {
		t.Fatalf("leader=%q riders=%d, want 1 leader and %d riders", leaderID, len(riders), n-1)
	}
	for _, r := range riders {
		if r.Attrs["batch.leader"] != leaderID {
			t.Errorf("rider %q names leader %q, want %q", r.ID, r.Attrs["batch.leader"], leaderID)
		}
		found := false
		for _, ph := range r.Phases {
			if ph.Name == "batch_wait" {
				found = true
			}
		}
		if !found {
			t.Errorf("rider %q has no batch_wait phase: %+v", r.ID, r.Phases)
		}
	}
	// The compile phases live in the leader's trace, not the riders'.
	leader := mine[leaderID]
	names := map[string]bool{}
	for _, ph := range leader.Phases {
		names[ph.Name] = true
	}
	if !names["parse"] || !names["forward"] {
		t.Errorf("leader phases = %+v, want parse and forward", leader.Phases)
	}
}

// TestDesignsEndpoint covers GET /v1/designs: MRU ordering, hit counts,
// source sizes, and the rekey-after-delta behavior.
func TestDesignsEndpoint(t *testing.T) {
	stub := &stubPredictor{}
	_, ts := newTestServer(t, Options{Predictor: stub})

	var first ScoreResponse
	if code := postJSON(t, ts.URL+"/v1/score", ScoreRequest{Netlist: tinyBench}, &first); code != 200 {
		t.Fatalf("score status %d", code)
	}
	// Hit the cache once, then compile a second design.
	if code := postJSON(t, ts.URL+"/v1/score", ScoreRequest{Netlist: tinyBench}, nil); code != 200 {
		t.Fatalf("rescore status %d", code)
	}
	var second ScoreResponse
	if code := postJSON(t, ts.URL+"/v1/score", ScoreRequest{Netlist: otherBench}, &second); code != 200 {
		t.Fatalf("second score status %d", code)
	}

	var list DesignsResponse
	resp, err := http.Get(ts.URL + "/v1/designs")
	if err != nil {
		t.Fatal(err)
	}
	err = json.NewDecoder(resp.Body).Decode(&list)
	resp.Body.Close()
	if err != nil || resp.StatusCode != 200 {
		t.Fatalf("designs: status=%d err=%v", resp.StatusCode, err)
	}
	if list.Capacity != 32 || len(list.Designs) != 2 {
		t.Fatalf("capacity=%d designs=%d, want 32 and 2", list.Capacity, len(list.Designs))
	}
	// MRU first: otherBench was touched last.
	if list.Designs[0].Design != second.Design || list.Designs[1].Design != first.Design {
		t.Fatalf("order = [%s, %s], want [%s, %s]",
			list.Designs[0].Design, list.Designs[1].Design, second.Design, first.Design)
	}
	tiny := list.Designs[1]
	if tiny.Hits != 1 || tiny.Nodes != 5 || tiny.SourceBytes != len(tinyBench) {
		t.Fatalf("tiny stats = %+v", tiny)
	}
	if tiny.AgeMs < 0 || tiny.IdleMs < 0 || tiny.IdleMs > tiny.AgeMs {
		t.Fatalf("tiny age/idle = %d/%d", tiny.AgeMs, tiny.IdleMs)
	}

	// A delta rekeys the design: the new id appears with grown node count
	// and no source text.
	var delta ScoreResponse
	if code := postJSON(t, ts.URL+"/v1/score/delta",
		DeltaRequest{Design: first.Design, Observe: []int32{2}}, &delta); code != 200 {
		t.Fatalf("delta status %d", code)
	}
	resp, err = http.Get(ts.URL + "/v1/designs")
	if err != nil {
		t.Fatal(err)
	}
	list = DesignsResponse{}
	err = json.NewDecoder(resp.Body).Decode(&list)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	var edited *DesignInfo
	for i := range list.Designs {
		if list.Designs[i].Design == delta.Design {
			edited = &list.Designs[i]
		}
		if list.Designs[i].Design == first.Design {
			t.Fatalf("stale pre-delta id still listed: %+v", list.Designs)
		}
	}
	if edited == nil || edited.Nodes != 6 || edited.SourceBytes != 0 {
		t.Fatalf("edited design = %+v", edited)
	}
}

// TestHealthzVersion pins the /healthz additions: the git version is
// reported alongside uptime.
func TestHealthzVersion(t *testing.T) {
	stub := &stubPredictor{}
	_, ts := newTestServer(t, Options{Predictor: stub})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h HealthResponse
	err = json.NewDecoder(resp.Body).Decode(&h)
	resp.Body.Close()
	if err != nil || resp.StatusCode != 200 {
		t.Fatalf("healthz: status=%d err=%v", resp.StatusCode, err)
	}
	if h.Version != obs.GitDescribe() {
		t.Fatalf("version %q, want obs.GitDescribe() %q", h.Version, obs.GitDescribe())
	}
	if h.UptimeMs < 0 || h.Status != "ok" {
		t.Fatalf("health = %+v", h)
	}
}
