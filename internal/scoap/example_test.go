package scoap_test

import (
	"fmt"

	"repro/internal/netlist"
	"repro/internal/scoap"
)

// SCOAP measures for a two-gate circuit, before and after inserting an
// observation point (the incremental update relaxes only the fan-in
// cone).
func Example() {
	n := netlist.New("demo")
	a := n.MustAddGate(netlist.Input, "a")
	b := n.MustAddGate(netlist.Input, "b")
	c := n.MustAddGate(netlist.Input, "c")
	g1 := n.MustAddGate(netlist.And, "g1", a, b)
	g2 := n.MustAddGate(netlist.Or, "g2", g1, c)
	n.MustAddGate(netlist.Output, "po", g2)

	m := scoap.Compute(n)
	fmt.Printf("g1: CC0=%d CC1=%d CO=%d\n", m.CC0[g1], m.CC1[g1], m.CO[g1])

	op, _ := n.InsertObservationPoint(g1)
	m.UpdateAfterObservationPoint(n, op)
	fmt.Printf("g1 after OP: CO=%d\n", m.CO[g1])
	// Output:
	// g1: CC0=2 CC1=3 CO=2
	// g1 after OP: CO=0
}
