package partition

import (
	"runtime"
	"sync"
)

// Pool is a reused worker pool for per-shard tasks: goroutines are
// spawned once (lazily, on the first parallel Run) and fed through an
// unbuffered channel, so a layer-by-layer sharded forward pays the
// goroutine start-up cost once per predictor instead of once per
// barrier. A Pool is safe for use by one Run at a time; tasks must not
// call Run re-entrantly (they would deadlock waiting for workers the
// outer Run occupies).
type Pool struct {
	workers int
	start   sync.Once
	jobs    chan poolJob

	mu     sync.Mutex
	closed bool
}

type poolJob struct {
	fn  func()
	wg  *sync.WaitGroup
	rec *panicRecord
}

// panicRecord captures the first panic raised by any task of a Run so
// the caller can re-raise it (fuzzing relies on sharded-executor
// panics surfacing in the fuzz worker, not dying in a pool goroutine).
type panicRecord struct {
	mu  sync.Mutex
	val any
	set bool
}

func (r *panicRecord) capture(v any) {
	r.mu.Lock()
	if !r.set {
		r.val, r.set = v, true
	}
	r.mu.Unlock()
}

// NewPool returns a pool with the given worker count; workers <= 0
// selects GOMAXPROCS. The count is deliberately not clamped to
// runtime.NumCPU(): the bench matrix measures worker scaling by
// varying GOMAXPROCS, and a NumCPU clamp would silently flatten it.
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	// The channel exists from construction (only the goroutines are
	// lazy) so Close never races the sync.Once publication of a
	// lazily created field.
	return &Pool{workers: workers, jobs: make(chan poolJob)}
}

// Workers returns the pool size.
func (p *Pool) Workers() int { return p.workers }

// Run executes every task and returns once all have finished. With one
// worker (or one task, or after Close) the tasks run inline in order —
// no goroutines, fully deterministic. If any task panics, Run panics
// with the first captured value after the remaining tasks finish.
func (p *Pool) Run(tasks []func()) {
	if len(tasks) == 0 {
		return
	}
	p.mu.Lock()
	closed := p.closed
	p.mu.Unlock()
	if p.workers == 1 || len(tasks) == 1 || closed {
		for _, fn := range tasks {
			fn()
		}
		return
	}
	p.start.Do(p.spawn)
	var wg sync.WaitGroup
	rec := &panicRecord{}
	wg.Add(len(tasks))
	for _, fn := range tasks {
		p.jobs <- poolJob{fn: fn, wg: &wg, rec: rec}
	}
	wg.Wait()
	if rec.set {
		panic(rec.val)
	}
}

func (p *Pool) spawn() {
	for i := 0; i < p.workers; i++ {
		go func() {
			for j := range p.jobs {
				j.run()
			}
		}()
	}
}

func (j poolJob) run() {
	defer j.wg.Done()
	defer func() {
		if r := recover(); r != nil {
			j.rec.capture(r)
		}
	}()
	j.fn()
}

// Close releases the pool's goroutines. It must not race an in-flight
// Run; subsequent Runs execute inline. Close is idempotent.
func (p *Pool) Close() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return
	}
	p.closed = true
	close(p.jobs)
}
