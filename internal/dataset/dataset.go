// Package dataset assembles the benchmark suite standing in for the
// paper's four industrial designs B1–B4 (Table 1): four synthetic
// netlists generated with distinct seeds and module mixes, labeled by the
// fault-simulation substitute for the commercial DFT tool, and wrapped as
// GCN-ready graphs. It also provides the balanced sampling and
// leave-one-design-out splits used by Table 2 and Figures 8–9.
package dataset

import (
	"math/rand"

	"repro/internal/circuitgen"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/netlist"
	"repro/internal/scoap"
)

// DefaultPatterns is the random-pattern budget used for labeling.
const DefaultPatterns = 2048

// DefaultThreshold marks a node difficult-to-observe when it is observed
// in fewer than this fraction of labeling patterns.
const DefaultThreshold = 0.005

// Benchmark bundles one design with its analysis artifacts.
type Benchmark struct {
	Name      string
	Netlist   *netlist.Netlist
	Measures  *scoap.Measures
	Graph     *core.Graph // labeled
	ObsCounts []int       // labeling observability counts
}

// SuiteConfig controls benchmark generation.
type SuiteConfig struct {
	// NumGates is the approximate logic size per design; default 8000.
	NumGates int
	// Patterns is the labeling simulation budget; default DefaultPatterns.
	Patterns int
	// Threshold is the difficult-to-observe cutoff; default
	// DefaultThreshold.
	Threshold float64
	// Seed offsets every design seed, letting tests build disjoint
	// suites.
	Seed int64
	// Designs is the number of designs; default 4 (B1–B4).
	Designs int
}

func (c SuiteConfig) withDefaults() SuiteConfig {
	if c.NumGates <= 0 {
		c.NumGates = 8000
	}
	if c.Patterns <= 0 {
		c.Patterns = DefaultPatterns
	}
	if c.Threshold <= 0 {
		c.Threshold = DefaultThreshold
	}
	if c.Designs <= 0 {
		c.Designs = 4
	}
	return c
}

// GenerateSuite builds the labeled benchmark suite. Each design uses a
// different seed and a slightly different module mix, as distinct IP
// blocks of one technology would.
func GenerateSuite(cfg SuiteConfig) []*Benchmark {
	cfg = cfg.withDefaults()
	names := []string{"B1", "B2", "B3", "B4", "B5", "B6", "B7", "B8"}
	var out []*Benchmark
	for d := 0; d < cfg.Designs; d++ {
		gcfg := circuitgen.Config{
			Seed:     cfg.Seed + int64(d)*1_000_003,
			NumGates: cfg.NumGates,
			// Vary the mix a little per design.
			XorFrac: 0.22 + 0.02*float64(d%3),
			DFFFrac: 0.28 + 0.02*float64(d%2),
		}
		name := names[d%len(names)]
		out = append(out, Build(name, gcfg, cfg.Patterns, cfg.Threshold, cfg.Seed+int64(d)))
	}
	return out
}

// Build generates, analyzes and labels a single benchmark design.
func Build(name string, gcfg circuitgen.Config, patterns int, threshold float64, labelSeed int64) *Benchmark {
	n := circuitgen.Generate(name, gcfg)
	return Label(name, n, patterns, threshold, labelSeed)
}

// Label analyzes and labels an existing netlist.
func Label(name string, n *netlist.Netlist, patterns int, threshold float64, labelSeed int64) *Benchmark {
	m := scoap.Compute(n)
	counts := fault.ObservabilityCounts(n, patterns, labelSeed)
	labels := fault.LabelDifficult(n, counts, patterns, threshold)
	g := core.FromNetlist(n, m)
	copy(g.Labels, labels)
	return &Benchmark{Name: name, Netlist: n, Measures: m, Graph: g, ObsCounts: counts}
}

// Stats returns the Table 1 row for the benchmark.
func (b *Benchmark) Stats() (nodes, edges, pos, neg int) {
	nodes = b.Netlist.NumGates()
	edges = b.Netlist.NumEdges()
	pos, neg = b.Graph.CountLabels()
	return
}

// BalancedLabels returns a label set for the graph containing every
// positive node and an equal number of randomly sampled negatives; all
// other nodes are masked (-1). This is the paper's balanced dataset
// construction for Table 2 and Figure 8.
func BalancedLabels(g *core.Graph, seed int64) []int {
	rng := rand.New(rand.NewSource(seed))
	out := make([]int, g.N)
	var negatives []int
	pos := 0
	for v, l := range g.Labels {
		switch l {
		case 1:
			out[v] = 1
			pos++
		case 0:
			out[v] = -1
			negatives = append(negatives, v)
		default:
			out[v] = -1
		}
	}
	rng.Shuffle(len(negatives), func(i, j int) { negatives[i], negatives[j] = negatives[j], negatives[i] })
	if pos > len(negatives) {
		pos = len(negatives)
	}
	for _, v := range negatives[:pos] {
		out[v] = 0
	}
	return out
}

// LabeledNodes lists the node IDs with label 0 or 1 in a label set.
func LabeledNodes(labels []int) []int32 {
	var out []int32
	for v, l := range labels {
		if l >= 0 {
			out = append(out, int32(v))
		}
	}
	return out
}
