// Package coarsen reduces a netlist to a smaller supergraph for faster
// GCN inference, trading accuracy for speed along a measured curve
// (the CTS-Bench question applied to this reproduction: how much F1 and
// fault coverage does each unit of node reduction cost?).
//
// Two structure-aware strategies are provided. FFR clusters each
// fanout-free region — a maximal tree of cells whose outputs feed
// exactly one load — into one supernode: inside an FFR every cell's
// value propagates through the same single path to the region head, so
// the cells share observability structure and collapse with little
// information loss. LevelCollapse cuts the (structural level, id)
// sorted cell order into fixed-size groups, the blunt baseline that
// ignores structure and exposes how much FFR's structure awareness is
// worth.
//
// Both strategies produce a deterministic, invertible cell→supernode
// mapping whose supernode numbering is topological (every cross-region
// wire points from a lower to a higher supernode id), a reduced
// netlist-compatible supergraph, feature projection onto supernodes
// (ProjectGraph) and score lifting back to member cells (Lift). At
// ratio 1.0 both strategies degenerate to the identity mapping and the
// projected graph is bit-identical to the fine graph — the anchor
// invariant the refcheck differential suite enforces.
package coarsen

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/netlist"
	"repro/internal/obs"
)

// Coarsening metrics (no-ops until obs.Enable; see
// docs/OBSERVABILITY.md).
var (
	coarsenBuilds     = obs.GetCounter("coarsen.builds")
	coarsenSupernodes = obs.GetCounter("coarsen.supernodes")
	coarsenLifts      = obs.GetCounter("coarsen.lifts")
)

// Strategy selects how cells are clustered into supernodes.
type Strategy int

const (
	// FFR merges each fanout-free region — every cell whose output
	// feeds exactly one load joins its load's region — into one
	// supernode, up to the size cap implied by Ratio. Boundary cells
	// (Input, Output, DFF, Obs) always stay singletons, preserving the
	// PI/PO/scan/observation-point structure of the design.
	FFR Strategy = iota
	// LevelCollapse sorts cells by (structural level, id) and cuts the
	// order into contiguous groups of ⌈1/Ratio⌉ cells, the
	// structure-blind baseline. Boundary cells stay singletons.
	LevelCollapse
)

// String names the strategy for errors, logs and reports.
func (s Strategy) String() string {
	switch s {
	case FFR:
		return "ffr"
	case LevelCollapse:
		return "level-collapse"
	default:
		return fmt.Sprintf("strategy(%d)", int(s))
	}
}

// Options configures New.
type Options struct {
	// Strategy selects the clustering scheme (default FFR).
	Strategy Strategy
	// Ratio is the target supernode/cell ratio in (0, 1]: 1.0 keeps
	// every cell (identity), 0.25 aims at a 4× reduction. The achieved
	// ratio may be higher — FFR cannot merge past fanout-free-region
	// boundaries and no strategy merges boundary cells — and is
	// reported by Coarsening.AchievedRatio.
	Ratio float64
}

func (o Options) validate() error {
	if o.Strategy != FFR && o.Strategy != LevelCollapse {
		return fmt.Errorf("coarsen: unknown strategy %v", o.Strategy)
	}
	if !(o.Ratio > 0 && o.Ratio <= 1) || math.IsNaN(o.Ratio) {
		return fmt.Errorf("coarsen: ratio %v outside (0, 1]", o.Ratio)
	}
	return nil
}

// groupCap converts the ratio into the maximum cells per supernode.
func (o Options) groupCap() int {
	return int(math.Ceil(1/o.Ratio - 1e-9))
}

// Coarsening is the result of clustering a netlist: the invertible
// cell→supernode mapping and the reduced supergraph.
type Coarsening struct {
	// Strategy and Ratio record the options the coarsening was built
	// with.
	Strategy Strategy
	Ratio    float64
	// Owner maps each fine cell id to its supernode id. Supernode ids
	// are topological: every fine wire u→v has Owner[u] <= Owner[v],
	// with equality exactly for region-internal wires.
	Owner []int32
	// Members inverts Owner: Members[s] lists the fine cells of
	// supernode s in ascending id order.
	Members [][]int32
	// Super is the reduced netlist: one cell per supernode, cross-
	// region wires preserved with multiplicity, boundary cells kept
	// with their fine type, merged logic regions represented by their
	// head cell's type (or a legal substitute when the merged fanin
	// arity no longer fits it).
	Super *netlist.Netlist
}

// NumFine returns the fine cell count.
func (c *Coarsening) NumFine() int { return len(c.Owner) }

// NumSuper returns the supernode count.
func (c *Coarsening) NumSuper() int { return len(c.Members) }

// AchievedRatio returns supernodes/cells, the reduction actually
// realized (>= the requested Ratio).
func (c *Coarsening) AchievedRatio() float64 {
	if len(c.Owner) == 0 {
		return 1
	}
	return float64(len(c.Members)) / float64(len(c.Owner))
}

// boundary reports whether a cell type must stay a singleton
// supernode: merging PIs, POs, scan cells or observation points would
// change the design's testability interface, not just its resolution.
func boundary(t netlist.GateType) bool {
	switch t {
	case netlist.Input, netlist.Output, netlist.DFF, netlist.Obs:
		return true
	}
	return false
}

// New clusters n under opt. The result is deterministic: the same
// netlist and options always produce the same Coarsening.
func New(n *netlist.Netlist, opt Options) (*Coarsening, error) {
	if n == nil {
		return nil, fmt.Errorf("coarsen: nil netlist")
	}
	if err := opt.validate(); err != nil {
		return nil, err
	}
	var owner []int32
	if cap := opt.groupCap(); cap <= 1 {
		// Ratio 1.0: both strategies degenerate to the identity
		// mapping, which keeps the supergraph (and everything derived
		// from it) bit-identical to the fine pipeline.
		owner = identityOwners(n)
	} else {
		switch opt.Strategy {
		case FFR:
			owner = ffrOwners(n, cap)
		case LevelCollapse:
			owner = levelCollapseOwners(n, cap)
		}
	}
	c := &Coarsening{Strategy: opt.Strategy, Ratio: opt.Ratio, Owner: owner}
	if err := c.buildSuper(n); err != nil {
		return nil, err
	}
	coarsenBuilds.Inc()
	coarsenSupernodes.Add(int64(c.NumSuper()))
	return c, nil
}

func identityOwners(n *netlist.Netlist) []int32 {
	owner := make([]int32, n.NumGates())
	for v := range owner {
		owner[v] = int32(v)
	}
	return owner
}

// ffrOwners assigns each cell to the head of its fanout-free region.
// A cell joins its unique load's region when it has exactly one load,
// neither side is a boundary cell, and the region is under the size
// cap. Scanning in decreasing id order means every load's head is
// final before its drivers are considered, so the pass is a single
// sweep. Heads are exactly the cells with outgoing cross-region wires:
// a merged cell's only wire goes to its own region, so every cross
// wire originates at a head h and ends at a cell v > h of a region
// whose head is >= v — head ids are topologically ordered, and
// numbering supernodes by head rank keeps cross wires monotone.
func ffrOwners(n *netlist.Netlist, cap int) []int32 {
	num := n.NumGates()
	head := make([]int32, num)
	size := make([]int32, num)
	for v := int32(num) - 1; v >= 0; v-- {
		head[v] = v
		size[v]++ // v itself joins whichever region head[v] ends up naming
		if boundary(n.Type(v)) {
			continue
		}
		fo := n.Fanout(v)
		if len(fo) != 1 {
			continue
		}
		load := fo[0]
		if boundary(n.Type(load)) {
			continue
		}
		h := head[load]
		if int(size[h])+int(size[v]) > cap {
			continue
		}
		size[h] += size[v]
		size[v] = 0
		head[v] = h
	}
	// Rank the heads: supernode id = position of the head among all
	// heads in ascending id order.
	rank := make([]int32, num)
	next := int32(0)
	for v := 0; v < num; v++ {
		if head[v] == int32(v) {
			rank[v] = next
			next++
		}
	}
	owner := make([]int32, num)
	for v := range owner {
		owner[v] = rank[head[v]]
	}
	return owner
}

// structuralLevels computes the edge-strict level of every cell: 0 for
// cells with no fanin, otherwise 1 + the maximum fanin level. Unlike
// netlist.Levels (where a scan flip-flop restarts at level 0 despite
// having a fanin wire), this level is monotone along every wire, which
// is what makes level-sorted grouping topological.
func structuralLevels(n *netlist.Netlist) []int32 {
	lv := make([]int32, n.NumGates())
	for v := int32(0); v < int32(n.NumGates()); v++ {
		best := int32(-1)
		for _, f := range n.Fanin(v) {
			if lv[f] > best {
				best = lv[f]
			}
		}
		lv[v] = best + 1
	}
	return lv
}

// levelCollapseOwners cuts the (structural level, id)-sorted cell
// order into contiguous groups of up to cap cells. A boundary cell
// closes the running group and takes a singleton, so groups never span
// a boundary cell's position. Cross wires always point forward in the
// sorted order (levels are edge-strict), so position-ordered group
// numbering is topological.
func levelCollapseOwners(n *netlist.Netlist, cap int) []int32 {
	num := n.NumGates()
	lv := structuralLevels(n)
	maxLv := int32(0)
	for _, l := range lv {
		if l > maxLv {
			maxLv = l
		}
	}
	// Counting sort by level; ids ascend within a level because cells
	// are visited in id order, making the order (level, id).
	counts := make([]int32, maxLv+2)
	for _, l := range lv {
		counts[l+1]++
	}
	for i := int32(1); i <= maxLv+1; i++ {
		counts[i] += counts[i-1]
	}
	order := make([]int32, num)
	for v := int32(0); v < int32(num); v++ {
		order[counts[lv[v]]] = v
		counts[lv[v]]++
	}
	owner := make([]int32, num)
	next := int32(0)
	inGroup := 0
	for _, v := range order {
		if boundary(n.Type(v)) {
			if inGroup > 0 {
				next++ // close the running logic group
				inGroup = 0
			}
			owner[v] = next
			next++
			continue
		}
		if inGroup == cap {
			next++
			inGroup = 0
		}
		owner[v] = next
		inGroup++
	}
	return owner
}

// buildSuper inverts Owner into Members and emits the reduced
// netlist. Supernodes are visited in id order (which is topological),
// so AddGate's fanin-before-gate requirement holds by construction.
func (c *Coarsening) buildSuper(n *netlist.Netlist) error {
	num := len(c.Owner)
	m := 0
	for _, s := range c.Owner {
		if int(s) >= m {
			m = int(s) + 1
		}
	}
	c.Members = make([][]int32, m)
	for v := 0; v < num; v++ {
		s := c.Owner[v]
		c.Members[s] = append(c.Members[s], int32(v))
	}
	super := netlist.New(n.Name + ".coarse")
	var fanin []int32
	for s := 0; s < m; s++ {
		members := c.Members[s]
		if len(members) == 0 {
			return fmt.Errorf("coarsen: supernode %d has no members", s)
		}
		// External fanin pins: member pin order, region-internal wires
		// dropped, multiplicity preserved. For singletons this is the
		// fine pin list mapped through Owner.
		fanin = fanin[:0]
		for _, v := range members {
			for _, f := range n.Fanin(v) {
				if fs := c.Owner[f]; fs != int32(s) {
					fanin = append(fanin, fs)
				}
			}
		}
		t, name := superCell(n, members, len(fanin))
		if _, err := super.AddGate(t, name, fanin...); err != nil {
			return fmt.Errorf("coarsen: supernode %d: %w", s, err)
		}
	}
	c.Super = super
	return nil
}

// superCell picks the reduced cell's type and name. Singletons keep
// their fine identity. A merged region is represented by its head (its
// maximum-id member, the unique cell with outgoing cross wires); when
// the merged external arity no longer fits the head's type, the
// nearest legal stand-in is used — Buf for one pin, And otherwise.
func superCell(n *netlist.Netlist, members []int32, arity int) (netlist.GateType, string) {
	rep := members[len(members)-1]
	t := n.Type(rep)
	name := n.Gate(rep).Name
	if len(members) == 1 {
		return t, name
	}
	if min := t.MinFanin(); arity < min {
		t = netlist.Buf
	}
	if max := t.MaxFanin(); max >= 0 && arity > max {
		t = netlist.And
	}
	return t, name
}

// Validate checks the coarsening invariants against the netlist it
// was built from: Owner a total map onto contiguous supernode ids,
// Members the exact sorted inverse, cross wires monotone in supernode
// id, boundary cells singletons with their fine type preserved, and
// the supergraph structurally valid. Intended for tests and fuzzing.
func (c *Coarsening) Validate(n *netlist.Netlist) error {
	if len(c.Owner) != n.NumGates() {
		return fmt.Errorf("coarsen: Owner covers %d of %d cells", len(c.Owner), n.NumGates())
	}
	if c.Super == nil || c.Super.NumGates() != len(c.Members) {
		return fmt.Errorf("coarsen: supergraph/Members size mismatch")
	}
	seen := make([]bool, n.NumGates())
	for s, members := range c.Members {
		if len(members) == 0 {
			return fmt.Errorf("coarsen: supernode %d empty", s)
		}
		for i, v := range members {
			if v < 0 || int(v) >= n.NumGates() {
				return fmt.Errorf("coarsen: supernode %d member %d out of range", s, v)
			}
			if i > 0 && members[i-1] >= v {
				return fmt.Errorf("coarsen: supernode %d members not sorted at %d", s, v)
			}
			if seen[v] {
				return fmt.Errorf("coarsen: cell %d in two supernodes", v)
			}
			seen[v] = true
			if c.Owner[v] != int32(s) {
				return fmt.Errorf("coarsen: cell %d in supernode %d but Owner says %d", v, s, c.Owner[v])
			}
		}
		if len(members) > 1 {
			for _, v := range members {
				if boundary(n.Type(v)) {
					return fmt.Errorf("coarsen: boundary cell %d (%s) merged into supernode %d",
						v, n.Type(v), s)
				}
			}
		}
		if len(members) == 1 && c.Super.Type(int32(s)) != n.Type(members[0]) {
			return fmt.Errorf("coarsen: singleton supernode %d type %s, fine cell %d is %s",
				s, c.Super.Type(int32(s)), members[0], n.Type(members[0]))
		}
	}
	for v, ok := range seen {
		if !ok {
			return fmt.Errorf("coarsen: cell %d not covered", v)
		}
	}
	for v := int32(0); v < int32(n.NumGates()); v++ {
		for _, f := range n.Fanin(v) {
			if c.Owner[f] > c.Owner[v] {
				return fmt.Errorf("coarsen: wire %d→%d maps to backward super wire %d→%d",
					f, v, c.Owner[f], c.Owner[v])
			}
		}
	}
	// Cross-wire preservation: each supernode's external pin count in
	// the supergraph must equal the fine cross-pin count.
	for s := range c.Members {
		want := 0
		for _, v := range c.Members[s] {
			for _, f := range n.Fanin(v) {
				if c.Owner[f] != int32(s) {
					want++
				}
			}
		}
		if got := len(c.Super.Fanin(int32(s))); got != want {
			return fmt.Errorf("coarsen: supernode %d has %d pins, fine cross wires %d", s, got, want)
		}
	}
	return c.Super.Validate()
}

// ProjectGraph aggregates the fine GCN graph onto the supernodes:
// attributes by per-column max over members (max commutes with the
// monotone log1p transform, so the supernode keeps the worst
// level/controllability/observability of its region — the signal the
// difficult-to-observe classifier keys on), labels by any-positive
// (else any-negative, else unknown), and adjacency from cross-region
// wires with multiplicity. At ratio 1.0 the result is bit-identical
// to the fine graph.
func (c *Coarsening) ProjectGraph(g *core.Graph) *core.Graph {
	if g.N != len(c.Owner) {
		panic(fmt.Sprintf("coarsen: graph has %d nodes, coarsening covers %d", g.N, len(c.Owner)))
	}
	m := len(c.Members)
	cg := core.NewGraph(m)
	for s := 0; s < m; s++ {
		row := cg.X.Row(s)
		label := -1
		for i, v := range c.Members[s] {
			fine := g.X.Row(int(v))
			if i == 0 {
				copy(row, fine)
			} else {
				for k := range row {
					if fine[k] > row[k] {
						row[k] = fine[k]
					}
				}
			}
			switch g.Labels[v] {
			case 1:
				label = 1
			case 0:
				if label != 1 {
					label = 0
				}
			}
		}
		cg.Labels[s] = label
	}
	coo := cg.PredCOO()
	for v := int32(0); v < int32(g.N); v++ {
		s := c.Owner[v]
		cols, vals := g.PredEntries(v)
		for i, f := range cols {
			if fs := c.Owner[f]; fs != s {
				coo.Append(s, fs, vals[i])
			}
		}
	}
	return cg
}

// AddObservationPoint mirrors a fine observation-point insertion on the
// coarse side so a live coarsening can track the OPI flow without being
// rebuilt. It must be called after the fine netlist inserted its Obs
// cell on target: the new fine cell (id len(Owner) at call time) becomes
// a fresh singleton supernode holding an Obs cell in the supergraph, and
// cg — the projected graph — receives the matching node and edge. An Obs
// cell is a boundary singleton with the paper's fixed initial attributes,
// so the mirrored insertion keeps cg exactly equal to ProjectGraph of
// the updated fine graph (attribute refreshes inside the fan-in cone are
// the caller's job; see ReprojectRow). Returns the new supernode id.
func (c *Coarsening) AddObservationPoint(cg *core.Graph, target int32) (int32, error) {
	if target < 0 || int(target) >= len(c.Owner) {
		return -1, fmt.Errorf("coarsen: observation target %d outside fine range %d", target, len(c.Owner))
	}
	s := c.Owner[target]
	opSuper, err := c.Super.InsertObservationPoint(s)
	if err != nil {
		return -1, err
	}
	cg.AddObservationPoint(s)
	c.Owner = append(c.Owner, opSuper)
	c.Members = append(c.Members, []int32{int32(len(c.Owner) - 1)})
	return opSuper, nil
}

// ReprojectRow recomputes supernode s's projected attribute row from the
// fine graph (per-column max over members) and reports whether any entry
// changed — the coarse dirty-row test after fine attribute refreshes.
func (c *Coarsening) ReprojectRow(cg, g *core.Graph, s int32) bool {
	row := cg.X.Row(int(s))
	members := c.Members[s]
	changed := false
	for k := 0; k < core.InputDim; k++ {
		best := g.X.At(int(members[0]), k)
		for _, v := range members[1:] {
			if x := g.X.At(int(v), k); x > best {
				best = x
			}
		}
		if best != row[k] {
			row[k] = best
			changed = true
		}
	}
	return changed
}

// Lift projects per-supernode scores back to the fine cells:
// lifted[v] = coarse[Owner[v]]. Every member of a region receives its
// region's score, so region-level ranking order is preserved exactly.
func (c *Coarsening) Lift(coarse []float64) []float64 {
	out := make([]float64, len(c.Owner))
	c.LiftInto(out, coarse)
	return out
}

// LiftInto is Lift into a caller-provided slice (len == NumFine()).
func (c *Coarsening) LiftInto(dst, coarse []float64) {
	if len(dst) != len(c.Owner) {
		panic(fmt.Sprintf("coarsen: lift dst has %d entries, want %d", len(dst), len(c.Owner)))
	}
	if len(coarse) != len(c.Members) {
		panic(fmt.Sprintf("coarsen: lift src has %d entries, want %d", len(coarse), len(c.Members)))
	}
	for v, s := range c.Owner {
		dst[v] = coarse[s]
	}
	coarsenLifts.Inc()
}
