package opi

import (
	"testing"

	"repro/internal/coarsen"
	"repro/internal/core"
)

// runCoarseEquivalence runs the exact incremental flow and the
// coarse-then-refine flow at ratio 1.0 / unbounded regions on identical
// copies of one design and requires identical outcomes — the anchor
// invariant: at identity coarsening every coarse step degenerates to the
// corresponding RunFlow step bit-for-bit.
func runCoarseEquivalence(t *testing.T, seed int64, gates int, mk func() core.IncrementalPredictor) FlowResult {
	t.Helper()
	nExact, mExact, gExact := buildBench(t, seed, gates)
	nCoarse, mCoarse, gCoarse := buildBench(t, seed, gates)

	pred := mk()
	thr := flowThreshold(gExact, pred, 0.03)
	cfg := FlowConfig{Threshold: thr, PerIteration: 6, MaxIterations: 5}

	resExact := RunFlow(nExact, mExact, gExact, pred, cfg)
	resCoarse, err := RunCoarseRefine(nCoarse, mCoarse, gCoarse, pred, CoarseRefineConfig{
		Coarsen: coarsen.Options{Strategy: coarsen.FFR, Ratio: 1.0},
		Flow:    cfg,
	})
	if err != nil {
		t.Fatalf("seed %d: coarse flow rejected: %v", seed, err)
	}
	if want := nCoarse.NumGates() - len(resCoarse.Targets); resCoarse.CoarseNodes != want {
		t.Fatalf("seed %d: ratio 1.0 coarse graph has %d supernodes, want %d", seed, resCoarse.CoarseNodes, want)
	}
	if resExact.Iterations != resCoarse.Iterations {
		t.Fatalf("seed %d: iterations exact=%d coarse=%d", seed, resExact.Iterations, resCoarse.Iterations)
	}
	if resExact.FinalPositives != resCoarse.FinalPositives {
		t.Fatalf("seed %d: final positives exact=%d coarse=%d",
			seed, resExact.FinalPositives, resCoarse.FinalPositives)
	}
	if len(resExact.Targets) != len(resCoarse.Targets) {
		t.Fatalf("seed %d: target counts exact=%d coarse=%d",
			seed, len(resExact.Targets), len(resCoarse.Targets))
	}
	for i := range resExact.Targets {
		if resExact.Targets[i] != resCoarse.Targets[i] {
			t.Fatalf("seed %d: target %d differs: exact=%d coarse=%d",
				seed, i, resExact.Targets[i], resCoarse.Targets[i])
		}
	}
	return resExact
}

func TestCoarseRefineRatio1MatchesRunFlowModel(t *testing.T) {
	mk := func() core.IncrementalPredictor {
		return core.MustNewModel(core.Config{Dims: []int{8, 8}, FCDims: []int{8}, NumClasses: 2, Seed: 71})
	}
	multi := 0
	for _, seed := range []int64{11, 12, 13} {
		if res := runCoarseEquivalence(t, seed, 1000, mk); res.Iterations >= 2 {
			multi++
		}
	}
	if multi == 0 {
		t.Fatal("no design ran more than one iteration; the coarse incremental path was never exercised")
	}
}

func TestCoarseRefineRatio1MatchesRunFlowMultiStage(t *testing.T) {
	mk := func() core.IncrementalPredictor {
		return &core.MultiStage{
			Stages: []*core.Model{
				core.MustNewModel(core.Config{Dims: []int{8, 8}, FCDims: []int{8}, NumClasses: 2, Seed: 81}),
				core.MustNewModel(core.Config{Dims: []int{8, 8}, FCDims: []int{8}, NumClasses: 2, Seed: 82}),
			},
			FilterBelow: 0.25,
		}
	}
	runCoarseEquivalence(t, 21, 1000, mk)
}

// TestCoarseMirrorMatchesReprojection drives real insertions through the
// live-coarsening mirror (AddObservationPoint + ReprojectRow) and checks
// the incrementally maintained coarse graph equals a from-scratch
// projection of the mutated fine graph, bit for bit.
func TestCoarseMirrorMatchesReprojection(t *testing.T) {
	n, meas, g := buildBench(t, 42, 600)
	c, err := coarsen.New(n, coarsen.Options{Strategy: coarsen.FFR, Ratio: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	cg := c.ProjectGraph(g)

	inserted := 0
	lv := append([]int32(nil), n.Levels()...)
	for v := int32(0); v < int32(len(lv)) && inserted < 5; v++ {
		if !insertable(n, v) {
			continue
		}
		_, touched, err := InsertAndRefresh(n, meas, g, v, lv)
		if err != nil {
			t.Fatal(err)
		}
		lv = append(lv, lv[v]+1)
		if _, err := c.AddObservationPoint(cg, v); err != nil {
			t.Fatal(err)
		}
		for _, u := range touched {
			c.ReprojectRow(cg, g, c.Owner[u])
		}
		inserted++
	}
	if inserted == 0 {
		t.Fatal("no insertable cell found")
	}
	if err := c.Validate(n); err != nil {
		t.Fatalf("live coarsening invalid after mirrored insertions: %v", err)
	}

	fresh := c.ProjectGraph(g)
	if cg.N != fresh.N {
		t.Fatalf("node counts differ: live %d, fresh %d", cg.N, fresh.N)
	}
	for s := 0; s < cg.N; s++ {
		lr, fr := cg.X.Row(s), fresh.X.Row(s)
		for k := range lr {
			if lr[k] != fr[k] {
				t.Fatalf("supernode %d attr %d: live %v, fresh %v", s, k, lr[k], fr[k])
			}
		}
		if cg.Labels[s] != fresh.Labels[s] {
			t.Fatalf("supernode %d label: live %d, fresh %d", s, cg.Labels[s], fresh.Labels[s])
		}
	}
	lp, fp := cg.Pred(), fresh.Pred()
	if len(lp.ColIdx) != len(fp.ColIdx) {
		t.Fatalf("edge counts differ: live %d, fresh %d", len(lp.ColIdx), len(fp.ColIdx))
	}
	for s := int32(0); s < int32(cg.N); s++ {
		lc, lval := cg.PredEntries(s)
		fc, fval := fresh.PredEntries(s)
		if len(lc) != len(fc) {
			t.Fatalf("supernode %d pred count: live %d, fresh %d", s, len(lc), len(fc))
		}
		for i := range lc {
			if lc[i] != fc[i] || lval[i] != fval[i] {
				t.Fatalf("supernode %d pred %d: live (%d,%v), fresh (%d,%v)",
					s, i, lc[i], lval[i], fc[i], fval[i])
			}
		}
	}
}

// TestCoarseRefineReducedRatioTerminates exercises the flow at a real
// reduction: it must terminate, insert only legal targets, and report
// the coarsening geometry.
func TestCoarseRefineReducedRatioTerminates(t *testing.T) {
	for _, strat := range []coarsen.Strategy{coarsen.FFR, coarsen.LevelCollapse} {
		n, meas, g := buildBench(t, 7, 1200)
		fine := g.N
		pred := core.MustNewModel(core.Config{Dims: []int{8, 8}, FCDims: []int{8}, NumClasses: 2, Seed: 5})
		thr := flowThreshold(g, pred, 0.05)
		res, err := RunCoarseRefine(n, meas, g, pred, CoarseRefineConfig{
			Coarsen: coarsen.Options{Strategy: strat, Ratio: 0.25},
			Regions: 8,
			Flow:    FlowConfig{Threshold: thr, PerIteration: 4, MaxIterations: 6},
		})
		if err != nil {
			t.Fatalf("%v: %v", strat, err)
		}
		if res.CoarseNodes >= fine {
			t.Fatalf("%v: no reduction: %d supernodes for %d cells", strat, res.CoarseNodes, fine)
		}
		if res.AchievedRatio < 0.25 || res.AchievedRatio > 1 {
			t.Fatalf("%v: achieved ratio %v out of range", strat, res.AchievedRatio)
		}
		if res.Iterations == 0 {
			t.Fatalf("%v: flow never iterated", strat)
		}
		seen := make(map[int32]bool)
		for _, v := range res.Targets {
			if seen[v] {
				t.Fatalf("%v: target %d inserted twice", strat, v)
			}
			seen[v] = true
			if int(v) >= fine {
				t.Fatalf("%v: target %d outside original design", strat, v)
			}
		}
		if err := n.Validate(); err != nil {
			t.Fatalf("%v: netlist invalid after flow: %v", strat, err)
		}
	}
}

func TestCoarseRefineRejectsBadOptions(t *testing.T) {
	n, meas, g := buildBench(t, 3, 200)
	pred := core.MustNewModel(core.Config{Dims: []int{6}, FCDims: []int{6}, NumClasses: 2, Seed: 1})
	if _, err := RunCoarseRefine(n, meas, g, pred, CoarseRefineConfig{
		Coarsen: coarsen.Options{Strategy: coarsen.FFR, Ratio: 0},
	}); err == nil {
		t.Fatal("ratio 0 accepted")
	}
}
