package refcheck

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/netlist"
	"repro/internal/scoap"
	"repro/internal/tensor"
)

// This file is the differential harness for the float32 inference mode
// (DESIGN.md decision 10): the f32 scoring path must track the exact
// float64 path within F32Tolerance on every node of every seeded
// circuit, and the MultiStage cascade must make the same filter/classify
// decisions wherever the float64 probability is not sitting on a
// threshold.

// F32Tolerance bounds the acceptable relative difference between the
// float32 and float64 inference paths. Float32 carries ~7 significant
// digits; three aggregate+encode layers plus the FC head accumulate to
// at most ~1e-5 on the probability scale, so anything above 1e-4 is a
// real kernel bug, not rounding.
const F32Tolerance = 1e-4

// ThresholdMargin is how far a float64 probability must sit from a
// decision threshold before the f32 path is required to make the same
// call; within the margin either decision is legitimate rounding.
const ThresholdMargin = 1e-3

// CheckModelF32 runs the exact float64 Predict and the float32 scoring
// path of one model over a netlist's graph and returns an error if any
// node's probability diverges beyond F32Tolerance.
func CheckModelF32(m *core.Model, n *netlist.Netlist) error {
	g := core.FromNetlist(n, scoap.Compute(n))
	p64 := m.Predict(g)
	c := m.Clone()
	c.SetFloat32Inference(true)
	p32 := c.Predict(g)
	return compareProbs("Model", p64, p32)
}

// CheckMultiStageF32 runs a cascade in both precisions and checks (a)
// the combined probabilities agree within F32Tolerance, and (b) the
// cascade decisions — stage filtering at FilterBelow and the final 0.5
// classification — agree on every node whose float64 stage probability
// is at least ThresholdMargin away from the threshold.
func CheckMultiStageF32(ms *core.MultiStage, n *netlist.Netlist) error {
	g := core.FromNetlist(n, scoap.Compute(n))
	p64 := ms.PredictProbs(g)
	c := ms.Clone()
	c.SetFloat32Inference(true)
	if !c.Float32Inference() {
		return fmt.Errorf("SetFloat32Inference(true) did not stick on the cascade clone")
	}
	p32 := c.PredictProbs(g)
	if err := compareProbs("MultiStage", p64, p32); err != nil {
		return err
	}
	// Per-stage threshold re-check: filtering decisions must agree off
	// the margin. Stage probabilities are recomputed here (stages are
	// independent GCNs, so this is exactly what PredictProbs consumed).
	for s, stage := range ms.Stages {
		s64 := stage.Predict(g)
		stage32 := c.Stages[s]
		s32 := stage32.Predict(g)
		thresh := ms.FilterBelow
		if s == len(ms.Stages)-1 {
			thresh = 0.5
		}
		for v := range s64 {
			if math.Abs(s64[v]-thresh) < ThresholdMargin {
				continue
			}
			if (s64[v] < thresh) != (s32[v] < thresh) {
				return fmt.Errorf("stage %d node %d: decision flip at threshold %.3g (f64 %.6g vs f32 %.6g)",
					s, v, thresh, s64[v], s32[v])
			}
		}
	}
	return nil
}

func compareProbs(kind string, p64, p32 []float64) error {
	if len(p64) != len(p32) {
		return fmt.Errorf("%s: f32 path returned %d probs, f64 %d", kind, len(p32), len(p64))
	}
	for v := range p64 {
		den := 1.0
		if m := math.Abs(p64[v]); m > den {
			den = m
		}
		if d := math.Abs(p64[v]-p32[v]) / den; d > F32Tolerance {
			return fmt.Errorf("%s node %d: f32 prob %.8g diverges from f64 %.8g by %g (tolerance %g)",
				kind, v, p32[v], p64[v], d, F32Tolerance)
		}
	}
	return nil
}

// MaxRelDiff32 is MaxRelDiff with a float32 left-hand side, for
// comparing f32 kernel outputs against float64 references.
func MaxRelDiff32(a *tensor.Dense32, b *tensor.Dense) float64 {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic("refcheck: MaxRelDiff32 shape mismatch")
	}
	var worst float64
	for i, av32 := range a.Data {
		av, bv := float64(av32), b.Data[i]
		den := 1.0
		if m := math.Abs(av); m > den {
			den = m
		}
		if m := math.Abs(bv); m > den {
			den = m
		}
		if d := math.Abs(av-bv) / den; d > worst {
			worst = d
		}
	}
	return worst
}
