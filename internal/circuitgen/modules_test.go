package circuitgen

import (
	"testing"

	"repro/internal/fault"
	"repro/internal/netlist"
)

// evalWith simulates the netlist for up to 64 patterns whose source
// values are given per input, returning the value words of all cells.
func evalWith(n *netlist.Netlist, words map[int32]uint64) []uint64 {
	sim := fault.NewSimulator(n)
	sim.BatchFrom(func(id int32) uint64 { return words[id] })
	return sim.Values()
}

// makeOperand creates `bits` primary inputs and returns their IDs.
func makeOperand(n *netlist.Netlist, bits int, name string) []int32 {
	out := make([]int32, bits)
	for i := range out {
		out[i] = n.MustAddGate(netlist.Input, "")
	}
	return out
}

// enumerate2 fills input words so that the 64 lanes enumerate all
// combinations of aBits+bBits ≤ 6 input bits.
func enumerate2(a, b []int32) map[int32]uint64 {
	words := make(map[int32]uint64)
	total := len(a) + len(b)
	if total > 6 {
		panic("enumerate2 supports at most 6 bits")
	}
	for lane := 0; lane < 1<<total; lane++ {
		for i, id := range a {
			if lane>>uint(i)&1 == 1 {
				words[id] |= 1 << uint(lane)
			}
		}
		for i, id := range b {
			if lane>>uint(len(a)+i)&1 == 1 {
				words[id] |= 1 << uint(lane)
			}
		}
	}
	return words
}

func bitsToInt(vals []uint64, ids []int32, lane int) int {
	out := 0
	for i, id := range ids {
		if vals[id]>>uint(lane)&1 == 1 {
			out |= 1 << uint(i)
		}
	}
	return out
}

func TestRippleCarryAdderExhaustive(t *testing.T) {
	n := netlist.New("add")
	a := makeOperand(n, 3, "a")
	b := makeOperand(n, 3, "b")
	zero := constantZero(n, a[0])
	sum, cout := AppendRippleCarryAdder(n, a, b, zero)
	for _, s := range sum {
		n.MustAddGate(netlist.Output, "", s)
	}
	n.MustAddGate(netlist.Output, "", cout)
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}

	vals := evalWith(n, enumerate2(a, b))
	outs := append(append([]int32(nil), sum...), cout)
	for lane := 0; lane < 64; lane++ {
		av := bitsToInt(vals, a, lane)
		bv := bitsToInt(vals, b, lane)
		got := bitsToInt(vals, outs, lane)
		if got != av+bv {
			t.Fatalf("lane %d: %d+%d = %d, got %d", lane, av, bv, av+bv, got)
		}
	}
}

func TestArrayMultiplierExhaustive(t *testing.T) {
	n := netlist.New("mul")
	a := makeOperand(n, 3, "a")
	b := makeOperand(n, 3, "b")
	prod := AppendArrayMultiplier(n, a, b)
	for _, p := range prod {
		n.MustAddGate(netlist.Output, "", p)
	}
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}

	vals := evalWith(n, enumerate2(a, b))
	for lane := 0; lane < 64; lane++ {
		av := bitsToInt(vals, a, lane)
		bv := bitsToInt(vals, b, lane)
		got := bitsToInt(vals, prod, lane)
		if got != av*bv {
			t.Fatalf("lane %d: %d*%d = %d, got %d", lane, av, bv, av*bv, got)
		}
	}
}

func TestEqualityComparatorExhaustive(t *testing.T) {
	n := netlist.New("eq")
	a := makeOperand(n, 3, "a")
	b := makeOperand(n, 3, "b")
	eq := AppendEqualityComparator(n, a, b)
	n.MustAddGate(netlist.Output, "", eq)

	vals := evalWith(n, enumerate2(a, b))
	for lane := 0; lane < 64; lane++ {
		av := bitsToInt(vals, a, lane)
		bv := bitsToInt(vals, b, lane)
		got := vals[eq]>>uint(lane)&1 == 1
		if got != (av == bv) {
			t.Fatalf("lane %d: eq(%d,%d) = %v", lane, av, bv, got)
		}
	}
}

func TestMux2Exhaustive(t *testing.T) {
	n := netlist.New("mux")
	sel := n.MustAddGate(netlist.Input, "sel")
	a := makeOperand(n, 2, "a")
	b := makeOperand(n, 2, "b")
	out := AppendMux2(n, sel, a, b)
	for _, o := range out {
		n.MustAddGate(netlist.Output, "", o)
	}

	words := enumerate2(a, b)
	// sel toggles on lanes ≥ 16 (bit 4 of the 5-bit enumeration space).
	for lane := 0; lane < 32; lane++ {
		if lane >= 16 {
			words[sel] |= 1 << uint(lane)
		}
	}
	vals := evalWith(n, words)
	for lane := 0; lane < 32; lane++ {
		av := bitsToInt(vals, a, lane)
		bv := bitsToInt(vals, b, lane)
		want := av
		if lane >= 16 {
			want = bv
		}
		if got := bitsToInt(vals, out, lane); got != want {
			t.Fatalf("lane %d: mux = %d, want %d", lane, got, want)
		}
	}
}

func TestParityTree(t *testing.T) {
	n := netlist.New("par")
	in := makeOperand(n, 5, "in")
	p := AppendParityTree(n, in)
	n.MustAddGate(netlist.Output, "", p)
	words := make(map[int32]uint64)
	for lane := 0; lane < 32; lane++ {
		for i, id := range in {
			if lane>>uint(i)&1 == 1 {
				words[id] |= 1 << uint(lane)
			}
		}
	}
	vals := evalWith(n, words)
	for lane := 0; lane < 32; lane++ {
		pop := 0
		for i := range in {
			pop += lane >> uint(i) & 1
		}
		got := vals[p]>>uint(lane)&1 == 1
		if got != (pop%2 == 1) {
			t.Fatalf("lane %d: parity = %v, want %v", lane, got, pop%2 == 1)
		}
	}
}

func TestModulePanics(t *testing.T) {
	n := netlist.New("p")
	a := makeOperand(n, 2, "a")
	for name, f := range map[string]func(){
		"adder":      func() { AppendRippleCarryAdder(n, a, a[:1], a[0]) },
		"multiplier": func() { AppendArrayMultiplier(n, nil, a) },
		"comparator": func() { AppendEqualityComparator(n, a, a[:1]) },
		"mux":        func() { AppendMux2(n, a[0], a, a[:1]) },
		"parity":     func() { AppendParityTree(n, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: mismatched operands should panic", name)
				}
			}()
			f()
		}()
	}
}
