package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
)

func TestMetricsHandlerPrometheusText(t *testing.T) {
	withEnabled(t, func() {
		GetCounter("spmm.rows").Add(1234)
		GetGauge("train.workers").Set(4)
		h := GetHistogram("opi.positives")
		h.Observe(3)
		h.Observe(17)

		rec := httptest.NewRecorder()
		MetricsHandler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
		if rec.Code != http.StatusOK {
			t.Fatalf("status = %d", rec.Code)
		}
		if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
			t.Errorf("content type = %q", ct)
		}
		body := rec.Body.String()

		for _, want := range []string{
			"# TYPE repro_spmm_rows_total counter",
			"repro_spmm_rows_total 1234",
			"# TYPE repro_train_workers gauge",
			"repro_train_workers 4",
			"# TYPE repro_opi_positives histogram",
			`repro_opi_positives_bucket{le="3"} 1`,
			`repro_opi_positives_bucket{le="17"} 2`, // cumulative; 17 is its own log-linear bucket
			`repro_opi_positives_bucket{le="+Inf"} 2`,
			"repro_opi_positives_sum 20",
			"repro_opi_positives_count 2",
		} {
			if !strings.Contains(body, want) {
				t.Errorf("exposition missing %q:\n%s", want, body)
			}
		}
		if err := checkPrometheusText(body); err != nil {
			t.Errorf("exposition not parseable: %v\n%s", err, body)
		}
	})
}

// checkPrometheusText is a minimal exposition-format parser: every
// non-comment line must be `name{labels}? value` with a numeric value,
// and every sample must be preceded by a # TYPE for its metric family.
func checkPrometheusText(body string) error {
	typed := map[string]string{}
	for ln, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		if line == "" {
			return fmt.Errorf("line %d: empty line inside exposition", ln+1)
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				return fmt.Errorf("line %d: malformed TYPE: %q", ln+1, line)
			}
			typed[parts[2]] = parts[3]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			return fmt.Errorf("line %d: no sample value: %q", ln+1, line)
		}
		if _, err := strconv.ParseFloat(line[sp+1:], 64); err != nil {
			return fmt.Errorf("line %d: bad value %q: %v", ln+1, line[sp+1:], err)
		}
		name := line[:sp]
		if i := strings.IndexByte(name, '{'); i >= 0 {
			if !strings.HasSuffix(name, "}") {
				return fmt.Errorf("line %d: unterminated labels: %q", ln+1, line)
			}
			name = name[:i]
		}
		family := name
		for _, suffix := range []string{"_bucket", "_sum", "_count", "_total"} {
			if f, ok := strings.CutSuffix(name, suffix); ok && typed[f] != "" {
				family = f
				break
			}
		}
		if typed[family] == "" {
			return fmt.Errorf("line %d: sample %q has no # TYPE", ln+1, name)
		}
	}
	return nil
}

func TestSnapshotHandlerJSON(t *testing.T) {
	withEnabled(t, func() {
		GetCounter("faultsim.batches").Add(7)
		StartSpan("opi").End()
		Event("train.epoch", I("epoch", 2), F("loss", 0.25))

		rec := httptest.NewRecorder()
		SnapshotHandler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/snapshot", nil))
		if rec.Code != http.StatusOK {
			t.Fatalf("status = %d", rec.Code)
		}
		if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
			t.Errorf("content type = %q", ct)
		}
		var snap Snapshot
		if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
			t.Fatalf("snapshot is not valid JSON: %v", err)
		}
		if snap.Counters["faultsim.batches"] != 7 {
			t.Errorf("counters = %v", snap.Counters)
		}
		if len(snap.Spans) != 1 || snap.Spans[0].Name != "opi" {
			t.Errorf("spans = %+v", snap.Spans)
		}
		if len(snap.Events) != 1 || snap.Events[0].Name != "train.epoch" {
			t.Fatalf("events = %+v", snap.Events)
		}
		if snap.Events[0].Attrs["loss"] != 0.25 {
			t.Errorf("event attrs = %v", snap.Events[0].Attrs)
		}
	})
}

func TestRegisterHTTPServesBothEndpoints(t *testing.T) {
	withEnabled(t, func() {
		GetCounter("spmm.calls").Add(3)
		mux := http.NewServeMux()
		RegisterHTTP(mux)
		srv := httptest.NewServer(mux)
		defer srv.Close()

		resp, err := http.Get(srv.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("read metrics: %v", err)
		}
		if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "repro_spmm_calls_total 3") {
			t.Errorf("/metrics status=%d body:\n%s", resp.StatusCode, body)
		}

		resp, err = http.Get(srv.URL + "/snapshot")
		if err != nil {
			t.Fatal(err)
		}
		var snap Snapshot
		err = json.NewDecoder(resp.Body).Decode(&snap)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("decode snapshot: %v", err)
		}
		if resp.StatusCode != http.StatusOK || snap.Counters["spmm.calls"] != 3 {
			t.Errorf("/snapshot status=%d counters=%v", resp.StatusCode, snap.Counters)
		}
	})
}
