package netlist

import "fmt"

// This file implements control point (CP) insertion. The paper focuses
// its evaluation on observation points but notes (Section 2.2) that the
// approach "is generic and can be applied to both CPs insertion and OPs
// insertion"; this is the netlist-level support for the CP half.
//
// A control point intercepts a net with a test-mode gate driven by a new
// primary input:
//
//	CP1 (force-1): net' = OR(net, cp)   — cp=0 is normal operation
//	CP0 (force-0): net' = AND(net, cp)  — cp=1 is normal operation
//
// Because cell IDs are topological and loads of the target precede the
// new gate in no particular order, CP insertion cannot be expressed as an
// append; InsertControlPoints therefore rebuilds the netlist once for a
// whole batch, remapping IDs.

// CPKind selects the forced value of a control point.
type CPKind uint8

const (
	// CP0 forces the net to 0 when the control input is driven to 0.
	CP0 CPKind = iota
	// CP1 forces the net to 1 when the control input is driven to 1.
	CP1
)

// String returns "CP0" or "CP1".
func (k CPKind) String() string {
	if k == CP0 {
		return "CP0"
	}
	return "CP1"
}

// ControlPoint requests a control point on the output net of Target.
type ControlPoint struct {
	Target int32
	Kind   CPKind
}

// CPResult reports the inserted cells of one control point, in the new
// netlist's ID space.
type CPResult struct {
	// Control is the new primary input.
	Control int32
	// Gate is the inserted OR/AND cell that now drives the old loads.
	Gate int32
	// Target is the remapped ID of the original driver.
	Target int32
}

// InsertControlPoints returns a new netlist in which every requested net
// is intercepted by a control point, plus the inserted cell IDs and a
// remap slice translating old IDs to new ones. Multiple control points
// on the same target are rejected.
func (n *Netlist) InsertControlPoints(cps []ControlPoint) (*Netlist, []CPResult, []int32, error) {
	byTarget := make(map[int32]int, len(cps))
	for i, cp := range cps {
		if cp.Target < 0 || int(cp.Target) >= len(n.gates) {
			return nil, nil, nil, fmt.Errorf("netlist: control point target %d out of range", cp.Target)
		}
		switch n.gates[cp.Target].Type {
		case Output, Obs:
			return nil, nil, nil, fmt.Errorf("netlist: cannot control sink cell %d", cp.Target)
		}
		if _, dup := byTarget[cp.Target]; dup {
			return nil, nil, nil, fmt.Errorf("netlist: duplicate control point on %d", cp.Target)
		}
		byTarget[cp.Target] = i
	}

	out := New(n.Name)
	remap := make([]int32, len(n.gates))
	results := make([]CPResult, len(cps))
	// driver[old] is the cell that loads of old should now reference:
	// either the remapped cell itself or its control-point gate.
	driver := make([]int32, len(n.gates))

	for old := range n.gates {
		g := &n.gates[old]
		fanin := make([]int32, len(g.Fanin))
		for i, f := range g.Fanin {
			fanin[i] = driver[f]
		}
		id, err := out.AddGate(g.Type, g.Name, fanin...)
		if err != nil {
			return nil, nil, nil, err
		}
		remap[old] = id
		driver[old] = id

		if ci, ok := byTarget[int32(old)]; ok {
			cp := cps[ci]
			ctl := out.MustAddGate(Input, fmt.Sprintf("cp%d_%d", cp.Kind, old))
			typ := And
			if cp.Kind == CP1 {
				typ = Or
			}
			gate := out.MustAddGate(typ, fmt.Sprintf("cpg_%d", old), id, ctl)
			results[ci] = CPResult{Control: ctl, Gate: gate, Target: id}
			driver[old] = gate
		}
	}
	return out, results, remap, nil
}
