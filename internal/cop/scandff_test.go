package cop

import (
	"testing"

	"repro/internal/netlist"
)

// TestDFFOutputObservability is the minimized regression for the
// scan-boundary bug the differential harness (internal/refcheck)
// surfaced: the backward pass handled the flop's data input but never
// assigned the flop's own output observability, so every DFF output
// reported Obs = 0 even when it drove a primary output directly.
func TestDFFOutputObservability(t *testing.T) {
	n := netlist.New("scan-dff")
	a := n.MustAddGate(netlist.Input, "a")
	d := n.MustAddGate(netlist.DFF, "d", a)
	b := n.MustAddGate(netlist.Buf, "b", d)
	n.MustAddGate(netlist.Output, "z", b)

	m := Compute(n)
	if m.Obs[d] != 1 {
		t.Fatalf("DFF output obs = %v, want 1 (directly drives the output through a buffer)", m.Obs[d])
	}
	// The flop's data input is observed via scan capture regardless of
	// downstream logic.
	if m.Obs[a] != 1 {
		t.Fatalf("flop data-input obs = %v, want 1 (scan capture)", m.Obs[a])
	}

	// Partially observed variant: the flop output also feeds an AND
	// whose other leg gates propagation, so its obs must be strictly
	// between 0 and 1 — not the constant 0 the bug produced, and not a
	// sink-like 1 either.
	n2 := netlist.New("scan-dff-and")
	x := n2.MustAddGate(netlist.Input, "x")
	g := n2.MustAddGate(netlist.Input, "g")
	q := n2.MustAddGate(netlist.DFF, "q", x)
	y := n2.MustAddGate(netlist.And, "y", q, g)
	n2.MustAddGate(netlist.Output, "z", y)

	m2 := Compute(n2)
	if got := m2.Obs[q]; got != 0.5 {
		t.Fatalf("gated DFF output obs = %v, want 0.5 (AND side input is 1 half the time)", got)
	}
}
