// Package repro_test hosts the repository-level benchmark harness: one
// testing.B benchmark per table and figure of the paper's evaluation
// (each delegating to internal/experiments in Quick mode), plus ablation
// benchmarks for the design decisions DESIGN.md calls out. Run with
//
//	go test -bench=. -benchmem
//
// Full-size regeneration of the paper's numbers is cmd/experiments.
package repro_test

import (
	"math/rand"
	"testing"

	"repro/internal/circuitgen"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/fault"
	"repro/internal/scoap"
	"repro/internal/sparse"
	"repro/internal/tensor"
)

func quickCfg(i int) experiments.Config {
	return experiments.Config{Quick: true, Seed: int64(100 + i)}
}

// BenchmarkTable1DatasetGeneration regenerates the benchmark suite and
// its statistics (Table 1).
func BenchmarkTable1DatasetGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Table1(quickCfg(i))
	}
}

// BenchmarkFig8TrainingDepth runs the search-depth study (Figure 8).
func BenchmarkFig8TrainingDepth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig8(quickCfg(i))
	}
}

// BenchmarkTable2Classifiers runs the balanced-set classifier comparison
// (Table 2): LR, RF, SVM, MLP on cone features vs. the GCN.
func BenchmarkTable2Classifiers(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Table2(quickCfg(i))
	}
}

// BenchmarkFig9MultiStage runs the imbalanced F1 comparison (Figure 9).
func BenchmarkFig9MultiStage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig9(quickCfg(i))
	}
}

// BenchmarkFig10MatrixInference times full-graph matrix inference at the
// Figure 10 mid-size point.
func BenchmarkFig10MatrixInference(b *testing.B) {
	n := circuitgen.Generate("f10m", circuitgen.Config{Seed: 1, NumGates: 20000})
	g := core.FromNetlist(n, scoap.Compute(n))
	model := core.MustNewModel(core.DefaultConfig())
	model.Forward(g) // build CSR once
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		model.Forward(g)
	}
}

// BenchmarkFig10RecursiveInference times the prior-work recursion [12]
// per node at the same point; multiply by N for the full-graph cost the
// figure plots.
func BenchmarkFig10RecursiveInference(b *testing.B) {
	n := circuitgen.Generate("f10r", circuitgen.Config{Seed: 1, NumGates: 20000})
	g := core.FromNetlist(n, scoap.Compute(n))
	model := core.MustNewModel(core.DefaultConfig())
	rng := rand.New(rand.NewSource(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		model.InferNodeRecursive(g, int32(rng.Intn(g.N)))
	}
}

// BenchmarkTable3OPIFlow runs the full testability comparison (Table 3):
// cascade training, both insertion flows and fault-simulation scoring.
func BenchmarkTable3OPIFlow(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Table3(quickCfg(i))
	}
}

// --- Ablation benchmarks -------------------------------------------------

// BenchmarkAblationCOOvsCSR quantifies the COO→CSR conversion payoff for
// the SpMM at the heart of inference (DESIGN.md decision 2).
func BenchmarkAblationCOOMul(b *testing.B) {
	n := circuitgen.Generate("ab1", circuitgen.Config{Seed: 3, NumGates: 20000})
	g := core.FromNetlist(n, scoap.Compute(n))
	x := tensor.NewDense(g.N, 32)
	rng := rand.New(rand.NewSource(1))
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	dst := tensor.NewDense(g.N, 32)
	coo := g.PredCOO()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		coo.MulDense(dst, x)
	}
}

func BenchmarkAblationCSRMul(b *testing.B) {
	n := circuitgen.Generate("ab1", circuitgen.Config{Seed: 3, NumGates: 20000})
	g := core.FromNetlist(n, scoap.Compute(n))
	x := tensor.NewDense(g.N, 32)
	rng := rand.New(rand.NewSource(1))
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	dst := tensor.NewDense(g.N, 32)
	csr := g.Pred()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		csr.MulDense(dst, x)
	}
}

// BenchmarkAblationSpMMParallel measures the goroutine-parallel SpMM
// (the multi-GPU stand-in) against the serial kernel.
func BenchmarkAblationSpMMParallel(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	coo := sparse.NewCOO(100000, 100000)
	for i := 0; i < 300000; i++ {
		coo.Append(int32(rng.Intn(100000)), int32(rng.Intn(100000)), 1)
	}
	csr := coo.ToCSR()
	x := tensor.NewDense(100000, 16)
	dst := tensor.NewDense(100000, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		csr.MulDenseParallel(dst, x, 0)
	}
}

// BenchmarkAblationIncrementalSCOAP compares the incremental fan-in-cone
// observability update against a full recompute after one insertion
// (DESIGN.md's incremental-update decision; Section 4 of the paper).
func BenchmarkAblationIncrementalSCOAP(b *testing.B) {
	n := circuitgen.Generate("ab2", circuitgen.Config{Seed: 4, NumGates: 20000})
	m := scoap.Compute(n)
	op, err := n.InsertObservationPoint(int32(n.NumGates() / 3))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.UpdateAfterObservationPoint(n, op)
	}
}

func BenchmarkAblationFullSCOAPRecompute(b *testing.B) {
	n := circuitgen.Generate("ab2", circuitgen.Config{Seed: 4, NumGates: 20000})
	if _, err := n.InsertObservationPoint(int32(n.NumGates() / 3)); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		scoap.Compute(n)
	}
}

// BenchmarkAblationFaultSimulation measures the 64-way bit-parallel
// simulation batch that underlies labeling and Table 3 scoring.
func BenchmarkAblationFaultSimulation(b *testing.B) {
	n := circuitgen.Generate("ab3", circuitgen.Config{Seed: 5, NumGates: 50000})
	sim := fault.NewSimulator(n)
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Batch(rng)
	}
}
