package tensor

import (
	"math"
	"math/rand"
	"testing"
)

func randDense64(rng *rand.Rand, r, c int) *Dense {
	d := NewDense(r, c)
	for i := range d.Data {
		d.Data[i] = rng.NormFloat64()
	}
	return d
}

// TestFromDenseRoundTrip checks conversion both ways: narrowing rounds
// once, widening is exact.
func TestFromDenseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := randDense64(rng, 7, 9)
	f := FromDense(d)
	for i, v := range f.Data {
		if v != float32(d.Data[i]) {
			t.Fatalf("FromDense element %d: %g != float32(%g)", i, v, d.Data[i])
		}
	}
	back := f.ToDense()
	for i, v := range back.Data {
		if v != float64(f.Data[i]) {
			t.Fatalf("ToDense element %d not exact", i)
		}
	}
	var g Dense32
	g = *NewDense32(7, 9)
	g.CopyFromDense(d)
	for i := range g.Data {
		if g.Data[i] != f.Data[i] {
			t.Fatalf("CopyFromDense differs from FromDense at %d", i)
		}
	}
}

// TestMatMul32MatchesFloat64 checks the f32 matmul (including the
// zero-skip fast path for post-ReLU sparse rows) against the f64 kernel
// within f32 tolerance.
func TestMatMul32MatchesFloat64(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 40; trial++ {
		m, k, n := 1+rng.Intn(20), 1+rng.Intn(20), 1+rng.Intn(20)
		a := randDense64(rng, m, k)
		// Sprinkle exact zeros (and whole zero rows) to exercise the
		// zero-skip and the first-write path.
		for i := range a.Data {
			if rng.Intn(3) == 0 {
				a.Data[i] = 0
			}
		}
		if m > 1 {
			copy(a.Row(0), make([]float64, k))
		}
		b := randDense64(rng, k, n)
		want := NewDense(m, n)
		MatMul(want, a, b)
		got := NewDense32(m, n)
		// Pre-poison dst: the kernel must fully overwrite it.
		for i := range got.Data {
			got.Data[i] = float32(math.NaN())
		}
		MatMul32(got, FromDense(a), FromDense(b))
		if d := MaxAbsDiff32(got, want); d > 1e-4 {
			t.Fatalf("trial %d: MatMul32 off by %g", trial, d)
		}
	}
}

// TestDense32Elementwise covers the small kernels used by the f32
// forward path.
func TestDense32Elementwise(t *testing.T) {
	d := NewDense32(2, 3)
	d.Set(0, 0, -1)
	d.Set(1, 2, 2)
	if d.At(1, 2) != 2 {
		t.Fatal("At/Set broken")
	}
	d.AddRowVector([]float32{1, 0, 0})
	if d.At(0, 0) != 0 || d.At(1, 0) != 1 {
		t.Fatal("AddRowVector broken")
	}
	d.Set(0, 1, -5)
	d.ReLUInPlace()
	if d.At(0, 1) != 0 || d.At(1, 2) != 2 {
		t.Fatal("ReLUInPlace broken")
	}
	o := NewDense32(2, 3)
	o.Set(0, 0, 4)
	d.AxpyInPlace(0.5, o)
	if d.At(0, 0) != 2 {
		t.Fatal("AxpyInPlace broken")
	}
	c := NewDense32(2, 3)
	c.CopyFrom(d)
	if c.At(0, 0) != 2 || c.At(1, 2) != 2 {
		t.Fatal("CopyFrom broken")
	}
	d.Zero()
	for _, v := range d.Data {
		if v != 0 {
			t.Fatal("Zero broken")
		}
	}
}

// TestDense32ShapePanics pins the shape validation.
func TestDense32ShapePanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s should panic", name)
			}
		}()
		f()
	}
	a, b := NewDense32(2, 3), NewDense32(3, 2)
	mustPanic("NewDense32 negative", func() { NewDense32(-1, 2) })
	mustPanic("MatMul32 shape", func() { MatMul32(NewDense32(2, 2), a, a) })
	mustPanic("CopyFrom shape", func() { a.CopyFrom(b) })
	mustPanic("Axpy shape", func() { a.AxpyInPlace(1, b) })
	mustPanic("AddRowVector shape", func() { a.AddRowVector([]float32{1}) })
	mustPanic("MaxAbsDiff32 shape", func() { MaxAbsDiff32(a, NewDense(3, 2)) })
}
