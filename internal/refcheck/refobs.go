package refcheck

import (
	"fmt"
	"math/bits"

	"repro/internal/fault"
	"repro/internal/netlist"
)

// This file measures exact observability by brute force: every input
// assignment of a small circuit is enumerated, and a cell counts as
// observed under an assignment when flipping its value changes some
// observation sink. This is the ground truth behind both the empirical
// critical-path-tracing counts (package fault) and the analytic
// SCOAP/COP heuristics, and the tests in this package assert the
// structural invariants that must always relate them.

// MaxExhaustiveSources bounds the brute-force enumeration; 2^16
// assignments over a few dozen gates is the practical ceiling for a
// unit-test budget.
const MaxExhaustiveSources = 16

// Sources returns the controllable sources (primary inputs and scan
// flip-flop outputs) of the netlist in topological order — the bit
// order used by exhaustive enumeration.
func Sources(n *netlist.Netlist) []int32 {
	var out []int32
	for _, id := range n.TopoOrder() {
		if n.Type(id).IsControllableSource() {
			out = append(out, id)
		}
	}
	return out
}

// ExactObsCounts enumerates every assignment of the circuit's
// controllable sources and returns, per cell, in how many assignments
// the cell's output value is observable (flipping it changes at least
// one sink response), together with the total number of assignments.
// Sink cells themselves (Output/Obs) are reported as 0: their "output"
// is never re-read by any response, so flipping it is meaningless.
func ExactObsCounts(n *netlist.Netlist) (counts []int, total int, err error) {
	srcs := Sources(n)
	if len(srcs) > MaxExhaustiveSources {
		return nil, 0, fmt.Errorf("refcheck: %d controllable sources exceeds exhaustive limit %d", len(srcs), MaxExhaustiveSources)
	}
	total = 1 << len(srcs)
	counts = make([]int, n.NumGates())
	assign := make(map[int32]bool, len(srcs))
	for p := 0; p < total; p++ {
		for i, s := range srcs {
			assign[s] = p>>i&1 == 1
		}
		src := func(id int32) bool { return assign[id] }
		vals := EvalPattern(n, src)
		good := SinkValues(n, vals)
		for id := int32(0); id < int32(n.NumGates()); id++ {
			t := n.Type(id)
			if t == netlist.Output || t == netlist.Obs {
				continue
			}
			bad := SinkValues(n, EvalPatternWithFault(n, src, id, !vals[id]))
			for i := range good {
				if good[i] != bad[i] {
					counts[id]++
					break
				}
			}
		}
	}
	return counts, total, nil
}

// CPTObsCounts measures the same per-cell observability counts with the
// production bit-parallel simulator's critical-path-tracing criterion,
// enumerating the identical exhaustive assignment space (packed 64
// lanes per batch). On fanout-free circuits it must equal
// ExactObsCounts; under reconvergent fanout the OR-merge at fanout
// stems makes it an approximation.
func CPTObsCounts(n *netlist.Netlist) (counts []int, total int, err error) {
	srcs := Sources(n)
	if len(srcs) > MaxExhaustiveSources {
		return nil, 0, fmt.Errorf("refcheck: %d controllable sources exceeds exhaustive limit %d", len(srcs), MaxExhaustiveSources)
	}
	total = 1 << len(srcs)
	counts = make([]int, n.NumGates())
	sim := fault.NewSimulator(n)
	words := make(map[int32]uint64, len(srcs))
	for base := 0; base < total; base += 64 {
		lanes := total - base
		if lanes > 64 {
			lanes = 64
		}
		for i, s := range srcs {
			var w uint64
			for l := 0; l < lanes; l++ {
				if (base+l)>>i&1 == 1 {
					w |= 1 << uint(l)
				}
			}
			words[s] = w
		}
		sim.BatchFrom(func(id int32) uint64 { return words[id] })
		valid := ^uint64(0)
		if lanes < 64 {
			valid = 1<<uint(lanes) - 1
		}
		for id, o := range sim.Obs() {
			counts[id] += bits.OnesCount64(o & valid)
		}
	}
	return counts, total, nil
}

// IsFanoutFree reports whether every non-sink cell drives at most one
// load — the tree-structured class of circuits on which critical path
// tracing and COP are both provably exact.
func IsFanoutFree(n *netlist.Netlist) bool {
	for id := int32(0); id < int32(n.NumGates()); id++ {
		if len(n.Fanout(id)) > 1 {
			return false
		}
	}
	return true
}
