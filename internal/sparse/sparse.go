// Package sparse implements the sparse matrix machinery at the heart of
// the paper's "high performance" inference scheme (Section 3.4.1): the
// netlist adjacency is stored in coordinate (COO) format — a list of
// (value, row, col) tuples that supports the O(1) incremental appends the
// iterative insertion flow needs — and converted to compressed sparse row
// (CSR) for fast sparse×dense products (SpMM).
//
// Both formats multiply against dense matrices; CSR additionally offers a
// transpose product (used by backpropagation) and a goroutine-parallel
// SpMM standing in for the paper's GPU kernels.
package sparse

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
	"repro/internal/tensor"
)

// Hot-path metrics (no-ops until obs.Enable; see docs/OBSERVABILITY.md).
var (
	spmmRows          = obs.GetCounter("spmm.rows")
	spmmCalls         = obs.GetCounter("spmm.calls")
	spmmParallelCalls = obs.GetCounter("spmm.parallel_calls")
	spmmF32Calls      = obs.GetCounter("spmm.f32_calls")
)

// COO is a sparse matrix in coordinate format. Duplicate (row,col)
// entries are allowed and are summed by multiplication and by CSR
// conversion, matching the usual COO semantics.
type COO struct {
	// NumRows and NumCols are the logical matrix dimensions.
	NumRows, NumCols int
	// Rows and Cols hold the coordinate of each stored tuple.
	Rows, Cols []int32
	// Vals holds each tuple's value, parallel to Rows/Cols.
	Vals []float64
}

// NewCOO returns an empty r×c COO matrix.
func NewCOO(r, c int) *COO {
	return &COO{NumRows: r, NumCols: c}
}

// Append adds one (value, row, col) tuple. This is the incremental
// construction primitive the paper's flow relies on when observation
// points modify the graph.
func (m *COO) Append(row, col int32, v float64) {
	if row < 0 || int(row) >= m.NumRows || col < 0 || int(col) >= m.NumCols {
		panic(fmt.Sprintf("sparse: Append(%d,%d) outside the current %d×%d bounds (note: Grow never shrinks)",
			row, col, m.NumRows, m.NumCols))
	}
	m.Rows = append(m.Rows, row)
	m.Cols = append(m.Cols, col)
	m.Vals = append(m.Vals, v)
}

// Grow enlarges the logical dimensions (never shrinks); used when new
// graph nodes are appended by observation point insertion. Negative
// arguments are rejected loudly — they are always a caller bug, and
// silently ignoring them used to surface later as a confusing Append
// panic against the unchanged bounds.
func (m *COO) Grow(rows, cols int) {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("sparse: Grow(%d,%d) with negative dimensions", rows, cols))
	}
	if rows > m.NumRows {
		m.NumRows = rows
	}
	if cols > m.NumCols {
		m.NumCols = cols
	}
}

// NNZ returns the number of stored tuples.
func (m *COO) NNZ() int { return len(m.Vals) }

// Clone deep-copies the matrix.
func (m *COO) Clone() *COO {
	return &COO{
		NumRows: m.NumRows, NumCols: m.NumCols,
		Rows: append([]int32(nil), m.Rows...),
		Cols: append([]int32(nil), m.Cols...),
		Vals: append([]float64(nil), m.Vals...),
	}
}

// MulDense computes dst = m·x by scattering tuples; dst must be
// NumRows×x.Cols. COO multiplication requires no conversion, which is
// what makes the incremental flow cheap between insertions.
func (m *COO) MulDense(dst, x *tensor.Dense) {
	if x.Rows != m.NumCols || dst.Rows != m.NumRows || dst.Cols != x.Cols {
		panic("sparse: COO MulDense shape mismatch")
	}
	dst.Zero()
	for i, v := range m.Vals {
		r, c := m.Rows[i], m.Cols[i]
		drow := dst.Row(int(r))
		xrow := x.Row(int(c))
		for j, xv := range xrow {
			drow[j] += v * xv
		}
	}
}

// ToCSR converts to CSR, summing duplicates.
func (m *COO) ToCSR() *CSR { return m.ToCSRInto(nil) }

// ToCSRInto is ToCSR writing into dst's backing arrays when their
// capacity allows, reallocating with headroom otherwise. A nil dst
// allocates fresh. Returns dst. The incremental OPI loop rebuilds the
// adjacency CSR after every insertion; reusing the previous build's
// arrays makes the rebuild allocation-free in steady state. dst must
// not be read concurrently with the conversion, and must not alias a
// CSR the caller still needs.
func (m *COO) ToCSRInto(dst *CSR) *CSR {
	if dst == nil {
		dst = &CSR{}
	}
	dst.NumRows, dst.NumCols = m.NumRows, m.NumCols
	dst.RowPtr = growInt32(dst.RowPtr, m.NumRows+1)
	dst.ColIdx = growInt32(dst.ColIdx, len(m.Vals))
	dst.Vals = growFloat64(dst.Vals, len(m.Vals))
	rowPtr := dst.RowPtr
	for i := range rowPtr {
		rowPtr[i] = 0
	}
	for _, r := range m.Rows {
		rowPtr[r+1]++
	}
	for i := 1; i <= m.NumRows; i++ {
		rowPtr[i] += rowPtr[i-1]
	}
	// Scatter with rowPtr[r] as the per-row write cursor, then shift the
	// cursors (now row ends) back into start form — a counting-sort trick
	// that removes the per-call `next` scratch array the old code kept.
	for i, v := range m.Vals {
		r := m.Rows[i]
		p := rowPtr[r]
		dst.ColIdx[p] = m.Cols[i]
		dst.Vals[p] = v
		rowPtr[r] = p + 1
	}
	copy(rowPtr[1:], rowPtr[:m.NumRows])
	rowPtr[0] = 0
	dst.sumDuplicatesInPlace()
	return dst
}

// growInt32 reslices buf to length n, reallocating with 25% headroom
// when capacity is insufficient.
func growInt32(buf []int32, n int) []int32 {
	if cap(buf) < n {
		return make([]int32, n, n+n/4)
	}
	return buf[:n]
}

// growFloat64 is growInt32 for float64 buffers.
func growFloat64(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n, n+n/4)
	}
	return buf[:n]
}

// CSR is a sparse matrix in compressed sparse row format. Row i's entries
// occupy ColIdx/Vals[RowPtr[i]:RowPtr[i+1]].
type CSR struct {
	// NumRows and NumCols are the logical matrix dimensions.
	NumRows, NumCols int
	// RowPtr has length NumRows+1; row i's entries span
	// [RowPtr[i], RowPtr[i+1]).
	RowPtr []int32
	// ColIdx holds the column index of each stored entry.
	ColIdx []int32
	// Vals holds each entry's value, parallel to ColIdx.
	Vals []float64
}

// NNZ returns the number of stored entries.
func (m *CSR) NNZ() int { return len(m.Vals) }

// dedupScratch is the pooled column-stamp scratch for duplicate
// merging: stamp[c] holds the generation that last saw column c and
// pos[c] where that entry was written. Bumping gen once per row
// invalidates every stamp at once, so the arrays are never cleared —
// the epoch trick. Replaces the map[int32]int32 the old code allocated
// on every CSR conversion (a hot allocation in the incremental OPI
// loop, which rebuilds CSR after each insertion).
type dedupScratch struct {
	stamp []int64
	pos   []int32
	gen   int64
}

var dedupPool = sync.Pool{New: func() any { return new(dedupScratch) }}

// sumDuplicatesInPlace merges duplicate column entries within each row
// (rows keep their relative order; columns need not be sorted). The
// compaction is fully in place: row r's old bounds are read before
// RowPtr[r] is overwritten, and the write cursor never outruns the read
// cursor, so no output array is allocated either.
func (m *CSR) sumDuplicatesInPlace() {
	s := dedupPool.Get().(*dedupScratch)
	if len(s.stamp) < m.NumCols {
		s.stamp = make([]int64, m.NumCols)
		s.pos = make([]int32, m.NumCols)
		s.gen = 0 // fresh zeroed stamps; generations restart above 0
	}
	var w int32
	for r := 0; r < m.NumRows; r++ {
		s.gen++
		start, end := m.RowPtr[r], m.RowPtr[r+1]
		m.RowPtr[r] = w
		for p := start; p < end; p++ {
			c := m.ColIdx[p]
			if s.stamp[c] == s.gen {
				m.Vals[s.pos[c]] += m.Vals[p]
				continue
			}
			s.stamp[c] = s.gen
			s.pos[c] = w
			m.ColIdx[w] = c
			m.Vals[w] = m.Vals[p]
			w++
		}
	}
	m.RowPtr[m.NumRows] = w
	m.ColIdx = m.ColIdx[:w]
	m.Vals = m.Vals[:w]
	dedupPool.Put(s)
}

// MulDense computes dst = m·x; dst must be NumRows×x.Cols.
func (m *CSR) MulDense(dst, x *tensor.Dense) {
	if x.Rows != m.NumCols || dst.Rows != m.NumRows || dst.Cols != x.Cols {
		panic("sparse: CSR MulDense shape mismatch")
	}
	m.mulRows(dst, x, 0, m.NumRows)
}

func (m *CSR) mulRows(dst, x *tensor.Dense, lo, hi int) {
	for r := lo; r < hi; r++ {
		drow := dst.Row(r)
		for j := range drow {
			drow[j] = 0
		}
		for p := m.RowPtr[r]; p < m.RowPtr[r+1]; p++ {
			v := m.Vals[p]
			xrow := x.Row(int(m.ColIdx[p]))
			for j, xv := range xrow {
				drow[j] += v * xv
			}
		}
	}
}

// MulDenseRows computes rows [lo,hi) of dst = m·x, leaving every other
// row of dst untouched. The per-row accumulation order is identical to
// MulDense, so computing a row here is bit-identical to computing it as
// part of a whole-matrix product — the property the sharded executor in
// internal/partition relies on. dst may be taller than hi (scratch
// buffers are reused across layers of different active heights); x must
// cover all NumCols columns.
func (m *CSR) MulDenseRows(dst, x *tensor.Dense, lo, hi int) {
	if x.Rows != m.NumCols || dst.Cols != x.Cols || lo < 0 || hi < lo || hi > m.NumRows || dst.Rows < hi {
		panic("sparse: CSR MulDenseRows shape mismatch")
	}
	spmmCalls.Inc()
	spmmRows.Add(int64(hi - lo))
	m.mulRows(dst, x, lo, hi)
}

// clampWorkers resolves an effective worker count: workers <= 0 selects
// GOMAXPROCS, and the result never exceeds min(GOMAXPROCS, NumCPU).
// Clamping to NumCPU alone (the old behavior) oversubscribes the
// scheduler in cgroup-limited containers — the serve deployment target —
// where GOMAXPROCS is set below the host's core count.
func clampWorkers(workers int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if n := runtime.GOMAXPROCS(0); workers > n {
		workers = n
	}
	if n := runtime.NumCPU(); workers > n {
		workers = n
	}
	return workers
}

// bandsPerWorker subdivides each worker's fair share into this many row
// bands. Bands are pulled dynamically, so a worker that lands on a
// denser-than-average band does not leave the others idle, and each
// band's dst/x working set is small enough to stay cache-resident.
const bandsPerWorker = 4

// nnzBands splits rows [0, len(rowPtr)-1) into at most n bands of
// near-equal nonzero count by binary-searching the RowPtr prefix sums.
// Bands never split a row; boundaries that would create an empty band
// are elided. Returns the band boundaries (first element 0, last
// numRows). Level-banded circuits have heavily skewed row densities, so
// equal-ROW chunks (the old scheme) leave workers idle; equal-NNZ bands
// balance actual work.
func nnzBands(rowPtr []int32, n int) []int32 {
	rows := len(rowPtr) - 1
	total := int64(rowPtr[rows])
	if n < 1 {
		n = 1
	}
	bands := make([]int32, 1, n+1)
	for b := 1; b < n; b++ {
		target := int32(total * int64(b) / int64(n))
		r := sort.Search(rows, func(i int) bool { return rowPtr[i] >= target })
		if int32(r) > bands[len(bands)-1] {
			bands = append(bands, int32(r))
		}
	}
	if int32(rows) > bands[len(bands)-1] {
		bands = append(bands, int32(rows))
	}
	return bands
}

// MulDenseParallel is MulDense with rows partitioned across workers
// goroutines (workers <= 0 selects GOMAXPROCS; the count is clamped to
// min(GOMAXPROCS, NumCPU)). Work is split into nnz-balanced row bands
// (bandsPerWorker per worker) that workers pull off a shared cursor.
// This is the CPU analogue of the paper's GPU SpMM.
func (m *CSR) MulDenseParallel(dst, x *tensor.Dense, workers int) {
	if x.Rows != m.NumCols || dst.Rows != m.NumRows || dst.Cols != x.Cols {
		panic("sparse: CSR MulDenseParallel shape mismatch")
	}
	spmmCalls.Inc()
	spmmRows.Add(int64(m.NumRows))
	workers = clampWorkers(workers)
	// Serial fallback: with fewer than two rows per worker the goroutine
	// fan-out costs more than it saves (and rows < workers would leave
	// some workers with an empty range).
	if workers == 1 || m.NumRows < 2*workers {
		m.mulRows(dst, x, 0, m.NumRows)
		return
	}
	spmmParallelCalls.Inc()
	bands := nnzBands(m.RowPtr, workers*bandsPerWorker)
	var cursor atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(cursor.Add(1)) - 1
				if i >= len(bands)-1 {
					return
				}
				m.mulRows(dst, x, int(bands[i]), int(bands[i+1]))
			}
		}()
	}
	wg.Wait()
}

// MulDenseTrans computes dst = mᵀ·x; dst must be NumCols×x.Cols. Used by
// backpropagation (∂L/∂E_{d-1} includes Aᵀ·δ).
func (m *CSR) MulDenseTrans(dst, x *tensor.Dense) {
	if x.Rows != m.NumRows || dst.Rows != m.NumCols || dst.Cols != x.Cols {
		panic("sparse: CSR MulDenseTrans shape mismatch")
	}
	dst.Zero()
	for r := 0; r < m.NumRows; r++ {
		xrow := x.Row(r)
		for p := m.RowPtr[r]; p < m.RowPtr[r+1]; p++ {
			v := m.Vals[p]
			drow := dst.Row(int(m.ColIdx[p]))
			for j, xv := range xrow {
				drow[j] += v * xv
			}
		}
	}
}

// Transpose returns mᵀ as a new CSR.
func (m *CSR) Transpose() *CSR { return m.TransposeInto(nil) }

// TransposeInto is Transpose writing into dst's backing arrays when
// their capacity allows, reallocating with headroom otherwise. A nil
// dst allocates fresh. dst must not be m itself. Returns dst.
func (m *CSR) TransposeInto(dst *CSR) *CSR {
	if dst == m {
		panic("sparse: TransposeInto dst must not alias the receiver")
	}
	if dst == nil {
		dst = &CSR{}
	}
	dst.NumRows, dst.NumCols = m.NumCols, m.NumRows
	dst.RowPtr = growInt32(dst.RowPtr, m.NumCols+1)
	dst.ColIdx = growInt32(dst.ColIdx, len(m.Vals))
	dst.Vals = growFloat64(dst.Vals, len(m.Vals))
	rowPtr := dst.RowPtr
	for i := range rowPtr {
		rowPtr[i] = 0
	}
	for _, c := range m.ColIdx {
		rowPtr[c+1]++
	}
	for i := 1; i <= m.NumCols; i++ {
		rowPtr[i] += rowPtr[i-1]
	}
	// Same cursor-then-shift trick as ToCSRInto: no `next` scratch.
	for r := 0; r < m.NumRows; r++ {
		for p := m.RowPtr[r]; p < m.RowPtr[r+1]; p++ {
			c := m.ColIdx[p]
			q := rowPtr[c]
			dst.ColIdx[q] = int32(r)
			dst.Vals[q] = m.Vals[p]
			rowPtr[c] = q + 1
		}
	}
	copy(rowPtr[1:], rowPtr[:m.NumCols])
	rowPtr[0] = 0
	return dst
}

// ToDense materializes the matrix; intended for tests and tiny examples.
func (m *CSR) ToDense() *tensor.Dense {
	d := tensor.NewDense(m.NumRows, m.NumCols)
	for r := 0; r < m.NumRows; r++ {
		for p := m.RowPtr[r]; p < m.RowPtr[r+1]; p++ {
			d.Set(r, int(m.ColIdx[p]), d.At(r, int(m.ColIdx[p]))+m.Vals[p])
		}
	}
	return d
}

// Sparsity returns the fraction of zero entries, the statistic the paper
// reports as "higher than 99.95%" on its benchmarks.
func (m *CSR) Sparsity() float64 {
	total := float64(m.NumRows) * float64(m.NumCols)
	if total == 0 {
		return 1
	}
	return 1 - float64(m.NNZ())/total
}
