package core

import (
	"encoding/gob"
	"fmt"
	"io"
)

// multiStageWire is the gob wire format for a trained cascade: the
// architecture plus every stage's flat parameter values.
type multiStageWire struct {
	Cfg         Config
	FilterBelow float64
	StageParams [][][]float64 // [stage][param][values]
	ParamNames  []string
}

// Save serializes the cascade (architecture + parameters).
func (ms *MultiStage) Save(w io.Writer) error {
	if len(ms.Stages) == 0 {
		return fmt.Errorf("core: cannot save empty cascade")
	}
	wire := multiStageWire{
		Cfg:         ms.Stages[0].Cfg,
		FilterBelow: ms.FilterBelow,
	}
	for _, p := range ms.Stages[0].Params() {
		wire.ParamNames = append(wire.ParamNames, p.Name)
	}
	for _, s := range ms.Stages {
		var ps [][]float64
		for _, p := range s.Params() {
			ps = append(ps, p.Data)
		}
		wire.StageParams = append(wire.StageParams, ps)
	}
	return gob.NewEncoder(w).Encode(wire)
}

// LoadMultiStage reconstructs a cascade saved with Save.
func LoadMultiStage(r io.Reader) (*MultiStage, error) {
	var wire multiStageWire
	if err := gob.NewDecoder(r).Decode(&wire); err != nil {
		return nil, err
	}
	ms := &MultiStage{FilterBelow: wire.FilterBelow}
	for si, ps := range wire.StageParams {
		m, err := NewModel(wire.Cfg)
		if err != nil {
			return nil, err
		}
		params := m.Params()
		if len(params) != len(ps) {
			return nil, fmt.Errorf("core: stage %d has %d params, stored %d", si, len(params), len(ps))
		}
		for i, p := range params {
			if len(p.Data) != len(ps[i]) {
				return nil, fmt.Errorf("core: stage %d param %q size %d != stored %d",
					si, p.Name, len(p.Data), len(ps[i]))
			}
			copy(p.Data, ps[i])
		}
		ms.Stages = append(ms.Stages, m)
	}
	return ms, nil
}
