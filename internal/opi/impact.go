package opi

import (
	"sort"

	"repro/internal/core"
	"repro/internal/netlist"
	"repro/internal/scoap"
)

// This file implements the paper's exact impact evaluation (Figure 6):
// the impact of inserting an observation point at node a is the
// reduction in positive predictions within a's fan-in cone, measured by
// actually performing the insertion on a scratch copy, refreshing the
// SCOAP attributes, and re-running inference. It is the precise but
// expensive variant of the static cone-count ranking used by default in
// RunFlow; FlowConfig.ExactImpact enables it when the candidate set is
// small enough (the iterative loop makes the cheap ranking converge to
// the same fixpoint, which the tests verify on small designs).

// ExactImpact measures the positive-prediction reduction in candidate's
// fan-in cone caused by a hypothetical observation point at candidate.
// n, meas and g are not modified.
func ExactImpact(n *netlist.Netlist, meas *scoap.Measures, g *core.Graph,
	pred Predictor, threshold float64, candidate int32, coneLimit int) int {

	before := pred.PredictProbs(g)
	cone := n.FaninCone(candidate, coneLimit)

	// Hypothetical insertion on scratch copies.
	n2 := n.Clone()
	meas2 := meas.Clone()
	g2 := g.Clone()
	if _, _, err := InsertAndRefresh(n2, meas2, g2, candidate, n2.Levels()); err != nil {
		return 0 // uninsertable candidate has no impact
	}
	after := pred.PredictProbs(g2)

	countPos := func(probs []float64) int {
		c := 0
		if probs[candidate] >= threshold {
			c++
		}
		for _, u := range cone {
			if probs[u] >= threshold {
				c++
			}
		}
		return c
	}
	impact := countPos(before) - countPos(after)
	if impact < 0 {
		impact = 0
	}
	return impact
}

// selectByExactImpact ranks candidates by hypothetical-insertion impact.
// It shares the cone-coverage dedup of the static ranking.
func selectByExactImpact(n *netlist.Netlist, meas *scoap.Measures, g *core.Graph,
	pred Predictor, positives map[int32]bool, cfg FlowConfig) []int32 {

	type scored struct {
		node   int32
		impact int
	}
	ranked := make([]scored, 0, len(positives))
	cones := make(map[int32][]int32, len(positives))
	for v := range positives {
		impact := ExactImpact(n, meas, g, pred, cfg.Threshold, v, cfg.ConeLimit)
		ranked = append(ranked, scored{v, impact})
		cones[v] = n.FaninCone(v, cfg.ConeLimit)
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].impact != ranked[j].impact {
			return ranked[i].impact > ranked[j].impact
		}
		return ranked[i].node < ranked[j].node
	})
	covered := make(map[int32]bool)
	var selected []int32
	for _, s := range ranked {
		if len(selected) >= cfg.PerIteration {
			break
		}
		if covered[s.node] {
			continue
		}
		selected = append(selected, s.node)
		for _, u := range cones[s.node] {
			covered[u] = true
		}
	}
	return selected
}
