package baselines

import (
	"math"
	"math/rand"
	"sort"

	"repro/internal/tensor"
)

// RandomForest is a bagged ensemble of CART decision trees with Gini
// impurity splits and per-split random feature subsampling.
type RandomForest struct {
	NumTrees    int // default 50
	MaxDepth    int // default 12
	MinLeaf     int // default 2
	MaxFeatures int // features tried per split; default sqrt(D)
	Seed        int64
	trees       []*treeNode
}

// Name implements Classifier.
func (m *RandomForest) Name() string { return "RF" }

type treeNode struct {
	feature   int
	threshold float64
	left      *treeNode
	right     *treeNode
	leaf      bool
	label     int
}

// Fit implements Classifier.
func (m *RandomForest) Fit(x *tensor.Dense, y []int) {
	numTrees, maxDepth, minLeaf, maxFeat := m.NumTrees, m.MaxDepth, m.MinLeaf, m.MaxFeatures
	if numTrees <= 0 {
		numTrees = 50
	}
	if maxDepth <= 0 {
		maxDepth = 12
	}
	if minLeaf <= 0 {
		minLeaf = 2
	}
	if maxFeat <= 0 {
		maxFeat = int(math.Sqrt(float64(x.Cols)))
		if maxFeat < 1 {
			maxFeat = 1
		}
	}
	rng := rand.New(rand.NewSource(m.Seed))
	m.trees = make([]*treeNode, numTrees)
	for t := range m.trees {
		// Bootstrap sample.
		idx := make([]int, x.Rows)
		for i := range idx {
			idx[i] = rng.Intn(x.Rows)
		}
		b := &treeBuilder{x: x, y: y, rng: rng, maxDepth: maxDepth, minLeaf: minLeaf, maxFeat: maxFeat}
		m.trees[t] = b.build(idx, 0)
	}
}

// Predict implements Classifier (majority vote).
func (m *RandomForest) Predict(x *tensor.Dense) []int {
	out := make([]int, x.Rows)
	for i := 0; i < x.Rows; i++ {
		row := x.Row(i)
		votes := 0
		for _, t := range m.trees {
			votes += t.classify(row)
		}
		if 2*votes > len(m.trees) {
			out[i] = 1
		}
	}
	return out
}

func (t *treeNode) classify(row []float64) int {
	for !t.leaf {
		if row[t.feature] <= t.threshold {
			t = t.left
		} else {
			t = t.right
		}
	}
	return t.label
}

type treeBuilder struct {
	x        *tensor.Dense
	y        []int
	rng      *rand.Rand
	maxDepth int
	minLeaf  int
	maxFeat  int
}

func (b *treeBuilder) build(idx []int, depth int) *treeNode {
	pos := 0
	for _, i := range idx {
		pos += b.y[i]
	}
	if pos == 0 || pos == len(idx) || depth >= b.maxDepth || len(idx) < 2*b.minLeaf {
		return leafNode(pos, len(idx))
	}

	bestFeat, bestThresh, bestGini := -1, 0.0, math.Inf(1)
	// Candidate features without replacement.
	feats := b.rng.Perm(b.x.Cols)[:b.maxFeat]
	type fv struct {
		v float64
		y int
	}
	vals := make([]fv, len(idx))
	for _, f := range feats {
		for k, i := range idx {
			vals[k] = fv{b.x.At(i, f), b.y[i]}
		}
		sort.Slice(vals, func(a, c int) bool { return vals[a].v < vals[c].v })
		leftPos, leftN := 0, 0
		for k := 0; k+1 < len(vals); k++ {
			leftPos += vals[k].y
			leftN++
			if vals[k].v == vals[k+1].v {
				continue
			}
			if leftN < b.minLeaf || len(vals)-leftN < b.minLeaf {
				continue
			}
			rightPos := pos - leftPos
			rightN := len(vals) - leftN
			g := weightedGini(leftPos, leftN) + weightedGini(rightPos, rightN)
			if g < bestGini {
				bestGini = g
				bestFeat = f
				bestThresh = (vals[k].v + vals[k+1].v) / 2
			}
		}
	}
	if bestFeat < 0 {
		return leafNode(pos, len(idx))
	}

	var left, right []int
	for _, i := range idx {
		if b.x.At(i, bestFeat) <= bestThresh {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	if len(left) == 0 || len(right) == 0 {
		return leafNode(pos, len(idx))
	}
	return &treeNode{
		feature:   bestFeat,
		threshold: bestThresh,
		left:      b.build(left, depth+1),
		right:     b.build(right, depth+1),
	}
}

func leafNode(pos, n int) *treeNode {
	label := 0
	if 2*pos > n {
		label = 1
	}
	return &treeNode{leaf: true, label: label}
}

// weightedGini returns n * gini(pos/n), the split-objective contribution
// of one side.
func weightedGini(pos, n int) float64 {
	if n == 0 {
		return 0
	}
	p := float64(pos) / float64(n)
	return float64(n) * 2 * p * (1 - p)
}
