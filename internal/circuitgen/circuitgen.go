// Package circuitgen generates synthetic gate-level netlists that stand in
// for the proprietary industrial designs (B1–B4) evaluated in the paper.
//
// The generator produces layered, reconvergent, multi-level logic with a
// realistic mix of cell types, pipeline flip-flops, XOR-rich response
// compaction toward primary outputs (which keeps most nodes easy to
// observe), and a configurable number of "shadow funnels": small regions
// whose only path to an output runs through a chain of AND gates qualified
// by low-probability side conditions. Nodes inside a funnel have very low
// random-pattern observability, reproducing the paper's highly imbalanced
// difficult-to-observe class (< 1% of nodes) with labels that are decided
// by simulated behaviour rather than by construction.
//
// All randomness flows from Config.Seed, so generation is deterministic.
package circuitgen

import (
	"fmt"
	"math/rand"

	"repro/internal/netlist"
)

// Config parameterizes circuit generation. Zero fields are replaced by the
// defaults documented on each field.
type Config struct {
	Seed int64 // RNG seed (0 is a valid, fixed seed)

	NumGates int // approximate number of logic cells; default 10000
	NumPIs   int // primary inputs; default max(32, NumGates/200)
	Layers   int // logic layers; default 40

	// MaxFanin is the maximum fanin of generated multi-input gates
	// (inclusive); default 3.
	MaxFanin int

	// LongRangeProb is the probability that a fanin edge reaches far back
	// instead of a recent layer, creating reconvergent paths; default 0.08.
	LongRangeProb float64

	// XorFrac is the fraction of multi-input gates that are XOR/XNOR
	// (high transparency); default 0.25. Together with DFFFrac this is
	// calibrated so that base designs show the paper's profile: random
	// pattern fault coverage in the high 90s with <1% of nodes
	// difficult to observe.
	XorFrac float64

	// DFFFrac is the fraction of cells that are pipeline scan flip-flops;
	// default 0.30 (modern SoC logic is register rich, and every scan
	// flop is an observation boundary).
	DFFFrac float64

	// ArithBlocks is the number of structured datapath modules (adders,
	// multipliers, comparators, muxes) embedded into the random logic;
	// 0 (the default) embeds none, keeping the calibrated B1–B4 suite
	// byte-identical to the recorded experiment runs. Set it explicitly
	// for richer, carry-chain-heavy designs.
	ArithBlocks int

	// ShadowFunnels is the number of hard-to-observe funnel modules;
	// default NumGates/1500 (≈0.7% positive nodes after labeling).
	ShadowFunnels int

	// ShadowDepth is the AND-chain length of each funnel; default 4.
	ShadowDepth int

	// ShadowGuard is the number of primary inputs ANDed to form each
	// funnel stage's side condition (propagation probability 2^-ShadowGuard
	// per stage); default 3.
	ShadowGuard int
}

func (c Config) withDefaults() Config {
	if c.NumGates <= 0 {
		c.NumGates = 10000
	}
	if c.NumPIs <= 0 {
		c.NumPIs = c.NumGates / 200
		if c.NumPIs < 32 {
			c.NumPIs = 32
		}
	}
	if c.Layers <= 0 {
		c.Layers = 40
	}
	if c.MaxFanin <= 1 {
		c.MaxFanin = 3
	}
	if c.LongRangeProb <= 0 {
		c.LongRangeProb = 0.08
	}
	if c.XorFrac <= 0 {
		c.XorFrac = 0.25
	}
	if c.DFFFrac < 0 {
		c.DFFFrac = 0
	} else if c.DFFFrac == 0 {
		c.DFFFrac = 0.30
	}
	if c.ArithBlocks < 0 {
		c.ArithBlocks = 0
	}
	if c.ShadowFunnels < 0 {
		c.ShadowFunnels = 0
	} else if c.ShadowFunnels == 0 {
		c.ShadowFunnels = c.NumGates / 1500
	}
	if c.ShadowDepth <= 0 {
		c.ShadowDepth = 4
	}
	if c.ShadowGuard <= 0 {
		c.ShadowGuard = 3
	}
	return c
}

// PaperScale returns the generation preset for the paper's largest
// design class: a bit over one million cells, the scale at which Table 1
// reports the industrial designs and Figure 10's matrix-inference curve
// ends. Only the seed varies between instances; everything else uses the
// calibrated defaults, so the preset keeps the same class profile
// (<1% difficult-to-observe) as the B1–B4 suite. Generation takes tens
// of seconds — this preset is for the bench path (cmd/benchjson,
// bench_test.go), not unit tests; tests should override NumGates down.
func PaperScale(seed int64) Config {
	return Config{Seed: seed, NumGates: 1_050_000}
}

// OPIBench returns the generation preset shared by the insertion-flow
// benchmark family (bench_test.go's full/incremental/coarse-refine
// pairs and the experiments-layer coarse-refine comparison): a 50k-gate
// design — gates <= 0 selects that default; tests pass something
// smaller — with extra shadow funnels so a realistic population of
// difficult-to-observe cones exists for the flows to find.
func OPIBench(gates int) Config {
	if gates <= 0 {
		gates = 50000
	}
	return Config{Seed: 9, NumGates: gates, ShadowFunnels: 16, ShadowGuard: 4}
}

// Generate builds a netlist according to cfg. The result always validates
// and has no dangling nets: every internal net reaches at least one
// primary output, flip-flop or compactor.
func Generate(name string, cfg Config) *netlist.Netlist {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := netlist.New(name)

	pis := make([]int32, cfg.NumPIs)
	for i := range pis {
		pis[i] = n.MustAddGate(netlist.Input, fmt.Sprintf("pi%d", i))
	}

	// Layered logic. layers[l] holds the IDs created in layer l; layer -1
	// is the primary inputs.
	layers := [][]int32{pis}
	perLayer := cfg.NumGates / cfg.Layers
	if perLayer < 1 {
		perLayer = 1
	}

	pickDriver := func() int32 {
		// Prefer one of the two most recent layers; occasionally reach far
		// back (reconvergence / long wires).
		if rng.Float64() < cfg.LongRangeProb || len(layers) == 1 {
			l := layers[rng.Intn(len(layers))]
			return l[rng.Intn(len(l))]
		}
		back := 1 + rng.Intn(2)
		if back > len(layers) {
			back = len(layers)
		}
		l := layers[len(layers)-back]
		return l[rng.Intn(len(l))]
	}

	for layer := 0; layer < cfg.Layers; layer++ {
		cur := make([]int32, 0, perLayer)
		for i := 0; i < perLayer; i++ {
			typ := pickType(rng, cfg)
			k := typ.MinFanin()
			if typ.MaxFanin() < 0 && cfg.MaxFanin > k {
				k += rng.Intn(cfg.MaxFanin - k + 1)
			}
			fanin := make([]int32, k)
			for j := range fanin {
				fanin[j] = pickDriver()
			}
			cur = append(cur, n.MustAddGate(typ, "", fanin...))
		}
		layers = append(layers, cur)
	}

	// Structured datapath blocks over random operand nets. Their outputs
	// dangle here and are routed to outputs by the compaction stage.
	for k := 0; k < cfg.ArithBlocks; k++ {
		operand := func(bits int) []int32 {
			out := make([]int32, bits)
			for i := range out {
				out[i] = pickDriver()
			}
			return out
		}
		switch rng.Intn(4) {
		case 0:
			a := operand(4 + rng.Intn(5))
			AppendRippleCarryAdder(n, a, operand(len(a)), pickDriver())
		case 1:
			bits := 3 + rng.Intn(2)
			AppendArrayMultiplier(n, operand(bits), operand(bits))
		case 2:
			bits := 4 + rng.Intn(8)
			AppendEqualityComparator(n, operand(bits), operand(bits))
		default:
			bits := 4 + rng.Intn(4)
			AppendMux2(n, pickDriver(), operand(bits), operand(bits))
		}
	}

	// Shadow funnels: regions with a single, heavily qualified escape
	// path. The funnel outputs are left dangling here; compaction below
	// routes them (like every other dangling net) to a primary output.
	for f := 0; f < cfg.ShadowFunnels; f++ {
		// Funnel payload: a couple of gates computing over random internal
		// nets; these and the chain below are the future positives.
		payload := n.MustAddGate(netlist.Xor, "", pickDriver(), pickDriver())
		cur := n.MustAddGate(netlist.And, "", payload, pickDriver())
		depth := 1 + rng.Intn(cfg.ShadowDepth)
		for d := 0; d < depth; d++ {
			// Side condition: AND of ShadowGuard random PIs (probability
			// 2^-ShadowGuard of being 1 under random patterns).
			side := pis[rng.Intn(len(pis))]
			for g := 1; g < cfg.ShadowGuard; g++ {
				side = n.MustAddGate(netlist.And, "", side, pis[rng.Intn(len(pis))])
			}
			cur = n.MustAddGate(netlist.And, "", cur, side)
		}
	}

	// Response compaction: gather every dangling net (which includes the
	// funnel outputs) into XOR-dominated trees terminating in primary
	// outputs. XOR compactors keep upstream logic observable (any single
	// change propagates), so difficulty is dominated by the funnels and
	// naturally deep AND/OR paths.
	dangling := danglingNets(n)
	rng.Shuffle(len(dangling), func(i, j int) { dangling[i], dangling[j] = dangling[j], dangling[i] })
	for len(dangling) > 1 {
		var next []int32
		for i := 0; i < len(dangling); i += 4 {
			end := i + 4
			if end > len(dangling) {
				end = len(dangling)
			}
			group := dangling[i:end]
			if len(group) == 1 {
				next = append(next, group[0])
				continue
			}
			acc := group[0]
			for _, g := range group[1:] {
				acc = n.MustAddGate(netlist.Xor, "", acc, g)
			}
			next = append(next, acc)
		}
		if len(next) <= 64 {
			for _, net := range next {
				n.MustAddGate(netlist.Output, "", net)
			}
			next = nil
		}
		dangling = next
	}
	if len(dangling) == 1 {
		n.MustAddGate(netlist.Output, "", dangling[0])
	}
	return n
}

func pickType(rng *rand.Rand, cfg Config) netlist.GateType {
	r := rng.Float64()
	if r < cfg.DFFFrac {
		return netlist.DFF
	}
	r = rng.Float64()
	if r < cfg.XorFrac {
		if rng.Intn(2) == 0 {
			return netlist.Xor
		}
		return netlist.Xnor
	}
	switch rng.Intn(10) {
	case 0, 1:
		return netlist.And
	case 2, 3:
		return netlist.Nand
	case 4, 5:
		return netlist.Or
	case 6:
		return netlist.Nor
	case 7:
		return netlist.Not
	case 8:
		return netlist.Buf
	default:
		return netlist.And
	}
}

// danglingNets returns the IDs of cells with no fanout that are not
// themselves sinks.
func danglingNets(n *netlist.Netlist) []int32 {
	var out []int32
	for id := int32(0); id < int32(n.NumGates()); id++ {
		t := n.Type(id)
		if t == netlist.Output || t == netlist.Obs {
			continue
		}
		if len(n.Fanout(id)) == 0 {
			out = append(out, id)
		}
	}
	return out
}
