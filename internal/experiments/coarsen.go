package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/circuitgen"
	"repro/internal/coarsen"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/fault"
	"repro/internal/metrics"
	"repro/internal/netlist"
	"repro/internal/obs"
	"repro/internal/opi"
	"repro/internal/scoap"
)

// CoarsenRow is one cell of the coarsening grid: a (strategy, ratio)
// pair evaluated end to end — train the cascade on coarsened designs,
// score the held-out design through the coarse graph, lift, and run the
// coarse-then-refine insertion flow.
type CoarsenRow struct {
	Strategy string
	Ratio    float64
	// Achieved is the supernode/cell ratio realized on the test design
	// (>= Ratio: FFR cannot merge past region boundaries).
	Achieved   float64
	SuperNodes int
	// LiftedF1 scores the lifted coarse predictions against the fine
	// ground-truth labels of the held-out design.
	LiftedF1 float64
	// InferNS is one coarse forward + lift on the test design.
	InferNS int64
	// Coverage is the fault coverage after the coarse-then-refine flow;
	// FlowNS its wall time.
	Coverage float64
	FlowNS   int64
}

// CoarsenResult is the speed/accuracy trade-off grid (the CTS-Bench
// question asked of this reproduction) plus the fine baseline every row
// is normalized against.
type CoarsenResult struct {
	FineNodes    int
	FineF1       float64
	FineInferNS  int64
	BaseCoverage float64 // test design before any insertion
	// ExactCoverage/ExactFlowNS are the exact incremental flow (ratio
	// 1.0 equivalent) driven by the fine-trained cascade.
	ExactCoverage float64
	ExactFlowNS   int64
	Rows          []CoarsenRow
}

// ExactGain is the exact flow's coverage gain, the denominator of every
// row's retention.
func (r CoarsenResult) ExactGain() float64 { return r.ExactCoverage - r.BaseCoverage }

// Retention returns row coverage gain / exact flow gain (1 when the
// exact flow gained nothing).
func (r CoarsenResult) Retention(row CoarsenRow) float64 {
	if g := r.ExactGain(); g > 0 {
		return (row.Coverage - r.BaseCoverage) / g
	}
	return 1
}

// CoarsenRatios and CoarsenStrategies define the grid.
var (
	CoarsenRatios     = []float64{1.0, 0.5, 0.25, 0.1}
	CoarsenStrategies = []coarsen.Strategy{coarsen.FFR, coarsen.LevelCollapse}
)

// CoarsenGrid sweeps coarsening ratios for both strategies. For each
// cell the multi-stage cascade is trained on the *coarsened* training
// designs (train/test distributions must match), the held-out design is
// scored through its coarse graph and lifted back to cells for F1, and
// the coarse-then-refine flow's coverage and wall time are measured
// against the exact flow. Ratio 1.0 is the anchor: identity coarsening,
// so its rows must reproduce the fine baseline exactly.
func CoarsenGrid(cfg Config) CoarsenResult {
	span := obs.StartSpan("experiments/coarsen")
	defer span.End()
	cfg = cfg.withDefaults()
	suite := cfg.suite()
	test := suite[len(suite)-1]
	train := suite[:len(suite)-1]

	tpg := fault.TPGConfig{MaxPatterns: 4 * cfg.Patterns, Seed: cfg.Seed + 7, StallWords: 64}
	res := CoarsenResult{FineNodes: test.Graph.N}

	// Fine baseline: cascade trained on the fine graphs, exact flow.
	var fineGraphs []*core.Graph
	for _, b := range train {
		fineGraphs = append(fineGraphs, b.Graph)
	}
	fineMS := trainCascade(cfg, fineGraphs)
	res.FineF1 = metrics.NewConfusion(fineMS.Predict(test.Graph), test.Graph.Labels).F1()
	res.FineInferNS = bestNS(func() { fineMS.PredictProbs(test.Graph) })
	res.BaseCoverage = opi.Evaluate(test.Netlist, tpg).Coverage

	exN := test.Netlist.Clone()
	exM := scoap.Compute(exN)
	exG := core.FromNetlist(exN, exM)
	start := time.Now()
	opi.RunFlow(exN, exM, exG, fineMS, opi.FlowConfig{PerIteration: 64})
	res.ExactFlowNS = time.Since(start).Nanoseconds()
	res.ExactCoverage = opi.Evaluate(exN, tpg).Coverage

	for _, strat := range CoarsenStrategies {
		for _, ratio := range CoarsenRatios {
			res.Rows = append(res.Rows, coarsenCell(cfg, train, test.Netlist, test.Graph, strat, ratio, tpg))
		}
	}
	return res
}

// coarsenCell evaluates one (strategy, ratio) pair.
func coarsenCell(cfg Config, train []*dataset.Benchmark, testNet *netlist.Netlist, testGraph *core.Graph,
	strat coarsen.Strategy, ratio float64, tpg fault.TPGConfig) CoarsenRow {
	opt := coarsen.Options{Strategy: strat, Ratio: ratio}

	var coarseGraphs []*core.Graph
	for _, b := range train {
		c, err := coarsen.New(b.Netlist, opt)
		if err != nil {
			panic(err)
		}
		coarseGraphs = append(coarseGraphs, c.ProjectGraph(b.Graph))
	}
	ms := trainCascade(cfg, coarseGraphs)

	ct, err := coarsen.New(testNet, opt)
	if err != nil {
		panic(err)
	}
	cg := ct.ProjectGraph(testGraph)
	row := CoarsenRow{
		Strategy:   strat.String(),
		Ratio:      ratio,
		Achieved:   ct.AchievedRatio(),
		SuperNodes: ct.NumSuper(),
	}

	coarsePred := ms.Predict(cg)
	lifted := make([]int, testGraph.N)
	for v, s := range ct.Owner {
		lifted[v] = coarsePred[s]
	}
	row.LiftedF1 = metrics.NewConfusion(lifted, testGraph.Labels).F1()

	probs := make([]float64, 0, cg.N)
	liftBuf := make([]float64, testGraph.N)
	row.InferNS = bestNS(func() {
		probs = ms.PredictProbs(cg)
		ct.LiftInto(liftBuf, probs)
	})

	flowN := testNet.Clone()
	flowM := scoap.Compute(flowN)
	flowG := core.FromNetlist(flowN, flowM)
	start := time.Now()
	if _, err := opi.RunCoarseRefine(flowN, flowM, flowG, ms, opi.CoarseRefineConfig{
		Coarsen: opt,
		Flow:    opi.FlowConfig{PerIteration: 64},
	}); err != nil {
		panic(err)
	}
	row.FlowNS = time.Since(start).Nanoseconds()
	row.Coverage = opi.Evaluate(flowN, tpg).Coverage
	return row
}

// trainCascade fits the paper's 3-stage cascade on the given graphs.
func trainCascade(cfg Config, graphs []*core.Graph) *core.MultiStage {
	mopt := core.DefaultMultiStageOptions()
	mopt.ModelCfg = cfg.modelConfig(3, cfg.Seed+17)
	mopt.Train = cfg.trainOptions()
	ms, err := core.TrainMultiStage(graphs, mopt)
	if err != nil {
		panic(err)
	}
	return ms
}

// bestNS returns the fastest of three timed runs of f.
func bestNS(f func()) int64 {
	best := int64(-1)
	for i := 0; i < 3; i++ {
		start := time.Now()
		f()
		if ns := time.Since(start).Nanoseconds(); best < 0 || ns < best {
			best = ns
		}
	}
	return best
}

// Fprint writes the grid with the fine baseline header.
func (r CoarsenResult) Fprint(w io.Writer) {
	fmt.Fprintln(w, "Coarsening grid: nodes-reduced vs F1 vs inference time (held-out design)")
	fmt.Fprintf(w, "fine baseline: %d nodes, F1 %.3f, inference %.2fms, coverage %.2f%% -> %.2f%% (exact flow %.0fms)\n",
		r.FineNodes, r.FineF1, float64(r.FineInferNS)/1e6,
		100*r.BaseCoverage, 100*r.ExactCoverage, float64(r.ExactFlowNS)/1e6)
	fmt.Fprintf(w, "%-15s %6s %9s %7s %6s %7s %10s %9s %10s %9s\n",
		"Strategy", "Ratio", "Achieved", "Nodes", "Red%", "F1", "Infer(ms)", "Coverage", "Retention", "Flow(ms)")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-15s %6.2f %9.3f %7d %5.1f%% %7.3f %10.2f %8.2f%% %10.3f %9.0f\n",
			row.Strategy, row.Ratio, row.Achieved, row.SuperNodes,
			100*(1-float64(row.SuperNodes)/float64(r.FineNodes)),
			row.LiftedF1, float64(row.InferNS)/1e6,
			100*row.Coverage, r.Retention(row), float64(row.FlowNS)/1e6)
	}
}

// CoarseRefineComparison is the large-design exact-vs-coarse-refine
// head-to-head: same design, same insertion budget, wall time and fault
// coverage for both flows. It backs the benchmark pair in bench_test.go
// and the acceptance bar that coarse-then-refine keeps >=95% of the
// exact flow's coverage gain at lower wall time.
type CoarseRefineComparison struct {
	Gates               int
	ExactOPs, CoarseOPs int
	ExactNS, CoarseNS   int64
	BaseCov             float64
	ExactCov, CoarseCov float64
	AchievedRatio       float64
	CoarseNodes         int
}

// ExactGain and CoarseGain are the coverage improvements over the
// uninstrumented design.
func (c CoarseRefineComparison) ExactGain() float64  { return c.ExactCov - c.BaseCov }
func (c CoarseRefineComparison) CoarseGain() float64 { return c.CoarseCov - c.BaseCov }

// Retention is coarse gain / exact gain (1 when the exact flow gained
// nothing).
func (c CoarseRefineComparison) Retention() float64 {
	if g := c.ExactGain(); g > 0 {
		return c.CoarseGain() / g
	}
	return 1
}

// Speedup is exact wall time / coarse wall time.
func (c CoarseRefineComparison) Speedup() float64 {
	if c.CoarseNS > 0 {
		return float64(c.ExactNS) / float64(c.CoarseNS)
	}
	return 0
}

// CompareCoarseRefine runs the benchmark workload (the
// circuitgen.OPIBench design) through the exact incremental flow and
// the FFR-0.25 coarse-then-refine flow on identical copies with the
// same insertion budget, then fault-simulates both results. Each flow
// is driven by a cascade trained at its own resolution on small
// labeled designs and transferred inductively to the large design —
// trained predictions are what give the flows a real coverage gain for
// the retention ratio to measure. gates <= 0 selects the 50k-gate
// benchmark design.
func CompareCoarseRefine(gates int) CoarseRefineComparison {
	span := obs.StartSpan("experiments/coarse_refine")
	defer span.End()
	n := circuitgen.Generate("opif", circuitgen.OPIBench(gates))
	meas := scoap.Compute(n)
	g := core.FromNetlist(n, meas)

	copt := coarsen.Options{Strategy: coarsen.FFR, Ratio: 0.25}
	// Quick-scale designs with a longer epoch budget: transfer quality
	// to the 50k design is what decides both flows' gains, and 30
	// epochs (the smoke default) underfits the imbalanced classes.
	trainCfg := Config{Quick: true, Seed: 5, Epochs: 120}.withDefaults()
	var fineGraphs, coarseGraphs []*core.Graph
	for _, b := range trainCfg.suite()[:3] {
		fineGraphs = append(fineGraphs, b.Graph)
		c, err := coarsen.New(b.Netlist, copt)
		if err != nil {
			panic(err)
		}
		coarseGraphs = append(coarseGraphs, c.ProjectGraph(b.Graph))
	}
	// Each flow gets a cascade trained on its own resolution — the
	// coarse flow scores max-aggregated supernode features, which a
	// fine-trained model has never seen.
	fineMS := trainCascade(trainCfg, fineGraphs)
	coarseMS := trainCascade(trainCfg, coarseGraphs)

	tpg := fault.TPGConfig{MaxPatterns: 8192, Seed: 77, StallWords: 64}
	res := CoarseRefineComparison{Gates: n.NumGates()}
	res.BaseCov = opi.Evaluate(n, tpg).Coverage
	// Same insertion budget for both flows: gains then compare
	// placement quality at equal hardware cost.
	flow := opi.FlowConfig{PerIteration: 64, MaxInsertions: 1024}

	exN, exM, exG := n.Clone(), meas.Clone(), g.Clone()
	start := time.Now()
	exRes := opi.RunFlow(exN, exM, exG, fineMS, flow)
	res.ExactNS = time.Since(start).Nanoseconds()
	res.ExactOPs = len(exRes.Targets)
	res.ExactCov = opi.Evaluate(exN, tpg).Coverage

	coN, coM, coG := n.Clone(), meas.Clone(), g.Clone()
	start = time.Now()
	coRes, err := opi.RunCoarseRefine(coN, coM, coG, coarseMS, opi.CoarseRefineConfig{
		Coarsen: copt,
		Flow:    flow,
	})
	if err != nil {
		panic(err)
	}
	res.CoarseNS = time.Since(start).Nanoseconds()
	res.CoarseOPs = len(coRes.Targets)
	res.CoarseCov = opi.Evaluate(coN, tpg).Coverage
	res.AchievedRatio = coRes.AchievedRatio
	res.CoarseNodes = coRes.CoarseNodes
	return res
}

// Fprint writes the head-to-head summary.
func (c CoarseRefineComparison) Fprint(w io.Writer) {
	fmt.Fprintf(w, "Coarse-then-refine OPI vs exact incremental flow (%d gates)\n", c.Gates)
	fmt.Fprintf(w, "coarse graph: %d supernodes (achieved ratio %.3f)\n", c.CoarseNodes, c.AchievedRatio)
	fmt.Fprintf(w, "%-18s %6s %10s %10s %8s\n", "Flow", "#OPs", "Wall(ms)", "Coverage", "Gain")
	fmt.Fprintf(w, "%-18s %6d %10.0f %9.2f%% %+7.2f%%\n", "exact-incremental",
		c.ExactOPs, float64(c.ExactNS)/1e6, 100*c.ExactCov, 100*c.ExactGain())
	fmt.Fprintf(w, "%-18s %6d %10.0f %9.2f%% %+7.2f%%\n", "coarse-refine",
		c.CoarseOPs, float64(c.CoarseNS)/1e6, 100*c.CoarseCov, 100*c.CoarseGain())
	fmt.Fprintf(w, "retention %.3f, speedup %.2fx\n", c.Retention(), c.Speedup())
}
