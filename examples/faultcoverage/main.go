// Fault coverage: a tour of the DFT substrate. Shows bit-parallel
// random-pattern fault simulation with fault dropping, how coverage
// saturates against hard-to-observe logic, and how much a handful of
// observation points at the right nets buys.
package main

import (
	"fmt"

	"repro/internal/circuitgen"
	"repro/internal/fault"
	"repro/internal/netlist"
)

func main() {
	n := circuitgen.Generate("dut", circuitgen.Config{
		Seed: 7, NumGates: 3000, ShadowFunnels: 10, ShadowGuard: 4,
	})
	s := n.ComputeStats()
	fmt.Printf("design: %d gates, %d edges, %d PIs, %d POs, %d scan flops\n\n",
		s.Gates, s.Edges, s.PIs, s.POs, s.DFFs)

	// Coverage saturation under a growing random pattern budget.
	fmt.Println("random-pattern coverage vs. budget (no observation points):")
	for _, budget := range []int{256, 1024, 4096, 16384} {
		res := fault.GenerateTests(n, fault.TPGConfig{MaxPatterns: budget, Seed: 1})
		fmt.Printf("  %6d patterns: coverage %6.2f%%  (%d patterns kept)\n",
			budget, 100*res.Coverage, res.PatternsUsed)
	}

	// Find the difficult-to-observe nets behaviourally.
	counts := fault.ObservabilityCounts(n, 2048, 5)
	labels := fault.LabelDifficult(n, counts, 2048, 0.005)
	var difficult []int32
	for id, l := range labels {
		if l == 1 {
			difficult = append(difficult, int32(id))
		}
	}
	fmt.Printf("\n%d nets are difficult to observe (<%.1f%% of patterns reach them)\n",
		len(difficult), 100*0.005)

	// Observe them and re-measure.
	for _, id := range difficult {
		if _, err := n.InsertObservationPoint(id); err != nil {
			panic(err)
		}
	}
	res := fault.GenerateTests(n, fault.TPGConfig{MaxPatterns: 16384, Seed: 1})
	fmt.Printf("after %d observation points: coverage %.2f%% with %d patterns\n",
		n.CountType(netlist.Obs), 100*res.Coverage, res.PatternsUsed)
}
