package refcheck

import (
	"fmt"

	"repro/internal/coarsen"
	"repro/internal/core"
	"repro/internal/netlist"
	"repro/internal/scoap"
)

// This file differentially verifies the graph-coarsening subsystem
// (internal/coarsen) against the fine-grained pipeline it compresses:
//
//   - coarsening is a deterministic function of (netlist, options);
//   - every coarsening satisfies its own structural invariants and
//     emits a valid reduced netlist;
//   - at ratio 1.0 the projected supergraph IS the fine graph — same
//     attribute bits, labels, and normalized edges, in the same order;
//   - Lift is a pure broadcast: members of one supernode receive the
//     identical score, and the relative order of any two supernodes'
//     scores survives the lift unchanged on their members.

// CheckCoarsenDeterminism builds the same coarsening twice and returns
// an error on the first structural difference — owners, member lists,
// or the reduced netlist's cells and wiring.
func CheckCoarsenDeterminism(n *netlist.Netlist, opt coarsen.Options) error {
	a, err := coarsen.New(n, opt)
	if err != nil {
		return err
	}
	b, err := coarsen.New(n, opt)
	if err != nil {
		return fmt.Errorf("second build failed after first succeeded: %v", err)
	}
	if a.NumSuper() != b.NumSuper() {
		return fmt.Errorf("supernode counts differ across builds: %d vs %d", a.NumSuper(), b.NumSuper())
	}
	for v := range a.Owner {
		if a.Owner[v] != b.Owner[v] {
			return fmt.Errorf("cell %d owner differs across builds: %d vs %d", v, a.Owner[v], b.Owner[v])
		}
	}
	for s := range a.Members {
		if len(a.Members[s]) != len(b.Members[s]) {
			return fmt.Errorf("supernode %d member counts differ: %d vs %d", s, len(a.Members[s]), len(b.Members[s]))
		}
		for i := range a.Members[s] {
			if a.Members[s][i] != b.Members[s][i] {
				return fmt.Errorf("supernode %d member %d differs: %d vs %d", s, i, a.Members[s][i], b.Members[s][i])
			}
		}
	}
	if got, want := b.Super.NumGates(), a.Super.NumGates(); got != want {
		return fmt.Errorf("super netlist sizes differ: %d vs %d", want, got)
	}
	for id := int32(0); id < int32(a.Super.NumGates()); id++ {
		if a.Super.Type(id) != b.Super.Type(id) {
			return fmt.Errorf("super cell %d type differs: %v vs %v", id, a.Super.Type(id), b.Super.Type(id))
		}
		fa, fb := a.Super.Fanin(id), b.Super.Fanin(id)
		if len(fa) != len(fb) {
			return fmt.Errorf("super cell %d fanin counts differ: %d vs %d", id, len(fa), len(fb))
		}
		for i := range fa {
			if fa[i] != fb[i] {
				return fmt.Errorf("super cell %d fanin %d differs: %d vs %d", id, i, fa[i], fb[i])
			}
		}
	}
	return nil
}

// CheckCoarsenInvariants builds the coarsening and runs both its own
// Validate (partition shape, boundary singletons, head containment,
// super wiring) and the reduced netlist's Validate.
func CheckCoarsenInvariants(n *netlist.Netlist, opt coarsen.Options) error {
	c, err := coarsen.New(n, opt)
	if err != nil {
		return err
	}
	if err := c.Validate(n); err != nil {
		return fmt.Errorf("coarsening invariants: %v", err)
	}
	if err := c.Super.Validate(); err != nil {
		return fmt.Errorf("reduced netlist invalid: %v", err)
	}
	if r := c.AchievedRatio(); r < opt.Ratio-1e-9 || r > 1 {
		return fmt.Errorf("achieved ratio %v outside [%v, 1]", r, opt.Ratio)
	}
	return nil
}

// CheckIdentityProjection requires the ratio-1.0 supergraph to be the
// fine graph bit for bit: node count, attribute rows, labels, and the
// normalized predecessor lists must all be identical. This is the
// anchor that pins the projection math — max-aggregation over
// singleton groups must be exactly the identity, not merely close.
func CheckIdentityProjection(n *netlist.Netlist, g *core.Graph, strat coarsen.Strategy) error {
	c, err := coarsen.New(n, coarsen.Options{Strategy: strat, Ratio: 1.0})
	if err != nil {
		return err
	}
	if c.NumSuper() != g.N {
		return fmt.Errorf("%v ratio 1.0: %d supernodes for %d cells", strat, c.NumSuper(), g.N)
	}
	cg := c.ProjectGraph(g)
	for v := 0; v < g.N; v++ {
		s := int(c.Owner[v])
		fr, cr := g.X.Row(v), cg.X.Row(s)
		for k := range fr {
			if fr[k] != cr[k] {
				return fmt.Errorf("%v: cell %d attr %d: fine %v, projected %v", strat, v, k, fr[k], cr[k])
			}
		}
		if g.Labels[v] != cg.Labels[s] {
			return fmt.Errorf("%v: cell %d label: fine %d, projected %d", strat, v, g.Labels[v], cg.Labels[s])
		}
		fc, fv := g.PredEntries(int32(v))
		cc, cv := cg.PredEntries(int32(s))
		if len(fc) != len(cc) {
			return fmt.Errorf("%v: cell %d pred count: fine %d, projected %d", strat, v, len(fc), len(cc))
		}
		for i := range fc {
			if int32(c.Owner[fc[i]]) != cc[i] || fv[i] != cv[i] {
				return fmt.Errorf("%v: cell %d pred %d: fine (%d,%v), projected (%d,%v)",
					strat, v, i, fc[i], fv[i], cc[i], cv[i])
			}
		}
	}
	return nil
}

// CheckLiftOrder scores the supergraph with a random-initialized model
// and requires the lifted per-cell scores to (a) be identical inside
// each region and (b) preserve the relative order of every pair of
// region scores. Broadcast cannot invent or invert rankings — the
// coarse model's region ranking IS the fine ranking after lift.
func CheckLiftOrder(n *netlist.Netlist, g *core.Graph, opt coarsen.Options, seed int64) error {
	c, err := coarsen.New(n, opt)
	if err != nil {
		return err
	}
	cg := c.ProjectGraph(g)
	m, err := core.NewModel(core.Config{Dims: []int{6, 8, 10}, FCDims: []int{8}, NumClasses: 2, Seed: seed})
	if err != nil {
		return err
	}
	probs := m.PredictProbs(cg)
	lifted := c.Lift(probs)
	if len(lifted) != g.N {
		return fmt.Errorf("lift returned %d scores for %d cells", len(lifted), g.N)
	}
	for v := 0; v < g.N; v++ {
		if lifted[v] != probs[c.Owner[v]] {
			return fmt.Errorf("cell %d: lifted %v, supernode %d scored %v",
				v, lifted[v], c.Owner[v], probs[c.Owner[v]])
		}
	}
	// Per-region constancy and cross-region order preservation follow
	// from the broadcast identity above, but check them directly so a
	// future non-broadcast Lift still has its contract pinned.
	for s, members := range c.Members {
		for _, v := range members {
			if lifted[v] != probs[s] {
				return fmt.Errorf("region %d not constant: cell %d has %v, region %v", s, v, lifted[v], probs[s])
			}
		}
	}
	for v := 1; v < g.N; v++ {
		u := v - 1
		su, sv := c.Owner[u], c.Owner[v]
		if su == sv {
			continue
		}
		if (probs[su] < probs[sv]) != (lifted[u] < lifted[v]) || (probs[su] > probs[sv]) != (lifted[u] > lifted[v]) {
			return fmt.Errorf("order inverted: regions %d,%d scored %v,%v but cells %d,%d lifted %v,%v",
				su, sv, probs[su], probs[sv], u, v, lifted[u], lifted[v])
		}
	}
	return nil
}

// CheckCoarsenNetlist sweeps every coarsening check over both
// strategies at a reduced ratio plus the ratio-1.0 identity anchor.
func CheckCoarsenNetlist(n *netlist.Netlist, seed int64) error {
	g := core.FromNetlist(n, scoap.Compute(n))
	for _, strat := range []coarsen.Strategy{coarsen.FFR, coarsen.LevelCollapse} {
		if err := CheckIdentityProjection(n, g, strat); err != nil {
			return err
		}
		for _, ratio := range []float64{1.0, 0.5, 0.25} {
			opt := coarsen.Options{Strategy: strat, Ratio: ratio}
			if err := CheckCoarsenDeterminism(n, opt); err != nil {
				return fmt.Errorf("%v ratio %v: %v", strat, ratio, err)
			}
			if err := CheckCoarsenInvariants(n, opt); err != nil {
				return fmt.Errorf("%v ratio %v: %v", strat, ratio, err)
			}
			if err := CheckLiftOrder(n, g, opt, seed); err != nil {
				return fmt.Errorf("%v ratio %v: %v", strat, ratio, err)
			}
		}
	}
	return nil
}
