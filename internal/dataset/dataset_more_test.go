package dataset

import (
	"testing"

	"repro/internal/circuitgen"
)

func TestThresholdMonotonicity(t *testing.T) {
	// A looser difficulty threshold can only add positives.
	gcfg := circuitgen.Config{Seed: 44, NumGates: 2500}
	strict := Build("s", gcfg, 1024, 0.002, 1)
	loose := Build("l", gcfg, 1024, 0.02, 1)
	sPos, _ := strict.Graph.CountLabels()
	lPos, _ := loose.Graph.CountLabels()
	if lPos < sPos {
		t.Errorf("loose threshold produced fewer positives (%d) than strict (%d)", lPos, sPos)
	}
	// And every strict positive remains positive under the loose cut.
	for v, l := range strict.Graph.Labels {
		if l == 1 && loose.Graph.Labels[v] != 1 {
			t.Fatalf("node %d lost its positive label under a looser threshold", v)
		}
	}
}

func TestSuiteSeedIsolation(t *testing.T) {
	a := GenerateSuite(SuiteConfig{NumGates: 1200, Patterns: 512, Designs: 2, Seed: 100})
	b := GenerateSuite(SuiteConfig{NumGates: 1200, Patterns: 512, Designs: 2, Seed: 100})
	for i := range a {
		if a[i].Netlist.NumGates() != b[i].Netlist.NumGates() {
			t.Fatal("same-seed suites differ")
		}
		for v := range a[i].Graph.Labels {
			if a[i].Graph.Labels[v] != b[i].Graph.Labels[v] {
				t.Fatal("same-seed labels differ")
			}
		}
	}
}

func TestBalancedLabelsWithNoPositives(t *testing.T) {
	suite := GenerateSuite(SuiteConfig{NumGates: 1200, Patterns: 512, Designs: 1, Seed: 7})
	g := suite[0].Graph
	// Erase positives.
	for v, l := range g.Labels {
		if l == 1 {
			g.Labels[v] = 0
		}
	}
	bal := BalancedLabels(g, 1)
	for _, l := range bal {
		if l == 1 {
			t.Fatal("balanced set invented a positive")
		}
	}
}

func TestObsCountsStoredPerBenchmark(t *testing.T) {
	suite := GenerateSuite(SuiteConfig{NumGates: 1200, Patterns: 512, Designs: 1, Seed: 8})
	b := suite[0]
	if len(b.ObsCounts) != b.Netlist.NumGates() {
		t.Fatalf("ObsCounts length %d, want %d", len(b.ObsCounts), b.Netlist.NumGates())
	}
	// Positives must indeed have low counts.
	for v, l := range b.Graph.Labels {
		if l == 1 && float64(b.ObsCounts[v]) >= DefaultThreshold*512 {
			t.Fatalf("positive node %d has high observability count %d", v, b.ObsCounts[v])
		}
	}
}
