package experiments

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/obs"
)

// StageAblationResult sweeps the cascade depth (Section 3.3's "after a
// few stages, the remaining nodes should become relatively balanced"):
// F1 on a held-out design as a function of the number of stages.
type StageAblationResult struct {
	Stages []int
	F1     []float64
}

// StageAblation trains cascades of increasing depth on three designs and
// scores F1 on the fourth. One stage is the class-weighted single model;
// the paper uses three.
func StageAblation(cfg Config, maxStages int) StageAblationResult {
	span := obs.StartSpan("experiments/ablation")
	defer span.End()
	cfg = cfg.withDefaults()
	if maxStages <= 0 {
		maxStages = 4
	}
	suite := cfg.suite()
	test := len(suite) - 1
	var graphs []*core.Graph
	for d := range suite {
		if d != test {
			graphs = append(graphs, suite[d].Graph)
		}
	}
	var res StageAblationResult
	for s := 1; s <= maxStages; s++ {
		mopt := core.DefaultMultiStageOptions()
		mopt.NumStages = s
		mopt.ModelCfg = cfg.modelConfig(3, cfg.Seed+23)
		mopt.Train = cfg.trainOptions()
		ms, err := core.TrainMultiStage(graphs, mopt)
		if err != nil {
			panic(err)
		}
		c := metrics.NewConfusion(ms.Predict(suite[test].Graph), suite[test].Graph.Labels)
		res.Stages = append(res.Stages, s)
		res.F1 = append(res.F1, c.F1())
	}
	return res
}

// Fprint writes the sweep.
func (r StageAblationResult) Fprint(w io.Writer) {
	fmt.Fprintln(w, "Ablation: cascade depth vs F1 (held-out design)")
	fmt.Fprintf(w, "%8s %8s\n", "stages", "F1")
	for i, s := range r.Stages {
		fmt.Fprintf(w, "%8d %8.3f\n", s, r.F1[i])
	}
}
