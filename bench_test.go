// Package repro_test hosts the repository-level benchmark harness: one
// testing.B benchmark per table and figure of the paper's evaluation
// (each delegating to internal/experiments in Quick mode), plus ablation
// benchmarks for the design decisions DESIGN.md calls out. Run with
//
//	go test -bench=. -benchmem
//
// Full-size regeneration of the paper's numbers is cmd/experiments.
package repro_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http/httptest"
	"sort"
	"sync"
	"testing"

	"repro/internal/circuitgen"
	"repro/internal/coarsen"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/fault"
	"repro/internal/netlist"
	"repro/internal/opi"
	"repro/internal/partition"
	"repro/internal/scoap"
	"repro/internal/serve"
	"repro/internal/sparse"
	"repro/internal/tensor"
)

func quickCfg(i int) experiments.Config {
	return experiments.Config{Quick: true, Seed: int64(100 + i)}
}

// BenchmarkTable1DatasetGeneration regenerates the benchmark suite and
// its statistics (Table 1).
func BenchmarkTable1DatasetGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Table1(quickCfg(i))
	}
}

// BenchmarkFig8TrainingDepth runs the search-depth study (Figure 8).
func BenchmarkFig8TrainingDepth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig8(quickCfg(i))
	}
}

// BenchmarkTable2Classifiers runs the balanced-set classifier comparison
// (Table 2): LR, RF, SVM, MLP on cone features vs. the GCN.
func BenchmarkTable2Classifiers(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Table2(quickCfg(i))
	}
}

// BenchmarkFig9MultiStage runs the imbalanced F1 comparison (Figure 9).
func BenchmarkFig9MultiStage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig9(quickCfg(i))
	}
}

// BenchmarkFig10MatrixInference times full-graph matrix inference at the
// Figure 10 mid-size point.
func BenchmarkFig10MatrixInference(b *testing.B) {
	n := circuitgen.Generate("f10m", circuitgen.Config{Seed: 1, NumGates: 20000})
	g := core.FromNetlist(n, scoap.Compute(n))
	model := core.MustNewModel(core.DefaultConfig())
	model.Forward(g) // build CSR once
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		model.Forward(g)
	}
}

// BenchmarkFig10RecursiveInference times the prior-work recursion [12]
// per node at the same point; multiply by N for the full-graph cost the
// figure plots.
func BenchmarkFig10RecursiveInference(b *testing.B) {
	n := circuitgen.Generate("f10r", circuitgen.Config{Seed: 1, NumGates: 20000})
	g := core.FromNetlist(n, scoap.Compute(n))
	model := core.MustNewModel(core.DefaultConfig())
	rng := rand.New(rand.NewSource(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		model.InferNodeRecursive(g, int32(rng.Intn(g.N)))
	}
}

// BenchmarkTable3OPIFlow runs the full testability comparison (Table 3):
// cascade training, both insertion flows and fault-simulation scoring.
func BenchmarkTable3OPIFlow(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Table3(quickCfg(i))
	}
}

// opiBench lazily builds the insertion-flow workload shared by the
// full/incremental/coarse-refine benchmark family: the 50k-gate
// circuitgen.OPIBench design, an (untrained, deterministic)
// paper-architecture GCN, and the 99.5th-percentile threshold placing
// ~0.5% of fine nodes positive. Generation plus SCOAP takes seconds
// and must not be paid per benchmark.
var opiBench struct {
	once  sync.Once
	n     *netlist.Netlist
	meas  *scoap.Measures
	g     *core.Graph
	model *core.Model
	thr   float64
}

func opiBenchSetup(b *testing.B) {
	b.Helper()
	opiBench.once.Do(func() {
		n := circuitgen.Generate("opif", circuitgen.OPIBench(0))
		meas := scoap.Compute(n)
		g := core.FromNetlist(n, meas)
		model := core.MustNewModel(core.DefaultConfig())
		probs := append([]float64(nil), model.PredictProbs(g)...)
		sort.Float64s(probs)
		opiBench.n, opiBench.meas, opiBench.g, opiBench.model = n, meas, g, model
		opiBench.thr = probs[int(0.995*float64(len(probs)-1))]
	})
}

// opiFlowBench runs the insertion-flow pair on the shared workload. A
// few insertions per round over many rounds is the regime the
// incremental path is built for: the D-hop neighborhood of each
// round's insertions stays small relative to the design, while the
// full variant pays whole-graph inference every round. Both variants
// run the identical predict→rank→insert work; only the inference
// strategy differs, which is exactly the quantity the pair measures.
func opiFlowBench(b *testing.B, disableIncremental bool) {
	b.Helper()
	opiBenchSetup(b)
	cfg := opi.FlowConfig{
		Threshold:          opiBench.thr,
		PerIteration:       2,
		MaxIterations:      16,
		DisableIncremental: disableIncremental,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		fn, fm, fg := opiBench.n.Clone(), opiBench.meas.Clone(), opiBench.g.Clone()
		b.StartTimer()
		opi.RunFlow(fn, fm, fg, opiBench.model, cfg)
	}
}

// BenchmarkOPIFlowFull forces a whole-graph forward pass every
// iteration — the flow as the paper's Figure 7 literally states it.
func BenchmarkOPIFlowFull(b *testing.B) { opiFlowBench(b, true) }

// BenchmarkOPIFlowIncremental pays full inference once and feeds each
// round's dirty set into the cached-embedding update (Section 3.4's
// efficiency argument applied to the Section 4 loop).
func BenchmarkOPIFlowIncremental(b *testing.B) { opiFlowBench(b, false) }

// BenchmarkOPIFlowCoarseRefine is the coarse-then-refine flow on the
// identical workload and per-round schedule as the pair above: region
// scoring on the FFR-0.25 supergraph, exact impact ranking and SCOAP
// refresh on the fine netlist. The timed region includes building the
// coarsening — the flow's real entry cost — so the delta against
// BenchmarkOPIFlowIncremental is the end-to-end payoff of predicting
// on ~¼ of the nodes. The threshold is the same 99.5th percentile,
// taken over the coarse score distribution (max-aggregated features
// shift it), so both flows start with comparable positive fractions.
func BenchmarkOPIFlowCoarseRefine(b *testing.B) {
	opiBenchSetup(b)
	copt := coarsen.Options{Strategy: coarsen.FFR, Ratio: 0.25}
	c, err := coarsen.New(opiBench.n, copt)
	if err != nil {
		b.Fatal(err)
	}
	probs := append([]float64(nil), opiBench.model.PredictProbs(c.ProjectGraph(opiBench.g))...)
	sort.Float64s(probs)
	cfg := opi.CoarseRefineConfig{
		Coarsen: copt,
		Flow: opi.FlowConfig{
			Threshold:     probs[int(0.995*float64(len(probs)-1))],
			PerIteration:  2,
			MaxIterations: 16,
		},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		fn, fm, fg := opiBench.n.Clone(), opiBench.meas.Clone(), opiBench.g.Clone()
		b.StartTimer()
		if _, err := opi.RunCoarseRefine(fn, fm, fg, opiBench.model, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCoarsenBuild is the one-time cost of clustering the 50k
// design into FFR supernodes and emitting the reduced netlist — the
// entry fee every coarse-graph consumer pays once per design.
func BenchmarkCoarsenBuild(b *testing.B) {
	opiBenchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := coarsen.New(opiBench.n, coarsen.Options{Strategy: coarsen.FFR, Ratio: 0.25}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCoarsenFineForward / BenchmarkCoarsenCoarseForward time one
// whole-graph forward pass on the 50k design and on its FFR-0.25
// projection — the per-inference saving that the coarse-then-refine
// flow banks every iteration.
func BenchmarkCoarsenFineForward(b *testing.B) {
	opiBenchSetup(b)
	opiBench.model.Forward(opiBench.g) // build CSR once
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opiBench.model.Forward(opiBench.g)
	}
}

func BenchmarkCoarsenCoarseForward(b *testing.B) {
	opiBenchSetup(b)
	c, err := coarsen.New(opiBench.n, coarsen.Options{Strategy: coarsen.FFR, Ratio: 0.25})
	if err != nil {
		b.Fatal(err)
	}
	cg := c.ProjectGraph(opiBench.g)
	opiBench.model.Forward(cg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opiBench.model.Forward(cg)
	}
}

// BenchmarkFig10ShardedForward times the same mid-size point through the
// partitioned executor (8 level-band shards, halo exchange, pool workers
// = GOMAXPROCS). Its output is bit-identical to Forward — the delta vs
// BenchmarkFig10MatrixInference is pure sharding overhead (or speedup,
// on multi-core hosts).
func BenchmarkFig10ShardedForward(b *testing.B) {
	n := circuitgen.Generate("f10m", circuitgen.Config{Seed: 1, NumGates: 20000})
	g := core.FromNetlist(n, scoap.Compute(n))
	sp, err := partition.NewSharded(core.MustNewModel(core.DefaultConfig()), partition.Options{K: 8})
	if err != nil {
		b.Fatal(err)
	}
	defer sp.Close()
	sp.PredictProbs(g) // compile the partition once
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp.PredictProbs(g)
	}
}

// paperScale lazily builds the ≥1M-cell instance shared by the
// paper-scale benchmark pair; generation plus SCOAP takes tens of
// seconds and must not be paid per benchmark.
var paperScale struct {
	once sync.Once
	g    *core.Graph
	m    *core.Model
}

func paperScaleSetup(b *testing.B) (*core.Graph, *core.Model) {
	b.Helper()
	paperScale.once.Do(func() {
		n := circuitgen.Generate("m1", circuitgen.PaperScale(1))
		paperScale.g = core.FromNetlist(n, scoap.Compute(n))
		paperScale.m = core.MustNewModel(core.DefaultConfig())
	})
	return paperScale.g, paperScale.m
}

// BenchmarkPaperScaleForward is whole-graph matrix inference at the
// paper's largest reported scale (Table 1 / the right edge of Figure
// 10): one full forward over ≥1M cells. Skipped under -short — one
// iteration runs for tens of seconds.
func BenchmarkPaperScaleForward(b *testing.B) {
	if testing.Short() {
		b.Skip("paper-scale benchmark skipped in -short mode")
	}
	g, m := paperScaleSetup(b)
	m.Forward(g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Forward(g)
	}
}

// BenchmarkPaperScaleShardedForward is the same forward through the
// sharded executor; cmd/benchjson records it across a worker matrix.
func BenchmarkPaperScaleShardedForward(b *testing.B) {
	if testing.Short() {
		b.Skip("paper-scale benchmark skipped in -short mode")
	}
	g, m := paperScaleSetup(b)
	sp, err := partition.NewSharded(m, partition.Options{K: 8})
	if err != nil {
		b.Fatal(err)
	}
	defer sp.Close()
	sp.PredictProbs(g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp.PredictProbs(g)
	}
}

// --- Ablation benchmarks -------------------------------------------------

// BenchmarkAblationCOOvsCSR quantifies the COO→CSR conversion payoff for
// the SpMM at the heart of inference (DESIGN.md decision 2).
func BenchmarkAblationCOOMul(b *testing.B) {
	n := circuitgen.Generate("ab1", circuitgen.Config{Seed: 3, NumGates: 20000})
	g := core.FromNetlist(n, scoap.Compute(n))
	x := tensor.NewDense(g.N, 32)
	rng := rand.New(rand.NewSource(1))
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	dst := tensor.NewDense(g.N, 32)
	coo := g.PredCOO()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		coo.MulDense(dst, x)
	}
}

func BenchmarkAblationCSRMul(b *testing.B) {
	n := circuitgen.Generate("ab1", circuitgen.Config{Seed: 3, NumGates: 20000})
	g := core.FromNetlist(n, scoap.Compute(n))
	x := tensor.NewDense(g.N, 32)
	rng := rand.New(rand.NewSource(1))
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	dst := tensor.NewDense(g.N, 32)
	csr := g.Pred()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		csr.MulDense(dst, x)
	}
}

// BenchmarkAblationCSRMul32 is the float32 twin of AblationCSRMul:
// identical adjacency and block shape through the narrowed SpMM kernel
// (DESIGN.md decision 10). The f64/f32 delta is the memory-bandwidth
// saving of halving the dense operand width.
func BenchmarkAblationCSRMul32(b *testing.B) {
	n := circuitgen.Generate("ab1", circuitgen.Config{Seed: 3, NumGates: 20000})
	g := core.FromNetlist(n, scoap.Compute(n))
	x := tensor.NewDense32(g.N, 32)
	rng := rand.New(rand.NewSource(1))
	for i := range x.Data {
		x.Data[i] = float32(rng.NormFloat64())
	}
	dst := tensor.NewDense32(g.N, 32)
	csr := g.Pred()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		csr.MulDense32(dst, x)
	}
}

// BenchmarkFig10MatrixInferenceF32 scores the Figure 10 mid-size point
// through the float32 forward path; compare with Fig10MatrixInference
// for the end-to-end precision-narrowing payoff.
func BenchmarkFig10MatrixInferenceF32(b *testing.B) {
	n := circuitgen.Generate("f10m", circuitgen.Config{Seed: 1, NumGates: 20000})
	g := core.FromNetlist(n, scoap.Compute(n))
	model := core.MustNewModel(core.DefaultConfig())
	model.SetFloat32Inference(true)
	model.PredictProbs(g) // build CSR + narrowed weights once
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		model.PredictProbs(g)
	}
}

// BenchmarkAblationSpMM50k runs the nnz-balanced parallel SpMM over the
// 50k-gate OPI fixture's adjacency at a spread of worker counts
// (workers are clamped to min(GOMAXPROCS, NumCPU) inside the kernel, so
// sub-benchmarks beyond the host's cores measure the clamped reality).
func BenchmarkAblationSpMM50k(b *testing.B) {
	opiBenchSetup(b)
	csr := opiBench.g.Pred()
	x := tensor.NewDense(opiBench.g.N, 32)
	rng := rand.New(rand.NewSource(7))
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	dst := tensor.NewDense(opiBench.g.N, 32)
	for _, workers := range []int{1, 4, 0} {
		name := fmt.Sprintf("workers=%d", workers)
		if workers == 0 {
			name = "workers=numcpu"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				csr.MulDenseParallel(dst, x, workers)
			}
		})
	}
}

// BenchmarkAblationSpMMParallel measures the goroutine-parallel SpMM
// (the multi-GPU stand-in) against the serial kernel.
func BenchmarkAblationSpMMParallel(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	coo := sparse.NewCOO(100000, 100000)
	for i := 0; i < 300000; i++ {
		coo.Append(int32(rng.Intn(100000)), int32(rng.Intn(100000)), 1)
	}
	csr := coo.ToCSR()
	x := tensor.NewDense(100000, 16)
	dst := tensor.NewDense(100000, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		csr.MulDenseParallel(dst, x, 0)
	}
}

// BenchmarkAblationIncrementalSCOAP compares the incremental fan-in-cone
// observability update against a full recompute after one insertion
// (DESIGN.md's incremental-update decision; Section 4 of the paper).
func BenchmarkAblationIncrementalSCOAP(b *testing.B) {
	n := circuitgen.Generate("ab2", circuitgen.Config{Seed: 4, NumGates: 20000})
	m := scoap.Compute(n)
	op, err := n.InsertObservationPoint(int32(n.NumGates() / 3))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.UpdateAfterObservationPoint(n, op)
	}
}

func BenchmarkAblationFullSCOAPRecompute(b *testing.B) {
	n := circuitgen.Generate("ab2", circuitgen.Config{Seed: 4, NumGates: 20000})
	if _, err := n.InsertObservationPoint(int32(n.NumGates() / 3)); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		scoap.Compute(n)
	}
}

// BenchmarkAblationFaultSimulation measures the 64-way bit-parallel
// simulation batch that underlies labeling and Table 3 scoring.
func BenchmarkAblationFaultSimulation(b *testing.B) {
	n := circuitgen.Generate("ab3", circuitgen.Config{Seed: 5, NumGates: 50000})
	sim := fault.NewSimulator(n)
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Batch(rng)
	}
}

// --- Serving benchmarks --------------------------------------------------

// serveFanout is the concurrent-client count of the serving benchmark
// pair: enough to make coalescing matter, small enough that the serial
// variant is not dominated by queueing.
const serveFanout = 6

// serveScoreBench measures the serving layer's concurrent-score path.
// Each iteration plays one burst of serveFanout concurrent /v1/score
// requests for a previously-unseen 30k-gate design (a unique leading
// comment line defeats the design cache across iterations, so every
// burst pays a cold compile). With batching the burst coalesces into a
// single parse→SCOAP→forward; the serial variant pays one per request.
// The pair is the measured basis for the ≥2× batched-throughput claim
// in docs/SERVING.md.
func serveScoreBench(b *testing.B, batched bool) {
	b.Helper()
	n := circuitgen.Generate("srv", circuitgen.Config{Seed: 11, NumGates: 30000})
	var buf bytes.Buffer
	if err := netlist.Write(&buf, n); err != nil {
		b.Fatal(err)
	}
	base := buf.String()

	opts := serve.Options{
		Predictor:     core.MustNewModel(core.DefaultConfig()),
		MaxConcurrent: serveFanout,
		MaxQueue:      serveFanout,
		CacheEntries:  2, // bound memory: each entry holds a 30k-node graph + embeddings
	}
	if !batched {
		opts.DisableBatching = true
		opts.CacheEntries = -1
	}
	srv, err := serve.New(opts)
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := ts.Client()

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		body, err := json.Marshal(serve.ScoreRequest{Netlist: fmt.Sprintf("# iter%d\n%s", i, base)})
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		var wg sync.WaitGroup
		errs := make(chan error, serveFanout)
		for r := 0; r < serveFanout; r++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				resp, err := client.Post(ts.URL+"/v1/score", "application/json", bytes.NewReader(body))
				if err != nil {
					errs <- err
					return
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != 200 {
					errs <- fmt.Errorf("status %d", resp.StatusCode)
				}
			}()
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			b.Fatal(err)
		}
	}
}

// BenchmarkServeScoreBatched: concurrent identical requests ride one
// single-flight compile.
func BenchmarkServeScoreBatched(b *testing.B) { serveScoreBench(b, true) }

// BenchmarkServeScoreSerial: batching and caching disabled; every
// request pays its own compile.
func BenchmarkServeScoreSerial(b *testing.B) { serveScoreBench(b, false) }
