// Package serve is the inference-as-a-service layer: a long-lived HTTP
// server that loads trained GCN weights once and answers testability
// queries over JSON — the paper's load-once/query-many usage pattern for
// trained models on production designs.
//
// # Endpoints
//
//	POST /v1/score        submit a .bench netlist, get per-node
//	                      difficult-to-observe scores
//	POST /v1/score/delta  apply observation-point edits to a cached
//	                      design and rescore incrementally
//	POST /v1/opi          run the GCN-guided insertion flow and return
//	                      suggested observation points
//	GET  /v1/designs      list cached designs (size, age, hit counts)
//	GET  /healthz         liveness/readiness
//	GET  /metrics         Prometheus exposition (internal/obs)
//	GET  /snapshot        full observability snapshot (internal/obs)
//	GET  /debug/requests  inflight + recent request traces (internal/obs)
//
// docs/SERVING.md describes the architecture and semantics;
// docs/API.md is the normative wire-format reference.
//
// # Production plumbing
//
// Four mechanisms make the server fit for concurrent production use.
// A single-flight batcher coalesces concurrent score requests for the
// same netlist into one compile + one SpMM forward call. A warm LRU
// cache keyed by netlist hash keeps compiled designs and their cached
// GCN layer embeddings alive, so repeat scores are O(1) and edit deltas
// cost a D-hop-bounded incremental update instead of a full forward
// pass. A bounded admission queue sheds excess load early (429 +
// Retry-After) instead of letting latency grow without bound. And every
// request runs under a context deadline (server default, shortenable
// per request), reported as 504 when exceeded.
package serve

import (
	"io"
	"net/http"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
)

// Options configures a Server. The zero value of every field selects a
// sensible default.
type Options struct {
	// Predictor is the trained model that scores graphs; required.
	// *core.Model and *core.MultiStage are cloned per cached design so
	// concurrent requests never share model scratch state; other
	// IncrementalPredictor implementations must be safe for concurrent
	// use themselves.
	Predictor core.IncrementalPredictor

	// ModelInfo is a human-readable description of the loaded weights,
	// echoed by /healthz.
	ModelInfo string

	// MaxConcurrent bounds requests doing work simultaneously; default
	// 4.
	MaxConcurrent int

	// MaxQueue bounds requests waiting for a slot; beyond it requests
	// are shed with 429. Default 64.
	MaxQueue int

	// DefaultTimeout is the per-request deadline; a request's timeout_ms
	// field may shorten it but never lengthen it. Default 30s.
	DefaultTimeout time.Duration

	// MaxBodyBytes caps request body size (413 beyond it). Default
	// 64 MiB.
	MaxBodyBytes int64

	// CacheEntries sizes the compiled-design LRU. 0 selects the default
	// (32); negative disables caching entirely, which also disables
	// /v1/score/delta (every design id becomes unknown).
	CacheEntries int

	// DisableBatching turns off single-flight coalescing of identical
	// concurrent score requests; used by benchmarks and tests to measure
	// the serial path.
	DisableBatching bool

	// Float32Scoring compiles designs with the predictor's float32
	// inference mode when the predictor supports it
	// (core.Float32Inferencer): /v1/score pays a ~2×-lighter f32 forward
	// pass instead of building the float64 incremental session up front.
	// The session is then built lazily on a design's first /v1/score/delta
	// (delta updates stay exact float64), so score-only traffic never pays
	// for it. Scores differ from the f64 path by at most ~1e-4
	// (refcheck.F32Tolerance).
	Float32Scoring bool

	// AccessLog, when non-nil, receives one structured JSON line per
	// logged request (see obs.AccessRecord for the schema). nil disables
	// access logging.
	AccessLog io.Writer

	// AccessLogSample logs one in every AccessLogSample fast requests;
	// <=1 logs all of them. Slow requests always log.
	AccessLogSample int

	// SlowRequest is the slow-request threshold: a request at or above
	// it bypasses access-log sampling, logs its full phase breakdown,
	// and increments serve.slow_requests. 0 disables slow detection.
	SlowRequest time.Duration
}

func (o Options) withDefaults() Options {
	if o.MaxConcurrent <= 0 {
		o.MaxConcurrent = 4
	}
	if o.MaxQueue <= 0 {
		o.MaxQueue = 64
	}
	if o.DefaultTimeout <= 0 {
		o.DefaultTimeout = 30 * time.Second
	}
	if o.MaxBodyBytes <= 0 {
		o.MaxBodyBytes = 64 << 20
	}
	if o.CacheEntries == 0 {
		o.CacheEntries = 32
	}
	if o.ModelInfo == "" {
		o.ModelInfo = "unnamed predictor"
	}
	return o
}

// Server is the HTTP inference service. Construct with New, expose with
// Handler, and call StartDraining when shutting down.
type Server struct {
	opts      Options
	admit     *admission
	cache     *designCache
	flight    *flightGroup
	pool      chan core.IncrementalPredictor
	mux       *http.ServeMux
	accessLog *obs.AccessLogger
	start     time.Time
	draining  atomic.Bool
}

// New builds a Server around a loaded predictor (see
// core.LoadCheckpointFile).
func New(opts Options) (*Server, error) {
	opts = opts.withDefaults()
	if opts.Predictor == nil {
		return nil, errNoPredictor
	}
	s := &Server{
		opts:      opts,
		admit:     newAdmission(opts.MaxConcurrent, opts.MaxQueue),
		cache:     newDesignCache(opts.CacheEntries),
		flight:    newFlightGroup(),
		pool:      make(chan core.IncrementalPredictor, opts.MaxConcurrent),
		mux:       http.NewServeMux(),
		accessLog: obs.NewAccessLogger(opts.AccessLog, opts.AccessLogSample, opts.SlowRequest),
		start:     time.Now(),
	}
	// A replica pool for paths that run whole flows (such as /v1/opi)
	// rather than per-design sessions: admission guarantees at most
	// MaxConcurrent concurrent holders, so checkout never starves.
	for i := 0; i < opts.MaxConcurrent; i++ {
		s.pool <- core.ClonePredictor(opts.Predictor)
	}
	s.mux.HandleFunc("POST /v1/score", s.instrument("score", s.handleScore))
	s.mux.HandleFunc("POST /v1/score/delta", s.instrument("delta", s.handleDelta))
	s.mux.HandleFunc("POST /v1/opi", s.instrument("opi", s.handleOPI))
	s.mux.HandleFunc("GET /v1/designs", s.instrument("designs", s.handleDesigns))
	s.mux.HandleFunc("GET /healthz", s.instrument("healthz", s.handleHealth))
	obs.RegisterHTTP(s.mux) // /metrics, /snapshot, /debug/requests
	return s, nil
}

// Handler returns the server's HTTP handler (the /v1 API plus /healthz,
// /metrics and /snapshot).
func (s *Server) Handler() http.Handler { return s.mux }

// StartDraining flips /healthz to "draining" (HTTP 503) so load
// balancers stop sending new work while in-flight requests finish;
// cmd/serve calls it on SIGTERM before http.Server.Shutdown.
func (s *Server) StartDraining() { s.draining.Store(true) }

// Draining reports whether StartDraining has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// CachedDesigns reports current design-cache occupancy.
func (s *Server) CachedDesigns() int { return s.cache.len() }
