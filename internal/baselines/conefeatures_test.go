package baselines

import (
	"math/rand"
	"testing"

	"repro/internal/circuitgen"
	"repro/internal/features"
	"repro/internal/scoap"
	"repro/internal/tensor"
)

// TestConeFeaturesCloneDeterminism pins the contract the baseline
// pipeline depends on: BFS-cone feature extraction is a pure function
// of circuit structure. Fresh extractors over a netlist and over its
// structural clone must produce bitwise-identical matrices — any map
// iteration or shared mutable state sneaking into the cone walk would
// break this (and silently scramble every classical baseline's input).
func TestConeFeaturesCloneDeterminism(t *testing.T) {
	n := circuitgen.Generate("cone", circuitgen.Config{Seed: 19, NumGates: 500, DFFFrac: 0.2})
	clone := n.Clone()

	nodes := make([]int32, 0, 40)
	for id := int32(3); id < int32(n.NumGates()); id += 13 {
		nodes = append(nodes, id)
	}

	ea := features.NewExtractor(n, scoap.Compute(n))
	eb := features.NewExtractor(clone, scoap.Compute(clone))
	ea.ConeSize = 40
	eb.ConeSize = 40
	a := ea.Matrix(nodes)
	b := eb.Matrix(nodes)
	if a.Rows != len(nodes) || a.Cols != features.Dim(40) {
		t.Fatalf("matrix shape %dx%d", a.Rows, a.Cols)
	}
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatalf("feature %d differs between netlist and clone: %v != %v", i, a.Data[i], b.Data[i])
		}
	}
}

// TestBaselinesLearnFromConeFeatures runs the real end-to-end baseline
// path — netlist, SCOAP attributes, cone features, classifier — and
// requires every model family to beat chance at telling hard-to-observe
// nodes from easy ones, the paper's Table 2 task in miniature.
func TestBaselinesLearnFromConeFeatures(t *testing.T) {
	n := circuitgen.Generate("bl", circuitgen.Config{Seed: 5, NumGates: 900, DFFFrac: 0.15})
	m := scoap.Compute(n)
	e := features.NewExtractor(n, m)
	e.ConeSize = 30

	// Label by SCOAP observability median: crude, but perfectly
	// derivable from the features, so a working learner must beat 0.5.
	var nodes []int32
	for id := int32(0); id < int32(n.NumGates()); id += 2 {
		nodes = append(nodes, id)
	}
	co := make([]int, len(nodes))
	for i, id := range nodes {
		c := int(m.CO[id])
		if c > 1000 {
			c = 1000
		}
		co[i] = c
	}
	sortedCO := append([]int(nil), co...)
	for i := range sortedCO { // insertion sort: tiny slice, no extra imports
		for j := i; j > 0 && sortedCO[j] < sortedCO[j-1]; j-- {
			sortedCO[j], sortedCO[j-1] = sortedCO[j-1], sortedCO[j]
		}
	}
	median := sortedCO[len(sortedCO)/2]
	labels := make([]int, len(nodes))
	for i, c := range co {
		if c > median {
			labels[i] = 1
		}
	}

	x := e.Matrix(nodes)
	rng := rand.New(rand.NewSource(3))
	perm := rng.Perm(len(nodes))
	split := len(nodes) * 3 / 4
	gather := func(idx []int) (*tensor.Dense, []int) {
		xs := tensor.NewDense(len(idx), x.Cols)
		ys := make([]int, len(idx))
		for i, p := range idx {
			copy(xs.Row(i), x.Row(p))
			ys[i] = labels[p]
		}
		return xs, ys
	}
	xTrain, yTrain := gather(perm[:split])
	xTest, yTest := gather(perm[split:])

	for _, model := range allModels(11) {
		model.Fit(xTrain, yTrain)
		if acc := accuracy(model.Predict(xTest), yTest); acc < 0.6 {
			t.Errorf("%s: cone-feature accuracy %.3f — not better than chance", model.Name(), acc)
		}
	}
}
