package core

import (
	"repro/internal/nn"
	"repro/internal/tensor"
)

// This file reproduces the recursion-based inference of prior inductive
// GCNs (Hamilton et al., "Inductive representation learning on large
// graphs" — reference [12] of the paper), which serves as the Figure 10
// scalability baseline. Each node's embedding is computed by expanding
// its depth-D neighborhood independently; overlapping neighborhoods are
// re-evaluated from scratch, which is exactly the duplicated computation
// the paper's matrix formulation eliminates. The two paths produce
// identical results (verified in tests); only their complexity differs.

// InferNodeRecursive classifies a single node by naive neighborhood
// expansion and returns its positive-class probability.
func (m *Model) InferNodeRecursive(g *Graph, v int32) float64 {
	e := m.embedRecursive(g, v, len(m.Enc))
	logits := m.FC.Forward(rowMat(e))
	probs := nn.Softmax(logits)
	return probs.At(0, 1)
}

// InferRecursive classifies each listed node independently by recursive
// expansion; passing every node reproduces the baseline's full-graph
// inference cost.
func (m *Model) InferRecursive(g *Graph, nodes []int32) []float64 {
	out := make([]float64, len(nodes))
	for i, v := range nodes {
		out[i] = m.InferNodeRecursive(g, v)
	}
	return out
}

// embedRecursive computes e_d(v) per Algorithm 1, without memoization.
func (m *Model) embedRecursive(g *Graph, v int32, d int) []float64 {
	if d == 0 {
		return g.X.Row(int(v))
	}
	wpr, wsu := m.Wpr.Data[0], m.Wsu.Data[0]
	self := m.embedRecursive(g, v, d-1)
	agg := append([]float64(nil), self...)
	preds, pvals := g.PredEntries(v)
	for i, u := range preds {
		eu := m.embedRecursive(g, u, d-1)
		w := wpr * pvals[i]
		for j, x := range eu {
			agg[j] += w * x
		}
	}
	succs, svals := g.SuccEntries(v)
	for i, u := range succs {
		eu := m.embedRecursive(g, u, d-1)
		w := wsu * svals[i]
		for j, x := range eu {
			agg[j] += w * x
		}
	}
	out := m.Enc[d-1].Forward(rowMat(agg))
	out.ReLUInPlace()
	return out.Data
}

func rowMat(v []float64) *tensor.Dense {
	return &tensor.Dense{Rows: 1, Cols: len(v), Data: v}
}
