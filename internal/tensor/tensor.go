// Package tensor provides the dense linear algebra needed by the neural
// network layers: row-major float64 matrices with cache-friendly matrix
// multiplication (including the transposed variants used by
// backpropagation) and elementwise kernels.
//
// It replaces the GPU BLAS the paper relies on. Everything here is exact
// and deterministic, which keeps gradient checking and property-based
// tests straightforward.
package tensor

import (
	"fmt"
	"math"
	"math/rand"
)

// Dense is a row-major matrix. Data has length Rows*Cols and element
// (i,j) lives at Data[i*Cols+j].
type Dense struct {
	// Rows and Cols are the matrix dimensions.
	Rows, Cols int
	// Data is the row-major backing array of length Rows*Cols.
	Data []float64
}

// NewDense allocates a zeroed Rows×Cols matrix.
func NewDense(rows, cols int) *Dense {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: invalid shape %d×%d", rows, cols))
	}
	return &Dense{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from a slice of equal-length rows.
func FromRows(rows [][]float64) *Dense {
	if len(rows) == 0 {
		return NewDense(0, 0)
	}
	d := NewDense(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != d.Cols {
			panic(fmt.Sprintf("tensor: ragged row %d: %d != %d", i, len(r), d.Cols))
		}
		copy(d.Row(i), r)
	}
	return d
}

// At returns element (i,j).
func (d *Dense) At(i, j int) float64 { return d.Data[i*d.Cols+j] }

// Set assigns element (i,j).
func (d *Dense) Set(i, j int, v float64) { d.Data[i*d.Cols+j] = v }

// Row returns a mutable view of row i.
func (d *Dense) Row(i int) []float64 { return d.Data[i*d.Cols : (i+1)*d.Cols] }

// Clone returns a deep copy.
func (d *Dense) Clone() *Dense {
	c := NewDense(d.Rows, d.Cols)
	copy(c.Data, d.Data)
	return c
}

// Zero sets every element to 0.
func (d *Dense) Zero() {
	for i := range d.Data {
		d.Data[i] = 0
	}
}

// CopyFrom copies src into d; shapes must match.
func (d *Dense) CopyFrom(src *Dense) {
	if d.Rows != src.Rows || d.Cols != src.Cols {
		panic("tensor: CopyFrom shape mismatch")
	}
	copy(d.Data, src.Data)
}

// AddInPlace adds o elementwise into d.
func (d *Dense) AddInPlace(o *Dense) {
	if d.Rows != o.Rows || d.Cols != o.Cols {
		panic("tensor: AddInPlace shape mismatch")
	}
	for i, v := range o.Data {
		d.Data[i] += v
	}
}

// AxpyInPlace adds alpha*o elementwise into d.
func (d *Dense) AxpyInPlace(alpha float64, o *Dense) {
	if d.Rows != o.Rows || d.Cols != o.Cols {
		panic("tensor: AxpyInPlace shape mismatch")
	}
	for i, v := range o.Data {
		d.Data[i] += alpha * v
	}
}

// Scale multiplies every element by alpha.
func (d *Dense) Scale(alpha float64) {
	for i := range d.Data {
		d.Data[i] *= alpha
	}
}

// Dot returns the Frobenius inner product <d, o>.
func (d *Dense) Dot(o *Dense) float64 {
	if d.Rows != o.Rows || d.Cols != o.Cols {
		panic("tensor: Dot shape mismatch")
	}
	var s float64
	for i, v := range d.Data {
		s += v * o.Data[i]
	}
	return s
}

// MatMul computes dst = a·b. dst must be a.Rows×b.Cols and distinct from
// both operands. The kernel is the cache-friendly ikj ordering.
func MatMul(dst, a, b *Dense) {
	if a.Cols != b.Rows || dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMul shape mismatch (%d×%d)·(%d×%d)->(%d×%d)",
			a.Rows, a.Cols, b.Rows, b.Cols, dst.Rows, dst.Cols))
	}
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		crow := dst.Row(i)
		first := true
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Row(k)
			if first {
				for j, bv := range brow {
					crow[j] = av * bv
				}
				first = false
				continue
			}
			for j, bv := range brow {
				crow[j] += av * bv
			}
		}
		if first {
			for j := range crow {
				crow[j] = 0
			}
		}
	}
}

// MatMulTransB computes dst = a·bᵀ. dst must be a.Rows×b.Rows.
func MatMulTransB(dst, a, b *Dense) {
	if a.Cols != b.Cols || dst.Rows != a.Rows || dst.Cols != b.Rows {
		panic("tensor: MatMulTransB shape mismatch")
	}
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		crow := dst.Row(i)
		for j := 0; j < b.Rows; j++ {
			brow := b.Row(j)
			var s float64
			for k, av := range arow {
				s += av * brow[k]
			}
			crow[j] = s
		}
	}
}

// MatMulTransA computes dst = aᵀ·b. dst must be a.Cols×b.Cols.
func MatMulTransA(dst, a, b *Dense) {
	if a.Rows != b.Rows || dst.Rows != a.Cols || dst.Cols != b.Cols {
		panic("tensor: MatMulTransA shape mismatch")
	}
	dst.Zero()
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		brow := b.Row(i)
		for k, av := range arow {
			if av == 0 {
				continue
			}
			crow := dst.Row(k)
			for j, bv := range brow {
				crow[j] += av * bv
			}
		}
	}
}

// AddRowVector adds vector v to every row of d (bias addition).
func (d *Dense) AddRowVector(v []float64) {
	if len(v) != d.Cols {
		panic("tensor: AddRowVector length mismatch")
	}
	for i := 0; i < d.Rows; i++ {
		row := d.Row(i)
		for j, b := range v {
			row[j] += b
		}
	}
}

// ReLUInPlace applies max(x,0) elementwise.
func (d *Dense) ReLUInPlace() {
	for i, v := range d.Data {
		if v < 0 {
			d.Data[i] = 0
		}
	}
}

// ReLUBackwardInPlace zeroes grad entries where the forward activation
// out was zero (the ReLU gradient mask).
func ReLUBackwardInPlace(grad, out *Dense) {
	if grad.Rows != out.Rows || grad.Cols != out.Cols {
		panic("tensor: ReLUBackward shape mismatch")
	}
	for i, v := range out.Data {
		if v <= 0 {
			grad.Data[i] = 0
		}
	}
}

// SoftmaxRowsInPlace turns every row into a softmax distribution using
// the max-subtraction trick for numerical stability.
func (d *Dense) SoftmaxRowsInPlace() {
	for i := 0; i < d.Rows; i++ {
		row := d.Row(i)
		max := math.Inf(-1)
		for _, v := range row {
			if v > max {
				max = v
			}
		}
		var sum float64
		for j, v := range row {
			e := math.Exp(v - max)
			row[j] = e
			sum += e
		}
		inv := 1 / sum
		for j := range row {
			row[j] *= inv
		}
	}
}

// ArgmaxRows returns the index of the maximum element in every row.
func (d *Dense) ArgmaxRows() []int {
	out := make([]int, d.Rows)
	for i := 0; i < d.Rows; i++ {
		row := d.Row(i)
		best, bi := math.Inf(-1), 0
		for j, v := range row {
			if v > best {
				best, bi = v, j
			}
		}
		out[i] = bi
	}
	return out
}

// XavierInit fills d with Glorot-uniform values scaled by fan-in/fan-out,
// drawing from rng for determinism.
func (d *Dense) XavierInit(rng *rand.Rand) {
	limit := math.Sqrt(6.0 / float64(d.Rows+d.Cols))
	for i := range d.Data {
		d.Data[i] = (rng.Float64()*2 - 1) * limit
	}
}

// MaxAbsDiff returns the largest absolute elementwise difference between
// two equally shaped matrices; used heavily in tests.
func MaxAbsDiff(a, b *Dense) float64 {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic("tensor: MaxAbsDiff shape mismatch")
	}
	var m float64
	for i, v := range a.Data {
		d := math.Abs(v - b.Data[i])
		if d > m {
			m = d
		}
	}
	return m
}
