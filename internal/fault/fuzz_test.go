package fault_test

import (
	"testing"

	"repro/internal/netlist"
	"repro/internal/refcheck"
)

// fuzzNetlist deterministically decodes bytes into a small scan-model
// DAG: a few primary inputs, then one gate per 3-byte chunk whose type
// and fanin choices come from the bytes, capped at 48 cells, with a
// primary output on the last net and an observation point mid-circuit.
func fuzzNetlist(data []byte) *netlist.Netlist {
	types := []netlist.GateType{
		netlist.Buf, netlist.Not, netlist.DFF,
		netlist.And, netlist.Nand, netlist.Or,
		netlist.Nor, netlist.Xor, netlist.Xnor,
	}
	n := netlist.New("fuzz")
	var ids []int32
	for i := 0; i < 2+int(data[0]%4); i++ {
		ids = append(ids, n.MustAddGate(netlist.Input, ""))
	}
	for i := 1; i+2 < len(data) && len(ids) < 48; i += 3 {
		t := types[int(data[i])%len(types)]
		a := ids[int(data[i+1])%len(ids)]
		b := ids[int(data[i+2])%len(ids)]
		switch t {
		case netlist.Buf, netlist.Not, netlist.DFF:
			ids = append(ids, n.MustAddGate(t, "", a))
		default:
			ids = append(ids, n.MustAddGate(t, "", a, b))
		}
	}
	n.MustAddGate(netlist.Output, "", ids[len(ids)-1])
	n.MustAddGate(netlist.Obs, "op", ids[len(ids)/2])
	return n
}

// FuzzBatchSim decodes bytes into a circuit and cross-checks the 64-way
// bit-parallel simulator against 64 independent serial single-pattern
// simulations and the exact fault-detection criterion, via the
// differential driver in internal/refcheck. Any lane of any value word,
// any faulty re-simulation, or any detect mask that disagrees with the
// serial reference fails the target. Seed corpus lives in
// testdata/fuzz/FuzzBatchSim.
func FuzzBatchSim(f *testing.F) {
	f.Add([]byte{0, 3, 0, 1, 7, 1, 2, 2, 4, 0, 8, 3, 5})
	f.Add([]byte{2, 2, 0, 0, 2, 1, 1, 5, 2, 3})
	f.Add([]byte{1})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		n := fuzzNetlist(data)
		if err := n.Validate(); err != nil {
			t.Fatalf("decoder produced invalid netlist: %v", err)
		}
		seed := int64(7)
		for _, b := range data {
			seed = seed*257 + int64(b)
		}
		if err := refcheck.CheckFaultSim(n, seed, 6); err != nil {
			t.Fatalf("gates=%d: %v", n.NumGates(), err)
		}
	})
}
