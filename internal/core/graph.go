// Package core implements the paper's primary contribution: a
// high-performance graph convolutional network for netlist
// representation and testability classification.
//
// The package contains
//
//   - the GCN-ready graph representation (node attribute matrix plus the
//     predecessor/successor adjacency in incremental COO and fast CSR
//     forms),
//   - the GCN model itself: weighted-sum aggregators with learnable
//     predecessor/successor weights (Equation 1), encoder layers, and a
//     fully connected classifier head,
//   - matrix-formulated inference E_d = σ((A·E_{d-1})·W_d) over the sparse
//     adjacency (Equations 2–3), with full manual backpropagation for
//     end-to-end training,
//   - the naive per-node recursive inference of prior inductive GCNs
//     (Hamilton et al. [12]), reproduced as the Figure 10 baseline,
//   - the multi-stage cascade classifier for extreme class imbalance
//     (Section 3.3), and
//   - a data-parallel trainer that processes one graph per worker and
//     merges gradients, the CPU analogue of the paper's multi-GPU scheme
//     (Section 3.4.2).
package core

import (
	"fmt"
	"math"

	"repro/internal/netlist"
	"repro/internal/scoap"
	"repro/internal/sparse"
	"repro/internal/tensor"
)

// InputDim is the node attribute dimensionality: [LL, C0, C1, O].
const InputDim = 4

// COClamp is the observability clamp applied before feature transform;
// unobservable nets saturate here rather than at MaxInt32.
const COClamp = 1 << 20

// Graph is a netlist prepared for GCN processing: a node attribute matrix
// X (N×4) and the directed adjacency split into a predecessor matrix P
// (P[v][u] = 1 iff edge u→v) kept in COO form for O(1) incremental
// updates. The successor matrix S is exactly Pᵀ. CSR forms of both are
// built lazily and invalidated by mutation.
type Graph struct {
	N      int
	X      *tensor.Dense // N×InputDim transformed attributes
	Labels []int         // per node: 1 difficult-to-observe, 0 easy, -1 unknown

	predCOO *sparse.COO
	pred    *sparse.CSR // P
	succ    *sparse.CSR // S = Pᵀ
	// Stale flags mark the CSRs for rebuild-in-place after a mutation:
	// the backing arrays are kept and refilled (ToCSRInto/TransposeInto),
	// so the once-per-insertion rebuild in the OPI loop is allocation-free
	// in steady state. Consequence: CSR views obtained from Pred()/Succ()
	// (including PredList/SuccList slices) are valid only until the next
	// graph mutation — every consumer in this repo re-fetches per use.
	predStale, succStale bool
}

// NewGraph creates an empty graph with capacity for n nodes.
func NewGraph(n int) *Graph {
	return &Graph{
		N:       n,
		X:       tensor.NewDense(n, InputDim),
		Labels:  make([]int, n),
		predCOO: sparse.NewCOO(n, n),
	}
}

// AttributeVector applies the feature transform used everywhere in this
// reproduction: log1p compression of the raw [LL, C0, C1, O] SCOAP
// attributes. The transform is fixed (no dataset statistics), preserving
// the model's inductive property across unseen designs.
func AttributeVector(ll, c0, c1, co float64) [4]float64 {
	return [4]float64{
		math.Log1p(ll),
		math.Log1p(c0),
		math.Log1p(c1),
		math.Log1p(co),
	}
}

// FromNetlist builds the GCN graph for a netlist with precomputed SCOAP
// measures. Labels are initialized to -1 (unknown).
func FromNetlist(n *netlist.Netlist, m *scoap.Measures) *Graph {
	g := NewGraph(n.NumGates())
	attrs := m.Attributes(n, COClamp)
	for id := 0; id < g.N; id++ {
		a := AttributeVector(attrs[id][0], attrs[id][1], attrs[id][2], attrs[id][3])
		copy(g.X.Row(id), a[:])
		g.Labels[id] = -1
	}
	for id := int32(0); id < int32(g.N); id++ {
		for _, f := range n.Fanin(id) {
			g.predCOO.Append(id, f, 1)
		}
	}
	return g
}

// Pred returns the predecessor adjacency in CSR form, rebuilding it
// (into the previous build's arrays) if the COO has been mutated. The
// returned CSR is valid only until the next graph mutation.
func (g *Graph) Pred() *sparse.CSR {
	if g.pred == nil || g.predStale {
		g.pred = g.predCOO.ToCSRInto(g.pred)
		g.predStale = false
	}
	return g.pred
}

// Succ returns the successor adjacency S = Pᵀ in CSR form. The returned
// CSR is valid only until the next graph mutation.
func (g *Graph) Succ() *sparse.CSR {
	if g.succ == nil || g.succStale {
		g.succ = g.Pred().TransposeInto(g.succ)
		g.succStale = false
	}
	return g.succ
}

// PredCOO exposes the underlying COO matrix (read-only use).
func (g *Graph) PredCOO() *sparse.COO { return g.predCOO }

// NumEdges returns the number of directed edges.
func (g *Graph) NumEdges() int { return g.predCOO.NNZ() }

// AddObservationPoint grows the graph by one node p attached to target
// (edge target→p), mirroring Section 4: the COO adjacency receives one
// appended tuple and the new node gets the paper's fixed initial
// attribute [0,1,1,0] (before transform). It returns the new node index.
// Attribute refreshes for the fan-in cone are the caller's job (see
// SetAttributes), because they require SCOAP recomputation.
func (g *Graph) AddObservationPoint(target int32) int32 {
	if target < 0 || int(target) >= g.N {
		panic(fmt.Sprintf("core: observation target %d out of range", target))
	}
	p := int32(g.N)
	g.N++
	g.predCOO.Grow(g.N, g.N)
	g.predCOO.Append(p, target, 1)

	// Grow X by one row. The insertion flow appends one node at a time,
	// so reallocating the whole matrix per insertion would be O(N) each;
	// grow with 25% capacity headroom and reslice in place afterwards.
	need := g.N * InputDim
	if cap(g.X.Data) >= need {
		g.X.Data = g.X.Data[:need]
		g.X.Rows = g.N
	} else {
		nx := &tensor.Dense{Rows: g.N, Cols: InputDim,
			Data: make([]float64, need, need+need/4)}
		copy(nx.Data, g.X.Data)
		g.X = nx
	}
	a := AttributeVector(0, 1, 1, 0)
	copy(g.X.Row(int(p)), a[:])

	g.Labels = append(g.Labels, 0) // an observed net is easy to observe
	g.predStale, g.succStale = true, true
	return p
}

// SetAttributes overwrites node id's attribute row with the transformed
// [LL, C0, C1, O] vector; used to refresh fan-in cone attributes after an
// insertion.
func (g *Graph) SetAttributes(id int32, ll, c0, c1, co float64) {
	a := AttributeVector(ll, c0, c1, co)
	copy(g.X.Row(int(id)), a[:])
}

// PredList returns the predecessor node indices of v (CSR row of P).
func (g *Graph) PredList(v int32) []int32 {
	p := g.Pred()
	return p.ColIdx[p.RowPtr[v]:p.RowPtr[v+1]]
}

// SuccList returns the successor node indices of v (CSR row of S).
func (g *Graph) SuccList(v int32) []int32 {
	s := g.Succ()
	return s.ColIdx[s.RowPtr[v]:s.RowPtr[v+1]]
}

// PredEntries returns the predecessor indices of v together with their
// edge multiplicities (a gate that lists the same driver on two pins has
// a weight-2 entry after CSR duplicate merging).
func (g *Graph) PredEntries(v int32) ([]int32, []float64) {
	p := g.Pred()
	return p.ColIdx[p.RowPtr[v]:p.RowPtr[v+1]], p.Vals[p.RowPtr[v]:p.RowPtr[v+1]]
}

// SuccEntries returns the successor indices of v with multiplicities.
func (g *Graph) SuccEntries(v int32) ([]int32, []float64) {
	s := g.Succ()
	return s.ColIdx[s.RowPtr[v]:s.RowPtr[v+1]], s.Vals[s.RowPtr[v]:s.RowPtr[v+1]]
}

// Clone returns a deep copy of the graph (used by hypothetical-insertion
// impact evaluation).
func (g *Graph) Clone() *Graph {
	return &Graph{
		N:       g.N,
		X:       g.X.Clone(),
		Labels:  append([]int(nil), g.Labels...),
		predCOO: g.predCOO.Clone(),
	}
}

// CountLabels returns (#positive, #negative) over labeled nodes.
func (g *Graph) CountLabels() (pos, neg int) {
	for _, l := range g.Labels {
		switch l {
		case 1:
			pos++
		case 0:
			neg++
		}
	}
	return
}
