// Package refcheck is the repository's standing correctness oracle: a
// collection of deliberately naive, obviously-correct reference
// implementations of the three hand-rolled numerical substrates every
// later optimisation PR touches — the bit-parallel fault simulator, the
// sparse SpMM inference path, and the from-scratch GCN backpropagation —
// together with a seeded randomized differential driver that generates
// small circuitgen netlists and asserts agreement across all
// implementations.
//
// Nothing in this package is fast, and that is the point. Each reference
// is written in the most transparent form available:
//
//   - refsim.go simulates one pattern at a time with plain bools and
//     injects faults by forced re-simulation, cross-checking both the
//     64-way bit-parallel engine (fault.Simulator) and the exact
//     detection criterion (fault.ExactDetectMask);
//   - refmat.go multiplies matrices with dense triple loops, checking
//     the COO/CSR/parallel sparse kernels and their transposes;
//   - gradcheck.go differentiates core.Model losses by central finite
//     differences, layer by layer;
//   - refobs.go enumerates every input assignment of tiny circuits to
//     measure exact observability, validating SCOAP/COP structural
//     invariants and the critical-path-tracing observability criterion
//     on fanout-free logic.
//
// The package is imported only from tests (its own and the fuzz targets
// of the packages it checks); production binaries never pay for it.
package refcheck
