// Package scan models the scan infrastructure that turns the paper's
// abstract metrics into costs: every flip-flop and inserted observation
// point becomes a scan cell stitched into scan chains, test application
// time scales with patterns × chain length, and test points carry an
// area price. This is why Table 3's "#OPs" and "#PAs" columns matter —
// each observation point lengthens the chains (silicon + shift cycles)
// and each pattern costs a full shift-in/shift-out.
package scan

import (
	"fmt"

	"repro/internal/netlist"
)

// Chain is one stitched scan chain: an ordered list of scan cells
// (flip-flops and observation points).
type Chain struct {
	Cells []int32
}

// Stitch partitions all scan cells of the netlist into numChains chains
// balanced by length, in cell-ID order (a proxy for physical order;
// real tools stitch by placement).
func Stitch(n *netlist.Netlist, numChains int) ([]Chain, error) {
	if numChains <= 0 {
		return nil, fmt.Errorf("scan: need at least one chain")
	}
	var cells []int32
	for id := int32(0); id < int32(n.NumGates()); id++ {
		switch n.Type(id) {
		case netlist.DFF, netlist.Obs:
			cells = append(cells, id)
		}
	}
	chains := make([]Chain, numChains)
	for i, c := range cells {
		chains[i%numChains].Cells = append(chains[i%numChains].Cells, c)
	}
	return chains, nil
}

// MaxLength returns the longest chain length, which bounds the shift
// cycle count per pattern.
func MaxLength(chains []Chain) int {
	max := 0
	for _, c := range chains {
		if len(c.Cells) > max {
			max = len(c.Cells)
		}
	}
	return max
}

// CostModel prices the DFT infrastructure.
type CostModel struct {
	// GateArea is the unit area of a combinational gate; default 1.
	GateArea float64
	// ScanCellArea is the area of one scan cell (flop + mux); default 6.
	ScanCellArea float64
	// ShiftPeriodNS is the scan clock period in nanoseconds; default 10.
	ShiftPeriodNS float64
}

func (c CostModel) withDefaults() CostModel {
	if c.GateArea <= 0 {
		c.GateArea = 1
	}
	if c.ScanCellArea <= 0 {
		c.ScanCellArea = 6
	}
	if c.ShiftPeriodNS <= 0 {
		c.ShiftPeriodNS = 10
	}
	return c
}

// Report summarizes the DFT cost of a netlist under a test set.
type Report struct {
	ScanCells     int
	ObsPoints     int
	Chains        int
	MaxChainLen   int
	AreaTotal     float64
	AreaOverhead  float64 // fraction of area spent on scan cells
	TestCycles    int64   // (patterns+1) × maxChainLen + patterns capture cycles
	TestTimeMicro float64 // TestCycles × shift period
}

// Evaluate computes the report for a netlist tested with the given
// pattern count over numChains chains.
func Evaluate(n *netlist.Netlist, patterns, numChains int, model CostModel) (Report, error) {
	model = model.withDefaults()
	chains, err := Stitch(n, numChains)
	if err != nil {
		return Report{}, err
	}
	r := Report{Chains: numChains, MaxChainLen: MaxLength(chains)}
	for _, ch := range chains {
		r.ScanCells += len(ch.Cells)
	}
	r.ObsPoints = n.CountType(netlist.Obs)

	combGates := 0
	for id := int32(0); id < int32(n.NumGates()); id++ {
		switch n.Type(id) {
		case netlist.Input, netlist.Output, netlist.DFF, netlist.Obs:
		default:
			combGates++
		}
	}
	scanArea := float64(r.ScanCells) * model.ScanCellArea
	r.AreaTotal = float64(combGates)*model.GateArea + scanArea
	if r.AreaTotal > 0 {
		r.AreaOverhead = scanArea / r.AreaTotal
	}

	// Shift in pattern i while shifting out response i-1; one capture
	// cycle per pattern; one final shift-out.
	r.TestCycles = int64(patterns+1)*int64(r.MaxChainLen) + int64(patterns)
	r.TestTimeMicro = float64(r.TestCycles) * model.ShiftPeriodNS / 1000
	return r, nil
}
