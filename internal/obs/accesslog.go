package obs

import (
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// AccessRecord is one structured access-log line: who, what, how long,
// and — for slow requests — the full phase breakdown of where the time
// went. Serialized as a single JSON object per line.
type AccessRecord struct {
	// Time is the completion wall-clock time, RFC3339Nano.
	Time string `json:"time"`
	// ID is the request id (echoed X-Request-ID or server-generated).
	ID string `json:"id"`
	// Method and Path identify the HTTP call.
	Method string `json:"method"`
	Path   string `json:"path"`
	// Status is the HTTP response status code.
	Status int `json:"status"`
	// WallMS is the request's total wall time in milliseconds.
	WallMS float64 `json:"wall_ms"`
	// Slow marks a request that exceeded the slow threshold; slow lines
	// bypass sampling and carry Phases/Attrs.
	Slow bool `json:"slow,omitempty"`
	// Attrs echoes the trace annotations (slow lines only).
	Attrs map[string]string `json:"attrs,omitempty"`
	// Phases is the per-phase breakdown (slow lines only).
	Phases []PhaseSnapshot `json:"phases,omitempty"`
}

// AccessLogger writes sampled structured JSON access-log lines, with an
// unsampled slow-request escape hatch: a request at or above the slow
// threshold is always logged, with its full phase breakdown, regardless
// of the sampling rate. Safe for concurrent use; a nil *AccessLogger is
// valid and discards everything.
type AccessLogger struct {
	mu     sync.Mutex
	w      io.Writer
	sample int64
	slow   time.Duration
	n      atomic.Int64
}

// NewAccessLogger builds a logger writing to w. sample logs one in every
// sample fast requests (<=1 logs all); slow is the threshold at or above
// which a request is always logged with its phase breakdown (<=0
// disables the slow path). A nil w returns a nil (discarding) logger.
func NewAccessLogger(w io.Writer, sample int, slow time.Duration) *AccessLogger {
	if w == nil {
		return nil
	}
	if sample < 1 {
		sample = 1
	}
	return &AccessLogger{w: w, sample: int64(sample), slow: slow}
}

// SlowThreshold returns the logger's slow-request threshold (0 on nil).
func (l *AccessLogger) SlowThreshold() time.Duration {
	if l == nil {
		return 0
	}
	return l.slow
}

// Log emits one access-log line for a completed request, applying the
// sampling and slow-request rules. snap is the request's final trace
// snapshot (zero value when tracing was off). Returns whether a line was
// written. No-op on a nil logger.
func (l *AccessLogger) Log(method, path string, status int, wall time.Duration, snap RequestSnapshot) bool {
	if l == nil {
		return false
	}
	slow := l.slow > 0 && wall >= l.slow
	if !slow && l.sample > 1 && l.n.Add(1)%l.sample != 1 {
		return false
	}
	rec := AccessRecord{
		Time:   time.Now().UTC().Format(time.RFC3339Nano),
		ID:     snap.ID,
		Method: method,
		Path:   path,
		Status: status,
		WallMS: float64(wall.Nanoseconds()) / 1e6,
		Slow:   slow,
	}
	if slow {
		rec.Attrs = snap.Attrs
		rec.Phases = snap.Phases
	}
	b, err := json.Marshal(rec)
	if err != nil {
		return false
	}
	b = append(b, '\n')
	l.mu.Lock()
	_, werr := l.w.Write(b)
	l.mu.Unlock()
	return werr == nil
}
