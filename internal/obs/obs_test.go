package obs

import (
	"context"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// update regenerates golden files instead of comparing against them.
var update = flag.Bool("update", false, "rewrite golden files")

// withEnabled runs f with instrumentation on and a clean registry,
// restoring the disabled default afterwards.
func withEnabled(t *testing.T, f func()) {
	t.Helper()
	Reset()
	Enable()
	defer func() {
		Disable()
		Reset()
	}()
	f()
}

func TestSpanNestingAndMerging(t *testing.T) {
	withEnabled(t, func() {
		for i := 0; i < 3; i++ {
			root := StartSpan("train")
			for j := 0; j < 2; j++ {
				ep := root.Child("epoch")
				w := ep.Child("worker")
				w.End()
				ep.End()
			}
			root.End()
		}
		snap := TakeSnapshot()
		if len(snap.Spans) != 1 || snap.Spans[0].Name != "train" {
			t.Fatalf("root spans = %+v", snap.Spans)
		}
		train := snap.Spans[0]
		if train.Count != 3 {
			t.Errorf("train count = %d, want 3", train.Count)
		}
		epoch := train.Find("epoch")
		if epoch == nil || epoch.Count != 6 {
			t.Fatalf("epoch node = %+v, want count 6", epoch)
		}
		worker := train.Find("epoch/worker")
		if worker == nil || worker.Count != 6 {
			t.Fatalf("worker node = %+v, want count 6", worker)
		}
		if train.WallNS <= 0 {
			t.Errorf("train wall = %d, want > 0", train.WallNS)
		}
		if epoch.WallNS > train.WallNS {
			t.Errorf("child wall %d exceeds parent wall %d", epoch.WallNS, train.WallNS)
		}
	})
}

func TestSpanSiblingsSortedByName(t *testing.T) {
	withEnabled(t, func() {
		for _, name := range []string{"zeta", "alpha", "mid"} {
			StartSpan(name).End()
		}
		snap := TakeSnapshot()
		var got []string
		for _, s := range snap.Spans {
			got = append(got, s.Name)
		}
		want := []string{"alpha", "mid", "zeta"}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("root order = %v, want %v", got, want)
			}
		}
	})
}

func TestDisabledSpanIsNilAndSafe(t *testing.T) {
	Reset()
	Disable()
	s := StartSpan("nope")
	if s != nil {
		t.Fatal("StartSpan should return nil while disabled")
	}
	// All methods must be no-ops on nil.
	c := s.Child("still-nope")
	c.End()
	s.End()
	if spans := TakeSnapshot().Spans; len(spans) != 0 {
		t.Fatalf("disabled run recorded spans: %+v", spans)
	}
}

func TestDisabledPathsAllocateNothing(t *testing.T) {
	Reset()
	Disable()
	ctr := GetCounter("alloc.test")
	allocs := testing.AllocsPerRun(100, func() {
		s := StartSpan("x")
		s.Child("y").End()
		s.End()
		ctr.Add(5)
		ctr.Inc()
	})
	if allocs != 0 {
		t.Fatalf("disabled span/counter path allocates %.1f bytes/op, want 0", allocs)
	}
	if ctr.Value() != 0 {
		t.Fatalf("disabled counter accumulated %d", ctr.Value())
	}
}

func TestConcurrentCounters(t *testing.T) {
	withEnabled(t, func() {
		c := GetCounter("concurrent.adds")
		h := GetHistogram("concurrent.obs")
		g := GetGauge("concurrent.gauge")
		const workers, perWorker = 8, 1000
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < perWorker; i++ {
					c.Inc()
					h.Observe(int64(i))
					g.Set(int64(w))
				}
			}(w)
		}
		wg.Wait()
		if c.Value() != workers*perWorker {
			t.Errorf("counter = %d, want %d", c.Value(), workers*perWorker)
		}
		snap := h.snapshot()
		if snap.Count != workers*perWorker {
			t.Errorf("histogram count = %d, want %d", snap.Count, workers*perWorker)
		}
		if snap.Min != 0 || snap.Max != perWorker-1 {
			t.Errorf("histogram min/max = %d/%d, want 0/%d", snap.Min, snap.Max, perWorker-1)
		}
		wantSum := int64(workers) * perWorker * (perWorker - 1) / 2
		if snap.Sum != wantSum {
			t.Errorf("histogram sum = %d, want %d", snap.Sum, wantSum)
		}
	})
}

func TestGetCounterIdempotent(t *testing.T) {
	if GetCounter("same.name") != GetCounter("same.name") {
		t.Fatal("GetCounter returned distinct handles for one name")
	}
	if GetCounter("same.name").Name() != "same.name" {
		t.Fatal("counter name mismatch")
	}
}

func TestResetZeroesMetricsAndSpans(t *testing.T) {
	withEnabled(t, func() {
		GetCounter("reset.me").Add(7)
		GetGauge("reset.gauge").Set(3)
		GetHistogram("reset.hist").Observe(9)
		StartSpan("reset-span").End()
		Reset()
		snap := TakeSnapshot()
		if len(snap.Spans) != 0 || len(snap.Counters) != 0 || len(snap.Gauges) != 0 || len(snap.Histograms) != 0 {
			t.Fatalf("snapshot after Reset not empty: %+v", snap)
		}
		// Handles stay live.
		GetCounter("reset.me").Add(1)
		if got := TakeSnapshot().Counters["reset.me"]; got != 1 {
			t.Fatalf("counter after Reset = %d, want 1", got)
		}
	})
}

func TestWithSpanContextNesting(t *testing.T) {
	withEnabled(t, func() {
		ctx, outer := WithSpan(context.Background(), "outer")
		if SpanFromContext(ctx) != outer {
			t.Fatal("context does not carry the span")
		}
		_, inner := WithSpan(ctx, "inner")
		inner.End()
		outer.End()
		snap := TakeSnapshot()
		if len(snap.Spans) != 1 || snap.Spans[0].Name != "outer" {
			t.Fatalf("roots = %+v", snap.Spans)
		}
		if snap.Spans[0].Find("inner") == nil {
			t.Fatal("inner span not nested under outer")
		}
	})
}

func TestManifestRoundTripAndDeterminism(t *testing.T) {
	withEnabled(t, func() {
		GetCounter("spmm.rows").Add(12345)
		GetGauge("train.workers").Set(4)
		GetHistogram("opi.positives").Observe(17)
		s := StartSpan("train")
		time.Sleep(time.Millisecond)
		s.Child("epoch").End()
		s.End()

		m := NewManifest("unit-test", map[string]any{"quick": true, "seed": 42})
		dir := t.TempDir()
		path := filepath.Join(dir, "manifest.json")
		if err := m.WriteFile(path); err != nil {
			t.Fatal(err)
		}
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		var back Manifest
		if err := json.Unmarshal(raw, &back); err != nil {
			t.Fatalf("manifest is not valid JSON: %v", err)
		}
		if back.Name != "unit-test" || back.SchemaVersion != 1 {
			t.Errorf("round-trip lost identity: %+v", back)
		}
		if back.GOMAXPROCS <= 0 || back.GoVersion == "" {
			t.Errorf("environment not captured: %+v", back)
		}
		if back.Snapshot.Counters["spmm.rows"] != 12345 {
			t.Errorf("counters lost: %+v", back.Snapshot.Counters)
		}
		if len(back.Snapshot.Spans) != 1 || back.Snapshot.Spans[0].Name != "train" {
			t.Errorf("span tree lost: %+v", back.Snapshot.Spans)
		}

		// Re-marshaling the same manifest must be byte-identical.
		again, err := m.MarshalIndent()
		if err != nil {
			t.Fatal(err)
		}
		if string(again) != string(raw) {
			t.Error("marshaling the same manifest twice produced different bytes")
		}
	})
}

// TestManifestGolden pins the serialized layout against a committed
// golden file so schema drift is a conscious decision (regenerate with
// go test ./internal/obs -run Golden -update).
func TestManifestGolden(t *testing.T) {
	m := &Manifest{
		SchemaVersion: 1,
		Name:          "golden",
		Config:        map[string]any{"quick": true},
		GoVersion:     "go1.22",
		GOOS:          "linux",
		GOARCH:        "amd64",
		NumCPU:        8,
		GOMAXPROCS:    8,
		Snapshot: Snapshot{
			Spans: []*SpanNode{{
				Name: "train", Count: 2, WallNS: 1500, AllocBytes: 4096,
				Children: []*SpanNode{{Name: "epoch", Count: 20, WallNS: 1400, AllocBytes: 4000}},
			}},
			Counters:   map[string]int64{"spmm.rows": 99, "train.epochs": 20},
			Gauges:     map[string]int64{"train.workers": 4},
			Histograms: map[string]HistogramSnapshot{"opi.positives": {Count: 1, Sum: 17, Min: 17, Max: 17, Buckets: []HistogramBucket{{UpperBound: 31, Count: 1}}}},
		},
	}
	got, err := m.MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "manifest_golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Errorf("manifest JSON drifted from golden file.\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestHistogramBuckets(t *testing.T) {
	withEnabled(t, func() {
		h := GetHistogram("bucket.test")
		for _, v := range []int64{0, 1, 2, 3, 4, 1000, -5} {
			h.Observe(v)
		}
		s := h.snapshot()
		if s.Count != 7 {
			t.Fatalf("count = %d", s.Count)
		}
		if s.Min != 0 || s.Max != 1000 {
			t.Fatalf("min/max = %d/%d", s.Min, s.Max)
		}
		// Values below 16 land in exact buckets (0 and -5 → le=0; 1 → le=1;
		// 2 → le=2; 3 → le=3; 4 → le=4); 1000 lands in the log-linear
		// bucket [992, 1023].
		wantBuckets := map[int64]int64{0: 2, 1: 1, 2: 1, 3: 1, 4: 1, 1023: 1}
		if len(s.Buckets) != len(wantBuckets) {
			t.Fatalf("buckets = %+v", s.Buckets)
		}
		prev := int64(-1)
		for _, b := range s.Buckets {
			if wantBuckets[b.UpperBound] != b.Count {
				t.Errorf("bucket le=%d count=%d, want %d", b.UpperBound, b.Count, wantBuckets[b.UpperBound])
			}
			if b.UpperBound <= prev {
				t.Errorf("buckets not ascending: %+v", s.Buckets)
			}
			prev = b.UpperBound
		}
	})
}

func BenchmarkDisabledSpanCheck(b *testing.B) {
	Disable()
	c := GetCounter("bench.disabled")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := StartSpan("bench")
		s.End()
		c.Add(1)
	}
}

func BenchmarkEnabledCounterAdd(b *testing.B) {
	Reset()
	Enable()
	defer func() { Disable(); Reset() }()
	c := GetCounter("bench.enabled")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}
