package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestConfusionCounts(t *testing.T) {
	pred := []int{1, 0, 1, 0, 1, 0}
	labels := []int{1, 1, 0, 0, -1, -1}
	c := NewConfusion(pred, labels)
	if c.TP != 1 || c.FN != 1 || c.FP != 1 || c.TN != 1 {
		t.Fatalf("confusion = %+v", c)
	}
	if c.Total() != 4 {
		t.Errorf("Total = %d, want 4 (unlabeled skipped)", c.Total())
	}
	if c.Accuracy() != 0.5 {
		t.Errorf("Accuracy = %v", c.Accuracy())
	}
	if c.Precision() != 0.5 || c.Recall() != 0.5 || c.F1() != 0.5 {
		t.Errorf("P/R/F1 = %v/%v/%v", c.Precision(), c.Recall(), c.F1())
	}
}

func TestPerfectAndWorst(t *testing.T) {
	perfect := NewConfusion([]int{1, 0, 1}, []int{1, 0, 1})
	if perfect.F1() != 1 || perfect.Accuracy() != 1 {
		t.Errorf("perfect F1 = %v acc = %v", perfect.F1(), perfect.Accuracy())
	}
	worst := NewConfusion([]int{0, 1, 0}, []int{1, 0, 1})
	if worst.F1() != 0 || worst.Accuracy() != 0 {
		t.Errorf("worst F1 = %v acc = %v", worst.F1(), worst.Accuracy())
	}
}

func TestDegenerateCases(t *testing.T) {
	empty := NewConfusion(nil, nil)
	if empty.Accuracy() != 0 || empty.F1() != 0 {
		t.Error("empty confusion should be all zeros")
	}
	// No predicted positives: precision 0 without dividing by zero.
	c := NewConfusion([]int{0, 0}, []int{1, 0})
	if c.Precision() != 0 || !noNaN(c) {
		t.Errorf("degenerate precision: %+v", c)
	}
	// No actual positives.
	c2 := NewConfusion([]int{1, 0}, []int{0, 0})
	if c2.Recall() != 0 || !noNaN(c2) {
		t.Errorf("degenerate recall: %+v", c2)
	}
}

func noNaN(c Confusion) bool {
	for _, v := range []float64{c.Accuracy(), c.Precision(), c.Recall(), c.F1()} {
		if math.IsNaN(v) {
			return false
		}
	}
	return true
}

func TestQuickF1BetweenPrecisionAndRecall(t *testing.T) {
	f := func(tp, tn, fp, fn uint8) bool {
		c := Confusion{TP: int(tp), TN: int(tn), FP: int(fp), FN: int(fn)}
		f1 := c.F1()
		p, r := c.Precision(), c.Recall()
		lo, hi := math.Min(p, r), math.Max(p, r)
		return f1 >= lo-1e-12 && f1 <= hi+1e-12 && !math.IsNaN(f1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
