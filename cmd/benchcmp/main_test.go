package main

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeBench serializes a BenchFile into dir and returns its path.
func writeBench(t *testing.T, dir, name string, f BenchFile) string {
	t.Helper()
	if f.SchemaVersion == 0 {
		f.SchemaVersion = 1
	}
	if f.NumCPU == 0 {
		f.NumCPU = 1
		f.GOMAXPROCS = 1
	}
	b, err := json.Marshal(f)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func baseline() BenchFile {
	return BenchFile{
		GitDescribe: "abc123",
		Benchmarks: []BenchResult{
			{Name: "SpMM", NsPerOp: 1_000_000, AllocsPerOp: 0},
			{Name: "FaultSim", NsPerOp: 2_000_000, AllocsPerOp: 100},
		},
	}
}

func TestWithinToleranceExitsZero(t *testing.T) {
	dir := t.TempDir()
	newer := baseline()
	newer.Benchmarks[0].NsPerOp = 1_200_000 // +20% < 50% tol
	newer.Benchmarks[1].AllocsPerOp = 102   // within alloc grace
	old := writeBench(t, dir, "old.json", baseline())
	new_ := writeBench(t, dir, "new.json", newer)

	var out bytes.Buffer
	regressions, err := run([]string{old, new_}, &out)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	if regressions != 0 {
		t.Fatalf("regressions = %d, want 0\n%s", regressions, out.String())
	}
	if !strings.Contains(out.String(), "within tolerance") {
		t.Errorf("missing pass verdict:\n%s", out.String())
	}
}

// TestRegressedNsPerOpFails is the acceptance-criteria case: a
// synthetic regressed BENCH file must make the gate exit non-zero
// (main maps regressions > 0 to exit status 1).
func TestRegressedNsPerOpFails(t *testing.T) {
	dir := t.TempDir()
	newer := baseline()
	newer.Benchmarks[0].NsPerOp = 1_600_000 // +60% > 50% tol
	old := writeBench(t, dir, "old.json", baseline())
	new_ := writeBench(t, dir, "new.json", newer)

	var out bytes.Buffer
	regressions, err := run([]string{old, new_}, &out)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if regressions != 1 {
		t.Fatalf("regressions = %d, want 1\n%s", regressions, out.String())
	}
	if !strings.Contains(out.String(), "REGRESSION ns/op") {
		t.Errorf("missing regression verdict:\n%s", out.String())
	}
}

func TestRegressedAllocsFails(t *testing.T) {
	dir := t.TempDir()
	newer := baseline()
	newer.Benchmarks[1].AllocsPerOp = 150 // 100 -> 150, limit is 100*1.1+2
	old := writeBench(t, dir, "old.json", baseline())
	new_ := writeBench(t, dir, "new.json", newer)

	var out bytes.Buffer
	regressions, err := run([]string{old, new_}, &out)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if regressions != 1 || !strings.Contains(out.String(), "REGRESSION allocs/op") {
		t.Fatalf("regressions = %d:\n%s", regressions, out.String())
	}
}

func TestTightenedToleranceFlag(t *testing.T) {
	dir := t.TempDir()
	newer := baseline()
	newer.Benchmarks[0].NsPerOp = 1_200_000 // +20%
	old := writeBench(t, dir, "old.json", baseline())
	new_ := writeBench(t, dir, "new.json", newer)

	var out bytes.Buffer
	regressions, err := run([]string{"-tol", "0.10", old, new_}, &out)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if regressions != 1 {
		t.Fatalf("-tol 0.10 should flag a +20%% slowdown, got %d regressions\n%s", regressions, out.String())
	}
}

// TestTolForOverride: a per-benchmark -tol-for entry must loosen (or
// tighten) only the matching benchmarks, first match winning, and
// reject malformed specs.
func TestTolForOverride(t *testing.T) {
	dir := t.TempDir()
	newer := baseline()
	newer.Benchmarks[0].NsPerOp = 1_600_000 // SpMM +60%
	newer.Benchmarks[1].NsPerOp = 3_200_000 // FaultSim +60%
	old := writeBench(t, dir, "old.json", baseline())
	new_ := writeBench(t, dir, "new.json", newer)

	// SpMM gets 75% headroom and passes; FaultSim keeps the 50% default
	// and regresses.
	var out bytes.Buffer
	regressions, err := run([]string{"-tol-for", "SpMM=0.75", old, new_}, &out)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if regressions != 1 || !strings.Contains(out.String(), "REGRESSION ns/op +60% > 50%") {
		t.Fatalf("regressions = %d, want only FaultSim at default tol:\n%s", regressions, out.String())
	}

	// First match wins: the broad catch-all after the specific entry
	// must not override it.
	out.Reset()
	regressions, err = run([]string{"-tol-for", "SpMM=0.75", "-tol-for", ".*=0.01", old, new_}, &out)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if regressions != 1 {
		t.Fatalf("first-match-wins violated, regressions = %d:\n%s", regressions, out.String())
	}

	for _, bad := range []string{"no-equals", "=0.5", "SpMM=-1", "SpMM=xyz", "(=0.5"} {
		if _, err := run([]string{"-tol-for", bad, old, new_}, io.Discard); err == nil {
			t.Errorf("-tol-for %q should be rejected", bad)
		}
	}
}

func TestMinNsSkipsNoisyTinyBenchmarks(t *testing.T) {
	dir := t.TempDir()
	oldB := BenchFile{Benchmarks: []BenchResult{{Name: "Tiny", NsPerOp: 50, AllocsPerOp: 0}}}
	newB := BenchFile{Benchmarks: []BenchResult{{Name: "Tiny", NsPerOp: 500, AllocsPerOp: 0}}}
	old := writeBench(t, dir, "old.json", oldB)
	new_ := writeBench(t, dir, "new.json", newB)

	var out bytes.Buffer
	regressions, err := run([]string{old, new_}, &out)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if regressions != 0 {
		t.Fatalf("sub-min-ns benchmark should not gate, got %d regressions\n%s", regressions, out.String())
	}
}

func TestAddedAndRemovedBenchmarksDoNotGate(t *testing.T) {
	dir := t.TempDir()
	oldB := baseline()
	newB := BenchFile{
		Benchmarks: []BenchResult{
			{Name: "SpMM", NsPerOp: 1_000_000},
			{Name: "Brand-new", NsPerOp: 9_999_999, AllocsPerOp: 5},
		},
	}
	old := writeBench(t, dir, "old.json", oldB)
	new_ := writeBench(t, dir, "new.json", newB)

	var out bytes.Buffer
	regressions, err := run([]string{old, new_}, &out)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if regressions != 0 {
		t.Fatalf("suite changes should not gate, got %d\n%s", regressions, out.String())
	}
	if !strings.Contains(out.String(), "new (no baseline)") || !strings.Contains(out.String(), "removed from suite") {
		t.Errorf("suite-change notes missing:\n%s", out.String())
	}
}

func TestBadInputsError(t *testing.T) {
	var out bytes.Buffer
	if _, err := run([]string{"nope.json", "also-nope.json"}, &out); err == nil {
		t.Error("missing files should error")
	}
	if _, err := run([]string{}, &out); err == nil {
		t.Error("missing arguments should error")
	}
	dir := t.TempDir()
	empty := writeBench(t, dir, "e.json", BenchFile{GitDescribe: "x"})
	if _, err := run([]string{empty, empty}, &out); err == nil {
		t.Error("artifact without benchmarks should error")
	}
}
