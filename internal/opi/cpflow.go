package opi

import (
	"sort"

	"repro/internal/cop"
	"repro/internal/netlist"
)

// This file implements control point insertion, the other half of test
// point insertion (the paper's Section 2.2 notes its approach is generic
// over CPs and OPs). Nets whose signal probability is extreme are nearly
// impossible to toggle with random patterns: a net that is almost always
// 0 receives a CP1 (an OR gate with a test-mode input that can force 1),
// a net that is almost always 1 receives a CP0. Insertion rebuilds the
// netlist (IDs are remapped), so the flow returns the new netlist.

// CPFlowConfig controls controllability-driven control point insertion.
type CPFlowConfig struct {
	// Epsilon flags a net as hard to control when its signal probability
	// is below Epsilon or above 1-Epsilon; default 0.01.
	Epsilon float64
	// PerRound caps insertions per rebuild round; default 32.
	PerRound int
	// MaxRounds bounds the loop; default 2. Each round fixes the cone
	// roots it can see; more rounds chase residual nets deeper in cones,
	// trading area for diminishing coverage (random-pattern-resistant
	// faults are deterministic-ATPG work, not CP work).
	MaxRounds int
}

func (c CPFlowConfig) withDefaults() CPFlowConfig {
	if c.Epsilon <= 0 {
		c.Epsilon = 0.01
	}
	if c.PerRound <= 0 {
		c.PerRound = 32
	}
	if c.MaxRounds <= 0 {
		c.MaxRounds = 2
	}
	return c
}

// CPFlowResult reports the control point flow outcome.
type CPFlowResult struct {
	// Netlist is the rebuilt netlist containing the control points.
	Netlist *netlist.Netlist
	// Inserted counts control points by kind.
	CP0s, CP1s int
	Rounds     int
}

// ControllabilityGreedy repeatedly measures COP signal probabilities and
// inserts control points at the most extreme insertable nets until every
// net clears the epsilon band or the budget runs out.
func ControllabilityGreedy(n *netlist.Netlist, cfg CPFlowConfig) CPFlowResult {
	cfg = cfg.withDefaults()
	cur := n.Clone()
	res := CPFlowResult{}
	for round := 0; round < cfg.MaxRounds; round++ {
		res.Rounds = round + 1
		m := cop.Compute(cur)
		type scored struct {
			cp   netlist.ControlPoint
			dist float64 // distance beyond the band; larger is worse
		}
		var flagged []scored
		for v := int32(0); v < int32(cur.NumGates()); v++ {
			switch cur.Type(v) {
			case netlist.Output, netlist.Obs, netlist.Input, netlist.DFF:
				continue
			}
			if isCPGate(cur, v) {
				continue
			}
			p := m.P1[v]
			switch {
			case p < cfg.Epsilon:
				flagged = append(flagged, scored{netlist.ControlPoint{Target: v, Kind: netlist.CP1}, cfg.Epsilon - p})
			case p > 1-cfg.Epsilon:
				flagged = append(flagged, scored{netlist.ControlPoint{Target: v, Kind: netlist.CP0}, p - (1 - cfg.Epsilon)})
			}
		}
		if len(flagged) == 0 {
			return resWith(res, cur)
		}
		sort.Slice(flagged, func(i, j int) bool {
			if flagged[i].dist != flagged[j].dist {
				return flagged[i].dist > flagged[j].dist
			}
			return flagged[i].cp.Target < flagged[j].cp.Target
		})
		// One control point fixes its whole fan-in cone's probabilities
		// (the forced value propagates backward as don't-care), so skip
		// candidates covered by a higher-ranked selection this round —
		// without this, every intermediate net of a wide AND chain gets
		// its own CP.
		covered := make(map[int32]bool)
		var cps []netlist.ControlPoint
		for _, f := range flagged {
			if len(cps) >= cfg.PerRound {
				break
			}
			if covered[f.cp.Target] {
				continue
			}
			cps = append(cps, f.cp)
			for _, u := range cur.FaninCone(f.cp.Target, 0) {
				covered[u] = true
			}
			if f.cp.Kind == netlist.CP0 {
				res.CP0s++
			} else {
				res.CP1s++
			}
		}
		next, _, _, err := cur.InsertControlPoints(cps)
		if err != nil {
			// Should not happen for insertable targets; stop gracefully.
			return resWith(res, cur)
		}
		cur = next
	}
	return resWith(res, cur)
}

func resWith(res CPFlowResult, n *netlist.Netlist) CPFlowResult {
	res.Netlist = n
	return res
}

// isCPGate reports whether v looks like an inserted control point gate
// (its name is assigned by InsertControlPoints); re-flagging those would
// cascade CPs onto CPs.
func isCPGate(n *netlist.Netlist, v int32) bool {
	name := n.Gate(v).Name
	return len(name) >= 4 && name[:4] == "cpg_"
}
