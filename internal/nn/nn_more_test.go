package nn

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

// TestInferMatchesForward pins that the buffer-reusing inference path is
// numerically identical to the training forward pass.
func TestInferMatchesForward(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	m := NewMLP("m", []int{6, 12, 8, 3}, rng)
	for trial := 0; trial < 5; trial++ {
		x := randInput(rng, 1+trial*3, 6)
		a := m.Forward(x).Clone()
		b := m.Infer(x)
		if diff := tensor.MaxAbsDiff(a, b); diff != 0 {
			t.Fatalf("trial %d: Infer differs by %g", trial, diff)
		}
	}
}

func TestInferBufferReuseAcrossShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	m := NewMLP("m", []int{4, 8, 2}, rng)
	// Alternate row counts; buffers must be reallocated transparently.
	for _, rows := range []int{3, 7, 3, 1, 7} {
		x := randInput(rng, rows, 4)
		got := m.Infer(x)
		want := m.Forward(x)
		if diff := tensor.MaxAbsDiff(got, want); diff != 0 {
			t.Fatalf("rows=%d: diff %g", rows, diff)
		}
	}
}

func TestForwardIntoAllocatesOnNilAndBadShape(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	l := NewLinear("l", 3, 2, rng)
	x := randInput(rng, 4, 3)
	a := l.ForwardInto(nil, x)
	bad := tensor.NewDense(1, 1)
	b := l.ForwardInto(bad, x)
	if b == bad {
		t.Error("wrong-shape dst must be replaced")
	}
	if diff := tensor.MaxAbsDiff(a, b); diff != 0 {
		t.Errorf("results differ by %g", diff)
	}
	// Correct-shape dst is reused in place.
	good := tensor.NewDense(4, 2)
	c := l.ForwardInto(good, x)
	if c != good {
		t.Error("correct-shape dst must be reused")
	}
}

func TestClipNormScalesGradient(t *testing.T) {
	p := NewParam("w", 2)
	p.Grad[0], p.Grad[1] = 30, 40 // norm 50
	opt := &SGD{LR: 1, ClipNorm: 5}
	opt.Step([]*Param{p})
	// Clipped gradient is (3, 4); step moves weights by -LR*that.
	if math.Abs(p.Data[0]+3) > 1e-12 || math.Abs(p.Data[1]+4) > 1e-12 {
		t.Errorf("clipped step = %v, want [-3 -4]", p.Data)
	}
}

func TestClipNormNoEffectBelowThreshold(t *testing.T) {
	p := NewParam("w", 1)
	p.Grad[0] = 2
	opt := &SGD{LR: 1, ClipNorm: 5}
	opt.Step([]*Param{p})
	if p.Data[0] != -2 {
		t.Errorf("small gradient should be untouched: %v", p.Data[0])
	}
}

func TestWeightedCrossEntropyGradientSumsToZeroPerRow(t *testing.T) {
	// Softmax CE gradient rows sum to zero (probability simplex).
	rng := rand.New(rand.NewSource(24))
	logits := randInput(rng, 6, 4)
	labels := []int{0, 1, 2, 3, 0, 1}
	_, grad := WeightedCrossEntropy(logits, labels, []float64{1, 2, 3, 4})
	for i := 0; i < grad.Rows; i++ {
		var s float64
		for _, v := range grad.Row(i) {
			s += v
		}
		if math.Abs(s) > 1e-12 {
			t.Errorf("row %d gradient sums to %g", i, s)
		}
	}
}

func TestMLPSingleLayerIsLinear(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	m := NewMLP("m", []int{3, 2}, rng)
	// No hidden layer ⇒ no ReLU ⇒ negative outputs possible.
	x := tensor.FromRows([][]float64{{-10, -10, -10}})
	out := m.Forward(x)
	neg := false
	for _, v := range out.Data {
		if v < 0 {
			neg = true
		}
	}
	_ = neg // either sign is fine; the point is it must not panic and shape is 1×2
	if out.Rows != 1 || out.Cols != 2 {
		t.Fatalf("shape %d×%d", out.Rows, out.Cols)
	}
}

func TestNewMLPTooFewDimsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MLP with one dim should panic")
		}
	}()
	NewMLP("m", []int{3}, rand.New(rand.NewSource(1)))
}

func TestLoadParamsUnknownNameFails(t *testing.T) {
	rng := rand.New(rand.NewSource(26))
	m := NewMLP("a", []int{2, 2}, rng)
	var buf bytes.Buffer
	if err := SaveParams(&buf, m.Params()); err != nil {
		t.Fatal(err)
	}
	other := NewMLP("b", []int{2, 2}, rng) // different param names
	if err := LoadParams(&buf, other.Params()); err == nil {
		t.Error("loading params with foreign names should fail")
	}
}
