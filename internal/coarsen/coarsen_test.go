package coarsen

import (
	"math"
	"testing"

	"repro/internal/circuitgen"
	"repro/internal/core"
	"repro/internal/netlist"
	"repro/internal/scoap"
)

func testNetlist(t *testing.T, seed int64, gates int) *netlist.Netlist {
	t.Helper()
	n := circuitgen.Generate("coarse", circuitgen.Config{
		Seed: seed, NumGates: gates, DFFFrac: 0.1, ShadowFunnels: 2,
	})
	if err := n.Validate(); err != nil {
		t.Fatalf("generator produced invalid netlist: %v", err)
	}
	return n
}

func TestOptionsRejected(t *testing.T) {
	n := testNetlist(t, 1, 200)
	cases := []Options{
		{Strategy: FFR, Ratio: 0},
		{Strategy: FFR, Ratio: -0.5},
		{Strategy: FFR, Ratio: 1.5},
		{Strategy: FFR, Ratio: math.NaN()},
		{Strategy: Strategy(9), Ratio: 0.5},
	}
	for _, opt := range cases {
		if _, err := New(n, opt); err == nil {
			t.Errorf("New accepted invalid options %+v", opt)
		}
	}
	if _, err := New(nil, Options{Strategy: FFR, Ratio: 0.5}); err == nil {
		t.Error("New accepted a nil netlist")
	}
}

func TestStrategyString(t *testing.T) {
	if FFR.String() != "ffr" || LevelCollapse.String() != "level-collapse" {
		t.Errorf("strategy names: %q, %q", FFR, LevelCollapse)
	}
	if Strategy(7).String() == "" {
		t.Error("unknown strategy has empty name")
	}
}

// TestIdentityRatio is the anchor invariant: at ratio 1.0 both
// strategies must produce the identity mapping, a structurally equal
// supergraph, and a projected graph whose inference is bit-identical
// to the fine pipeline.
func TestIdentityRatio(t *testing.T) {
	n := testNetlist(t, 7, 600)
	meas := scoap.Compute(n)
	g := core.FromNetlist(n, meas)
	m, err := core.NewModel(core.Config{Dims: []int{6, 8, 10}, FCDims: []int{8}, NumClasses: 2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	want := m.PredictProbs(g)

	for _, strat := range []Strategy{FFR, LevelCollapse} {
		c, err := New(n, Options{Strategy: strat, Ratio: 1.0})
		if err != nil {
			t.Fatalf("%v: %v", strat, err)
		}
		if err := c.Validate(n); err != nil {
			t.Fatalf("%v: %v", strat, err)
		}
		if c.NumSuper() != n.NumGates() || c.AchievedRatio() != 1.0 {
			t.Fatalf("%v: ratio 1.0 produced %d supernodes for %d cells", strat, c.NumSuper(), n.NumGates())
		}
		for v, s := range c.Owner {
			if s != int32(v) {
				t.Fatalf("%v: Owner[%d] = %d, want identity", strat, v, s)
			}
		}
		for v := int32(0); v < int32(n.NumGates()); v++ {
			if c.Super.Type(v) != n.Type(v) {
				t.Fatalf("%v: supergraph type mismatch at %d", strat, v)
			}
			sf, ff := c.Super.Fanin(v), n.Fanin(v)
			if len(sf) != len(ff) {
				t.Fatalf("%v: supergraph arity mismatch at %d", strat, v)
			}
			for i := range sf {
				if sf[i] != ff[i] {
					t.Fatalf("%v: supergraph pin mismatch at %d[%d]", strat, v, i)
				}
			}
		}
		cg := c.ProjectGraph(g)
		if cg.N != g.N {
			t.Fatalf("%v: projected graph has %d nodes, want %d", strat, cg.N, g.N)
		}
		for i := range g.X.Data {
			if cg.X.Data[i] != g.X.Data[i] {
				t.Fatalf("%v: projected attribute %d differs", strat, i)
			}
		}
		lifted := c.Lift(m.PredictProbs(cg))
		for v := range want {
			if lifted[v] != want[v] {
				t.Fatalf("%v: lifted prob at %d is %v, fine is %v", strat, v, lifted[v], want[v])
			}
		}
	}
}

// TestFFRMergesChain checks the strategy on a hand-built funnel: a
// buffer chain is one fanout-free region and must collapse into its
// head, while the stem (fanout 2) and all boundary cells stay apart.
func TestFFRMergesChain(t *testing.T) {
	n := netlist.New("chain")
	a := n.MustAddGate(netlist.Input, "a")
	b := n.MustAddGate(netlist.Input, "b")
	stem := n.MustAddGate(netlist.And, "stem", a, b) // fanout 2: head of nothing
	c1 := n.MustAddGate(netlist.Buf, "c1", stem)     // chain...
	c2 := n.MustAddGate(netlist.Not, "c2", c1)       //
	c3 := n.MustAddGate(netlist.And, "c3", c2, stem) // chain head
	out := n.MustAddGate(netlist.Output, "out", c3)  // boundary
	_ = out

	c, err := New(n, Options{Strategy: FFR, Ratio: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(n); err != nil {
		t.Fatal(err)
	}
	if c.Owner[c1] != c.Owner[c3] || c.Owner[c2] != c.Owner[c3] {
		t.Errorf("chain not merged into its head: owners %v", c.Owner)
	}
	if c.Owner[stem] == c.Owner[c3] {
		t.Error("stem (fanout 2) merged into downstream region")
	}
	for _, v := range []int32{a, b, out} {
		if len(c.Members[c.Owner[v]]) != 1 {
			t.Errorf("boundary cell %d not a singleton", v)
		}
	}
	// The merged supernode keeps its head's type: c3 is an And with
	// two external pins (stem twice: once via the collapsed chain's
	// entry wire stem→c1, once directly stem→c3).
	s := c.Owner[c3]
	if got := c.Super.Type(s); got != netlist.And {
		t.Errorf("merged supernode type %v, want And", got)
	}
	if got := len(c.Super.Fanin(s)); got != 2 {
		t.Errorf("merged supernode arity %d, want 2", got)
	}
}

// TestFFRSizeCap: with ratio 0.5 (cap 2) a 3-cell chain cannot fully
// collapse.
func TestFFRSizeCap(t *testing.T) {
	n := netlist.New("cap")
	a := n.MustAddGate(netlist.Input, "a")
	c1 := n.MustAddGate(netlist.Buf, "c1", a)
	c2 := n.MustAddGate(netlist.Buf, "c2", c1)
	c3 := n.MustAddGate(netlist.Buf, "c3", c2)
	n.MustAddGate(netlist.Output, "out", c3)

	c, err := New(n, Options{Strategy: FFR, Ratio: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(n); err != nil {
		t.Fatal(err)
	}
	for _, members := range c.Members {
		if len(members) > 2 {
			t.Errorf("region of %d cells exceeds cap 2", len(members))
		}
	}
	if c.Owner[c2] != c.Owner[c3] {
		t.Errorf("expected c2 to merge into c3 under cap 2: owners %v", c.Owner)
	}
	if c.Owner[c1] == c.Owner[c2] {
		t.Errorf("cap 2 exceeded: c1 joined the full region: owners %v", c.Owner)
	}
}

// TestLevelCollapseGroups checks the cap and boundary-singleton rules
// on random circuits at several ratios.
func TestLevelCollapseGroups(t *testing.T) {
	n := testNetlist(t, 11, 400)
	for _, ratio := range []float64{0.5, 0.25, 0.1} {
		c, err := New(n, Options{Strategy: LevelCollapse, Ratio: ratio})
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Validate(n); err != nil {
			t.Fatalf("ratio %v: %v", ratio, err)
		}
		cap := int(math.Ceil(1 / ratio))
		for s, members := range c.Members {
			if len(members) > cap {
				t.Fatalf("ratio %v: supernode %d has %d members, cap %d", ratio, s, len(members), cap)
			}
		}
		if got := c.AchievedRatio(); got < ratio-1e-9 {
			t.Fatalf("ratio %v: achieved %v below request", ratio, got)
		}
	}
}

// TestDeterminism: identical inputs must coarsen identically.
func TestDeterminism(t *testing.T) {
	n := testNetlist(t, 13, 500)
	for _, strat := range []Strategy{FFR, LevelCollapse} {
		a, err := New(n, Options{Strategy: strat, Ratio: 0.25})
		if err != nil {
			t.Fatal(err)
		}
		b, err := New(n.Clone(), Options{Strategy: strat, Ratio: 0.25})
		if err != nil {
			t.Fatal(err)
		}
		if len(a.Owner) != len(b.Owner) {
			t.Fatalf("%v: owner lengths differ", strat)
		}
		for v := range a.Owner {
			if a.Owner[v] != b.Owner[v] {
				t.Fatalf("%v: nondeterministic owner at %d: %d vs %d", strat, v, a.Owner[v], b.Owner[v])
			}
		}
	}
}

// TestProjectGraphAggregation checks the max/any-positive projection
// rules directly against a naive recomputation.
func TestProjectGraphAggregation(t *testing.T) {
	n := testNetlist(t, 17, 300)
	g := core.FromNetlist(n, scoap.Compute(n))
	// Paint labels so merged regions exercise all three outcomes.
	for v := 0; v < g.N; v++ {
		switch v % 3 {
		case 0:
			g.Labels[v] = 1
		case 1:
			g.Labels[v] = 0
		default:
			g.Labels[v] = -1
		}
	}
	c, err := New(n, Options{Strategy: FFR, Ratio: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	cg := c.ProjectGraph(g)
	if cg.N != c.NumSuper() {
		t.Fatalf("projected %d nodes, want %d", cg.N, c.NumSuper())
	}
	for s := 0; s < cg.N; s++ {
		wantLabel := -1
		for k := 0; k < core.InputDim; k++ {
			want := math.Inf(-1)
			for _, v := range c.Members[s] {
				if x := g.X.At(int(v), k); x > want {
					want = x
				}
			}
			if got := cg.X.At(s, k); got != want {
				t.Fatalf("supernode %d attr %d: got %v, want max %v", s, k, got, want)
			}
		}
		for _, v := range c.Members[s] {
			switch g.Labels[v] {
			case 1:
				wantLabel = 1
			case 0:
				if wantLabel != 1 {
					wantLabel = 0
				}
			}
		}
		if cg.Labels[s] != wantLabel {
			t.Fatalf("supernode %d label %d, want %d", s, cg.Labels[s], wantLabel)
		}
	}
	// Adjacency: total projected edge weight must equal the fine
	// cross-region pin count.
	crossPins := 0
	for v := int32(0); v < int32(n.NumGates()); v++ {
		for _, f := range n.Fanin(v) {
			if c.Owner[f] != c.Owner[v] {
				crossPins++
			}
		}
	}
	var projected float64
	for s := int32(0); s < int32(cg.N); s++ {
		_, vals := cg.PredEntries(s)
		for _, w := range vals {
			projected += w
		}
	}
	if int(projected) != crossPins {
		t.Fatalf("projected edge weight %v, fine cross pins %d", projected, crossPins)
	}
}

func TestLiftShapes(t *testing.T) {
	n := testNetlist(t, 19, 200)
	c, err := New(n, Options{Strategy: LevelCollapse, Ratio: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	coarse := make([]float64, c.NumSuper())
	for s := range coarse {
		coarse[s] = float64(s)
	}
	lifted := c.Lift(coarse)
	for v, s := range c.Owner {
		if lifted[v] != float64(s) {
			t.Fatalf("lift at %d: got %v, want %v", v, lifted[v], float64(s))
		}
	}
	mustPanic(t, "short dst", func() { c.LiftInto(make([]float64, 1), coarse) })
	mustPanic(t, "short src", func() { c.LiftInto(make([]float64, c.NumFine()), coarse[:1]) })
	mustPanic(t, "graph size mismatch", func() { c.ProjectGraph(core.NewGraph(3)) })
}

func mustPanic(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", name)
		}
	}()
	f()
}

// TestValidateDetectsCorruption drives Validate's error paths by
// corrupting a correct coarsening one field at a time.
func TestValidateDetectsCorruption(t *testing.T) {
	n := testNetlist(t, 23, 200)
	build := func() *Coarsening {
		c, err := New(n, Options{Strategy: FFR, Ratio: 0.25})
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	if err := build().Validate(n); err != nil {
		t.Fatalf("clean coarsening rejected: %v", err)
	}

	c := build()
	c.Owner = c.Owner[:len(c.Owner)-1]
	if c.Validate(n) == nil {
		t.Error("short Owner accepted")
	}

	c = build()
	c.Owner[0], c.Owner[1] = c.Owner[1], c.Owner[0]
	if c.Validate(n) == nil {
		t.Error("Owner/Members disagreement accepted")
	}

	c = build()
	c.Members[0] = append([]int32(nil), c.Members[0]...)
	c.Members[0][0] = int32(n.NumGates()) + 5
	if c.Validate(n) == nil {
		t.Error("out-of-range member accepted")
	}

	c = build()
	c.Super = netlist.New("empty")
	if c.Validate(n) == nil {
		t.Error("empty supergraph accepted")
	}
}

// TestLiveMirror exercises the in-package live-coarsening mirror:
// AddObservationPoint must extend the mapping, the reduced netlist and
// the coarse graph together, ReprojectRow must report exactly the rows
// it changes, and the maintained coarse graph must equal a fresh
// projection of the mutated fine graph.
func TestLiveMirror(t *testing.T) {
	n := testNetlist(t, 9, 300)
	meas := scoap.Compute(n)
	g := core.FromNetlist(n, meas)
	c, err := New(n, Options{Strategy: FFR, Ratio: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	cg := c.ProjectGraph(g)

	if _, err := c.AddObservationPoint(cg, -1); err == nil {
		t.Error("AddObservationPoint accepted a negative target")
	}
	if _, err := c.AddObservationPoint(cg, int32(c.NumFine()+5)); err == nil {
		t.Error("AddObservationPoint accepted an out-of-range target")
	}

	var target int32 = -1
	for v := int32(0); v < int32(n.NumGates()); v++ {
		switch n.Type(v) {
		case netlist.Input, netlist.Output, netlist.Obs:
		default:
			target = v
		}
		if target >= 0 {
			break
		}
	}
	if target < 0 {
		t.Fatal("no insertable cell")
	}
	fineBefore, superBefore := c.NumFine(), c.NumSuper()
	n.MustAddGate(netlist.Obs, "", target)
	g.AddObservationPoint(target)
	opSuper, err := c.AddObservationPoint(cg, target)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumFine() != fineBefore+1 || c.NumSuper() != superBefore+1 {
		t.Fatalf("mapping not extended: fine %d->%d, super %d->%d",
			fineBefore, c.NumFine(), superBefore, c.NumSuper())
	}
	if c.Owner[fineBefore] != opSuper || len(c.Members[opSuper]) != 1 {
		t.Fatalf("new cell %d not a singleton of supernode %d", fineBefore, opSuper)
	}
	if err := c.Validate(n); err != nil {
		t.Fatalf("mirror left coarsening invalid: %v", err)
	}

	// Raise one attribute of the target's fine row: reprojecting its
	// region must report the change (max-aggregation over the region
	// picks it up), and reprojecting every region must resync the live
	// graph with a fresh projection.
	s := c.Owner[target]
	g.X.Row(int(target))[0] = cg.X.Row(int(s))[0] + 1
	if !c.ReprojectRow(cg, g, s) {
		t.Error("ReprojectRow missed a raised fine attribute")
	}
	for s2 := int32(0); s2 < int32(c.NumSuper()); s2++ {
		c.ReprojectRow(cg, g, s2)
	}
	fresh := c.ProjectGraph(g)
	for s2 := 0; s2 < cg.N; s2++ {
		lr, fr := cg.X.Row(s2), fresh.X.Row(s2)
		for k := range lr {
			if lr[k] != fr[k] {
				t.Fatalf("supernode %d attr %d: live %v, fresh %v", s2, k, lr[k], fr[k])
			}
		}
	}
	if c.ReprojectRow(cg, g, s) {
		t.Error("ReprojectRow reported a change on an already-synced row")
	}
}
