// Control points: the other half of test point insertion (Section 2.2 of
// the paper notes the approach is generic over CPs and OPs). A region
// gated by a wide AND is almost never exercised by random patterns —
// faults inside need the gate at 1, which has probability 2^-k. A CP1
// control point on the gating net lets test mode force it, and coverage
// recovers. Compare Figure 2 of the paper.
package main

import (
	"fmt"
	"log"

	"repro/internal/fault"
	"repro/internal/netlist"
)

func main() {
	n := netlist.New("cp-demo")

	// A payload block we want to test...
	var payload []int32
	for i := 0; i < 8; i++ {
		payload = append(payload, n.MustAddGate(netlist.Input, fmt.Sprintf("d%d", i)))
	}
	x1 := n.MustAddGate(netlist.Xor, "x1", payload[0], payload[1])
	x2 := n.MustAddGate(netlist.Or, "x2", payload[2], payload[3])
	x3 := n.MustAddGate(netlist.Nand, "x3", x1, x2)

	// ...gated by a wide AND enable (probability 2^-10 of being 1).
	enable := n.MustAddGate(netlist.Input, "en0")
	for i := 1; i < 10; i++ {
		e := n.MustAddGate(netlist.Input, fmt.Sprintf("en%d", i))
		enable = n.MustAddGate(netlist.And, "", enable, e)
	}
	gated := n.MustAddGate(netlist.And, "gated", x3, enable)
	n.MustAddGate(netlist.Output, "po", gated)

	tpg := fault.TPGConfig{MaxPatterns: 8192, Seed: 1}
	before := fault.GenerateTests(n, tpg)
	fmt.Printf("before CP insertion: coverage %.2f%% (%d/%d faults, %d patterns)\n",
		100*before.Coverage, before.Detected, before.TotalFaults, before.PatternsUsed)

	// Insert a CP1 on the enable net: test mode can now force it high.
	modified, results, _, err := n.InsertControlPoints([]netlist.ControlPoint{
		{Target: enable, Kind: netlist.CP1},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("inserted %s at the enable net (new control input %d)\n",
		netlist.CP1, results[0].Control)

	after := fault.GenerateTests(modified, tpg)
	fmt.Printf("after CP insertion : coverage %.2f%% (%d/%d faults, %d patterns)\n",
		100*after.Coverage, after.Detected, after.TotalFaults, after.PatternsUsed)

	// The deterministic ATPG view: with the CP the whole payload becomes
	// cheaply testable.
	det := fault.GenerateTestsWithATPG(modified, fault.ATPGConfig{Random: tpg})
	fmt.Printf("with PODEM top-up  : test coverage %.2f%% (%d deterministic patterns)\n",
		100*det.TestCoverage, det.DeterministicPatterns)
}
