package refcheck

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/netlist"
	"repro/internal/partition"
	"repro/internal/scoap"
)

// This file differentially verifies the sharded executor: whole-graph
// Forward is the reference, and the partition-then-stitch inference of
// internal/partition must reproduce it bit-identically (float64 ==,
// not a tolerance — the sharded engine replays the exact same
// per-row operation sequence, so even the last ulp must agree).

// CheckShardedPredictor runs base both whole-graph and sharded under
// opt and returns an error describing the first disagreement:
//
//   - the partition must satisfy its own invariants (Validate);
//   - sharded PredictProbs must equal whole-graph PredictProbs
//     bit-for-bit on every node;
//   - the incremental session stitched by the sharded full pass
//     (NewIncremental) must report the same probabilities bit-for-bit.
func CheckShardedPredictor(g *core.Graph, base core.IncrementalPredictor, opt partition.Options) error {
	want := base.PredictProbs(g)
	sp, err := partition.NewSharded(base, opt)
	if err != nil {
		return fmt.Errorf("NewSharded(K=%d, %v, %v): %v", opt.K, opt.Strategy, opt.Mode, err)
	}
	defer sp.Close()
	if err := sp.Partition(g).Validate(g); err != nil {
		return fmt.Errorf("partition invariants (K=%d, %v): %v", opt.K, opt.Strategy, err)
	}
	got := sp.PredictProbs(g)
	if err := exactMatch("PredictProbs", want, got); err != nil {
		return fmt.Errorf("K=%d %v %v: %v", opt.K, opt.Strategy, opt.Mode, err)
	}
	inc := sp.NewIncremental(g).Probs()
	if err := exactMatch("NewIncremental", want, inc); err != nil {
		return fmt.Errorf("K=%d %v %v: %v", opt.K, opt.Strategy, opt.Mode, err)
	}
	return nil
}

// CheckShardedNetlist builds the GCN graph for a netlist and sweeps
// CheckShardedPredictor over K∈ks × both strategies × both execution
// modes for a depth-3 Model and a 2-stage MultiStage cascade seeded
// from seed. Model weights are random-initialized — bit-identity is a
// property of the executor, not of trained weights.
func CheckShardedNetlist(n *netlist.Netlist, seed int64, ks []int) error {
	g := core.FromNetlist(n, scoap.Compute(n))
	cfg := core.Config{Dims: []int{6, 8, 10}, FCDims: []int{8}, NumClasses: 2, Seed: seed}
	m, err := core.NewModel(cfg)
	if err != nil {
		return err
	}
	cfg2 := cfg
	cfg2.Seed = seed + 7919
	m2, err := core.NewModel(cfg2)
	if err != nil {
		return err
	}
	ms := &core.MultiStage{Stages: []*core.Model{m, m2}, FilterBelow: 0.25}

	for _, k := range ks {
		for _, strat := range []partition.Strategy{partition.LevelBand, partition.FanoutCone} {
			for _, mode := range []partition.Mode{partition.Exchange, partition.OneShot} {
				opt := partition.Options{K: k, Strategy: strat, Mode: mode, Workers: 2}
				if err := CheckShardedPredictor(g, m, opt); err != nil {
					return fmt.Errorf("model: %v", err)
				}
				if err := CheckShardedPredictor(g, ms, opt); err != nil {
					return fmt.Errorf("multistage: %v", err)
				}
			}
		}
	}
	return nil
}

// exactMatch requires got == want per element with float64 equality.
func exactMatch(label string, want, got []float64) error {
	if len(want) != len(got) {
		return fmt.Errorf("%s: %d nodes, sharded returned %d", label, len(want), len(got))
	}
	for i := range want {
		if want[i] != got[i] {
			return fmt.Errorf("%s: node %d: whole-graph %v, sharded %v (bit-exact mismatch)",
				label, i, want[i], got[i])
		}
	}
	return nil
}
