package serve_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"

	"repro/internal/core"
	"repro/internal/serve"
)

// Example shows the client-side request flow against a serve.Server:
// score a netlist, then use the returned design id to rescore
// incrementally after inserting an observation point.
func Example() {
	srv, err := serve.New(serve.Options{Predictor: core.MustNewModel(core.DefaultConfig())})
	if err != nil {
		log.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	const bench = "# tiny\nINPUT(a)\nINPUT(b)\ng1 = NAND(a, b)\ng2 = AND(g1, b)\nOUTPUT(g2)\n"

	// Score the design. The response's design id is the handle for
	// follow-up delta queries.
	body, _ := json.Marshal(serve.ScoreRequest{Netlist: bench})
	resp, err := http.Post(ts.URL+"/v1/score", "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	var score serve.ScoreResponse
	json.NewDecoder(resp.Body).Decode(&score)
	resp.Body.Close()
	fmt.Printf("scored %d nodes, cached=%v\n", score.Nodes, score.Cached)

	// Observe g1 and rescore: the server applies the insertion to the
	// cached design and refreshes only the affected embeddings.
	body, _ = json.Marshal(serve.DeltaRequest{Design: score.Design, ObserveNames: []string{"g1"}})
	resp, err = http.Post(ts.URL+"/v1/score/delta", "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	var delta serve.ScoreResponse
	json.NewDecoder(resp.Body).Decode(&delta)
	resp.Body.Close()
	fmt.Printf("after delta: %d nodes, %d inserted, cached=%v\n",
		delta.Nodes, len(delta.Inserted), delta.Cached)

	// Output:
	// scored 5 nodes, cached=false
	// after delta: 6 nodes, 1 inserted, cached=true
}
