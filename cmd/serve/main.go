// Command serve runs the inference-as-a-service HTTP server: it loads a
// trained weights checkpoint once and answers testability queries over
// JSON until terminated (see docs/SERVING.md and docs/API.md).
//
// Usage:
//
//	serve -model model.gob [-addr :8080] [-max-concurrent 4]
//	      [-max-queue 64] [-timeout 30s] [-cache 32]
//	      [-drain-timeout 30s] [-access-log PATH] [-slow-ms 1000]
//	      [-sample 16] [-shards 0] [-shard-workers 0] [-f32]
//	serve -demo             # untrained paper-architecture model
//
// -model accepts both the self-describing checkpoint format
// (core.SaveCheckpoint) and the legacy cascade stream `gcntest train`
// writes. -shards K (K > 0) scores each design through the partitioned
// executor of internal/partition — K level-band shards on a worker pool
// of -shard-workers goroutines (0 = all cores) — which is bit-identical
// to whole-graph inference and pays off on million-cell designs on
// multi-core hosts. -f32 compiles designs through the model's float32
// inference path (scores within ~1e-4 of float64; edit deltas always
// run exact float64). On SIGINT/SIGTERM the server flips /healthz to
// "draining", stops accepting connections, and waits up to
// -drain-timeout for in-flight requests before exiting.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/partition"
	"repro/internal/serve"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "serve:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "listen address")
	model := fs.String("model", "", "weights checkpoint (core.SaveCheckpoint or legacy gcntest train output)")
	demo := fs.Bool("demo", false, "serve an untrained paper-architecture model (smoke tests, curl demos)")
	maxConcurrent := fs.Int("max-concurrent", 4, "requests doing work simultaneously")
	maxQueue := fs.Int("max-queue", 64, "requests allowed to wait for a slot before shedding")
	timeout := fs.Duration("timeout", 30*time.Second, "default per-request deadline")
	cacheEntries := fs.Int("cache", 32, "compiled-design LRU capacity (negative disables)")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "grace period for in-flight requests on shutdown")
	accessLog := fs.String("access-log", "", `structured JSON access-log destination ("-" for stdout, empty disables)`)
	slowMs := fs.Int("slow-ms", 1000, "slow-request threshold in ms; slow requests always log with phase breakdowns (0 disables)")
	sample := fs.Int("sample", 16, "access-log sampling: log one in N fast requests (1 logs all)")
	shards := fs.Int("shards", 0, "score through the partitioned executor with this many shards (0 = whole-graph inference)")
	shardWorkers := fs.Int("shard-workers", 0, "worker-pool size for -shards (0 = all cores)")
	f32 := fs.Bool("f32", false, "score submitted designs with float32 inference (~1e-4 divergence; deltas stay float64)")
	version := fs.Bool("version", false, "print the build's git revision and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		fmt.Println("serve", revision())
		return nil
	}

	var pred core.IncrementalPredictor
	var info string
	switch {
	case *model != "":
		p, err := core.LoadCheckpointFile(*model)
		if err != nil {
			return err
		}
		pred, info = p, describe(p, *model)
	case *demo:
		pred = core.MustNewModel(core.DefaultConfig())
		info = "demo (untrained, default architecture)"
		log.Println("WARNING: -demo serves an UNTRAINED model; scores are meaningless")
	default:
		return errors.New("one of -model or -demo is required")
	}

	if *shards > 0 {
		sp, err := partition.NewSharded(pred, partition.Options{K: *shards, Workers: *shardWorkers})
		if err != nil {
			return fmt.Errorf("-shards: %w", err)
		}
		defer sp.Close()
		pred = sp
		info = fmt.Sprintf("%s, sharded x%d (%d workers)", info, sp.NumShards(), sp.Workers())
	}

	// Live /metrics, /snapshot and /debug/requests are part of the
	// service contract, so instrumentation is always on.
	obs.Enable()

	var logDst io.Writer
	switch *accessLog {
	case "":
	case "-":
		logDst = os.Stdout
	default:
		f, err := os.OpenFile(*accessLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("access log: %w", err)
		}
		defer f.Close()
		logDst = f
	}

	srv, err := serve.New(serve.Options{
		Predictor:       pred,
		ModelInfo:       info,
		MaxConcurrent:   *maxConcurrent,
		MaxQueue:        *maxQueue,
		DefaultTimeout:  *timeout,
		CacheEntries:    *cacheEntries,
		AccessLog:       logDst,
		AccessLogSample: *sample,
		SlowRequest:     time.Duration(*slowMs) * time.Millisecond,
		Float32Scoring:  *f32,
	})
	if err != nil {
		return err
	}

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("serving %s on %s", info, *addr)
		errc <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}

	// Graceful drain: advertise draining on /healthz, then let Shutdown
	// finish in-flight requests within the grace period.
	log.Printf("signal received; draining (up to %s)", *drainTimeout)
	srv.StartDraining()
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	log.Println("drained cleanly")
	return nil
}

// describe summarizes a loaded predictor for /healthz.
func describe(p core.IncrementalPredictor, path string) string {
	switch m := p.(type) {
	case *core.Model:
		return fmt.Sprintf("model %s (%d params)", path, m.NumParams())
	case *core.MultiStage:
		total := 0
		for _, s := range m.Stages {
			total += s.NumParams()
		}
		return fmt.Sprintf("multistage %s (%d stages, %d params)", path, len(m.Stages), total)
	default:
		return path
	}
}

// revision is the -version payload: `git describe --always --dirty`
// when the binary runs inside the repository, "unknown" otherwise.
func revision() string {
	if r := obs.GitDescribe(); r != "" {
		return r
	}
	return "unknown"
}
