package opi

import (
	"testing"

	"repro/internal/core"
	"repro/internal/netlist"
	"repro/internal/scoap"
)

func TestExactImpactOnChain(t *testing.T) {
	// Oracle marks high-CO nodes positive. Observing the end of a
	// transparent chain drops the whole chain's CO, so its exact impact
	// must cover the chain; observing the head helps only the head.
	n := netlist.New("chain")
	pi := n.MustAddGate(netlist.Input, "pi")
	a := n.MustAddGate(netlist.Buf, "a", pi)
	b := n.MustAddGate(netlist.Buf, "b", a)
	c := n.MustAddGate(netlist.Buf, "c", b)
	// Block the chain from the PO with a wide AND guard so a, b, c are
	// all poorly observable.
	var guard int32 = pi
	for i := 0; i < 6; i++ {
		g := n.MustAddGate(netlist.Input, "")
		guard = n.MustAddGate(netlist.And, "", guard, g)
	}
	blocked := n.MustAddGate(netlist.And, "x", c, guard)
	n.MustAddGate(netlist.Output, "po", blocked)

	meas := scoap.Compute(n)
	g := core.FromNetlist(n, meas)
	oracle := scoapOracle{cut: 1.5} // log1p(CO) > 1.5 ⇔ CO > ~3.5

	impactC := ExactImpact(n, meas, g, oracle, 0.5, c, 0)
	impactA := ExactImpact(n, meas, g, oracle, 0.5, a, 0)
	if impactC <= impactA {
		t.Errorf("impact(c)=%d should exceed impact(a)=%d", impactC, impactA)
	}
	// The hypothetical evaluation must not mutate its inputs.
	if n.CountType(netlist.Obs) != 0 {
		t.Error("ExactImpact mutated the netlist")
	}
	if g.N != n.NumGates() {
		t.Error("ExactImpact mutated the graph")
	}
}

func TestExactImpactFlowMatchesStaticFixpoint(t *testing.T) {
	// Both ranking modes must drive the flow to zero positives; the exact
	// mode should never need more insertions on a transparent design.
	nA, mA, gA := buildBench(t, 12, 800)
	cut := oracleCut(gA, 0.02)
	resStatic := RunFlow(nA, mA, gA, scoapOracle{cut: cut}, FlowConfig{PerIteration: 8})

	nB, mB, gB := buildBench(t, 12, 800)
	resExact := RunFlow(nB, mB, gB, scoapOracle{cut: cut}, FlowConfig{
		PerIteration: 8, ExactImpact: true, ExactImpactCap: 512,
	})
	if resStatic.FinalPositives != 0 || resExact.FinalPositives != 0 {
		t.Fatalf("flows did not converge: static %d, exact %d",
			resStatic.FinalPositives, resExact.FinalPositives)
	}
	t.Logf("static OPs = %d, exact OPs = %d", len(resStatic.Targets), len(resExact.Targets))
	if len(resExact.Targets) > len(resStatic.Targets)*3/2+2 {
		t.Errorf("exact ranking used far more OPs (%d) than static (%d)",
			len(resExact.Targets), len(resStatic.Targets))
	}
}
