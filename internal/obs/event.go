package obs

import (
	"sync"
	"time"
)

// processEpoch anchors every event and trace timestamp: all times are
// reported as monotonic nanoseconds since process start, so timelines
// from one run are internally consistent regardless of wall-clock
// adjustments.
var processEpoch = time.Now()

// nowNS returns monotonic nanoseconds since processEpoch.
func nowNS() int64 { return time.Since(processEpoch).Nanoseconds() }

// Attr is one key/value attribute attached to an event. Construct with
// S (string), I (integer) or F (float); Value is constrained to those
// three kinds so events serialize deterministically.
type Attr struct {
	Key   string
	Value any
}

// S returns a string attribute.
func S(key, v string) Attr { return Attr{Key: key, Value: v} }

// I returns an integer attribute.
func I(key string, v int64) Attr { return Attr{Key: key, Value: v} }

// F returns a float attribute.
func F(key string, v float64) Attr { return Attr{Key: key, Value: v} }

// EventRecord is one entry of the event timeline: a named point-in-time
// occurrence (an epoch finishing, a stage starting) with a monotonic
// timestamp and optional attributes. Events land in the run manifest
// (Snapshot.Events) and, when tracing is on, in the Chrome trace as
// instant events.
type EventRecord struct {
	// Name follows the "subsystem.event" convention (e.g. "train.epoch").
	Name string `json:"name"`
	// TS is monotonic nanoseconds since process start.
	TS int64 `json:"ts_ns"`
	// Attrs holds the event's attributes (string, int64 or float64
	// values), serialized with sorted keys.
	Attrs map[string]any `json:"attrs,omitempty"`
}

// defaultEventCapacity bounds the event ring; a multi-hour run emitting
// one event per epoch/stage/iteration stays far below it, and anything
// chattier keeps the most recent window instead of growing without
// bound.
const defaultEventCapacity = 8192

// eventLog is a bounded ring buffer of EventRecords: once full, new
// events overwrite the oldest and the overwrite count is tracked.
type eventLog struct {
	mu        sync.Mutex
	buf       []EventRecord
	next      int // index of the next write
	full      bool
	overwrote int64
	capacity  int
}

var events = &eventLog{capacity: defaultEventCapacity}

func (l *eventLog) append(ev EventRecord) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.buf == nil {
		l.buf = make([]EventRecord, 0, l.capacity)
	}
	if len(l.buf) < l.capacity {
		l.buf = append(l.buf, ev)
		return
	}
	l.buf[l.next] = ev
	l.next = (l.next + 1) % l.capacity
	l.full = true
	l.overwrote++
}

// snapshot returns the buffered events in chronological order plus the
// number of older events the ring has overwritten.
func (l *eventLog) snapshot() ([]EventRecord, int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.buf) == 0 {
		return nil, l.overwrote
	}
	out := make([]EventRecord, 0, len(l.buf))
	if l.full {
		out = append(out, l.buf[l.next:]...)
		out = append(out, l.buf[:l.next]...)
	} else {
		out = append(out, l.buf...)
	}
	return out, l.overwrote
}

func (l *eventLog) reset() {
	l.mu.Lock()
	l.buf = nil
	l.next = 0
	l.full = false
	l.overwrote = 0
	l.mu.Unlock()
}

// SetEventCapacity resizes the event ring (and clears it). Intended for
// tests and for tools that know their event volume.
func SetEventCapacity(n int) {
	if n < 1 {
		n = 1
	}
	events.mu.Lock()
	events.capacity = n
	events.buf = nil
	events.next = 0
	events.full = false
	events.overwrote = 0
	events.mu.Unlock()
}

// Event appends a named event with the given attributes to the event
// timeline. No-op while instrumentation is disabled; note the variadic
// attrs still box their values at the call site, so per-iteration hot
// paths should guard the whole call with Enabled (events are meant for
// epoch/stage/iteration granularity, where the cost is irrelevant).
func Event(name string, attrs ...Attr) {
	if !enabled.Load() {
		return
	}
	var m map[string]any
	if len(attrs) > 0 {
		m = make(map[string]any, len(attrs))
		for _, a := range attrs {
			m[a.Key] = a.Value
		}
	}
	events.append(EventRecord{Name: name, TS: nowNS(), Attrs: m})
}

// Events returns the buffered event timeline in chronological order.
func Events() []EventRecord {
	evs, _ := events.snapshot()
	return evs
}
