#!/usr/bin/env bash
# Pre-merge gate: run from anywhere; fails fast on the first problem.
#
#   ./scripts/check.sh
#
# What it checks (referenced from README.md "Measuring performance"):
#   1. go vet over every package
#   2. gofmt cleanliness (no files would be rewritten)
#   3. race-detector tests for the concurrency-heavy packages
#      (internal/obs metrics registry, internal/core parallel trainer,
#      internal/sparse parallel SpMM, internal/fault bit-parallel sim,
#      internal/opi parallel impact ranking, internal/partition sharded
#      executor, internal/coarsen projection), plus the
#      sharded-vs-whole-graph and coarsening equivalence suites in
#      internal/refcheck under the race detector
#   4. the full test suite
#   5. per-package coverage floors for the numerically critical packages
#      (set ~5 points under their measured coverage so real erosion
#      fails, incidental churn doesn't; see docs/TESTING.md)
#   6. a short-budget fuzz smoke pass over every committed fuzz target,
#      so the seed corpora keep executing and shallow crashers are
#      caught pre-merge (FUZZTIME=0 skips, e.g. on slow CI)
#   7. documentation hygiene: every relative markdown link resolves, and
#      every package carries a doc comment
#   8. the bench-regression gate: cmd/benchcmp diffs the two most recent
#      committed BENCH_NNNN.json artifacts and fails on a regression
#      beyond tolerance (generous, because artifacts may come from
#      different machines; the float32 kernels get extra headroom via
#      -tol-for since their throughput tracks the recording host's SIMD
#      width; see docs/OBSERVABILITY.md)
#   9. metric-key documentation: every serve.* / obs.* / partition.* /
#      coarsen.* / spmm.* / pool.* metric key registered in non-test Go
#      sources appears in docs/OBSERVABILITY.md
#  10. bench artifact completeness: the newest committed BENCH_NNNN.json
#      contains at least one result row recorded at gomaxprocs > 1, so
#      the worker-scaling matrix can never silently degrade to an
#      all-single-core recording
set -euo pipefail
cd "$(dirname "$0")/.."

FUZZTIME="${FUZZTIME:-10s}"

echo "== go vet ./..."
go vet ./...

echo "== gofmt -l"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go test -race ./internal/obs ./internal/core ./internal/sparse ./internal/fault ./internal/opi ./internal/serve ./internal/partition ./internal/coarsen"
go test -race ./internal/obs ./internal/core ./internal/sparse ./internal/fault ./internal/opi ./internal/serve ./internal/partition ./internal/coarsen

echo "== go test -race -run 'Sharded|Coarsen' ./internal/refcheck (sharded + coarsening equivalence under race)"
go test -race -run 'Sharded|Coarsen' ./internal/refcheck

echo "== go build ./... && go test ./..."
go build ./...
go test ./...

echo "== coverage floors"
# Floors sit ~5 points below measured coverage at the time the gate was
# added; raise them as coverage grows, never lower them to merge.
check_cover() {
    pkg="$1" floor="$2"
    pct=$(go test -cover "./internal/$pkg" | grep -oE '[0-9]+\.[0-9]+% of statements' | grep -oE '^[0-9]+\.[0-9]+')
    if [ -z "$pct" ]; then
        echo "coverage: could not measure internal/$pkg" >&2
        exit 1
    fi
    if awk -v p="$pct" -v f="$floor" 'BEGIN { exit !(p < f) }'; then
        echo "coverage: internal/$pkg at ${pct}% — below the ${floor}% floor" >&2
        exit 1
    fi
    echo "   internal/$pkg ${pct}% (floor ${floor}%)"
}
check_cover fault 90
check_cover sparse 80
check_cover core 85
check_cover nn 90
check_cover serve 80
check_cover partition 85
check_cover coarsen 85

if [ "$FUZZTIME" != "0" ]; then
    echo "== fuzz smoke (${FUZZTIME} per target; FUZZTIME=0 to skip)"
    go test -run='^$' -fuzz='^FuzzNetlistParse$' -fuzztime="$FUZZTIME" ./internal/netlist
    go test -run='^$' -fuzz='^FuzzSparseMul$'    -fuzztime="$FUZZTIME" ./internal/sparse
    go test -run='^$' -fuzz='^FuzzBatchSim$'     -fuzztime="$FUZZTIME" ./internal/fault
    go test -run='^$' -fuzz='^FuzzPartition$'    -fuzztime="$FUZZTIME" ./internal/partition
    go test -run='^$' -fuzz='^FuzzCoarsen$'      -fuzztime="$FUZZTIME" ./internal/coarsen
else
    echo "== fuzz smoke skipped (FUZZTIME=0)"
fi

echo "== doc links (every relative markdown link resolves)"
broken=0
while IFS=: read -r file target; do
    # Resolve the link relative to the markdown file's directory.
    resolved="$(dirname "$file")/${target%%#*}"
    if [ ! -e "$resolved" ]; then
        echo "broken link in $file: $target" >&2
        broken=1
    fi
done < <(
    git ls-files '*.md' | while read -r f; do
        grep -oE '\]\(([^)]+)\)' "$f" | sed -E 's/^\]\(//; s/\)$//' |
        grep -vE '^(https?:|mailto:|#)' | sed "s|^|$f:|"
    done
)
[ "$broken" -eq 0 ] || exit 1
echo "   all relative links resolve"

echo "== package doc comments (godoc coverage)"
missing=0
for dir in internal/* cmd/*; do
    [ -d "$dir" ] || continue
    # A package doc comment is a comment group immediately preceding a
    # package clause in at least one file of the package.
    if ! awk 'prev ~ /^(\/\/|\*\/|.*\*\/)/ && /^package / { found=1 } { prev=$0 } END { exit !found }' "$dir"/*.go 2>/dev/null; then
        echo "missing package doc comment: $dir" >&2
        missing=1
    fi
done
[ "$missing" -eq 0 ] || exit 1
echo "   every internal/* and cmd/* package documented"

echo "== metric keys documented (docs/OBSERVABILITY.md)"
undocumented=0
while read -r key; do
    if ! grep -qF "\`$key\`" docs/OBSERVABILITY.md; then
        echo "metric key $key is emitted in code but not documented in docs/OBSERVABILITY.md" >&2
        undocumented=1
    fi
done < <(
    git ls-files 'internal/*.go' 'cmd/*.go' | grep -v '_test\.go$' |
    xargs grep -hoE 'Get(Counter|Gauge|Histogram)\("(serve|obs|partition|coarsen|spmm|pool)\.[a-z0-9_.]+"' |
    sed -E 's/^Get(Counter|Gauge|Histogram)\("//; s/"$//' | sort -u
)
[ "$undocumented" -eq 0 ] || exit 1
echo "   every serve.*/obs.*/partition.*/coarsen.*/spmm.*/pool.* metric key documented"

echo "== benchcmp (recorded performance trajectory)"
benches=$(ls BENCH_*.json 2>/dev/null | sort | tail -2)
if [ "$(echo "$benches" | wc -w)" -ge 2 ]; then
    # The float32 kernels (F32 / CSRMul32 suffixes) get wider headroom:
    # their ns/op tracks the recording host's SIMD width and cache line
    # behavior more than the float64 paths, so cross-machine artifacts
    # swing harder without any code change.
    # shellcheck disable=SC2086
    go run ./cmd/benchcmp -tol 0.5 -tol-for 'F32|Mul32=0.75' $benches
else
    echo "(fewer than two BENCH_*.json artifacts; skipping)"
fi

echo "== bench artifact multi-core matrix (gomaxprocs > 1 row present)"
newest=$(ls BENCH_*.json 2>/dev/null | sort | tail -1)
if [ -n "$newest" ]; then
    if ! grep -qE '"gomaxprocs": *([2-9]|[1-9][0-9]+)' "$newest"; then
        echo "newest bench artifact $newest has no result row recorded at gomaxprocs > 1;" >&2
        echo "re-record with cmd/benchjson (its workers matrix raises GOMAXPROCS per variant)" >&2
        exit 1
    fi
    echo "   $newest contains multi-core result rows"
else
    echo "(no BENCH_*.json artifacts; skipping)"
fi

echo "check.sh: all gates passed"
