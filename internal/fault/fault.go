// Package fault is the reproduction's stand-in for the commercial DFT
// tool the paper relies on for three things: ground-truth labels
// (difficult-to-observe nodes), fault coverage, and test pattern counts.
//
// It implements 64-way bit-parallel logic simulation over random
// patterns, backward bitwise observability propagation (critical-path
// tracing style: a net is observable under a pattern when some sensitized
// path reaches a primary output, scan flip-flop or observation point;
// fanout branches merge with OR), a stuck-at fault universe over gate
// outputs, and random-pattern test generation with fault dropping.
//
// All of Table 1 (#POS/#NEG labels), Table 3 (#OPs / #patterns /
// coverage) and the labeling behind Table 2 and Figures 8–9 are produced
// by this package, so the GCN flow and the industrial-tool baseline are
// always scored by the same simulator.
package fault

import (
	"math/bits"
	"math/rand"

	"repro/internal/netlist"
	"repro/internal/obs"
)

// Simulation metrics (no-ops until obs.Enable; see
// docs/OBSERVABILITY.md).
var (
	faultsimBatches  = obs.GetCounter("faultsim.batches")
	faultsimPatterns = obs.GetCounter("faultsim.patterns")
	faultsimGateEval = obs.GetCounter("faultsim.gate_evals")
)

// WordSize is the number of patterns simulated per machine word.
const WordSize = 64

// Simulator performs bit-parallel logic simulation and observability
// analysis over batches of 64 random patterns.
type Simulator struct {
	n     *netlist.Netlist
	order []int32
	vals  []uint64 // value word per cell output
	obs   []uint64 // observability word per cell output
}

// NewSimulator prepares a simulator for the netlist. The netlist may be
// mutated (observation points added) between batches as long as
// Refresh is called afterwards.
func NewSimulator(n *netlist.Netlist) *Simulator {
	s := &Simulator{n: n}
	s.Refresh()
	return s
}

// Refresh re-reads the netlist structure after a mutation.
func (s *Simulator) Refresh() {
	s.order = s.n.TopoOrder()
	if len(s.vals) < s.n.NumGates() {
		s.vals = make([]uint64, s.n.NumGates())
		s.obs = make([]uint64, s.n.NumGates())
	}
}

// Values returns the value words of the last batch (indexed by cell ID).
func (s *Simulator) Values() []uint64 { return s.vals[:s.n.NumGates()] }

// Obs returns the observability words of the last batch.
func (s *Simulator) Obs() []uint64 { return s.obs[:s.n.NumGates()] }

// Batch simulates one batch of 64 random patterns drawn from rng: a
// forward value pass followed by a backward observability pass. Primary
// inputs and scan flip-flop outputs receive independent random words
// (full-scan random test).
func (s *Simulator) Batch(rng *rand.Rand) {
	s.BatchFrom(func(int32) uint64 { return rng.Uint64() })
}

// BatchFrom simulates one 64-pattern batch whose source words (per
// primary input / scan flip-flop) come from the given function; used to
// replay deterministic (e.g. PODEM-generated) patterns through the
// bit-parallel engine.
func (s *Simulator) BatchFrom(source func(id int32) uint64) {
	faultsimBatches.Inc()
	faultsimPatterns.Add(WordSize)
	faultsimGateEval.Add(int64(len(s.order)))
	n := s.n
	vals, obs := s.vals, s.obs
	for _, id := range s.order {
		g := n.Gate(id)
		switch g.Type {
		case netlist.Input, netlist.DFF:
			vals[id] = source(id)
		case netlist.Output, netlist.Obs, netlist.Buf:
			vals[id] = vals[g.Fanin[0]]
		case netlist.Not:
			vals[id] = ^vals[g.Fanin[0]]
		case netlist.And, netlist.Nand:
			v := vals[g.Fanin[0]]
			for _, f := range g.Fanin[1:] {
				v &= vals[f]
			}
			if g.Type == netlist.Nand {
				v = ^v
			}
			vals[id] = v
		case netlist.Or, netlist.Nor:
			v := vals[g.Fanin[0]]
			for _, f := range g.Fanin[1:] {
				v |= vals[f]
			}
			if g.Type == netlist.Nor {
				v = ^v
			}
			vals[id] = v
		case netlist.Xor, netlist.Xnor:
			v := vals[g.Fanin[0]]
			for _, f := range g.Fanin[1:] {
				v ^= vals[f]
			}
			if g.Type == netlist.Xnor {
				v = ^v
			}
			vals[id] = v
		}
	}

	// Backward observability.
	for i := range obs[:n.NumGates()] {
		obs[i] = 0
	}
	for i := len(s.order) - 1; i >= 0; i-- {
		id := s.order[i]
		g := n.Gate(id)
		switch g.Type {
		case netlist.Output, netlist.Obs:
			obs[id] = ^uint64(0)
			obs[g.Fanin[0]] = ^uint64(0)
			continue
		case netlist.DFF:
			// Scan capture observes the data input every pattern.
			obs[g.Fanin[0]] = ^uint64(0)
			continue
		case netlist.Input:
			continue
		}
		o := obs[id]
		if o == 0 {
			continue
		}
		switch g.Type {
		case netlist.Buf, netlist.Not:
			obs[g.Fanin[0]] |= o
		case netlist.And, netlist.Nand:
			s.propagateControlled(g, o, true)
		case netlist.Or, netlist.Nor:
			s.propagateControlled(g, o, false)
		case netlist.Xor, netlist.Xnor:
			for _, f := range g.Fanin {
				obs[f] |= o
			}
		}
	}
}

// propagateControlled handles AND/NAND (nonControlling true: other inputs
// must be 1) and OR/NOR (other inputs must be 0).
func (s *Simulator) propagateControlled(g *netlist.Gate, o uint64, andLike bool) {
	fi := g.Fanin
	if len(fi) == 1 {
		s.obs[fi[0]] |= o
		return
	}
	// prefix[i] = AND of sides of inputs < i, suffix likewise; avoids
	// O(k²) for wide gates.
	side := func(f int32) uint64 {
		v := s.vals[f]
		if andLike {
			return v
		}
		return ^v
	}
	var prefix uint64 = ^uint64(0)
	suffixes := make([]uint64, len(fi))
	acc := ^uint64(0)
	for i := len(fi) - 1; i >= 0; i-- {
		suffixes[i] = acc
		acc &= side(fi[i])
	}
	for i, f := range fi {
		mask := prefix & suffixes[i]
		s.obs[f] |= o & mask
		prefix &= side(f)
	}
}

// ObservabilityCounts simulates numPatterns random patterns (rounded up
// to whole 64-pattern words) and returns, per cell, how many patterns
// observed the cell's output.
func ObservabilityCounts(n *netlist.Netlist, numPatterns int, seed int64) []int {
	span := obs.StartSpan("faultsim")
	defer span.End()
	s := NewSimulator(n)
	rng := rand.New(rand.NewSource(seed))
	counts := make([]int, n.NumGates())
	words := (numPatterns + WordSize - 1) / WordSize
	for w := 0; w < words; w++ {
		s.Batch(rng)
		for id, o := range s.Obs() {
			counts[id] += bits.OnesCount64(o)
		}
	}
	return counts
}

// LabelDifficult converts observability counts to the paper's binary
// labels: a node is difficult-to-observe (label 1) when it was observed
// in fewer than threshold×numPatterns patterns. Sink cells (primary
// outputs, observation points) and primary inputs are labeled 0 — they
// are not insertion candidates.
func LabelDifficult(n *netlist.Netlist, counts []int, numPatterns int, threshold float64) []int {
	labels := make([]int, n.NumGates())
	cut := threshold * float64(numPatterns)
	for id := range labels {
		switch n.Type(int32(id)) {
		case netlist.Output, netlist.Obs, netlist.Input:
			labels[id] = 0
			continue
		}
		if float64(counts[id]) < cut {
			labels[id] = 1
		}
	}
	return labels
}
