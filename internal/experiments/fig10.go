package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"repro/internal/circuitgen"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/obs"
	"repro/internal/scoap"
)

// Fig10Point is one graph size's inference runtime under both schemes.
type Fig10Point struct {
	Nodes int
	// MatrixSeconds is the measured full-graph matrix-inference time.
	MatrixSeconds float64
	// RecursiveSeconds is the full-graph recursion-based time ([12]),
	// estimated from a node sample when Sampled is true (the method is
	// embarrassingly per-node, so per-node cost × N is exact in
	// expectation — running all nodes at the largest sizes is precisely
	// the pathology the figure demonstrates).
	RecursiveSeconds float64
	Sampled          bool
	Speedup          float64
}

// Fig10Result is the scalability sweep.
type Fig10Result struct {
	Points []Fig10Point
}

// Fig10 reproduces the inference-scalability comparison: graphs from 10³
// to 10⁵ nodes by default (10⁶ reachable via cfg.Size), timed under the
// sparse matrix formulation and under naive per-node recursion.
func Fig10(cfg Config) Fig10Result {
	span := obs.StartSpan("experiments/fig10")
	defer span.End()
	cfg = cfg.withDefaults()
	sizes := []int{1000, 3000, 10000, 30000, 100000}
	sample := 64
	if cfg.Quick {
		sizes = []int{1000, 3000, 10000}
		sample = 16
	}
	model := core.MustNewModel(cfg.modelConfig(3, cfg.Seed+1))

	// The paper times inference with trained D=3 weights, so fit the
	// model briefly on one labeled design first. Weights do not change
	// the runtime being measured; the budget is capped well below the
	// accuracy experiments' so the sweep still dominates.
	trainEpochs := cfg.Epochs
	if trainEpochs > 20 {
		trainEpochs = 20
	}
	trainPatterns := cfg.Patterns
	if trainPatterns > 1024 {
		trainPatterns = 1024
	}
	bench := dataset.Label("fig10-train", circuitgen.Generate("fig10-train", circuitgen.Config{
		Seed: cfg.Seed + 7, NumGates: sizes[0],
	}), trainPatterns, dataset.DefaultThreshold, cfg.Seed+7)
	topt := cfg.trainOptions()
	topt.Epochs = trainEpochs
	if _, err := core.Train(model, []*core.Graph{bench.Graph}, nil, topt); err != nil {
		panic(err) // unreachable: one well-formed graph with matching labels
	}

	var res Fig10Result
	for _, size := range sizes {
		n := circuitgen.Generate(fmt.Sprintf("scale%d", size), circuitgen.Config{
			Seed: cfg.Seed + int64(size), NumGates: size,
		})
		m := scoap.Compute(n)
		g := core.FromNetlist(n, m)

		// Warm the lazily built CSR forms, then take the best of three
		// matrix passes to suppress allocator noise.
		model.Forward(g)
		matrixSec := 1e18
		for rep := 0; rep < 3; rep++ {
			start := time.Now()
			model.Forward(g)
			if s := time.Since(start).Seconds(); s < matrixSec {
				matrixSec = s
			}
		}

		// Recursion: measure a random node sample and scale to the full
		// graph (every node is classified independently).
		rng := rand.New(rand.NewSource(cfg.Seed + 99))
		nodes := make([]int32, sample)
		for i := range nodes {
			nodes[i] = int32(rng.Intn(g.N))
		}
		start := time.Now()
		model.InferRecursive(g, nodes)
		perNode := time.Since(start).Seconds() / float64(sample)
		recSec := perNode * float64(g.N)

		res.Points = append(res.Points, Fig10Point{
			Nodes:            g.N,
			MatrixSeconds:    matrixSec,
			RecursiveSeconds: recSec,
			Sampled:          true,
			Speedup:          recSec / matrixSec,
		})
	}
	return res
}

// Fprint writes the sweep (the figure's two series).
func (r Fig10Result) Fprint(w io.Writer) {
	fmt.Fprintln(w, "Figure 10: Inference runtime, recursion [12] vs. matrix formulation (ours)")
	fmt.Fprintf(w, "%10s %16s %16s %10s\n", "#nodes", "recursion (s)", "matrix (s)", "speedup")
	for _, p := range r.Points {
		note := ""
		if p.Sampled {
			note = " (recursion extrapolated from node sample)"
		}
		fmt.Fprintf(w, "%10d %16.4f %16.4f %9.0fx%s\n",
			p.Nodes, p.RecursiveSeconds, p.MatrixSeconds, p.Speedup, note)
	}
}
