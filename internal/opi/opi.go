// Package opi implements observation point insertion: the paper's
// iterative GCN-guided flow (Section 4, Figure 7) and the industrial-tool
// baseline it is compared against in Table 3.
//
// The GCN flow alternates prediction and insertion: the classifier marks
// difficult-to-observe nodes, every positive is scored by its impact —
// the number of positive predictions inside its fan-in cone that one
// observation point at that node would cover (Figure 6) — the top-ranked
// locations receive observation points, the graph and SCOAP attributes
// are updated incrementally (COO tuple appends + fan-in-cone attribute
// refresh), and inference repeats until no positive predictions remain.
//
// The baseline models a conventional testability-analysis tool:
// SCOAP-observability-greedy insertion that repeatedly observes the
// currently worst-observable node until every node clears a threshold —
// the "approximate measurement" TPI school the paper cites. Both flows
// are scored by the same fault-simulation substrate (package fault).
package opi

import (
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/netlist"
	"repro/internal/obs"
	"repro/internal/scoap"
)

// Insertion-flow metrics (no-ops until obs.Enable; see
// docs/OBSERVABILITY.md). incremental_updates vs full_inferences is the
// Section 3.4 efficiency story in two numbers: how often the flow paid
// D-hop-bounded cached-embedding cost instead of a whole-graph forward
// pass.
var (
	opiIterations  = obs.GetCounter("opi.iterations")
	opiInsertions  = obs.GetCounter("opi.insertions")
	opiPositives   = obs.GetHistogram("opi.positives")
	opiIncremental = obs.GetCounter("opi.incremental_updates")
	opiFullInfer   = obs.GetCounter("opi.full_inferences")
)

// Predictor produces per-node positive (difficult-to-observe)
// probabilities for a GCN graph; *core.Model and *core.MultiStage both
// satisfy it.
type Predictor interface {
	PredictProbs(g *core.Graph) []float64
}

// FlowConfig controls the iterative GCN insertion flow.
type FlowConfig struct {
	// Threshold is the positive-prediction cutoff; default 0.5.
	Threshold float64
	// PerIteration caps insertions per iteration (the paper's "top
	// ranked locations"); default 64.
	PerIteration int
	// ConeLimit caps the BFS fan-in cone used for impact scoring;
	// default 500. 0 means unbounded.
	ConeLimit int
	// MaxIterations bounds the outer loop; default 64.
	MaxIterations int
	// MaxInsertions bounds the total number of observation points;
	// 0 means unlimited.
	MaxInsertions int
	// ExactImpact switches from the static cone-count ranking to the
	// paper's hypothetical-insertion impact (Figure 6) whenever the
	// positive set is at most ExactImpactCap nodes. Expensive: one full
	// inference per candidate per iteration.
	ExactImpact bool
	// ExactImpactCap limits exact evaluation to small candidate sets;
	// default 64.
	ExactImpactCap int
	// FullEvery re-runs full inference every FullEvery iterations when
	// the predictor supports incremental updates, discarding the cached
	// embeddings — an escape hatch against cache drift. 0 (the default)
	// means never: the cache is trusted for the whole flow, which the
	// equivalence tests justify.
	FullEvery int
	// DisableIncremental forces a full inference pass every iteration
	// even for predictors implementing core.IncrementalPredictor; used by
	// the equivalence tests and the full-vs-incremental benchmarks.
	DisableIncremental bool
	// Progress, when non-nil, is invoked once per iteration.
	Progress func(iter, positives, insertedSoFar int)
}

func (c FlowConfig) withDefaults() FlowConfig {
	if c.Threshold <= 0 {
		c.Threshold = 0.5
	}
	if c.PerIteration <= 0 {
		c.PerIteration = 64
	}
	if c.ConeLimit < 0 {
		c.ConeLimit = 0
	} else if c.ConeLimit == 0 {
		c.ConeLimit = 500
	}
	if c.MaxIterations <= 0 {
		c.MaxIterations = 64
	}
	if c.ExactImpactCap <= 0 {
		c.ExactImpactCap = 64
	}
	return c
}

// FlowResult reports the insertion flow outcome.
type FlowResult struct {
	// Targets lists the observed nodes in insertion order.
	Targets []int32
	// Iterations is the number of predict/insert rounds executed.
	Iterations int
	// FinalPositives is the number of positive predictions remaining at
	// exit (0 unless a bound stopped the flow early).
	FinalPositives int
}

// RunFlow executes the iterative insertion flow, mutating the netlist,
// measures and graph in place.
//
// When the predictor implements core.IncrementalPredictor (*core.Model
// and *core.MultiStage both do), the flow pays full-graph inference only
// once: subsequent iterations feed the dirty set of each round's
// insertions — the new OP nodes plus the refreshed fan-in cones — into
// the predictor's cached-embedding update, whose cost is bounded by the
// D-hop neighborhood of the mutations instead of the whole graph
// (Section 3.4's efficiency argument applied to the Section 4 loop).
// FlowConfig.FullEvery periodically discards the cache;
// FlowConfig.DisableIncremental opts out entirely.
func RunFlow(n *netlist.Netlist, meas *scoap.Measures, g *core.Graph, pred Predictor, cfg FlowConfig) FlowResult {
	span := obs.StartSpan("opi")
	defer span.End()
	cfg = cfg.withDefaults()
	res := FlowResult{}
	observed := observedSet(n)

	ip, incremental := pred.(core.IncrementalPredictor)
	if cfg.DisableIncremental {
		incremental = false
	}
	var run core.IncrementalRun
	var dirty []int32 // attribute rows refreshed since the last inference

	for iter := 0; iter < cfg.MaxIterations; iter++ {
		iterSpan := span.Child("iteration")
		opiIterations.Inc()
		var probs []float64
		switch {
		case !incremental:
			opiFullInfer.Inc()
			probs = pred.PredictProbs(g)
		case run == nil || (cfg.FullEvery > 0 && iter%cfg.FullEvery == 0):
			opiFullInfer.Inc()
			run = ip.NewIncremental(g)
			dirty = dirty[:0]
			probs = run.Probs()
		default:
			opiIncremental.Inc()
			run.Update(g, dirty)
			dirty = dirty[:0]
			probs = run.Probs()
		}
		positives := make(map[int32]bool)
		for v := 0; v < g.N && v < n.NumGates(); v++ {
			if probs[v] >= cfg.Threshold && insertable(n, int32(v)) && !observed[int32(v)] {
				positives[int32(v)] = true
			}
		}
		res.Iterations = iter + 1
		res.FinalPositives = len(positives)
		opiPositives.Observe(int64(len(positives)))
		if cfg.Progress != nil {
			cfg.Progress(iter, len(positives), len(res.Targets))
		}
		if len(positives) == 0 {
			iterSpan.End()
			return res
		}

		rankSpan := iterSpan.Child("rank")
		var selected []int32
		if cfg.ExactImpact && len(positives) <= cfg.ExactImpactCap {
			selected = selectByExactImpact(n, meas, g, pred, positives, cfg)
		} else {
			selected = selectByImpact(n, positives, cfg)
		}
		rankSpan.End()
		if cfg.MaxInsertions > 0 && len(res.Targets)+len(selected) > cfg.MaxInsertions {
			selected = selected[:cfg.MaxInsertions-len(res.Targets)]
		}
		if len(selected) == 0 {
			iterSpan.End()
			return res
		}
		// Levels are computed once per iteration: OP insertions never
		// change the level of an existing node (an Obs cell is a pure
		// sink), so the per-insertion recomputation this loop used to do
		// was N·insertions of wasted work. The slice is extended with the
		// new OP's level after each insertion to stay index-aligned.
		lv := append([]int32(nil), n.Levels()...)
		for _, v := range selected {
			_, touched, err := InsertAndRefresh(n, meas, g, v, lv)
			if err != nil {
				// selected only contains insertable nodes, so this is a
				// programming error, not an input error.
				panic(err)
			}
			lv = append(lv, lv[v]+1)
			if incremental {
				dirty = append(dirty, touched...)
			}
			observed[v] = true
			res.Targets = append(res.Targets, v)
		}
		opiInsertions.Add(int64(len(selected)))
		iterSpan.End()
		if cfg.MaxInsertions > 0 && len(res.Targets) >= cfg.MaxInsertions {
			return res
		}
	}
	return res
}

// selectByImpact ranks positive nodes by impact (1 + positives in the
// fan-in cone) and returns up to PerIteration targets, skipping
// candidates already covered by the cone of a higher-ranked selection so
// a single funnel is not observed at every node simultaneously.
//
// The per-positive fan-in-cone BFS is the flow's second hot spot once
// inference runs incrementally, so the cones are extracted across a
// worker pool (FaninCone only reads immutable netlist structure, never
// the lazy caches, so concurrent traversals are safe).
func selectByImpact(n *netlist.Netlist, positives map[int32]bool, cfg FlowConfig) []int32 {
	nodes := make([]int32, 0, len(positives))
	for v := range positives {
		nodes = append(nodes, v)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	cones := make([][]int32, len(nodes))
	if workers := runtime.GOMAXPROCS(0); workers > 1 && len(nodes) > 1 {
		if workers > len(nodes) {
			workers = len(nodes)
		}
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(nodes) {
						return
					}
					cones[i] = n.FaninCone(nodes[i], cfg.ConeLimit)
				}
			}()
		}
		wg.Wait()
	} else {
		for i, v := range nodes {
			cones[i] = n.FaninCone(v, cfg.ConeLimit)
		}
	}

	type scored struct {
		node   int32
		cone   []int32
		impact int
	}
	ranked := make([]scored, 0, len(nodes))
	for i, v := range nodes {
		impact := 1
		for _, u := range cones[i] {
			if positives[u] {
				impact++
			}
		}
		ranked = append(ranked, scored{v, cones[i], impact})
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].impact != ranked[j].impact {
			return ranked[i].impact > ranked[j].impact
		}
		return ranked[i].node < ranked[j].node
	})
	covered := make(map[int32]bool)
	var selected []int32
	for _, s := range ranked {
		if len(selected) >= cfg.PerIteration {
			break
		}
		if covered[s.node] {
			continue
		}
		selected = append(selected, s.node)
		for _, u := range s.cone {
			covered[u] = true
		}
	}
	return selected
}

// InsertAndRefresh performs one observation point insertion with all
// incremental updates: netlist node+edge, SCOAP fan-in-cone relaxation,
// COO adjacency tuples and attribute rows of affected nodes. lv holds
// the logic levels of the pre-existing nodes (hoisted out of the
// per-insertion path: levels of existing nodes are unaffected by an OP).
// It returns the new OP node and the nodes whose attribute rows actually
// changed — the dirty set for cached-embedding inference (the slice to
// hand core.IncrementalRun.Update). An OP changes only observability
// (never controllability or levels), the SCOAP relaxation reports
// exactly the cells it improved, and clamping collapses many raw
// improvements to the same attribute value, so the dirty set is
// typically far smaller than the fan-in cone.
//
// The error is non-nil only when target cannot legally receive an
// observation point (e.g. it is an Input, Output or Obs cell); nothing
// has been mutated in that case. It is exported for consumers that
// replay edit deltas against a cached (netlist, measures, graph,
// incremental-run) bundle — the serving layer's /v1/score/delta path —
// so that every caller applies the exact same insertion recipe RunFlow
// uses.
func InsertAndRefresh(n *netlist.Netlist, meas *scoap.Measures, g *core.Graph, target int32, lv []int32) (int32, []int32, error) {
	op, err := n.InsertObservationPoint(target)
	if err != nil {
		return -1, nil, err
	}
	changed := meas.UpdateAfterObservationPoint(n, op)
	g.AddObservationPoint(target)
	dirty := make([]int32, 0, len(changed))
	for _, u := range changed {
		old := g.X.At(int(u), 3)
		g.SetAttributes(u, float64(lv[u]), float64(meas.CC0[u]),
			float64(meas.CC1[u]), clampCO(meas.CO[u]))
		if g.X.At(int(u), 3) != old {
			dirty = append(dirty, u)
		}
	}
	return op, dirty, nil
}

func clampCO(co int32) float64 {
	if co > core.COClamp {
		co = core.COClamp
	}
	return float64(co)
}

// insertable reports whether a node may receive an observation point.
func insertable(n *netlist.Netlist, v int32) bool {
	switch n.Type(v) {
	case netlist.Input, netlist.Output, netlist.Obs:
		return false
	}
	return true
}

// observedSet returns the nodes that already drive an observation point.
// Obs cells without fanin (a malformed netlist — nothing in this
// repository builds one, but inputs arrive from parsers and fuzzers too)
// observe nothing and are skipped rather than panicking the flow.
func observedSet(n *netlist.Netlist) map[int32]bool {
	out := make(map[int32]bool)
	for _, op := range n.ObservationPoints() {
		if fi := n.Fanin(op); len(fi) > 0 {
			out[fi[0]] = true
		}
	}
	return out
}

// BaselineConfig controls the industrial-tool stand-in.
type BaselineConfig struct {
	// COThreshold marks a node difficult when its SCOAP observability
	// exceeds it. Use CalibrateCOThreshold to derive it from labels.
	COThreshold int32
	// PerIteration caps insertions per round; default 64.
	PerIteration int
	// MaxIterations bounds the loop; default 256.
	MaxIterations int
}

// IndustrialBaseline repeatedly observes the worst-observability nodes
// (SCOAP CO above the threshold), recomputing measures incrementally,
// until every node clears the threshold. Returns the observed targets.
func IndustrialBaseline(n *netlist.Netlist, meas *scoap.Measures, cfg BaselineConfig) []int32 {
	if cfg.PerIteration <= 0 {
		cfg.PerIteration = 64
	}
	if cfg.MaxIterations <= 0 {
		cfg.MaxIterations = 256
	}
	var targets []int32
	observed := observedSet(n)
	for iter := 0; iter < cfg.MaxIterations; iter++ {
		type scored struct {
			node int32
			co   int32
		}
		var difficult []scored
		for v := int32(0); v < int32(n.NumGates()); v++ {
			if meas.CO[v] > cfg.COThreshold && insertable(n, v) && !observed[v] {
				difficult = append(difficult, scored{v, meas.CO[v]})
			}
		}
		if len(difficult) == 0 {
			return targets
		}
		sort.Slice(difficult, func(i, j int) bool {
			if difficult[i].co != difficult[j].co {
				return difficult[i].co > difficult[j].co
			}
			return difficult[i].node < difficult[j].node
		})
		inserted := 0
		for _, d := range difficult {
			if inserted >= cfg.PerIteration {
				break
			}
			// The measure may have improved due to an insertion earlier in
			// this round; re-check before spending an observation point.
			if meas.CO[d.node] <= cfg.COThreshold {
				continue
			}
			op, err := n.InsertObservationPoint(d.node)
			if err != nil {
				continue
			}
			meas.UpdateAfterObservationPoint(n, op)
			observed[d.node] = true
			targets = append(targets, d.node)
			inserted++
		}
		if inserted == 0 {
			return targets
		}
	}
	return targets
}

// SimGreedyConfig controls the exact-simulation baseline.
type SimGreedyConfig struct {
	// Patterns is the per-round observability simulation budget; use the
	// same budget as labeling for a tool whose difficulty criterion
	// matches the ground truth.
	Patterns int
	// Threshold is the difficulty cutoff (fraction of patterns).
	Threshold float64
	// PerIteration caps insertions per round; default 64.
	PerIteration int
	// MaxIterations bounds the loop; default 256.
	MaxIterations int
	// Seed drives the random patterns.
	Seed int64
}

// SimulationGreedy is the stronger industrial-tool model: exact
// fault-simulation-based TPI (the other school of TPI methods the paper
// cites). Each round it measures true random-pattern observability,
// inserts observation points at the worst still-difficult nodes, and
// re-simulates, so insertions that transitively fixed upstream logic are
// never duplicated. Because its difficulty criterion is the labeling
// criterion itself, it is an oracle-quality baseline; the GCN flow can
// only win on the *placement* of points, not on knowing which nodes are
// difficult.
func SimulationGreedy(n *netlist.Netlist, cfg SimGreedyConfig) []int32 {
	if cfg.PerIteration <= 0 {
		cfg.PerIteration = 64
	}
	if cfg.MaxIterations <= 0 {
		cfg.MaxIterations = 256
	}
	if cfg.Patterns <= 0 {
		cfg.Patterns = 2048
	}
	if cfg.Threshold <= 0 {
		cfg.Threshold = 0.005
	}
	cut := cfg.Threshold * float64(cfg.Patterns)
	var targets []int32
	observed := observedSet(n)
	for iter := 0; iter < cfg.MaxIterations; iter++ {
		counts := fault.ObservabilityCounts(n, cfg.Patterns, cfg.Seed+int64(iter))
		type scored struct {
			node  int32
			count int
		}
		var difficult []scored
		for v := int32(0); v < int32(n.NumGates()); v++ {
			if float64(counts[v]) < cut && insertable(n, v) && !observed[v] {
				difficult = append(difficult, scored{v, counts[v]})
			}
		}
		if len(difficult) == 0 {
			return targets
		}
		sort.Slice(difficult, func(i, j int) bool {
			if difficult[i].count != difficult[j].count {
				return difficult[i].count < difficult[j].count
			}
			return difficult[i].node < difficult[j].node
		})
		k := cfg.PerIteration
		if k > len(difficult) {
			k = len(difficult)
		}
		inserted := 0
		for _, d := range difficult[:k] {
			if _, err := insertOP(n, d.node); err != nil {
				continue
			}
			observed[d.node] = true
			targets = append(targets, d.node)
			inserted++
		}
		if inserted == 0 {
			// Every insertion failed; the next round would simulate the
			// same patterns against the same netlist and fail identically,
			// so bail instead of burning MaxIterations full fault
			// simulations on zero progress (IndustrialBaseline has the
			// same guard).
			return targets
		}
	}
	return targets
}

// insertOP indirects observation-point insertion so tests can force
// failure paths; production use is always the netlist method.
var insertOP = func(n *netlist.Netlist, target int32) (int32, error) {
	return n.InsertObservationPoint(target)
}

// CalibrateCOThreshold picks the baseline tool's difficulty threshold
// from labeled data: the q-quantile (e.g. 0.1) of SCOAP observability
// over the positive nodes, so that the tool would flag (1-q) of the truly
// difficult nodes as difficult. q is clamped to [0, 1]; values outside
// that range would index out of the sorted sample.
func CalibrateCOThreshold(meas *scoap.Measures, labels []int, q float64) int32 {
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	var cos []int32
	for v, l := range labels {
		if l == 1 {
			cos = append(cos, meas.CO[v])
		}
	}
	if len(cos) == 0 {
		return 1 << 20
	}
	sort.Slice(cos, func(i, j int) bool { return cos[i] < cos[j] })
	idx := int(q * float64(len(cos)-1))
	return cos[idx]
}

// Evaluation bundles the Table 3 metrics for one flow on one design.
type Evaluation struct {
	OPs      int
	Patterns int
	Coverage float64
}

// Evaluate runs the shared fault-simulation scoring on a netlist after
// insertion: number of observation points present, test patterns used
// and stuck-at fault coverage.
func Evaluate(n *netlist.Netlist, tpg fault.TPGConfig) Evaluation {
	res := fault.GenerateTests(n, tpg)
	return Evaluation{
		OPs:      n.CountType(netlist.Obs),
		Patterns: res.PatternsUsed,
		Coverage: res.Coverage,
	}
}

// EvaluateATPG scores a netlist with the full commercial-style flow:
// random patterns plus PODEM deterministic top-up. Coverage is the
// test coverage over provably testable faults, the number a commercial
// tool reports.
func EvaluateATPG(n *netlist.Netlist, cfg fault.ATPGConfig) Evaluation {
	res := fault.GenerateTestsWithATPG(n, cfg)
	return Evaluation{
		OPs:      n.CountType(netlist.Obs),
		Patterns: res.PatternsUsed,
		Coverage: res.TestCoverage,
	}
}
