package opi

import (
	"sort"
	"testing"

	"repro/internal/core"
)

// flowThreshold picks a positive cutoff such that roughly frac of the
// nodes are positive under pred, placed at the midpoint of the gap
// between two adjacent probabilities so that the sub-1e-9 differences
// between full and cached-embedding inference cannot flip a decision.
func flowThreshold(g *core.Graph, pred Predictor, frac float64) float64 {
	probs := append([]float64(nil), pred.PredictProbs(g)...)
	sort.Float64s(probs)
	idx := int((1 - frac) * float64(len(probs)-1))
	if idx+1 >= len(probs) {
		return probs[idx]
	}
	return (probs[idx] + probs[idx+1]) / 2
}

// runEquivalence runs the same flow twice on identical copies of one
// seeded design — once forced onto per-iteration full inference, once on
// the cached-embedding path — and requires identical outcomes.
func runEquivalence(t *testing.T, seed int64, gates int, mk func() Predictor) FlowResult {
	t.Helper()
	nFull, mFull, gFull := buildBench(t, seed, gates)
	nInc, mInc, gInc := buildBench(t, seed, gates)

	pred := mk()
	thr := flowThreshold(gFull, pred, 0.03)
	cfg := FlowConfig{Threshold: thr, PerIteration: 6, MaxIterations: 5}

	cfgFull := cfg
	cfgFull.DisableIncremental = true
	resFull := RunFlow(nFull, mFull, gFull, pred, cfgFull)
	resInc := RunFlow(nInc, mInc, gInc, pred, cfg)

	if resFull.Iterations != resInc.Iterations {
		t.Fatalf("seed %d: iterations full=%d incremental=%d", seed, resFull.Iterations, resInc.Iterations)
	}
	if resFull.FinalPositives != resInc.FinalPositives {
		t.Fatalf("seed %d: final positives full=%d incremental=%d",
			seed, resFull.FinalPositives, resInc.FinalPositives)
	}
	if len(resFull.Targets) != len(resInc.Targets) {
		t.Fatalf("seed %d: target counts full=%d incremental=%d",
			seed, len(resFull.Targets), len(resInc.Targets))
	}
	for i := range resFull.Targets {
		if resFull.Targets[i] != resInc.Targets[i] {
			t.Fatalf("seed %d: target %d differs: full=%d incremental=%d",
				seed, i, resFull.Targets[i], resInc.Targets[i])
		}
	}
	return resFull
}

func TestIncrementalFlowMatchesFullModel(t *testing.T) {
	mk := func() Predictor {
		return core.MustNewModel(core.Config{Dims: []int{8, 8}, FCDims: []int{8}, NumClasses: 2, Seed: 71})
	}
	multi := 0
	for _, seed := range []int64{11, 12, 13} {
		if res := runEquivalence(t, seed, 1000, mk); res.Iterations >= 2 {
			multi++
		}
	}
	if multi == 0 {
		t.Fatal("no design ran more than one iteration; the incremental path was never exercised")
	}
}

func TestIncrementalFlowMatchesFullMultiStage(t *testing.T) {
	mk := func() Predictor {
		return &core.MultiStage{
			Stages: []*core.Model{
				core.MustNewModel(core.Config{Dims: []int{8, 8}, FCDims: []int{8}, NumClasses: 2, Seed: 81}),
				core.MustNewModel(core.Config{Dims: []int{8, 8}, FCDims: []int{8}, NumClasses: 2, Seed: 82}),
			},
			FilterBelow: 0.25,
		}
	}
	multi := 0
	for _, seed := range []int64{21, 22, 23} {
		if res := runEquivalence(t, seed, 1000, mk); res.Iterations >= 2 {
			multi++
		}
	}
	if multi == 0 {
		t.Fatal("no design ran more than one iteration; the incremental path was never exercised")
	}
}

func TestRunFlowFullEveryForcesFullInference(t *testing.T) {
	// FullEvery=1 must behave exactly like the incremental path (and the
	// full path — all three were proven equal above); here we check the
	// knob steers the counters, which requires obs to be off so we count
	// via a wrapping predictor instead.
	n, m, g := buildBench(t, 31, 800)
	pred := &countingPredictor{
		inner: core.MustNewModel(core.Config{Dims: []int{8, 8}, FCDims: []int{8}, NumClasses: 2, Seed: 91}),
	}
	thr := flowThreshold(g, pred.inner, 0.03)
	res := RunFlow(n, m, g, pred, FlowConfig{
		Threshold: thr, PerIteration: 4, MaxIterations: 4, FullEvery: 1,
	})
	if res.Iterations < 2 {
		t.Skip("flow converged in one iteration on this seed")
	}
	// With FullEvery=1 every iteration rebuilds the cache via
	// NewIncremental → ForwardFull; the wrapper counts those.
	if pred.fullPasses != res.Iterations {
		t.Fatalf("FullEvery=1 ran %d full passes over %d iterations", pred.fullPasses, res.Iterations)
	}
}

// countingPredictor forwards to a model and counts full passes started
// through the incremental capability.
type countingPredictor struct {
	inner      *core.Model
	fullPasses int
}

func (c *countingPredictor) PredictProbs(g *core.Graph) []float64 {
	return c.inner.PredictProbs(g)
}

func (c *countingPredictor) NewIncremental(g *core.Graph) core.IncrementalRun {
	c.fullPasses++
	return c.inner.NewIncremental(g)
}
