package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"html/template"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Request-scoped tracing, in the spirit of x/net/trace: every request a
// server handles gets a ReqTrace that records a phase breakdown
// (queue-wait, parse, forward, ...) plus string annotations (cache
// hit/miss, batcher leader attribution). Live traces are listed in an
// inflight registry; finished traces land in a bounded ring of recent
// requests. GET /debug/requests (RequestsHandler) exposes both, so "why
// was *this* call slow" is answerable while the server runs.
//
// Like the rest of the package, everything is nil-safe and gated on
// Enable: StartRequest returns nil while instrumentation is off, and all
// ReqTrace/ReqPhase methods are no-ops on a nil receiver.

// defaultRecentRequests bounds the completed-request ring.
const defaultRecentRequests = 256

// PhaseSnapshot is one completed phase of a request: where it started
// relative to the request's own start, and how long it took.
type PhaseSnapshot struct {
	// Name is the phase name (e.g. "queue", "parse", "forward").
	Name string `json:"name"`
	// StartNS is nanoseconds since the request started.
	StartNS int64 `json:"start_ns"`
	// DurNS is the phase's wall time in nanoseconds.
	DurNS int64 `json:"dur_ns"`
}

// RequestSnapshot is the serialized form of one traced request.
type RequestSnapshot struct {
	// ID is the request id (client-supplied X-Request-ID or generated).
	ID string `json:"id"`
	// Name is the server-side operation name (e.g. "score", "opi").
	Name string `json:"name"`
	// StartNS is monotonic nanoseconds since process start.
	StartNS int64 `json:"start_ns"`
	// WallNS is the request's total wall time; for an inflight request it
	// is the elapsed time at snapshot.
	WallNS int64 `json:"wall_ns"`
	// Status is the terminal status (HTTP status code text); empty while
	// the request is still inflight.
	Status string `json:"status,omitempty"`
	// Attrs holds string annotations (cache: hit/miss, batch.leader: the
	// coalescing leader's request id, ...), serialized with sorted keys.
	Attrs map[string]string `json:"attrs,omitempty"`
	// Phases is the phase breakdown in completion order.
	Phases []PhaseSnapshot `json:"phases,omitempty"`
}

// ReqTrace is one live request trace. Obtain with StartRequest, record
// phases with StartPhase/End and annotations with Annotate, and call
// Finish exactly once when the request completes.
type ReqTrace struct {
	seq     uint64
	id      string
	name    string
	start   time.Time
	startNS int64

	mu     sync.Mutex
	phases []PhaseSnapshot
	attrs  map[string]string
	done   bool
}

// ReqPhase is one open phase of a request; close it with End.
type ReqPhase struct {
	t     *ReqTrace
	name  string
	start time.Time
}

// reqRegistry holds the inflight set and the bounded recent ring.
type reqRegistry struct {
	mu       sync.Mutex
	seq      uint64
	inflight map[uint64]*ReqTrace
	recent   []RequestSnapshot
	next     int // ring write cursor once full
	full     bool
	dropped  int64
	capacity int
}

var reqs = &reqRegistry{capacity: defaultRecentRequests, inflight: map[uint64]*ReqTrace{}}

// StartRequest opens a trace for one request and registers it in the
// inflight set. Returns nil (a valid no-op trace) while instrumentation
// is disabled.
func StartRequest(name, id string) *ReqTrace {
	if !enabled.Load() {
		return nil
	}
	t := &ReqTrace{id: id, name: name, start: time.Now(), startNS: nowNS()}
	reqs.mu.Lock()
	reqs.seq++
	t.seq = reqs.seq
	reqs.inflight[t.seq] = t
	reqs.mu.Unlock()
	return t
}

// ID returns the trace's request id ("" on a nil trace).
func (t *ReqTrace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// Annotate attaches a string key/value to the trace. No-op on nil.
func (t *ReqTrace) Annotate(key, value string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if t.attrs == nil {
		t.attrs = map[string]string{}
	}
	t.attrs[key] = value
	t.mu.Unlock()
}

// StartPhase opens a named phase; close it with End. Phases may overlap
// and are recorded in completion order. No-op (returns nil) on a nil
// trace.
func (t *ReqTrace) StartPhase(name string) *ReqPhase {
	if t == nil {
		return nil
	}
	return &ReqPhase{t: t, name: name, start: time.Now()}
}

// End closes the phase, appending it to the trace's breakdown. No-op on
// a nil receiver; must be called at most once.
func (p *ReqPhase) End() {
	if p == nil {
		return
	}
	t := p.t
	t.mu.Lock()
	t.phases = append(t.phases, PhaseSnapshot{
		Name:    p.name,
		StartNS: p.start.Sub(t.start).Nanoseconds(),
		DurNS:   time.Since(p.start).Nanoseconds(),
	})
	t.mu.Unlock()
}

// snapshotLocked copies the trace's current state; callers hold t.mu.
func (t *ReqTrace) snapshotLocked(status string, wall int64) RequestSnapshot {
	s := RequestSnapshot{
		ID: t.id, Name: t.name, StartNS: t.startNS, WallNS: wall, Status: status,
	}
	if len(t.attrs) > 0 {
		s.Attrs = make(map[string]string, len(t.attrs))
		for k, v := range t.attrs {
			s.Attrs[k] = v
		}
	}
	s.Phases = append([]PhaseSnapshot(nil), t.phases...)
	return s
}

// Finish closes the trace: it leaves the inflight set and its final
// snapshot (with the given terminal status) enters the recent ring,
// overwriting the oldest entry once the ring is full. Returns the final
// snapshot (zero value on a nil trace).
func (t *ReqTrace) Finish(status string) RequestSnapshot {
	if t == nil {
		return RequestSnapshot{}
	}
	t.mu.Lock()
	if t.done {
		snap := t.snapshotLocked(status, time.Since(t.start).Nanoseconds())
		t.mu.Unlock()
		return snap
	}
	t.done = true
	snap := t.snapshotLocked(status, time.Since(t.start).Nanoseconds())
	t.mu.Unlock()

	reqs.mu.Lock()
	delete(reqs.inflight, t.seq)
	if len(reqs.recent) < reqs.capacity {
		reqs.recent = append(reqs.recent, snap)
	} else {
		reqs.recent[reqs.next] = snap
		reqs.next = (reqs.next + 1) % reqs.capacity
		reqs.full = true
		reqs.dropped++
	}
	reqs.mu.Unlock()
	return snap
}

// RequestsPage is the /debug/requests document: live inflight requests,
// the bounded ring of recently completed ones (oldest first), and how
// many older completions the ring has already overwritten.
type RequestsPage struct {
	Inflight    []RequestSnapshot `json:"inflight"`
	Recent      []RequestSnapshot `json:"recent"`
	Overwritten int64             `json:"overwritten,omitempty"`
}

// SnapshotRequests captures the current inflight set (sorted by start
// time) and the recent-completion ring (chronological).
func SnapshotRequests() RequestsPage {
	reqs.mu.Lock()
	live := make([]*ReqTrace, 0, len(reqs.inflight))
	for _, t := range reqs.inflight {
		live = append(live, t)
	}
	var page RequestsPage
	page.Overwritten = reqs.dropped
	if reqs.full {
		page.Recent = append(page.Recent, reqs.recent[reqs.next:]...)
		page.Recent = append(page.Recent, reqs.recent[:reqs.next]...)
	} else {
		page.Recent = append(page.Recent, reqs.recent...)
	}
	reqs.mu.Unlock()

	sort.Slice(live, func(i, j int) bool { return live[i].seq < live[j].seq })
	for _, t := range live {
		t.mu.Lock()
		page.Inflight = append(page.Inflight, t.snapshotLocked("", nowNS()-t.startNS))
		t.mu.Unlock()
	}
	return page
}

// SetRecentRequestCapacity resizes (and clears) the recent-completion
// ring. Intended for tests and for servers that know their volume.
func SetRecentRequestCapacity(n int) {
	if n < 1 {
		n = 1
	}
	reqs.mu.Lock()
	reqs.capacity = n
	reqs.recent = nil
	reqs.next = 0
	reqs.full = false
	reqs.dropped = 0
	reqs.mu.Unlock()
}

// reset clears the registry (Reset calls this).
func (r *reqRegistry) reset() {
	r.mu.Lock()
	r.inflight = map[uint64]*ReqTrace{}
	r.recent = nil
	r.next = 0
	r.full = false
	r.dropped = 0
	r.mu.Unlock()
}

// reqCtxKey keys the active request trace in a context.
type reqCtxKey struct{}

// ContextWithRequest returns a context carrying the trace; subsystems
// downstream retrieve it with RequestFromContext to record phases into
// the originating request.
func ContextWithRequest(ctx context.Context, t *ReqTrace) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, reqCtxKey{}, t)
}

// RequestFromContext returns the context's active request trace, or nil.
func RequestFromContext(ctx context.Context) *ReqTrace {
	t, _ := ctx.Value(reqCtxKey{}).(*ReqTrace)
	return t
}

// reqIDCounter backs NewRequestID's fallback when crypto/rand fails.
var reqIDCounter atomic.Uint64

// NewRequestID returns a fresh 16-hex-character request id.
func NewRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return fmt.Sprintf("req-%012x", reqIDCounter.Add(1))
	}
	return hex.EncodeToString(b[:])
}

// SanitizeRequestID vets a client-supplied request id: only
// [A-Za-z0-9._-] survive, truncated to 64 characters. Returns "" when
// nothing survives (callers then generate one).
func SanitizeRequestID(id string) string {
	out := make([]byte, 0, len(id))
	for i := 0; i < len(id) && len(out) < 64; i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
			out = append(out, c)
		}
	}
	return string(out)
}

// requestsTemplate renders the HTML form of /debug/requests.
var requestsTemplate = template.Must(template.New("requests").Funcs(template.FuncMap{
	"ms": func(ns int64) string { return fmt.Sprintf("%.3f", float64(ns)/1e6) },
}).Parse(`<!DOCTYPE html>
<html><head><title>/debug/requests</title><style>
body { font-family: monospace; } table { border-collapse: collapse; }
td, th { border: 1px solid #999; padding: 2px 8px; text-align: left; }
</style></head><body>
<h1>requests</h1>
{{define "rows"}}{{range .}}<tr><td>{{.ID}}</td><td>{{.Name}}</td><td>{{.Status}}</td><td>{{ms .WallNS}}</td>
<td>{{range .Phases}}{{.Name}}={{ms .DurNS}}ms {{end}}</td>
<td>{{range $k, $v := .Attrs}}{{$k}}={{$v}} {{end}}</td></tr>
{{end}}{{end}}
<h2>inflight ({{len .Inflight}})</h2>
<table><tr><th>id</th><th>op</th><th>status</th><th>wall ms</th><th>phases</th><th>attrs</th></tr>
{{template "rows" .Inflight}}</table>
<h2>recent ({{len .Recent}}, {{.Overwritten}} overwritten)</h2>
<table><tr><th>id</th><th>op</th><th>status</th><th>wall ms</th><th>phases</th><th>attrs</th></tr>
{{template "rows" .Recent}}</table>
</body></html>
`))

// RequestsHandler serves the request inspector: the inflight set plus
// the recent-completion ring. JSON by default (the RequestsPage shape);
// ?format=html renders a browsable table in the spirit of x/net/trace.
func RequestsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		page := SnapshotRequests()
		if r.URL.Query().Get("format") == "html" {
			w.Header().Set("Content-Type", "text/html; charset=utf-8")
			if err := requestsTemplate.Execute(w, page); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
			return
		}
		b, err := json.MarshalIndent(page, "", "  ")
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(append(b, '\n'))
	})
}
