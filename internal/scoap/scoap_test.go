package scoap

import (
	"testing"
	"testing/quick"

	"repro/internal/circuitgen"
	"repro/internal/netlist"
)

// buildChain constructs PI -> AND(a,b) -> OR(.,c) -> PO with hand-checked
// SCOAP values.
func buildChain(t testing.TB) (*netlist.Netlist, []int32) {
	t.Helper()
	n := netlist.New("chain")
	a := n.MustAddGate(netlist.Input, "a")
	b := n.MustAddGate(netlist.Input, "b")
	c := n.MustAddGate(netlist.Input, "c")
	g1 := n.MustAddGate(netlist.And, "g1", a, b)
	g2 := n.MustAddGate(netlist.Or, "g2", g1, c)
	po := n.MustAddGate(netlist.Output, "po", g2)
	return n, []int32{a, b, c, g1, g2, po}
}

func TestComputeHandValues(t *testing.T) {
	n, ids := buildChain(t)
	a, b, c, g1, g2 := ids[0], ids[1], ids[2], ids[3], ids[4]
	m := Compute(n)

	// Controllability.
	for _, pi := range []int32{a, b, c} {
		if m.CC0[pi] != 1 || m.CC1[pi] != 1 {
			t.Errorf("PI %d CC = (%d,%d), want (1,1)", pi, m.CC0[pi], m.CC1[pi])
		}
	}
	// AND: CC1 = CC1(a)+CC1(b)+1 = 3; CC0 = min(CC0)+1 = 2.
	if m.CC1[g1] != 3 || m.CC0[g1] != 2 {
		t.Errorf("AND CC = (%d,%d), want (2,3)", m.CC0[g1], m.CC1[g1])
	}
	// OR: CC0 = CC0(g1)+CC0(c)+1 = 2+1+1 = 4; CC1 = min(CC1(g1),CC1(c))+1 = 2.
	if m.CC0[g2] != 4 || m.CC1[g2] != 2 {
		t.Errorf("OR CC = (%d,%d), want (4,2)", m.CC0[g2], m.CC1[g2])
	}

	// Observability. PO net g2: 0. g1 through OR needs c=0: CO = 0+CC0(c)+1 = 2.
	if m.CO[g2] != 0 {
		t.Errorf("CO(g2) = %d, want 0", m.CO[g2])
	}
	if m.CO[g1] != 2 {
		t.Errorf("CO(g1) = %d, want 2", m.CO[g1])
	}
	// a through AND needs b=1: CO = CO(g1)+CC1(b)+1 = 2+1+1 = 4.
	if m.CO[a] != 4 || m.CO[b] != 4 {
		t.Errorf("CO(a,b) = (%d,%d), want (4,4)", m.CO[a], m.CO[b])
	}
	// c through OR needs g1=0: CO = 0+CC0(g1)+1 = 3.
	if m.CO[c] != 3 {
		t.Errorf("CO(c) = %d, want 3", m.CO[c])
	}
}

func TestXorControllability(t *testing.T) {
	n := netlist.New("xor")
	a := n.MustAddGate(netlist.Input, "a")
	b := n.MustAddGate(netlist.Input, "b")
	x := n.MustAddGate(netlist.Xor, "x", a, b)
	y := n.MustAddGate(netlist.Xnor, "y", a, b)
	n.MustAddGate(netlist.Output, "p", x)
	n.MustAddGate(netlist.Output, "q", y)
	m := Compute(n)
	// XOR of two PIs: CC0 = min(1+1, 1+1)+1 = 3; CC1 likewise 3.
	if m.CC0[x] != 3 || m.CC1[x] != 3 {
		t.Errorf("XOR CC = (%d,%d), want (3,3)", m.CC0[x], m.CC1[x])
	}
	if m.CC0[y] != 3 || m.CC1[y] != 3 {
		t.Errorf("XNOR CC = (%d,%d), want (3,3)", m.CC0[y], m.CC1[y])
	}
	// Observability of a through XOR: CO(x)=0 + min(CC0(b),CC1(b)) + 1 = 2.
	if m.CO[a] != 2 {
		t.Errorf("CO(a) = %d, want 2", m.CO[a])
	}
}

func TestNotAndNandRules(t *testing.T) {
	n := netlist.New("inv")
	a := n.MustAddGate(netlist.Input, "a")
	b := n.MustAddGate(netlist.Input, "b")
	inv := n.MustAddGate(netlist.Not, "inv", a)
	nand := n.MustAddGate(netlist.Nand, "nd", inv, b)
	n.MustAddGate(netlist.Output, "po", nand)
	m := Compute(n)
	if m.CC0[inv] != 2 || m.CC1[inv] != 2 {
		t.Errorf("NOT CC = (%d,%d), want (2,2)", m.CC0[inv], m.CC1[inv])
	}
	// NAND: CC0 = CC1(inv)+CC1(b)+1 = 2+1+1 = 4; CC1 = min(CC0)+1 = 2.
	if m.CC0[nand] != 4 || m.CC1[nand] != 2 {
		t.Errorf("NAND CC = (%d,%d), want (4,2)", m.CC0[nand], m.CC1[nand])
	}
}

func TestUnobservableDanglingNet(t *testing.T) {
	n := netlist.New("dangle")
	a := n.MustAddGate(netlist.Input, "a")
	g := n.MustAddGate(netlist.Buf, "g", a) // no fanout
	b := n.MustAddGate(netlist.Input, "b")
	n.MustAddGate(netlist.Output, "po", b)
	m := Compute(n)
	if m.CO[g] != Unobservable {
		t.Errorf("CO(dangling) = %d, want Unobservable", m.CO[g])
	}
}

func TestDFFBoundary(t *testing.T) {
	n := netlist.New("dff")
	a := n.MustAddGate(netlist.Input, "a")
	b := n.MustAddGate(netlist.Input, "b")
	g := n.MustAddGate(netlist.And, "g", a, b)
	q := n.MustAddGate(netlist.DFF, "q", g)
	h := n.MustAddGate(netlist.And, "h", q, a)
	n.MustAddGate(netlist.Output, "po", h)
	m := Compute(n)
	// Scan flop output is fully controllable.
	if m.CC0[q] != 1 || m.CC1[q] != 1 {
		t.Errorf("DFF CC = (%d,%d), want (1,1)", m.CC0[q], m.CC1[q])
	}
	// Scan flop input net g is fully observable.
	if m.CO[g] != 0 {
		t.Errorf("CO(g) = %d, want 0 (scan capture)", m.CO[g])
	}
}

func TestIncrementalMatchesFullRecompute(t *testing.T) {
	n := circuitgen.Generate("inc", circuitgen.Config{Seed: 11, NumGates: 1200})
	m := Compute(n)

	// Find a poorly observable internal node and observe it.
	var worst int32 = -1
	var worstCO int32 = -1
	for id := int32(0); id < int32(n.NumGates()); id++ {
		typ := n.Type(id)
		if typ == netlist.Output || typ == netlist.Obs || typ == netlist.Input {
			continue
		}
		co := m.CO[id]
		if co != Unobservable && co > worstCO {
			worst, worstCO = id, co
		}
	}
	if worst < 0 {
		t.Fatal("no candidate node found")
	}
	op, err := n.InsertObservationPoint(worst)
	if err != nil {
		t.Fatal(err)
	}
	m.UpdateAfterObservationPoint(n, op)

	full := Compute(n)
	for id := int32(0); id < int32(n.NumGates()); id++ {
		if m.CC0[id] != full.CC0[id] || m.CC1[id] != full.CC1[id] {
			t.Fatalf("cell %d CC mismatch: inc (%d,%d) full (%d,%d)",
				id, m.CC0[id], m.CC1[id], full.CC0[id], full.CC1[id])
		}
		if m.CO[id] != full.CO[id] {
			t.Fatalf("cell %d CO mismatch: inc %d full %d", id, m.CO[id], full.CO[id])
		}
	}
	if m.CO[worst] != 0 {
		t.Errorf("observed node CO = %d, want 0", m.CO[worst])
	}
}

func TestQuickInvariants(t *testing.T) {
	f := func(seed int64) bool {
		n := circuitgen.Generate("q", circuitgen.Config{Seed: seed, NumGates: 400})
		m := Compute(n)
		lv := n.Levels()
		for id := int32(0); id < int32(n.NumGates()); id++ {
			// Controllability is at least 1 everywhere.
			if m.CC0[id] < 1 || m.CC1[id] < 1 {
				return false
			}
			// Non-source cells cost strictly more than their cheapest
			// fanin to control to 0 (every SCOAP rule adds 1).
			if !n.Type(id).IsControllableSource() && n.Type(id) != netlist.Obs && len(n.Fanin(id)) > 0 {
				cheapest := Unobservable
				for _, f := range n.Fanin(id) {
					c := m.CC0[f]
					if m.CC1[f] < c {
						c = m.CC1[f]
					}
					if c < cheapest {
						cheapest = c
					}
				}
				if lv[id] > 0 && m.CC0[id] != Unobservable && m.CC0[id] <= cheapest && n.Type(id) != netlist.Output {
					return false
				}
			}
			// Sinks are observable for free.
			if n.Type(id).IsObservationSink() {
				if m.CO[n.Fanin(id)[0]] != 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func TestAttributes(t *testing.T) {
	n, ids := buildChain(t)
	m := Compute(n)
	attrs := m.Attributes(n, 1000)
	if len(attrs) != n.NumGates() {
		t.Fatalf("attrs len = %d", len(attrs))
	}
	g1 := ids[3]
	want := [4]float64{1, 2, 3, 2} // LL=1, CC0=2, CC1=3, CO=2
	if attrs[g1] != want {
		t.Errorf("attrs(g1) = %v, want %v", attrs[g1], want)
	}
	// Clamping applies to Unobservable.
	n2 := netlist.New("d")
	a := n2.MustAddGate(netlist.Input, "a")
	g := n2.MustAddGate(netlist.Buf, "g", a)
	_ = g
	b := n2.MustAddGate(netlist.Input, "b")
	n2.MustAddGate(netlist.Output, "po", b)
	m2 := Compute(n2)
	at2 := m2.Attributes(n2, 500)
	if at2[g][3] != 500 {
		t.Errorf("clamped CO = %v, want 500", at2[g][3])
	}
}

func BenchmarkComputeFull20k(b *testing.B) {
	n := circuitgen.Generate("b", circuitgen.Config{Seed: 1, NumGates: 20000})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Compute(n)
	}
}

func BenchmarkIncrementalUpdate(b *testing.B) {
	n := circuitgen.Generate("b", circuitgen.Config{Seed: 1, NumGates: 20000})
	m := Compute(n)
	// Insert one OP mid-circuit and measure the incremental relaxation.
	op, err := n.InsertObservationPoint(int32(n.NumGates() / 2))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.UpdateAfterObservationPoint(n, op)
	}
}
