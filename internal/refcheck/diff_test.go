package refcheck

import (
	"math/rand"
	"testing"

	"repro/internal/circuitgen"
	"repro/internal/fault"
	"repro/internal/sparse"
)

// TestDifferentialFaultSimAndMatmul is the acceptance gate of the
// verification harness: ≥50 seeded random circuits, each pushed through
// serial-vs-batch-vs-exact fault simulation and dense-vs-sparse matmul,
// with zero disagreements tolerated.
func TestDifferentialFaultSimAndMatmul(t *testing.T) {
	const circuits = 60
	configs := RandomConfigs(42, circuits)
	for i, cfg := range configs {
		n := circuitgen.Generate("diff", cfg)
		if err := n.Validate(); err != nil {
			t.Fatalf("circuit %d: invalid netlist: %v", i, err)
		}
		if err := CheckFaultSim(n, int64(1000+i), 12); err != nil {
			t.Errorf("circuit %d (gates=%d dff=%.2f): fault sim: %v", i, n.NumGates(), cfg.DFFFrac, err)
		}
		if err := CheckNetlistMatmul(n, int64(2000+i)); err != nil {
			t.Errorf("circuit %d (gates=%d): matmul: %v", i, n.NumGates(), err)
		}
	}
}

// TestDifferentialSecondBatch replays a later batch index to confirm the
// exact-detection replay convention (re-drawing earlier batches) stays
// aligned with the reference word generator.
func TestDifferentialSecondBatch(t *testing.T) {
	n := circuitgen.Generate("b", circuitgen.Config{Seed: 5, NumGates: 80, NumPIs: 10})
	words0 := BatchSourceWords(n, 7, 0)
	words2 := BatchSourceWords(n, 7, 2)
	same := true
	for id, w := range words0 {
		if words2[id] != w {
			same = false
		}
	}
	if same {
		t.Fatal("batch 2 reproduced batch 0 words — replay convention broken")
	}
	// The serial detect mask for batch 2 must still match the exact
	// engine, which re-derives the same words internally.
	for node := int32(0); node < int32(n.NumGates()); node += 17 {
		for _, sa1 := range []bool{false, true} {
			serial := SerialDetectMask(n, words2, node, sa1)
			exact := fault.ExactDetectMask(n, 7, 2, node, sa1)
			if serial != exact {
				t.Fatalf("batch 2 fault %d sa%v: exact %016x serial %016x", node, sa1, exact, serial)
			}
		}
	}
}

// TestCheckSparseOpsCatchesCorruption makes sure the differential
// matmul check actually has teeth: a deliberately corrupted CSR-style
// duplicate entry must be caught.
func TestCheckSparseOpsCatchesCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	coo := sparse.NewCOO(4, 4)
	coo.Append(0, 1, 1)
	coo.Append(2, 3, 2)
	coo.Append(2, 3, -0.5) // duplicate: must be summed by every kernel
	if err := CheckSparseOps(coo, 2, rng); err != nil {
		t.Fatalf("healthy COO flagged: %v", err)
	}
	// Corrupt after conversion-consistency is established: a dense
	// reference built from different values must diverge.
	bad := coo.Clone()
	bad.Vals[0] = 3
	ref := DenseOfCOO(coo)
	badRef := DenseOfCOO(bad)
	if MaxRelDiff(ref, badRef) <= MatTolerance {
		t.Fatal("corruption invisible to MaxRelDiff")
	}
}
