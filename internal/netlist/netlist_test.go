package netlist

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// buildC17 constructs the classic ISCAS-85 c17 benchmark, a useful tiny
// fixture shared by several tests.
func buildC17(t testing.TB) (*Netlist, map[string]int32) {
	t.Helper()
	n := New("c17")
	ids := make(map[string]int32)
	add := func(name string, typ GateType, fanin ...int32) int32 {
		id, err := n.AddGate(typ, name, fanin...)
		if err != nil {
			t.Fatalf("AddGate(%s): %v", name, err)
		}
		ids[name] = id
		return id
	}
	g1 := add("1", Input)
	g2 := add("2", Input)
	g3 := add("3", Input)
	g6 := add("6", Input)
	g7 := add("7", Input)
	g10 := add("10", Nand, g1, g3)
	g11 := add("11", Nand, g3, g6)
	g16 := add("16", Nand, g2, g11)
	g19 := add("19", Nand, g11, g7)
	g22 := add("22", Nand, g10, g16)
	g23 := add("23", Nand, g16, g19)
	add("po22", Output, g22)
	add("po23", Output, g23)
	return n, ids
}

func TestC17Structure(t *testing.T) {
	n, ids := buildC17(t)
	if got, want := n.NumGates(), 13; got != want {
		t.Errorf("NumGates = %d, want %d", got, want)
	}
	if got, want := n.NumEdges(), 14; got != want {
		t.Errorf("NumEdges = %d, want %d", got, want)
	}
	if got := len(n.PrimaryInputs()); got != 5 {
		t.Errorf("PIs = %d, want 5", got)
	}
	if got := len(n.PrimaryOutputs()); got != 2 {
		t.Errorf("POs = %d, want 2", got)
	}
	if err := n.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// Fanout of gate 11 is {16, 19}.
	fo := n.Fanout(ids["11"])
	if len(fo) != 2 || fo[0] != ids["16"] || fo[1] != ids["19"] {
		t.Errorf("Fanout(11) = %v, want [16 19] ids", fo)
	}
}

func TestLevels(t *testing.T) {
	n, ids := buildC17(t)
	lv := n.Levels()
	cases := map[string]int32{
		"1": 0, "2": 0, "3": 0, "6": 0, "7": 0,
		"10": 1, "11": 1, "16": 2, "19": 2, "22": 3, "23": 3,
	}
	for name, want := range cases {
		if got := lv[ids[name]]; got != want {
			t.Errorf("level(%s) = %d, want %d", name, got, want)
		}
	}
	if n.MaxLevel() != 4 { // POs are one past the deepest NANDs
		t.Errorf("MaxLevel = %d, want 4", n.MaxLevel())
	}
}

func TestTopoOrderRespectsEdges(t *testing.T) {
	n, _ := buildC17(t)
	pos := make(map[int32]int)
	for i, id := range n.TopoOrder() {
		pos[id] = i
	}
	for id := int32(0); id < int32(n.NumGates()); id++ {
		for _, f := range n.Fanin(id) {
			if pos[f] >= pos[id] {
				t.Fatalf("topo order violated: fanin %d not before %d", f, id)
			}
		}
	}
}

func TestCones(t *testing.T) {
	n, ids := buildC17(t)
	cone := n.FaninCone(ids["22"], 0)
	want := map[int32]bool{ids["10"]: true, ids["16"]: true, ids["1"]: true,
		ids["3"]: true, ids["2"]: true, ids["11"]: true, ids["6"]: true}
	if len(cone) != len(want) {
		t.Fatalf("FaninCone(22) = %v, want %d nodes", cone, len(want))
	}
	for _, id := range cone {
		if !want[id] {
			t.Errorf("unexpected cone member %d", id)
		}
	}
	// Limit is honored.
	if got := len(n.FaninCone(ids["22"], 3)); got != 3 {
		t.Errorf("limited cone size = %d, want 3", got)
	}
	// Fanout cone of input 3 reaches both POs.
	fc := n.FanoutCone(ids["3"], 0)
	if len(fc) != 8 {
		t.Errorf("FanoutCone(3) = %v (len %d), want 8 nodes", fc, len(fc))
	}
}

func TestObservationPointInsertion(t *testing.T) {
	n, ids := buildC17(t)
	gates, edges := n.NumGates(), n.NumEdges()
	op, err := n.InsertObservationPoint(ids["11"])
	if err != nil {
		t.Fatalf("InsertObservationPoint: %v", err)
	}
	if n.NumGates() != gates+1 || n.NumEdges() != edges+1 {
		t.Errorf("after insertion gates=%d edges=%d, want %d/%d", n.NumGates(), n.NumEdges(), gates+1, edges+1)
	}
	if n.Type(op) != Obs {
		t.Errorf("inserted type = %v, want Obs", n.Type(op))
	}
	if got := n.Fanin(op); len(got) != 1 || got[0] != ids["11"] {
		t.Errorf("op fanin = %v, want [%d]", got, ids["11"])
	}
	if ops := n.ObservationPoints(); len(ops) != 1 || ops[0] != op {
		t.Errorf("ObservationPoints = %v, want [%d]", ops, op)
	}
	if err := n.Validate(); err != nil {
		t.Fatalf("Validate after insertion: %v", err)
	}
	// Observing a PO is rejected.
	if _, err := n.InsertObservationPoint(n.PrimaryOutputs()[0]); err == nil {
		t.Error("observing a primary output should fail")
	}
}

func TestAddGateErrors(t *testing.T) {
	n := New("bad")
	if _, err := n.AddGate(And, "a"); err == nil {
		t.Error("AND with no fanin should fail")
	}
	a := n.MustAddGate(Input, "a")
	if _, err := n.AddGate(Not, "x", a, a); err == nil {
		t.Error("NOT with two fanin should fail")
	}
	if _, err := n.AddGate(And, "y", a, 99); err == nil {
		t.Error("out-of-range fanin should fail")
	}
	if _, err := n.AddGate(And, "z", a, 1); err == nil {
		t.Error("forward fanin reference should fail")
	}
}

func TestRoundTrip(t *testing.T) {
	n, _ := buildC17(t)
	n.MustAddGate(Obs, "", 6)
	var buf bytes.Buffer
	if err := Write(&buf, n); err != nil {
		t.Fatalf("Write: %v", err)
	}
	m, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if m.NumGates() != n.NumGates() || m.NumEdges() != n.NumEdges() {
		t.Fatalf("round trip gates/edges %d/%d, want %d/%d", m.NumGates(), m.NumEdges(), n.NumGates(), n.NumEdges())
	}
	for _, typ := range []GateType{Input, Output, Nand, Obs} {
		if m.CountType(typ) != n.CountType(typ) {
			t.Errorf("count(%v) = %d, want %d", typ, m.CountType(typ), n.CountType(typ))
		}
	}
	if err := m.Validate(); err != nil {
		t.Fatalf("Validate after round trip: %v", err)
	}
}

func TestReadOutOfOrderDeclarations(t *testing.T) {
	src := `# scrambled
OUTPUT(z)
z = AND(x, y)
y = NOT(b)
x = OR(a, b)
INPUT(a)
INPUT(b)
`
	n, err := Read(strings.NewReader(src))
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if n.NumGates() != 6 {
		t.Fatalf("NumGates = %d, want 6", n.NumGates())
	}
	if err := n.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if n.Name != "scrambled" {
		t.Errorf("Name = %q, want scrambled", n.Name)
	}
}

func TestReadErrors(t *testing.T) {
	cases := map[string]string{
		"undeclared":  "OUTPUT(zz)\n",
		"cycle":       "a = NOT(b)\nb = NOT(a)\nOUTPUT(a)\n",
		"dup":         "INPUT(a)\nINPUT(a)\n",
		"unknownType": "INPUT(a)\nz = FROB(a, a)\n",
		"syntax":      "INPUT(a)\nthis is not a line\n",
	}
	for name, src := range cases {
		if _, err := Read(strings.NewReader(src)); err == nil {
			t.Errorf("%s: Read succeeded, want error", name)
		}
	}
}

func TestGateTypeParseRoundTrip(t *testing.T) {
	for typ := GateType(0); typ < numGateTypes; typ++ {
		got, err := ParseGateType(typ.String())
		if err != nil {
			t.Fatalf("ParseGateType(%s): %v", typ, err)
		}
		if got != typ {
			t.Errorf("ParseGateType(%s) = %v", typ, got)
		}
	}
	if _, err := ParseGateType("BOGUS"); err == nil {
		t.Error("ParseGateType(BOGUS) should fail")
	}
}

func TestComputeStats(t *testing.T) {
	n, _ := buildC17(t)
	s := n.ComputeStats()
	if s.Gates != 13 || s.Edges != 14 || s.PIs != 5 || s.POs != 2 {
		t.Errorf("stats = %+v", s)
	}
	if s.MaxFan != 2 {
		t.Errorf("MaxFan = %d, want 2", s.MaxFan)
	}
	if s.Sparsity <= 0.9 {
		t.Errorf("Sparsity = %f, want > 0.9", s.Sparsity)
	}
	types := s.SortedTypes()
	for i := 1; i < len(types); i++ {
		if types[i-1] >= types[i] {
			t.Errorf("SortedTypes not sorted: %v", types)
		}
	}
}

// randomNetlist builds a random valid netlist from a seed; used by
// property-based tests.
func randomNetlist(seed int64, size int) *Netlist {
	rng := rand.New(rand.NewSource(seed))
	n := New("rand")
	nPI := 4 + rng.Intn(8)
	for i := 0; i < nPI; i++ {
		n.MustAddGate(Input, "")
	}
	types := []GateType{And, Or, Nand, Nor, Xor, Xnor, Not, Buf}
	for i := 0; i < size; i++ {
		t := types[rng.Intn(len(types))]
		k := t.MinFanin()
		if t.MaxFanin() < 0 {
			k += rng.Intn(3)
		}
		fanin := make([]int32, k)
		for j := range fanin {
			fanin[j] = int32(rng.Intn(n.NumGates()))
		}
		n.MustAddGate(t, "", fanin...)
	}
	// Terminate a few nets with POs.
	for i := 0; i < 3; i++ {
		n.MustAddGate(Output, "", int32(nPI+rng.Intn(size)))
	}
	return n
}

func TestQuickRandomNetlistsValidateAndRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		n := randomNetlist(seed, 50)
		if err := n.Validate(); err != nil {
			t.Logf("seed %d: validate: %v", seed, err)
			return false
		}
		var buf bytes.Buffer
		if err := Write(&buf, n); err != nil {
			return false
		}
		m, err := Read(&buf)
		if err != nil {
			t.Logf("seed %d: read: %v", seed, err)
			return false
		}
		return m.NumGates() == n.NumGates() && m.NumEdges() == n.NumEdges()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestQuickLevelsMonotone(t *testing.T) {
	f := func(seed int64) bool {
		n := randomNetlist(seed, 80)
		lv := n.Levels()
		for id := int32(0); id < int32(n.NumGates()); id++ {
			if n.Type(id).IsControllableSource() {
				if lv[id] != 0 {
					return false
				}
				continue
			}
			for _, fin := range n.Fanin(id) {
				if lv[id] <= lv[fin] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestClone(t *testing.T) {
	n, ids := buildC17(t)
	c := n.Clone()
	if _, err := c.InsertObservationPoint(ids["11"]); err != nil {
		t.Fatal(err)
	}
	if c.NumGates() != n.NumGates()+1 {
		t.Errorf("clone mutation changed sizes unexpectedly")
	}
	if n.CountType(Obs) != 0 {
		t.Errorf("mutating clone affected original")
	}
}

func BenchmarkFanoutBuild(b *testing.B) {
	n := randomNetlist(1, 20000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.fanout = nil
		n.buildFanout()
	}
}

func BenchmarkFaninCone500(b *testing.B) {
	n := randomNetlist(2, 20000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.FaninCone(int32(n.NumGates()-5), 500)
	}
}
