// Package diagnose implements dictionary-based stuck-at fault diagnosis:
// given the response of a failing device under a known pattern set, rank
// candidate faults by how well their simulated faulty responses explain
// the observation. Diagnosability is the motivation of observation point
// insertion in reference [25] of the paper — more observation points
// mean more distinguishing information per pattern — and this package
// makes that effect measurable.
package diagnose

import (
	"math/bits"
	"sort"

	"repro/internal/fault"
	"repro/internal/netlist"
)

// Observation is a device response: per 64-pattern batch, the value
// words at every observation sink.
type Observation struct {
	Seed    int64
	Batches int
	// Responses[b][s] is sink s's value word in batch b.
	Responses [][]uint64
}

// Observe simulates the device with a (possibly present) fault and
// records its responses; used to produce test fixtures and golden
// references. Pass nil fault for a fault-free device.
func Observe(n *netlist.Netlist, seed int64, batches int, f *fault.SAFault) Observation {
	sim := fault.NewSimulator(n)
	obs := Observation{Seed: seed, Batches: batches}
	src := newSource(n, seed)
	for b := 0; b < batches; b++ {
		words := src.next()
		get := func(id int32) uint64 { return words[id] }
		if f == nil {
			sim.BatchFrom(get)
		} else {
			sim.BatchWithFault(get, f.Node, f.StuckAt1)
		}
		obs.Responses = append(obs.Responses, sim.SinkResponses())
	}
	return obs
}

// Candidate is one ranked diagnosis candidate.
type Candidate struct {
	Fault fault.SAFault
	// Mismatch counts response bits that differ between the candidate's
	// prediction and the observation (0 = perfect explanation).
	Mismatch int
}

// Diagnose ranks the candidate faults against the observation. The
// fault-free machine is included implicitly: if the observation matches
// the fault-free response exactly, the returned slice is empty.
func Diagnose(n *netlist.Netlist, obs Observation, candidates []fault.SAFault) []Candidate {
	sim := fault.NewSimulator(n)

	// Fault-free reference; bail out early for a passing device.
	src := newSource(n, obs.Seed)
	passing := true
	allWords := make([]map[int32]uint64, obs.Batches)
	for b := 0; b < obs.Batches; b++ {
		words := src.next()
		allWords[b] = words
		sim.BatchFrom(func(id int32) uint64 { return words[id] })
		for s, w := range sim.SinkResponses() {
			if w != obs.Responses[b][s] {
				passing = false
			}
		}
	}
	if passing {
		return nil
	}

	out := make([]Candidate, 0, len(candidates))
	for _, f := range candidates {
		mismatch := 0
		for b := 0; b < obs.Batches; b++ {
			words := allWords[b]
			sim.BatchWithFault(func(id int32) uint64 { return words[id] }, f.Node, f.StuckAt1)
			pred := sim.SinkResponses()
			for s := range pred {
				mismatch += bits.OnesCount64(pred[s] ^ obs.Responses[b][s])
			}
		}
		out = append(out, Candidate{Fault: f, Mismatch: mismatch})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Mismatch != out[j].Mismatch {
			return out[i].Mismatch < out[j].Mismatch
		}
		if out[i].Fault.Node != out[j].Fault.Node {
			return out[i].Fault.Node < out[j].Fault.Node
		}
		return !out[i].Fault.StuckAt1 && out[j].Fault.StuckAt1
	})
	return out
}

// Resolution reports how sharply an observation pins down the fault: the
// number of candidates tied at the best mismatch score (1 = unique
// diagnosis). More observation points typically improve it.
func Resolution(ranked []Candidate) int {
	if len(ranked) == 0 {
		return 0
	}
	best := ranked[0].Mismatch
	n := 0
	for _, c := range ranked {
		if c.Mismatch != best {
			break
		}
		n++
	}
	return n
}

// sourceGen produces deterministic per-batch random source words from a
// splitmix-style stream, independent of map iteration order.
type sourceGen struct {
	n    *netlist.Netlist
	seed int64
}

func newSource(n *netlist.Netlist, seed int64) *sourceGen {
	return &sourceGen{n: n, seed: seed}
}

func (g *sourceGen) next() map[int32]uint64 {
	words := make(map[int32]uint64)
	for _, id := range g.n.TopoOrder() {
		if g.n.Type(id).IsControllableSource() {
			words[id] = splitmix(&g.seed)
		}
	}
	return words
}

func splitmix(state *int64) uint64 {
	z := uint64(*state) + 0x9E3779B97F4A7C15
	*state = int64(z)
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}
