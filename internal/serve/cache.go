package serve

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/netlist"
	"repro/internal/scoap"
)

// design is one compiled, cached design: the parsed netlist, its SCOAP
// measures, the GCN graph, and a live incremental-inference session with
// warm cached embeddings. The predictor is a private clone (see
// core.ClonePredictor) so concurrent compiles of different designs never
// share model scratch state; mu serializes all use of the bundle, which
// is mutated in place by /v1/score/delta.
type design struct {
	mu sync.Mutex

	// id is the design's current identity: the content hash for a fresh
	// design, a chained delta hash after edits (see deltaID).
	id string
	// source is the exact netlist text id was derived from; nil once the
	// design has diverged from any submittable text via deltas. The
	// cache compares it on content-hash lookups so that a hash collision
	// can never serve another design's scores.
	source []byte

	net  *netlist.Netlist
	meas *scoap.Measures
	g    *core.Graph
	pred core.IncrementalPredictor
	run  core.IncrementalRun
	// scores holds the compile-time probabilities when the design was
	// scored through the float32 path and no incremental session exists
	// yet (run == nil); the first delta builds the session and drops it.
	scores []float64

	// Stats for GET /v1/designs. created is set before the design is
	// published; hits and lastAccess are guarded by the cache lock (they
	// are only touched inside designCache methods); nodes is atomic
	// because deltas update it under d.mu, which must never be acquired
	// after c.mu.
	created    time.Time
	lastAccess time.Time
	hits       int64
	nodes      atomic.Int64
}

// probs returns the design's current per-node probabilities: the live
// incremental session's when one exists, the f32 compile-time scores
// otherwise. Callers must hold the entry lock and treat the slice as
// read-only.
func (d *design) probs() []float64 {
	if d.run != nil {
		return d.run.Probs()
	}
	return d.scores
}

// ensureRun builds the float64 incremental session on first need (the
// f32 compile path skips it; see Options.Float32Scoring). Callers must
// hold the entry lock. The full forward pass it runs is exact float64
// regardless of the predictor's f32 flag, so delta updates keep the
// bit-identity contract.
func (d *design) ensureRun() {
	if d.run == nil {
		d.run = d.pred.NewIncremental(d.g)
		d.scores = nil
	}
}

// snapshotScores copies the current probabilities out under the entry
// lock; the run owns its Probs slice and refreshes it in place.
func (d *design) snapshotScores() []float64 {
	return append([]float64(nil), d.probs()...)
}

// designCache is the warm LRU of compiled designs, keyed by the
// design id. Hitting it skips netlist parsing, SCOAP analysis and the
// full forward pass, and is what makes /v1/score/delta possible at all:
// the cached incremental session carries the layer embeddings that turn
// an edit into a D-hop-bounded update.
type designCache struct {
	mu      sync.Mutex
	cap     int
	entries map[string]*list.Element // id → element whose Value is *design
	order   *list.List               // front = most recently used
	// hasher derives a design id from netlist text; overridable in tests
	// to force collisions and prove the source-comparison guard.
	hasher func([]byte) string
}

func newDesignCache(capacity int) *designCache {
	return &designCache{
		cap:     capacity,
		entries: map[string]*list.Element{},
		order:   list.New(),
		hasher:  contentHash,
	}
}

// contentHash is the default design id: SHA-256 over the submitted
// netlist bytes, hex encoded.
func contentHash(b []byte) string {
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// deltaID chains a design id through an edit delta, so every sequence of
// edits yields a distinct, deterministic identity.
func deltaID(base string, targets []int32) string {
	h := sha256.New()
	h.Write([]byte(base))
	for _, t := range targets {
		h.Write([]byte{'+', byte(t), byte(t >> 8), byte(t >> 16), byte(t >> 24)})
	}
	return hex.EncodeToString(h.Sum(nil))
}

// hash returns the design id for netlist text.
func (c *designCache) hash(b []byte) string { return c.hasher(b) }

// lookupSource finds a design by content hash, verifying that the stored
// netlist text matches the request byte-for-byte. A hash-equal entry
// with different text (a collision, or an id that has diverged through
// deltas) is reported as a miss — correctness never rests on the hash
// alone.
func (c *designCache) lookupSource(id string, body []byte) (*design, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[id]
	if !ok {
		mCacheMisses.Inc()
		return nil, false
	}
	d := el.Value.(*design)
	if d.source == nil || string(d.source) != string(body) {
		mCacheCollisions.Inc()
		mCacheMisses.Inc()
		return nil, false
	}
	c.order.MoveToFront(el)
	d.hits++
	d.lastAccess = time.Now()
	mCacheHits.Inc()
	return d, true
}

// lookupID finds a design by exact id (delta and OPI path). No source
// comparison applies: ids handed out by the server are authoritative.
func (c *designCache) lookupID(id string) (*design, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[id]
	if !ok {
		mCacheMisses.Inc()
		return nil, false
	}
	c.order.MoveToFront(el)
	d := el.Value.(*design)
	d.hits++
	d.lastAccess = time.Now()
	mCacheHits.Inc()
	return d, true
}

// insert adds a design under its current id, evicting the least recently
// used entries beyond capacity. Inserting over an existing id replaces
// it (the hash-collision overwrite path).
func (c *designCache) insert(d *design) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[d.id]; ok {
		c.order.Remove(el)
		delete(c.entries, d.id)
	}
	c.entries[d.id] = c.order.PushFront(d)
	for c.order.Len() > c.cap {
		el := c.order.Back()
		c.order.Remove(el)
		delete(c.entries, el.Value.(*design).id)
		mCacheEvictions.Inc()
	}
}

// rekey atomically moves a design from its old id to a new one after a
// delta. The old id stops resolving, and the design no longer
// corresponds to any submittable netlist text, so its source is dropped.
// Callers must already hold the design's own lock (d.mu is always
// acquired before c.mu; never the reverse).
func (c *designCache) rekey(old, new string, d *design) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[old]; ok && el.Value.(*design) == d {
		delete(c.entries, old)
		c.entries[new] = el
		c.order.MoveToFront(el)
	}
	d.id = new
	d.source = nil
}

// idOf returns the design's current id under the cache lock; a delta may
// have rekeyed the design between a lookup and the caller locking it.
func (c *designCache) idOf(d *design) string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return d.id
}

// len reports current occupancy.
func (c *designCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// designStat is one cached design's bookkeeping, snapshotted under the
// cache lock for GET /v1/designs.
type designStat struct {
	id          string
	nodes       int64
	sourceBytes int
	hits        int64
	created     time.Time
	lastAccess  time.Time
}

// stats snapshots every cached design in MRU order (most recently used
// first, matching the LRU list).
func (c *designCache) stats() []designStat {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]designStat, 0, c.order.Len())
	for el := c.order.Front(); el != nil; el = el.Next() {
		d := el.Value.(*design)
		out = append(out, designStat{
			id:          d.id,
			nodes:       d.nodes.Load(),
			sourceBytes: len(d.source),
			hits:        d.hits,
			created:     d.created,
			lastAccess:  d.lastAccess,
		})
	}
	return out
}
