package refcheck

import (
	"math"

	"repro/internal/sparse"
	"repro/internal/tensor"
)

// This file is the dense reference for the sparse matrix machinery:
// COO/CSR matrices are materialized into dense form and multiplied with
// textbook triple loops, so any disagreement in the fast kernels —
// scatter order, duplicate merging, row partitioning, transpose
// bookkeeping — shows up as a numeric difference.

// DenseOfCOO materializes a COO matrix, summing duplicate tuples.
func DenseOfCOO(m *sparse.COO) *tensor.Dense {
	d := tensor.NewDense(m.NumRows, m.NumCols)
	for i, v := range m.Vals {
		r, c := int(m.Rows[i]), int(m.Cols[i])
		d.Set(r, c, d.At(r, c)+v)
	}
	return d
}

// MatMulRef computes a·b with the naive i-j-k triple loop.
func MatMulRef(a, b *tensor.Dense) *tensor.Dense {
	if a.Cols != b.Rows {
		panic("refcheck: MatMulRef shape mismatch")
	}
	dst := tensor.NewDense(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Cols; j++ {
			var s float64
			for k := 0; k < a.Cols; k++ {
				s += a.At(i, k) * b.At(k, j)
			}
			dst.Set(i, j, s)
		}
	}
	return dst
}

// TransposeRef returns aᵀ as a new dense matrix.
func TransposeRef(a *tensor.Dense) *tensor.Dense {
	dst := tensor.NewDense(a.Cols, a.Rows)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < a.Cols; j++ {
			dst.Set(j, i, a.At(i, j))
		}
	}
	return dst
}

// MaxRelDiff returns the largest elementwise relative difference
// |a-b| / max(1, |a|, |b|) between two equally shaped matrices. The
// denominator floor of 1 makes the measure behave like absolute error
// near zero and relative error for large magnitudes, which is the right
// yardstick for comparing summation orders in float64.
func MaxRelDiff(a, b *tensor.Dense) float64 {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic("refcheck: MaxRelDiff shape mismatch")
	}
	var worst float64
	for i, av := range a.Data {
		bv := b.Data[i]
		den := 1.0
		if m := math.Abs(av); m > den {
			den = m
		}
		if m := math.Abs(bv); m > den {
			den = m
		}
		if d := math.Abs(av-bv) / den; d > worst {
			worst = d
		}
	}
	return worst
}
