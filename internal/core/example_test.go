package core_test

import (
	"fmt"

	"repro/internal/circuitgen"
	"repro/internal/core"
	"repro/internal/scoap"
)

// End-to-end GCN usage: build a graph from a netlist, train briefly on
// synthetic labels, and classify. (Real labels come from the fault
// simulator; see package dataset.)
func Example() {
	n := circuitgen.Generate("demo", circuitgen.Config{Seed: 1, NumGates: 400})
	m := scoap.Compute(n)
	g := core.FromNetlist(n, m)
	// Toy labels: the worst-observability decile is "difficult".
	for v := 0; v < g.N; v++ {
		g.Labels[v] = 0
	}

	model := core.MustNewModel(core.Config{
		Dims: []int{8, 16}, FCDims: []int{16}, NumClasses: 2, Seed: 7,
	})
	opt := core.DefaultTrainOptions()
	opt.Epochs = 5
	hist, err := core.Train(model, []*core.Graph{g}, nil, opt)
	if err != nil {
		panic(err)
	}
	probs := model.Predict(g)
	fmt.Printf("trained %d epochs, loss decreased: %v, %d nodes scored\n",
		len(hist), hist[len(hist)-1] < hist[0], len(probs))
	// Output: trained 5 epochs, loss decreased: true, 519 nodes scored
}
