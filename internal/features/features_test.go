package features

import (
	"testing"

	"repro/internal/circuitgen"
	"repro/internal/core"
	"repro/internal/netlist"
	"repro/internal/scoap"
)

func TestDim(t *testing.T) {
	if Dim(DefaultConeSize) != 4004 {
		t.Errorf("Dim(500) = %d, want the paper's 4004", Dim(DefaultConeSize))
	}
	if Dim(1) != 12 {
		t.Errorf("Dim(1) = %d, want 12", Dim(1))
	}
}

func TestFeatureLayout(t *testing.T) {
	// chain: a -> NOT -> PO ; cone of the NOT gate has 1 fan-in node.
	n := netlist.New("f")
	a := n.MustAddGate(netlist.Input, "a")
	g := n.MustAddGate(netlist.Not, "g", a)
	po := n.MustAddGate(netlist.Output, "po", g)
	_ = po
	m := scoap.Compute(n)
	e := NewExtractor(n, m)
	e.ConeSize = 2
	dst := make([]float64, Dim(2))
	e.Feature(g, dst)

	// Self attributes first.
	attrs := m.Attributes(n, core.COClamp)
	self := core.AttributeVector(attrs[g][0], attrs[g][1], attrs[g][2], attrs[g][3])
	for j := 0; j < 4; j++ {
		if dst[j] != self[j] {
			t.Errorf("self attr %d = %v, want %v", j, dst[j], self[j])
		}
	}
	// Fan-in cone: node a at offset 4.
	ain := core.AttributeVector(attrs[a][0], attrs[a][1], attrs[a][2], attrs[a][3])
	for j := 0; j < 4; j++ {
		if dst[4+j] != ain[j] {
			t.Errorf("fanin attr %d = %v, want %v", j, dst[4+j], ain[j])
		}
	}
	// Second fan-in slot is zero padded.
	for j := 8; j < 12; j++ {
		if dst[j] != 0 {
			t.Errorf("expected zero padding at %d, got %v", j, dst[j])
		}
	}
	// Fan-out section starts at (1+2)*4 = 12: the PO sink.
	poAttr := core.AttributeVector(attrs[po][0], attrs[po][1], attrs[po][2], attrs[po][3])
	for j := 0; j < 4; j++ {
		if dst[12+j] != poAttr[j] {
			t.Errorf("fanout attr %d = %v, want %v", j, dst[12+j], poAttr[j])
		}
	}
}

func TestMatrixShapeAndDeterminism(t *testing.T) {
	n := circuitgen.Generate("fm", circuitgen.Config{Seed: 8, NumGates: 600})
	m := scoap.Compute(n)
	e := NewExtractor(n, m)
	e.ConeSize = 50
	nodes := []int32{10, 20, 30}
	a := e.Matrix(nodes)
	b := e.Matrix(nodes)
	if a.Rows != 3 || a.Cols != Dim(50) {
		t.Fatalf("shape %d×%d", a.Rows, a.Cols)
	}
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatal("extraction not deterministic")
		}
	}
}

func BenchmarkFeature500(b *testing.B) {
	n := circuitgen.Generate("fb", circuitgen.Config{Seed: 1, NumGates: 20000})
	m := scoap.Compute(n)
	e := NewExtractor(n, m)
	dst := make([]float64, Dim(e.ConeSize))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Feature(int32(5000+(i%1000)), dst)
	}
}
