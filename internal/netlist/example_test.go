package netlist_test

import (
	"fmt"

	"repro/internal/netlist"
)

// Building a netlist programmatically: a half adder with an observation
// point on the carry net.
func Example() {
	n := netlist.New("halfadder")
	a := n.MustAddGate(netlist.Input, "a")
	b := n.MustAddGate(netlist.Input, "b")
	sum := n.MustAddGate(netlist.Xor, "sum", a, b)
	carry := n.MustAddGate(netlist.And, "carry", a, b)
	n.MustAddGate(netlist.Output, "s", sum)
	n.MustAddGate(netlist.Output, "c", carry)
	if _, err := n.InsertObservationPoint(carry); err != nil {
		panic(err)
	}
	s := n.ComputeStats()
	fmt.Printf("%d gates, %d edges, depth %d, %d observation point(s)\n",
		s.Gates, s.Edges, s.Depth, s.Obs)
	// Output: 7 gates, 7 edges, depth 2, 1 observation point(s)
}

func ExampleGateType_String() {
	fmt.Println(netlist.Nand, netlist.Obs)
	// Output: NAND OBS
}
