package core

import (
	"fmt"
	"time"

	"repro/internal/obs"
)

// MultiStage is the paper's cascade for extreme class imbalance (Section
// 3.3): each stage is a GCN trained with a large positive class weight so
// that it only dares to discard negatives it is very confident about; the
// surviving (much more balanced) nodes flow to the next stage, and the
// final stage makes the ultimate call.
type MultiStage struct {
	Stages []*Model
	// FilterBelow is the positive-probability threshold under which a
	// non-final stage declares a node negative and removes it.
	FilterBelow float64
}

// MultiStageOptions configures cascade training.
type MultiStageOptions struct {
	// NumStages is the cascade length; the paper uses 3.
	NumStages int
	// PosWeights holds the positive class weight per stage, largest
	// first; len must equal NumStages. Nil selects a geometric ramp-down
	// from the observed imbalance.
	PosWeights []float64
	// FilterBelow is the confident-negative threshold (default 0.25).
	FilterBelow float64
	// Train holds the per-stage training options (PosWeight is
	// overridden per stage).
	Train TrainOptions
	// ModelCfg is the architecture for every stage.
	ModelCfg Config
	// Progress, when non-nil, receives per-stage summaries.
	Progress func(stage int, remaining, positives int)
}

// DefaultMultiStageOptions mirrors the paper's 3-stage setup.
func DefaultMultiStageOptions() MultiStageOptions {
	return MultiStageOptions{
		NumStages:   3,
		FilterBelow: 0.25,
		Train:       DefaultTrainOptions(),
		ModelCfg:    DefaultConfig(),
	}
}

// TrainMultiStage fits a cascade on the given graphs using each graph's
// own Labels (-1 entries are ignored throughout).
func TrainMultiStage(graphs []*Graph, opt MultiStageOptions) (*MultiStage, error) {
	if opt.NumStages <= 0 {
		opt.NumStages = 3
	}
	if opt.FilterBelow <= 0 {
		opt.FilterBelow = 0.25
	}
	weights := opt.PosWeights
	if weights != nil && len(weights) != opt.NumStages {
		return nil, fmt.Errorf("core: %d stage weights for %d stages", len(weights), opt.NumStages)
	}

	ms := &MultiStage{FilterBelow: opt.FilterBelow}
	// active[gi][v] is whether node v of graph gi is still undecided.
	active := make([][]bool, len(graphs))
	for gi, g := range graphs {
		active[gi] = make([]bool, g.N)
		for v, l := range g.Labels {
			active[gi][v] = l >= 0
		}
	}

	for s := 0; s < opt.NumStages; s++ {
		labelSets := make([][]int, len(graphs))
		remaining, positives := 0, 0
		for gi, g := range graphs {
			ls := make([]int, g.N)
			for v := range ls {
				if active[gi][v] {
					ls[v] = g.Labels[v]
					remaining++
					if g.Labels[v] == 1 {
						positives++
					}
				} else {
					ls[v] = -1
				}
			}
			labelSets[gi] = ls
		}
		if opt.Progress != nil {
			opt.Progress(s, remaining, positives)
		}
		if remaining == 0 {
			break
		}

		cfg := opt.ModelCfg
		cfg.Seed = opt.ModelCfg.Seed + int64(s)*7919
		model, err := NewModel(cfg)
		if err != nil {
			return nil, err
		}
		topt := opt.Train
		if weights != nil {
			topt.PosWeight = weights[s]
		} else {
			// Track the imbalance that actually remains at this stage so
			// every stage (including the last) trains roughly balanced.
			topt.PosWeight = stageWeight(remaining, positives)
		}
		stageStart := time.Now()
		hist, err := Train(model, graphs, labelSets, topt)
		if err != nil {
			return nil, err
		}
		ms.Stages = append(ms.Stages, model)
		if obs.Enabled() {
			finalLoss := 0.0
			if len(hist) > 0 {
				finalLoss = hist[len(hist)-1]
			}
			obs.Event("train.stage",
				obs.I("stage", int64(s)),
				obs.I("remaining", int64(remaining)),
				obs.I("positives", int64(positives)),
				obs.F("pos_weight", topt.PosWeight),
				obs.F("final_loss", finalLoss),
				obs.F("wall_ms", float64(time.Since(stageStart).Nanoseconds())/1e6))
		}

		if s == opt.NumStages-1 {
			break
		}
		// Filter out confident negatives before the next stage.
		for gi, g := range graphs {
			probs := model.Predict(g)
			for v := range active[gi] {
				if active[gi][v] && probs[v] < opt.FilterBelow {
					active[gi][v] = false
				}
			}
		}
	}
	return ms, nil
}

// stageWeight derives a positive class weight from the imbalance left at
// the current stage, clamped to a sane range.
func stageWeight(remaining, positives int) float64 {
	if positives == 0 {
		return 1
	}
	ratio := float64(remaining-positives) / float64(positives)
	if ratio < 1.5 {
		ratio = 1.5
	}
	if ratio > 64 {
		ratio = 64
	}
	return ratio
}

// Clone returns a cascade with the same filter threshold and per-stage
// architecture, with copied parameter values and fresh scratch state.
// Like (*Model).Clone it exists for consumers that need concurrent
// inference — a MultiStage is not safe for concurrent use because its
// stages are not.
func (ms *MultiStage) Clone() *MultiStage {
	c := &MultiStage{FilterBelow: ms.FilterBelow}
	for _, s := range ms.Stages {
		c.Stages = append(c.Stages, s.Clone())
	}
	return c
}

// Predict runs the cascade on a graph: every non-final stage removes the
// nodes it is confident are negative, and the final stage classifies the
// survivors at the usual 0.5 threshold. Returns a 0/1 label per node.
func (ms *MultiStage) Predict(g *Graph) []int {
	out := make([]int, g.N)
	activeList := make([]bool, g.N)
	for i := range activeList {
		activeList[i] = true
	}
	for s, model := range ms.Stages {
		probs := model.Predict(g)
		final := s == len(ms.Stages)-1
		for v := range activeList {
			if !activeList[v] {
				continue
			}
			switch {
			case !final && probs[v] < ms.FilterBelow:
				activeList[v] = false
				out[v] = 0
			case final:
				if probs[v] >= 0.5 {
					out[v] = 1
				}
			}
		}
	}
	return out
}

// PredictProbs returns a per-node positive probability from the cascade:
// nodes filtered at stage s get the (low) probability assigned by that
// stage, survivors get the final stage's probability.
func (ms *MultiStage) PredictProbs(g *Graph) []float64 {
	stageProbs := make([][]float64, len(ms.Stages))
	for s, model := range ms.Stages {
		stageProbs[s] = model.Predict(g)
	}
	return ms.CombineStageProbs(g.N, stageProbs)
}

// CombineStageProbs folds externally computed per-stage probability
// slices into the cascade's per-node verdict: the first non-final stage
// confident enough to filter a node assigns its squashed probability,
// survivors get the final stage's probability. PredictProbs is exactly
// this over stage-by-stage Predict calls; the sharded executor
// (internal/partition) reuses it so the cascade decision has a single
// implementation no matter where the stage probabilities were computed.
func (ms *MultiStage) CombineStageProbs(n int, stageProbs [][]float64) []float64 {
	if len(stageProbs) != len(ms.Stages) {
		panic(fmt.Sprintf("core: %d stage probability slices for %d stages",
			len(stageProbs), len(ms.Stages)))
	}
	out := make([]float64, n)
	last := len(ms.Stages) - 1
	for v := 0; v < n; v++ {
		for s := range ms.Stages {
			p := stageProbs[s][v]
			if s < last && p < ms.FilterBelow {
				out[v] = p * ms.FilterBelow // squash below any survivor
				break
			}
			if s == last {
				out[v] = p
			}
		}
	}
	return out
}
