package opi

import (
	"testing"

	"repro/internal/cop"
	"repro/internal/fault"
	"repro/internal/netlist"
)

// buildControlStarved builds a design with nets that random patterns
// almost never toggle: wide AND enables.
func buildControlStarved(t testing.TB) *netlist.Netlist {
	t.Helper()
	n := netlist.New("ctl")
	var pis []int32
	for i := 0; i < 24; i++ {
		pis = append(pis, n.MustAddGate(netlist.Input, ""))
	}
	// Three wide enables (P1 = 2^-8) gating small payloads.
	for b := 0; b < 3; b++ {
		en := pis[b*8]
		for k := 1; k < 8; k++ {
			en = n.MustAddGate(netlist.And, "", en, pis[b*8+k])
		}
		pay := n.MustAddGate(netlist.Xor, "", pis[(b*3)%24], pis[(b*5+1)%24])
		g := n.MustAddGate(netlist.And, "", pay, en)
		n.MustAddGate(netlist.Output, "", g)
	}
	return n
}

func TestControllabilityGreedySelectsConeRoots(t *testing.T) {
	n := buildControlStarved(t)
	res := ControllabilityGreedy(n, CPFlowConfig{Epsilon: 0.02, PerRound: 8, MaxRounds: 1})
	if res.CP0s+res.CP1s == 0 {
		t.Fatal("flow inserted nothing on a control-starved design")
	}
	// Cone dedup: one CP per enable funnel, not one per chain stage.
	if got := res.CP0s + res.CP1s; got > 6 {
		t.Errorf("flow sprayed %d CPs over 3 funnels; dedup broken", got)
	}
	if err := res.Netlist.Validate(); err != nil {
		t.Fatal(err)
	}
	// The CP gates themselves are controllable now.
	m := cop.Compute(res.Netlist)
	for v := int32(0); v < int32(res.Netlist.NumGates()); v++ {
		if isCPGate(res.Netlist, v) {
			if m.P1[v] < 0.02 || m.P1[v] > 0.98 {
				t.Errorf("CP gate %d still extreme: P1=%v", v, m.P1[v])
			}
		}
	}
	// The original netlist is untouched.
	if n.CountType(netlist.Input) != 24 {
		t.Error("source netlist mutated")
	}
}

func TestControlPointsImproveCoverage(t *testing.T) {
	n := buildControlStarved(t)
	tpg := fault.TPGConfig{MaxPatterns: 4096, Seed: 2, StallWords: 8}
	before := fault.GenerateTests(n, tpg)
	res := ControllabilityGreedy(n, CPFlowConfig{Epsilon: 0.02, PerRound: 8, MaxRounds: 1})
	after := fault.GenerateTests(res.Netlist, tpg)
	if after.Coverage <= before.Coverage {
		t.Errorf("control points did not improve coverage: %.4f -> %.4f",
			before.Coverage, after.Coverage)
	}
	t.Logf("coverage %.4f -> %.4f with %d CP0 + %d CP1",
		before.Coverage, after.Coverage, res.CP0s, res.CP1s)
}

func TestCPFlowDeterministic(t *testing.T) {
	a := ControllabilityGreedy(buildControlStarved(t), CPFlowConfig{})
	b := ControllabilityGreedy(buildControlStarved(t), CPFlowConfig{})
	if a.CP0s != b.CP0s || a.CP1s != b.CP1s || a.Netlist.NumGates() != b.Netlist.NumGates() {
		t.Error("CP flow not deterministic")
	}
}
