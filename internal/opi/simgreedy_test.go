package opi

import (
	"errors"
	"testing"

	"repro/internal/fault"
	"repro/internal/netlist"
)

func TestSimulationGreedyClearsDifficulty(t *testing.T) {
	n, _, _ := buildBench(t, 4, 1500)
	cfg := SimGreedyConfig{Patterns: 1024, Threshold: 0.005, PerIteration: 16, Seed: 1}
	targets := SimulationGreedy(n, cfg)
	if len(targets) == 0 {
		t.Skip("no difficult nodes on this seed")
	}
	// After the tool finishes, re-measuring with a fresh seed must find
	// (almost) nothing difficult; allow a little statistical slack.
	counts := fault.ObservabilityCounts(n, 1024, 777)
	remaining := 0
	for v := int32(0); v < int32(n.NumGates()); v++ {
		if !insertable(n, v) || observedSet(n)[v] {
			continue
		}
		if float64(counts[v]) < 0.005*1024 {
			remaining++
		}
	}
	if remaining > len(targets)/5+3 {
		t.Errorf("%d nodes still difficult after %d insertions", remaining, len(targets))
	}
	if got := n.CountType(netlist.Obs); got != len(targets) {
		t.Errorf("netlist OPs %d != targets %d", got, len(targets))
	}
}

func TestSimulationGreedyStopsWhenNothingInserts(t *testing.T) {
	// When every insertion fails, the loop used to spin through all
	// MaxIterations rounds of full fault simulation with zero progress.
	// With the early exit it gives up after one round's worth of
	// attempts.
	orig := insertOP
	calls := 0
	insertOP = func(n *netlist.Netlist, target int32) (int32, error) {
		calls++
		return 0, errors.New("forced failure")
	}
	defer func() { insertOP = orig }()

	n, _, _ := buildBench(t, 4, 1500)
	cfg := SimGreedyConfig{Patterns: 256, PerIteration: 8, MaxIterations: 64, Seed: 1}
	targets := SimulationGreedy(n, cfg)
	if len(targets) != 0 {
		t.Fatalf("flow reported %d targets despite every insertion failing", len(targets))
	}
	if calls > cfg.PerIteration {
		t.Errorf("flow attempted %d insertions (> one round of %d): no early exit",
			calls, cfg.PerIteration)
	}
}

func TestSimulationGreedyDeterministic(t *testing.T) {
	nA, _, _ := buildBench(t, 6, 800)
	nB, _, _ := buildBench(t, 6, 800)
	cfg := SimGreedyConfig{Patterns: 512, PerIteration: 8, Seed: 3}
	a := SimulationGreedy(nA, cfg)
	b := SimulationGreedy(nB, cfg)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("targets differ")
		}
	}
}
