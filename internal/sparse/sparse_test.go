package sparse

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

// randCOO builds a random COO with optional duplicate entries.
func randCOO(rng *rand.Rand, r, c, nnz int, dups bool) *COO {
	m := NewCOO(r, c)
	for i := 0; i < nnz; i++ {
		m.Append(int32(rng.Intn(r)), int32(rng.Intn(c)), rng.NormFloat64())
	}
	if dups && nnz > 0 {
		for i := 0; i < nnz/3; i++ {
			j := rng.Intn(nnz)
			m.Append(m.Rows[j], m.Cols[j], rng.NormFloat64())
		}
	}
	return m
}

// denseOf materializes a COO, summing duplicates.
func denseOf(m *COO) *tensor.Dense {
	d := tensor.NewDense(m.NumRows, m.NumCols)
	for i, v := range m.Vals {
		r, c := int(m.Rows[i]), int(m.Cols[i])
		d.Set(r, c, d.At(r, c)+v)
	}
	return d
}

func randDense(rng *rand.Rand, r, c int) *tensor.Dense {
	d := tensor.NewDense(r, c)
	for i := range d.Data {
		d.Data[i] = rng.NormFloat64()
	}
	return d
}

func TestCOOMulMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		r, c, k := 1+rng.Intn(15), 1+rng.Intn(15), 1+rng.Intn(6)
		m := randCOO(rng, r, c, 1+rng.Intn(40), true)
		x := randDense(rng, c, k)
		got := tensor.NewDense(r, k)
		m.MulDense(got, x)
		want := tensor.NewDense(r, k)
		tensor.MatMul(want, denseOf(m), x)
		if diff := tensor.MaxAbsDiff(got, want); diff > 1e-12 {
			t.Fatalf("trial %d: COO mul differs by %g", trial, diff)
		}
	}
}

func TestCSRMulMatchesCOO(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 20; trial++ {
		r, c, k := 1+rng.Intn(20), 1+rng.Intn(20), 1+rng.Intn(5)
		m := randCOO(rng, r, c, 1+rng.Intn(60), true)
		x := randDense(rng, c, k)
		a := tensor.NewDense(r, k)
		m.MulDense(a, x)
		csr := m.ToCSR()
		b := tensor.NewDense(r, k)
		csr.MulDense(b, x)
		if diff := tensor.MaxAbsDiff(a, b); diff > 1e-12 {
			t.Fatalf("trial %d: CSR differs from COO by %g", trial, diff)
		}
	}
}

func TestCSRDuplicateSummation(t *testing.T) {
	m := NewCOO(2, 2)
	m.Append(0, 1, 2)
	m.Append(0, 1, 3)
	m.Append(1, 0, -1)
	csr := m.ToCSR()
	if csr.NNZ() != 2 {
		t.Fatalf("NNZ = %d, want 2 after duplicate merge", csr.NNZ())
	}
	d := csr.ToDense()
	if d.At(0, 1) != 5 || d.At(1, 0) != -1 || d.At(0, 0) != 0 {
		t.Errorf("dense = %v", d.Data)
	}
}

func TestCSRParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := randCOO(rng, 500, 400, 3000, true).ToCSR()
	x := randDense(rng, 400, 8)
	a := tensor.NewDense(500, 8)
	b := tensor.NewDense(500, 8)
	m.MulDense(a, x)
	for _, workers := range []int{1, 2, 3, 7, 16} {
		b.Zero()
		m.MulDenseParallel(b, x, workers)
		if diff := tensor.MaxAbsDiff(a, b); diff > 1e-12 {
			t.Fatalf("workers=%d differs by %g", workers, diff)
		}
	}
}

func TestCSRTransposeAndTransMul(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 10; trial++ {
		r, c, k := 2+rng.Intn(10), 2+rng.Intn(10), 1+rng.Intn(4)
		m := randCOO(rng, r, c, 1+rng.Intn(30), false).ToCSR()
		x := randDense(rng, r, k)

		// mᵀ·x via MulDenseTrans vs via explicit Transpose.
		a := tensor.NewDense(c, k)
		m.MulDenseTrans(a, x)
		b := tensor.NewDense(c, k)
		m.Transpose().MulDense(b, x)
		if diff := tensor.MaxAbsDiff(a, b); diff > 1e-12 {
			t.Fatalf("trans mul differs by %g", diff)
		}
		// (mᵀ)ᵀ = m.
		back := m.Transpose().Transpose().ToDense()
		if diff := tensor.MaxAbsDiff(back, m.ToDense()); diff != 0 {
			t.Fatalf("double transpose differs by %g", diff)
		}
	}
}

func TestQuickLinearity(t *testing.T) {
	// m·(x+y) == m·x + m·y for random sparse m.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r, c, k := 2+rng.Intn(8), 2+rng.Intn(8), 1+rng.Intn(3)
		m := randCOO(rng, r, c, 1+rng.Intn(20), true).ToCSR()
		x, y := randDense(rng, c, k), randDense(rng, c, k)
		xy := x.Clone()
		xy.AddInPlace(y)
		sum := tensor.NewDense(r, k)
		m.MulDense(sum, xy)
		mx, my := tensor.NewDense(r, k), tensor.NewDense(r, k)
		m.MulDense(mx, x)
		m.MulDense(my, y)
		mx.AddInPlace(my)
		return tensor.MaxAbsDiff(sum, mx) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestGrowAndIncrementalAppend(t *testing.T) {
	// Simulates the paper's OP insertion: grow the matrix by one node and
	// append the three tuples (wpr,p,v), (wsu,v,p), (1,p,p).
	m := NewCOO(3, 3)
	m.Append(0, 0, 1)
	m.Append(1, 1, 1)
	m.Append(2, 2, 1)
	m.Append(1, 0, 0.5) // edge 0→1, pred weight
	m.Grow(4, 4)
	const wpr, wsu = 0.5, 0.25
	m.Append(3, 1, wpr) // new node 3 observes node 1
	m.Append(1, 3, wsu)
	m.Append(3, 3, 1)
	csr := m.ToCSR()
	d := csr.ToDense()
	if d.At(3, 1) != wpr || d.At(1, 3) != wsu || d.At(3, 3) != 1 {
		t.Errorf("incremental entries wrong: %v", d.Data)
	}
	if csr.Sparsity() <= 0.5 {
		t.Errorf("sparsity = %v", csr.Sparsity())
	}
}

func TestAppendOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("out-of-range append should panic")
		}
	}()
	NewCOO(2, 2).Append(2, 0, 1)
}

func TestEmptyMatrix(t *testing.T) {
	m := NewCOO(3, 3)
	csr := m.ToCSR()
	x := randDense(rand.New(rand.NewSource(1)), 3, 2)
	out := tensor.NewDense(3, 2)
	csr.MulDense(out, x)
	for _, v := range out.Data {
		if v != 0 {
			t.Fatal("empty matrix product must be zero")
		}
	}
	if s := csr.Sparsity(); s != 1 {
		t.Errorf("Sparsity = %v, want 1", s)
	}
}

func BenchmarkCSRMulDense(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	m := randCOO(rng, 50000, 50000, 150000, false).ToCSR()
	x := randDense(rng, 50000, 32)
	dst := tensor.NewDense(50000, 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.MulDense(dst, x)
	}
}

func BenchmarkCOOMulDense(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	m := randCOO(rng, 50000, 50000, 150000, false)
	x := randDense(rng, 50000, 32)
	dst := tensor.NewDense(50000, 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.MulDense(dst, x)
	}
}

func BenchmarkCSRMulDenseParallel(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	m := randCOO(rng, 50000, 50000, 150000, false).ToCSR()
	x := randDense(rng, 50000, 32)
	dst := tensor.NewDense(50000, 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.MulDenseParallel(dst, x, 0)
	}
}
