package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/obs"
)

// TestManifestSmoke runs the experiment driver end to end in Quick mode
// (at reduced scale so the test stays fast) with -manifest and asserts
// the emitted file is valid JSON containing the span tree and counters
// the acceptance criteria name: train, faultsim and opi spans.
func TestManifestSmoke(t *testing.T) {
	defer func() {
		obs.Disable()
		obs.Reset()
	}()
	obs.Reset()
	path := filepath.Join(t.TempDir(), "manifest.json")
	var out bytes.Buffer
	args := []string{
		"-quick", "-size", "400", "-patterns", "256", "-epochs", "4",
		"-run", "table3", "-manifest", path,
	}
	if err := run(args, &out); err != nil {
		t.Fatalf("run(%v): %v\noutput:\n%s", args, err, out.String())
	}

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("manifest not written: %v", err)
	}
	var m obs.Manifest
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatalf("manifest is not valid JSON: %v", err)
	}
	if m.Name != "experiments" || m.SchemaVersion != 1 {
		t.Errorf("manifest identity: %+v", m)
	}
	if m.GOMAXPROCS <= 0 || m.GoVersion == "" {
		t.Errorf("environment not captured: %+v", m)
	}

	roots := map[string]*obs.SpanNode{}
	for _, s := range m.Snapshot.Spans {
		roots[s.Name] = s
	}
	for _, want := range []string{"train", "faultsim", "opi", "scoap", "experiments/table3"} {
		n, ok := roots[want]
		if !ok {
			t.Errorf("manifest span tree missing root %q (have %v)", want, spanNames(m.Snapshot.Spans))
			continue
		}
		if n.Count <= 0 || n.WallNS <= 0 {
			t.Errorf("span %q has no recorded executions: %+v", want, n)
		}
	}
	if train := roots["train"]; train != nil {
		if train.Find("epoch") == nil || train.Find("epoch/worker") == nil {
			t.Errorf("train span lacks epoch/worker nesting: %+v", train)
		}
	}
	if opiRoot := roots["opi"]; opiRoot != nil && opiRoot.Find("iteration") == nil {
		t.Errorf("opi span lacks iteration children: %+v", opiRoot)
	}

	for _, want := range []string{"spmm.rows", "train.epochs", "faultsim.batches", "opi.iterations", "scoap.full_computes"} {
		if m.Snapshot.Counters[want] <= 0 {
			t.Errorf("counter %q missing or zero (have %v)", want, m.Snapshot.Counters)
		}
	}
}

func spanNames(spans []*obs.SpanNode) []string {
	var out []string
	for _, s := range spans {
		out = append(out, s.Name)
	}
	return out
}
