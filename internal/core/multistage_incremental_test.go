package core

import (
	"math"
	"math/rand"
	"testing"
)

// testCascade builds an untrained two-stage cascade; parameter values are
// random but deterministic, which is all parity testing needs.
func testCascade(seed int64) *MultiStage {
	return &MultiStage{
		Stages: []*Model{
			MustNewModel(tinyConfig(seed)),
			MustNewModel(tinyConfig(seed + 31)),
		},
		FilterBelow: 0.25,
	}
}

func TestMultiStageIncrementalMatchesFullAfterMutations(t *testing.T) {
	g := testGraph(201, 400)
	ms := testCascade(11)
	st := ms.ForwardFull(g)

	// Baseline agreement with the from-scratch cascade.
	full := ms.PredictProbs(g)
	for v := range full {
		if math.Abs(st.Probs[v]-full[v]) > 1e-12 {
			t.Fatalf("initial cascade state disagrees at %d", v)
		}
	}

	rng := rand.New(rand.NewSource(5))
	for step := 0; step < 6; step++ {
		var dirty []int32
		if step%2 == 0 {
			// Attribute refresh of a random region (the cone refresh the
			// insertion flow performs).
			for k := 0; k < 5; k++ {
				v := int32(rng.Intn(g.N))
				g.SetAttributes(v, float64(rng.Intn(30)), float64(1+rng.Intn(9)),
					float64(1+rng.Intn(9)), float64(rng.Intn(50)))
				dirty = append(dirty, v)
			}
		} else {
			// Observation point insertion (graph grows).
			target := int32(rng.Intn(g.N))
			for g.N > 0 && !insertableForTest(g, target) {
				target = int32(rng.Intn(g.N))
			}
			g.AddObservationPoint(target)
		}
		ms.UpdateIncremental(st, g, dirty)

		want := ms.PredictProbs(g)
		for v := range want {
			if math.Abs(st.Probs[v]-want[v]) > 1e-9 {
				t.Fatalf("step %d: node %d cascade incremental %g full %g",
					step, v, st.Probs[v], want[v])
			}
		}
		if len(st.Probs) != g.N {
			t.Fatalf("step %d: state tracks %d nodes, graph has %d", step, len(st.Probs), g.N)
		}
	}
}

func TestMultiStageIncrementalSingleStage(t *testing.T) {
	// A one-stage cascade must behave exactly like its model.
	g := testGraph(202, 200)
	ms := &MultiStage{Stages: []*Model{MustNewModel(tinyConfig(3))}, FilterBelow: 0.25}
	st := ms.ForwardFull(g)
	g.AddObservationPoint(7)
	ms.UpdateIncremental(st, g, nil)
	want := ms.Stages[0].Predict(g)
	for v := range want {
		if math.Abs(st.Probs[v]-want[v]) > 1e-9 {
			t.Fatalf("node %d: %g want %g", v, st.Probs[v], want[v])
		}
	}
}

func TestMultiStageNewIncrementalRun(t *testing.T) {
	// The IncrementalRun capability surface used by the insertion flow.
	g := testGraph(203, 150)
	var ip IncrementalPredictor = testCascade(17)
	run := ip.NewIncremental(g)
	g.SetAttributes(3, 4, 2, 2, 9)
	run.Update(g, []int32{3})
	want := ip.PredictProbs(g)
	probs := run.Probs()
	for v := range want {
		if math.Abs(probs[v]-want[v]) > 1e-9 {
			t.Fatalf("node %d: run %g full %g", v, probs[v], want[v])
		}
	}
}
