package experiments

import (
	"fmt"
	"io"

	"repro/internal/obs"
)

// Table1Row is one design's statistics line.
type Table1Row struct {
	Design string
	Nodes  int
	Edges  int
	POS    int
	NEG    int
}

// Table1Result is the full benchmark statistics table.
type Table1Result struct {
	Rows []Table1Row
}

// Table1 generates the benchmark suite and gathers its statistics,
// reproducing the paper's Table 1.
func Table1(cfg Config) Table1Result {
	span := obs.StartSpan("experiments/table1")
	defer span.End()
	cfg = cfg.withDefaults()
	var res Table1Result
	for _, b := range cfg.suite() {
		nodes, edges, pos, neg := b.Stats()
		res.Rows = append(res.Rows, Table1Row{
			Design: b.Name, Nodes: nodes, Edges: edges, POS: pos, NEG: neg,
		})
	}
	return res
}

// Fprint writes the table in the paper's layout.
func (r Table1Result) Fprint(w io.Writer) {
	fmt.Fprintln(w, "Table 1: Statistics of benchmarks")
	fmt.Fprintf(w, "%-8s %10s %10s %8s %10s\n", "Design", "#Nodes", "#Edges", "#POS", "#NEG")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-8s %10d %10d %8d %10d\n", row.Design, row.Nodes, row.Edges, row.POS, row.NEG)
	}
}
