package core

import "testing"

func TestAblatedDirectionsStayFrozen(t *testing.T) {
	g := testGraph(91, 300)
	cfg := tinyConfig(4)
	cfg.NoSuccessors = true
	m := MustNewModel(cfg)
	if m.Wsu.Data[0] != 0 {
		t.Fatalf("ablated wsu initialized to %v", m.Wsu.Data[0])
	}
	opt := TrainOptions{Epochs: 10, LR: 0.05, Momentum: 0.9, ClipNorm: 5, PosWeight: 4}
	if _, err := Train(m, []*Graph{g}, nil, opt); err != nil {
		t.Fatal(err)
	}
	if m.Wsu.Data[0] != 0 {
		t.Errorf("ablated wsu moved during training: %v", m.Wsu.Data[0])
	}
	if m.Wpr.Data[0] == 0.1 {
		t.Errorf("active wpr never moved")
	}
}

func TestFullAggregatorBeatsAblatedOnStructuralTask(t *testing.T) {
	// The hidden rule in testGraph depends on observability, which flows
	// backwards from sinks: successor aggregation should matter. Demand
	// only that the full model is not substantially worse than either
	// ablation — the quantitative gap is reported by the benchmark.
	train := []*Graph{testGraph(92, 700), testGraph(93, 700)}
	test := testGraph(94, 700)
	opt := TrainOptions{Epochs: 120, LR: 0.05, Momentum: 0.9, LRDecay: 0.997, PosWeight: 4, ClipNorm: 5}

	acc := func(cfg Config) float64 {
		m := MustNewModel(cfg)
		if _, err := Train(m, train, nil, opt); err != nil {
			t.Fatal(err)
		}
		return Accuracy(m, test, test.Labels)
	}
	base := Config{Dims: []int{8, 16}, FCDims: []int{16}, NumClasses: 2, Seed: 9}
	full := acc(base)
	noSucc := base
	noSucc.NoSuccessors = true
	ablated := acc(noSucc)
	t.Logf("full %.3f, predecessor-only %.3f", full, ablated)
	if full < ablated-0.05 {
		t.Errorf("full aggregator (%.3f) much worse than ablated (%.3f)", full, ablated)
	}
}

func BenchmarkAblationAggregatorFull(b *testing.B) {
	g := testGraph(95, 2000)
	m := MustNewModel(DefaultConfig())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.LossAndGrad(g, g.Labels, nil)
	}
}

func BenchmarkAblationAggregatorPredOnly(b *testing.B) {
	g := testGraph(95, 2000)
	cfg := DefaultConfig()
	cfg.NoSuccessors = true
	m := MustNewModel(cfg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.LossAndGrad(g, g.Labels, nil)
	}
}
