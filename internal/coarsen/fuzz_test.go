package coarsen

import (
	"bytes"
	"testing"

	"repro/internal/core"
	"repro/internal/netlist"
	"repro/internal/scoap"
)

// FuzzCoarsen drives both strategies over arbitrary parsed .bench
// DAGs: whatever the parser accepts must coarsen without panicking and
// satisfy the partition/monotonicity/boundary invariants at every
// swept ratio. On small inputs the strongest check runs too: at ratio
// 1.0 the projected graph must score bit-identically to the fine
// graph through a probe model, and at every ratio the lifted scores
// must equal each member's region score.
func FuzzCoarsen(f *testing.F) {
	f.Add(uint8(0), uint8(1),
		"INPUT(a)\nINPUT(b)\ng = AND(a, b)\nq = DFF(g)\nw = OR(q, b)\nOUTPUT(w)\nOBS(q)\n")
	f.Add(uint8(1), uint8(3),
		"INPUT(n2)\nn1 = NOT(n2)\nn3 = BUF(n1)\nn4 = NAND(n3, n2)\nOUTPUT(n4)\n")
	f.Add(uint8(2), uint8(0),
		"INPUT(a)\nINPUT(b)\nINPUT(c)\nx = XOR(a, b, c)\ny = XNOR(x, a)\nz = NAND(a, b)\nOUTPUT(y)\nOUTPUT(z)\n")
	ratios := []float64{1.0, 0.5, 0.25, 0.1}
	f.Fuzz(func(t *testing.T, stratSel, ratioSel uint8, src string) {
		n, err := netlist.Read(bytes.NewReader([]byte(src)))
		if err != nil {
			return // parser rejected it; nothing to coarsen
		}
		if n.NumGates() == 0 || n.NumGates() > 2000 {
			return
		}
		if n.Validate() != nil {
			// The parser accepts some shapes (e.g. an OUTPUT cell with
			// fanout) that are not valid netlists; the coarsening
			// contract only covers netlists that pass Validate.
			return
		}
		opt := Options{
			Strategy: Strategy(stratSel % 2),
			Ratio:    ratios[int(ratioSel)%len(ratios)],
		}
		c, err := New(n, opt)
		if err != nil {
			t.Fatalf("New rejected a parsed netlist: %v", err)
		}
		if err := c.Validate(n); err != nil {
			t.Fatalf("invariants violated (%v ratio %v): %v", opt.Strategy, opt.Ratio, err)
		}
		if n.NumGates() > 400 {
			return // model probes only on small graphs
		}
		g := core.FromNetlist(n, scoap.Compute(n))
		m, err := core.NewModel(core.Config{Dims: []int{5, 6, 7}, FCDims: []int{6}, NumClasses: 2, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		coarseProbs := m.PredictProbs(c.ProjectGraph(g))
		lifted := c.Lift(coarseProbs)
		for v, s := range c.Owner {
			if lifted[v] != coarseProbs[s] {
				t.Fatalf("lift broke region constancy at cell %d", v)
			}
		}
		if opt.Ratio == 1.0 {
			want := m.PredictProbs(g)
			for v := range want {
				if lifted[v] != want[v] {
					t.Fatalf("ratio 1.0 not bit-identical at cell %d: %v vs %v (%v)",
						v, lifted[v], want[v], opt.Strategy)
				}
			}
		}
	})
}
