package obs

import (
	"context"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// node is one aggregation point in the live span tree. Spans with the
// same name under the same parent merge into a single node.
type node struct {
	name string

	mu       sync.Mutex
	count    int64
	wallNS   int64
	allocB   int64
	children map[string]*node
}

// child finds or creates the named child node; safe for concurrent use.
func (n *node) child(name string) *node {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.children == nil {
		n.children = map[string]*node{}
	}
	c, ok := n.children[name]
	if !ok {
		c = &node{name: name}
		n.children[name] = c
	}
	return c
}

// record merges one completed span occurrence into the node.
func (n *node) record(wall time.Duration, allocBytes int64) {
	n.mu.Lock()
	n.count++
	n.wallNS += int64(wall)
	n.allocB += allocBytes
	n.mu.Unlock()
}

// snapshotChildren deep-copies the subtree below n with children sorted
// by name; the caller holds no lock on descendants, so each node locks
// itself briefly.
func (n *node) snapshotChildren() []*SpanNode {
	n.mu.Lock()
	kids := make([]*node, 0, len(n.children))
	for _, c := range n.children {
		kids = append(kids, c)
	}
	n.mu.Unlock()
	sort.Slice(kids, func(i, j int) bool { return kids[i].name < kids[j].name })
	out := make([]*SpanNode, 0, len(kids))
	for _, c := range kids {
		c.mu.Lock()
		sn := &SpanNode{Name: c.name, Count: c.count, WallNS: c.wallNS, AllocBytes: c.allocB}
		c.mu.Unlock()
		sn.Children = c.snapshotChildren()
		out = append(out, sn)
	}
	return out
}

// SpanNode is the serialized form of one span aggregation point: how
// many times the span ran, its total wall time, the process-wide
// allocation delta observed across its executions, and its children
// sorted by name.
type SpanNode struct {
	// Name is the span's name segment (unique among siblings).
	Name string `json:"name"`
	// Count is how many times a span with this path completed.
	Count int64 `json:"count"`
	// WallNS is the total wall-clock time across all completions, in
	// nanoseconds.
	WallNS int64 `json:"wall_ns"`
	// AllocBytes is the total heap-allocation delta (runtime TotalAlloc
	// at End minus at start, summed). It is process-wide: allocations by
	// concurrent goroutines are attributed to whichever spans are open.
	AllocBytes int64 `json:"alloc_bytes"`
	// Children holds nested spans, sorted by name.
	Children []*SpanNode `json:"children,omitempty"`
}

// Find returns the descendant with the given slash-separated path below
// n (e.g. "epoch/worker"), or nil.
func (n *SpanNode) Find(path string) *SpanNode {
	cur := n
	for _, seg := range strings.Split(path, "/") {
		var next *SpanNode
		for _, c := range cur.Children {
			if c.Name == seg {
				next = c
				break
			}
		}
		if next == nil {
			return nil
		}
		cur = next
	}
	return cur
}

// Span is a live timing span. A nil *Span (returned whenever
// instrumentation is disabled) is valid: all methods are no-ops, so
// callers never branch on Enabled themselves.
type Span struct {
	n          *node
	start      time.Time
	startAlloc uint64
	// tid is the trace timeline the span renders on (0 = main; training
	// workers get one each via ChildTID). path is the slash-joined span
	// path used as the trace event name; both are only populated while
	// tracing is on.
	tid  int64
	path string
}

// allocOff disables per-span runtime.ReadMemStats sampling when set
// (sampling stops the world briefly, so extremely span-dense workloads
// may turn it off via SetAllocSampling).
var allocOff atomic.Bool

// SetAllocSampling toggles per-span allocation-delta sampling (default
// on). Wall times and counts are unaffected.
func SetAllocSampling(on bool) { allocOff.Store(!on) }

// readAlloc returns the runtime's cumulative allocated-bytes figure, or
// 0 when sampling is off.
func readAlloc() uint64 {
	if allocOff.Load() {
		return 0
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.TotalAlloc
}

// StartSpan opens a root-level span. Returns nil (a valid no-op span)
// while instrumentation is disabled; the disabled path performs one
// atomic load and allocates nothing.
func StartSpan(name string) *Span {
	if !enabled.Load() {
		return nil
	}
	s := &Span{n: reg.root.child(name), start: time.Now(), startAlloc: readAlloc()}
	if tracing.Load() {
		s.path = name
	}
	return s
}

// Child opens a nested span under s. Safe to call from multiple
// goroutines on the same parent. On a nil receiver it returns nil.
func (s *Span) Child(name string) *Span {
	return s.ChildTID(name, -1)
}

// ChildTID opens a nested span pinned to the given trace timeline
// (tid). The span tree is unaffected — tids only route the span onto
// its own row in the exported Chrome trace, one per training worker.
// A negative tid inherits the parent's. On a nil receiver returns nil.
func (s *Span) ChildTID(name string, tid int64) *Span {
	if s == nil {
		return nil
	}
	c := &Span{n: s.n.child(name), start: time.Now(), startAlloc: readAlloc()}
	if tid < 0 {
		tid = s.tid
	}
	c.tid = tid
	if tracing.Load() {
		if s.path != "" {
			c.path = s.path + "/" + name
		} else {
			c.path = name
		}
	}
	return c
}

// End closes the span, merging its wall time and allocation delta into
// the tree (and, when tracing, appending one timeline occurrence).
// No-op on a nil receiver. End must be called at most once.
func (s *Span) End() {
	if s == nil {
		return
	}
	var alloc int64
	if s.startAlloc != 0 {
		if end := readAlloc(); end > s.startAlloc {
			alloc = int64(end - s.startAlloc)
		}
	}
	dur := time.Since(s.start)
	s.n.record(dur, alloc)
	if s.path != "" && tracing.Load() {
		recordSpanTrace(s.path, s.tid, s.start, dur)
	}
}

// ctxKey keys the active span in a context.
type ctxKey struct{}

// WithSpan opens a span nested under the context's active span (or at
// the root) and returns a derived context carrying it. This is the
// convenience form for call chains that already thread a context;
// packages without one use StartSpan/Child directly.
func WithSpan(ctx context.Context, name string) (context.Context, *Span) {
	var s *Span
	if parent, ok := ctx.Value(ctxKey{}).(*Span); ok && parent != nil {
		s = parent.Child(name)
	} else {
		s = StartSpan(name)
	}
	if s == nil {
		return ctx, nil
	}
	return context.WithValue(ctx, ctxKey{}, s), s
}

// SpanFromContext returns the context's active span, or nil.
func SpanFromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(ctxKey{}).(*Span)
	return s
}
