package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/refcheck"
)

// TestFloat32ScoringFlow pins the Float32Scoring contract end to end:
// /v1/score answers from the f32 forward pass within refcheck.F32Tolerance
// of the float64 path, the base predictor's own f32 flag is never
// mutated (only the design's private clone scores in f32), and the first
// /v1/score/delta lazily builds the float64 incremental session and
// matches a pure-f64 server bit for bit from then on.
func TestFloat32ScoringFlow(t *testing.T) {
	base := core.MustNewModel(core.DefaultConfig())
	_, ts32 := newTestServer(t, Options{Predictor: base, Float32Scoring: true})
	_, ts64 := newTestServer(t, Options{Predictor: base.Clone()})

	var r32, r64 ScoreResponse
	if code := postJSON(t, ts32.URL+"/v1/score", ScoreRequest{Netlist: tinyBench}, &r32); code != 200 {
		t.Fatalf("f32 score status %d", code)
	}
	if code := postJSON(t, ts64.URL+"/v1/score", ScoreRequest{Netlist: tinyBench}, &r64); code != 200 {
		t.Fatalf("f64 score status %d", code)
	}
	if len(r32.Scores) != len(r64.Scores) || len(r32.Scores) == 0 {
		t.Fatalf("score lengths: f32=%d f64=%d", len(r32.Scores), len(r64.Scores))
	}
	for v := range r64.Scores {
		if d := math.Abs(r32.Scores[v] - r64.Scores[v]); d > refcheck.F32Tolerance {
			t.Errorf("node %d: f32 score %g vs f64 %g (off by %g)", v, r32.Scores[v], r64.Scores[v], d)
		}
	}
	if base.Float32Inference() {
		t.Fatal("Float32Scoring leaked onto the server's base predictor")
	}

	// First delta: the f32 design has no incremental session yet; the
	// handler must build one lazily and keep serving. Both servers then
	// hold exact float64 sessions over the same mutated graph, so their
	// scores agree bit for bit.
	var d32, d64 ScoreResponse
	if code := postJSON(t, ts32.URL+"/v1/score/delta",
		DeltaRequest{Design: r32.Design, Observe: []int32{2}}, &d32); code != 200 {
		t.Fatalf("f32 delta status %d", code)
	}
	if code := postJSON(t, ts64.URL+"/v1/score/delta",
		DeltaRequest{Design: r64.Design, Observe: []int32{2}}, &d64); code != 200 {
		t.Fatalf("f64 delta status %d", code)
	}
	if d32.Nodes != d64.Nodes || len(d32.Scores) != len(d64.Scores) {
		t.Fatalf("post-delta shapes: f32 %d/%d, f64 %d/%d", d32.Nodes, len(d32.Scores), d64.Nodes, len(d64.Scores))
	}
	for v := range d64.Scores {
		if d32.Scores[v] != d64.Scores[v] {
			t.Errorf("node %d: post-delta f32-server score %g != f64-server %g", v, d32.Scores[v], d64.Scores[v])
		}
	}
}

// TestFloat32ScoringFallback proves the option degrades gracefully when
// the predictor does not implement core.Float32Inferencer: scoring runs
// the ordinary float64 path unchanged.
func TestFloat32ScoringFallback(t *testing.T) {
	_, ts := newTestServer(t, Options{Predictor: &stubPredictor{}, Float32Scoring: true})
	var resp ScoreResponse
	if code := postJSON(t, ts.URL+"/v1/score", ScoreRequest{Netlist: tinyBench}, &resp); code != 200 {
		t.Fatalf("status %d", code)
	}
	want := expectedScores(t, tinyBench)
	for v := range want {
		if resp.Scores[v] != want[v] {
			t.Fatalf("node %d: score %g, want %g", v, resp.Scores[v], want[v])
		}
	}
}

// TestConcurrentFloat32ScoringRace hammers the pooled scratch layers —
// tensor's size-class pools and sparse's dedup/conversion scratch —
// from concurrent f32 score requests. Caching and batching are disabled
// so every request pays a full compile and forward pass through the
// shared sync.Pools; the race detector is the assertion.
func TestConcurrentFloat32ScoringRace(t *testing.T) {
	pred := core.MustNewModel(core.DefaultConfig())
	_, ts := newTestServer(t, Options{
		Predictor:       pred,
		Float32Scoring:  true,
		DisableBatching: true,
		CacheEntries:    -1,
		MaxConcurrent:   8,
	})

	benches := []string{tinyBench, otherBench, thirdBench}
	const goroutines = 8
	const iters = 12
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for k := 0; k < iters; k++ {
				body, _ := json.Marshal(ScoreRequest{Netlist: benches[(id+k)%len(benches)]})
				httpResp, err := http.Post(ts.URL+"/v1/score", "application/json", bytes.NewReader(body))
				if err != nil {
					errs <- fmt.Errorf("goroutine %d iter %d: %v", id, k, err)
					return
				}
				var resp ScoreResponse
				err = json.NewDecoder(httpResp.Body).Decode(&resp)
				httpResp.Body.Close()
				if err != nil || httpResp.StatusCode != 200 {
					errs <- fmt.Errorf("goroutine %d iter %d: status %d, decode err %v", id, k, httpResp.StatusCode, err)
					return
				}
				if len(resp.Scores) != resp.Nodes || resp.Nodes == 0 {
					errs <- fmt.Errorf("goroutine %d iter %d: %d scores for %d nodes", id, k, len(resp.Scores), resp.Nodes)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
