package baselines

import (
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

// gaussianBlobs builds a linearly separable 2-class dataset.
func gaussianBlobs(rng *rand.Rand, n, dim int, sep float64) (*tensor.Dense, []int) {
	x := tensor.NewDense(n, dim)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		label := i % 2
		y[i] = label
		shift := -sep
		if label == 1 {
			shift = sep
		}
		row := x.Row(i)
		for j := range row {
			row[j] = rng.NormFloat64() + shift
		}
	}
	return x, y
}

// xorData is not linearly separable: only RF/MLP should solve it.
func xorData(rng *rand.Rand, n int) (*tensor.Dense, []int) {
	x := tensor.NewDense(n, 2)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		a, b := rng.Intn(2), rng.Intn(2)
		x.Set(i, 0, float64(a)+rng.NormFloat64()*0.1)
		x.Set(i, 1, float64(b)+rng.NormFloat64()*0.1)
		y[i] = a ^ b
	}
	return x, y
}

func accuracy(pred, y []int) float64 {
	c := 0
	for i := range y {
		if pred[i] == y[i] {
			c++
		}
	}
	return float64(c) / float64(len(y))
}

func allModels(seed int64) []Classifier {
	return []Classifier{
		&LogisticRegression{},
		&LinearSVM{Seed: seed},
		&RandomForest{Seed: seed, NumTrees: 30},
		&MLP{Seed: seed, Hidden: []int{16, 16}, Epochs: 200, LR: 0.1},
	}
}

func TestAllModelsSeparateBlobs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	xTrain, yTrain := gaussianBlobs(rng, 200, 8, 1.0)
	xTest, yTest := gaussianBlobs(rng, 100, 8, 1.0)
	for _, m := range allModels(7) {
		m.Fit(xTrain, yTrain)
		acc := accuracy(m.Predict(xTest), yTest)
		if acc < 0.9 {
			t.Errorf("%s: blob accuracy = %.3f, want >= 0.9", m.Name(), acc)
		}
	}
}

func TestNonlinearModelsSolveXor(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	xTrain, yTrain := xorData(rng, 400)
	xTest, yTest := xorData(rng, 200)

	for _, m := range []Classifier{
		&RandomForest{Seed: 3, NumTrees: 30},
		&MLP{Seed: 3, Hidden: []int{16, 16}, Epochs: 400, LR: 0.1},
	} {
		m.Fit(xTrain, yTrain)
		acc := accuracy(m.Predict(xTest), yTest)
		if acc < 0.9 {
			t.Errorf("%s: xor accuracy = %.3f, want >= 0.9", m.Name(), acc)
		}
	}

	// Linear models should fail on XOR (sanity that the task is hard).
	lr := &LogisticRegression{}
	lr.Fit(xTrain, yTrain)
	if acc := accuracy(lr.Predict(xTest), yTest); acc > 0.8 {
		t.Errorf("LR solved XOR (%.3f) — test data is broken", acc)
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x, y := gaussianBlobs(rng, 120, 6, 0.6)
	a := &RandomForest{Seed: 11, NumTrees: 15}
	b := &RandomForest{Seed: 11, NumTrees: 15}
	a.Fit(x, y)
	b.Fit(x, y)
	pa, pb := a.Predict(x), b.Predict(x)
	for i := range pa {
		if pa[i] != pb[i] {
			t.Fatal("same-seed forests disagree")
		}
	}
}

func TestNames(t *testing.T) {
	want := map[string]bool{"LR": true, "SVM": true, "RF": true, "MLP": true}
	for _, m := range allModels(1) {
		if !want[m.Name()] {
			t.Errorf("unexpected name %q", m.Name())
		}
	}
}

func TestForestHandlesConstantFeatures(t *testing.T) {
	// All-equal features: forest must fall back to leaves, not loop.
	x := tensor.NewDense(20, 5)
	y := make([]int, 20)
	for i := 10; i < 20; i++ {
		y[i] = 1
	}
	f := &RandomForest{Seed: 1, NumTrees: 5}
	f.Fit(x, y)
	pred := f.Predict(x)
	if len(pred) != 20 {
		t.Fatal("prediction length")
	}
}

func BenchmarkRandomForestFit(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x, y := gaussianBlobs(rng, 300, 512, 0.5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := &RandomForest{Seed: int64(i), NumTrees: 20}
		f.Fit(x, y)
	}
}
