package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// Counter is a monotonically increasing, goroutine-safe metric. Obtain
// one with GetCounter (typically once, in a package-level var) and call
// Add/Inc on the hot path; while instrumentation is disabled both are a
// single atomic load plus branch and allocate nothing.
type Counter struct {
	name string
	v    atomic.Int64
}

// GetCounter returns the process-wide counter with the given name,
// creating it on first use. Names follow the "subsystem.metric"
// convention (see the package documentation).
func GetCounter(name string) *Counter {
	reg.mu.Lock()
	defer reg.mu.Unlock()
	c, ok := reg.counters[name]
	if !ok {
		c = &Counter{name: name}
		reg.counters[name] = c
	}
	return c
}

// Add increases the counter by n while instrumentation is enabled.
func (c *Counter) Add(n int64) {
	if !enabled.Load() {
		return
	}
	c.v.Add(n)
}

// Inc increases the counter by one while instrumentation is enabled.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the accumulated count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Name returns the counter's registered name.
func (c *Counter) Name() string { return c.name }

// Gauge is a goroutine-safe last-value metric (e.g. the worker count a
// run settled on).
type Gauge struct {
	name string
	v    atomic.Int64
}

// GetGauge returns the process-wide gauge with the given name, creating
// it on first use.
func GetGauge(name string) *Gauge {
	reg.mu.Lock()
	defer reg.mu.Unlock()
	g, ok := reg.gauges[name]
	if !ok {
		g = &Gauge{name: name}
		reg.gauges[name] = g
	}
	return g
}

// Set records v as the gauge's current value while instrumentation is
// enabled.
func (g *Gauge) Set(v int64) {
	if !enabled.Load() {
		return
	}
	g.v.Store(v)
}

// Add adjusts the gauge by delta (which may be negative) while
// instrumentation is enabled. It exists for level-style gauges that rise
// and fall with concurrent activity — e.g. in-flight request or queue
// depth counts — where concurrent Set calls would lose updates.
func (g *Gauge) Add(delta int64) {
	if !enabled.Load() {
		return
	}
	g.v.Add(delta)
}

// Value returns the last set value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Name returns the gauge's registered name.
func (g *Gauge) Name() string { return g.name }

// histBuckets is the number of power-of-two histogram buckets: bucket i
// counts observations v with bits.Len64(v) == i, i.e. 2^(i-1) <= v < 2^i
// (bucket 0 counts v == 0).
const histBuckets = 65

// Histogram is a goroutine-safe power-of-two-bucket histogram for
// non-negative integer observations (iteration counts, batch sizes,
// nanosecond durations). It tracks count, sum, min and max exactly and
// the distribution at power-of-two resolution.
type Histogram struct {
	name    string
	count   atomic.Int64
	sum     atomic.Int64
	min     atomic.Int64 // valid iff count > 0
	max     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// GetHistogram returns the process-wide histogram with the given name,
// creating it on first use.
func GetHistogram(name string) *Histogram {
	reg.mu.Lock()
	defer reg.mu.Unlock()
	h, ok := reg.hists[name]
	if !ok {
		h = &Histogram{name: name}
		h.min.Store(math.MaxInt64)
		reg.hists[name] = h
	}
	return h
}

// Observe records one observation while instrumentation is enabled.
// Negative values are clamped to 0.
func (h *Histogram) Observe(v int64) {
	if !enabled.Load() {
		return
	}
	if v < 0 {
		v = 0
	}
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[bits.Len64(uint64(v))].Add(1)
	for {
		cur := h.min.Load()
		if v >= cur || h.min.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
}

// Name returns the histogram's registered name.
func (h *Histogram) Name() string { return h.name }

func (h *Histogram) reset() {
	h.count.Store(0)
	h.sum.Store(0)
	h.min.Store(math.MaxInt64)
	h.max.Store(0)
	for i := range h.buckets {
		h.buckets[i].Store(0)
	}
}

// HistogramBucket is one non-empty power-of-two bucket: Count
// observations were <= UpperBound (and above the previous bucket's
// bound).
type HistogramBucket struct {
	// UpperBound is the bucket's inclusive upper bound (2^i - 1).
	UpperBound int64 `json:"le"`
	// Count is the number of observations that landed in this bucket.
	Count int64 `json:"count"`
}

// HistogramSnapshot is the serialized summary of a histogram.
type HistogramSnapshot struct {
	// Count is the total number of observations.
	Count int64 `json:"count"`
	// Sum is the sum of all observed values.
	Sum int64 `json:"sum"`
	// Min and Max are the exact observed extremes (0 when Count == 0).
	Min int64 `json:"min"`
	Max int64 `json:"max"`
	// Buckets lists the non-empty power-of-two buckets in ascending
	// bound order.
	Buckets []HistogramBucket `json:"buckets,omitempty"`
}

// snapshot captures the histogram's current state.
func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{Count: h.count.Load(), Sum: h.sum.Load()}
	if s.Count > 0 {
		s.Min = h.min.Load()
		s.Max = h.max.Load()
	}
	for i := range h.buckets {
		if c := h.buckets[i].Load(); c != 0 {
			bound := int64(math.MaxInt64)
			if i < 63 {
				bound = (int64(1) << i) - 1
			}
			s.Buckets = append(s.Buckets, HistogramBucket{UpperBound: bound, Count: c})
		}
	}
	return s
}
