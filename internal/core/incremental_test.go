package core

import (
	"math"
	"math/rand"
	"testing"
)

func TestIncrementalMatchesFullAfterMutations(t *testing.T) {
	g := testGraph(101, 400)
	m := MustNewModel(tinyConfig(7))
	st := m.ForwardFull(g)

	// Baseline agreement.
	full := m.Predict(g)
	for v := range full {
		if math.Abs(st.Probs[v]-full[v]) > 1e-12 {
			t.Fatalf("initial state disagrees at %d", v)
		}
	}

	rng := rand.New(rand.NewSource(3))
	for step := 0; step < 6; step++ {
		var dirty []int32
		if step%2 == 0 {
			// Attribute refresh of a random region.
			for k := 0; k < 5; k++ {
				v := int32(rng.Intn(g.N))
				g.SetAttributes(v, float64(rng.Intn(30)), float64(1+rng.Intn(9)),
					float64(1+rng.Intn(9)), float64(rng.Intn(50)))
				dirty = append(dirty, v)
			}
		} else {
			// Observation point insertion (graph grows).
			target := int32(rng.Intn(g.N))
			for g.N > 0 && !insertableForTest(g, target) {
				target = int32(rng.Intn(g.N))
			}
			g.AddObservationPoint(target)
		}
		m.UpdateIncremental(st, g, dirty)

		want := m.Predict(g)
		for v := range want {
			if math.Abs(st.Probs[v]-want[v]) > 1e-9 {
				t.Fatalf("step %d: node %d incremental %g full %g", step, v, st.Probs[v], want[v])
			}
		}
	}
}

// insertableForTest avoids double-observing the same node (AddObservationPoint
// allows it on the graph side, but variety is better for the test).
func insertableForTest(g *Graph, v int32) bool {
	for _, s := range g.SuccList(v) {
		if int(s) >= g.N {
			return false
		}
	}
	return true
}

func TestIncrementalNoDirtyIsNoOp(t *testing.T) {
	g := testGraph(102, 200)
	m := MustNewModel(tinyConfig(8))
	st := m.ForwardFull(g)
	before := append([]float64(nil), st.Probs...)
	m.UpdateIncremental(st, g, nil)
	for v := range before {
		if st.Probs[v] != before[v] {
			t.Fatalf("no-op update changed node %d", v)
		}
	}
}

func TestIncrementalStateIsolatedFromGraphEdits(t *testing.T) {
	// Editing g.X without declaring the node dirty must not corrupt the
	// cached E0 (the state copies X).
	g := testGraph(103, 150)
	m := MustNewModel(tinyConfig(9))
	st := m.ForwardFull(g)
	g.X.Set(0, 0, 99)
	m.UpdateIncremental(st, g, []int32{5}) // dirty set excludes node 0
	// Now declare it dirty; only then the edit lands.
	m.UpdateIncremental(st, g, []int32{0})
	want := m.Predict(g)
	if math.Abs(st.Probs[0]-want[0]) > 1e-9 {
		t.Errorf("node 0 after explicit dirty: %g want %g", st.Probs[0], want[0])
	}
}

func BenchmarkIncrementalUpdateOneInsertion(b *testing.B) {
	g := testGraph(104, 5000)
	m := MustNewModel(DefaultConfig())
	st := m.ForwardFull(g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		target := int32(i % (g.N / 2))
		g.AddObservationPoint(target)
		m.UpdateIncremental(st, g, nil)
	}
}

func BenchmarkFullForwardPerInsertion(b *testing.B) {
	g := testGraph(104, 5000)
	m := MustNewModel(DefaultConfig())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		target := int32(i % (g.N / 2))
		g.AddObservationPoint(target)
		m.Forward(g)
	}
}
