package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// Counter is a monotonically increasing, goroutine-safe metric. Obtain
// one with GetCounter (typically once, in a package-level var) and call
// Add/Inc on the hot path; while instrumentation is disabled both are a
// single atomic load plus branch and allocate nothing.
type Counter struct {
	name string
	v    atomic.Int64
}

// GetCounter returns the process-wide counter with the given name,
// creating it on first use. Names follow the "subsystem.metric"
// convention (see the package documentation).
func GetCounter(name string) *Counter {
	reg.mu.Lock()
	defer reg.mu.Unlock()
	c, ok := reg.counters[name]
	if !ok {
		c = &Counter{name: name}
		reg.counters[name] = c
	}
	return c
}

// Add increases the counter by n while instrumentation is enabled.
func (c *Counter) Add(n int64) {
	if !enabled.Load() {
		return
	}
	c.v.Add(n)
}

// Inc increases the counter by one while instrumentation is enabled.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the accumulated count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Name returns the counter's registered name.
func (c *Counter) Name() string { return c.name }

// Gauge is a goroutine-safe last-value metric (e.g. the worker count a
// run settled on).
type Gauge struct {
	name string
	v    atomic.Int64
}

// GetGauge returns the process-wide gauge with the given name, creating
// it on first use.
func GetGauge(name string) *Gauge {
	reg.mu.Lock()
	defer reg.mu.Unlock()
	g, ok := reg.gauges[name]
	if !ok {
		g = &Gauge{name: name}
		reg.gauges[name] = g
	}
	return g
}

// Set records v as the gauge's current value while instrumentation is
// enabled.
func (g *Gauge) Set(v int64) {
	if !enabled.Load() {
		return
	}
	g.v.Store(v)
}

// Add adjusts the gauge by delta (which may be negative) while
// instrumentation is enabled. It exists for level-style gauges that rise
// and fall with concurrent activity — e.g. in-flight request or queue
// depth counts — where concurrent Set calls would lose updates.
func (g *Gauge) Add(delta int64) {
	if !enabled.Load() {
		return
	}
	g.v.Add(delta)
}

// Value returns the last set value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Name returns the gauge's registered name.
func (g *Gauge) Name() string { return g.name }

// The histogram buckets are log-linear (HDR-histogram style): each
// power-of-two range [2^(k-1), 2^k) is subdivided into histSub linear
// sub-buckets, and values below histSub land in their own exact bucket.
// A quantile read off a bucket's upper bound therefore carries a
// relative error of at most 1/histSub (6.25%), versus up to 2x for
// plain power-of-two buckets — tight enough to publish p50/p95/p99
// latencies straight from the snapshot.
const (
	histSubBits = 4
	histSub     = 1 << histSubBits // linear sub-buckets per power-of-two range

	// histBuckets covers v == 0..histSub-1 exactly plus histSub
	// sub-buckets for each of the 58 remaining power-of-two ranges of an
	// int64.
	histBuckets = histSub + (63-histSubBits)*histSub
)

// bucketIndex maps a non-negative observation to its log-linear bucket.
func bucketIndex(v int64) int {
	if v < histSub {
		return int(v)
	}
	k := bits.Len64(uint64(v)) // v >= histSub ⇒ k >= histSubBits+1
	shift := uint(k - 1 - histSubBits)
	// v>>shift is in [histSub, 2*histSub); ranges pack contiguously.
	return (k-histSubBits-1)*histSub + int(v>>shift)
}

// bucketUpper returns the inclusive upper bound of bucket idx (the value
// reported as the Prometheus `le` bound and used for quantile reads).
func bucketUpper(idx int) int64 {
	if idx < histSub {
		return int64(idx)
	}
	j := idx - histSub
	shift := uint(j / histSub)
	pos := uint64(j%histSub + histSub)
	upper := (pos+1)<<shift - 1
	if upper > math.MaxInt64 {
		return math.MaxInt64
	}
	return int64(upper)
}

// Histogram is a goroutine-safe log-linear-bucket histogram for
// non-negative integer observations (iteration counts, batch sizes,
// nanosecond durations). It tracks count, sum, min and max exactly and
// the distribution at <=6.25% relative resolution, so exact extremes and
// bounded-error quantiles (p50/p95/p99) come from the same structure.
type Histogram struct {
	name    string
	count   atomic.Int64
	sum     atomic.Int64
	min     atomic.Int64 // valid iff count > 0
	max     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// GetHistogram returns the process-wide histogram with the given name,
// creating it on first use.
func GetHistogram(name string) *Histogram {
	reg.mu.Lock()
	defer reg.mu.Unlock()
	h, ok := reg.hists[name]
	if !ok {
		h = &Histogram{name: name}
		h.min.Store(math.MaxInt64)
		reg.hists[name] = h
	}
	return h
}

// Observe records one observation while instrumentation is enabled.
// Negative values are clamped to 0.
func (h *Histogram) Observe(v int64) {
	if !enabled.Load() {
		return
	}
	if v < 0 {
		v = 0
	}
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[bucketIndex(v)].Add(1)
	for {
		cur := h.min.Load()
		if v >= cur || h.min.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
}

// Name returns the histogram's registered name.
func (h *Histogram) Name() string { return h.name }

func (h *Histogram) reset() {
	h.count.Store(0)
	h.sum.Store(0)
	h.min.Store(math.MaxInt64)
	h.max.Store(0)
	for i := range h.buckets {
		h.buckets[i].Store(0)
	}
}

// HistogramBucket is one non-empty log-linear bucket: Count observations
// were <= UpperBound (and above the previous bucket's bound).
type HistogramBucket struct {
	// UpperBound is the bucket's inclusive upper bound.
	UpperBound int64 `json:"le"`
	// Count is the number of observations that landed in this bucket.
	Count int64 `json:"count"`
}

// HistogramSnapshot is the serialized summary of a histogram.
type HistogramSnapshot struct {
	// Count is the total number of observations.
	Count int64 `json:"count"`
	// Sum is the sum of all observed values.
	Sum int64 `json:"sum"`
	// Min and Max are the exact observed extremes (0 when Count == 0).
	Min int64 `json:"min"`
	Max int64 `json:"max"`
	// P50/P95/P99 are bucket-resolution quantile estimates with relative
	// error at most 1/histSub (6.25%); values below histSub are exact.
	// Omitted when the histogram is empty.
	P50 int64 `json:"p50,omitempty"`
	P95 int64 `json:"p95,omitempty"`
	P99 int64 `json:"p99,omitempty"`
	// Buckets lists the non-empty log-linear buckets in ascending bound
	// order.
	Buckets []HistogramBucket `json:"buckets,omitempty"`
}

// Quantile estimates the q-quantile (0 <= q <= 1) from the snapshot's
// buckets: the upper bound of the bucket holding the rank-⌈q·count⌉
// observation, clamped to the exact [Min, Max] extremes. The estimate is
// never below the true value's bucket lower bound, so the relative error
// is at most 1/histSub (6.25%); observations below histSub are exact.
// Returns 0 on an empty snapshot.
func (s HistogramSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	if q <= 0 {
		return s.Min
	}
	if q >= 1 {
		return s.Max
	}
	rank := int64(math.Ceil(q * float64(s.Count)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for _, b := range s.Buckets {
		cum += b.Count
		if cum >= rank {
			v := b.UpperBound
			if v < s.Min {
				v = s.Min
			}
			if v > s.Max {
				v = s.Max
			}
			return v
		}
	}
	return s.Max
}

// snapshot captures the histogram's current state.
func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{Count: h.count.Load(), Sum: h.sum.Load()}
	if s.Count > 0 {
		s.Min = h.min.Load()
		s.Max = h.max.Load()
	}
	for i := range h.buckets {
		if c := h.buckets[i].Load(); c != 0 {
			s.Buckets = append(s.Buckets, HistogramBucket{UpperBound: bucketUpper(i), Count: c})
		}
	}
	if s.Count > 0 {
		s.P50 = s.Quantile(0.50)
		s.P95 = s.Quantile(0.95)
		s.P99 = s.Quantile(0.99)
	}
	return s
}
