package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randDense(rng *rand.Rand, r, c int) *Dense {
	d := NewDense(r, c)
	for i := range d.Data {
		d.Data[i] = rng.NormFloat64()
	}
	return d
}

// naiveMatMul is the O(n³) reference implementation used to validate the
// optimized kernels.
func naiveMatMul(a, b *Dense) *Dense {
	c := NewDense(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Cols; j++ {
			var s float64
			for k := 0; k < a.Cols; k++ {
				s += a.At(i, k) * b.At(k, j)
			}
			c.Set(i, j, s)
		}
	}
	return c
}

func transpose(a *Dense) *Dense {
	t := NewDense(a.Cols, a.Rows)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < a.Cols; j++ {
			t.Set(j, i, a.At(i, j))
		}
	}
	return t
}

func TestMatMulAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		m, k, n := 1+rng.Intn(12), 1+rng.Intn(12), 1+rng.Intn(12)
		a, b := randDense(rng, m, k), randDense(rng, k, n)
		got := NewDense(m, n)
		MatMul(got, a, b)
		want := naiveMatMul(a, b)
		if diff := MaxAbsDiff(got, want); diff > 1e-12 {
			t.Fatalf("trial %d: MatMul differs from naive by %g", trial, diff)
		}
	}
}

func TestMatMulTransVariants(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 20; trial++ {
		m, k, n := 1+rng.Intn(10), 1+rng.Intn(10), 1+rng.Intn(10)
		a, b := randDense(rng, m, k), randDense(rng, n, k) // b used as bᵀ
		got := NewDense(m, n)
		MatMulTransB(got, a, b)
		want := naiveMatMul(a, transpose(b))
		if diff := MaxAbsDiff(got, want); diff > 1e-12 {
			t.Fatalf("MatMulTransB differs by %g", diff)
		}

		a2, b2 := randDense(rng, k, m), randDense(rng, k, n)
		got2 := NewDense(m, n)
		MatMulTransA(got2, a2, b2)
		want2 := naiveMatMul(transpose(a2), b2)
		if diff := MaxAbsDiff(got2, want2); diff > 1e-12 {
			t.Fatalf("MatMulTransA differs by %g", diff)
		}
	}
}

func TestQuickMatMulAssociativityWithIdentity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		a := randDense(rng, n, n)
		id := NewDense(n, n)
		for i := 0; i < n; i++ {
			id.Set(i, i, 1)
		}
		out := NewDense(n, n)
		MatMul(out, a, id)
		return MaxAbsDiff(out, a) < 1e-14
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestElementwiseOps(t *testing.T) {
	a := FromRows([][]float64{{1, -2}, {3, -4}})
	b := FromRows([][]float64{{10, 20}, {30, 40}})
	c := a.Clone()
	c.AddInPlace(b)
	if c.At(0, 1) != 18 || c.At(1, 0) != 33 {
		t.Errorf("AddInPlace wrong: %v", c.Data)
	}
	c.CopyFrom(a)
	c.AxpyInPlace(0.5, b)
	if c.At(0, 0) != 6 || c.At(1, 1) != 16 {
		t.Errorf("AxpyInPlace wrong: %v", c.Data)
	}
	c.Scale(2)
	if c.At(0, 0) != 12 {
		t.Errorf("Scale wrong: %v", c.Data)
	}
	if got := a.Dot(b); got != 10-40+90-160 {
		t.Errorf("Dot = %v", got)
	}
}

func TestReLU(t *testing.T) {
	a := FromRows([][]float64{{1, -2, 0}, {-3, 4, -0.5}})
	out := a.Clone()
	out.ReLUInPlace()
	want := FromRows([][]float64{{1, 0, 0}, {0, 4, 0}})
	if MaxAbsDiff(out, want) != 0 {
		t.Errorf("ReLU = %v", out.Data)
	}
	grad := FromRows([][]float64{{5, 6, 7}, {8, 9, 10}})
	ReLUBackwardInPlace(grad, out)
	wantG := FromRows([][]float64{{5, 0, 0}, {0, 9, 0}})
	if MaxAbsDiff(grad, wantG) != 0 {
		t.Errorf("ReLU backward = %v", grad.Data)
	}
}

func TestSoftmaxRows(t *testing.T) {
	a := FromRows([][]float64{{0, 0}, {1000, 1000}, {-5, 5}})
	a.SoftmaxRowsInPlace()
	for i := 0; i < a.Rows; i++ {
		var sum float64
		for _, v := range a.Row(i) {
			if v < 0 || v > 1 || math.IsNaN(v) {
				t.Fatalf("row %d has invalid prob %v", i, v)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Errorf("row %d sums to %v", i, sum)
		}
	}
	if a.At(0, 0) != 0.5 || a.At(1, 0) != 0.5 {
		t.Errorf("uniform rows not 0.5: %v", a.Data)
	}
	if a.At(2, 1) < 0.99 {
		t.Errorf("softmax(-5,5) = %v, want second ≈ 1", a.Row(2))
	}
}

func TestArgmaxRows(t *testing.T) {
	a := FromRows([][]float64{{1, 3, 2}, {9, -1, 0}})
	got := a.ArgmaxRows()
	if got[0] != 1 || got[1] != 0 {
		t.Errorf("ArgmaxRows = %v", got)
	}
}

func TestAddRowVector(t *testing.T) {
	a := NewDense(2, 3)
	a.AddRowVector([]float64{1, 2, 3})
	if a.At(0, 2) != 3 || a.At(1, 0) != 1 {
		t.Errorf("AddRowVector = %v", a.Data)
	}
}

func TestXavierInitRange(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	d := NewDense(40, 60)
	d.XavierInit(rng)
	limit := math.Sqrt(6.0 / 100.0)
	var nonzero int
	for _, v := range d.Data {
		if math.Abs(v) > limit {
			t.Fatalf("value %v exceeds Xavier limit %v", v, limit)
		}
		if v != 0 {
			nonzero++
		}
	}
	if nonzero < len(d.Data)/2 {
		t.Error("suspiciously many zeros after init")
	}
}

func TestShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MatMul with bad shapes should panic")
		}
	}()
	MatMul(NewDense(2, 2), NewDense(2, 3), NewDense(2, 3))
}

func BenchmarkMatMul128(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	a := randDense(rng, 128, 128)
	c := randDense(rng, 128, 128)
	dst := NewDense(128, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMul(dst, a, c)
	}
}

func BenchmarkMatMulTall(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	a := randDense(rng, 4096, 32)
	c := randDense(rng, 32, 64)
	dst := NewDense(4096, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMul(dst, a, c)
	}
}
