// Package baselines implements the classical machine learning models the
// paper compares the GCN against in Table 2: logistic regression (LR),
// linear support vector machine (SVM), multi-layer perceptron (MLP, same
// shape as the GCN's classifier head) and random forest (RF). All consume
// the fixed-dimension cone features from package features and share a
// small Classifier interface so the Table 2 harness can sweep them.
package baselines

import (
	"math"
	"math/rand"

	"repro/internal/tensor"
)

// Classifier is the common training/prediction surface of all baselines.
type Classifier interface {
	// Name identifies the model in reports ("LR", "RF", "SVM", "MLP").
	Name() string
	// Fit trains on feature rows X with binary labels y (0/1).
	Fit(x *tensor.Dense, y []int)
	// Predict returns a 0/1 label per row of X.
	Predict(x *tensor.Dense) []int
}

// LogisticRegression is a binary logistic regression trained with
// full-batch gradient descent and L2 regularization.
type LogisticRegression struct {
	LR      float64 // learning rate; default 0.5
	Epochs  int     // default 200
	L2      float64 // default 1e-4
	weights []float64
	bias    float64
}

// Name implements Classifier.
func (m *LogisticRegression) Name() string { return "LR" }

// Fit implements Classifier.
func (m *LogisticRegression) Fit(x *tensor.Dense, y []int) {
	lr, epochs, l2 := m.LR, m.Epochs, m.L2
	if lr <= 0 {
		lr = 0.5
	}
	if epochs <= 0 {
		epochs = 200
	}
	if l2 <= 0 {
		l2 = 1e-4
	}
	m.weights = make([]float64, x.Cols)
	m.bias = 0
	n := float64(x.Rows)
	gw := make([]float64, x.Cols)
	for e := 0; e < epochs; e++ {
		for j := range gw {
			gw[j] = 0
		}
		gb := 0.0
		for i := 0; i < x.Rows; i++ {
			row := x.Row(i)
			p := sigmoid(dot(m.weights, row) + m.bias)
			err := p - float64(y[i])
			for j, v := range row {
				gw[j] += err * v
			}
			gb += err
		}
		for j := range m.weights {
			m.weights[j] -= lr * (gw[j]/n + l2*m.weights[j])
		}
		m.bias -= lr * gb / n
	}
}

// Predict implements Classifier.
func (m *LogisticRegression) Predict(x *tensor.Dense) []int {
	out := make([]int, x.Rows)
	for i := 0; i < x.Rows; i++ {
		if dot(m.weights, x.Row(i))+m.bias > 0 {
			out[i] = 1
		}
	}
	return out
}

// LinearSVM is a linear soft-margin SVM trained by Pegasos-style
// stochastic subgradient descent on the hinge loss.
type LinearSVM struct {
	Lambda  float64 // regularization; default 1e-4
	Epochs  int     // passes over the data; default 40
	Seed    int64
	weights []float64
	bias    float64
}

// Name implements Classifier.
func (m *LinearSVM) Name() string { return "SVM" }

// Fit implements Classifier.
func (m *LinearSVM) Fit(x *tensor.Dense, y []int) {
	lambda, epochs := m.Lambda, m.Epochs
	if lambda <= 0 {
		lambda = 1e-4
	}
	if epochs <= 0 {
		epochs = 40
	}
	rng := rand.New(rand.NewSource(m.Seed))
	m.weights = make([]float64, x.Cols)
	m.bias = 0
	t := 1
	order := rng.Perm(x.Rows)
	for e := 0; e < epochs; e++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		for _, i := range order {
			eta := 1 / (lambda * float64(t))
			t++
			row := x.Row(i)
			s := 2*float64(y[i]) - 1 // ±1
			margin := s * (dot(m.weights, row) + m.bias)
			for j := range m.weights {
				m.weights[j] *= 1 - eta*lambda
			}
			if margin < 1 {
				for j, v := range row {
					m.weights[j] += eta * s * v
				}
				m.bias += eta * s * 0.1 // unregularized slow bias
			}
		}
	}
}

// Predict implements Classifier.
func (m *LinearSVM) Predict(x *tensor.Dense) []int {
	out := make([]int, x.Rows)
	for i := 0; i < x.Rows; i++ {
		if dot(m.weights, x.Row(i))+m.bias > 0 {
			out[i] = 1
		}
	}
	return out
}

func sigmoid(z float64) float64 {
	if z >= 0 {
		return 1 / (1 + math.Exp(-z))
	}
	e := math.Exp(z)
	return e / (1 + e)
}

func dot(a, b []float64) float64 {
	var s float64
	for i, v := range a {
		s += v * b[i]
	}
	return s
}
