package fault

import (
	"math/rand"

	"repro/internal/netlist"
)

// This file provides exact serial fault simulation: the circuit is
// re-simulated with a fault injected, and detection is an actual
// response difference at an observation sink. It is the ground truth
// against which the fast critical-path-tracing criterion used by
// GenerateTests can be validated, and the engine behind fault
// diagnosis.

// BatchWithFault simulates one 64-pattern batch with a stuck-at fault
// forced at the given node (values only; no observability pass). Source
// words come from the source function, so fault-free and faulty runs can
// share identical patterns.
func (s *Simulator) BatchWithFault(source func(id int32) uint64, node int32, stuckAt1 bool) {
	n := s.n
	vals := s.vals
	forced := uint64(0)
	if stuckAt1 {
		forced = ^uint64(0)
	}
	for _, id := range s.order {
		g := n.Gate(id)
		switch g.Type {
		case netlist.Input, netlist.DFF:
			vals[id] = source(id)
		case netlist.Output, netlist.Obs, netlist.Buf:
			vals[id] = vals[g.Fanin[0]]
		case netlist.Not:
			vals[id] = ^vals[g.Fanin[0]]
		case netlist.And, netlist.Nand:
			v := vals[g.Fanin[0]]
			for _, f := range g.Fanin[1:] {
				v &= vals[f]
			}
			if g.Type == netlist.Nand {
				v = ^v
			}
			vals[id] = v
		case netlist.Or, netlist.Nor:
			v := vals[g.Fanin[0]]
			for _, f := range g.Fanin[1:] {
				v |= vals[f]
			}
			if g.Type == netlist.Nor {
				v = ^v
			}
			vals[id] = v
		case netlist.Xor, netlist.Xnor:
			v := vals[g.Fanin[0]]
			for _, f := range g.Fanin[1:] {
				v ^= vals[f]
			}
			if g.Type == netlist.Xnor {
				v = ^v
			}
			vals[id] = v
		}
		if id == node {
			vals[id] = forced
		}
	}
}

// SinkResponses collects the current value words at every observation
// sink (in sink ID order); the comparable unit of exact detection.
func (s *Simulator) SinkResponses() []uint64 {
	var out []uint64
	for id := int32(0); id < int32(s.n.NumGates()); id++ {
		if s.n.Type(id).IsObservationSink() {
			out = append(out, s.vals[s.n.Fanin(id)[0]])
		}
	}
	return out
}

// ExactDetectMask runs fault-free and faulty simulations of one pattern
// batch and returns, per pattern lane, whether any sink differs.
func ExactDetectMask(n *netlist.Netlist, seed int64, batch int, node int32, stuckAt1 bool) uint64 {
	words := sourceWords(n, seed, batch)
	src := func(id int32) uint64 { return words[id] }

	sim := NewSimulator(n)
	sim.BatchFrom(src)
	good := sim.SinkResponses()
	sim.BatchWithFault(src, node, stuckAt1)
	bad := sim.SinkResponses()

	var mask uint64
	for i := range good {
		mask |= good[i] ^ bad[i]
	}
	return mask
}

// sourceWords reproduces the random source assignment of the given
// (seed, batch) pair as used by Batch with a fresh rand.Rand: sources
// draw words in topological order, one batch after another.
func sourceWords(n *netlist.Netlist, seed int64, batch int) map[int32]uint64 {
	rng := rand.New(rand.NewSource(seed))
	var out map[int32]uint64
	for b := 0; b <= batch; b++ {
		out = make(map[int32]uint64)
		for _, id := range n.TopoOrder() {
			if n.Type(id).IsControllableSource() {
				out[id] = rng.Uint64()
			}
		}
	}
	return out
}
